file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_realizable.dir/bench_table1_realizable.cpp.o"
  "CMakeFiles/bench_table1_realizable.dir/bench_table1_realizable.cpp.o.d"
  "bench_table1_realizable"
  "bench_table1_realizable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_realizable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
