file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_unrealizable.dir/bench_table2_unrealizable.cpp.o"
  "CMakeFiles/bench_table2_unrealizable.dir/bench_table2_unrealizable.cpp.o.d"
  "bench_table2_unrealizable"
  "bench_table2_unrealizable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_unrealizable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
