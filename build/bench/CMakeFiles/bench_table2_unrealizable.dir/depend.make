# Empty dependencies file for bench_table2_unrealizable.
# This may be replaced when dependencies are built.
