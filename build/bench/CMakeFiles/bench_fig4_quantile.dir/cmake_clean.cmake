file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_quantile.dir/bench_fig4_quantile.cpp.o"
  "CMakeFiles/bench_fig4_quantile.dir/bench_fig4_quantile.cpp.o.d"
  "bench_fig4_quantile"
  "bench_fig4_quantile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_quantile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
