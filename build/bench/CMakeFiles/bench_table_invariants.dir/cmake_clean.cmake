file(REMOVE_RECURSE
  "CMakeFiles/bench_table_invariants.dir/bench_table_invariants.cpp.o"
  "CMakeFiles/bench_table_invariants.dir/bench_table_invariants.cpp.o.d"
  "bench_table_invariants"
  "bench_table_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
