# Empty dependencies file for bench_table_invariants.
# This may be replaced when dependencies are built.
