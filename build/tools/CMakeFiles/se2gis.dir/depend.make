# Empty dependencies file for se2gis.
# This may be replaced when dependencies are built.
