file(REMOVE_RECURSE
  "CMakeFiles/se2gis.dir/se2gis_cli.cpp.o"
  "CMakeFiles/se2gis.dir/se2gis_cli.cpp.o.d"
  "se2gis"
  "se2gis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/se2gis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
