file(REMOVE_RECURSE
  "CMakeFiles/se2gis_support.dir/Counters.cpp.o"
  "CMakeFiles/se2gis_support.dir/Counters.cpp.o.d"
  "CMakeFiles/se2gis_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/se2gis_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/se2gis_support.dir/Stopwatch.cpp.o"
  "CMakeFiles/se2gis_support.dir/Stopwatch.cpp.o.d"
  "CMakeFiles/se2gis_support.dir/TableWriter.cpp.o"
  "CMakeFiles/se2gis_support.dir/TableWriter.cpp.o.d"
  "libse2gis_support.a"
  "libse2gis_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/se2gis_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
