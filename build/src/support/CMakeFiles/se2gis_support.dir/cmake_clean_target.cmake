file(REMOVE_RECURSE
  "libse2gis_support.a"
)
