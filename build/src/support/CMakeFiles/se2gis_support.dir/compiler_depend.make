# Empty compiler generated dependencies file for se2gis_support.
# This may be replaced when dependencies are built.
