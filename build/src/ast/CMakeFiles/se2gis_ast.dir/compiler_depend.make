# Empty compiler generated dependencies file for se2gis_ast.
# This may be replaced when dependencies are built.
