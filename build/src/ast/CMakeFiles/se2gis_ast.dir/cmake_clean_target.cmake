file(REMOVE_RECURSE
  "libse2gis_ast.a"
)
