file(REMOVE_RECURSE
  "CMakeFiles/se2gis_ast.dir/Simplify.cpp.o"
  "CMakeFiles/se2gis_ast.dir/Simplify.cpp.o.d"
  "CMakeFiles/se2gis_ast.dir/Term.cpp.o"
  "CMakeFiles/se2gis_ast.dir/Term.cpp.o.d"
  "CMakeFiles/se2gis_ast.dir/Type.cpp.o"
  "CMakeFiles/se2gis_ast.dir/Type.cpp.o.d"
  "libse2gis_ast.a"
  "libse2gis_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/se2gis_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
