file(REMOVE_RECURSE
  "CMakeFiles/se2gis_synth.dir/Enumerator.cpp.o"
  "CMakeFiles/se2gis_synth.dir/Enumerator.cpp.o.d"
  "CMakeFiles/se2gis_synth.dir/Grammar.cpp.o"
  "CMakeFiles/se2gis_synth.dir/Grammar.cpp.o.d"
  "CMakeFiles/se2gis_synth.dir/SgeSolver.cpp.o"
  "CMakeFiles/se2gis_synth.dir/SgeSolver.cpp.o.d"
  "libse2gis_synth.a"
  "libse2gis_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/se2gis_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
