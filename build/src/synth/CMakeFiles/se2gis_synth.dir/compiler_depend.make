# Empty compiler generated dependencies file for se2gis_synth.
# This may be replaced when dependencies are built.
