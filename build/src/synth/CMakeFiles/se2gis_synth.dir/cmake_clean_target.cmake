file(REMOVE_RECURSE
  "libse2gis_synth.a"
)
