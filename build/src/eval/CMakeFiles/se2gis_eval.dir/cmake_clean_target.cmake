file(REMOVE_RECURSE
  "libse2gis_eval.a"
)
