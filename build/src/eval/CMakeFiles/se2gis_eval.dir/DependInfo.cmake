
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/Expand.cpp" "src/eval/CMakeFiles/se2gis_eval.dir/Expand.cpp.o" "gcc" "src/eval/CMakeFiles/se2gis_eval.dir/Expand.cpp.o.d"
  "/root/repo/src/eval/Interp.cpp" "src/eval/CMakeFiles/se2gis_eval.dir/Interp.cpp.o" "gcc" "src/eval/CMakeFiles/se2gis_eval.dir/Interp.cpp.o.d"
  "/root/repo/src/eval/SymbolicEval.cpp" "src/eval/CMakeFiles/se2gis_eval.dir/SymbolicEval.cpp.o" "gcc" "src/eval/CMakeFiles/se2gis_eval.dir/SymbolicEval.cpp.o.d"
  "/root/repo/src/eval/Value.cpp" "src/eval/CMakeFiles/se2gis_eval.dir/Value.cpp.o" "gcc" "src/eval/CMakeFiles/se2gis_eval.dir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/se2gis_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/se2gis_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/se2gis_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
