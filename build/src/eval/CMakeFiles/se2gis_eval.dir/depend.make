# Empty dependencies file for se2gis_eval.
# This may be replaced when dependencies are built.
