file(REMOVE_RECURSE
  "CMakeFiles/se2gis_eval.dir/Expand.cpp.o"
  "CMakeFiles/se2gis_eval.dir/Expand.cpp.o.d"
  "CMakeFiles/se2gis_eval.dir/Interp.cpp.o"
  "CMakeFiles/se2gis_eval.dir/Interp.cpp.o.d"
  "CMakeFiles/se2gis_eval.dir/SymbolicEval.cpp.o"
  "CMakeFiles/se2gis_eval.dir/SymbolicEval.cpp.o.d"
  "CMakeFiles/se2gis_eval.dir/Value.cpp.o"
  "CMakeFiles/se2gis_eval.dir/Value.cpp.o.d"
  "libse2gis_eval.a"
  "libse2gis_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/se2gis_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
