file(REMOVE_RECURSE
  "libse2gis_suite.a"
)
