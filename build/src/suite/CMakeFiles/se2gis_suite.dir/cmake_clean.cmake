file(REMOVE_RECURSE
  "CMakeFiles/se2gis_suite.dir/Benchmarks.cpp.o"
  "CMakeFiles/se2gis_suite.dir/Benchmarks.cpp.o.d"
  "CMakeFiles/se2gis_suite.dir/ExtraBenchmarks.cpp.o"
  "CMakeFiles/se2gis_suite.dir/ExtraBenchmarks.cpp.o.d"
  "CMakeFiles/se2gis_suite.dir/ListBenchmarks.cpp.o"
  "CMakeFiles/se2gis_suite.dir/ListBenchmarks.cpp.o.d"
  "CMakeFiles/se2gis_suite.dir/ParallelBenchmarks.cpp.o"
  "CMakeFiles/se2gis_suite.dir/ParallelBenchmarks.cpp.o.d"
  "CMakeFiles/se2gis_suite.dir/Runner.cpp.o"
  "CMakeFiles/se2gis_suite.dir/Runner.cpp.o.d"
  "CMakeFiles/se2gis_suite.dir/SortedBenchmarks.cpp.o"
  "CMakeFiles/se2gis_suite.dir/SortedBenchmarks.cpp.o.d"
  "CMakeFiles/se2gis_suite.dir/TreeBenchmarks.cpp.o"
  "CMakeFiles/se2gis_suite.dir/TreeBenchmarks.cpp.o.d"
  "CMakeFiles/se2gis_suite.dir/UnrealizableBenchmarks.cpp.o"
  "CMakeFiles/se2gis_suite.dir/UnrealizableBenchmarks.cpp.o.d"
  "libse2gis_suite.a"
  "libse2gis_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/se2gis_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
