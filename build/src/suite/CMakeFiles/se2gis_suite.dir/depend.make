# Empty dependencies file for se2gis_suite.
# This may be replaced when dependencies are built.
