file(REMOVE_RECURSE
  "libse2gis_core.a"
)
