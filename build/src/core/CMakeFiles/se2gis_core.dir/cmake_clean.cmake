file(REMOVE_RECURSE
  "CMakeFiles/se2gis_core.dir/Algorithms.cpp.o"
  "CMakeFiles/se2gis_core.dir/Algorithms.cpp.o.d"
  "CMakeFiles/se2gis_core.dir/Approximation.cpp.o"
  "CMakeFiles/se2gis_core.dir/Approximation.cpp.o.d"
  "CMakeFiles/se2gis_core.dir/Certificates.cpp.o"
  "CMakeFiles/se2gis_core.dir/Certificates.cpp.o.d"
  "CMakeFiles/se2gis_core.dir/InvariantInfer.cpp.o"
  "CMakeFiles/se2gis_core.dir/InvariantInfer.cpp.o.d"
  "CMakeFiles/se2gis_core.dir/Portfolio.cpp.o"
  "CMakeFiles/se2gis_core.dir/Portfolio.cpp.o.d"
  "CMakeFiles/se2gis_core.dir/RecursionElim.cpp.o"
  "CMakeFiles/se2gis_core.dir/RecursionElim.cpp.o.d"
  "CMakeFiles/se2gis_core.dir/SplitIte.cpp.o"
  "CMakeFiles/se2gis_core.dir/SplitIte.cpp.o.d"
  "CMakeFiles/se2gis_core.dir/Verify.cpp.o"
  "CMakeFiles/se2gis_core.dir/Verify.cpp.o.d"
  "CMakeFiles/se2gis_core.dir/Witness.cpp.o"
  "CMakeFiles/se2gis_core.dir/Witness.cpp.o.d"
  "libse2gis_core.a"
  "libse2gis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/se2gis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
