# Empty compiler generated dependencies file for se2gis_core.
# This may be replaced when dependencies are built.
