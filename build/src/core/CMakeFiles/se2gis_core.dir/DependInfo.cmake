
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Algorithms.cpp" "src/core/CMakeFiles/se2gis_core.dir/Algorithms.cpp.o" "gcc" "src/core/CMakeFiles/se2gis_core.dir/Algorithms.cpp.o.d"
  "/root/repo/src/core/Approximation.cpp" "src/core/CMakeFiles/se2gis_core.dir/Approximation.cpp.o" "gcc" "src/core/CMakeFiles/se2gis_core.dir/Approximation.cpp.o.d"
  "/root/repo/src/core/Certificates.cpp" "src/core/CMakeFiles/se2gis_core.dir/Certificates.cpp.o" "gcc" "src/core/CMakeFiles/se2gis_core.dir/Certificates.cpp.o.d"
  "/root/repo/src/core/InvariantInfer.cpp" "src/core/CMakeFiles/se2gis_core.dir/InvariantInfer.cpp.o" "gcc" "src/core/CMakeFiles/se2gis_core.dir/InvariantInfer.cpp.o.d"
  "/root/repo/src/core/Portfolio.cpp" "src/core/CMakeFiles/se2gis_core.dir/Portfolio.cpp.o" "gcc" "src/core/CMakeFiles/se2gis_core.dir/Portfolio.cpp.o.d"
  "/root/repo/src/core/RecursionElim.cpp" "src/core/CMakeFiles/se2gis_core.dir/RecursionElim.cpp.o" "gcc" "src/core/CMakeFiles/se2gis_core.dir/RecursionElim.cpp.o.d"
  "/root/repo/src/core/SplitIte.cpp" "src/core/CMakeFiles/se2gis_core.dir/SplitIte.cpp.o" "gcc" "src/core/CMakeFiles/se2gis_core.dir/SplitIte.cpp.o.d"
  "/root/repo/src/core/Verify.cpp" "src/core/CMakeFiles/se2gis_core.dir/Verify.cpp.o" "gcc" "src/core/CMakeFiles/se2gis_core.dir/Verify.cpp.o.d"
  "/root/repo/src/core/Witness.cpp" "src/core/CMakeFiles/se2gis_core.dir/Witness.cpp.o" "gcc" "src/core/CMakeFiles/se2gis_core.dir/Witness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/se2gis_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/se2gis_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/se2gis_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/se2gis_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/se2gis_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/se2gis_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
