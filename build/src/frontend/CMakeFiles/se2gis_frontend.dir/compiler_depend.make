# Empty compiler generated dependencies file for se2gis_frontend.
# This may be replaced when dependencies are built.
