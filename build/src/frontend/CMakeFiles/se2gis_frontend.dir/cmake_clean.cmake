file(REMOVE_RECURSE
  "CMakeFiles/se2gis_frontend.dir/Elaborate.cpp.o"
  "CMakeFiles/se2gis_frontend.dir/Elaborate.cpp.o.d"
  "CMakeFiles/se2gis_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/se2gis_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/se2gis_frontend.dir/Parser.cpp.o"
  "CMakeFiles/se2gis_frontend.dir/Parser.cpp.o.d"
  "libse2gis_frontend.a"
  "libse2gis_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/se2gis_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
