file(REMOVE_RECURSE
  "libse2gis_frontend.a"
)
