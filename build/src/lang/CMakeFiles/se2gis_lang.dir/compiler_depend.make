# Empty compiler generated dependencies file for se2gis_lang.
# This may be replaced when dependencies are built.
