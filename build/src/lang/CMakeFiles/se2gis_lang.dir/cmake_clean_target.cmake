file(REMOVE_RECURSE
  "libse2gis_lang.a"
)
