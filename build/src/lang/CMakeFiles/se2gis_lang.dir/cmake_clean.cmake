file(REMOVE_RECURSE
  "CMakeFiles/se2gis_lang.dir/Function.cpp.o"
  "CMakeFiles/se2gis_lang.dir/Function.cpp.o.d"
  "CMakeFiles/se2gis_lang.dir/Program.cpp.o"
  "CMakeFiles/se2gis_lang.dir/Program.cpp.o.d"
  "libse2gis_lang.a"
  "libse2gis_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/se2gis_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
