# Empty dependencies file for se2gis_smt.
# This may be replaced when dependencies are built.
