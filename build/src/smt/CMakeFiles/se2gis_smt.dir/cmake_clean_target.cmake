file(REMOVE_RECURSE
  "libse2gis_smt.a"
)
