file(REMOVE_RECURSE
  "CMakeFiles/se2gis_smt.dir/BoundedCheck.cpp.o"
  "CMakeFiles/se2gis_smt.dir/BoundedCheck.cpp.o.d"
  "CMakeFiles/se2gis_smt.dir/Induction.cpp.o"
  "CMakeFiles/se2gis_smt.dir/Induction.cpp.o.d"
  "CMakeFiles/se2gis_smt.dir/Solver.cpp.o"
  "CMakeFiles/se2gis_smt.dir/Solver.cpp.o.d"
  "libse2gis_smt.a"
  "libse2gis_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/se2gis_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
