
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AstTest.cpp" "tests/CMakeFiles/unit_tests.dir/AstTest.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/AstTest.cpp.o.d"
  "/root/repo/tests/CertificateTest.cpp" "tests/CMakeFiles/unit_tests.dir/CertificateTest.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/CertificateTest.cpp.o.d"
  "/root/repo/tests/CoreTest.cpp" "tests/CMakeFiles/unit_tests.dir/CoreTest.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/CoreTest.cpp.o.d"
  "/root/repo/tests/Enumerator2Test.cpp" "tests/CMakeFiles/unit_tests.dir/Enumerator2Test.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/Enumerator2Test.cpp.o.d"
  "/root/repo/tests/EvalTest.cpp" "tests/CMakeFiles/unit_tests.dir/EvalTest.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/EvalTest.cpp.o.d"
  "/root/repo/tests/ExpandTest.cpp" "tests/CMakeFiles/unit_tests.dir/ExpandTest.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/ExpandTest.cpp.o.d"
  "/root/repo/tests/Frontend2Test.cpp" "tests/CMakeFiles/unit_tests.dir/Frontend2Test.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/Frontend2Test.cpp.o.d"
  "/root/repo/tests/FrontendTest.cpp" "tests/CMakeFiles/unit_tests.dir/FrontendTest.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/FrontendTest.cpp.o.d"
  "/root/repo/tests/Interp2Test.cpp" "tests/CMakeFiles/unit_tests.dir/Interp2Test.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/Interp2Test.cpp.o.d"
  "/root/repo/tests/LangTest.cpp" "tests/CMakeFiles/unit_tests.dir/LangTest.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/LangTest.cpp.o.d"
  "/root/repo/tests/PortfolioTest.cpp" "tests/CMakeFiles/unit_tests.dir/PortfolioTest.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/PortfolioTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/unit_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/RecursionElim2Test.cpp" "tests/CMakeFiles/unit_tests.dir/RecursionElim2Test.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/RecursionElim2Test.cpp.o.d"
  "/root/repo/tests/SgeSolver2Test.cpp" "tests/CMakeFiles/unit_tests.dir/SgeSolver2Test.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/SgeSolver2Test.cpp.o.d"
  "/root/repo/tests/SimplifyTest.cpp" "tests/CMakeFiles/unit_tests.dir/SimplifyTest.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/SimplifyTest.cpp.o.d"
  "/root/repo/tests/SmtTest.cpp" "tests/CMakeFiles/unit_tests.dir/SmtTest.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/SmtTest.cpp.o.d"
  "/root/repo/tests/SplitIteTest.cpp" "tests/CMakeFiles/unit_tests.dir/SplitIteTest.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/SplitIteTest.cpp.o.d"
  "/root/repo/tests/SuiteTest.cpp" "tests/CMakeFiles/unit_tests.dir/SuiteTest.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/SuiteTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/unit_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/SynthTest.cpp" "tests/CMakeFiles/unit_tests.dir/SynthTest.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/SynthTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/se2gis_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/se2gis_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/se2gis_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/se2gis_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/se2gis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/suite/CMakeFiles/se2gis_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/se2gis_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/se2gis_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/se2gis_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
