file(REMOVE_RECURSE
  "CMakeFiles/parallel_mps.dir/parallel_mps.cpp.o"
  "CMakeFiles/parallel_mps.dir/parallel_mps.cpp.o.d"
  "parallel_mps"
  "parallel_mps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_mps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
