# Empty dependencies file for parallel_mps.
# This may be replaced when dependencies are built.
