file(REMOVE_RECURSE
  "CMakeFiles/skeleton_repair.dir/skeleton_repair.cpp.o"
  "CMakeFiles/skeleton_repair.dir/skeleton_repair.cpp.o.d"
  "skeleton_repair"
  "skeleton_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skeleton_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
