# Empty dependencies file for skeleton_repair.
# This may be replaced when dependencies are built.
