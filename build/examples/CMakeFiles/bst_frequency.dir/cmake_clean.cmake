file(REMOVE_RECURSE
  "CMakeFiles/bst_frequency.dir/bst_frequency.cpp.o"
  "CMakeFiles/bst_frequency.dir/bst_frequency.cpp.o.d"
  "bst_frequency"
  "bst_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bst_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
