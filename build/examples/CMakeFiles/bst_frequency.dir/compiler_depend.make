# Empty compiler generated dependencies file for bst_frequency.
# This may be replaced when dependencies are built.
