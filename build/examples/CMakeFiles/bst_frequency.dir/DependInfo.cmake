
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/bst_frequency.cpp" "examples/CMakeFiles/bst_frequency.dir/bst_frequency.cpp.o" "gcc" "examples/CMakeFiles/bst_frequency.dir/bst_frequency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/se2gis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/se2gis_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/se2gis_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/se2gis_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/se2gis_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/se2gis_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/se2gis_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/se2gis_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
