//===- bench_table_invariants.cpp - §8.2 invariant-inference table --------===//
///
/// \file
/// Regenerates the §8.2 invariants table: of the benchmarks SE²GIS solves,
/// how many needed inferred invariants, split by kind:
///
///                 Reference  Datatype  Total     (paper)
///   Realizable           10        57     67
///   Unrealizable          0        12     12
///   Total                10        69     79
///
/// plus the in-text highlights: the share of inferred invariants proved by
/// induction (paper: 70%), and the loop-alternation profile (easy
/// benchmarks take one alternation).
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

using namespace se2gis;

int main() {
  PerfReport Perf;
  SuiteOptions Opts = suiteOptionsFromEnv(/*DefaultTimeoutMs=*/6000);
  Opts.Algorithms = {AlgorithmKind::SE2GIS};
  std::vector<SuiteRecord> Records = runSuite(Opts);

  int RefReal = 0, RefUnreal = 0, DataReal = 0, DataUnreal = 0;
  int WithInv = 0, WithInvByInduction = 0;
  int Solved = 0, OneAlternation = 0;
  for (const SuiteRecord &R : Records) {
    if (!isSolved(R))
      continue;
    ++Solved;
    const RunStats &S = R.Result.Stats;
    if (S.Refinements + S.Coarsenings <= 2)
      ++OneAlternation;
    bool Ref = S.ImageInvariants > 0;
    bool Data = S.DatatypeInvariants > 0;
    if (Ref)
      (R.Def->ExpectRealizable ? RefReal : RefUnreal) += 1;
    if (Data)
      (R.Def->ExpectRealizable ? DataReal : DataUnreal) += 1;
    if (Ref || Data) {
      ++WithInv;
      WithInvByInduction += S.AllInvariantsByInduction;
    }
  }

  std::printf("\n== Invariants inferred by SE2GIS (counting benchmarks; a "
              "benchmark may appear in both columns) ==\n");
  TableWriter T({"", "Reference", "Datatype", "Ref (paper)", "Data (paper)"});
  T.addRow({"Realizable", std::to_string(RefReal), std::to_string(DataReal),
            "10", "57"});
  T.addRow({"Unrealizable", std::to_string(RefUnreal),
            std::to_string(DataUnreal), "0", "12"});
  T.addRow({"Total", std::to_string(RefReal + RefUnreal),
            std::to_string(DataReal + DataUnreal), "10", "69"});
  std::printf("%s", T.renderText().c_str());

  std::printf("\nbenchmarks solved with >= 1 inferred invariant: %d of %d "
              "solved   [paper: 79 of 137]\n",
              WithInv, Solved);
  if (WithInv)
    std::printf("invariants proved by induction on %d/%d (%.0f%%) of those "
                "benchmarks [paper: 70%%, rest bounded-checked]\n",
                WithInvByInduction, WithInv,
                100.0 * WithInvByInduction / WithInv);
  std::printf("solved with at most one refine/coarsen alternation: %d/%d "
              "(paper: easy benchmarks take one alternation)\n",
              OneAlternation, Solved);
  Perf.print("table_invariants");
  return 0;
}
