//===- bench_micro.cpp - Microbenchmarks of the core operations -----------===//
///
/// \file
/// Google-benchmark microbenchmarks of the primitive operations the SE²GIS
/// loops are built from: symbolic unfolding, recursion elimination, frame
/// computation, SGE construction, witness SMT queries, and PBE enumeration.
/// These are ours (the paper reports end-to-end numbers only); they document
/// where the time goes.
///
//===----------------------------------------------------------------------===//

#include "core/Approximation.h"
#include "core/Witness.h"
#include "eval/SymbolicEval.h"
#include "frontend/Elaborate.h"
#include "suite/Benchmarks.h"
#include "synth/Enumerator.h"
#include "synth/Grammar.h"

#include <benchmark/benchmark.h>

using namespace se2gis;

namespace {

const Problem &minSortedProblem() {
  static Problem P = loadBenchmark(*findBenchmark("sortedlist/min"));
  return P;
}

const Problem &parallelMpsProblem() {
  static Problem P = loadBenchmark(*findBenchmark("postcond/mps"));
  return P;
}

void BM_LoadProblem(benchmark::State &State) {
  const BenchmarkDef *Def = findBenchmark("sortedlist/min");
  for (auto _ : State)
    benchmark::DoNotOptimize(loadBenchmark(*Def));
}
BENCHMARK(BM_LoadProblem);

void BM_SymbolicUnfold(benchmark::State &State) {
  const Problem &P = minSortedProblem();
  SymbolicEvaluator SE(*P.Prog);
  const Datatype *List = P.Theta;
  const ConstructorDecl *Elt = List->findConstructor("Elt");
  const ConstructorDecl *Cons = List->findConstructor("Cons");
  // Build a depth-N bounded list and unfold lmin over it.
  TermPtr T = mkCtor(Elt, {mkIntLit(0)});
  for (int I = 0; I < State.range(0); ++I)
    T = mkCtor(Cons, {mkIntLit(I), T});
  TermPtr Call = mkCall(P.Reference, P.RetTy, {T});
  for (auto _ : State)
    benchmark::DoNotOptimize(SE.eval(Call));
}
BENCHMARK(BM_SymbolicUnfold)->Arg(4)->Arg(16)->Arg(64);

void BM_RecursionElimination(benchmark::State &State) {
  const Problem &P = minSortedProblem();
  RecursionEliminator Elim(P);
  const ConstructorDecl *Cons = P.Theta->findConstructor("Cons");
  TermPtr T = mkCtor(Cons, {mkVar(freshVar("a", Type::intTy())),
                            mkVar(freshVar("l", Type::dataTy(P.Theta)))});
  for (auto _ : State)
    benchmark::DoNotOptimize(Elim.eliminate(T));
}
BENCHMARK(BM_RecursionElimination);

void BM_BuildSge(benchmark::State &State) {
  const Problem &P = parallelMpsProblem();
  Approximation Approx(P);
  Approx.initialize();
  for (auto _ : State)
    benchmark::DoNotOptimize(Approx.buildSge());
}
BENCHMARK(BM_BuildSge);

void BM_ComputeFrame(benchmark::State &State) {
  // u1(max(x,0)) + u2(y): the §6 example.
  VarPtr X = freshVar("x", Type::intTy());
  VarPtr Y = freshVar("y", Type::intTy());
  TermPtr Lhs = mkAdd(
      mkUnknown("u1", Type::intTy(),
                {mkOp(OpKind::Max, {mkVar(X), mkIntLit(0)})}),
      mkUnknown("u2", Type::intTy(), {mkVar(Y)}));
  for (auto _ : State)
    benchmark::DoNotOptimize(computeFrame(Lhs));
}
BENCHMARK(BM_ComputeFrame);

void BM_WitnessQuery(benchmark::State &State) {
  VarPtr X = freshVar("x", Type::intTy());
  VarPtr Y = freshVar("y", Type::intTy());
  Sge System;
  System.Eqns.push_back(SgeEquation{
      mkTrue(),
      mkAdd(mkUnknown("h1", Type::intTy(),
                      {mkOp(OpKind::Max, {mkVar(X), mkIntLit(0)})}),
            mkUnknown("h2", Type::intTy(), {mkVar(Y)})),
      mkOp(OpKind::Max, {mkAdd(mkVar(X), mkVar(Y)), mkIntLit(0)}), 0});
  for (auto _ : State)
    benchmark::DoNotOptimize(
        findFunctionalWitness(System, 1000, Deadline()));
}
BENCHMARK(BM_WitnessQuery);

void BM_PbeEnumeration(benchmark::State &State) {
  GrammarConfig G;
  G.AllowMinMax = true;
  VarPtr A = freshVar("a", Type::intTy());
  VarPtr B = freshVar("b", Type::intTy());
  std::vector<PbeExample> Ex;
  for (long long V = -2; V <= 2; ++V)
    Ex.push_back(PbeExample{
        {{A->Id, Value::mkInt(V)}, {B->Id, Value::mkInt(-V)}},
        Value::mkInt(std::max(V, -V))});
  for (auto _ : State) {
    Enumerator En(G, {mkVar(A), mkVar(B)});
    benchmark::DoNotOptimize(
        En.synthesize(Type::intTy(), Ex, State.range(0), Deadline()));
  }
}
BENCHMARK(BM_PbeEnumeration)->Arg(3)->Arg(5)->Arg(7);

} // namespace

BENCHMARK_MAIN();
