//===- bench_table2_unrealizable.cpp - Appendix Table 2 -------------------===//
///
/// \file
/// Regenerates Table 2: per-benchmark results on the unrealizable set
/// (SE²GIS and SEGIS+UC; plain SEGIS has no unrealizability outcome and
/// times out on every entry, as in the paper). The
/// `unreal/forced_unknown_nesting` row reproduces Appendix C.1.3 and is
/// expected to *fail* (∅ in the paper's table) rather than produce a
/// witness.
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

using namespace se2gis;

int main() {
  PerfReport Perf;
  SuiteOptions Opts = suiteOptionsFromEnv(/*DefaultTimeoutMs=*/6000);
  Opts.Algorithms = {AlgorithmKind::SE2GIS, AlgorithmKind::SEGISUC};
  Opts.SkipRealizable = true;
  std::vector<SuiteRecord> Records = runSuite(Opts);

  TableWriter T({"Benchmark", "SE2GIS", "steps", "SEGIS+UC", "#r",
                 "paper:SE2GIS", "paper:SEGIS+UC"});
  auto A = recordsOf(Records, AlgorithmKind::SE2GIS);
  auto B = recordsOf(Records, AlgorithmKind::SEGISUC);
  for (size_t I = 0; I < A.size(); ++I) {
    const BenchmarkDef &Def = *A[I]->Def;
    T.addRow({Def.Name, formatRun(*A[I]), A[I]->Result.Stats.Steps,
              formatRun(*B[I]),
              std::to_string(B[I]->Result.Stats.Refinements),
              formatPaper(Def.PaperSe2gisSec),
              formatPaper(Def.PaperSegisUcSec)});
  }
  std::printf("\n== Table 2: unrealizable benchmarks (times in seconds; '-' "
              "timeout, 'x' failure/no-witness) ==\n%s",
              T.renderText().c_str());
  Perf.print("table2");
  return 0;
}
