//===- bench_fig4_quantile.cpp - Figure 4 + the solved-counts table -------===//
///
/// \file
/// Regenerates Figure 4 of the paper ("Comparison based on the number of
/// solved benchmarks"): all benchmarks are run under SE²GIS, SEGIS+UC, and
/// SEGIS; the quantile series (n-th fastest solve time per algorithm) is
/// printed as CSV, followed by the in-text solved-count table:
///
///                SE2GIS  SEGIS+UC  SEGIS
///   Realizable       93        70     70
///   Unrealizable     44        25      0
///   Total           137        95     70
///
/// The paper's shape to check: SE²GIS solves the most benchmarks overall,
/// SEGIS+UC adds unrealizable solves over SEGIS, and SEGIS solves no
/// unrealizable benchmark.
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

using namespace se2gis;

int main() {
  PerfReport Perf;
  SuiteOptions Opts = suiteOptionsFromEnv(/*DefaultTimeoutMs=*/6000);
  Opts.Algorithms = {AlgorithmKind::SE2GIS, AlgorithmKind::SEGISUC,
                     AlgorithmKind::SEGIS};
  std::vector<SuiteRecord> Records = runSuite(Opts);

  std::printf("\n== Figure 4: quantile series (CSV: rank, ms per "
              "algorithm) ==\n");
  std::printf("rank,se2gis_ms,segis_uc_ms,segis_ms\n");
  auto S1 = quantileSeries(recordsOf(Records, AlgorithmKind::SE2GIS));
  auto S2 = quantileSeries(recordsOf(Records, AlgorithmKind::SEGISUC));
  auto S3 = quantileSeries(recordsOf(Records, AlgorithmKind::SEGIS));
  size_t MaxLen = std::max({S1.size(), S2.size(), S3.size()});
  for (size_t I = 0; I < MaxLen; ++I) {
    auto Cell = [&](const std::vector<double> &S) {
      return I < S.size() ? std::to_string(S[I]) : std::string();
    };
    std::printf("%zu,%s,%s,%s\n", I + 1, Cell(S1).c_str(), Cell(S2).c_str(),
                Cell(S3).c_str());
  }

  // The in-text counts table (paper: 93/70/70, 44/25/0, 137/95/70 of 140).
  struct Counts {
    int Realizable = 0, Unrealizable = 0;
  };
  Counts ByAlgo[3];
  int TotalReal = 0, TotalUnreal = 0;
  for (const SuiteRecord &R : Records) {
    int Idx = R.Algorithm == AlgorithmKind::SE2GIS    ? 0
              : R.Algorithm == AlgorithmKind::SEGISUC ? 1
                                                      : 2;
    if (R.Algorithm == AlgorithmKind::SE2GIS)
      (R.Def->ExpectRealizable ? TotalReal : TotalUnreal) += 1;
    if (!isSolved(R))
      continue;
    if (R.Def->ExpectRealizable)
      ++ByAlgo[Idx].Realizable;
    else
      ++ByAlgo[Idx].Unrealizable;
  }

  std::printf("\n== Solved-counts table (paper reference in brackets; suite "
              "size here: %d realizable + %d unrealizable) ==\n",
              TotalReal, TotalUnreal);
  TableWriter T({"", "SE2GIS", "SEGIS+UC", "SEGIS"});
  auto Row = [&](const char *Label, int A, int B, int C, const char *Ref) {
    T.addRow({Label, std::to_string(A), std::to_string(B),
              std::to_string(C) + std::string("   ") + Ref});
  };
  Row("Realizable", ByAlgo[0].Realizable, ByAlgo[1].Realizable,
      ByAlgo[2].Realizable, "[paper: 93 / 70 / 70]");
  Row("Unrealizable", ByAlgo[0].Unrealizable, ByAlgo[1].Unrealizable,
      ByAlgo[2].Unrealizable, "[paper: 44 / 25 / 0]");
  Row("Total", ByAlgo[0].Realizable + ByAlgo[0].Unrealizable,
      ByAlgo[1].Realizable + ByAlgo[1].Unrealizable,
      ByAlgo[2].Realizable + ByAlgo[2].Unrealizable,
      "[paper: 137 / 95 / 70]");
  std::printf("%s", T.renderText().c_str());

  bool ShapeHolds =
      ByAlgo[0].Realizable + ByAlgo[0].Unrealizable >=
          ByAlgo[1].Realizable + ByAlgo[1].Unrealizable &&
      ByAlgo[1].Unrealizable > ByAlgo[2].Unrealizable &&
      ByAlgo[2].Unrealizable == 0;
  std::printf("\nshape check (SE2GIS >= SEGIS+UC total, SEGIS+UC > SEGIS on "
              "unrealizable, SEGIS solves 0 unrealizable): %s\n",
              ShapeHolds ? "OK" : "MISMATCH");
  Perf.print("fig4");
  return 0;
}
