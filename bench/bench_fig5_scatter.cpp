//===- bench_fig5_scatter.cpp - Figure 5: SE2GIS vs SEGIS+UC --------------===//
///
/// \file
/// Regenerates Figure 5: per-benchmark running times of SE²GIS against
/// SEGIS+UC for the benchmarks solved by both, printed as CSV (suitable for
/// a log-log scatter; the paper colours realizable red, unrealizable blue).
/// Also reports the two in-text fractions:
///  - SEGIS+UC faster on ~60% of the mutually solved *realizable* set
///    (simple solutions found "by luck" under full bounding),
///  - SE²GIS faster on ~50% of the mutually solved *unrealizable* set.
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

using namespace se2gis;

int main() {
  PerfReport Perf;
  SuiteOptions Opts = suiteOptionsFromEnv(/*DefaultTimeoutMs=*/6000);
  Opts.Algorithms = {AlgorithmKind::SE2GIS, AlgorithmKind::SEGISUC};
  std::vector<SuiteRecord> Records = runSuite(Opts);

  auto A = recordsOf(Records, AlgorithmKind::SE2GIS);
  auto B = recordsOf(Records, AlgorithmKind::SEGISUC);

  std::printf("\n== Figure 5: scatter points (CSV) ==\n");
  std::printf("benchmark,kind,se2gis_ms,segis_uc_ms\n");
  int RealBoth = 0, RealUcFaster = 0, UnrealBoth = 0, UnrealSeFaster = 0;
  for (size_t I = 0; I < A.size() && I < B.size(); ++I) {
    if (!isSolved(*A[I]) || !isSolved(*B[I]))
      continue;
    double Ta = A[I]->Result.Stats.ElapsedMs;
    double Tb = B[I]->Result.Stats.ElapsedMs;
    bool Realizable = A[I]->Def->ExpectRealizable;
    std::printf("%s,%s,%.3f,%.3f\n", A[I]->Def->Name.c_str(),
                Realizable ? "realizable" : "unrealizable", Ta, Tb);
    if (Realizable) {
      ++RealBoth;
      RealUcFaster += Tb < Ta;
    } else {
      ++UnrealBoth;
      UnrealSeFaster += Ta < Tb;
    }
  }

  std::printf("\n== In-text fractions ==\n");
  if (RealBoth)
    std::printf("SEGIS+UC faster on %d/%d (%.0f%%) of mutually solved "
                "realizable benchmarks   [paper: 60%%]\n",
                RealUcFaster, RealBoth, 100.0 * RealUcFaster / RealBoth);
  if (UnrealBoth)
    std::printf("SE2GIS faster on %d/%d (%.0f%%) of mutually solved "
                "unrealizable benchmarks [paper: 50%%]\n",
                UnrealSeFaster, UnrealBoth, 100.0 * UnrealSeFaster / UnrealBoth);
  Perf.print("fig5");
  return 0;
}
