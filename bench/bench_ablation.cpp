//===- bench_ablation.cpp - Ablating the design choices -------------------===//
///
/// \file
/// Ablation study (ours; DESIGN.md calls the choices out) over a
/// representative subset of the suite: SE²GIS with each of the three
/// implementation-level design decisions disabled in turn:
///
///  - **EUF anchoring**: soft equalities tying the uninterpreted-function
///    model to the previous candidate's predictions (without it, Z3 fills
///    underconstrained cells with ungeneralizable values),
///  - **ite path-splitting**: turning `p ⇒ ite(c, l1, l2) = r` into two
///    guarded equations (without it, frames over-approximate argument
///    equality and the witness generator goes blind),
///  - **lemma replay**: feeding learned invariants back into the final
///    induction proof (without it, solutions fall back to bounded checks).
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "support/Log.h"
#include "support/ThreadPool.h"

#include <future>
#include <memory>

using namespace se2gis;

namespace {

const char *Subset[] = {
    "list/sum",          "list/mps",
    "sortedlist/min",    "sortedlist/count_lt",
    "sortedlist/max",    "bst/contains",
    "evenlist/parity_of_sum", "constlist/max",
    "parallel/sum",      "postcond/min_max",
    "unreal/sum",        "unreal/min_no_invariant",
    "unreal/parity",     "unreal/frequency_fig2b",
};

struct Config {
  const char *Name;
  bool NoAnchor, NoSplit, NoLemmas;
};

} // namespace

int main() {
  PerfReport Perf;
  const SolverConfig Base = SolverConfig::fromEnv(/*DefaultTimeoutMs=*/4000);

  const Config Configs[] = {
      {"full", false, false, false},
      {"-anchoring", true, false, false},
      {"-splitting", false, true, false},
      {"-lemma-replay", false, false, true},
  };

  TableWriter Table({"config", "solved", "of", "total-ms", "inductive"});
  // The benchmarks of one config run concurrently on the shared pool;
  // results are collected in subset order so the log and the table stay
  // deterministic. Configs stay sequential: their rows build on separate
  // counter ranges and the table reads better grouped.
  ThreadPool Pool(Base.Jobs);
  for (const Config &C : Configs) {
    std::vector<std::pair<const char *, std::future<Outcome>>> Runs;
    for (const char *Name : Subset) {
      const BenchmarkDef *Def = findBenchmark(Name);
      if (!Def)
        continue;
      Runs.emplace_back(Name, Pool.enqueue([Def, &C, &Base] {
        SynthesisTask Task(
            std::make_shared<const Problem>(loadBenchmark(*Def)),
            AlgorithmKind::SE2GIS);
        SolverConfig Config = Base;
        Config.Algo.DisableEufAnchoring = C.NoAnchor;
        Config.Algo.DisableIteSplitting = C.NoSplit;
        Config.Algo.DisableLemmaReplay = C.NoLemmas;
        return Task.run(Config);
      }));
    }
    int Solved = 0, Total = 0, Inductive = 0;
    double TotalMs = 0;
    for (auto &[Name, Future] : Runs) {
      const BenchmarkDef *Def = findBenchmark(Name);
      Outcome R = Future.get();
      ++Total;
      TotalMs += R.Stats.ElapsedMs;
      bool Ok = Def->ExpectRealizable ? R.V == Verdict::Realizable
                                      : R.V == Verdict::Unrealizable;
      Solved += Ok;
      Inductive += Ok && R.Stats.SolutionProvedInductive;
      logf(LogLevel::Info, "ablation", "%-14s %-28s %s", C.Name, Name,
           verdictName(R.V));
    }
    Table.addRow({C.Name, std::to_string(Solved), std::to_string(Total),
                  std::to_string(static_cast<long long>(TotalMs)),
                  std::to_string(Inductive)});
  }
  std::printf("\n== Ablation: SE2GIS design choices on a %zu-benchmark "
              "subset ==\n%s",
              std::size(Subset), Table.renderText().c_str());
  std::printf("\nexpected shape: -splitting loses the conditional "
              "skeletons and most witnesses; -anchoring loses "
              "nested-unknown systems; -lemma-replay keeps (or slightly "
              "gains) solves but drops inductive verification to the "
              "bounded level.\n");
  Perf.print("ablation");
  return 0;
}
