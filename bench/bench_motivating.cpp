//===- bench_motivating.cpp - §2 motivating example ------------------------===//
///
/// \file
/// Regenerates the §2 narrative on the BST `frequency` example:
///  1. the Fig. 2(b) skeleton is unrealizable and a witness is produced
///     quickly ("in less than a second" in the paper),
///  2. the step-(1) repair is still unrealizable with a new witness,
///  3. the repaired skeleton (Fig. 2(c)) is synthesized by SE²GIS, and
///  4. full-bounding symbolic CEGIS is much slower on the repaired problem
///     (paper: 88 seconds vs one second).
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include <memory>

using namespace se2gis;

namespace {

double runOne(const char *Name, AlgorithmKind K, const SolverConfig &Config) {
  const BenchmarkDef *Def = findBenchmark(Name);
  if (!Def) {
    std::printf("  (benchmark %s missing)\n", Name);
    return -1;
  }
  auto P = std::make_shared<const Problem>(loadBenchmark(*Def));
  SynthesisTask Task(P, K);
  Outcome R = Task.run(Config);
  std::printf("  %-9s on %-28s -> %-12s %8.1f ms\n", algorithmName(K), Name,
              verdictName(R.V), R.Stats.ElapsedMs);
  if (R.V == Verdict::Unrealizable)
    std::printf("    %s\n", R.Detail.c_str());
  if (R.V == Verdict::Realizable)
    std::printf("%s", solutionToString(*P, R.Solution).c_str());
  return R.Stats.ElapsedMs;
}

} // namespace

int main() {
  PerfReport Perf;
  const SolverConfig Config = SolverConfig::fromEnv(/*DefaultTimeoutMs=*/20000);
  SolverConfig SegisConfig = Config;
  SegisConfig.Algo.TimeoutMs = 4 * Config.Algo.TimeoutMs;

  std::printf("== §2 motivating example: frequency on binary search trees "
              "==\n");
  std::printf("\nStep 0: the Fig. 2(b) skeleton (both recursions "
              "misplaced):\n");
  runOne("unreal/frequency_fig2b", AlgorithmKind::SE2GIS, Config);
  std::printf("\nStep 1: after the first repair (u2 still missing g(l)):\n");
  runOne("unreal/frequency_step1", AlgorithmKind::SE2GIS, Config);
  std::printf("\nStep 2: the repaired skeleton (Fig. 2(c)):\n");
  double Se2gisMs = runOne("bst/frequency", AlgorithmKind::SE2GIS, Config);
  std::printf("\nBaseline: full-bounding symbolic CEGIS on the repaired "
              "skeleton (paper: 88 s vs 1 s):\n");
  double SegisMs = runOne("bst/frequency", AlgorithmKind::SEGIS,
                          SegisConfig);
  if (Se2gisMs > 0 && SegisMs > 0)
    std::printf("\nspeedup of SE2GIS over full bounding: %.1fx  [paper: "
                "~88x]\n",
                SegisMs / Se2gisMs);
  Perf.print("motivating");
  return 0;
}
