//===- bench_motivating.cpp - §2 motivating example ------------------------===//
///
/// \file
/// Regenerates the §2 narrative on the BST `frequency` example:
///  1. the Fig. 2(b) skeleton is unrealizable and a witness is produced
///     quickly ("in less than a second" in the paper),
///  2. the step-(1) repair is still unrealizable with a new witness,
///  3. the repaired skeleton (Fig. 2(c)) is synthesized by SE²GIS, and
///  4. full-bounding symbolic CEGIS is much slower on the repaired problem
///     (paper: 88 seconds vs one second).
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

using namespace se2gis;

namespace {

double runOne(const char *Name, AlgorithmKind K, std::int64_t TimeoutMs) {
  const BenchmarkDef *Def = findBenchmark(Name);
  if (!Def) {
    std::printf("  (benchmark %s missing)\n", Name);
    return -1;
  }
  Problem P = loadBenchmark(*Def);
  AlgoOptions Opts;
  Opts.TimeoutMs = TimeoutMs;
  RunResult R = runAlgorithm(K, P, Opts);
  std::printf("  %-9s on %-28s -> %-12s %8.1f ms\n", algorithmName(K), Name,
              outcomeName(R.O), R.Stats.ElapsedMs);
  if (R.O == Outcome::Unrealizable)
    std::printf("    %s\n", R.Detail.c_str());
  if (R.O == Outcome::Realizable)
    std::printf("%s", solutionToString(P, R.Solution).c_str());
  return R.Stats.ElapsedMs;
}

} // namespace

int main() {
  PerfReport Perf;
  std::int64_t TimeoutMs = 20000;
  if (const char *T = std::getenv("SE2GIS_TIMEOUT_MS"))
    TimeoutMs = std::atoll(T);

  std::printf("== §2 motivating example: frequency on binary search trees "
              "==\n");
  std::printf("\nStep 0: the Fig. 2(b) skeleton (both recursions "
              "misplaced):\n");
  runOne("unreal/frequency_fig2b", AlgorithmKind::SE2GIS, TimeoutMs);
  std::printf("\nStep 1: after the first repair (u2 still missing g(l)):\n");
  runOne("unreal/frequency_step1", AlgorithmKind::SE2GIS, TimeoutMs);
  std::printf("\nStep 2: the repaired skeleton (Fig. 2(c)):\n");
  double Se2gisMs = runOne("bst/frequency", AlgorithmKind::SE2GIS, TimeoutMs);
  std::printf("\nBaseline: full-bounding symbolic CEGIS on the repaired "
              "skeleton (paper: 88 s vs 1 s):\n");
  double SegisMs = runOne("bst/frequency", AlgorithmKind::SEGIS,
                          4 * TimeoutMs);
  if (Se2gisMs > 0 && SegisMs > 0)
    std::printf("\nspeedup of SE2GIS over full bounding: %.1fx  [paper: "
                "~88x]\n",
                SegisMs / Se2gisMs);
  Perf.print("motivating");
  return 0;
}
