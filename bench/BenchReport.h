//===- BenchReport.h - Shared reporting helpers for the harness -*- C++-*-===//
///
/// \file
/// Helpers shared by the per-table/per-figure harness binaries: formatting
/// run outcomes the way the paper's tables do ('-' for timeouts, step
/// strings of bullets), and splitting records per algorithm.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_BENCH_BENCHREPORT_H
#define SE2GIS_BENCH_BENCHREPORT_H

#include "suite/Runner.h"
#include "support/PerfCounters.h"
#include "support/Stopwatch.h"
#include "support/TableWriter.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace se2gis {

/// Captures the process-wide perf counters around a harness run and prints
/// the delta after the tables — the same numbers the SE2GIS_PERF_JSON
/// summary (written by runSuite) contains, plus the wall/Z3 time split
/// that shows how well the parallel sweep is feeding the cores.
class PerfReport {
public:
  PerfReport() : Before(snapshotPerf()) {}

  void print(const char *What) const {
    PerfSnapshot D = snapshotPerf().since(Before);
    std::fprintf(stderr, "[perf] %s: %s wall_ms=%.1f\n", What,
                 D.str().c_str(), Wall.elapsedMs());
  }

private:
  PerfSnapshot Before;
  Stopwatch Wall;
};

/// Formats a run like the paper's time columns: seconds on success, '-' on
/// timeout, the symbol used in the appendix for hard failures.
inline std::string formatRun(const SuiteRecord &R) {
  if (isSolved(R))
    return formatSeconds(R.Result.Stats.ElapsedMs);
  if (R.Result.V == Verdict::Failed)
    return "x";
  return "-";
}

/// Formats a paper reference time (seconds / '-' / blank).
inline std::string formatPaper(double Sec) {
  if (Sec == kPaperTimeout)
    return "-";
  if (Sec == kPaperNotReported)
    return "";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", Sec);
  return Buf;
}

/// All records of one algorithm, in registry order.
inline std::vector<const SuiteRecord *>
recordsOf(const std::vector<SuiteRecord> &Records, AlgorithmKind K) {
  std::vector<const SuiteRecord *> Out;
  for (const SuiteRecord &R : Records)
    if (R.Algorithm == K)
      Out.push_back(&R);
  return Out;
}

/// Solve times (ms) of the solved runs, sorted ascending (a quantile
/// series).
inline std::vector<double>
quantileSeries(const std::vector<const SuiteRecord *> &Records) {
  std::vector<double> Times;
  for (const SuiteRecord *R : Records)
    if (isSolved(*R))
      Times.push_back(R->Result.Stats.ElapsedMs);
  std::sort(Times.begin(), Times.end());
  return Times;
}

} // namespace se2gis

#endif // SE2GIS_BENCH_BENCHREPORT_H
