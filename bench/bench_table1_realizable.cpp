//===- bench_table1_realizable.cpp - Appendix Table 1 ---------------------===//
///
/// \file
/// Regenerates Table 1: per-benchmark results on the realizable set. For
/// each benchmark: SE²GIS time, its step string ('•' refinement / '◦'
/// coarsening) and whether all inferred invariants were proved by induction
/// (the "I?" column), then SEGIS+UC and SEGIS times with their refinement
/// counts — next to the paper's reference times where reported.
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

using namespace se2gis;

int main() {
  PerfReport Perf;
  SuiteOptions Opts = suiteOptionsFromEnv(/*DefaultTimeoutMs=*/6000);
  Opts.Algorithms = {AlgorithmKind::SE2GIS, AlgorithmKind::SEGISUC,
                     AlgorithmKind::SEGIS};
  Opts.SkipUnrealizable = true; // Table 1 covers the realizable set
  std::vector<SuiteRecord> Records = runSuite(Opts);

  TableWriter T({"Benchmark", "Category", "I?", "SE2GIS", "steps", "#r",
                 "SEGIS+UC", "#r", "SEGIS", "#r", "paper:SE2GIS",
                 "paper:SEGIS+UC", "paper:SEGIS"});
  auto A = recordsOf(Records, AlgorithmKind::SE2GIS);
  auto B = recordsOf(Records, AlgorithmKind::SEGISUC);
  auto C = recordsOf(Records, AlgorithmKind::SEGIS);
  for (size_t I = 0; I < A.size(); ++I) {
    const BenchmarkDef &Def = *A[I]->Def;
    if (!Def.ExpectRealizable)
      continue;
    const RunStats &S = A[I]->Result.Stats;
    T.addRow({Def.Name, Def.Category,
              S.AllInvariantsByInduction ? "y" : "n", formatRun(*A[I]),
              S.Steps, std::to_string(S.Refinements), formatRun(*B[I]),
              std::to_string(B[I]->Result.Stats.Refinements),
              formatRun(*C[I]),
              std::to_string(C[I]->Result.Stats.Refinements),
              formatPaper(Def.PaperSe2gisSec),
              formatPaper(Def.PaperSegisUcSec),
              formatPaper(Def.PaperSegisSec)});
  }
  std::printf("\n== Table 1: realizable benchmarks (times in seconds; '-' "
              "timeout, 'x' failure) ==\n%s",
              T.renderText().c_str());
  Perf.print("table1");
  return 0;
}
