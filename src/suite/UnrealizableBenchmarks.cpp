//===- UnrealizableBenchmarks.cpp - The 45 unrealizable problems ----------===//
///
/// \file
/// The paper's Table 2: unrealizable variations of the realizable set —
/// skeletons missing recursive calls or arguments, problems whose invariant
/// was dropped, and joins that would need operations outside any function
/// family (e.g. exponentiation for `poly`). `unreal/forced_unknown_nesting`
/// reproduces Appendix C.1.3: the approximation is unrealizable but no
/// frame-based functional witness exists, so the tool *fails* rather than
/// reporting unrealizability.
///
//===----------------------------------------------------------------------===//

#include "suite/Benchmarks.h"

using namespace se2gis;

namespace {

const char *ZPrelude = R"(
type list = Nil | Cons of int * list
)";

const char *NPrelude = R"(
type list = Elt of int | Cons of int * list
)";

const char *TreePrelude = R"(
type tree = Leaf of int | Node of int * tree * tree
)";

const char *ParPrelude = R"(
type clist = Single of int | Concat of clist * clist
type list = Elt of int | Cons of int * list

let rec repr = function
  | Single a -> Elt a
  | Concat (x, y) -> app (repr y) x
and app (l : list) = function
  | Single a -> Cons (a, l)
  | Concat (x, y) -> app (app l y) x
)";

void add(std::vector<BenchmarkDef> &Out, const char *Name,
         std::string Source, double PaperSe2gis, double PaperSegisUc,
         bool ByInduction = true) {
  BenchmarkDef B;
  B.Name = Name;
  B.Category = "Unrealizable";
  B.Source = std::move(Source);
  B.ExpectRealizable = false;
  B.PaperSe2gisSec = PaperSe2gis;
  B.PaperSegisUcSec = PaperSegisUc;
  B.PaperSegisSec = kPaperTimeout; // SEGIS solves no unrealizable benchmark
  B.PaperByInduction = ByInduction;
  Out.push_back(std::move(B));
}

/// A one-liner factory for the most common breakage: the Cons rule of the
/// skeleton drops the recursive call, so the unknown would need to know the
/// tail's summary.
std::string droppedRecursion(const char *RefDef, const char *RefName,
                             const char *RetTy) {
  return std::string(ZPrelude) + RefDef + "\nlet rec tgt : " + RetTy +
         " = function\n  | Nil -> $f0\n  | Cons (a, l) -> $f1 a\n"
         "synthesize tgt equiv " +
         RefName + "\n";
}

} // namespace

void se2gis::addUnrealizableBenchmarks(std::vector<BenchmarkDef> &Out) {
  // --- Skeletons missing the recursive call --------------------------------

  add(Out, "unreal/sum", droppedRecursion(R"(
let rec lsum = function
  | Nil -> 0
  | Cons (a, l) -> a + lsum l
)", "lsum", "int"), 0.028, 0.023);

  add(Out, "unreal/length", droppedRecursion(R"(
let rec llen = function
  | Nil -> 0
  | Cons (a, l) -> 1 + llen l
)", "llen", "int"), kPaperNotReported, kPaperNotReported);

  add(Out, "unreal/max", droppedRecursion(R"(
let rec lmax = function
  | Nil -> 0
  | Cons (a, l) -> max a (lmax l)
)", "lmax", "int"), kPaperNotReported, kPaperNotReported);

  add(Out, "unreal/min_no_invariant", std::string(NPrelude) + R"(
(* The paper's §1.1 example without sortedness: unrealizable. *)
let rec lmin = function
  | Elt a -> a
  | Cons (a, l) -> min a (lmin l)
let rec tmin : int = function
  | Elt a -> $b1 a
  | Cons (a, l) -> $b2 a
synthesize tmin equiv lmin
)",
      0.065, kPaperTimeout);

  add(Out, "unreal/parity", std::string(NPrelude) + R"(
(* Parity of the sum without the all-even invariant. *)
let rec psum = function
  | Elt a -> a mod 2 = 1
  | Cons (a, l) -> (a mod 2 = 1) <> psum l
let rec tpsum : bool = function
  | Elt a -> $u0 a
  | Cons (a, l) -> $u1 a
synthesize tpsum equiv psum
)",
      0.033, 0.036);

  add(Out, "unreal/largest_even_positive", std::string(NPrelude) + R"(
(* Largest even element without recursing: needs the tail's summary. *)
let rec lev = function
  | Elt a -> if a mod 2 = 0 then a else 0
  | Cons (a, l) ->
    let m = lev l in
    if a mod 2 = 0 then max a m else m
let rec tlev : int = function
  | Elt a -> $u0 a
  | Cons (a, l) -> $u1 a
synthesize tlev equiv lev
)",
      0.104, 0.028);

  add(Out, "unreal/is_sorted", std::string(NPrelude) + R"(
(* (head, sorted?) but the skeleton drops the tail's head. *)
let rec chk = function
  | Elt a -> (a, true)
  | Cons (a, l) ->
    let h, s = chk l in
    (a, a <= h && s)
let rec tchk : int * bool = function
  | Elt a -> $g0 a
  | Cons (a, l) ->
    let h, s = tchk l in
    $g1 a s
synthesize tchk equiv chk
)",
      0.071, kPaperTimeout);

  add(Out, "unreal/mps_no_sum", std::string(ZPrelude) + R"(
(* Maximum prefix sum whose skeleton forgets the running sum. *)
let rec mps = function
  | Nil -> (0, 0)
  | Cons (a, l) ->
    let s, m = mps l in
    (a + s, max 0 (a + m))
let rec tmps : int * int = function
  | Nil -> $g0
  | Cons (a, l) ->
    let s, m = tmps l in
    $g1 a m
synthesize tmps equiv mps
)",
      0.032, kPaperTimeout);

  add(Out, "unreal/mts_no_sum", std::string(ZPrelude) + R"(
let rec mts = function
  | Nil -> (0, 0)
  | Cons (a, l) ->
    let s, m = mts l in
    (a + s, max (a + s) m)
let rec tmts : int * int = function
  | Nil -> $g0
  | Cons (a, l) ->
    let s, m = tmts l in
    $g1 a m
synthesize tmts equiv mts
)",
      0.096, kPaperTimeout);

  add(Out, "unreal/mits", std::string(ZPrelude) + R"(
(* Maximum initial (prefix) sum, skeleton dropping the prefix max. *)
let rec mits = function
  | Nil -> (0, 0)
  | Cons (a, l) ->
    let s, m = mits l in
    (a + s, max 0 (a + m))
let rec tmits : int * int = function
  | Nil -> $g0
  | Cons (a, l) ->
    let s, m = tmits l in
    $g1 s
synthesize tmits equiv mits
)",
      0.064, kPaperTimeout);

  add(Out, "unreal/minmax", std::string(ZPrelude) + R"(
(* (min, max) with only the max surviving the recursion. *)
let rec mm = function
  | Nil -> (0, 0)
  | Cons (a, l) ->
    let mn, mx = mm l in
    (min a mn, max a mx)
let rec tmm : int * int = function
  | Nil -> $g0
  | Cons (a, l) ->
    let mn, mx = tmm l in
    $g1 a mx
synthesize tmm equiv mm
)",
      0.065, kPaperTimeout);

  add(Out, "unreal/minmax_v2", std::string(ZPrelude) + R"(
let rec mm = function
  | Nil -> (0, 0)
  | Cons (a, l) ->
    let mn, mx = mm l in
    (min a mn, max a mx)
let rec tmm : int * int = function
  | Nil -> $g0
  | Cons (a, l) ->
    let mn, mx = tmm l in
    $g1 a mn
synthesize tmm equiv mm
)",
      0.052, kPaperTimeout);

  add(Out, "unreal/second_min", std::string(ZPrelude) + R"(
(* Second-smallest with the pair collapsed to its first component. *)
let rec smin = function
  | Nil -> (0, 0)
  | Cons (a, l) ->
    let m1, m2 = smin l in
    (min a m1, min (max a m1) m2)
let rec tsmin : int * int = function
  | Nil -> $g0
  | Cons (a, l) ->
    let m1, m2 = tsmin l in
    $g1 a m1
synthesize tsmin equiv smin
)",
      kPaperNotReported, kPaperNotReported);

  add(Out, "unreal/gradient", std::string(ZPrelude) + R"(
(* Is the sequence increasing by exactly 1?  Skeleton loses the head. *)
let rec grad = function
  | Nil -> (0, true)
  | Cons (a, l) ->
    let h, g = grad l in
    (a, g && (a + 1 = h))
let rec tgrad : int * bool = function
  | Nil -> $g0
  | Cons (a, l) ->
    let h, g = tgrad l in
    $g1 a g
synthesize tgrad equiv grad
)",
      0.012, 0.024);

  add(Out, "unreal/zero_after_one", std::string(ZPrelude) + R"(
(* Does a 0 appear somewhere after a 1?  Needs both flags. *)
let rec zao = function
  | Nil -> (false, false)
  | Cons (a, l) ->
    let saw0, ok = zao l in
    (a = 0 || saw0, ok || (a = 1 && saw0))
let rec tzao : bool * bool = function
  | Nil -> $g0
  | Cons (a, l) ->
    let saw0, ok = tzao l in
    $g1 a ok
synthesize tzao equiv zao
)",
      0.039, 0.122);

  add(Out, "unreal/search_index", std::string(ZPrelude) + R"(
(* Index of x (0 if absent): dropping the recursion loses the offset. *)
let rec idx (x : int) = function
  | Nil -> 0
  | Cons (a, l) ->
    let i = idx x l in
    if a = x then 1 else if i = 0 then 0 else i + 1
let rec tidx (x : int) : int = function
  | Nil -> $f0
  | Cons (a, l) -> $f1 x a
synthesize tidx equiv idx
)",
      0.030, kPaperTimeout);

  add(Out, "unreal/sum_smaller_pos", std::string(ZPrelude) + R"(
(* Sum of positive elements, recursion dropped. *)
let rec ssp = function
  | Nil -> 0
  | Cons (a, l) -> (if a > 0 then a else 0) + ssp l
let rec tssp : int = function
  | Nil -> $f0
  | Cons (a, l) -> $f1 a
synthesize tssp equiv ssp
)",
      0.034, kPaperTimeout);

  add(Out, "unreal/value_pos_mult", std::string(ZPrelude) + R"(
(* Count of positive values times two, recursion dropped. *)
let rec vpm = function
  | Nil -> 0
  | Cons (a, l) -> (if a > 0 then 2 else 0) + vpm l
let rec tvpm : int = function
  | Nil -> $f0
  | Cons (a, l) -> $f1 a
synthesize tvpm equiv vpm
)",
      0.028, kPaperTimeout);

  add(Out, "unreal/atoi", std::string(ZPrelude) + R"(
(* Base-10 digit folding with the recursion dropped entirely. *)
let rec atoi = function
  | Nil -> 0
  | Cons (a, l) -> a + 10 * atoi l
let rec tatoi : int = function
  | Nil -> $g0
  | Cons (a, l) -> $g1 a
synthesize tatoi equiv atoi
)",
      0.028, kPaperTimeout);

  add(Out, "unreal/poly", std::string(ParPrelude) + R"(
(* Horner evaluation over concatenations needs 2^len: no join exists. *)
let rec poly = function
  | Elt a -> a
  | Cons (a, l) -> a + 2 * poly l
let rec par : int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x)
synthesize par equiv poly via repr
)",
      0.057, 0.100);

  add(Out, "unreal/product", std::string(ParPrelude) + R"(
(* Product requires multiplying two recursion results; the grammar only
   multiplies by constants, and the missing argument makes it worse. *)
let rec prod = function
  | Elt a -> a
  | Cons (a, l) -> a + a * prod l
let rec par : int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par y)
synthesize par equiv prod via repr
)",
      0.691, kPaperTimeout);

  add(Out, "unreal/mps_parallel", std::string(ParPrelude) + R"(
(* Parallel mps without the sum component. *)
let rec mpso = function
  | Elt a -> max a 0
  | Cons (a, l) -> max 0 (a + mpso l)
let rec par : int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par y)
synthesize par equiv mpso via repr
)",
      0.057, 0.108);

  add(Out, "unreal/mts_and_mps_no_sum", std::string(ParPrelude) + R"(
let rec both = function
  | Elt a -> (max a 0, max a 0)
  | Cons (a, l) ->
    let t, p = both l in
    (max t 0 + a - a, max 0 (a + p))
let rec par : int * int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x)
synthesize par equiv both via repr
)",
      0.096, kPaperTimeout);

  add(Out, "unreal/sum_parallel_missing", std::string(ParPrelude) + R"(
(* Parallel sum whose join sees only one side. *)
let rec lsum = function
  | Elt a -> a
  | Cons (a, l) -> a + lsum l
let rec par : int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x)
synthesize par equiv lsum via repr
)",
      0.028, 0.023);

  add(Out, "unreal/swapping_missing_call", std::string(ParPrelude) + R"(
(* The join receives the same side twice (a swapped/missing call). *)
let rec lsum = function
  | Elt a -> a
  | Cons (a, l) -> a + lsum l
let rec par : int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par x)
synthesize par equiv lsum via repr
)",
      7.772, kPaperTimeout);

  // --- The §2 motivating example: broken BST skeletons -----------------------

  const char *FreqPrelude = R"(
let rec bst = function
  | Leaf a -> true
  | Node (a, l, r) -> alllt a l && allgeq a r && bst l && bst r
and alllt (v : int) = function
  | Leaf a -> a < v
  | Node (a, l, r) -> a < v && alllt v l && alllt v r
and allgeq (v : int) = function
  | Leaf a -> a >= v
  | Node (a, l, r) -> a >= v && allgeq v l && allgeq v r

let rec freq (x : int) = function
  | Leaf a -> if a = x then 1 else 0
  | Node (a, l, r) ->
    freq x l + freq x r + (if a = x then 1 else 0)
)";

  add(Out, "unreal/frequency_fig2b",
      std::string(TreePrelude) + FreqPrelude + R"(
(* Figure 2(b): both recursive calls are misplaced. *)
let rec tfreq (x : int) : int = function
  | Leaf a -> $u0 x a
  | Node (a, l, r) ->
    if a < x then $u1 (tfreq x l)
    else $u2 x a (tfreq x r)
synthesize tfreq equiv freq requires bst
)",
      0.9, 0.9);

  add(Out, "unreal/frequency_step1",
      std::string(TreePrelude) + FreqPrelude + R"(
(* After repair step (1): u1's argument fixed, u2 still missing g(l). *)
let rec tfreq (x : int) : int = function
  | Leaf a -> $u0 x a
  | Node (a, l, r) ->
    if a < x then $u1 (tfreq x r)
    else $u2 x a (tfreq x r)
synthesize tfreq equiv freq requires bst
)",
      0.9, 0.9);

  add(Out, "unreal/bst_contains_wrong",
      std::string(TreePrelude) + FreqPrelude + R"(
let rec mem (x : int) = function
  | Leaf a -> a = x
  | Node (a, l, r) -> a = x || mem x l || mem x r
let rec tmem (x : int) : bool = function
  | Leaf a -> $u0 x a
  | Node (a, l, r) ->
    if a < x then $u1 (tmem x l) else $u2 x a (tmem x l)
synthesize tmem equiv mem requires bst
)",
      kPaperNotReported, kPaperNotReported);

  // --- Trees with dropped recursions -------------------------------------------

  add(Out, "unreal/tree_sum", std::string(TreePrelude) + R"(
let rec tsum = function
  | Leaf a -> a
  | Node (a, l, r) -> a + tsum l + tsum r
let rec ttsum : int = function
  | Leaf a -> $f0 a
  | Node (a, l, r) -> $f1 a (ttsum l)
synthesize ttsum equiv tsum
)",
      kPaperNotReported, kPaperNotReported);

  add(Out, "unreal/tree_height", std::string(TreePrelude) + R"(
let rec th = function
  | Leaf a -> 1
  | Node (a, l, r) -> 1 + max (th l) (th r)
let rec tth : int = function
  | Leaf a -> $f0
  | Node (a, l, r) -> $f1 (tth l)
synthesize tth equiv th
)",
      kPaperNotReported, kPaperNotReported);

  add(Out, "unreal/height_memoizing_max", std::string(TreePrelude) + R"(
(* (height, max) with the height dropped by the skeleton. *)
let rec hm = function
  | Leaf a -> (1, a)
  | Node (a, l, r) ->
    let hl, ml = hm l in
    let hr, mr = hm r in
    (1 + max hl hr, max a (max ml mr))
let rec thm : int * int = function
  | Leaf a -> $g0 a
  | Node (a, l, r) ->
    let hl, ml = thm l in
    let hr, mr = thm r in
    $g1 a ml mr
synthesize thm equiv hm
)",
      0.064, 0.029);

  add(Out, "unreal/min_max_mts", std::string(ZPrelude) + R"(
(* (min, max, mts) losing the running sum. *)
let rec m3 = function
  | Nil -> (0, 0, 0)
  | Cons (a, l) ->
    let mn, mx, s = m3 l in
    (min a mn, max a mx, a + s)
let rec tm3 : int * int * int = function
  | Nil -> $g0
  | Cons (a, l) ->
    let mn, mx, s = tm3 l in
    $g1 a mn mx
synthesize tm3 equiv m3
)",
      3.344, kPaperTimeout);

  add(Out, "unreal/min_max_mixed", std::string(ZPrelude) + R"(
let rec m3 = function
  | Nil -> (0, 0, 0)
  | Cons (a, l) ->
    let mn, mx, s = m3 l in
    (min a mn, max a mx, a + s)
let rec tm3 : int * int * int = function
  | Nil -> $g0
  | Cons (a, l) ->
    let mn, mx, s = tm3 l in
    $g1 a mn s
synthesize tm3 equiv m3
)",
      0.668, kPaperTimeout);

  add(Out, "unreal/partial_sum", std::string(ZPrelude) + R"(
(* (sum, count) with the count dropped. *)
let rec sc = function
  | Nil -> (0, 0)
  | Cons (a, l) ->
    let s, c = sc l in
    (a + s, c + 1)
let rec tsc : int * int = function
  | Nil -> $g0
  | Cons (a, l) ->
    let s, c = tsc l in
    $g1 a s
synthesize tsc equiv sc
)",
      22.955, 0.056);

  add(Out, "unreal/common_elt", std::string(ZPrelude) + R"(
(* Shares an element with {x}? Skeleton drops the flag. *)
let rec ce (x : int) = function
  | Nil -> false
  | Cons (a, l) -> a = x || ce x l
let rec tce (x : int) : bool = function
  | Nil -> $f0
  | Cons (a, l) -> $f1 x a
synthesize tce equiv ce
)",
      0.030, 0.026);

  add(Out, "unreal/interval_intersection", std::string(ZPrelude) + R"(
(* (lo, hi) of the intersection of [a,a+1] intervals; hi dropped. *)
let rec ii = function
  | Nil -> (0, 0)
  | Cons (a, l) ->
    let lo, hi = ii l in
    (max a lo, min (a + 1) hi)
let rec tii : int * int = function
  | Nil -> $g0
  | Cons (a, l) ->
    let lo, hi = tii l in
    $g1 a lo
synthesize tii equiv ii
)",
      0.070, kPaperTimeout);

  add(Out, "unreal/two_sum", std::string(ZPrelude) + R"(
(* Is there a pair summing to 0? Needs the set, not just a flag. *)
let rec ts = function
  | Nil -> (false, false)
  | Cons (a, l) ->
    let has, ok = ts l in
    (has || a = 0, ok || (has && a = 0) || a + a = 0)
let rec tts : bool * bool = function
  | Nil -> $g0
  | Cons (a, l) ->
    let has, ok = tts l in
    $g1 ok
synthesize tts equiv ts
)",
      0.068, kPaperTimeout);

  add(Out, "unreal/pareto_approx", std::string(ZPrelude) + R"(
(* (best, second) Pareto pair with the second dropped. *)
let rec pa = function
  | Nil -> (0, 0)
  | Cons (a, l) ->
    let b, s = pa l in
    (max a b, max (min a b) s)
let rec tpa : int * int = function
  | Nil -> $g0
  | Cons (a, l) ->
    let b, s = tpa l in
    $g1 a b
synthesize tpa equiv pa
)",
      0.023, 0.041);

  add(Out, "unreal/largest_diff", std::string(ZPrelude) + R"(
(* max - min with only the max kept by the skeleton. *)
let rec ld = function
  | Nil -> (0, 0, 0)
  | Cons (a, l) ->
    let mn, mx, d = ld l in
    (min a mn, max a mx, max a mx - min a mn)
let rec tld : int * int * int = function
  | Nil -> $g0
  | Cons (a, l) ->
    let mn, mx, d = tld l in
    $g1 a mx
synthesize tld equiv ld
)",
      0.022, 0.023);

  add(Out, "unreal/count_between_swap", std::string(TreePrelude) + R"(
(* Count labels in [lo,hi) on a BST, but the skeleton swaps the cut
   directions, recursing into the side that was pruned. *)
let rec bst = function
  | Leaf a -> true
  | Node (a, l, r) -> alllt a l && allgeq a r && bst l && bst r
and alllt (v : int) = function
  | Leaf a -> a < v
  | Node (a, l, r) -> a < v && alllt v l && alllt v r
and allgeq (v : int) = function
  | Leaf a -> a >= v
  | Node (a, l, r) -> a >= v && allgeq v l && allgeq v r

let rec cb (lo : int) (hi : int) = function
  | Leaf a -> if lo <= a && a < hi then 1 else 0
  | Node (a, l, r) ->
    (if lo <= a && a < hi then 1 else 0) + cb lo hi l + cb lo hi r
let rec tcb (lo : int) (hi : int) : int = function
  | Leaf a -> $u0 lo hi a
  | Node (a, l, r) ->
    if a < lo then $u1 (tcb lo hi l) else $u2 lo hi a (tcb lo hi l)
synthesize tcb equiv cb requires bst
)",
      2.850, 0.038);

  add(Out, "unreal/count_between_v2", std::string(TreePrelude) + R"(
let rec cb (lo : int) (hi : int) = function
  | Leaf a -> if lo <= a && a < hi then 1 else 0
  | Node (a, l, r) ->
    (if lo <= a && a < hi then 1 else 0) + cb lo hi l + cb lo hi r
let rec tcb (lo : int) (hi : int) : int = function
  | Leaf a -> $u0 lo hi a
  | Node (a, l, r) -> $u1 lo hi a (tcb lo hi r)
synthesize tcb equiv cb
)",
      2.404, 0.128);

  add(Out, "unreal/contains_no_invariant", std::string(TreePrelude) + R"(
(* BST-style pruning without the BST invariant. *)
let rec mem (x : int) = function
  | Leaf a -> a = x
  | Node (a, l, r) -> a = x || mem x l || mem x r
let rec tmem (x : int) : bool = function
  | Leaf a -> $u0 x a
  | Node (a, l, r) ->
    if a < x then $u1 (tmem x r) else $u2 x a (tmem x r) (tmem x l)
synthesize tmem equiv mem
)",
      0.035, 0.055);

  add(Out, "unreal/contains_v2", std::string(NPrelude) + R"(
(* Constant-time membership without the constant-list invariant. *)
let rec mem (x : int) = function
  | Elt a -> a = x
  | Cons (a, l) -> a = x || mem x l
let rec tmem (x : int) : bool = function
  | Elt a -> $u0 x a
  | Cons (a, l) -> $u1 x a
synthesize tmem equiv mem
)",
      0.027, 0.028);

  add(Out, "unreal/most_freq_no_invariant", std::string(NPrelude) + R"(
(* Count of the head's occurrences in constant time without the constant
   list invariant. *)
let rec cf = function
  | Elt a -> (a, 1)
  | Cons (a, l) ->
    let v, c = cf l in
    (a, if a = v then c + 1 else 1)
let rec tcf : int * int = function
  | Elt a -> $g0 a
  | Cons (a, l) -> $g1 a
synthesize tcf equiv cf
)",
      0.523, kPaperTimeout);

  add(Out, "unreal/partial_order_sorted", std::string(NPrelude) + R"(
(* Head = min requires sortedness; with only evenness it fails. *)
let rec alleven = function
  | Elt a -> a mod 2 = 0
  | Cons (a, l) -> a mod 2 = 0 && alleven l
let rec lmin = function
  | Elt a -> a
  | Cons (a, l) -> min a (lmin l)
let rec tmin : int = function
  | Elt a -> $b1 a
  | Cons (a, l) -> $b2 a
synthesize tmin equiv lmin requires alleven
)",
      0.082, 0.047);

  add(Out, "unreal/pyramid_sort", std::string(NPrelude) + R"(
(* (max, is-unimodal-ish) with the max dropped. *)
let rec py = function
  | Elt a -> (a, true)
  | Cons (a, l) ->
    let m, u = py l in
    (max a m, u && a <= m)
let rec tpy : int * bool = function
  | Elt a -> $g0 a
  | Cons (a, l) ->
    let m, u = tpy l in
    $g1 a u
synthesize tpy equiv py
)",
      0.058, 0.051);

  add(Out, "unreal/largest_peak", std::string(ZPrelude) + R"(
(* Largest sum of a contiguous positive run; skeleton drops the running
   accumulator. *)
let rec lp = function
  | Nil -> (0, 0)
  | Cons (a, l) ->
    let cur, best = lp l in
    (if a > 0 then a + cur else 0,
     max best (if a > 0 then a + cur else 0))
let rec tlp : int * int = function
  | Nil -> $g0
  | Cons (a, l) ->
    let cur, best = tlp l in
    $g1 a best
synthesize tlp equiv lp
)",
      89.021, 339.655, false);

  add(Out, "unreal/forced_unknown_nesting", R"(
type plist = PElt of int * int | PCons of int * plist

(* Appendix C.1.3: unrealizable, but no frame-based functional witness
   exists because the conflict spans different frame shapes. The expected
   outcome is failure (no verdict), not an unrealizability report. *)
let rec spec = function
  | PElt (a, b) -> b
  | PCons (hd, tl) ->
    let ignored = spec tl in
    hd
let rec tgt : int = function
  | PElt (a, b) -> $f0 a b
  | PCons (hd, tl) -> $f0 hd ($f0 hd (tgt tl))
synthesize tgt equiv spec
)",
      kPaperTimeout, kPaperTimeout);
}
