//===- SortedBenchmarks.cpp - Sorted and structured list benchmarks -------===//
///
/// \file
/// The paper's "Sorted List", "Sorted and Indexed", and related categories:
/// problems whose efficient skeletons only become realizable once facts
/// about sortedness (or indexing) are inferred as recursion-free guards.
///
//===----------------------------------------------------------------------===//

#include "suite/Benchmarks.h"

using namespace se2gis;

namespace {

/// Non-empty lists plus the increasing-order invariant.
const char *SortedPrelude = R"(
type list = Elt of int | Cons of int * list

let rec sorted = function
  | Elt a -> true
  | Cons (a, l) -> a <= head l && sorted l
and head = function
  | Elt a -> a
  | Cons (a, l) -> a
)";

/// Strictly increasing variant (distinct elements).
const char *StrictPrelude = R"(
type list = Elt of int | Cons of int * list

let rec sorted = function
  | Elt a -> true
  | Cons (a, l) -> a < head l && sorted l
and head = function
  | Elt a -> a
  | Cons (a, l) -> a
)";

void add(std::vector<BenchmarkDef> &Out, const char *Name,
         const char *Category, std::string Source, double PaperSe2gis,
         double PaperSegisUc, double PaperSegis, bool ByInduction = true) {
  BenchmarkDef B;
  B.Name = Name;
  B.Category = Category;
  B.Source = std::move(Source);
  B.ExpectRealizable = true;
  B.PaperSe2gisSec = PaperSe2gis;
  B.PaperSegisUcSec = PaperSegisUc;
  B.PaperSegisSec = PaperSegis;
  B.PaperByInduction = ByInduction;
  Out.push_back(std::move(B));
}

} // namespace

void se2gis::addSortedBenchmarks(std::vector<BenchmarkDef> &Out) {
  add(Out, "sortedlist/min", "Sorted List", std::string(SortedPrelude) + R"(
(* The paper's running example (§1.1): constant-time minimum. *)
let rec lmin = function
  | Elt a -> a
  | Cons (a, l) -> min a (lmin l)
let rec tmin : int = function
  | Elt a -> $b1 a
  | Cons (a, l) -> $b2 a
synthesize tmin equiv lmin requires sorted
)",
      0.072, 0.015, 0.013);

  add(Out, "sortedlist/max", "Sorted List", std::string(SortedPrelude) + R"(
(* Maximum of an increasing list: recurse but ignore the head. *)
let rec lmax = function
  | Elt a -> a
  | Cons (a, l) -> max a (lmax l)
let rec tmax : int = function
  | Elt a -> $b1 a
  | Cons (a, l) -> $b2 (tmax l)
synthesize tmax equiv lmax requires sorted
)",
      0.070, 0.014, 0.014);

  add(Out, "sortedlist/count_lt", "Sorted List",
      std::string(SortedPrelude) + R"(
(* Count elements smaller than x; cut off as soon as the head is >= x. *)
let rec clt (x : int) = function
  | Elt a -> if a < x then 1 else 0
  | Cons (a, l) -> (if a < x then 1 else 0) + clt x l
let rec tclt (x : int) : int = function
  | Elt a -> $u0 x a
  | Cons (a, l) -> if a < x then $u1 (tclt x l) else $u2 x a
synthesize tclt equiv clt requires sorted
)",
      0.066, 0.034, 0.032);

  add(Out, "sortedlist/contains", "Sorted List",
      std::string(SortedPrelude) + R"(
(* Early-terminating membership test. *)
let rec mem (x : int) = function
  | Elt a -> a = x
  | Cons (a, l) -> a = x || mem x l
let rec tmem (x : int) : bool = function
  | Elt a -> $u0 x a
  | Cons (a, l) -> if a >= x then $u1 x a else $u2 x a (tmem x l)
synthesize tmem equiv mem requires sorted
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "sortedlist/index_of", "Sorted List",
      std::string(StrictPrelude) + R"(
(* Number of elements < x = the index of x in a strictly increasing list. *)
let rec idx (x : int) = function
  | Elt a -> if a < x then 1 else 0
  | Cons (a, l) -> (if a < x then 1 else 0) + idx x l
let rec tidx (x : int) : int = function
  | Elt a -> $u0 x a
  | Cons (a, l) -> if a < x then $u1 (tidx x l) else $u2 x a
synthesize tidx equiv idx requires sorted
)",
      1.095, 1.904, 1.827);

  add(Out, "sortedlist/second_smallest", "Sorted List",
      std::string(SortedPrelude) + R"(
(* (min, second-min) is just the first two elements of a sorted list. *)
let rec smin = function
  | Elt a -> (a, a)
  | Cons (a, l) ->
    let m1, m2 = smin l in
    (min a m1, min (max a m1) m2)
let rec tsmin : int * int = function
  | Elt a -> $g0 a
  | Cons (a, l) ->
    let m1, m2 = tsmin l in
    $g1 a m1
synthesize tsmin equiv smin requires sorted
)",
      0.867, 0.028, 0.033);

  add(Out, "sortedlist/count_eq", "Sorted List",
      std::string(SortedPrelude) + R"(
(* Occurrences of x stop as soon as the head exceeds x. *)
let rec ceq (x : int) = function
  | Elt a -> if a = x then 1 else 0
  | Cons (a, l) -> (if a = x then 1 else 0) + ceq x l
let rec tceq (x : int) : int = function
  | Elt a -> $u0 x a
  | Cons (a, l) -> if a > x then $u1 x a else $u2 x a (tceq x l)
synthesize tceq equiv ceq requires sorted
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "sortedlist/is_sorted_check", "Sorted List",
      std::string(SortedPrelude) + R"(
(* (head, all-sorted) of a sorted list is trivially (a, true). *)
let rec chk = function
  | Elt a -> (a, true)
  | Cons (a, l) ->
    let h, s = chk l in
    (a, a <= h && s)
let rec tchk : int * bool = function
  | Elt a -> $g0 a
  | Cons (a, l) -> $g1 a
synthesize tchk equiv chk requires sorted
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "sortedlist/largest_diff", "Sorted List",
      std::string(SortedPrelude) + R"(
(* (min, max, max-min); sortedness pins min to the head. *)
let rec ldiff = function
  | Elt a -> (a, a, 0)
  | Cons (a, l) ->
    let mn, mx, d = ldiff l in
    (min a mn, max a mx, max a mx - min a mn)
let rec tldiff : int * int * int = function
  | Elt a -> $g0 a
  | Cons (a, l) ->
    let mn, mx, d = tldiff l in
    $g1 a mx
synthesize tldiff equiv ldiff requires sorted
)",
      0.051, 1.302, 1.325);

  add(Out, "sortedlist/smallest_diff", "Sorted List",
      std::string(SortedPrelude) + R"(
(* Smallest gap between the head and the rest: head of tail minus head. *)
let rec sdiff = function
  | Elt a -> (a, 0)
  | Cons (a, l) ->
    let h, d = sdiff l in
    (a, h - a)
let rec tsdiff : int * int = function
  | Elt a -> $g0 a
  | Cons (a, l) ->
    let h, d = tsdiff l in
    $g1 a h
synthesize tsdiff equiv sdiff requires sorted
)",
      0.020, 0.032, 0.034);

  add(Out, "sortedlist/min_max", "Sorted List",
      std::string(SortedPrelude) + R"(
(* (min, max) of a sorted list: min is the head; recurse for the max only. *)
let rec mm = function
  | Elt a -> (a, a)
  | Cons (a, l) ->
    let mn, mx = mm l in
    (min a mn, max a mx)
let rec tmm : int * int = function
  | Elt a -> $g0 a
  | Cons (a, l) ->
    let mn, mx = tmm l in
    $g1 a mx
synthesize tmm equiv mm requires sorted
)",
      4.404, 0.715, 0.707);

  add(Out, "indexedlist/count_smaller_0", "Sorted and Indexed",
      std::string(SortedPrelude) + R"(
(* Count of negative elements in a sorted list, cutting at the head. *)
let rec cneg = function
  | Elt a -> if a < 0 then 1 else 0
  | Cons (a, l) -> (if a < 0 then 1 else 0) + cneg l
let rec tcneg : int = function
  | Elt a -> $u0 a
  | Cons (a, l) -> if a < 0 then $u1 (tcneg l) else $u2 a
synthesize tcneg equiv cneg requires sorted
)",
      1.664, 0.047, 0.044);

  add(Out, "sortedlist/exists_duplicates", "Sorted List",
      std::string(SortedPrelude) + R"(
(* (head, any-adjacent-equal): on sorted lists duplicates are adjacent. *)
let rec dup = function
  | Elt a -> (a, false)
  | Cons (a, l) ->
    let h, d = dup l in
    (a, a = h || d)
let rec tdup : int * bool = function
  | Elt a -> $g0 a
  | Cons (a, l) ->
    let h, d = tdup l in
    $g1 a h d
synthesize tdup equiv dup requires sorted
)",
      0.051, kPaperTimeout, kPaperTimeout);

  add(Out, "sortedlist/largest_even", "Sorted List",
      std::string(SortedPrelude) + R"(
(* Largest even element (0 when none) of an increasing list. *)
let rec lev = function
  | Elt a -> if a mod 2 = 0 then a else 0
  | Cons (a, l) ->
    let m = lev l in
    if a mod 2 = 0 then max a m else m
let rec tlev : int = function
  | Elt a -> $u0 a
  | Cons (a, l) -> $u1 a (tlev l)
synthesize tlev equiv lev requires sorted
)",
      0.079, 0.018, 0.018);
}
