//===- ListBenchmarks.cpp - Plain and invariant-flavoured lists -----------===//
///
/// \file
/// Benchmarks over cons-lists: plain recursion-synthesis problems (no type
/// invariant) plus the paper's "All Elements Positive", "Elements are even
/// numbers", "Constant List", and "Association List" categories. Paper
/// reference times come from Table 1.
///
//===----------------------------------------------------------------------===//

#include "suite/Benchmarks.h"

using namespace se2gis;

namespace {

/// Possibly-empty integer lists.
const char *ZPrelude = R"(
type list = Nil | Cons of int * list
)";

/// Non-empty integer lists.
const char *NPrelude = R"(
type list = Elt of int | Cons of int * list
)";

const char *AllPos = R"(
let rec allpos = function
  | Elt a -> a > 0
  | Cons (a, l) -> a > 0 && allpos l
)";

const char *AllEven = R"(
let rec alleven = function
  | Elt a -> a mod 2 = 0
  | Cons (a, l) -> a mod 2 = 0 && alleven l
)";

const char *AllConst = R"(
let rec allconst = function
  | Elt a -> true
  | Cons (a, l) -> a = head l && allconst l
and head = function
  | Elt a -> a
  | Cons (a, l) -> a
)";

void add(std::vector<BenchmarkDef> &Out, const char *Name,
         const char *Category, std::string Source, double PaperSe2gis,
         double PaperSegisUc, double PaperSegis, bool ByInduction = true) {
  BenchmarkDef B;
  B.Name = Name;
  B.Category = Category;
  B.Source = std::move(Source);
  B.ExpectRealizable = true;
  B.PaperSe2gisSec = PaperSe2gis;
  B.PaperSegisUcSec = PaperSegisUc;
  B.PaperSegisSec = PaperSegis;
  B.PaperByInduction = ByInduction;
  Out.push_back(std::move(B));
}

} // namespace

void se2gis::addListBenchmarks(std::vector<BenchmarkDef> &Out) {
  // --- Plain lists (no invariant) -----------------------------------------

  add(Out, "list/sum", "Plain List", std::string(ZPrelude) + R"(
let rec lsum = function
  | Nil -> 0
  | Cons (a, l) -> a + lsum l
let rec tsum : int = function
  | Nil -> $f0
  | Cons (a, l) -> $f1 a (tsum l)
synthesize tsum equiv lsum
)",
      0.028, 0.023, 0.023);

  add(Out, "list/length", "Plain List", std::string(ZPrelude) + R"(
let rec llen = function
  | Nil -> 0
  | Cons (a, l) -> 1 + llen l
let rec tlen : int = function
  | Nil -> $f0
  | Cons (a, l) -> $f1 (tlen l)
synthesize tlen equiv llen
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "list/max0", "Plain List", std::string(ZPrelude) + R"(
let rec lmax = function
  | Nil -> 0
  | Cons (a, l) -> max a (lmax l)
let rec tmax : int = function
  | Nil -> $f0
  | Cons (a, l) -> $f1 a (tmax l)
synthesize tmax equiv lmax
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "list/min0", "Plain List", std::string(ZPrelude) + R"(
let rec lmin = function
  | Nil -> 0
  | Cons (a, l) -> min a (lmin l)
let rec tmin : int = function
  | Nil -> $f0
  | Cons (a, l) -> $f1 a (tmin l)
synthesize tmin equiv lmin
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "list/last", "Plain List", std::string(ZPrelude) + R"(
let rec llast = function
  | Nil -> (0, 0)
  | Cons (a, l) ->
    let n, z = llast l in
    (n + 1, if n = 0 then a else z)
let rec tlast : int * int = function
  | Nil -> $g0
  | Cons (a, l) -> $g1 a (tlast l)
synthesize tlast equiv llast
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "list/count_eq", "Plain List", std::string(ZPrelude) + R"(
let rec lcount (x : int) = function
  | Nil -> 0
  | Cons (a, l) -> (if a = x then 1 else 0) + lcount x l
let rec tcount (x : int) : int = function
  | Nil -> $f0
  | Cons (a, l) -> $f1 x a (tcount x l)
synthesize tcount equiv lcount
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "list/sum_odd", "Plain List", std::string(ZPrelude) + R"(
let rec sodd = function
  | Nil -> 0
  | Cons (a, l) -> (if a mod 2 = 1 then a else 0) + sodd l
let rec tsodd : int = function
  | Nil -> $f0
  | Cons (a, l) -> $f1 a (tsodd l)
synthesize tsodd equiv sodd
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "list/poly_base2", "Plain List", std::string(ZPrelude) + R"(
let rec horner = function
  | Nil -> 0
  | Cons (a, l) -> a + 2 * horner l
let rec thorner : int = function
  | Nil -> $f0
  | Cons (a, l) -> $f1 a (thorner l)
synthesize thorner equiv horner
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "list/mts", "Plain List", std::string(ZPrelude) + R"(
(* Maximum tail (suffix) sum, carried with the running sum. *)
let rec mts = function
  | Nil -> (0, 0)
  | Cons (a, l) ->
    let s, m = mts l in
    (a + s, max (a + s) m)
let rec tmts : int * int = function
  | Nil -> $g0
  | Cons (a, l) -> $g1 a (tmts l)
synthesize tmts equiv mts
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "list/mps", "Plain List", std::string(ZPrelude) + R"(
(* Maximum prefix sum, carried with the running sum. *)
let rec mps = function
  | Nil -> (0, 0)
  | Cons (a, l) ->
    let s, m = mps l in
    (a + s, max 0 (a + m))
let rec tmps : int * int = function
  | Nil -> $g0
  | Cons (a, l) -> $g1 a (tmps l)
synthesize tmps equiv mps
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  // --- All Elements Positive ------------------------------------------------

  add(Out, "poslist/mps", "All Elements Positive",
      std::string(NPrelude) + AllPos + R"(
(* On positive lists the maximum prefix sum is the total sum, so the
   skeleton may drop the mps component of the recursive call. *)
let rec mps = function
  | Elt a -> (a, max 0 a)
  | Cons (a, l) ->
    let s, m = mps l in
    (a + s, max 0 (a + m))
let rec tmps : int * int = function
  | Elt a -> $g0 a
  | Cons (a, l) ->
    let s, m = tmps l in
    $g1 a s
synthesize tmps equiv mps requires allpos
)",
      0.583, 1.266, 1.187);

  add(Out, "poslist/abs_sum", "All Elements Positive",
      std::string(NPrelude) + AllPos + R"(
let rec asum = function
  | Elt a -> abs a
  | Cons (a, l) -> abs a + asum l
let rec tasum : int = function
  | Elt a -> $f0 a
  | Cons (a, l) -> $f1 a (tasum l)
synthesize tasum equiv asum requires allpos
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "poslist/second_min", "All Elements Positive",
      std::string(NPrelude) + AllPos + R"(
(* (min, second-min); on positive lists the pair stays positive, which the
   skeleton exploits by clamping with max 0. *)
let rec smin = function
  | Elt a -> (a, a)
  | Cons (a, l) ->
    let m1, m2 = smin l in
    (min a m1, min (max a m1) m2)
let rec tsmin : int * int = function
  | Elt a -> $g0 a
  | Cons (a, l) -> $g1 a (tsmin l)
synthesize tsmin equiv smin requires allpos
)",
      1.136, 0.835, 0.827);

  add(Out, "poslist/sum_is_positive", "All Elements Positive",
      std::string(NPrelude) + AllPos + R"(
(* Whether every suffix sum is positive, tracked with the sum; on positive
   lists the flag is constantly true, so the skeleton drops it. *)
let rec spos = function
  | Elt a -> (a, a > 0)
  | Cons (a, l) ->
    let s, p = spos l in
    (a + s, p && a + s > 0)
let rec tspos : int * bool = function
  | Elt a -> $g0 a
  | Cons (a, l) ->
    let s, p = tspos l in
    $g1 a s
synthesize tspos equiv spos requires allpos
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  // --- Elements are even numbers --------------------------------------------

  add(Out, "evenlist/parity_of_sum", "Elements are even numbers",
      std::string(NPrelude) + AllEven + R"(
let rec psum = function
  | Elt a -> a mod 2 = 1
  | Cons (a, l) -> (a mod 2 = 1) <> psum l
let rec tpsum : bool = function
  | Elt a -> $u0 a
  | Cons (a, l) -> $u1 a
synthesize tpsum equiv psum requires alleven
)",
      0.019, 0.038, 0.034);

  add(Out, "evenlist/parity_of_last", "Elements are even numbers",
      std::string(NPrelude) + AllEven + R"(
let rec plast = function
  | Elt a -> a mod 2 = 1
  | Cons (a, l) -> plast l
let rec tplast : bool = function
  | Elt a -> $u0 a
  | Cons (a, l) -> $u1 a
synthesize tplast equiv plast requires alleven
)",
      0.070, kPaperTimeout, kPaperTimeout);

  add(Out, "evenlist/parity_of_first", "Elements are even numbers",
      std::string(NPrelude) + AllEven + R"(
let rec pfirst = function
  | Elt a -> a mod 2 = 1
  | Cons (a, l) -> a mod 2 = 1
let rec tpfirst : bool = function
  | Elt a -> $u0 a
  | Cons (a, l) -> $u1 a
synthesize tpfirst equiv pfirst requires alleven
)",
      0.178, kPaperTimeout, kPaperTimeout);

  add(Out, "evenlist/first_odd", "Elements are even numbers",
      std::string(NPrelude) + AllEven + R"(
(* First odd element (0 when none); constant on all-even lists. *)
let rec fodd = function
  | Elt a -> if a mod 2 = 1 then a else 0
  | Cons (a, l) -> if a mod 2 = 1 then a else fodd l
let rec tfodd : int = function
  | Elt a -> $u0 a
  | Cons (a, l) -> $u1 a
synthesize tfodd equiv fodd requires alleven
)",
      0.270, 0.041, 0.036);

  add(Out, "evenlist/has_constant", "Elements are even numbers",
      std::string(NPrelude) + AllEven + R"(
(* Is some element equal to 1?  Never on an even list. *)
let rec hasone = function
  | Elt a -> a = 1
  | Cons (a, l) -> a = 1 || hasone l
let rec thasone : bool = function
  | Elt a -> $u0 a
  | Cons (a, l) -> $u1 a
synthesize thasone equiv hasone requires alleven
)",
      0.005, kPaperTimeout, kPaperTimeout);

  // --- Constant List ---------------------------------------------------------

  add(Out, "constlist/max", "Constant List",
      std::string(NPrelude) + AllConst + R"(
let rec lmax = function
  | Elt a -> a
  | Cons (a, l) -> max a (lmax l)
let rec tcmax : int = function
  | Elt a -> $u0 a
  | Cons (a, l) -> $u1 a
synthesize tcmax equiv lmax requires allconst
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "constlist/contains", "Constant List",
      std::string(NPrelude) + AllConst + R"(
let rec lmem (x : int) = function
  | Elt a -> a = x
  | Cons (a, l) -> a = x || lmem x l
let rec tcmem (x : int) : bool = function
  | Elt a -> $u0 x a
  | Cons (a, l) -> $u1 x a
synthesize tcmem equiv lmem requires allconst
)",
      1.632, 2.278, 2.284);

  add(Out, "constlist/sum_eq_head_times_len", "Constant List",
      std::string(NPrelude) + AllConst + R"(
(* (length, sum); on a constant list the skeleton needs only the length. *)
let rec lens = function
  | Elt a -> (1, a)
  | Cons (a, l) ->
    let n, s = lens l in
    (n + 1, a + s)
let rec tlens : int * int = function
  | Elt a -> $g0 a
  | Cons (a, l) ->
    let n, s = tlens l in
    $g1 a n s
synthesize tlens equiv lens requires allconst
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  // --- Association List ------------------------------------------------------

  const char *AssocPrelude = R"(
type alist = AElt of int * int | ACons of int * int * alist
)";

  add(Out, "alist/count_key", "Association List",
      std::string(AssocPrelude) + R"(
let rec ckey (k : int) = function
  | AElt (a, b) -> if a = k then 1 else 0
  | ACons (a, b, l) -> (if a = k then 1 else 0) + ckey k l
let rec tckey (k : int) : int = function
  | AElt (a, b) -> $u0 k a
  | ACons (a, b, l) -> $u1 k a (tckey k l)
synthesize tckey equiv ckey
)",
      0.061, 0.060, 0.054);

  add(Out, "alist/sum_matching", "Association List",
      std::string(AssocPrelude) + R"(
let rec smatch (k : int) = function
  | AElt (a, b) -> if a = k then b else 0
  | ACons (a, b, l) -> (if a = k then b else 0) + smatch k l
let rec tsmatch (k : int) : int = function
  | AElt (a, b) -> $u0 k a b
  | ACons (a, b, l) -> $u1 k a b (tsmatch k l)
synthesize tsmatch equiv smatch
)",
      0.060, 0.058, 0.055);

  add(Out, "alist/max_value", "Association List",
      std::string(AssocPrelude) + R"(
let rec mval = function
  | AElt (a, b) -> b
  | ACons (a, b, l) -> max b (mval l)
let rec tmval : int = function
  | AElt (a, b) -> $u0 b
  | ACons (a, b, l) -> $u1 b (tmval l)
synthesize tmval equiv mval
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);
}
