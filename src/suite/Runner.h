//===- Runner.h - Suite execution harness -----------------------*- C++-*-===//
///
/// \file
/// Runs benchmarks under one or more algorithms with a per-run timeout and
/// collects the results the table/figure generators consume. The timeout
/// defaults to a scaled-down version of the paper's 400 s and can be
/// overridden with the SE2GIS_TIMEOUT_MS environment variable; a benchmark
/// subset can be selected with a substring filter (SE2GIS_FILTER).
///
/// (Benchmark, algorithm) pairs execute on a shared thread pool
/// (SE2GIS_JOBS workers; every SmtQuery owns its own Z3 context, so runs
/// are isolated). Results always come back in registry order — identical
/// to the sequential runner's — and SE2GIS_JOBS=1 takes the sequential
/// code path bit-for-bit. A perf-counter JSON summary of the sweep can be
/// written via SE2GIS_PERF_JSON (schema in DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SUITE_RUNNER_H
#define SE2GIS_SUITE_RUNNER_H

#include "core/Algorithms.h"
#include "suite/Benchmarks.h"

#include <iosfwd>

namespace se2gis {

/// One (benchmark, algorithm) execution.
struct SuiteRecord {
  const BenchmarkDef *Def = nullptr;
  AlgorithmKind Algorithm = AlgorithmKind::SE2GIS;
  RunResult Result;
};

/// Execution options for a suite sweep.
struct SuiteOptions {
  std::vector<AlgorithmKind> Algorithms = {AlgorithmKind::SE2GIS};
  AlgoOptions Algo;
  /// Only run benchmarks whose name contains this substring ("" = all).
  std::string Filter;
  /// Restrict to the realizable / unrealizable half of the suite.
  bool SkipRealizable = false;
  bool SkipUnrealizable = false;
  /// Print one progress line per run to stderr.
  bool Verbose = true;
  /// Concurrent (benchmark, algorithm) workers. 0 = auto (the SE2GIS_JOBS
  /// environment variable, else hardware_concurrency); 1 reproduces the
  /// historical sequential loop exactly.
  unsigned Jobs = 0;
  /// When non-empty, the runner writes the sweep's perf-counter JSON
  /// summary here (also settable via SE2GIS_PERF_JSON).
  std::string PerfJsonPath;
};

/// Builds options from the environment: SE2GIS_TIMEOUT_MS (default
/// \p DefaultTimeoutMs), SE2GIS_FILTER, SE2GIS_JOBS, and SE2GIS_PERF_JSON.
SuiteOptions suiteOptionsFromEnv(std::int64_t DefaultTimeoutMs = 5000);

/// Runs the registered benchmarks under every requested algorithm. Records
/// are returned in registry order (per benchmark, in Algorithms order)
/// regardless of the number of workers.
std::vector<SuiteRecord> runSuite(const SuiteOptions &Opts);

/// Writes the suite perf summary as JSON: sweep metadata, the process-wide
/// perf-counter deltas (\p Delta, see support/PerfCounters.h), and one
/// entry per record. \p WallMs is the sweep's wall-clock time and \p Jobs
/// the worker count used.
void writeSuitePerfJson(std::ostream &OS,
                        const std::vector<SuiteRecord> &Records,
                        const PerfSnapshot &Delta, double WallMs,
                        unsigned Jobs);

/// \returns true when \p R counts as "solved" in the paper's sense: a
/// correct verdict within the timeout (realizable benchmarks must be found
/// realizable, unrealizable ones unrealizable).
bool isSolved(const SuiteRecord &R);

} // namespace se2gis

#endif // SE2GIS_SUITE_RUNNER_H
