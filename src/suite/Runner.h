//===- Runner.h - Suite execution harness -----------------------*- C++-*-===//
///
/// \file
/// Runs benchmarks under one or more algorithms with a per-(benchmark,
/// algorithm) deadline and collects the results the table/figure generators
/// consume. All knobs live in a SolverConfig (core/SynthesisTask.h); the
/// environment (SE2GIS_TIMEOUT / SE2GIS_TIMEOUT_MS, SE2GIS_FILTER,
/// SE2GIS_JOBS, SE2GIS_SEED, SE2GIS_PERF_JSON) is only read through
/// SolverConfig::fromEnv.
///
/// (Benchmark, algorithm) pairs execute on a shared thread pool (every
/// SmtQuery runs on its worker's thread-local Z3 session — or a private
/// context when sessions are off — so runs are isolated); each pair runs
/// as one SynthesisTask under its own deadline, and a timed-out run comes
/// back as a Timeout verdict with partial stats — never a poisoned worker.
/// Results always come back in registry order — identical to the
/// sequential runner's — and Jobs=1 takes the sequential code path
/// bit-for-bit. A perf-counter JSON summary of the sweep can be written
/// via Config.PerfJsonPath (schema in DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SUITE_RUNNER_H
#define SE2GIS_SUITE_RUNNER_H

#include "core/SynthesisTask.h"
#include "suite/Benchmarks.h"

#include <iosfwd>

namespace se2gis {

/// One (benchmark, algorithm) execution.
struct SuiteRecord {
  const BenchmarkDef *Def = nullptr;
  AlgorithmKind Algorithm = AlgorithmKind::SE2GIS;
  Outcome Result;
};

/// Execution options for a suite sweep: which algorithms over which half
/// of the registry, plus the shared SolverConfig every task runs under.
struct SuiteOptions {
  std::vector<AlgorithmKind> Algorithms = {AlgorithmKind::SE2GIS};
  /// Budgets, parallelism, filter, seed, perf output (the Config.Filter
  /// substring selects benchmarks; Config.Jobs sets the worker count).
  SolverConfig Config;
  /// Restrict to the realizable / unrealizable half of the suite.
  bool SkipRealizable = false;
  bool SkipUnrealizable = false;
};

/// Builds options whose Config comes from the environment (see
/// SolverConfig::fromEnv); \p DefaultTimeoutMs applies when no timeout
/// variable is set.
SuiteOptions suiteOptionsFromEnv(std::int64_t DefaultTimeoutMs = 5000);

/// Runs the registered benchmarks under every requested algorithm. Records
/// are returned in registry order (per benchmark, in Algorithms order)
/// regardless of the number of workers.
std::vector<SuiteRecord> runSuite(const SuiteOptions &Opts);

/// Writes the suite perf summary as JSON: sweep metadata, the process-wide
/// perf-counter deltas (\p Delta, see support/PerfCounters.h), and one
/// entry per record. \p WallMs is the sweep's wall-clock time and \p Jobs
/// the worker count used.
void writeSuitePerfJson(std::ostream &OS,
                        const std::vector<SuiteRecord> &Records,
                        const PerfSnapshot &Delta, double WallMs,
                        unsigned Jobs);

/// \returns true when \p R counts as "solved" in the paper's sense: a
/// correct verdict within the timeout (realizable benchmarks must be found
/// realizable, unrealizable ones unrealizable).
bool isSolved(const SuiteRecord &R);

//===----------------------------------------------------------------------===//
// Warm-start entry format (exposed for the cache-tier tests)
//===----------------------------------------------------------------------===//

/// Key of a suite-level warm-start entry in the persistent "suite"
/// segment: benchmark ⊎ algorithm ⊎ every config knob that can change the
/// verdict or the solution, so a sweep under different budgets or
/// ablations never sees another sweep's entries.
Hash128 suiteWarmStartKey(const BenchmarkDef &Def, AlgorithmKind Algorithm,
                          const SolverConfig &Config);

/// Serializes a Realizable solution: one leaf-indexed body per unknown of
/// \p P in signature order. \returns "" when any body is not serializable.
std::string encodeSuiteSolution(const Problem &P, const UnknownBindings &Sol);

/// Parses an \c encodeSuiteSolution payload against the live problem's
/// signatures, minting fresh parameter variables. Total: malformed input,
/// signature drift, or a type mismatch all yield nullopt. A payload that
/// decodes is still only a *candidate* — the runner re-verifies it with
/// verifySolution before any reuse, which is what keeps remote cache
/// entries untrusted.
std::optional<UnknownBindings> decodeSuiteSolution(const Problem &P,
                                                   const std::string &S);

} // namespace se2gis

#endif // SE2GIS_SUITE_RUNNER_H
