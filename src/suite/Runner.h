//===- Runner.h - Suite execution harness -----------------------*- C++-*-===//
///
/// \file
/// Runs benchmarks under one or more algorithms with a per-run timeout and
/// collects the results the table/figure generators consume. The timeout
/// defaults to a scaled-down version of the paper's 400 s and can be
/// overridden with the SE2GIS_TIMEOUT_MS environment variable; a benchmark
/// subset can be selected with a substring filter (SE2GIS_FILTER).
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SUITE_RUNNER_H
#define SE2GIS_SUITE_RUNNER_H

#include "core/Algorithms.h"
#include "suite/Benchmarks.h"

namespace se2gis {

/// One (benchmark, algorithm) execution.
struct SuiteRecord {
  const BenchmarkDef *Def = nullptr;
  AlgorithmKind Algorithm = AlgorithmKind::SE2GIS;
  RunResult Result;
};

/// Execution options for a suite sweep.
struct SuiteOptions {
  std::vector<AlgorithmKind> Algorithms = {AlgorithmKind::SE2GIS};
  AlgoOptions Algo;
  /// Only run benchmarks whose name contains this substring ("" = all).
  std::string Filter;
  /// Restrict to the realizable / unrealizable half of the suite.
  bool SkipRealizable = false;
  bool SkipUnrealizable = false;
  /// Print one progress line per run to stderr.
  bool Verbose = true;
};

/// Builds options from the environment: SE2GIS_TIMEOUT_MS (default
/// \p DefaultTimeoutMs) and SE2GIS_FILTER.
SuiteOptions suiteOptionsFromEnv(std::int64_t DefaultTimeoutMs = 5000);

/// Runs the registered benchmarks under every requested algorithm.
std::vector<SuiteRecord> runSuite(const SuiteOptions &Opts);

/// \returns true when \p R counts as "solved" in the paper's sense: a
/// correct verdict within the timeout (realizable benchmarks must be found
/// realizable, unrealizable ones unrealizable).
bool isSolved(const SuiteRecord &R);

} // namespace se2gis

#endif // SE2GIS_SUITE_RUNNER_H
