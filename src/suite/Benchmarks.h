//===- Benchmarks.h - The 140-benchmark suite (paper §8.1) ------*- C++-*-===//
///
/// \file
/// The benchmark registry mirroring the paper's evaluation suite: 141
/// recursion-synthesis problems (paper: 140) over 8 recursive datatypes and 18 type
/// invariants, 95 realizable and 45 unrealizable, with the per-benchmark
/// reference numbers transcribed from Tables 1–2 (laptop, i7-8750H, 400 s
/// timeout). Sources are written in the DSL (frontend/); loading a
/// benchmark parses, elaborates, and validates it.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SUITE_BENCHMARKS_H
#define SE2GIS_SUITE_BENCHMARKS_H

#include "lang/Program.h"

#include <string>
#include <vector>

namespace se2gis {

/// Sentinel paper times: the paper reports '-' (timeout) or the benchmark
/// has no entry for that algorithm.
constexpr double kPaperTimeout = -1.0;
constexpr double kPaperNotReported = -2.0;

/// One benchmark: a named problem plus the paper's reference results.
struct BenchmarkDef {
  std::string Name;
  /// The paper's category (e.g. "Sorted List", "Inferring Postconditions").
  std::string Category;
  std::string Source;
  bool ExpectRealizable = true;
  /// Paper runtimes in seconds (Tables 1–2); see the sentinels above.
  double PaperSe2gisSec = kPaperNotReported;
  double PaperSegisUcSec = kPaperNotReported;
  double PaperSegisSec = kPaperNotReported;
  /// Paper's "I?" column: invariants proved by induction.
  bool PaperByInduction = true;
};

/// The full registry (stable order).
const std::vector<BenchmarkDef> &allBenchmarks();

/// Looks a benchmark up by name; nullptr if absent.
const BenchmarkDef *findBenchmark(const std::string &Name);

/// Parses and validates a benchmark's source.
Problem loadBenchmark(const BenchmarkDef &Def);

// Category registrars (one per source file).
void addListBenchmarks(std::vector<BenchmarkDef> &Out);
void addSortedBenchmarks(std::vector<BenchmarkDef> &Out);
void addTreeBenchmarks(std::vector<BenchmarkDef> &Out);
void addParallelBenchmarks(std::vector<BenchmarkDef> &Out);
void addExtraBenchmarks(std::vector<BenchmarkDef> &Out);
void addUnrealizableBenchmarks(std::vector<BenchmarkDef> &Out);

} // namespace se2gis

#endif // SE2GIS_SUITE_BENCHMARKS_H
