//===- Runner.cpp ---------------------------------------------------------===//

#include "suite/Runner.h"

#include "support/Diagnostics.h"
#include "support/PerfCounters.h"
#include "support/Stopwatch.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <mutex>
#include <ostream>

using namespace se2gis;

SuiteOptions se2gis::suiteOptionsFromEnv(std::int64_t DefaultTimeoutMs) {
  SuiteOptions Opts;
  Opts.Config = SolverConfig::fromEnv(DefaultTimeoutMs);
  return Opts;
}

namespace {

/// Serializes progress lines from concurrent workers so interleaved runs
/// stay readable; the line format is the historical sequential one.
class ProgressReporter {
public:
  explicit ProgressReporter(bool Enabled) : Enabled(Enabled) {}

  void report(const SuiteRecord &Rec) {
    if (!Enabled)
      return;
    std::lock_guard<std::mutex> Lock(M);
    std::fprintf(stderr, "[suite] %-36s %-9s %-12s %8.1f ms  %s\n",
                 Rec.Def->Name.c_str(), algorithmName(Rec.Algorithm),
                 verdictName(Rec.Result.V), Rec.Result.Stats.ElapsedMs,
                 Rec.Result.Stats.Steps.c_str());
  }

private:
  std::mutex M;
  bool Enabled;
};

/// Runs one (benchmark, algorithm) pair as a SynthesisTask; a UserError
/// from the stack becomes Verdict::Failed inside SynthesisTask::run, so a
/// pooled worker survives any single bad benchmark.
void runOne(SuiteRecord &Rec, std::shared_ptr<const Problem> P,
            const SolverConfig &Config, ProgressReporter &Progress) {
  SynthesisTask Task(std::move(P), Rec.Algorithm);
  Rec.Result = Task.run(Config);
  Progress.report(Rec);
}

/// The historical strictly sequential loop, preserved verbatim so that
/// Jobs=1 reproduces pre-parallel sweeps bit-for-bit (same load order,
/// same progress interleaving, same records).
std::vector<SuiteRecord> runSuiteSequential(const SuiteOptions &Opts) {
  std::vector<SuiteRecord> Records;
  ProgressReporter Progress(Opts.Config.Verbose);
  for (const BenchmarkDef &Def : allBenchmarks()) {
    if (!Opts.Config.Filter.empty() &&
        Def.Name.find(Opts.Config.Filter) == std::string::npos)
      continue;
    if ((Opts.SkipRealizable && Def.ExpectRealizable) ||
        (Opts.SkipUnrealizable && !Def.ExpectRealizable))
      continue;
    std::shared_ptr<const Problem> P;
    try {
      P = std::make_shared<const Problem>(loadBenchmark(Def));
    } catch (const UserError &E) {
      std::fprintf(stderr, "[suite] %s: load error: %s\n", Def.Name.c_str(),
                   E.what());
      continue;
    }
    for (AlgorithmKind K : Opts.Algorithms) {
      SuiteRecord Rec;
      Rec.Def = &Def;
      Rec.Algorithm = K;
      runOne(Rec, P, Opts.Config, Progress);
      Records.push_back(std::move(Rec));
    }
  }
  return Records;
}

/// Parallel sweep: benchmarks are loaded once each in registry order on
/// the main thread (so load-error reporting matches the sequential loop),
/// then every (benchmark, algorithm) pair becomes one pool job writing
/// into its pre-assigned record slot. Loaded problems are immutable after
/// validation and every SmtQuery owns a private Z3 context, so jobs never
/// share mutable state; results land in the same deterministic order as
/// the sequential loop.
std::vector<SuiteRecord> runSuiteParallel(const SuiteOptions &Opts,
                                          unsigned Jobs) {
  std::vector<SuiteRecord> Records;
  std::vector<std::shared_ptr<const Problem>> Problems; // one per record
  ProgressReporter Progress(Opts.Config.Verbose);

  for (const BenchmarkDef &Def : allBenchmarks()) {
    if (!Opts.Config.Filter.empty() &&
        Def.Name.find(Opts.Config.Filter) == std::string::npos)
      continue;
    if ((Opts.SkipRealizable && Def.ExpectRealizable) ||
        (Opts.SkipUnrealizable && !Def.ExpectRealizable))
      continue;
    std::shared_ptr<const Problem> P;
    try {
      P = std::make_shared<const Problem>(loadBenchmark(Def));
    } catch (const UserError &E) {
      std::fprintf(stderr, "[suite] %s: load error: %s\n", Def.Name.c_str(),
                   E.what());
      continue;
    }
    for (AlgorithmKind K : Opts.Algorithms) {
      SuiteRecord Rec;
      Rec.Def = &Def;
      Rec.Algorithm = K;
      Records.push_back(std::move(Rec));
      Problems.push_back(P);
    }
  }

  ThreadPool Pool(Jobs);
  std::vector<std::future<void>> Pending;
  Pending.reserve(Records.size());
  for (size_t I = 0; I < Records.size(); ++I)
    Pending.push_back(Pool.enqueue([&, I] {
      runOne(Records[I], Problems[I], Opts.Config, Progress);
    }));
  for (std::future<void> &F : Pending)
    F.get(); // rethrows anything unexpected from a worker
  return Records;
}

} // namespace

std::vector<SuiteRecord> se2gis::runSuite(const SuiteOptions &Opts) {
  Stopwatch Wall;
  PerfSnapshot Before = snapshotPerf();
  unsigned Jobs = Opts.Config.Jobs ? Opts.Config.Jobs : ThreadPool::defaultConcurrency();
  std::vector<SuiteRecord> Records = Jobs <= 1
                                         ? runSuiteSequential(Opts)
                                         : runSuiteParallel(Opts, Jobs);
  if (!Opts.Config.PerfJsonPath.empty()) {
    std::ofstream OS(Opts.Config.PerfJsonPath);
    if (OS)
      writeSuitePerfJson(OS, Records, snapshotPerf().since(Before),
                         Wall.elapsedMs(), Jobs);
    else
      std::fprintf(stderr, "[suite] cannot write perf summary to %s\n",
                   Opts.Config.PerfJsonPath.c_str());
  }
  return Records;
}

void se2gis::writeSuitePerfJson(std::ostream &OS,
                                const std::vector<SuiteRecord> &Records,
                                const PerfSnapshot &Delta, double WallMs,
                                unsigned Jobs) {
  int Solved = 0;
  for (const SuiteRecord &R : Records)
    Solved += isSolved(R);
  OS << "{\n  \"suite\": {\"records\": " << Records.size()
     << ", \"solved\": " << Solved << ", \"wall_ms\": " << WallMs
     << ", \"jobs\": " << Jobs << "},\n  \"perf\": ";
  writePerfJson(OS, Delta);
  OS << ",\n  \"records\": [";
  for (size_t I = 0; I < Records.size(); ++I) {
    const SuiteRecord &R = Records[I];
    OS << (I ? ",\n    " : "\n    ") << "{\"benchmark\": \""
       << R.Def->Name << "\", \"algorithm\": \""
       << algorithmName(R.Algorithm) << "\", \"outcome\": \""
       << verdictName(R.Result.V) << "\", \"solved\": "
       << (isSolved(R) ? "true" : "false")
       << ", \"elapsed_ms\": " << R.Result.Stats.ElapsedMs << "}";
  }
  OS << "\n  ]\n}\n";
}

bool se2gis::isSolved(const SuiteRecord &R) {
  if (R.Def->ExpectRealizable)
    return R.Result.V == Verdict::Realizable;
  return R.Result.V == Verdict::Unrealizable;
}
