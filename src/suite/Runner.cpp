//===- Runner.cpp ---------------------------------------------------------===//

#include "suite/Runner.h"

#include "cache/CacheConfig.h"
#include "cache/TermIO.h"
#include "support/Diagnostics.h"
#include "support/Log.h"
#include "support/PerfCounters.h"
#include "support/Stopwatch.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <mutex>
#include <ostream>

using namespace se2gis;

SuiteOptions se2gis::suiteOptionsFromEnv(std::int64_t DefaultTimeoutMs) {
  SuiteOptions Opts;
  Opts.Config = SolverConfig::fromEnv(DefaultTimeoutMs);
  return Opts;
}

namespace {

/// Emits progress lines through the structured logger (which serializes
/// concurrent workers); the columns are the historical sequential ones, now
/// behind the logger's [suite][info][ts][t=N] prefix.
class ProgressReporter {
public:
  explicit ProgressReporter(bool Enabled) : Enabled(Enabled) {}

  void report(const SuiteRecord &Rec) {
    if (!Enabled)
      return;
    logf(LogLevel::Info, "suite", "%-36s %-9s %-12s %8.1f ms  %s",
         Rec.Def->Name.c_str(), algorithmName(Rec.Algorithm),
         verdictName(Rec.Result.V), Rec.Result.Stats.ElapsedMs,
         Rec.Result.Stats.Steps.c_str());
  }

private:
  bool Enabled;
};

} // namespace

Hash128 se2gis::suiteWarmStartKey(const BenchmarkDef &Def,
                                  AlgorithmKind Algorithm,
                                  const SolverConfig &Config) {
  Hash128 K = hash128Seed(0x60);
  K = hash128String(K, Def.Name);
  K = hash128String(K, algorithmName(Algorithm));
  K = hash128Combine(K, static_cast<std::uint64_t>(Config.Algo.TimeoutMs));
  K = hash128Combine(
      K, static_cast<std::uint64_t>(Config.Algo.SgePerQueryTimeoutMs));
  K = hash128Combine(K, Config.Algo.Seed);
  K = hash128Combine(K, static_cast<std::uint64_t>(Config.Algo.Unreal));
  K = hash128Combine(K, (Config.Algo.DisableEufAnchoring ? 1ULL : 0ULL) |
                            (Config.Algo.DisableIteSplitting ? 2ULL : 0ULL) |
                            (Config.Algo.DisableLemmaReplay ? 4ULL : 0ULL));
  return K;
}

std::string se2gis::encodeSuiteSolution(const Problem &P,
                                        const UnknownBindings &Sol) {
  std::string Out = "v1";
  for (const UnknownSig &Sig : P.Unknowns) {
    auto It = Sol.find(Sig.Name);
    if (It == Sol.end() || It->second.Params.size() != Sig.ArgTypes.size())
      return "";
    std::string Body = termToText(It->second.Body, It->second.Params);
    if (Body.empty())
      return "";
    Out += "\n" + Sig.Name + "\n" + Body;
  }
  return Out;
}

std::optional<UnknownBindings>
se2gis::decodeSuiteSolution(const Problem &P, const std::string &S) {
  std::vector<std::string> Lines;
  for (size_t Start = 0; Start <= S.size();) {
    size_t End = S.find('\n', Start);
    if (End == std::string::npos) {
      Lines.push_back(S.substr(Start));
      break;
    }
    Lines.push_back(S.substr(Start, End - Start));
    Start = End + 1;
  }
  if (Lines.empty() || Lines[0] != "v1" ||
      Lines.size() != 1 + 2 * P.Unknowns.size())
    return std::nullopt;
  UnknownBindings Sol;
  size_t Pos = 1;
  for (const UnknownSig &Sig : P.Unknowns) {
    if (Lines[Pos] != Sig.Name)
      return std::nullopt;
    std::vector<VarPtr> Params;
    for (size_t I = 0; I < Sig.ArgTypes.size(); ++I)
      Params.push_back(namedVar("p" + std::to_string(I) + "_" + Sig.Name,
                                Sig.ArgTypes[I]));
    TermPtr Body = termFromText(Lines[Pos + 1], Params);
    if (!Body || Body->getType()->str() != Sig.RetTy->str())
      return std::nullopt;
    Sol[Sig.Name] = UnknownDef{std::move(Params), std::move(Body)};
    Pos += 2;
  }
  return Sol;
}

namespace {

/// Runs one (benchmark, algorithm) pair as a SynthesisTask; a UserError
/// from the stack becomes Verdict::Failed inside SynthesisTask::run, so a
/// pooled worker survives any single bad benchmark.
///
/// In Disk cache mode the pair first consults the persistent "suite"
/// segment: a Realizable result recorded by an earlier run under an
/// identical (benchmark, algorithm, config) key is *re-verified* against
/// the live problem — never trusted — and reused only when verification
/// passes, so a stale or corrupted store cannot change a verdict.
/// Unrealizable/Timeout/Failed verdicts are never short-circuited: their
/// warm-run speedup comes from the SMT and SGE caches underneath, and a
/// stale negative must not hide a newly solvable benchmark.
void runOne(SuiteRecord &Rec, std::shared_ptr<const Problem> P,
            const SolverConfig &Config, ProgressReporter &Progress) {
  TraceSpan Span("suite.run", "suite");
  if (Span.active()) {
    Span.arg("benchmark", Rec.Def->Name);
    Span.arg("algorithm", algorithmName(Rec.Algorithm));
  }
  Hash128 Key{};
  const bool TryWarm = cachePersistent() && P != nullptr;
  if (TryWarm) {
    Key = suiteWarmStartKey(*Rec.Def, Rec.Algorithm, Config);
    bool Hit = false;
    if (auto Payload = persistentLookup("suite", Key))
      if (auto Sol = decodeSuiteSolution(*P, *Payload)) {
        Stopwatch Timer;
        VerifyOptions VOpts;
        VOpts.Bounded = Config.Algo.Bounded;
        VOpts.Induction = Config.Algo.Induction;
        Deadline Budget = Deadline::afterMs(Config.Algo.TimeoutMs);
        VerifyResult VR = verifySolution(*P, *Sol, VOpts, Budget);
        if (VR.Status != VerifyStatus::Counterexample && !Budget.expired()) {
          Hit = true;
          perfAdd(PerfCounter::CacheSuiteHits);
          Rec.Result.V = Verdict::Realizable;
          Rec.Result.Solution = std::move(*Sol);
          Rec.Result.Detail = "suite cache (re-verified)";
          Rec.Result.Ev.Source = VerdictSource::Cache;
          Rec.Result.Ev.Channel = "suite-cache";
          Rec.Result.Stats.SolutionProvedInductive =
              VR.Status == VerifyStatus::ProvedInductive;
          Rec.Result.Stats.ElapsedMs = Timer.elapsedMs();
        }
      }
    if (Hit) {
      Span.arg("verdict", verdictName(Rec.Result.V));
      Progress.report(Rec);
      return;
    }
    perfAdd(PerfCounter::CacheSuiteMisses);
  }
  SynthesisTask Task(P, Rec.Algorithm);
  Rec.Result = Task.run(Config);
  if (TryWarm && Rec.Result.V == Verdict::Realizable) {
    std::string Payload = encodeSuiteSolution(*P, Rec.Result.Solution);
    if (!Payload.empty())
      persistentInsert("suite", Key, Payload);
  }
  Span.arg("verdict", verdictName(Rec.Result.V));
  Progress.report(Rec);
}

/// The historical strictly sequential loop, preserved verbatim so that
/// Jobs=1 reproduces pre-parallel sweeps bit-for-bit (same load order,
/// same progress interleaving, same records).
std::vector<SuiteRecord> runSuiteSequential(const SuiteOptions &Opts) {
  std::vector<SuiteRecord> Records;
  ProgressReporter Progress(Opts.Config.Verbose);
  for (const BenchmarkDef &Def : allBenchmarks()) {
    if (!Opts.Config.Filter.empty() &&
        Def.Name.find(Opts.Config.Filter) == std::string::npos)
      continue;
    if ((Opts.SkipRealizable && Def.ExpectRealizable) ||
        (Opts.SkipUnrealizable && !Def.ExpectRealizable))
      continue;
    std::shared_ptr<const Problem> P;
    try {
      P = std::make_shared<const Problem>(loadBenchmark(Def));
    } catch (const UserError &E) {
      logf(LogLevel::Warn, "suite", "%s: load error: %s", Def.Name.c_str(),
           E.what());
      continue;
    }
    for (AlgorithmKind K : Opts.Algorithms) {
      SuiteRecord Rec;
      Rec.Def = &Def;
      Rec.Algorithm = K;
      runOne(Rec, P, Opts.Config, Progress);
      Records.push_back(std::move(Rec));
    }
  }
  return Records;
}

/// Parallel sweep: benchmarks are loaded once each in registry order on
/// the main thread (so load-error reporting matches the sequential loop),
/// then every (benchmark, algorithm) pair becomes one pool job writing
/// into its pre-assigned record slot. Loaded problems are immutable after
/// validation and every SmtQuery solves on its own worker's thread-local
/// Z3 session (private fresh contexts when SE2GIS_SMT_INCREMENTAL=off —
/// never a solver shared across threads), so jobs never
/// share mutable state; results land in the same deterministic order as
/// the sequential loop.
std::vector<SuiteRecord> runSuiteParallel(const SuiteOptions &Opts,
                                          unsigned Jobs) {
  std::vector<SuiteRecord> Records;
  std::vector<std::shared_ptr<const Problem>> Problems; // one per record
  ProgressReporter Progress(Opts.Config.Verbose);

  for (const BenchmarkDef &Def : allBenchmarks()) {
    if (!Opts.Config.Filter.empty() &&
        Def.Name.find(Opts.Config.Filter) == std::string::npos)
      continue;
    if ((Opts.SkipRealizable && Def.ExpectRealizable) ||
        (Opts.SkipUnrealizable && !Def.ExpectRealizable))
      continue;
    std::shared_ptr<const Problem> P;
    try {
      P = std::make_shared<const Problem>(loadBenchmark(Def));
    } catch (const UserError &E) {
      logf(LogLevel::Warn, "suite", "%s: load error: %s", Def.Name.c_str(),
           E.what());
      continue;
    }
    for (AlgorithmKind K : Opts.Algorithms) {
      SuiteRecord Rec;
      Rec.Def = &Def;
      Rec.Algorithm = K;
      Records.push_back(std::move(Rec));
      Problems.push_back(P);
    }
  }

  ThreadPool Pool(Jobs);
  std::vector<std::future<void>> Pending;
  Pending.reserve(Records.size());
  for (size_t I = 0; I < Records.size(); ++I)
    Pending.push_back(Pool.enqueue([&, I] {
      runOne(Records[I], Problems[I], Opts.Config, Progress);
    }));
  for (std::future<void> &F : Pending)
    F.get(); // rethrows anything unexpected from a worker
  return Records;
}

} // namespace

std::vector<SuiteRecord> se2gis::runSuite(const SuiteOptions &Opts) {
  Stopwatch Wall;
  // Configure the memoization subsystem before the sweep starts (rather
  // than inside the first SynthesisTask::run) so the persistent segments
  // are loaded before any warm-start lookup. Logging and tracing likewise:
  // progress lines and the per-record spans must respect the config from
  // the very first benchmark.
  configureCache(Opts.Config.Cache);
  configureLogging(Opts.Config.Log);
  if (!Opts.Config.TracePath.empty())
    traceConfigure(Opts.Config.TracePath);
  PerfSnapshot Before = snapshotPerf();
  // Inside a service process the worker pool already occupies the
  // hardware; cap this sweep's inner parallelism so outer × inner stays
  // within hardware_concurrency (no-op standalone — see clampInnerJobs).
  unsigned Jobs = clampInnerJobs(
      Opts.Config.Jobs ? Opts.Config.Jobs : ThreadPool::defaultConcurrency());
  std::vector<SuiteRecord> Records = Jobs <= 1
                                         ? runSuiteSequential(Opts)
                                         : runSuiteParallel(Opts, Jobs);
  if (!Opts.Config.PerfJsonPath.empty()) {
    std::ofstream OS(Opts.Config.PerfJsonPath);
    if (OS)
      writeSuitePerfJson(OS, Records, snapshotPerf().since(Before),
                         Wall.elapsedMs(), Jobs);
    else
      logf(LogLevel::Error, "suite", "cannot write perf summary to %s",
           Opts.Config.PerfJsonPath.c_str());
  }
  if (!Opts.Config.TracePath.empty())
    traceFlush();
  return Records;
}

void se2gis::writeSuitePerfJson(std::ostream &OS,
                                const std::vector<SuiteRecord> &Records,
                                const PerfSnapshot &Delta, double WallMs,
                                unsigned Jobs) {
  int Solved = 0;
  for (const SuiteRecord &R : Records)
    Solved += isSolved(R);
  OS << "{\n  \"suite\": {\"records\": " << Records.size()
     << ", \"solved\": " << Solved << ", \"wall_ms\": " << WallMs
     << ", \"jobs\": " << Jobs << "},\n  \"perf\": ";
  writePerfJson(OS, Delta);
  OS << ",\n  \"records\": [";
  for (size_t I = 0; I < Records.size(); ++I) {
    const SuiteRecord &R = Records[I];
    OS << (I ? ",\n    " : "\n    ") << "{\"benchmark\": \""
       << R.Def->Name << "\", \"algorithm\": \""
       << algorithmName(R.Algorithm) << "\", \"outcome\": \""
       << verdictName(R.Result.V) << "\", \"solved\": "
       << (isSolved(R) ? "true" : "false")
       << ", \"elapsed_ms\": " << R.Result.Stats.ElapsedMs
       << ", \"evidence\": \"" << verdictSourceName(R.Result.Ev.Source)
       << "\", \"channel\": \"" << R.Result.Ev.Channel
       << "\", \"phase_ms\": {\"eval\": " << R.Result.Stats.Phases.getMs(Phase::Eval)
       << ", \"smt\": " << R.Result.Stats.Phases.getMs(Phase::Smt)
       << ", \"enum\": " << R.Result.Stats.Phases.getMs(Phase::Enum)
       << ", \"induction\": "
       << R.Result.Stats.Phases.getMs(Phase::Induction) << "}}";
  }
  OS << "\n  ]\n}\n";
}

bool se2gis::isSolved(const SuiteRecord &R) {
  if (R.Def->ExpectRealizable)
    return R.Result.V == Verdict::Realizable;
  return R.Result.V == Verdict::Unrealizable;
}
