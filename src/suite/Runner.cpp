//===- Runner.cpp ---------------------------------------------------------===//

#include "suite/Runner.h"

#include "support/Diagnostics.h"

#include <cstdio>
#include <cstdlib>

using namespace se2gis;

SuiteOptions se2gis::suiteOptionsFromEnv(std::int64_t DefaultTimeoutMs) {
  SuiteOptions Opts;
  Opts.Algo.TimeoutMs = DefaultTimeoutMs;
  if (const char *T = std::getenv("SE2GIS_TIMEOUT_MS")) {
    long long V = std::atoll(T);
    if (V > 0)
      Opts.Algo.TimeoutMs = V;
  }
  if (const char *F = std::getenv("SE2GIS_FILTER"))
    Opts.Filter = F;
  return Opts;
}

std::vector<SuiteRecord> se2gis::runSuite(const SuiteOptions &Opts) {
  std::vector<SuiteRecord> Records;
  for (const BenchmarkDef &Def : allBenchmarks()) {
    if (!Opts.Filter.empty() &&
        Def.Name.find(Opts.Filter) == std::string::npos)
      continue;
    if ((Opts.SkipRealizable && Def.ExpectRealizable) ||
        (Opts.SkipUnrealizable && !Def.ExpectRealizable))
      continue;
    Problem P;
    try {
      P = loadBenchmark(Def);
    } catch (const UserError &E) {
      std::fprintf(stderr, "[suite] %s: load error: %s\n", Def.Name.c_str(),
                   E.what());
      continue;
    }
    for (AlgorithmKind K : Opts.Algorithms) {
      SuiteRecord Rec;
      Rec.Def = &Def;
      Rec.Algorithm = K;
      try {
        Rec.Result = runAlgorithm(K, P, Opts.Algo);
      } catch (const UserError &E) {
        Rec.Result.O = Outcome::Failed;
        Rec.Result.Detail = E.what();
      }
      if (Opts.Verbose)
        std::fprintf(stderr, "[suite] %-36s %-9s %-12s %8.1f ms  %s\n",
                     Def.Name.c_str(), algorithmName(K),
                     outcomeName(Rec.Result.O), Rec.Result.Stats.ElapsedMs,
                     Rec.Result.Stats.Steps.c_str());
      Records.push_back(std::move(Rec));
    }
  }
  return Records;
}

bool se2gis::isSolved(const SuiteRecord &R) {
  if (R.Def->ExpectRealizable)
    return R.Result.O == Outcome::Realizable;
  return R.Result.O == Outcome::Unrealizable;
}
