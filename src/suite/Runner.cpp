//===- Runner.cpp ---------------------------------------------------------===//

#include "suite/Runner.h"

#include "support/Diagnostics.h"
#include "support/PerfCounters.h"
#include "support/Stopwatch.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <mutex>
#include <ostream>

using namespace se2gis;

SuiteOptions se2gis::suiteOptionsFromEnv(std::int64_t DefaultTimeoutMs) {
  SuiteOptions Opts;
  Opts.Algo.TimeoutMs = DefaultTimeoutMs;
  if (const char *T = std::getenv("SE2GIS_TIMEOUT_MS")) {
    long long V = std::atoll(T);
    if (V > 0)
      Opts.Algo.TimeoutMs = V;
  }
  if (const char *F = std::getenv("SE2GIS_FILTER"))
    Opts.Filter = F;
  if (const char *J = std::getenv("SE2GIS_JOBS")) {
    long V = std::atol(J);
    if (V > 0)
      Opts.Jobs = static_cast<unsigned>(V);
  }
  if (const char *P = std::getenv("SE2GIS_PERF_JSON"))
    Opts.PerfJsonPath = P;
  return Opts;
}

namespace {

/// Serializes progress lines from concurrent workers so interleaved runs
/// stay readable; the line format is the historical sequential one.
class ProgressReporter {
public:
  explicit ProgressReporter(bool Enabled) : Enabled(Enabled) {}

  void report(const SuiteRecord &Rec) {
    if (!Enabled)
      return;
    std::lock_guard<std::mutex> Lock(M);
    std::fprintf(stderr, "[suite] %-36s %-9s %-12s %8.1f ms  %s\n",
                 Rec.Def->Name.c_str(), algorithmName(Rec.Algorithm),
                 outcomeName(Rec.Result.O), Rec.Result.Stats.ElapsedMs,
                 Rec.Result.Stats.Steps.c_str());
  }

private:
  std::mutex M;
  bool Enabled;
};

/// Runs one (benchmark, algorithm) pair; UserError becomes Outcome::Failed
/// exactly as in the sequential loop.
void runOne(SuiteRecord &Rec, const Problem &P, const AlgoOptions &Algo,
            ProgressReporter &Progress) {
  try {
    Rec.Result = runAlgorithm(Rec.Algorithm, P, Algo);
  } catch (const UserError &E) {
    Rec.Result.O = Outcome::Failed;
    Rec.Result.Detail = E.what();
  }
  Progress.report(Rec);
}

/// The historical strictly sequential loop, preserved verbatim so that
/// Jobs=1 reproduces pre-parallel sweeps bit-for-bit (same load order,
/// same progress interleaving, same records).
std::vector<SuiteRecord> runSuiteSequential(const SuiteOptions &Opts) {
  std::vector<SuiteRecord> Records;
  ProgressReporter Progress(Opts.Verbose);
  for (const BenchmarkDef &Def : allBenchmarks()) {
    if (!Opts.Filter.empty() &&
        Def.Name.find(Opts.Filter) == std::string::npos)
      continue;
    if ((Opts.SkipRealizable && Def.ExpectRealizable) ||
        (Opts.SkipUnrealizable && !Def.ExpectRealizable))
      continue;
    Problem P;
    try {
      P = loadBenchmark(Def);
    } catch (const UserError &E) {
      std::fprintf(stderr, "[suite] %s: load error: %s\n", Def.Name.c_str(),
                   E.what());
      continue;
    }
    for (AlgorithmKind K : Opts.Algorithms) {
      SuiteRecord Rec;
      Rec.Def = &Def;
      Rec.Algorithm = K;
      runOne(Rec, P, Opts.Algo, Progress);
      Records.push_back(std::move(Rec));
    }
  }
  return Records;
}

/// Parallel sweep: benchmarks are loaded once each in registry order on
/// the main thread (so load-error reporting matches the sequential loop),
/// then every (benchmark, algorithm) pair becomes one pool job writing
/// into its pre-assigned record slot. Loaded problems are immutable after
/// validation and every SmtQuery owns a private Z3 context, so jobs never
/// share mutable state; results land in the same deterministic order as
/// the sequential loop.
std::vector<SuiteRecord> runSuiteParallel(const SuiteOptions &Opts,
                                          unsigned Jobs) {
  std::vector<SuiteRecord> Records;
  std::vector<std::shared_ptr<const Problem>> Problems; // one per record
  ProgressReporter Progress(Opts.Verbose);

  for (const BenchmarkDef &Def : allBenchmarks()) {
    if (!Opts.Filter.empty() &&
        Def.Name.find(Opts.Filter) == std::string::npos)
      continue;
    if ((Opts.SkipRealizable && Def.ExpectRealizable) ||
        (Opts.SkipUnrealizable && !Def.ExpectRealizable))
      continue;
    std::shared_ptr<const Problem> P;
    try {
      P = std::make_shared<const Problem>(loadBenchmark(Def));
    } catch (const UserError &E) {
      std::fprintf(stderr, "[suite] %s: load error: %s\n", Def.Name.c_str(),
                   E.what());
      continue;
    }
    for (AlgorithmKind K : Opts.Algorithms) {
      SuiteRecord Rec;
      Rec.Def = &Def;
      Rec.Algorithm = K;
      Records.push_back(std::move(Rec));
      Problems.push_back(P);
    }
  }

  ThreadPool Pool(Jobs);
  std::vector<std::future<void>> Pending;
  Pending.reserve(Records.size());
  for (size_t I = 0; I < Records.size(); ++I)
    Pending.push_back(Pool.enqueue([&, I] {
      runOne(Records[I], *Problems[I], Opts.Algo, Progress);
    }));
  for (std::future<void> &F : Pending)
    F.get(); // rethrows anything unexpected from a worker
  return Records;
}

} // namespace

std::vector<SuiteRecord> se2gis::runSuite(const SuiteOptions &Opts) {
  Stopwatch Wall;
  PerfSnapshot Before = snapshotPerf();
  unsigned Jobs = Opts.Jobs ? Opts.Jobs : ThreadPool::defaultConcurrency();
  std::vector<SuiteRecord> Records = Jobs <= 1
                                         ? runSuiteSequential(Opts)
                                         : runSuiteParallel(Opts, Jobs);
  if (!Opts.PerfJsonPath.empty()) {
    std::ofstream OS(Opts.PerfJsonPath);
    if (OS)
      writeSuitePerfJson(OS, Records, snapshotPerf().since(Before),
                         Wall.elapsedMs(), Jobs);
    else
      std::fprintf(stderr, "[suite] cannot write perf summary to %s\n",
                   Opts.PerfJsonPath.c_str());
  }
  return Records;
}

void se2gis::writeSuitePerfJson(std::ostream &OS,
                                const std::vector<SuiteRecord> &Records,
                                const PerfSnapshot &Delta, double WallMs,
                                unsigned Jobs) {
  int Solved = 0;
  for (const SuiteRecord &R : Records)
    Solved += isSolved(R);
  OS << "{\n  \"suite\": {\"records\": " << Records.size()
     << ", \"solved\": " << Solved << ", \"wall_ms\": " << WallMs
     << ", \"jobs\": " << Jobs << "},\n  \"perf\": ";
  writePerfJson(OS, Delta);
  OS << ",\n  \"records\": [";
  for (size_t I = 0; I < Records.size(); ++I) {
    const SuiteRecord &R = Records[I];
    OS << (I ? ",\n    " : "\n    ") << "{\"benchmark\": \""
       << R.Def->Name << "\", \"algorithm\": \""
       << algorithmName(R.Algorithm) << "\", \"outcome\": \""
       << outcomeName(R.Result.O) << "\", \"solved\": "
       << (isSolved(R) ? "true" : "false")
       << ", \"elapsed_ms\": " << R.Result.Stats.ElapsedMs << "}";
  }
  OS << "\n  ]\n}\n";
}

bool se2gis::isSolved(const SuiteRecord &R) {
  if (R.Def->ExpectRealizable)
    return R.Result.O == Outcome::Realizable;
  return R.Result.O == Outcome::Unrealizable;
}
