//===- ExtraBenchmarks.cpp - Additional realizable benchmarks -------------===//
///
/// \file
/// Additional realizable benchmarks rounding the suite out to the paper's
/// scale: indexed lists (key/value recursion with extra parameters), more
/// tree traversals, and further parallelization joins.
///
//===----------------------------------------------------------------------===//

#include "suite/Benchmarks.h"

using namespace se2gis;

namespace {

const char *ZPrelude = R"(
type list = Nil | Cons of int * list
)";

const char *TreePrelude = R"(
type tree = Leaf of int | Node of int * tree * tree
)";

const char *ParPrelude = R"(
type clist = Single of int | Concat of clist * clist
type list = Elt of int | Cons of int * list

let rec repr = function
  | Single a -> Elt a
  | Concat (x, y) -> app (repr y) x
and app (l : list) = function
  | Single a -> Cons (a, l)
  | Concat (x, y) -> app (app l y) x
)";

void add(std::vector<BenchmarkDef> &Out, const char *Name,
         const char *Category, std::string Source,
         double PaperSe2gis = kPaperNotReported,
         double PaperSegisUc = kPaperNotReported,
         double PaperSegis = kPaperNotReported) {
  BenchmarkDef B;
  B.Name = Name;
  B.Category = Category;
  B.Source = std::move(Source);
  B.ExpectRealizable = true;
  B.PaperSe2gisSec = PaperSe2gis;
  B.PaperSegisUcSec = PaperSegisUc;
  B.PaperSegisSec = PaperSegis;
  Out.push_back(std::move(B));
}

} // namespace

void se2gis::addExtraBenchmarks(std::vector<BenchmarkDef> &Out) {
  add(Out, "list/count_lt_x", "Plain List", std::string(ZPrelude) + R"(
let rec clt (x : int) = function
  | Nil -> 0
  | Cons (a, l) -> (if a < x then 1 else 0) + clt x l
let rec tclt (x : int) : int = function
  | Nil -> $f0
  | Cons (a, l) -> $f1 x a (tclt x l)
synthesize tclt equiv clt
)");

  add(Out, "list/sum_between", "Plain List", std::string(ZPrelude) + R"(
let rec sb (lo : int) (hi : int) = function
  | Nil -> 0
  | Cons (a, l) -> (if lo <= a && a <= hi then a else 0) + sb lo hi l
let rec tsb (lo : int) (hi : int) : int = function
  | Nil -> $f0
  | Cons (a, l) -> $f1 lo hi a (tsb lo hi l)
synthesize tsb equiv sb
)",
      0.684);

  add(Out, "list/exists_gt", "Plain List", std::string(ZPrelude) + R"(
let rec eg (x : int) = function
  | Nil -> false
  | Cons (a, l) -> a > x || eg x l
let rec teg (x : int) : bool = function
  | Nil -> $f0
  | Cons (a, l) -> $f1 x a (teg x l)
synthesize teg equiv eg
)");

  add(Out, "list/all_positive", "Plain List", std::string(ZPrelude) + R"(
let rec ap = function
  | Nil -> true
  | Cons (a, l) -> a > 0 && ap l
let rec tap : bool = function
  | Nil -> $f0
  | Cons (a, l) -> $f1 a (tap l)
synthesize tap equiv ap
)");

  add(Out, "list/range_span", "Plain List", std::string(ZPrelude) + R"(
let rec rs = function
  | Nil -> (0, 0)
  | Cons (a, l) ->
    let mn, mx = rs l in
    (min a mn, max a mx)
let rec trs : int * int = function
  | Nil -> $g0
  | Cons (a, l) -> $g1 a (trs l)
synthesize trs equiv rs
)");

  add(Out, "list/alternating_sum", "Plain List", std::string(ZPrelude) + R"(
(* Sum with alternating signs, tracked with the parity of the length. *)
let rec asum = function
  | Nil -> (0, true)
  | Cons (a, l) ->
    let s, even = asum l in
    (if even then s + a else s - a, not even)
let rec tasum : int * bool = function
  | Nil -> $g0
  | Cons (a, l) -> $g1 a (tasum l)
synthesize tasum equiv asum
)");

  add(Out, "tree/count_eq", "Plain Tree", std::string(TreePrelude) + R"(
let rec ce (x : int) = function
  | Leaf a -> if a = x then 1 else 0
  | Node (a, l, r) -> (if a = x then 1 else 0) + ce x l + ce x r
let rec tce (x : int) : int = function
  | Leaf a -> $f0 x a
  | Node (a, l, r) -> $f1 x a (tce x l) (tce x r)
synthesize tce equiv ce
)");

  add(Out, "tree/max", "Plain Tree", std::string(TreePrelude) + R"(
let rec tm = function
  | Leaf a -> a
  | Node (a, l, r) -> max a (max (tm l) (tm r))
let rec ttm : int = function
  | Leaf a -> $f0 a
  | Node (a, l, r) -> $f1 a (ttm l) (ttm r)
synthesize ttm equiv tm
)");

  add(Out, "tree/contains", "Plain Tree", std::string(TreePrelude) + R"(
let rec mem (x : int) = function
  | Leaf a -> a = x
  | Node (a, l, r) -> a = x || mem x l || mem x r
let rec tmem (x : int) : bool = function
  | Leaf a -> $f0 x a
  | Node (a, l, r) -> $f1 x a (tmem x l) (tmem x r)
synthesize tmem equiv mem
)");

  add(Out, "tree/leaf_count", "Plain Tree", std::string(TreePrelude) + R"(
let rec lc = function
  | Leaf a -> 1
  | Node (a, l, r) -> lc l + lc r
let rec tlc : int = function
  | Leaf a -> $f0
  | Node (a, l, r) -> $f1 (tlc l) (tlc r)
synthesize tlc equiv lc
)");

  add(Out, "tree/sum_and_size", "Plain Tree", std::string(TreePrelude) + R"(
let rec ss = function
  | Leaf a -> (a, 1)
  | Node (a, l, r) ->
    let sl, nl = ss l in
    let sr, nr = ss r in
    (a + sl + sr, 1 + nl + nr)
let rec tss : int * int = function
  | Leaf a -> $g0 a
  | Node (a, l, r) -> $g1 a (tss l) (tss r)
synthesize tss equiv ss
)");

  add(Out, "parallel/all_positive", "Parallelization",
      std::string(ParPrelude) + R"(
let rec ap = function
  | Elt a -> a > 0
  | Cons (a, l) -> a > 0 && ap l
)" + R"(
let rec par : bool = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv ap via repr
)");

  add(Out, "parallel/exists_zero", "Parallelization",
      std::string(ParPrelude) + R"(
let rec ez = function
  | Elt a -> a = 0
  | Cons (a, l) -> a = 0 || ez l
)" + R"(
let rec par : bool = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv ez via repr
)");

  add(Out, "parallel/count_gt0", "Parallelization",
      std::string(ParPrelude) + R"(
let rec cg = function
  | Elt a -> if a > 0 then 1 else 0
  | Cons (a, l) -> (if a > 0 then 1 else 0) + cg l
)" + R"(
let rec par : int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv cg via repr
)");

  add(Out, "postcond/sum_count", "Inferring Postconditions",
      std::string(ParPrelude) + R"(
let rec sc = function
  | Elt a -> (a, 1)
  | Cons (a, l) ->
    let s, n = sc l in
    (a + s, n + 1)
let epost (p : int * int) = let s, n = p in n >= 1
)" + R"(
let rec par : int * int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv sc via repr ensures epost
)");

  add(Out, "postcond/min_sum", "Inferring Postconditions",
      std::string(ParPrelude) + R"(
let rec ms = function
  | Elt a -> (a, a)
  | Cons (a, l) ->
    let mn, s = ms l in
    (min a mn, a + s)
let epost (p : int * int) = let mn, s = p in mn <= s || true
)" + R"(
let rec par : int * int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv ms via repr
)");

  const char *AssocPrelude = R"(
type alist = AElt of int * int | ACons of int * int * alist
)";

  add(Out, "alist/exists_key", "Association List",
      std::string(AssocPrelude) + R"(
let rec ek (k : int) = function
  | AElt (a, b) -> a = k
  | ACons (a, b, l) -> a = k || ek k l
let rec tek (k : int) : bool = function
  | AElt (a, b) -> $u0 k a
  | ACons (a, b, l) -> $u1 k a (tek k l)
synthesize tek equiv ek
)");

  add(Out, "alist/sum_values", "Association List",
      std::string(AssocPrelude) + R"(
let rec sv = function
  | AElt (a, b) -> b
  | ACons (a, b, l) -> b + sv l
let rec tsv : int = function
  | AElt (a, b) -> $u0 b
  | ACons (a, b, l) -> $u1 b (tsv l)
synthesize tsv equiv sv
)");

  add(Out, "alist/weighted_sum", "Association List",
      std::string(AssocPrelude) + R"(
let rec ws = function
  | AElt (a, b) -> a * b
  | ACons (a, b, l) -> a * b + ws l
let rec tws : int = function
  | AElt (a, b) -> $u0 a b
  | ACons (a, b, l) -> $u1 a b (tws l)
synthesize tws equiv ws
)");
}
