//===- ParallelBenchmarks.cpp - Divide-and-conquer / postconditions -------===//
///
/// \file
/// The paper's "Inferring Postconditions" category and other
/// parallelization benchmarks: the destination type is a concat-list, the
/// source a cons-list connected by a fold-style representation function,
/// and the interesting work is inferring invariants of the reference
/// function's image (§7.2.2) so that the join operators become realizable.
///
//===----------------------------------------------------------------------===//

#include "suite/Benchmarks.h"

using namespace se2gis;

namespace {

/// Concat-lists over cons-lists with the standard fold representation.
const char *ParPrelude = R"(
type clist = Single of int | Concat of clist * clist
type list = Elt of int | Cons of int * list
)";

const char *ReprDef = R"(
let rec repr = function
  | Single a -> Elt a
  | Concat (x, y) -> app (repr y) x
and app (l : list) = function
  | Single a -> Cons (a, l)
  | Concat (x, y) -> app (app l y) x
)";

void add(std::vector<BenchmarkDef> &Out, const char *Name,
         const char *Category, std::string Source, double PaperSe2gis,
         double PaperSegisUc, double PaperSegis, bool ByInduction = true) {
  BenchmarkDef B;
  B.Name = Name;
  B.Category = Category;
  B.Source = std::move(Source);
  B.ExpectRealizable = true;
  B.PaperSe2gisSec = PaperSe2gis;
  B.PaperSegisUcSec = PaperSegisUc;
  B.PaperSegisSec = PaperSegis;
  B.PaperByInduction = ByInduction;
  Out.push_back(std::move(B));
}

} // namespace

void se2gis::addParallelBenchmarks(std::vector<BenchmarkDef> &Out) {
  add(Out, "parallel/sum", "Parallelization",
      std::string(ParPrelude) + R"(
let rec lsum = function
  | Elt a -> a
  | Cons (a, l) -> a + lsum l
)" + ReprDef + R"(
let rec par : int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv lsum via repr
)",
      0.028, 0.023, 0.023);

  add(Out, "parallel/length", "Parallelization",
      std::string(ParPrelude) + R"(
let rec llen = function
  | Elt a -> 1
  | Cons (a, l) -> 1 + llen l
)" + ReprDef + R"(
let rec par : int = function
  | Single a -> $s0
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv llen via repr
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "parallel/min", "Parallelization",
      std::string(ParPrelude) + R"(
let rec lmin = function
  | Elt a -> a
  | Cons (a, l) -> min a (lmin l)
)" + ReprDef + R"(
let rec par : int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv lmin via repr
)",
      0.503, 0.031, 0.028);

  add(Out, "parallel/max", "Parallelization",
      std::string(ParPrelude) + R"(
let rec lmax = function
  | Elt a -> a
  | Cons (a, l) -> max a (lmax l)
)" + ReprDef + R"(
let rec par : int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv lmax via repr
)",
      0.937, 0.026, 0.027);

  add(Out, "parallel/count_eq", "Parallelization",
      std::string(ParPrelude) + R"(
let rec ceq (v : int) = function
  | Elt a -> if a = v then 1 else 0
  | Cons (a, l) -> (if a = v then 1 else 0) + ceq v l
)" + ReprDef + R"(
let rec par (v : int) : int = function
  | Single a -> $s0 v a
  | Concat (x, y) -> $join (par v x) (par v y)
synthesize par equiv ceq via repr
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "parallel/contains", "Parallelization",
      std::string(ParPrelude) + R"(
let rec mem (v : int) = function
  | Elt a -> a = v
  | Cons (a, l) -> a = v || mem v l
)" + ReprDef + R"(
let rec par (v : int) : bool = function
  | Single a -> $s0 v a
  | Concat (x, y) -> $join (par v x) (par v y)
synthesize par equiv mem via repr
)",
      0.172, 0.184, 0.181);

  add(Out, "postcond/mts", "Inferring Postconditions",
      std::string(ParPrelude) + R"(
(* Maximum tail (suffix) sum carried with the sum; joining two segments
   requires knowing m >= 0 and m >= s on the image of the reference. *)
let rec mts = function
  | Elt a -> (a, max a 0)
  | Cons (a, l) ->
    let s, m = mts l in
    (a + s, max (a + s) m)
let epost (p : int * int) = let s, m = p in m >= 0 && m >= s
)" + ReprDef + R"(
let rec par : int * int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv mts via repr ensures epost
)",
      0.652, 5.511, 5.363);

  add(Out, "postcond/mts_no_hint", "Inferring Postconditions",
      std::string(ParPrelude) + R"(
(* As postcond/mts but the image invariant must be inferred from scratch
   -- the paper's no-hint rows. *)
let rec mts = function
  | Elt a -> (a, max a 0)
  | Cons (a, l) ->
    let s, m = mts l in
    (a + s, max (a + s) m)
)" + ReprDef + R"(
let rec par : int * int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv mts via repr
)",
      6.636, 19.272, 19.148, false);

  add(Out, "postcond/mps", "Inferring Postconditions",
      std::string(ParPrelude) + R"(
(* Maximum prefix sum carried with the sum. *)
let rec mps = function
  | Elt a -> (a, max a 0)
  | Cons (a, l) ->
    let s, m = mps l in
    (a + s, max 0 (a + m))
let epost (p : int * int) = let s, m = p in m >= 0 && m >= s
)" + ReprDef + R"(
let rec par : int * int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv mps via repr ensures epost
)",
      0.896, 3.731, 3.880);

  add(Out, "postcond/mps_no_hint", "Inferring Postconditions",
      std::string(ParPrelude) + R"(
let rec mps = function
  | Elt a -> (a, max a 0)
  | Cons (a, l) ->
    let s, m = mps l in
    (a + s, max 0 (a + m))
)" + ReprDef + R"(
let rec par : int * int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv mps via repr
)",
      3.594, 19.859, 19.782, false);

  add(Out, "postcond/sum_max", "Inferring Postconditions",
      std::string(ParPrelude) + R"(
(* (sum, max): max >= every element is the invariant that joins need. *)
let rec sm = function
  | Elt a -> (a, a)
  | Cons (a, l) ->
    let s, m = sm l in
    (a + s, max a m)
let epost (p : int * int) = let s, m = p in m >= s
)" + ReprDef + R"(
let rec par : int * int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv sm via repr ensures epost
)",
      1.072, 1.066, 1.060);

  add(Out, "postcond/min_max", "Inferring Postconditions",
      std::string(ParPrelude) + R"(
let rec mm = function
  | Elt a -> (a, a)
  | Cons (a, l) ->
    let mn, mx = mm l in
    (min a mn, max a mx)
let epost (p : int * int) = let mn, mx = p in mn <= mx
)" + ReprDef + R"(
let rec par : int * int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv mm via repr ensures epost
)",
      0.115, 0.651, 0.593);

  add(Out, "postcond/max_count", "Inferring Postconditions",
      std::string(ParPrelude) + R"(
(* (max, count-of-max): joining needs max-consistency between the parts. *)
let rec mc = function
  | Elt a -> (a, 1)
  | Cons (a, l) ->
    let m, c = mc l in
    (max a m, if a > m then 1 else if a = m then c + 1 else c)
let epost (p : int * int) = let m, c = p in c >= 1
)" + ReprDef + R"(
let rec par : int * int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv mc via repr ensures epost
)",
      6.891, kPaperTimeout, kPaperTimeout);

  add(Out, "postcond/count_positive", "Inferring Postconditions",
      std::string(ParPrelude) + R"(
let rec cp = function
  | Elt a -> if a > 0 then 1 else 0
  | Cons (a, l) -> (if a > 0 then 1 else 0) + cp l
)" + ReprDef + R"(
let rec par : int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv cp via repr
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "postcond/last", "Inferring Postconditions",
      std::string(ParPrelude) + R"(
(* The head of the cons representation is the *leftmost* element, which for
   the fold representation means par must keep its left part's value. *)
let rec hd = function
  | Elt a -> a
  | Cons (a, l) -> a
)" + ReprDef + R"(
let rec par : int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv hd via repr
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "postcond/sum_abs", "Inferring Postconditions",
      std::string(ParPrelude) + R"(
let rec sab = function
  | Elt a -> abs a
  | Cons (a, l) -> abs a + sab l
)" + ReprDef + R"(
let rec par : int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)
synthesize par equiv sab via repr
)",
      0.536, 0.326, 0.316, false);
}
