//===- Benchmarks.cpp -----------------------------------------------------===//

#include "suite/Benchmarks.h"

#include "frontend/Elaborate.h"
#include "support/Diagnostics.h"

using namespace se2gis;

const std::vector<BenchmarkDef> &se2gis::allBenchmarks() {
  static const std::vector<BenchmarkDef> Registry = [] {
    std::vector<BenchmarkDef> Out;
    addListBenchmarks(Out);
    addSortedBenchmarks(Out);
    addTreeBenchmarks(Out);
    addParallelBenchmarks(Out);
    addExtraBenchmarks(Out);
    addUnrealizableBenchmarks(Out);
    return Out;
  }();
  return Registry;
}

const BenchmarkDef *se2gis::findBenchmark(const std::string &Name) {
  for (const BenchmarkDef &B : allBenchmarks())
    if (B.Name == Name)
      return &B;
  return nullptr;
}

Problem se2gis::loadBenchmark(const BenchmarkDef &Def) {
  try {
    return loadProblem(Def.Source);
  } catch (const UserError &E) {
    userError("benchmark '" + Def.Name + "': " + E.what());
  }
}
