//===- TreeBenchmarks.cpp - Tree-shaped benchmark categories --------------===//
///
/// \file
/// The paper's tree categories: "Binary Search Tree" (including the §2
/// motivating `frequency` example), "Balanced Tree", "Memoizing
/// Information", "Symmetric Tree", "Tree of Even Numbers", and "Empty
/// (right) subtree".
///
//===----------------------------------------------------------------------===//

#include "suite/Benchmarks.h"

using namespace se2gis;

namespace {

const char *TreePrelude = R"(
type tree = Leaf of int | Node of int * tree * tree
)";

/// Binary search tree: left subtree < label, right subtree >= label.
const char *BstInv = R"(
let rec bst = function
  | Leaf a -> true
  | Node (a, l, r) -> alllt a l && allgeq a r && bst l && bst r
and alllt (v : int) = function
  | Leaf a -> a < v
  | Node (a, l, r) -> a < v && alllt v l && alllt v r
and allgeq (v : int) = function
  | Leaf a -> a >= v
  | Node (a, l, r) -> a >= v && allgeq v l && allgeq v r
)";

/// All labels even.
const char *EvenTreeInv = R"(
let rec eventree = function
  | Leaf a -> a mod 2 = 0
  | Node (a, l, r) -> a mod 2 = 0 && eventree l && eventree r
)";

/// Left and right subtrees agree on their minimum and sum (a scalar
/// consequence of mirror symmetry expressible without tree equality).
const char *SymInv = R"(
let rec symish = function
  | Leaf a -> true
  | Node (a, l, r) -> tmin l = tmin r && tsum l = tsum r
                      && symish l && symish r
and tmin = function
  | Leaf a -> a
  | Node (a, l, r) -> min a (min (tmin l) (tmin r))
and tsum = function
  | Leaf a -> a
  | Node (a, l, r) -> a + tsum l + tsum r
)";

/// The right subtree of every node carries no information (all zero labels).
const char *EmptyRightInv = R"(
let rec rzero = function
  | Leaf a -> true
  | Node (a, l, r) -> allzero r && rzero l
and allzero = function
  | Leaf a -> a = 0
  | Node (a, l, r) -> a = 0 && allzero l && allzero r
)";

/// Memoized trees: the first field of a node caches the subtree size.
const char *MemoPrelude = R"(
type mtree = MLeaf of int | MNode of int * int * mtree * mtree

let rec memok = function
  | MLeaf a -> true
  | MNode (s, a, l, r) -> s = 1 + msize l + msize r && memok l && memok r
and msize = function
  | MLeaf a -> 1
  | MNode (s, a, l, r) -> 1 + msize l + msize r
)";

void add(std::vector<BenchmarkDef> &Out, const char *Name,
         const char *Category, std::string Source, double PaperSe2gis,
         double PaperSegisUc, double PaperSegis, bool ByInduction = true) {
  BenchmarkDef B;
  B.Name = Name;
  B.Category = Category;
  B.Source = std::move(Source);
  B.ExpectRealizable = true;
  B.PaperSe2gisSec = PaperSe2gis;
  B.PaperSegisUcSec = PaperSegisUc;
  B.PaperSegisSec = PaperSegis;
  B.PaperByInduction = ByInduction;
  Out.push_back(std::move(B));
}

} // namespace

void se2gis::addTreeBenchmarks(std::vector<BenchmarkDef> &Out) {
  // --- Plain trees -----------------------------------------------------------

  add(Out, "tree/sum", "Plain Tree", std::string(TreePrelude) + R"(
let rec tsum = function
  | Leaf a -> a
  | Node (a, l, r) -> a + tsum l + tsum r
let rec ttsum : int = function
  | Leaf a -> $f0 a
  | Node (a, l, r) -> $f1 a (ttsum l) (ttsum r)
synthesize ttsum equiv tsum
)",
      0.267, 0.040, 0.040);

  add(Out, "tree/height", "Plain Tree", std::string(TreePrelude) + R"(
let rec th = function
  | Leaf a -> 1
  | Node (a, l, r) -> 1 + max (th l) (th r)
let rec tth : int = function
  | Leaf a -> $f0
  | Node (a, l, r) -> $f1 (tth l) (tth r)
synthesize tth equiv th
)",
      0.181, 0.052, 0.058);

  add(Out, "tree/min", "Plain Tree", std::string(TreePrelude) + R"(
let rec tmn = function
  | Leaf a -> a
  | Node (a, l, r) -> min a (min (tmn l) (tmn r))
let rec ttmn : int = function
  | Leaf a -> $f0 a
  | Node (a, l, r) -> $f1 a (ttmn l) (ttmn r)
synthesize ttmn equiv tmn
)",
      1.207, 0.041, 0.042);

  // --- Binary Search Tree ------------------------------------------------------

  add(Out, "bst/frequency", "Binary Search Tree",
      std::string(TreePrelude) + BstInv + R"(
(* The §2 motivating example with the repaired skeleton (Fig. 2(c) after
   both repair steps). *)
let rec freq (x : int) = function
  | Leaf a -> if a = x then 1 else 0
  | Node (a, l, r) ->
    freq x l + freq x r + (if a = x then 1 else 0)
let rec tfreq (x : int) : int = function
  | Leaf a -> $u0 x a
  | Node (a, l, r) ->
    if a < x then $u1 (tfreq x r)
    else $u2 x a (tfreq x r) (tfreq x l)
synthesize tfreq equiv freq requires bst
)",
      1.0, 88.0, 88.0);

  add(Out, "bst/contains", "Binary Search Tree",
      std::string(TreePrelude) + BstInv + R"(
let rec mem (x : int) = function
  | Leaf a -> a = x
  | Node (a, l, r) -> a = x || mem x l || mem x r
let rec tbmem (x : int) : bool = function
  | Leaf a -> $u0 x a
  | Node (a, l, r) ->
    if a < x then $u1 (tbmem x r)
    else $u2 x a (tbmem x r) (tbmem x l)
synthesize tbmem equiv mem requires bst
)",
      0.097, 0.132, 0.127);

  add(Out, "bst/count_lt", "Binary Search Tree",
      std::string(TreePrelude) + BstInv + R"(
(* Count labels < x; when the root is >= x the right subtree contributes
   nothing. *)
let rec clt (x : int) = function
  | Leaf a -> if a < x then 1 else 0
  | Node (a, l, r) ->
    (if a < x then 1 else 0) + clt x l + clt x r
let rec tclt (x : int) : int = function
  | Leaf a -> $u0 x a
  | Node (a, l, r) ->
    if a < x then $u1 (tclt x l) (tclt x r)
    else $u2 x a (tclt x l)
synthesize tclt equiv clt requires bst
)",
      0.216, 0.195, 0.182);

  add(Out, "bst/sum_lt", "Binary Search Tree",
      std::string(TreePrelude) + BstInv + R"(
(* Sum of labels < x, pruning the right subtree when the root is >= x. *)
let rec slt (x : int) = function
  | Leaf a -> if a < x then a else 0
  | Node (a, l, r) ->
    (if a < x then a else 0) + slt x l + slt x r
let rec tslt (x : int) : int = function
  | Leaf a -> $u0 x a
  | Node (a, l, r) ->
    if a < x then $u1 x a (tslt x l) (tslt x r)
    else $u2 x a (tslt x l)
synthesize tslt equiv slt requires bst
)",
      1.958, 0.164, 0.156);

  add(Out, "bst/min", "Binary Search Tree",
      std::string(TreePrelude) + BstInv + R"(
(* The minimum of a BST lives on the left spine. *)
let rec tmn = function
  | Leaf a -> a
  | Node (a, l, r) -> min a (min (tmn l) (tmn r))
let rec tbmn : int = function
  | Leaf a -> $u0 a
  | Node (a, l, r) -> $u1 a (tbmn l)
synthesize tbmn equiv tmn requires bst
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  // --- Balanced Tree -------------------------------------------------------

  add(Out, "balanced/node_count", "Balanced Tree",
      std::string(TreePrelude) + R"(
(* In a perfect tree both subtrees have equal size, so counting one side
   is enough.  (height, size) reference. *)
let rec perfect = function
  | Leaf a -> true
  | Node (a, l, r) -> hgt l = hgt r && perfect l && perfect r
and hgt = function
  | Leaf a -> 1
  | Node (a, l, r) -> 1 + max (hgt l) (hgt r)

let rec hs = function
  | Leaf a -> (1, 1)
  | Node (a, l, r) ->
    let hl, sl = hs l in
    let hr, sr = hs r in
    (1 + max hl hr, 1 + sl + sr)
let rec ths : int * int = function
  | Leaf a -> $g0
  | Node (a, l, r) ->
    let hl, sl = ths l in
    $g1 hl sl
synthesize ths equiv hs requires perfect
)",
      0.318, kPaperTimeout, kPaperTimeout);

  add(Out, "balanced/height", "Balanced Tree",
      std::string(TreePrelude) + R"(
let rec perfect = function
  | Leaf a -> true
  | Node (a, l, r) -> hgt l = hgt r && perfect l && perfect r
and hgt = function
  | Leaf a -> 1
  | Node (a, l, r) -> 1 + max (hgt l) (hgt r)

let rec href = function
  | Leaf a -> 1
  | Node (a, l, r) -> 1 + max (href l) (href r)
let rec thref : int = function
  | Leaf a -> $f0
  | Node (a, l, r) -> $f1 (thref l)
synthesize thref equiv href requires perfect
)",
      0.262, 0.059, 0.061);

  // --- Memoizing Information -------------------------------------------------

  add(Out, "memo/size", "Memoizing Information",
      std::string(MemoPrelude) + R"(
(* Constant-time size via the memoized field. *)
let rec sz = function
  | MLeaf a -> 1
  | MNode (s, a, l, r) -> 1 + sz l + sz r
let rec tsz : int = function
  | MLeaf a -> $u0 a
  | MNode (s, a, l, r) -> $u1 s a
synthesize tsz equiv sz requires memok
)",
      10.864, kPaperTimeout, kPaperTimeout);

  add(Out, "memo/sum_with_size", "Memoizing Information",
      std::string(MemoPrelude) + R"(
(* (size, sum): read the size from the memo, recurse for the sum. *)
let rec szsum = function
  | MLeaf a -> (1, a)
  | MNode (s, a, l, r) ->
    let nl, sl = szsum l in
    let nr, sr = szsum r in
    (1 + nl + nr, a + sl + sr)
let rec tszsum : int * int = function
  | MLeaf a -> $g0 a
  | MNode (s, a, l, r) ->
    let nl, sl = tszsum l in
    let nr, sr = tszsum r in
    $g1 s a sl sr
synthesize tszsum equiv szsum requires memok
)",
      kPaperNotReported, kPaperNotReported, kPaperNotReported);

  add(Out, "memo/obfuscated_length", "Memoizing Information",
      std::string(MemoPrelude) + R"(
(* 2*size+1 computed from the memo field alone. *)
let rec obl = function
  | MLeaf a -> 3
  | MNode (s, a, l, r) -> 1 + obl l + obl r
let rec tobl : int = function
  | MLeaf a -> $u0 a
  | MNode (s, a, l, r) -> $u1 s a
synthesize tobl equiv obl requires memok
)",
      0.112, 75.070, 75.506);

  // --- Symmetric Tree ----------------------------------------------------------

  add(Out, "symtree/min", "Symmetric Tree",
      std::string(TreePrelude) + SymInv + R"(
(* The reference is the invariant's own helper, so learned guards align
   with the invariant's stuck calls. *)
let rec tsmn : int = function
  | Leaf a -> $u0 a
  | Node (a, l, r) -> $u1 a (tsmn l)
synthesize tsmn equiv tmin requires symish
)",
      1.207, 0.041, 0.042);

  add(Out, "symtree/sum", "Symmetric Tree",
      std::string(TreePrelude) + SymInv + R"(
let rec tssm : int = function
  | Leaf a -> $u0 a
  | Node (a, l, r) -> $u1 a (tssm l)
synthesize tssm equiv tsum requires symish
)",
      0.267, 0.040, 0.040);

  // --- Tree of Even Numbers -----------------------------------------------------

  add(Out, "eventree/parity_of_sum", "Tree of Even Numbers",
      std::string(TreePrelude) + EvenTreeInv + R"(
let rec ps = function
  | Leaf a -> a mod 2 = 1
  | Node (a, l, r) -> ((a mod 2 = 1) <> ps l) <> ps r
let rec tps : bool = function
  | Leaf a -> $u0 a
  | Node (a, l, r) -> $u1 a
synthesize tps equiv ps requires eventree
)",
      3.254, 0.051, 0.055);

  add(Out, "eventree/parity_of_max", "Tree of Even Numbers",
      std::string(TreePrelude) + EvenTreeInv + R"(
let rec pm = function
  | Leaf a -> a
  | Node (a, l, r) -> max a (max (pm l) (pm r))
let rec tpm : int = function
  | Leaf a -> $u0 a
  | Node (a, l, r) -> $u1 a (tpm l) (tpm r)
synthesize tpm equiv pm requires eventree
)",
      6.679, 0.092, 0.085);

  // --- Empty (right) subtree ------------------------------------------------------

  add(Out, "emptyright/sum", "Empty right subtree",
      std::string(TreePrelude) + EmptyRightInv + R"(
(* All right labels are zero, so the sum ignores the right subtree entirely
   -- but only with the inferred fact sum(r) = 0. *)
let rec sm = function
  | Leaf a -> a
  | Node (a, l, r) -> a + sm l + sm r
let rec tes : int = function
  | Leaf a -> $u0 a
  | Node (a, l, r) -> $u1 a (tes l)
synthesize tes equiv sm requires rzero
)",
      0.093, kPaperTimeout, kPaperTimeout);

  add(Out, "emptyright/contains", "Empty right subtree",
      std::string(TreePrelude) + EmptyRightInv + R"(
let rec mem (x : int) = function
  | Leaf a -> a = x
  | Node (a, l, r) -> a = x || mem x l || mem x r
let rec tem (x : int) : bool = function
  | Leaf a -> $u0 x a
  | Node (a, l, r) -> $u1 x a (tem x l)
synthesize tem equiv mem requires rzero
)",
      2.801, kPaperTimeout, kPaperTimeout);
}
