//===- ChcChannel.h - The CHC unrealizability channel -----------*- C++-*-===//
///
/// \file
/// Entry point of the constrained-Horn-clause unrealizability channel: it
/// encodes the problem (chc/ChcEncoder), asks Z3's fixedpoint engine
/// whether `realizable` is derivable (chc/FixedpointSolver), and maps the
/// answer onto the repo's Outcome vocabulary. The channel is one-sided — it
/// can prove Unrealizable but never Realizable — which is why it runs raced
/// against the witness-based algorithms (core/Portfolio) rather than on
/// its own, except under `--algo chc`.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CHC_CHCCHANNEL_H
#define SE2GIS_CHC_CHCCHANNEL_H

#include "core/Algorithms.h"

namespace se2gis {

/// Runs the CHC channel on \p P under the usual budgets. Verdicts:
///  - Unrealizable when `realizable` is underivable (Evidence: chc, with
///    the clause count),
///  - Timeout when the budget/token expired first,
///  - Failed when the system is derivable or outside the encodable
///    fragment (inconclusive — the channel never concludes Realizable).
Outcome runChcChannel(const Problem &P, const AlgoOptions &Opts);

} // namespace se2gis

#endif // SE2GIS_CHC_CHCCHANNEL_H
