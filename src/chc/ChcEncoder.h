//===- ChcEncoder.h - Problem → Horn clauses over `realizable` -*- C++-*-===//
///
/// \file
/// Encodes a recursion-synthesis problem as a constrained-Horn-clause
/// system in the style of Hu et al.'s SemGuS unrealizability checkers: the
/// grammar's semantics become rules of per-unknown relations over *vectors
/// of evaluation points*, the specification becomes a rule deriving a
/// 0-ary `realizable` relation, and `realizable` being underivable (the
/// fixedpoint query returns unsat) proves the problem unrealizable.
///
/// Concretely (point instantiation): a few fully bounded terms of θ are
/// recursion-eliminated into guarded equations `guard ⇒ lhs = rhs`
/// (unknown-free except for unknown applications in lhs), which are then
/// instantiated at small concrete assignments of their free scalar
/// variables. Every unknown application at a distinct argument tuple
/// becomes one column of that unknown's relation; identical argument
/// tuples share a column, which is exactly the functional-consistency
/// requirement the witness channel exploits. Per unknown u over m points,
/// `chc_int_u` / `chc_bool_u` ⊆ Int^m / Bool^m hold the value vectors
/// achievable by grammar terms: argument columns and boolean literals are
/// facts, every *integer* constant is one rule (∀k. rel(k,…,k) — a strict
/// superset of any constant pool, so synthesized constants can never
/// contradict a CHC verdict), and each grammar operator enabled by the
/// GrammarConfig is a componentwise rule. The encoded grammar is therefore
/// a superset of the enumerator's: an underivable `realizable` can never
/// contradict a Realizable verdict found by synthesis.
///
/// Instantiation only ever *drops* universally quantified constraints, so
/// the clause system is a weakening of the true specification and unsat
/// remains a sound unrealizability proof. Anything the scheme cannot
/// express (datatype-valued unknowns, unknowns nested in unknown
/// arguments, …) makes the encoding bail out as not Encodable —
/// inconclusive, never wrong.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CHC_CHCENCODER_H
#define SE2GIS_CHC_CHCENCODER_H

#include "lang/Program.h"
#include "synth/Grammar.h"

#include <z3++.h>

#include <optional>
#include <string>

namespace se2gis {

class FixedpointSolver;

/// Size knobs of one encoding attempt (the channel escalates them).
struct ChcOptions {
  /// Bounded terms of θ to instantiate.
  unsigned MaxTerms = 4;
  /// Evaluation points (distinct argument tuples) per unknown.
  unsigned MaxPointsPerUnknown = 24;
  /// Concrete assignments tried per equation.
  unsigned MaxInstantiationsPerEqn = 48;
  /// Total instantiated equation constraints.
  unsigned MaxConstraints = 512;
};

/// What one encoding attempt produced.
struct ChcSystem {
  /// False when the problem is outside the encodable fragment; \c Reason
  /// says why and nothing was asserted conclusively.
  bool Encodable = false;
  std::string Reason;
  /// Bounded terms whose equations were instantiated.
  size_t NumTerms = 0;
  /// Instantiated equation constraints in the `realizable` rule body.
  size_t NumEquations = 0;
  /// Evaluation points summed over the unknowns.
  size_t NumPoints = 0;
  /// Horn clauses asserted (facts + grammar rules + the realizable rule).
  size_t NumRules = 0;
};

/// Builds the clause system for one problem into a FixedpointSolver.
class ChcEncoder {
public:
  ChcEncoder(const Problem &P, const GrammarConfig &G,
             const ChcOptions &Opts = {});

  /// Encodes into \p FP. On success (\c Encodable) the goal atom is
  /// available via \c goal().
  ChcSystem encode(FixedpointSolver &FP);

  /// The 0-ary `chc_realizable` goal atom; valid after a successful
  /// encode().
  const z3::expr &goal() const { return *Goal; }

private:
  const Problem &P;
  GrammarConfig G;
  ChcOptions Opts;
  std::optional<z3::expr> Goal;
};

} // namespace se2gis

#endif // SE2GIS_CHC_CHCENCODER_H
