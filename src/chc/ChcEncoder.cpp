//===- ChcEncoder.cpp -----------------------------------------------------===//

#include "chc/ChcEncoder.h"

#include "chc/FixedpointSolver.h"
#include "core/RecursionElim.h"
#include "eval/Expand.h"
#include "eval/SymbolicEval.h"
#include "support/Diagnostics.h"
#include "support/PerfCounters.h"
#include "synth/Enumerator.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

using namespace se2gis;

namespace {

/// Flattens a scalar type into its Int/Bool leaves (tuples recursively).
/// \returns false when a datatype leaks through.
bool flattenType(const TypePtr &Ty, std::vector<TypePtr> &Out) {
  if (Ty->isInt() || Ty->isBool()) {
    Out.push_back(Ty);
    return true;
  }
  if (Ty->isTuple()) {
    for (const TypePtr &E : Ty->tupleElems())
      if (!flattenType(E, Out))
        return false;
    return true;
  }
  return false;
}

/// Flattens a scalar value into its Int/Bool leaves.
bool flattenValue(const ValuePtr &V, std::vector<ValuePtr> &Out) {
  if (V->isInt() || V->isBool()) {
    Out.push_back(V);
    return true;
  }
  if (V->isTuple()) {
    for (const ValuePtr &E : V->getElems())
      if (!flattenValue(E, Out))
        return false;
    return true;
  }
  return false;
}

/// True when every node of \p T is one evalScalarTerm can reduce (plus
/// Unknown applications when \p AllowUnknowns): anything else — stuck
/// calls, constructors, holes — must make the encoder skip, because the
/// evaluator treats them as internal errors.
bool isScalarFragment(const TermPtr &T, bool AllowUnknowns) {
  bool Ok = true;
  visitTerm(T, [&](const TermPtr &N) {
    switch (N->getKind()) {
    case TermKind::Var:
    case TermKind::IntLit:
    case TermKind::BoolLit:
    case TermKind::Op:
    case TermKind::Tuple:
    case TermKind::Proj:
      return true;
    case TermKind::Unknown:
      if (AllowUnknowns)
        return true;
      Ok = false;
      return false;
    default:
      Ok = false;
      return false;
    }
  });
  return Ok;
}

/// One unknown's relation state during encoding.
struct UnknownEnc {
  const UnknownSig *Sig = nullptr;
  bool BoolRet = false;
  /// Flattened scalar slot types of the argument list.
  std::vector<TypePtr> ArgSlotTys;
  /// Evaluation points: flattened scalar argument values, deduped.
  std::vector<std::vector<ValuePtr>> Points;
  /// One output variable per point (the candidate term's value there).
  std::vector<z3::expr> OutVars;
  std::optional<z3::func_decl> IntRel;
  std::optional<z3::func_decl> BoolRel;
};

} // namespace

ChcEncoder::ChcEncoder(const Problem &P, const GrammarConfig &G,
                       const ChcOptions &Opts)
    : P(P), G(G), Opts(Opts) {}

ChcSystem ChcEncoder::encode(FixedpointSolver &FP) {
  ChcSystem Sys;
  z3::context &Ctx = FP.ctx();
  try {
    // --- 0. Unknown signatures must flatten to scalar slots with a
    // single Int/Bool return.
    std::vector<UnknownEnc> Unknowns;
    std::map<std::string, size_t> UnknownIndex;
    for (const UnknownSig &Sig : P.Unknowns) {
      UnknownEnc U;
      U.Sig = &Sig;
      if (!Sig.RetTy->isInt() && !Sig.RetTy->isBool()) {
        Sys.Reason = "unknown '" + Sig.Name + "' returns a non-base type";
        perfAdd(PerfCounter::ChcSkippedNonscalar);
        return Sys;
      }
      U.BoolRet = Sig.RetTy->isBool();
      for (const TypePtr &AT : Sig.ArgTypes)
        if (!flattenType(AT, U.ArgSlotTys)) {
          Sys.Reason =
              "unknown '" + Sig.Name + "' takes a datatype argument";
          perfAdd(PerfCounter::ChcSkippedNonscalar);
          return Sys;
        }
      UnknownIndex[Sig.Name] = Unknowns.size();
      Unknowns.push_back(std::move(U));
    }
    if (Unknowns.empty()) {
      Sys.Reason = "problem has no unknowns";
      return Sys;
    }

    // --- 1. Build guarded equations from fully bounded terms. Only fully
    // bounded shapes are sound here: with elimination variables in play an
    // instantiated constraint could pick α values no real input produces
    // (the spuriousness the witness checker guards against), so equations
    // with a non-empty α map are skipped.
    RecursionEliminator Elim(P);
    SymbolicEvaluator SE(*P.Prog);
    BoundedTermStream Stream(P.Theta);
    struct RawEqn {
      TermPtr Guard, Lhs, Rhs;
    };
    std::vector<RawEqn> Eqns;
    for (unsigned I = 0; I < Opts.MaxTerms; ++I) {
      TermPtr Shape = Stream.next();
      if (!Shape)
        break; // finite datatype: every input already has an equation
      EquationParts Parts;
      TermPtr Guard;
      try {
        Parts = Elim.eliminate(Shape);
        Guard = P.Invariant.empty()
                    ? mkTrue()
                    : SE.eval(mkCall(P.Invariant, Type::boolTy(), {Shape}));
      } catch (const UserError &) {
        perfAdd(PerfCounter::ChcSkippedEquations);
        continue; // evaluation fuel exhausted for this shape
      }
      if (!Parts.Canonical || !Parts.Alpha.empty()) {
        perfAdd(PerfCounter::ChcSkippedEquations);
        continue;
      }
      if (Guard->getKind() == TermKind::BoolLit && !Guard->getBoolValue())
        continue; // impossible shape (not a coverage gap: no real input)
      if (!isScalarFragment(Guard, /*AllowUnknowns=*/false) ||
          !isScalarFragment(Parts.Rhs, /*AllowUnknowns=*/false) ||
          !isScalarFragment(Parts.Lhs, /*AllowUnknowns=*/true)) {
        perfAdd(PerfCounter::ChcSkippedEquations);
        continue;
      }
      Eqns.push_back(RawEqn{Guard, Parts.Lhs, Parts.Rhs});
      ++Sys.NumTerms;
    }
    if (Eqns.empty()) {
      Sys.Reason = "no bounded equation is inside the encodable fragment";
      return Sys;
    }

    // --- 2. Instantiate the equations at small scalar assignments.
    std::vector<long long> IntDomain{0, 1, -1, 2};
    for (long long C : G.Constants)
      if (std::find(IntDomain.begin(), IntDomain.end(), C) ==
          IntDomain.end())
        IntDomain.push_back(C);
    if (IntDomain.size() > 6)
      IntDomain.resize(6);

    // Partial evaluator: a term containing unknowns, under a concrete
    // environment, becomes a Z3 expression over per-point output
    // variables. nullopt = not expressible; the instantiation is dropped
    // (sound: dropping constraints only weakens the system).
    std::function<std::optional<z3::expr>(const TermPtr &, const Env &)>
        PE = [&](const TermPtr &T,
                 const Env &E) -> std::optional<z3::expr> {
      if (!containsUnknown(T)) {
        ValuePtr V;
        try {
          V = evalScalarTerm(T, E);
        } catch (const UserError &) {
          return std::nullopt;
        }
        if (V->isInt())
          return Ctx.int_val(static_cast<std::int64_t>(V->getInt()));
        if (V->isBool())
          return Ctx.bool_val(V->getBool());
        return std::nullopt; // tuple value in a scalar position
      }
      switch (T->getKind()) {
      case TermKind::Unknown: {
        auto It = UnknownIndex.find(T->getCallee());
        if (It == UnknownIndex.end())
          return std::nullopt;
        UnknownEnc &U = Unknowns[It->second];
        std::vector<ValuePtr> Flat;
        for (const TermPtr &A : T->getArgs()) {
          if (containsUnknown(A))
            return std::nullopt; // nested unknowns: outside the fragment
          ValuePtr AV;
          try {
            AV = evalScalarTerm(A, E);
          } catch (const UserError &) {
            return std::nullopt;
          }
          if (!flattenValue(AV, Flat))
            return std::nullopt;
        }
        if (Flat.size() != U.ArgSlotTys.size())
          return std::nullopt;
        for (size_t J = 0; J < U.Points.size(); ++J) {
          bool Same = true;
          for (size_t K = 0; K < Flat.size() && Same; ++K)
            Same = valueEquals(U.Points[J][K], Flat[K]);
          if (Same)
            return U.OutVars[J]; // functional consistency: shared column
        }
        if (U.Points.size() >= Opts.MaxPointsPerUnknown)
          return std::nullopt;
        std::string Name = "chc_o_" + U.Sig->Name + "_" +
                           std::to_string(U.Points.size());
        z3::expr O = Ctx.constant(
            Name.c_str(), U.BoolRet ? Ctx.bool_sort() : Ctx.int_sort());
        U.Points.push_back(std::move(Flat));
        U.OutVars.push_back(O);
        return O;
      }
      case TermKind::Op: {
        std::vector<z3::expr> Cs;
        for (const TermPtr &A : T->getArgs()) {
          auto CA = PE(A, E);
          if (!CA)
            return std::nullopt;
          Cs.push_back(*CA);
        }
        switch (T->getOp()) {
        case OpKind::Add: {
          z3::expr R = Cs[0];
          for (size_t I = 1; I < Cs.size(); ++I)
            R = R + Cs[I];
          return R;
        }
        case OpKind::Sub:
          return Cs[0] - Cs[1];
        case OpKind::Neg:
          return -Cs[0];
        case OpKind::Mul: {
          z3::expr R = Cs[0];
          for (size_t I = 1; I < Cs.size(); ++I)
            R = R * Cs[I];
          return R;
        }
        case OpKind::Div:
          return Cs[0] / Cs[1];
        case OpKind::Mod:
          return z3::mod(Cs[0], Cs[1]);
        case OpKind::Min:
          return z3::ite(Cs[0] < Cs[1], Cs[0], Cs[1]);
        case OpKind::Max:
          return z3::ite(Cs[0] < Cs[1], Cs[1], Cs[0]);
        case OpKind::Abs:
          return z3::ite(Cs[0] < 0, -Cs[0], Cs[0]);
        case OpKind::Lt:
          return Cs[0] < Cs[1];
        case OpKind::Le:
          return Cs[0] <= Cs[1];
        case OpKind::Gt:
          return Cs[0] > Cs[1];
        case OpKind::Ge:
          return Cs[0] >= Cs[1];
        case OpKind::Eq:
          return Cs[0] == Cs[1];
        case OpKind::Ne:
          return Cs[0] != Cs[1];
        case OpKind::Not:
          return !Cs[0];
        case OpKind::And: {
          z3::expr R = Cs[0];
          for (size_t I = 1; I < Cs.size(); ++I)
            R = R && Cs[I];
          return R;
        }
        case OpKind::Or: {
          z3::expr R = Cs[0];
          for (size_t I = 1; I < Cs.size(); ++I)
            R = R || Cs[I];
          return R;
        }
        case OpKind::Implies:
          return z3::implies(Cs[0], Cs[1]);
        case OpKind::Ite:
          return z3::ite(Cs[0], Cs[1], Cs[2]);
        }
        return std::nullopt;
      }
      default:
        // Tuple/Proj entangled with unknowns: outside the fragment.
        return std::nullopt;
      }
    };

    // Equates (a component of) the instantiated lhs with the evaluated
    // rhs, descending through tuple structure. A concrete-vs-concrete
    // mismatch appends `false` — the specification itself is violated at
    // this input, so `realizable` must not be derivable through this rule.
    std::function<bool(const TermPtr &, const ValuePtr &, const Env &,
                       std::vector<z3::expr> &)>
        EquateSides = [&](const TermPtr &L, const ValuePtr &R, const Env &E,
                          std::vector<z3::expr> &Out) -> bool {
      if (!containsUnknown(L)) {
        ValuePtr LV;
        try {
          LV = evalScalarTerm(L, E);
        } catch (const UserError &) {
          return false;
        }
        if (!valueEquals(LV, R))
          Out.push_back(Ctx.bool_val(false));
        return true;
      }
      if (L->getKind() == TermKind::Tuple) {
        if (!R->isTuple() || R->getElems().size() != L->numArgs())
          return false;
        for (size_t I = 0; I < L->numArgs(); ++I)
          if (!EquateSides(L->getArg(I), R->getElems()[I], E, Out))
            return false;
        return true;
      }
      auto LE = PE(L, E);
      if (!LE)
        return false;
      if (R->isInt())
        Out.push_back(*LE == Ctx.int_val(static_cast<std::int64_t>(R->getInt())));
      else if (R->isBool())
        Out.push_back(*LE == Ctx.bool_val(R->getBool()));
      else
        return false;
      return true;
    };

    std::vector<z3::expr> Constraints;
    for (const RawEqn &Eq : Eqns) {
      if (Constraints.size() >= Opts.MaxConstraints)
        break;
      // Free variables (ctor fields + the equation's extras), first
      // occurrence across guard, lhs, rhs.
      std::vector<VarPtr> Vars;
      {
        std::set<unsigned> Seen;
        for (const TermPtr &Side : {Eq.Guard, Eq.Lhs, Eq.Rhs})
          for (const VarPtr &V : freeVars(Side))
            if (Seen.insert(V->Id).second)
              Vars.push_back(V);
      }
      // Flatten the variables into scalar slots (tuple-typed variables
      // contribute one slot per leaf).
      struct Slot {
        size_t VarIdx;
        bool IsBool;
      };
      std::vector<Slot> Slots;
      std::vector<std::vector<TypePtr>> VarSlotTys(Vars.size());
      bool Ok = true;
      for (size_t VI = 0; VI < Vars.size() && Ok; ++VI) {
        Ok = flattenType(Vars[VI]->Ty, VarSlotTys[VI]);
        for (size_t S = Slots.size(), N = 0; N < VarSlotTys[VI].size();
             ++N, ++S)
          Slots.push_back(Slot{VI, VarSlotTys[VI][N]->isBool()});
      }
      if (!Ok) {
        perfAdd(PerfCounter::ChcSkippedEquations);
        continue; // datatype-typed free variable: skip the equation
      }

      // Mixed-radix enumeration of slot assignments, capped.
      std::vector<size_t> Digits(Slots.size(), 0);
      auto Radix = [&](size_t S) {
        return Slots[S].IsBool ? size_t(2) : IntDomain.size();
      };
      for (unsigned Iter = 0; Iter < Opts.MaxInstantiationsPerEqn; ++Iter) {
        // Build the environment for this assignment.
        Env E;
        {
          size_t S = 0;
          for (size_t VI = 0; VI < Vars.size(); ++VI) {
            std::vector<ValuePtr> Flat;
            for (size_t N = 0; N < VarSlotTys[VI].size(); ++N, ++S)
              Flat.push_back(Slots[S].IsBool
                                 ? Value::mkBool(Digits[S] == 1)
                                 : Value::mkInt(IntDomain[Digits[S]]));
            size_t Pos = 0;
            std::function<ValuePtr(const TypePtr &)> Build =
                [&](const TypePtr &Ty) -> ValuePtr {
              if (Ty->isTuple()) {
                std::vector<ValuePtr> Elems;
                for (const TypePtr &El : Ty->tupleElems())
                  Elems.push_back(Build(El));
                return Value::mkTuple(std::move(Elems));
              }
              return Flat[Pos++];
            };
            E[Vars[VI]->Id] = Build(Vars[VI]->Ty);
          }
        }

        bool Advance = true;
        do { // single pass; `break` = skip this instantiation
          ValuePtr GV;
          try {
            GV = evalScalarTerm(Eq.Guard, E);
          } catch (const UserError &) {
            break;
          }
          if (!GV->isBool() || !GV->getBool())
            break; // guard is false here: the equation does not apply
          ValuePtr RV;
          try {
            RV = evalScalarTerm(Eq.Rhs, E);
          } catch (const UserError &) {
            break;
          }
          std::vector<z3::expr> Out;
          if (!EquateSides(Eq.Lhs, RV, E, Out))
            break;
          for (z3::expr &C : Out)
            Constraints.push_back(std::move(C));
          if (!Out.empty())
            ++Sys.NumEquations;
        } while (false);

        if (Constraints.size() >= Opts.MaxConstraints)
          break;
        // Advance the mixed-radix counter; wrapping means all assignments
        // are done.
        if (Digits.empty())
          break;
        size_t K = 0;
        while (K < Digits.size()) {
          if (++Digits[K] < Radix(K))
            break;
          Digits[K++] = 0;
        }
        if (K == Digits.size())
          Advance = false;
        if (!Advance)
          break;
      }
    }

    // --- 3. Grammar rules: per unknown with at least one point, the
    // relations over value columns achievable by grammar terms.
    for (UnknownEnc &U : Unknowns) {
      const size_t Mp = U.Points.size();
      if (!Mp)
        continue;
      Sys.NumPoints += Mp;
      z3::sort_vector IntSig(Ctx), BoolSig(Ctx);
      for (size_t J = 0; J < Mp; ++J) {
        IntSig.push_back(Ctx.int_sort());
        BoolSig.push_back(Ctx.bool_sort());
      }
      std::string N = U.Sig->Name;
      U.IntRel = Ctx.function(("chc_int_" + N).c_str(), IntSig,
                              Ctx.bool_sort());
      U.BoolRel = Ctx.function(("chc_bool_" + N).c_str(), BoolSig,
                               Ctx.bool_sort());
      FP.registerRelation(*U.IntRel);
      FP.registerRelation(*U.BoolRel);

      auto Apply = [&](const z3::func_decl &D,
                       const std::vector<z3::expr> &Vs) {
        z3::expr_vector Args(Ctx);
        for (const z3::expr &V : Vs)
          Args.push_back(V);
        return D(Args);
      };
      auto MkVec = [&](const char *Prefix, bool Bool) {
        std::vector<z3::expr> Vs;
        for (size_t J = 0; J < Mp; ++J)
          Vs.push_back(Ctx.constant(
              (std::string(Prefix) + std::to_string(J)).c_str(),
              Bool ? Ctx.bool_sort() : Ctx.int_sort()));
        return Vs;
      };
      auto Bind = [&](std::initializer_list<
                      const std::vector<z3::expr> *>
                          Groups) {
        z3::expr_vector B(Ctx);
        for (const auto *Gp : Groups)
          for (const z3::expr &V : *Gp)
            B.push_back(V);
        return B;
      };

      // Facts: the argument columns (candidate term = the k-th parameter).
      for (size_t K = 0; K < U.ArgSlotTys.size(); ++K) {
        bool IsBool = U.ArgSlotTys[K]->isBool();
        std::vector<z3::expr> Col;
        for (size_t J = 0; J < Mp; ++J) {
          const ValuePtr &V = U.Points[J][K];
          Col.push_back(IsBool ? Ctx.bool_val(V->getBool())
                               : Ctx.int_val(static_cast<std::int64_t>(V->getInt())));
        }
        FP.addFact(Apply(IsBool ? *U.BoolRel : *U.IntRel, Col), "arg");
      }
      // Every integer constant at once: a constant term's column is the
      // same value at every point. Strictly covers any constant pool.
      {
        z3::expr K = Ctx.int_const("chc_k");
        std::vector<z3::expr> Col(Mp, K);
        std::vector<z3::expr> B{K};
        FP.addRule(Bind({&B}), Ctx.bool_val(true), Apply(*U.IntRel, Col),
                   "const_int");
      }
      for (bool BV : {false, true}) {
        std::vector<z3::expr> Col(Mp, Ctx.bool_val(BV));
        FP.addFact(Apply(*U.BoolRel, Col), "const_bool");
      }

      auto Map = [&](const std::vector<z3::expr> &Vs,
                     const std::function<z3::expr(const z3::expr &)> &F) {
        std::vector<z3::expr> Out;
        for (const z3::expr &V : Vs)
          Out.push_back(F(V));
        return Out;
      };
      auto Zip = [&](const std::vector<z3::expr> &As,
                     const std::vector<z3::expr> &Bs,
                     const std::function<z3::expr(const z3::expr &,
                                                  const z3::expr &)> &F) {
        std::vector<z3::expr> Out;
        for (size_t J = 0; J < As.size(); ++J)
          Out.push_back(F(As[J], Bs[J]));
        return Out;
      };

      auto Unary = [&](const char *Name, const z3::func_decl &In,
                       const z3::func_decl &Res,
                       const std::function<z3::expr(const z3::expr &)> &F) {
        auto A = MkVec("chc_a", &In == &*U.BoolRel);
        FP.addRule(Bind({&A}), Apply(In, A), Apply(Res, Map(A, F)), Name);
      };
      auto Binary = [&](const char *Name, const z3::func_decl &In,
                        const z3::func_decl &Res,
                        const std::function<z3::expr(const z3::expr &,
                                                     const z3::expr &)>
                            &F) {
        bool InBool = &In == &*U.BoolRel;
        auto A = MkVec("chc_a", InBool);
        auto B = MkVec("chc_b", InBool);
        FP.addRule(Bind({&A, &B}), Apply(In, A) && Apply(In, B),
                   Apply(Res, Zip(A, B, F)), Name);
      };
      auto IteRule = [&](const char *Name, const z3::func_decl &Branch) {
        bool BrBool = &Branch == &*U.BoolRel;
        auto C = MkVec("chc_c", true);
        auto A = MkVec("chc_a", BrBool);
        auto B = MkVec("chc_b", BrBool);
        std::vector<z3::expr> H;
        for (size_t J = 0; J < Mp; ++J)
          H.push_back(z3::ite(C[J], A[J], B[J]));
        FP.addRule(Bind({&C, &A, &B}),
                   Apply(*U.BoolRel, C) && Apply(Branch, A) &&
                       Apply(Branch, B),
                   Apply(Branch, H), Name);
      };

      const z3::func_decl &IR = *U.IntRel;
      const z3::func_decl &BR = *U.BoolRel;
      Unary("neg", IR, IR, [](const z3::expr &A) { return -A; });
      Binary("add", IR, IR,
             [](const z3::expr &A, const z3::expr &B) { return A + B; });
      Binary("sub", IR, IR,
             [](const z3::expr &A, const z3::expr &B) { return A - B; });
      if (G.AllowMinMax) {
        Binary("min", IR, IR, [](const z3::expr &A, const z3::expr &B) {
          return z3::ite(A < B, A, B);
        });
        Binary("max", IR, IR, [](const z3::expr &A, const z3::expr &B) {
          return z3::ite(A < B, B, A);
        });
      }
      if (G.AllowMul)
        Binary("mul", IR, IR,
               [](const z3::expr &A, const z3::expr &B) { return A * B; });
      if (G.AllowDiv)
        Binary("div", IR, IR,
               [](const z3::expr &A, const z3::expr &B) { return A / B; });
      if (G.AllowMod)
        Binary("mod", IR, IR, [](const z3::expr &A, const z3::expr &B) {
          return z3::mod(A, B);
        });
      if (G.AllowAbs)
        Unary("abs", IR, IR, [](const z3::expr &A) {
          return z3::ite(A < 0, -A, A);
        });
      if (G.AllowIte)
        IteRule("ite_int", IR);
      // Comparisons feed the boolean relation (ite conditions and boolean
      // unknowns).
      Binary("lt", IR, BR,
             [](const z3::expr &A, const z3::expr &B) { return A < B; });
      Binary("le", IR, BR,
             [](const z3::expr &A, const z3::expr &B) { return A <= B; });
      Binary("eq", IR, BR,
             [](const z3::expr &A, const z3::expr &B) { return A == B; });
      Binary("ne", IR, BR,
             [](const z3::expr &A, const z3::expr &B) { return A != B; });
      Unary("not", BR, BR, [](const z3::expr &A) { return !A; });
      Binary("and", BR, BR,
             [](const z3::expr &A, const z3::expr &B) { return A && B; });
      Binary("or", BR, BR,
             [](const z3::expr &A, const z3::expr &B) { return A || B; });
      Binary("iff", BR, BR,
             [](const z3::expr &A, const z3::expr &B) { return A == B; });
      if (G.AllowIte)
        IteRule("ite_bool", BR);
    }

    // --- 4. The realizable rule: some grammar-achievable output columns
    // satisfy every instantiated constraint.
    z3::func_decl Realizable =
        Ctx.function("chc_realizable", z3::sort_vector(Ctx),
                     Ctx.bool_sort());
    FP.registerRelation(Realizable);
    z3::expr_vector GoalBound(Ctx);
    z3::expr Body = Ctx.bool_val(true);
    for (UnknownEnc &U : Unknowns) {
      if (U.Points.empty())
        continue;
      z3::expr_vector Col(Ctx);
      for (const z3::expr &O : U.OutVars) {
        Col.push_back(O);
        GoalBound.push_back(O);
      }
      Body = Body && (U.BoolRet ? *U.BoolRel : *U.IntRel)(Col);
    }
    for (const z3::expr &C : Constraints)
      Body = Body && C;
    FP.addRule(GoalBound, Body, Realizable(), "realizable");
    Goal = Realizable();

    Sys.NumRules = FP.numRules();
    Sys.Encodable = true;
    return Sys;
  } catch (const z3::exception &E) {
    Sys.Encodable = false;
    Sys.Reason = std::string("z3: ") + E.msg();
    return Sys;
  }
}
