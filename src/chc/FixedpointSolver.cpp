//===- FixedpointSolver.cpp -----------------------------------------------===//

#include "chc/FixedpointSolver.h"

#include "smt/Solver.h"
#include "support/PerfCounters.h"
#include "support/Stopwatch.h"

#include <atomic>
#include <chrono>
#include <thread>

using namespace se2gis;

FixedpointSolver::FixedpointSolver() : Fp(Ctx) {}

void FixedpointSolver::registerRelation(const z3::func_decl &D) {
  z3::func_decl Decl = D;
  Fp.register_relation(Decl);
}

void FixedpointSolver::insert(z3::expr Rule, const char *Name) {
  Fp.add_rule(Rule, Ctx.str_symbol(Name));
  RuleTexts.push_back(Rule.to_string());
}

void FixedpointSolver::addFact(const z3::expr &Head, const char *Name) {
  insert(Head, Name);
}

void FixedpointSolver::addRule(const z3::expr_vector &Bound,
                               const z3::expr &Body, const z3::expr &Head,
                               const char *Name) {
  z3::expr Rule = z3::implies(Body, Head);
  if (!Bound.empty())
    Rule = z3::forall(Bound, Rule);
  insert(std::move(Rule), Name);
}

FixedpointSolver::Result FixedpointSolver::query(const z3::expr &Goal,
                                                 int TimeoutMs,
                                                 const Deadline &Budget) {
  int Ms = Budget.queryBudgetMs(TimeoutMs);
  if (Ms <= 0)
    return Result::Unknown; // expired before the query even started

  try {
    z3::params P(Ctx);
    P.set("rlimit", smtRlimitForTimeoutMs(Ms));
    Fp.set(P);
  } catch (const z3::exception &) {
    // An engine build that rejects a generic rlimit still gets a budget:
    // the watchdog below enforces the wall-clock limit via interrupt.
  }

  // Watchdog: z3::fixedpoint has no poll point of its own, so a helper
  // thread watches the deadline/token and interrupts the engine. Interrupt
  // is a soft request — keep re-issuing it until the query returns.
  std::atomic<bool> QueryDone{false};
  Stopwatch Watch;
  std::thread Guard([&] {
    while (!QueryDone.load(std::memory_order_acquire)) {
      if (Budget.expired() || Watch.elapsedMs() > static_cast<double>(Ms))
        Ctx.interrupt();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  Result Out = Result::Unknown;
  try {
    PerfTimerScope Z3Timer(PerfTimer::Z3SolveNs);
    z3::expr G = Goal;
    switch (Fp.query(G)) {
    case z3::sat:
      Out = Result::Derivable;
      break;
    case z3::unsat:
      Out = Result::Underivable;
      break;
    case z3::unknown:
      Out = Result::Unknown;
      break;
    }
  } catch (const z3::exception &) {
    Out = Result::Unknown; // interrupted (or an engine error): inconclusive
  }
  QueryDone.store(true, std::memory_order_release);
  Guard.join();
  return Out;
}
