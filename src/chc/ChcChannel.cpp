//===- ChcChannel.cpp -----------------------------------------------------===//

#include "chc/ChcChannel.h"

#include "chc/ChcEncoder.h"
#include "chc/FixedpointSolver.h"
#include "support/Progress.h"
#include "support/Stopwatch.h"
#include "support/Trace.h"
#include "synth/Grammar.h"

#include <sstream>

using namespace se2gis;

Outcome se2gis::runChcChannel(const Problem &P, const AlgoOptions &Opts) {
  Stopwatch Timer;
  Deadline Budget = Deadline::afterMs(Opts.TimeoutMs);
  Budget.setToken(Opts.Token);
  CounterSnapshot Before = snapshotCounters();
  PerfSnapshot PerfBefore = snapshotPerf();
  PhaseSnapshot PhaseBefore = phaseSnapshot();
  Outcome Result;

  GrammarConfig Grammar = inferGrammar(P);

  // Escalation ladder: a small instantiation first (cheap, and already
  // enough for conflicts between a handful of bounded terms), then a
  // larger one. Each rung is an independent encoding + query.
  static const unsigned TermLadder[] = {4, 8};
  for (unsigned Rung = 0; Rung < 2; ++Rung) {
    if (Budget.expired()) {
      Result.V = Verdict::Timeout;
      break;
    }

    ChcOptions CO;
    CO.MaxTerms = TermLadder[Rung];
    CO.MaxInstantiationsPerEqn = 48 * (Rung + 1);

    progressPublish([&](ProgressSnapshot &Pr) {
      progressSetStr(Pr.ChcState, "encoding");
      Pr.ChcRung = TermLadder[Rung];
      Pr.UpdatedNs = detail::traceNowNs();
    });

    FixedpointSolver FP;
    ChcEncoder Enc(P, Grammar, CO);
    ChcSystem Sys = Enc.encode(FP);
    if (!Sys.Encodable) {
      Result.V = Verdict::Failed;
      Result.Detail = "CHC: not encodable (" + Sys.Reason + ")";
      break;
    }
    perfAdd(PerfCounter::ChcClauses,
            static_cast<std::uint64_t>(Sys.NumRules));

    TraceSpan Span("chc.query", "chc");
    if (Span.active()) {
      Span.arg("terms", static_cast<std::int64_t>(Sys.NumTerms));
      Span.arg("rules", static_cast<std::int64_t>(Sys.NumRules));
      Span.arg("points", static_cast<std::int64_t>(Sys.NumPoints));
      Span.arg("constraints", static_cast<std::int64_t>(Sys.NumEquations));
    }
    perfAdd(PerfCounter::ChcQueries);
    progressPublish([&](ProgressSnapshot &Pr) {
      progressSetStr(Pr.ChcState, "solving");
      Pr.ChcClauses = static_cast<std::uint64_t>(Sys.NumRules);
      Pr.UpdatedNs = detail::traceNowNs();
    });
    FixedpointSolver::Result QR =
        FP.query(Enc.goal(), Budget.queryBudgetMs(0), Budget);

    if (QR == FixedpointSolver::Result::Underivable) {
      perfAdd(PerfCounter::ChcUnsat);
      if (Span.active())
        Span.arg("result", "unsat");
      progressPublish([&](ProgressSnapshot &Pr) {
        progressSetStr(Pr.ChcState, "unsat");
        Pr.UpdatedNs = detail::traceNowNs();
      });
      Result.V = Verdict::Unrealizable;
      Result.Ev.Source = VerdictSource::Chc;
      Result.Ev.Channel = "CHC";
      Result.Ev.ChcClauses = static_cast<std::uint64_t>(Sys.NumRules);
      std::ostringstream OS;
      OS << "CHC: `realizable` underivable over " << Sys.NumRules
         << " Horn clauses (" << Sys.NumTerms << " bounded terms, "
         << Sys.NumPoints << " points, " << Sys.NumEquations
         << " instantiated constraints)";
      Result.Detail = OS.str();
      break;
    }
    if (QR == FixedpointSolver::Result::Derivable) {
      perfAdd(PerfCounter::ChcDerivable);
      if (Span.active())
        Span.arg("result", "sat");
      progressPublish([&](ProgressSnapshot &Pr) {
        progressSetStr(Pr.ChcState, "inconclusive");
        Pr.UpdatedNs = detail::traceNowNs();
      });
      // Derivable is inconclusive (the instantiation is an
      // underapproximation of the spec); try the next rung.
      Result.V = Verdict::Failed;
      Result.Detail = "CHC: `realizable` derivable (inconclusive)";
      continue;
    }
    perfAdd(PerfCounter::ChcUnknown);
    if (Span.active())
      Span.arg("result", "unknown");
    Result.V = Budget.expired() ? Verdict::Timeout : Verdict::Failed;
    if (Result.V == Verdict::Failed)
      Result.Detail = "CHC: fixedpoint engine gave up";
    break;
  }

  if (Result.V == Verdict::Failed && Budget.expired())
    Result.V = Verdict::Timeout;
  Result.Stats.ElapsedMs = Timer.elapsedMs();
  Result.Stats.Counters = snapshotCounters().since(Before);
  Result.Stats.Perf = snapshotPerf().since(PerfBefore);
  Result.Stats.Phases = phaseSnapshot().since(PhaseBefore);
  return Result;
}
