//===- FixedpointSolver.h - z3::fixedpoint under repo budgets ---*- C++-*-===//
///
/// \file
/// A thin wrapper around Z3's Horn-clause engine (z3::fixedpoint / Spacer)
/// that plays by the repo's budget rules: queries get a deterministic
/// resource limit derived from the same per-millisecond mapping as
/// SmtQuery (smtRlimitForTimeoutMs), plus a watchdog thread that polls the
/// Deadline/CancellationToken and interrupts the engine mid-query — Z3's
/// rlimit cannot observe wall-clock cancellation, so cooperative
/// cancellation needs the interrupt path.
///
/// The wrapper also records a printable dump of every rule it asserts,
/// which is what the encoder golden tests inspect.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CHC_FIXEDPOINTSOLVER_H
#define SE2GIS_CHC_FIXEDPOINTSOLVER_H

#include "support/Cancellation.h"

#include <z3++.h>

#include <string>
#include <vector>

namespace se2gis {

class FixedpointSolver {
public:
  /// Outcome of a reachability query on the `realizable` relation.
  enum class Result : unsigned char {
    /// The goal is derivable from the rules (query sat): some grammar
    /// assignment satisfies the instantiated constraints — inconclusive
    /// for unrealizability.
    Derivable,
    /// The goal is underivable (query unsat): no grammar assignment can
    /// satisfy the constraints — the problem is unrealizable.
    Underivable,
    /// Budget expired, the engine was interrupted, or it gave up.
    Unknown
  };

  FixedpointSolver();

  z3::context &ctx() { return Ctx; }

  /// Declares \p D as an uninterpreted relation of the clause system.
  void registerRelation(const z3::func_decl &D);

  /// Asserts the ground fact `Head.`.
  void addFact(const z3::expr &Head, const char *Name);

  /// Asserts `∀ Bound. Body → Head` (no quantifier when \p Bound is empty).
  void addRule(const z3::expr_vector &Bound, const z3::expr &Body,
               const z3::expr &Head, const char *Name);

  /// Runs the reachability query for \p Goal. \p TimeoutMs maps onto the
  /// engine's resource limit exactly like SmtQuery's per-query budget; the
  /// \p Budget deadline (and its cancellation token) is enforced by a
  /// watchdog that interrupts the engine. A zero/expired budget returns
  /// Unknown without entering Z3.
  Result query(const z3::expr &Goal, int TimeoutMs, const Deadline &Budget);

  size_t numRules() const { return RuleTexts.size(); }

  /// Printable forms of every asserted rule, in assertion order.
  const std::vector<std::string> &rules() const { return RuleTexts; }

private:
  void insert(z3::expr Rule, const char *Name);

  z3::context Ctx;
  z3::fixedpoint Fp;
  std::vector<std::string> RuleTexts;
};

} // namespace se2gis

#endif // SE2GIS_CHC_FIXEDPOINTSOLVER_H
