//===- Json.h - Minimal JSON value model for the service protocol -*-C++-*-===//
///
/// \file
/// The service protocol (Protocol.h) speaks JSON, and unlike the repo's
/// write-only perf/trace emitters the daemon must also *parse* untrusted
/// bytes from the socket. This is a deliberately small, strict JSON layer:
///
///  - \c JsonValue: null / bool / number / string / array / object, with
///    objects as ordered key/value vectors (protocol objects are tiny, so
///    lookup is a linear scan and serialization order is deterministic).
///  - \c JsonValue::parse: strict recursive-descent parsing with a depth
///    bound and UTF-8 validation of every string — malformed input of any
///    kind yields \c false plus a positioned diagnostic, never a crash,
///    an exception, or an out-of-bounds read (the protocol fuzz tests in
///    tests/ServiceTest.cpp feed it truncated and binary garbage).
///  - \c dump: canonical compact rendering (escaped control characters,
///    integers without a decimal point), valid UTF-8 by construction.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SERVICE_JSON_H
#define SE2GIS_SERVICE_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace se2gis {

class JsonValue {
public:
  enum class Kind : unsigned char { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool B) {
    JsonValue V;
    V.K = Kind::Bool;
    V.B = B;
    return V;
  }
  static JsonValue number(double D) {
    JsonValue V;
    V.K = Kind::Number;
    V.Num = D;
    V.Int = static_cast<std::int64_t>(D);
    V.IsInt = static_cast<double>(V.Int) == D;
    return V;
  }
  static JsonValue number(std::int64_t I) {
    JsonValue V;
    V.K = Kind::Number;
    V.Num = static_cast<double>(I);
    V.Int = I;
    V.IsInt = true;
    return V;
  }
  static JsonValue str(std::string S) {
    JsonValue V;
    V.K = Kind::String;
    V.Str = std::move(S);
    return V;
  }
  static JsonValue array() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }
  static JsonValue object() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  double asDouble() const { return Num; }
  std::int64_t asInt() const { return Int; }
  const std::string &asString() const { return Str; }
  const std::vector<JsonValue> &items() const { return Items; }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }

  /// Object lookup; nullptr when absent or this is not an object.
  const JsonValue *get(const std::string &Key) const;

  /// Typed convenience lookups with defaults (for optional protocol fields).
  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;
  std::int64_t getInt(const std::string &Key, std::int64_t Default = 0) const;
  double getNumber(const std::string &Key, double Default = 0) const;
  bool getBool(const std::string &Key, bool Default = false) const;

  /// Sets \p Key in an object (replacing an existing entry).
  JsonValue &set(const std::string &Key, JsonValue V);
  /// Appends to an array.
  JsonValue &push(JsonValue V);

  /// Compact canonical rendering.
  std::string dump() const;

  /// Strict parse of \p Text (the whole string must be one JSON value,
  /// ignoring surrounding whitespace). On failure returns false and puts a
  /// positioned message in \p Error. Strings must be valid UTF-8.
  static bool parse(const std::string &Text, JsonValue &Out,
                    std::string &Error);

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::int64_t Int = 0;
  bool IsInt = false;
  std::string Str;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Members;

  void dumpTo(std::string &Out) const;
};

/// Escapes \p S as the *contents* of a JSON string literal (no quotes).
/// Exposed for the few writers that build JSON textually.
std::string jsonEscape(const std::string &S);

/// \returns true when \p S is well-formed UTF-8 (the validation the parser
/// applies to every string literal; exposed for tests).
bool isValidUtf8(const std::string &S);

} // namespace se2gis

#endif // SE2GIS_SERVICE_JSON_H
