//===- JobQueue.h - Jobs, the bounded priority queue, admission -*- C++-*-===//
///
/// \file
/// The daemon's unit of work and its scheduling state. A \c Job is one
/// \c SynthesisTask (a named suite benchmark or an inline DSL source,
/// elaborated at submit time) plus lifecycle bookkeeping:
///
///     queued ──────> running ──────> done
///        │               │
///        └──> cancelled <┘   (cancel while queued is immediate; cancel
///                             while running rides the CancellationToken
///                             and lands when the run's next poll fires)
///
/// \c JobQueue is the FIFO-with-priority scheduler behind the worker pool:
/// higher \c Priority pops first, FIFO within a priority level (submission
/// sequence breaks ties, so equal-priority jobs are served in arrival
/// order). Admission control lives here too: the queue is *bounded*
/// (\c MaxQueued), and \c submit reports Overloaded/Draining outcomes the
/// server turns into typed protocol errors instead of letting clients
/// block behind an unbounded backlog.
///
/// The queue also owns the job table (id → job), which outlives execution
/// so status/result queries of finished jobs keep working until the daemon
/// exits. Every mutation is under one mutex; runs themselves happen
/// outside it.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SERVICE_JOBQUEUE_H
#define SE2GIS_SERVICE_JOBQUEUE_H

#include "core/SynthesisTask.h"
#include "support/Progress.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace se2gis {

/// Lifecycle states (DESIGN.md "Service model" has the transition diagram).
enum class JobState : unsigned char { Queued, Running, Done, Cancelled };

const char *jobStateName(JobState S);

/// What to run: a problem (already elaborated), the algorithm, the job's
/// own budget, and its scheduling priority.
struct JobSpec {
  /// Registry name for suite jobs, "" for inline-source jobs.
  std::string Benchmark;
  /// "inline" jobs keep the source's SHA-like label for reporting.
  std::string Label;
  std::shared_ptr<const Problem> Prob;
  AlgorithmKind Algorithm = AlgorithmKind::SE2GIS;
  std::int64_t TimeoutMs = 5000;
  int Priority = 0;
};

/// One submitted job. State transitions are made by JobQueue under its
/// lock; readers snapshot via JobQueue::query.
struct Job {
  std::string Id;
  JobSpec Spec;
  JobState State = JobState::Queued;
  /// Minted at submit; shared with the running task so cancel works at any
  /// point of the lifecycle.
  CancellationToken Token;
  /// Set once the job reaches Done (and for Cancelled-while-running, where
  /// it carries the partial outcome of the interrupted run).
  Outcome Result;
  bool CancelRequested = false;
  std::chrono::steady_clock::time_point SubmitAt, StartAt, EndAt;
  std::uint64_t Seq = 0; ///< FIFO tiebreak within a priority level
  /// Request id of the connection/request that submitted the job —
  /// threaded into worker logs, spans, and flight events for correlation.
  std::uint64_t Rid = 0;
  /// Live progress board: the worker publishes round-granularity snapshots
  /// here, `status`/`stats` read them lock-free. Allocated at submit so a
  /// query can never race an attach. Shared (not inline) because Job is
  /// copied by value in \c query while the worker keeps publishing.
  std::shared_ptr<ProgressBoard> Progress;
};

/// Why a submit was refused.
enum class AdmitStatus : unsigned char { Admitted, QueueFull, Draining };

/// Aggregate counters for the stats response and the metrics exposition.
struct QueueStats {
  std::size_t QueueDepth = 0;
  std::size_t InFlight = 0;
  std::uint64_t Submitted = 0;
  std::uint64_t Completed = 0;
  std::uint64_t Cancelled = 0;
  std::uint64_t Rejected = 0;
  /// Done jobs by verdict (indexed by Verdict; sums to Completed). Feeds
  /// the `se2gis_jobs_done_total{verdict=...}` counter family.
  std::uint64_t DoneByVerdict[4] = {};
  bool Draining = false;
};

class JobQueue {
public:
  explicit JobQueue(std::size_t MaxQueued) : MaxQueued(MaxQueued) {}

  /// Admits \p Spec (unless full or draining). On admission returns the new
  /// job id through \p IdOut. \p Rid is the submitting request's id,
  /// carried on the job for cross-layer correlation.
  AdmitStatus submit(JobSpec Spec, std::string &IdOut, std::uint64_t Rid = 0);

  /// Blocks until a job is available, then marks it Running and returns it.
  /// Returns nullptr when the queue was shut down and no work remains —
  /// the worker's signal to exit.
  std::shared_ptr<Job> pop();

  /// Records \p Result for \p J and moves it to its terminal state: Done,
  /// or Cancelled when cancellation had been requested (the job-level
  /// cancel, not a mere deadline expiry inside the run).
  void complete(const std::shared_ptr<Job> &J, Outcome Result);

  /// Cancels a job in any state. Queued jobs terminalize immediately;
  /// running jobs get their token cancelled and terminalize when the worker
  /// calls \c complete. \returns false when \p Id is unknown.
  bool cancel(const std::string &Id);

  /// Snapshots one job (nullptr when unknown). The returned copy is
  /// consistent (taken under the lock).
  std::unique_ptr<Job> query(const std::string &Id) const;

  QueueStats stats() const;

  /// Snapshots every currently-running job (copies, taken under the lock)
  /// for the stats reply's live-introspection section.
  std::vector<std::unique_ptr<Job>> runningJobs() const;

  /// Counts a rejected submission (server-side admission bookkeeping).
  void countRejected();

  /// Stops admitting new jobs (submit → Draining from here on).
  void beginDrain();

  /// Blocks until no job is queued or running, or \p DeadlineMs elapsed
  /// (<= 0 = wait forever). \returns true when idle.
  bool waitIdle(std::int64_t DeadlineMs);

  /// Requests cancellation of everything still queued or running (used when
  /// the drain deadline fires).
  void cancelAll();

  /// Wakes every worker out of pop() for exit; implies beginDrain.
  void shutdown();

private:
  void removeFromPendingLocked(const std::string &Id);

  mutable std::mutex M;
  std::condition_variable WorkReady;
  std::condition_variable Idle;
  std::size_t MaxQueued;
  bool DrainingFlag = false;
  bool Stopping = false;
  std::uint64_t NextSeq = 1;
  std::uint64_t SubmittedCount = 0, CompletedCount = 0, CancelledCount = 0,
                RejectedCount = 0;
  std::uint64_t DoneByVerdictCount[4] = {};
  std::size_t RunningCount = 0;
  /// Pending ids in arrival order; pop() scans for the best priority (the
  /// queue is small by construction — MaxQueued — so a scan beats a heap
  /// plus lazy-deletion bookkeeping).
  std::deque<std::string> Pending;
  std::unordered_map<std::string, std::shared_ptr<Job>> Table;
};

} // namespace se2gis

#endif // SE2GIS_SERVICE_JOBQUEUE_H
