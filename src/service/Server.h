//===- Server.h - The synthesis daemon core ---------------------*- C++-*-===//
///
/// \file
/// The long-running multi-client synthesis service. One process hosts:
///
///  - an accept loop (own thread) on a Unix-domain or TCP socket,
///  - one connection thread per client speaking the framed JSON protocol
///    (Protocol.h) — requests on a connection are handled in order, while
///    distinct connections are fully concurrent,
///  - a bounded worker pool popping jobs off the \c JobQueue and running
///    them as ordinary \c SynthesisTask s under per-job deadlines mapped
///    onto the CancellationToken/Deadline machinery,
///  - the process-wide shared state every worker benefits from: the
///    sharded memoization caches (src/cache/) stay warm across jobs and
///    clients, and the perf/trace registries (src/support/) feed the
///    live `stats` response (queue depth, in-flight, cache hit rates,
///    latency quantiles).
///
/// Graceful drain (protocol `drain` request or SIGINT/SIGTERM): stop
/// admitting (typed `draining` rejections), let in-flight jobs finish
/// under the drain deadline — cancel whatever remains past it —, flush
/// the persistent cache store (fsync'd, see DiskStore::sync), stop the
/// accept loop, join everything, exit 0.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SERVICE_SERVER_H
#define SE2GIS_SERVICE_SERVER_H

#include "service/JobQueue.h"
#include "service/Protocol.h"
#include "support/Histogram.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace se2gis {

/// Daemon configuration (tools/se2gis_served.cpp builds one from flags +
/// SolverConfig::fromEnv).
struct ServiceConfig {
  /// Listen address ("unix:<path>" or "tcp:<host>:<port>"; tcp port 0
  /// binds an ephemeral port, reported by Server::addr after start).
  std::string Listen = "unix:./se2gis.sock";
  /// Worker threads. 0 = auto: max(1, hardware_concurrency / 2), leaving
  /// headroom for each job's inner parallelism (portfolio members run two
  /// algorithm threads per job — the oversubscription formula is in
  /// DESIGN.md "Service model").
  unsigned Workers = 0;
  /// Admission control: maximum queued (not yet running) jobs.
  std::size_t MaxQueue = 64;
  /// Per-job default budget when a submit carries no timeout_ms.
  std::int64_t DefaultTimeoutMs = 5000;
  /// Budget for in-flight work during a drain before it is cancelled.
  std::int64_t DrainTimeoutMs = 10000;
  /// Optional plain-HTTP metrics listener ("unix:<path>" or
  /// "tcp:<host>:<port>"; "" = off). Any GET returns the Prometheus text
  /// exposition, so a stock Prometheus can scrape the daemon directly —
  /// the same text the frame-protocol `metrics` method returns.
  std::string MetricsAddr;
  /// Directory for flight-recorder dumps ("" = no job dumps): a job that
  /// ends in Timeout or is cancelled while running writes
  /// `<dir>/flight-<jobid>.json`; fatal signals/fatalError write
  /// `<dir>/flight-fatal.<pid>.json`.
  std::string FlightDir;
  /// Base solver configuration every job runs under (cache mode/dir, log
  /// level, trace path); per-job fields (timeout, token) are overridden.
  SolverConfig Base;
};

class Server {
public:
  explicit Server(ServiceConfig Config);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the listen socket, starts workers and the accept loop.
  /// \returns false with a diagnostic on bind/parse failure.
  bool start(std::string &Error);

  /// Blocks until the server has fully drained and every thread joined.
  void run();

  /// Initiates a drain from outside the protocol (signal handlers write a
  /// byte to an internal pipe; this is the async-signal-safe entry).
  void requestDrainAsync();

  /// The bound address (with the real port for tcp:*:0). Valid after
  /// start().
  const ServiceAddr &addr() const { return BoundAddr; }

  /// The bound metrics address (valid after start() when configured).
  const ServiceAddr &metricsAddr() const { return MetricsBoundAddr; }

  unsigned workers() const { return WorkerCount; }

  /// Renders the full Prometheus exposition (process + service families).
  /// Public so tests can assert on the text without a socket.
  std::string renderMetrics();

private:
  void acceptLoop();
  void connectionLoop(int Fd);
  void metricsLoop();
  void workerLoop();
  void runJob(const std::shared_ptr<Job> &J);

  /// Performs the drain sequence once; concurrent callers block until the
  /// first finishes. \returns the final queue stats for the response.
  QueueStats drain();

  JsonValue handleRequest(const JsonValue &Req);
  JsonValue handleSubmit(const JsonValue &Req);
  JsonValue handleStatus(const JsonValue &Req, bool WithResult);
  JsonValue handleCancel(const JsonValue &Req);
  JsonValue handleStats();
  JsonValue handleDrain(const JsonValue &Req);
  JsonValue jobStateJson(const Job &J, bool WithResult) const;

  ServiceConfig Config;
  ServiceAddr BoundAddr;
  ServiceAddr MetricsBoundAddr;
  unsigned WorkerCount = 0;
  JobQueue Queue;
  /// Wall time queued→terminal, for the stats response's quantiles.
  LatencyHistogram JobLatency;
  /// Request ids, minted per framed request at admission and threaded into
  /// logs, spans, flight events, job state, and every response payload.
  std::atomic<std::uint64_t> NextRid{1};

  int ListenFd = -1;
  int MetricsFd = -1;
  int WakePipe[2] = {-1, -1};
  std::atomic<bool> Stop{false};
  std::atomic<bool> DrainStarted{false};

  std::thread AcceptThread;
  std::thread MetricsThread;
  std::vector<std::thread> WorkerThreads;

  std::mutex ConnMutex;
  std::vector<std::thread> ConnThreads;
  std::vector<int> ConnFds;

  std::mutex DrainMutex;
  std::condition_variable DrainCv;
  bool DrainDone = false;
  QueueStats DrainStats;
};

} // namespace se2gis

#endif // SE2GIS_SERVICE_SERVER_H
