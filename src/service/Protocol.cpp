//===- Protocol.cpp -------------------------------------------------------===//

#include "service/Protocol.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

using namespace se2gis;

const char *se2gis::frameStatusName(FrameStatus S) {
  switch (S) {
  case FrameStatus::Ok:
    return "ok";
  case FrameStatus::Eof:
    return "eof";
  case FrameStatus::Truncated:
    return "truncated";
  case FrameStatus::Oversized:
    return "oversized";
  case FrameStatus::IoError:
    return "io-error";
  }
  return "?";
}

const char *se2gis::errorCodeName(ErrorCode C) {
  switch (C) {
  case ErrorCode::ParseError:
    return "parse_error";
  case ErrorCode::BadRequest:
    return "bad_request";
  case ErrorCode::UnknownMethod:
    return "unknown_method";
  case ErrorCode::OversizedFrame:
    return "oversized_frame";
  case ErrorCode::NotFound:
    return "not_found";
  case ErrorCode::Overloaded:
    return "overloaded";
  case ErrorCode::Draining:
    return "draining";
  case ErrorCode::Internal:
    return "internal";
  }
  return "internal";
}

namespace {

/// Reads exactly \p N bytes. \returns N on success, 0 on immediate EOF,
/// -1 on EOF mid-read or error (errno preserved for the caller's triage;
/// 0-vs-(-1) distinguishes a clean hangup from a truncated message).
ssize_t readFull(int Fd, void *Buf, std::size_t N) {
  std::size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::read(Fd, static_cast<char *>(Buf) + Got, N - Got);
    if (R == 0)
      return Got == 0 ? 0 : -1;
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    Got += static_cast<std::size_t>(R);
  }
  return static_cast<ssize_t>(Got);
}

bool writeFull(int Fd, const void *Buf, std::size_t N) {
  std::size_t Sent = 0;
  while (Sent < N) {
    ssize_t W = ::write(Fd, static_cast<const char *>(Buf) + Sent, N - Sent);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<std::size_t>(W);
  }
  return true;
}

} // namespace

FrameStatus se2gis::readFrame(int Fd, std::string &Payload) {
  unsigned char Prefix[4];
  ssize_t R = readFull(Fd, Prefix, sizeof(Prefix));
  if (R == 0)
    return FrameStatus::Eof;
  if (R < 0)
    return FrameStatus::Truncated;
  std::uint32_t N = (static_cast<std::uint32_t>(Prefix[0]) << 24) |
                    (static_cast<std::uint32_t>(Prefix[1]) << 16) |
                    (static_cast<std::uint32_t>(Prefix[2]) << 8) |
                    static_cast<std::uint32_t>(Prefix[3]);
  if (N > kMaxFrameBytes)
    return FrameStatus::Oversized;
  Payload.resize(N);
  if (N && readFull(Fd, Payload.data(), N) != static_cast<ssize_t>(N))
    return FrameStatus::Truncated;
  return FrameStatus::Ok;
}

bool se2gis::writeFrame(int Fd, const std::string &Payload) {
  if (Payload.size() > kMaxFrameBytes)
    return false;
  std::uint32_t N = static_cast<std::uint32_t>(Payload.size());
  unsigned char Prefix[4] = {static_cast<unsigned char>(N >> 24),
                             static_cast<unsigned char>(N >> 16),
                             static_cast<unsigned char>(N >> 8),
                             static_cast<unsigned char>(N)};
  // One writev-style contiguous buffer keeps the frame a single syscall in
  // the common case (small messages), which also keeps concurrent writers
  // on *distinct* fds from interleaving at the kernel boundary.
  std::string Buf;
  Buf.reserve(4 + Payload.size());
  Buf.append(reinterpret_cast<const char *>(Prefix), 4);
  Buf.append(Payload);
  return writeFull(Fd, Buf.data(), Buf.size());
}

JsonValue se2gis::makeErrorResponse(ErrorCode Code,
                                    const std::string &Message) {
  JsonValue Err = JsonValue::object();
  Err.set("code", JsonValue::str(errorCodeName(Code)));
  Err.set("message", JsonValue::str(Message));
  JsonValue Resp = JsonValue::object();
  Resp.set("ok", JsonValue::boolean(false));
  Resp.set("error", std::move(Err));
  return Resp;
}

JsonValue se2gis::makeOkResponse() {
  JsonValue Resp = JsonValue::object();
  Resp.set("ok", JsonValue::boolean(true));
  return Resp;
}

//===----------------------------------------------------------------------===//
// Addresses and sockets
//===----------------------------------------------------------------------===//

std::string ServiceAddr::str() const {
  if (IsUnix)
    return "unix:" + Path;
  return "tcp:" + Host + ":" + std::to_string(Port);
}

bool se2gis::parseServiceAddr(const std::string &Text, ServiceAddr &Out,
                              std::string &Error) {
  std::string T = Text;
  if (T.rfind("unix:", 0) == 0) {
    Out.IsUnix = true;
    Out.Path = T.substr(5);
    if (Out.Path.empty()) {
      Error = "unix address needs a socket path (unix:/path/to.sock)";
      return false;
    }
    return true;
  }
  if (T.rfind("tcp:", 0) == 0)
    T = T.substr(4);
  else if (T.find(':') == std::string::npos) {
    // No scheme, no port separator: a bare filesystem path.
    Out.IsUnix = true;
    Out.Path = T;
    if (Out.Path.empty()) {
      Error = "empty service address";
      return false;
    }
    return true;
  }
  std::size_t Colon = T.rfind(':');
  if (Colon == std::string::npos || Colon + 1 >= T.size()) {
    Error = "tcp address needs host:port (tcp:127.0.0.1:7070)";
    return false;
  }
  Out.IsUnix = false;
  Out.Host = T.substr(0, Colon);
  if (Out.Host.empty())
    Out.Host = "127.0.0.1";
  long Port = 0;
  for (std::size_t I = Colon + 1; I < T.size(); ++I) {
    if (T[I] < '0' || T[I] > '9') {
      Error = "tcp port must be numeric";
      return false;
    }
    Port = Port * 10 + (T[I] - '0');
    if (Port > 65535) {
      Error = "tcp port out of range";
      return false;
    }
  }
  Out.Port = static_cast<std::uint16_t>(Port);
  return true;
}

void se2gis::closeFd(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
}

namespace {

/// Sun-path capacity check: sockaddr_un has a short fixed buffer.
bool fillUnixAddr(const std::string &Path, sockaddr_un &Sa,
                  std::string &Error) {
  std::memset(&Sa, 0, sizeof(Sa));
  Sa.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Sa.sun_path)) {
    Error = "unix socket path too long (" + std::to_string(Path.size()) +
            " bytes; limit " + std::to_string(sizeof(Sa.sun_path) - 1) + ")";
    return false;
  }
  std::memcpy(Sa.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

bool fillTcpAddr(const ServiceAddr &Addr, sockaddr_in &Sa,
                 std::string &Error) {
  std::memset(&Sa, 0, sizeof(Sa));
  Sa.sin_family = AF_INET;
  Sa.sin_port = htons(Addr.Port);
  if (::inet_pton(AF_INET, Addr.Host.c_str(), &Sa.sin_addr) != 1) {
    Error = "cannot parse tcp host '" + Addr.Host +
            "' (use a numeric IPv4 address)";
    return false;
  }
  return true;
}

} // namespace

int se2gis::listenOn(ServiceAddr &Addr, std::string &Error) {
  int Fd = -1;
  if (Addr.IsUnix) {
    sockaddr_un Sa;
    if (!fillUnixAddr(Addr.Path, Sa, Error))
      return -1;
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      Error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    ::unlink(Addr.Path.c_str()); // stale socket from a previous daemon
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa)) < 0) {
      Error = "bind " + Addr.str() + ": " + std::strerror(errno);
      ::close(Fd);
      return -1;
    }
  } else {
    sockaddr_in Sa;
    if (!fillTcpAddr(Addr, Sa, Error))
      return -1;
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0) {
      Error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa)) < 0) {
      Error = "bind " + Addr.str() + ": " + std::strerror(errno);
      ::close(Fd);
      return -1;
    }
    if (Addr.Port == 0) {
      sockaddr_in Bound;
      socklen_t Len = sizeof(Bound);
      if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &Len) == 0)
        Addr.Port = ntohs(Bound.sin_port);
    }
  }
  if (::listen(Fd, 64) < 0) {
    Error = "listen " + Addr.str() + ": " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

namespace {

/// Connects \p Fd to \p Sa. With \p TimeoutMs >= 0 the socket is flipped
/// non-blocking for the duration and the connect is bounded by poll; the
/// fd comes back blocking either way.
bool connectWithTimeout(int Fd, const sockaddr *Sa, socklen_t Len,
                        int TimeoutMs, std::string &Error) {
  if (TimeoutMs < 0) {
    if (::connect(Fd, Sa, Len) < 0) {
      Error = std::strerror(errno);
      return false;
    }
    return true;
  }
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  int R = ::connect(Fd, Sa, Len);
  if (R < 0 && errno != EINPROGRESS) {
    Error = std::strerror(errno);
    return false;
  }
  if (R < 0) {
    pollfd P = {Fd, POLLOUT, 0};
    int N = ::poll(&P, 1, TimeoutMs);
    if (N <= 0) {
      Error = N == 0 ? "connect timed out" : std::strerror(errno);
      return false;
    }
    int Err = 0;
    socklen_t ErrLen = sizeof(Err);
    if (::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &Err, &ErrLen) < 0 || Err) {
      Error = std::strerror(Err ? Err : errno);
      return false;
    }
  }
  ::fcntl(Fd, F_SETFL, Flags);
  return true;
}

} // namespace

int se2gis::connectTo(const ServiceAddr &Addr, std::string &Error,
                      int TimeoutMs) {
  int Fd = -1;
  std::string Reason;
  if (Addr.IsUnix) {
    sockaddr_un Sa;
    if (!fillUnixAddr(Addr.Path, Sa, Error))
      return -1;
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      Error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    if (!connectWithTimeout(Fd, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa),
                            TimeoutMs, Reason)) {
      Error = "connect " + Addr.str() + ": " + Reason;
      ::close(Fd);
      return -1;
    }
  } else {
    sockaddr_in Sa;
    if (!fillTcpAddr(Addr, Sa, Error))
      return -1;
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0) {
      Error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    if (!connectWithTimeout(Fd, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa),
                            TimeoutMs, Reason)) {
      Error = "connect " + Addr.str() + ": " + Reason;
      ::close(Fd);
      return -1;
    }
  }
  return Fd;
}

bool se2gis::setFdIoTimeout(int Fd, int TimeoutMs) {
  if (Fd < 0 || TimeoutMs < 0)
    return false;
  timeval Tv;
  Tv.tv_sec = TimeoutMs / 1000;
  Tv.tv_usec = (TimeoutMs % 1000) * 1000;
  return ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv)) == 0 &&
         ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv)) == 0;
}
