//===- JobQueue.cpp -------------------------------------------------------===//

#include "service/JobQueue.h"

#include <algorithm>
#include <cstdio>

using namespace se2gis;

const char *se2gis::jobStateName(JobState S) {
  switch (S) {
  case JobState::Queued:
    return "queued";
  case JobState::Running:
    return "running";
  case JobState::Done:
    return "done";
  case JobState::Cancelled:
    return "cancelled";
  }
  return "?";
}

AdmitStatus JobQueue::submit(JobSpec Spec, std::string &IdOut,
                             std::uint64_t Rid) {
  std::lock_guard<std::mutex> Lock(M);
  if (DrainingFlag || Stopping)
    return AdmitStatus::Draining;
  if (Pending.size() >= MaxQueued)
    return AdmitStatus::QueueFull;

  auto J = std::make_shared<Job>();
  J->Seq = NextSeq++;
  J->Rid = Rid;
  J->Progress = std::make_shared<ProgressBoard>();
  // snprintf, not "j" + std::to_string(Seq): concatenating to_string's SSO
  // buffer trips GCC 12's bogus -Wrestrict overlap diagnosis (PR105651) and
  // the build is kept warning-free.
  char IdBuf[24];
  std::snprintf(IdBuf, sizeof(IdBuf), "j%llu",
                static_cast<unsigned long long>(J->Seq));
  J->Id = IdBuf;
  J->Spec = std::move(Spec);
  J->Token = CancellationToken::create();
  J->SubmitAt = std::chrono::steady_clock::now();
  IdOut = J->Id;
  Table.emplace(J->Id, J);
  Pending.push_back(J->Id);
  ++SubmittedCount;
  WorkReady.notify_one();
  return AdmitStatus::Admitted;
}

std::shared_ptr<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> Lock(M);
  while (true) {
    WorkReady.wait(Lock, [&] { return Stopping || !Pending.empty(); });
    if (Pending.empty())
      return nullptr; // Stopping and drained: worker exits
    // Highest priority first; arrival order (deque order) within a level.
    auto Best = Pending.begin();
    for (auto It = std::next(Pending.begin()); It != Pending.end(); ++It)
      if (Table[*It]->Spec.Priority > Table[*Best]->Spec.Priority)
        Best = It;
    std::shared_ptr<Job> J = Table[*Best];
    Pending.erase(Best);
    J->State = JobState::Running;
    J->StartAt = std::chrono::steady_clock::now();
    ++RunningCount;
    return J;
  }
}

void JobQueue::complete(const std::shared_ptr<Job> &J, Outcome Result) {
  std::lock_guard<std::mutex> Lock(M);
  J->Result = std::move(Result);
  J->EndAt = std::chrono::steady_clock::now();
  if (J->CancelRequested) {
    J->State = JobState::Cancelled;
    ++CancelledCount;
  } else {
    J->State = JobState::Done;
    ++CompletedCount;
    ++DoneByVerdictCount[static_cast<size_t>(J->Result.V) & 3];
  }
  --RunningCount;
  if (Pending.empty() && RunningCount == 0)
    Idle.notify_all();
}

bool JobQueue::cancel(const std::string &Id) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Table.find(Id);
  if (It == Table.end())
    return false;
  std::shared_ptr<Job> &J = It->second;
  switch (J->State) {
  case JobState::Queued:
    J->CancelRequested = true;
    J->Token.requestCancel();
    J->State = JobState::Cancelled;
    J->EndAt = std::chrono::steady_clock::now();
    removeFromPendingLocked(Id);
    ++CancelledCount;
    if (Pending.empty() && RunningCount == 0)
      Idle.notify_all();
    break;
  case JobState::Running:
    J->CancelRequested = true;
    J->Token.requestCancel(); // terminalizes via complete()
    break;
  case JobState::Done:
  case JobState::Cancelled:
    break; // cancelling a finished job is a benign no-op
  }
  return true;
}

std::unique_ptr<Job> JobQueue::query(const std::string &Id) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Table.find(Id);
  if (It == Table.end())
    return nullptr;
  return std::make_unique<Job>(*It->second);
}

QueueStats JobQueue::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  QueueStats S;
  S.QueueDepth = Pending.size();
  S.InFlight = RunningCount;
  S.Submitted = SubmittedCount;
  S.Completed = CompletedCount;
  S.Cancelled = CancelledCount;
  S.Rejected = RejectedCount;
  for (size_t I = 0; I < 4; ++I)
    S.DoneByVerdict[I] = DoneByVerdictCount[I];
  S.Draining = DrainingFlag;
  return S;
}

std::vector<std::unique_ptr<Job>> JobQueue::runningJobs() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<std::unique_ptr<Job>> Out;
  for (const auto &[Id, J] : Table)
    if (J->State == JobState::Running)
      Out.push_back(std::make_unique<Job>(*J));
  return Out;
}

void JobQueue::countRejected() {
  std::lock_guard<std::mutex> Lock(M);
  ++RejectedCount;
}

void JobQueue::beginDrain() {
  std::lock_guard<std::mutex> Lock(M);
  DrainingFlag = true;
}

bool JobQueue::waitIdle(std::int64_t DeadlineMs) {
  std::unique_lock<std::mutex> Lock(M);
  auto IsIdle = [&] { return Pending.empty() && RunningCount == 0; };
  if (DeadlineMs <= 0) {
    Idle.wait(Lock, IsIdle);
    return true;
  }
  return Idle.wait_for(Lock, std::chrono::milliseconds(DeadlineMs), IsIdle);
}

void JobQueue::cancelAll() {
  std::lock_guard<std::mutex> Lock(M);
  // Queued jobs terminalize here; running jobs when their worker completes.
  for (const std::string &Id : Pending) {
    std::shared_ptr<Job> &J = Table[Id];
    J->CancelRequested = true;
    J->Token.requestCancel();
    J->State = JobState::Cancelled;
    J->EndAt = std::chrono::steady_clock::now();
    ++CancelledCount;
  }
  Pending.clear();
  for (auto &[Id, J] : Table)
    if (J->State == JobState::Running) {
      J->CancelRequested = true;
      J->Token.requestCancel();
    }
  if (RunningCount == 0)
    Idle.notify_all();
}

void JobQueue::shutdown() {
  std::lock_guard<std::mutex> Lock(M);
  DrainingFlag = true;
  Stopping = true;
  WorkReady.notify_all();
}

void JobQueue::removeFromPendingLocked(const std::string &Id) {
  auto It = std::find(Pending.begin(), Pending.end(), Id);
  if (It != Pending.end())
    Pending.erase(It);
}
