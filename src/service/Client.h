//===- Client.h - Synthesis service client ----------------------*- C++-*-===//
///
/// \file
/// A thin synchronous client for the synthesis service: one connection, one
/// request/response exchange per \c call. The CLI's client mode and the
/// integration tests sit on top of this; everything protocol-shaped
/// (framing, bounds, typed errors) lives in Protocol.h so client and server
/// cannot drift apart.
///
/// The client is deliberately blocking: the service protocol is strictly
/// request/response on a connection, so a synchronous call maps 1:1 onto
/// the wire and keeps error handling linear. Callers that want concurrency
/// open more clients (the daemon handles each connection on its own
/// thread).
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SERVICE_CLIENT_H
#define SE2GIS_SERVICE_CLIENT_H

#include "service/Protocol.h"

#include <memory>
#include <string>

namespace se2gis {

class ServiceClient {
public:
  /// Connects to \p Addr ("unix:<path>" or "tcp:<host>:<port>"). On failure
  /// returns nullptr with a diagnostic in \p Error.
  static std::unique_ptr<ServiceClient> connect(const std::string &Addr,
                                                std::string &Error);

  ~ServiceClient();

  ServiceClient(const ServiceClient &) = delete;
  ServiceClient &operator=(const ServiceClient &) = delete;

  /// Sends \p Request and blocks for the response. \returns false on a
  /// transport-level failure (send failed, connection closed, unparsable
  /// response) with a diagnostic in \p Error; protocol-level failures
  /// (`"ok": false`) still return true — inspect the response.
  bool call(const JsonValue &Request, JsonValue &Response, std::string &Error);

  /// Convenience: builds `{"method": <Method>}` and calls.
  bool call(const std::string &Method, JsonValue &Response,
            std::string &Error);

  const ServiceAddr &addr() const { return Addr; }

private:
  ServiceClient(int Fd, ServiceAddr Addr) : Fd(Fd), Addr(std::move(Addr)) {}

  int Fd = -1;
  ServiceAddr Addr;
};

} // namespace se2gis

#endif // SE2GIS_SERVICE_CLIENT_H
