//===- Client.cpp ---------------------------------------------------------===//

#include "service/Client.h"

using namespace se2gis;

std::unique_ptr<ServiceClient> ServiceClient::connect(const std::string &Addr,
                                                      std::string &Error) {
  ServiceAddr Parsed;
  if (!parseServiceAddr(Addr, Parsed, Error))
    return nullptr;
  int Fd = connectTo(Parsed, Error);
  if (Fd < 0)
    return nullptr;
  return std::unique_ptr<ServiceClient>(
      new ServiceClient(Fd, std::move(Parsed)));
}

ServiceClient::~ServiceClient() { closeFd(Fd); }

bool ServiceClient::call(const JsonValue &Request, JsonValue &Response,
                         std::string &Error) {
  if (Fd < 0) {
    Error = "not connected";
    return false;
  }
  if (!writeFrame(Fd, Request.dump())) {
    Error = "send failed (daemon gone?)";
    return false;
  }
  std::string Payload;
  switch (readFrame(Fd, Payload)) {
  case FrameStatus::Ok:
    break;
  case FrameStatus::Eof:
  case FrameStatus::Truncated:
    Error = "connection closed before a response arrived";
    return false;
  case FrameStatus::Oversized:
    Error = "daemon sent an oversized frame";
    return false;
  case FrameStatus::IoError:
    Error = "read failed";
    return false;
  }
  std::string ParseError;
  if (!JsonValue::parse(Payload, Response, ParseError)) {
    Error = "unparsable response: " + ParseError;
    return false;
  }
  return true;
}

bool ServiceClient::call(const std::string &Method, JsonValue &Response,
                         std::string &Error) {
  JsonValue Req = JsonValue::object();
  Req.set("method", JsonValue::str(Method));
  return call(Req, Response, Error);
}
