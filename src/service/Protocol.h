//===- Protocol.h - Wire protocol of the synthesis service ------*- C++-*-===//
///
/// \file
/// The framing and message vocabulary shared by the daemon (Server.h), the
/// client (Client.h), and the CLI. One message = one frame:
///
///     +----------------+----------------------+
///     | length N (u32, | N bytes of UTF-8     |
///     | big-endian)    | JSON (one value)     |
///     +----------------+----------------------+
///
/// Frames are bounded (\c kMaxFrameBytes): a peer announcing a larger
/// payload is answered with a typed `oversized_frame` error and the
/// connection is closed (the stream cannot be resynchronized without
/// trusting the hostile length). A truncated prefix or body is a clean
/// close, never a hang — reads carry no assumptions beyond "bytes arrive
/// or the peer went away".
///
/// Requests are JSON objects with a `method` field: submit / status /
/// result / cancel / stats / drain / ping. Responses always carry
/// `"ok": true|false`; failures add `{"error":{"code","message"}}` with a
/// stable machine-readable code (\c ErrorCode). The full schema lives in
/// DESIGN.md ("Service model").
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SERVICE_PROTOCOL_H
#define SE2GIS_SERVICE_PROTOCOL_H

#include "service/Json.h"

#include <cstdint>
#include <string>

namespace se2gis {

/// Hard ceiling on one frame's payload (inline DSL sources are a few KB;
/// 8 MiB leaves two orders of magnitude of headroom without letting a
/// hostile length prefix drive allocation).
constexpr std::uint32_t kMaxFrameBytes = 8u << 20;

/// Why a frame read ended.
enum class FrameStatus : unsigned char {
  Ok,        ///< a complete frame was delivered
  Eof,       ///< clean close before the first prefix byte (normal hangup)
  Truncated, ///< the peer closed mid-prefix or mid-payload
  Oversized, ///< the prefix announced more than kMaxFrameBytes
  IoError    ///< read(2)/write(2) failed (errno-level problem)
};

const char *frameStatusName(FrameStatus S);

/// Machine-readable error codes of typed failure responses.
enum class ErrorCode : unsigned char {
  ParseError,     ///< payload was not valid JSON / not an object
  BadRequest,     ///< missing or ill-typed fields, unloadable problem
  UnknownMethod,  ///< `method` names nothing we serve
  OversizedFrame, ///< frame exceeded kMaxFrameBytes
  NotFound,       ///< no such job id
  Overloaded,     ///< admission control: queue at capacity
  Draining,       ///< daemon is draining; no new work admitted
  Internal        ///< unexpected server-side failure
};

const char *errorCodeName(ErrorCode C);

/// Reads one frame from \p Fd into \p Payload. Blocks until a full frame,
/// EOF, or an error; never throws. \returns the status (Payload is valid
/// only for Ok).
FrameStatus readFrame(int Fd, std::string &Payload);

/// Writes one frame. \returns false on any write failure (broken pipe,
/// payload over the bound).
bool writeFrame(int Fd, const std::string &Payload);

/// Builds the canonical typed error response.
JsonValue makeErrorResponse(ErrorCode Code, const std::string &Message);

/// Builds an `{"ok":true}` response to extend.
JsonValue makeOkResponse();

//===----------------------------------------------------------------------===//
// Service addresses
//===----------------------------------------------------------------------===//

/// A parsed listen/connect address: `unix:<path>` (or a bare path) for a
/// Unix-domain socket, `tcp:<host>:<port>` (or `<host>:<port>`) for TCP.
struct ServiceAddr {
  bool IsUnix = true;
  std::string Path;         ///< Unix-domain socket path
  std::string Host;         ///< TCP host
  std::uint16_t Port = 0;   ///< TCP port (0 = ephemeral, reported on bind)

  std::string str() const;
};

/// Parses \p Text into \p Out; on failure returns false with a diagnostic
/// in \p Error.
bool parseServiceAddr(const std::string &Text, ServiceAddr &Out,
                      std::string &Error);

/// Binds and listens on \p Addr. On success returns the fd and, for
/// `tcp:*:0`, rewrites Addr.Port to the bound port; on failure returns -1
/// with a diagnostic in \p Error. Unix paths are unlinked first (the
/// daemon owns its socket path).
int listenOn(ServiceAddr &Addr, std::string &Error);

/// Connects to \p Addr. \returns the fd, or -1 with \p Error. With
/// \p TimeoutMs >= 0 the connect itself is bounded (non-blocking connect +
/// poll), so an unreachable peer costs at most the timeout — the cache
/// tier's client (src/cachenet/) relies on this to never stall a solve.
/// The default (-1) keeps the historical blocking behavior.
int connectTo(const ServiceAddr &Addr, std::string &Error,
              int TimeoutMs = -1);

/// Bounds every subsequent read(2)/write(2) on \p Fd to \p TimeoutMs
/// (SO_RCVTIMEO/SO_SNDTIMEO). A timed-out read surfaces through readFrame
/// as Truncated/IoError, never a hang. \returns false if the socket
/// options could not be set.
bool setFdIoTimeout(int Fd, int TimeoutMs);

/// Closes \p Fd if valid (EINTR-safe convenience).
void closeFd(int Fd);

} // namespace se2gis

#endif // SE2GIS_SERVICE_PROTOCOL_H
