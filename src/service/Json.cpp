//===- Json.cpp -----------------------------------------------------------===//

#include "service/Json.h"

#include <cmath>
#include <cstdio>

using namespace se2gis;

//===----------------------------------------------------------------------===//
// Accessors
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, Val] : Members)
    if (Name == Key)
      return &Val;
  return nullptr;
}

std::string JsonValue::getString(const std::string &Key,
                                 const std::string &Default) const {
  const JsonValue *V = get(Key);
  return V && V->isString() ? V->Str : Default;
}

std::int64_t JsonValue::getInt(const std::string &Key,
                               std::int64_t Default) const {
  const JsonValue *V = get(Key);
  return V && V->isNumber() ? V->Int : Default;
}

double JsonValue::getNumber(const std::string &Key, double Default) const {
  const JsonValue *V = get(Key);
  return V && V->isNumber() ? V->Num : Default;
}

bool JsonValue::getBool(const std::string &Key, bool Default) const {
  const JsonValue *V = get(Key);
  return V && V->isBool() ? V->B : Default;
}

JsonValue &JsonValue::set(const std::string &Key, JsonValue V) {
  K = Kind::Object;
  for (auto &[Name, Val] : Members)
    if (Name == Key) {
      Val = std::move(V);
      return *this;
    }
  Members.emplace_back(Key, std::move(V));
  return *this;
}

JsonValue &JsonValue::push(JsonValue V) {
  K = Kind::Array;
  Items.push_back(std::move(V));
  return *this;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string se2gis::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

void JsonValue::dumpTo(std::string &Out) const {
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += B ? "true" : "false";
    break;
  case Kind::Number:
    if (IsInt) {
      Out += std::to_string(Int);
    } else {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.17g", Num);
      Out += Buf;
    }
    break;
  case Kind::String:
    Out += '"';
    Out += jsonEscape(Str);
    Out += '"';
    break;
  case Kind::Array: {
    Out += '[';
    bool First = true;
    for (const JsonValue &V : Items) {
      if (!First)
        Out += ',';
      First = false;
      V.dumpTo(Out);
    }
    Out += ']';
    break;
  }
  case Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[Name, Val] : Members) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      Out += jsonEscape(Name);
      Out += "\":";
      Val.dumpTo(Out);
    }
    Out += '}';
    break;
  }
  }
}

std::string JsonValue::dump() const {
  std::string Out;
  dumpTo(Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

bool se2gis::isValidUtf8(const std::string &S) {
  std::size_t I = 0, N = S.size();
  while (I < N) {
    unsigned char C = static_cast<unsigned char>(S[I]);
    std::size_t Len;
    std::uint32_t Cp;
    if (C < 0x80) {
      ++I;
      continue;
    } else if ((C & 0xe0) == 0xc0) {
      Len = 2;
      Cp = C & 0x1f;
    } else if ((C & 0xf0) == 0xe0) {
      Len = 3;
      Cp = C & 0x0f;
    } else if ((C & 0xf8) == 0xf0) {
      Len = 4;
      Cp = C & 0x07;
    } else {
      return false; // stray continuation or illegal lead byte
    }
    if (I + Len > N)
      return false; // truncated sequence
    for (std::size_t J = 1; J < Len; ++J) {
      unsigned char Cc = static_cast<unsigned char>(S[I + J]);
      if ((Cc & 0xc0) != 0x80)
        return false;
      Cp = (Cp << 6) | (Cc & 0x3f);
    }
    // Overlong encodings, surrogates, and out-of-range code points are all
    // invalid even when structurally well-formed.
    if ((Len == 2 && Cp < 0x80) || (Len == 3 && Cp < 0x800) ||
        (Len == 4 && Cp < 0x10000) || Cp > 0x10ffff ||
        (Cp >= 0xd800 && Cp <= 0xdfff))
      return false;
    I += Len;
  }
  return true;
}

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  const std::string &S;
  std::size_t Pos = 0;
  std::string Error;

  explicit Parser(const std::string &S) : S(S) {}

  bool fail(const std::string &Msg) {
    Error = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Lit) {
    std::size_t N = std::char_traits<char>::length(Lit);
    if (S.compare(Pos, N, Lit) != 0)
      return false;
    Pos += N;
    return true;
  }

  bool parseString(std::string &Out) {
    // Caller consumed the opening quote.
    Out.clear();
    while (true) {
      if (Pos >= S.size())
        return fail("unterminated string");
      char C = S[Pos++];
      if (C == '"')
        break;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= S.size())
        return fail("unterminated escape");
      char E = S[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > S.size())
          return fail("truncated \\u escape");
        std::uint32_t Cp = 0;
        for (int I = 0; I < 4; ++I) {
          char H = S[Pos++];
          Cp <<= 4;
          if (H >= '0' && H <= '9')
            Cp |= static_cast<std::uint32_t>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Cp |= static_cast<std::uint32_t>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Cp |= static_cast<std::uint32_t>(H - 'A' + 10);
          else
            return fail("bad \\u escape digit");
        }
        if (Cp >= 0xd800 && Cp <= 0xdbff) {
          // Surrogate pair: require the low half immediately after.
          if (Pos + 6 > S.size() || S[Pos] != '\\' || S[Pos + 1] != 'u')
            return fail("unpaired high surrogate");
          Pos += 2;
          std::uint32_t Lo = 0;
          for (int I = 0; I < 4; ++I) {
            char H = S[Pos++];
            Lo <<= 4;
            if (H >= '0' && H <= '9')
              Lo |= static_cast<std::uint32_t>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Lo |= static_cast<std::uint32_t>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Lo |= static_cast<std::uint32_t>(H - 'A' + 10);
            else
              return fail("bad \\u escape digit");
          }
          if (Lo < 0xdc00 || Lo > 0xdfff)
            return fail("unpaired high surrogate");
          Cp = 0x10000 + ((Cp - 0xd800) << 10) + (Lo - 0xdc00);
        } else if (Cp >= 0xdc00 && Cp <= 0xdfff) {
          return fail("unpaired low surrogate");
        }
        // Encode the code point as UTF-8.
        if (Cp < 0x80) {
          Out += static_cast<char>(Cp);
        } else if (Cp < 0x800) {
          Out += static_cast<char>(0xc0 | (Cp >> 6));
          Out += static_cast<char>(0x80 | (Cp & 0x3f));
        } else if (Cp < 0x10000) {
          Out += static_cast<char>(0xe0 | (Cp >> 12));
          Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3f));
          Out += static_cast<char>(0x80 | (Cp & 0x3f));
        } else {
          Out += static_cast<char>(0xf0 | (Cp >> 18));
          Out += static_cast<char>(0x80 | ((Cp >> 12) & 0x3f));
          Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3f));
          Out += static_cast<char>(0x80 | (Cp & 0x3f));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    if (!isValidUtf8(Out))
      return fail("invalid UTF-8 in string");
    return true;
  }

  bool parseValue(JsonValue &Out, int Depth) {
    if (Depth > kMaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= S.size())
      return fail("unexpected end of input");
    char C = S[Pos];
    if (C == 'n') {
      if (!literal("null"))
        return fail("bad literal");
      Out = JsonValue::null();
      return true;
    }
    if (C == 't') {
      if (!literal("true"))
        return fail("bad literal");
      Out = JsonValue::boolean(true);
      return true;
    }
    if (C == 'f') {
      if (!literal("false"))
        return fail("bad literal");
      Out = JsonValue::boolean(false);
      return true;
    }
    if (C == '"') {
      ++Pos;
      std::string Str;
      if (!parseString(Str))
        return false;
      Out = JsonValue::str(std::move(Str));
      return true;
    }
    if (C == '[') {
      ++Pos;
      Out = JsonValue::array();
      skipWs();
      if (Pos < S.size() && S[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        JsonValue Item;
        if (!parseValue(Item, Depth + 1))
          return false;
        Out.push(std::move(Item));
        skipWs();
        if (Pos >= S.size())
          return fail("unterminated array");
        if (S[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (S[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (C == '{') {
      ++Pos;
      Out = JsonValue::object();
      skipWs();
      if (Pos < S.size() && S[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        if (Pos >= S.size() || S[Pos] != '"')
          return fail("expected object key");
        ++Pos;
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (Pos >= S.size() || S[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        JsonValue Val;
        if (!parseValue(Val, Depth + 1))
          return false;
        Out.set(Key, std::move(Val));
        skipWs();
        if (Pos >= S.size())
          return fail("unterminated object");
        if (S[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (S[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber(Out);
    return fail("unexpected character");
  }

  bool parseNumber(JsonValue &Out) {
    std::size_t Start = Pos;
    bool Neg = false;
    if (Pos < S.size() && S[Pos] == '-') {
      Neg = true;
      ++Pos;
    }
    if (Pos >= S.size() || S[Pos] < '0' || S[Pos] > '9')
      return fail("bad number");
    // Leading zero must not be followed by more digits (strict JSON).
    if (S[Pos] == '0' && Pos + 1 < S.size() && S[Pos + 1] >= '0' &&
        S[Pos + 1] <= '9')
      return fail("leading zero");
    bool IsInt = true;
    std::int64_t IntVal = 0;
    bool IntOverflow = false;
    while (Pos < S.size() && S[Pos] >= '0' && S[Pos] <= '9') {
      if (IntVal > (INT64_MAX - 9) / 10)
        IntOverflow = true;
      else
        IntVal = IntVal * 10 + (S[Pos] - '0');
      ++Pos;
    }
    if (Pos < S.size() && S[Pos] == '.') {
      IsInt = false;
      ++Pos;
      if (Pos >= S.size() || S[Pos] < '0' || S[Pos] > '9')
        return fail("bad fraction");
      while (Pos < S.size() && S[Pos] >= '0' && S[Pos] <= '9')
        ++Pos;
    }
    if (Pos < S.size() && (S[Pos] == 'e' || S[Pos] == 'E')) {
      IsInt = false;
      ++Pos;
      if (Pos < S.size() && (S[Pos] == '+' || S[Pos] == '-'))
        ++Pos;
      if (Pos >= S.size() || S[Pos] < '0' || S[Pos] > '9')
        return fail("bad exponent");
      while (Pos < S.size() && S[Pos] >= '0' && S[Pos] <= '9')
        ++Pos;
    }
    std::string Text = S.substr(Start, Pos - Start);
    double D = std::strtod(Text.c_str(), nullptr);
    if (IsInt && !IntOverflow)
      Out = JsonValue::number(Neg ? -IntVal : IntVal);
    else
      Out = JsonValue::number(D);
    return true;
  }
};

} // namespace

bool JsonValue::parse(const std::string &Text, JsonValue &Out,
                      std::string &Error) {
  Parser P(Text);
  if (!P.parseValue(Out, 0)) {
    Error = P.Error;
    return false;
  }
  P.skipWs();
  if (P.Pos != Text.size()) {
    Error = "trailing bytes after value at offset " + std::to_string(P.Pos);
    return false;
  }
  return true;
}
