//===- Server.cpp ---------------------------------------------------------===//

#include "service/Server.h"

#include "cache/CacheConfig.h"
#include "frontend/Elaborate.h"
#include "suite/Benchmarks.h"
#include "support/Diagnostics.h"
#include "support/FlightRecorder.h"
#include "support/Log.h"
#include "support/Metrics.h"
#include "support/PerfCounters.h"
#include "support/Progress.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <csignal>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace se2gis;

namespace {

double msBetween(std::chrono::steady_clock::time_point From,
                 std::chrono::steady_clock::time_point To) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             To - From)
      .count();
}

} // namespace

Server::Server(ServiceConfig C)
    : Config(std::move(C)), Queue(Config.MaxQueue) {}

Server::~Server() {
  closeFd(ListenFd);
  closeFd(MetricsFd);
  closeFd(WakePipe[0]);
  closeFd(WakePipe[1]);
  if (BoundAddr.IsUnix && !BoundAddr.Path.empty())
    ::unlink(BoundAddr.Path.c_str());
  if (MetricsBoundAddr.IsUnix && !MetricsBoundAddr.Path.empty())
    ::unlink(MetricsBoundAddr.Path.c_str());
}

bool Server::start(std::string &Error) {
  if (!parseServiceAddr(Config.Listen, BoundAddr, Error))
    return false;
  if (::pipe(WakePipe) != 0) {
    Error = "cannot create wake pipe";
    return false;
  }
  ListenFd = listenOn(BoundAddr, Error);
  if (ListenFd < 0)
    return false;

  // A client hanging up mid-response must degrade to a failed write, not a
  // process-killing SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  // Warm shared state before the first job: every worker then hits the
  // same process-wide caches, and the persistent segments are loaded once.
  configureCache(Config.Base.Cache);
  configureLogging(Config.Base.Log);
  if (!Config.Base.TracePath.empty())
    traceConfigure(Config.Base.TracePath);

  // The flight recorder is always on; a flight dir additionally arms
  // fatal-signal dumps and per-job timeout/cancel dumps.
  if (!Config.FlightDir.empty()) {
    flightSetDumpPrefix(Config.FlightDir + "/flight-fatal");
    flightInstallCrashHandler();
  }

  if (!Config.MetricsAddr.empty()) {
    if (!parseServiceAddr(Config.MetricsAddr, MetricsBoundAddr, Error))
      return false;
    MetricsFd = listenOn(MetricsBoundAddr, Error);
    if (MetricsFd < 0)
      return false;
    logf(LogLevel::Info, "service", "metrics listener on %s",
         MetricsBoundAddr.str().c_str());
  }

  WorkerCount = Config.Workers
                    ? Config.Workers
                    : std::max(1u, ThreadPool::defaultConcurrency() / 2);
  // Tell the inner-parallelism clamp how wide the outer pool is (DESIGN.md
  // "Service model": outer × inner ≤ hardware_concurrency).
  setOuterWorkerCount(WorkerCount);

  logf(LogLevel::Info, "service",
       "listening on %s (%u workers, queue bound %zu, default budget %lld ms)",
       BoundAddr.str().c_str(), WorkerCount, Config.MaxQueue,
       static_cast<long long>(Config.DefaultTimeoutMs));

  for (unsigned I = 0; I < WorkerCount; ++I)
    WorkerThreads.emplace_back([this] { workerLoop(); });
  AcceptThread = std::thread([this] { acceptLoop(); });
  if (MetricsFd >= 0)
    MetricsThread = std::thread([this] { metricsLoop(); });
  return true;
}

void Server::metricsLoop() {
  // One scrape at a time, handled synchronously: Prometheus scrapes are
  // seconds apart and the render is milliseconds, so a serial loop keeps
  // this path trivially correct. The 200ms poll timeout bounds shutdown
  // latency without sharing the accept loop's wake pipe.
  while (!Stop.load(std::memory_order_acquire)) {
    pollfd P = {MetricsFd, POLLIN, 0};
    int N = ::poll(&P, 1, 200);
    if (N < 0 && errno != EINTR)
      break;
    if (N <= 0 || !(P.revents & POLLIN))
      continue;
    int Fd = ::accept(MetricsFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    // Read the request until the header terminator (the path is ignored:
    // every route serves the exposition). Bounded and briefly timed so a
    // stuck client cannot wedge the loop.
    std::string Req;
    char Buf[1024];
    while (Req.size() < 16384 && Req.find("\r\n\r\n") == std::string::npos) {
      pollfd RP = {Fd, POLLIN, 0};
      if (::poll(&RP, 1, 2000) <= 0 || !(RP.revents & POLLIN))
        break;
      ssize_t R = ::recv(Fd, Buf, sizeof(Buf), 0);
      if (R <= 0)
        break;
      Req.append(Buf, static_cast<std::size_t>(R));
    }
    if (Req.find("\r\n\r\n") != std::string::npos ||
        Req.find('\n') != std::string::npos) {
      std::string Body = renderMetrics();
      std::string Resp = "HTTP/1.0 200 OK\r\n"
                         "Content-Type: text/plain; version=0.0.4; "
                         "charset=utf-8\r\n"
                         "Content-Length: " +
                         std::to_string(Body.size()) +
                         "\r\n"
                         "Connection: close\r\n\r\n" +
                         Body;
      std::size_t Off = 0;
      while (Off < Resp.size()) {
        ssize_t W = ::send(Fd, Resp.data() + Off, Resp.size() - Off, 0);
        if (W <= 0)
          break;
        Off += static_cast<std::size_t>(W);
      }
    }
    closeFd(Fd);
  }
}

std::string Server::renderMetrics() {
  PrometheusWriter W;
  QueueStats QS = Queue.stats();
  W.gauge("se2gis_queue_depth", "jobs queued, not yet running",
          static_cast<double>(QS.QueueDepth));
  W.gauge("se2gis_jobs_in_flight", "jobs currently running",
          static_cast<double>(QS.InFlight));
  W.gauge("se2gis_workers", "worker threads", WorkerCount);
  W.gauge("se2gis_draining", "1 while the daemon is draining",
          QS.Draining ? 1 : 0);
  W.counter("se2gis_jobs_submitted_total", "jobs admitted to the queue",
            static_cast<double>(QS.Submitted));
  W.counter("se2gis_jobs_cancelled_total", "jobs cancelled",
            static_cast<double>(QS.Cancelled));
  W.counter("se2gis_jobs_rejected_total",
            "submissions refused (overloaded or draining)",
            static_cast<double>(QS.Rejected));
  for (size_t V = 0; V < 4; ++V)
    W.counter("se2gis_jobs_done_total", "completed jobs by verdict",
              static_cast<double>(QS.DoneByVerdict[V]),
              {{"verdict", verdictName(static_cast<Verdict>(V))}});
  W.histogram("se2gis_job_latency_seconds",
              "job wall time from admission to terminal state",
              JobLatency.snapshot());
  writeProcessMetrics(W, snapshotPerf());
  return W.str();
}

void Server::requestDrainAsync() {
  // Async-signal-safe: one write to the wake pipe; the accept loop turns it
  // into a real drain outside signal context.
  if (WakePipe[1] >= 0) {
    char B = 'd';
    [[maybe_unused]] ssize_t W = ::write(WakePipe[1], &B, 1);
  }
}

void Server::acceptLoop() {
  while (!Stop.load(std::memory_order_acquire)) {
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {WakePipe[0], POLLIN, 0}};
    int N = ::poll(Fds, 2, -1);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Fds[1].revents & POLLIN) {
      char B = 0;
      [[maybe_unused]] ssize_t R = ::read(WakePipe[0], &B, 1);
      if (B == 'd') {
        drain(); // signal-initiated drain runs on the accept thread
        break;
      }
      continue; // plain wake: re-check Stop
    }
    if (!(Fds[0].revents & POLLIN))
      continue;
    int ClientFd = ::accept(ListenFd, nullptr, nullptr);
    if (ClientFd < 0)
      continue;
    std::lock_guard<std::mutex> Lock(ConnMutex);
    if (Stop.load(std::memory_order_acquire)) {
      closeFd(ClientFd);
      break;
    }
    ConnFds.push_back(ClientFd);
    ConnThreads.emplace_back([this, ClientFd] { connectionLoop(ClientFd); });
  }
}

void Server::connectionLoop(int Fd) {
  std::string Payload;
  while (true) {
    FrameStatus St = readFrame(Fd, Payload);
    if (St == FrameStatus::Eof || St == FrameStatus::Truncated ||
        St == FrameStatus::IoError)
      break;
    if (St == FrameStatus::Oversized) {
      // The announced length cannot be trusted, so the stream cannot be
      // resynchronized: answer with the typed error and hang up.
      writeFrame(Fd, makeErrorResponse(ErrorCode::OversizedFrame,
                                       "frame exceeds the protocol bound")
                         .dump());
      break;
    }
    // Mint the request id at admission and bind it for the whole handling
    // of this frame: log lines, span args, and flight events produced on
    // this thread all carry it, and the response echoes it.
    std::uint64_t Rid = NextRid.fetch_add(1, std::memory_order_relaxed);
    RequestIdScope RidScope(Rid);
    JsonValue Req;
    std::string ParseError;
    JsonValue Resp;
    if (!JsonValue::parse(Payload, Req, ParseError))
      Resp = makeErrorResponse(ErrorCode::ParseError, ParseError);
    else if (!Req.isObject())
      Resp = makeErrorResponse(ErrorCode::BadRequest,
                               "request must be a JSON object");
    else
      Resp = handleRequest(Req);
    Resp.set("rid", JsonValue::number(static_cast<std::int64_t>(Rid)));
    if (!writeFrame(Fd, Resp.dump()))
      break;
  }
  // Deregister before closing: once the fd leaves ConnFds, run()'s
  // shutdown sweep can no longer touch it, so the close cannot race a
  // shutdown() on a recycled descriptor number. Closing here (not in
  // run()) is what gives a peer of a dead conversation — an oversized
  // frame, a hangup — its EOF immediately instead of at daemon exit.
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (auto It = ConnFds.begin(); It != ConnFds.end(); ++It)
      if (*It == Fd) {
        ConnFds.erase(It);
        break;
      }
  }
  closeFd(Fd);
}

JsonValue Server::handleRequest(const JsonValue &Req) {
  std::string Method = Req.getString("method");
  if (Method == "submit")
    return handleSubmit(Req);
  if (Method == "status")
    return handleStatus(Req, /*WithResult=*/false);
  if (Method == "result")
    return handleStatus(Req, /*WithResult=*/true);
  if (Method == "cancel")
    return handleCancel(Req);
  if (Method == "stats")
    return handleStats();
  if (Method == "metrics") {
    JsonValue Resp = makeOkResponse();
    Resp.set("content_type", JsonValue::str("text/plain; version=0.0.4"));
    Resp.set("body", JsonValue::str(renderMetrics()));
    return Resp;
  }
  if (Method == "drain")
    return handleDrain(Req);
  if (Method == "ping") {
    JsonValue Resp = makeOkResponse();
    Resp.set("pong", JsonValue::boolean(true));
    Resp.set("proto", JsonValue::number(std::int64_t(1)));
    return Resp;
  }
  if (Method.empty())
    return makeErrorResponse(ErrorCode::BadRequest,
                             "request carries no method field");
  return makeErrorResponse(ErrorCode::UnknownMethod,
                           "unknown method '" + Method + "'");
}

JsonValue Server::handleSubmit(const JsonValue &Req) {
  JobSpec Spec;
  std::string Benchmark = Req.getString("benchmark");
  std::string Source = Req.getString("source");
  if (Benchmark.empty() == Source.empty())
    return makeErrorResponse(
        ErrorCode::BadRequest,
        "submit needs exactly one of 'benchmark' or 'source'");

  std::string AlgoName = Req.getString("algo", "se2gis");
  auto Algo = parseAlgorithmName(AlgoName);
  if (!Algo)
    return makeErrorResponse(ErrorCode::BadRequest,
                             "unknown algorithm '" + AlgoName + "'");
  Spec.Algorithm = *Algo;

  std::int64_t TimeoutMs = Req.getInt("timeout_ms", Config.DefaultTimeoutMs);
  Spec.TimeoutMs = TimeoutMs < 0 ? Config.DefaultTimeoutMs : TimeoutMs;
  std::int64_t Priority = Req.getInt("priority", 0);
  if (Priority > 1000)
    Priority = 1000;
  if (Priority < -1000)
    Priority = -1000;
  Spec.Priority = static_cast<int>(Priority);

  // Elaborate on the connection thread so a broken problem is a synchronous
  // typed error, and workers only ever see loadable jobs.
  try {
    if (!Benchmark.empty()) {
      const BenchmarkDef *Def = findBenchmark(Benchmark);
      if (!Def)
        return makeErrorResponse(ErrorCode::NotFound,
                                 "no benchmark named '" + Benchmark +
                                     "' (se2gis list --json enumerates them)");
      Spec.Benchmark = Benchmark;
      Spec.Label = Benchmark;
      Spec.Prob = std::make_shared<const Problem>(loadBenchmark(*Def));
    } else {
      Spec.Label = "inline";
      Spec.Prob = std::make_shared<const Problem>(loadProblem(Source));
    }
  } catch (const UserError &E) {
    return makeErrorResponse(ErrorCode::BadRequest, E.what());
  }

  std::string Label = Spec.Label;
  std::string Id;
  switch (Queue.submit(std::move(Spec), Id, threadRequestId())) {
  case AdmitStatus::Admitted:
    break;
  case AdmitStatus::QueueFull:
    Queue.countRejected();
    return makeErrorResponse(ErrorCode::Overloaded,
                             "queue at capacity; retry later");
  case AdmitStatus::Draining:
    Queue.countRejected();
    return makeErrorResponse(ErrorCode::Draining,
                             "daemon is draining; no new work admitted");
  }
  logf(LogLevel::Info, "service", "%s submitted (%s, %s, budget %lld ms)",
       Id.c_str(), Label.c_str(), AlgoName.c_str(),
       static_cast<long long>(TimeoutMs));
  JsonValue Resp = makeOkResponse();
  Resp.set("job", JsonValue::str(Id));
  Resp.set("state", JsonValue::str(jobStateName(JobState::Queued)));
  return Resp;
}

namespace {

/// Renders a running job's live progress board as the `progress` object of
/// status/stats replies (round, candidate, lemmas, channel states).
JsonValue progressJson(const ProgressSnapshot &P) {
  JsonValue Prog = JsonValue::object();
  if (P.Algorithm[0])
    Prog.set("algorithm", JsonValue::str(P.Algorithm));
  if (P.Activity[0])
    Prog.set("activity", JsonValue::str(P.Activity));
  Prog.set("round", JsonValue::number(std::int64_t(P.Round)));
  Prog.set("refinements", JsonValue::number(std::int64_t(P.Refinements)));
  Prog.set("coarsenings", JsonValue::number(std::int64_t(P.Coarsenings)));
  Prog.set("lemmas", JsonValue::number(std::int64_t(P.Lemmas)));
  Prog.set("candidate_size", JsonValue::number(std::int64_t(P.CandidateSize)));
  if (P.Terms)
    Prog.set("terms", JsonValue::number(std::int64_t(P.Terms)));
  if (P.WitnessState[0])
    Prog.set("witness_channel", JsonValue::str(P.WitnessState));
  if (P.ChcState[0]) {
    JsonValue Chc = JsonValue::object();
    Chc.set("state", JsonValue::str(P.ChcState));
    Chc.set("rung", JsonValue::number(std::int64_t(P.ChcRung)));
    Chc.set("clauses", JsonValue::number(std::int64_t(P.ChcClauses)));
    Prog.set("chc_channel", std::move(Chc));
  }
  // Process-wide SMT cache hit rate at read time: with concurrent jobs the
  // counters are shared, so this is fleet context, not per-job accounting.
  PerfSnapshot Perf = snapshotPerf();
  std::uint64_t Hits = Perf.get(PerfCounter::CacheSmtHits);
  std::uint64_t Touches = Hits + Perf.get(PerfCounter::CacheSmtMisses);
  Prog.set("cache_smt_hit_rate",
           JsonValue::number(Touches ? static_cast<double>(Hits) /
                                           static_cast<double>(Touches)
                                     : 0.0));
  return Prog;
}

} // namespace

JsonValue Server::jobStateJson(const Job &J, bool WithResult) const {
  JsonValue Resp = makeOkResponse();
  Resp.set("job", JsonValue::str(J.Id));
  Resp.set("state", JsonValue::str(jobStateName(J.State)));
  Resp.set("label", JsonValue::str(J.Spec.Label));
  Resp.set("algorithm", JsonValue::str(algorithmName(J.Spec.Algorithm)));
  Resp.set("priority", JsonValue::number(std::int64_t(J.Spec.Priority)));
  if (J.Rid)
    Resp.set("submit_rid", JsonValue::number(std::int64_t(J.Rid)));
  if (J.State == JobState::Running && J.Progress)
    Resp.set("progress", progressJson(J.Progress->read()));
  if (J.State == JobState::Done || J.State == JobState::Cancelled) {
    // A job cancelled while still queued never started; its queue time is
    // its whole life.
    bool Started = J.StartAt.time_since_epoch().count() != 0;
    Resp.set("queue_ms", JsonValue::number(msBetween(
                             J.SubmitAt, Started ? J.StartAt : J.EndAt)));
    Resp.set("total_ms", JsonValue::number(msBetween(J.SubmitAt, J.EndAt)));
  }
  if (J.State == JobState::Done) {
    Resp.set("verdict", JsonValue::str(verdictName(J.Result.V)));
    Resp.set("elapsed_ms", JsonValue::number(J.Result.Stats.ElapsedMs));
    if (J.Result.Ev.Source != VerdictSource::None) {
      Resp.set("evidence",
               JsonValue::str(verdictSourceName(J.Result.Ev.Source)));
      Resp.set("evidence_channel", JsonValue::str(J.Result.Ev.Channel));
    }
    if (WithResult) {
      Resp.set("steps", JsonValue::str(J.Result.Stats.Steps));
      if (!J.Result.Detail.empty())
        Resp.set("detail", JsonValue::str(J.Result.Detail));
      if (J.Result.V == Verdict::Realizable && J.Spec.Prob)
        Resp.set("solution", JsonValue::str(solutionToString(
                                 *J.Spec.Prob, J.Result.Solution)));
    }
  }
  return Resp;
}

JsonValue Server::handleStatus(const JsonValue &Req, bool WithResult) {
  std::string Id = Req.getString("job");
  if (Id.empty())
    return makeErrorResponse(ErrorCode::BadRequest, "missing 'job' field");
  std::unique_ptr<Job> J = Queue.query(Id);
  if (!J)
    return makeErrorResponse(ErrorCode::NotFound, "no job '" + Id + "'");
  return jobStateJson(*J, WithResult);
}

JsonValue Server::handleCancel(const JsonValue &Req) {
  std::string Id = Req.getString("job");
  if (Id.empty())
    return makeErrorResponse(ErrorCode::BadRequest, "missing 'job' field");
  if (!Queue.cancel(Id))
    return makeErrorResponse(ErrorCode::NotFound, "no job '" + Id + "'");
  std::unique_ptr<Job> J = Queue.query(Id);
  JsonValue Resp = makeOkResponse();
  Resp.set("job", JsonValue::str(Id));
  Resp.set("state", JsonValue::str(jobStateName(J->State)));
  return Resp;
}

JsonValue Server::handleStats() {
  QueueStats QS = Queue.stats();
  PerfSnapshot Perf = snapshotPerf();
  JsonValue Resp = makeOkResponse();
  Resp.set("listen", JsonValue::str(BoundAddr.str()));
  Resp.set("workers", JsonValue::number(std::int64_t(WorkerCount)));
  Resp.set("queue_depth", JsonValue::number(std::int64_t(QS.QueueDepth)));
  Resp.set("in_flight", JsonValue::number(std::int64_t(QS.InFlight)));
  Resp.set("submitted", JsonValue::number(std::int64_t(QS.Submitted)));
  Resp.set("completed", JsonValue::number(std::int64_t(QS.Completed)));
  Resp.set("cancelled", JsonValue::number(std::int64_t(QS.Cancelled)));
  Resp.set("rejected", JsonValue::number(std::int64_t(QS.Rejected)));
  Resp.set("draining", JsonValue::boolean(QS.Draining));

  JsonValue ByVerdict = JsonValue::object();
  for (size_t V = 0; V < 4; ++V)
    ByVerdict.set(verdictName(static_cast<Verdict>(V)),
                  JsonValue::number(std::int64_t(QS.DoneByVerdict[V])));
  Resp.set("done_by_verdict", std::move(ByVerdict));

  // Live introspection: one entry per running job, with its progress board.
  JsonValue Running = JsonValue::array();
  for (const std::unique_ptr<Job> &J : Queue.runningJobs()) {
    JsonValue Entry = JsonValue::object();
    Entry.set("job", JsonValue::str(J->Id));
    Entry.set("label", JsonValue::str(J->Spec.Label));
    Entry.set("running_ms", JsonValue::number(msBetween(
                                J->StartAt, std::chrono::steady_clock::now())));
    if (J->Progress)
      Entry.set("progress", progressJson(J->Progress->read()));
    Running.push(std::move(Entry));
  }
  Resp.set("running", std::move(Running));

  JsonValue Cache = JsonValue::object();
  std::uint64_t Hits = Perf.get(PerfCounter::CacheSmtHits);
  std::uint64_t Misses = Perf.get(PerfCounter::CacheSmtMisses);
  Cache.set("mode", JsonValue::str(cacheModeName(cacheMode())));
  Cache.set("smt_hits", JsonValue::number(std::int64_t(Hits)));
  Cache.set("smt_misses", JsonValue::number(std::int64_t(Misses)));
  Cache.set("smt_hit_rate",
            JsonValue::number(Hits + Misses
                                  ? static_cast<double>(Hits) /
                                        static_cast<double>(Hits + Misses)
                                  : 0.0));
  Cache.set("sge_hits",
            JsonValue::number(std::int64_t(Perf.get(PerfCounter::CacheSgeHits))));
  Cache.set("bytes_written", JsonValue::number(std::int64_t(
                                 Perf.get(PerfCounter::CacheBytesWritten))));
  Resp.set("cache", std::move(Cache));

  HistogramSnapshot JobHist = JobLatency.snapshot();
  JsonValue Lat = JsonValue::object();
  Lat.set("count", JsonValue::number(std::int64_t(JobHist.Count)));
  Lat.set("p50_ms", JsonValue::number(JobHist.quantileMs(0.50)));
  Lat.set("p90_ms", JsonValue::number(JobHist.quantileMs(0.90)));
  Lat.set("p99_ms", JsonValue::number(JobHist.quantileMs(0.99)));
  Lat.set("max_ms", JsonValue::number(JobHist.maxMs()));
  Resp.set("job_latency", std::move(Lat));

  const HistogramSnapshot &Smt = Perf.hist(PerfHistogram::SmtCheckNs);
  JsonValue SmtLat = JsonValue::object();
  SmtLat.set("count", JsonValue::number(std::int64_t(Smt.Count)));
  SmtLat.set("p50_ms", JsonValue::number(Smt.quantileMs(0.50)));
  SmtLat.set("p99_ms", JsonValue::number(Smt.quantileMs(0.99)));
  Resp.set("smt_latency", std::move(SmtLat));
  return Resp;
}

JsonValue Server::handleDrain(const JsonValue &Req) {
  std::int64_t DeadlineMs = Req.getInt("deadline_ms", Config.DrainTimeoutMs);
  if (DeadlineMs > 0)
    Config.DrainTimeoutMs = DeadlineMs;
  QueueStats Final = drain();
  JsonValue Resp = makeOkResponse();
  Resp.set("drained", JsonValue::boolean(true));
  Resp.set("completed", JsonValue::number(std::int64_t(Final.Completed)));
  Resp.set("cancelled", JsonValue::number(std::int64_t(Final.Cancelled)));
  Resp.set("rejected", JsonValue::number(std::int64_t(Final.Rejected)));
  return Resp;
}

QueueStats Server::drain() {
  if (DrainStarted.exchange(true)) {
    // Someone else is draining: wait for them and report the same stats.
    std::unique_lock<std::mutex> Lock(DrainMutex);
    DrainCv.wait(Lock, [&] { return DrainDone; });
    return DrainStats;
  }

  logf(LogLevel::Info, "service",
       "drain: admission closed, waiting up to %lld ms for in-flight work",
       static_cast<long long>(Config.DrainTimeoutMs));
  Queue.beginDrain();
  if (!Queue.waitIdle(Config.DrainTimeoutMs)) {
    logf(LogLevel::Warn, "service",
         "drain: deadline expired, cancelling remaining jobs");
    Queue.cancelAll();
    // Cancellation is cooperative; the running jobs observe it at their
    // next poll point. Give them a bounded grace period rather than
    // waiting forever on a wedged job.
    Queue.waitIdle(5000);
  }
  Queue.shutdown();

  // Flush (fsync) the persistent store *after* the last job completed, so
  // a drain-then-restart never replays a torn tail that was reported
  // flushed.
  flushCache();
  if (!Config.Base.TracePath.empty())
    traceFlush();

  QueueStats Final = Queue.stats();
  logf(LogLevel::Info, "service",
       "drain: done (%llu completed, %llu cancelled, %llu rejected)",
       static_cast<unsigned long long>(Final.Completed),
       static_cast<unsigned long long>(Final.Cancelled),
       static_cast<unsigned long long>(Final.Rejected));

  Stop.store(true, std::memory_order_release);
  // Wake the accept loop out of poll() so run() can join it.
  if (WakePipe[1] >= 0) {
    char B = 'w';
    [[maybe_unused]] ssize_t W = ::write(WakePipe[1], &B, 1);
  }

  {
    std::lock_guard<std::mutex> Lock(DrainMutex);
    DrainStats = Final;
    DrainDone = true;
  }
  DrainCv.notify_all();
  return Final;
}

void Server::workerLoop() {
  while (std::shared_ptr<Job> J = Queue.pop())
    runJob(J);
}

void Server::runJob(const std::shared_ptr<Job> &J) {
  // Re-bind the submitting request's id on this worker thread and install
  // the job's progress board: everything the run logs, traces, or records
  // correlates back to the request, and the solver's publish points become
  // live (they publish through the thread-local board pointer).
  RequestIdScope RidScope(J->Rid);
  ProgressBoardScope BoardScope(J->Progress.get());
  progressPublish([&](ProgressSnapshot &P) {
    progressSetStr(P.Algorithm, algorithmName(J->Spec.Algorithm));
    progressSetStr(P.Activity, "starting");
    P.UpdatedNs = detail::traceNowNs();
  });
  flightRecord(FlightKind::Mark, "job.start", detail::traceNowNs(), 0,
               J->Seq, J->Spec.Label.c_str());

  TraceSpan Span("service.job", "service");
  if (Span.active()) {
    Span.arg("job", J->Id);
    Span.arg("label", J->Spec.Label);
    Span.arg("algorithm", algorithmName(J->Spec.Algorithm));
    Span.arg("rid", J->Rid);
  }
  SolverConfig Cfg = Config.Base;
  Cfg.Algo.TimeoutMs = J->Spec.TimeoutMs;
  Cfg.Algo.Token = J->Token;
  Cfg.Verbose = false;

  SynthesisTask Task(J->Spec.Prob, J->Spec.Algorithm);
  Outcome R = Task.run(Cfg); // never throws; failures become Verdict::Failed

  if (Span.active())
    Span.arg("verdict", verdictName(R.V));
  flightRecord(FlightKind::Mark, "job.done", detail::traceNowNs(), 0, J->Seq,
               verdictName(R.V));
  logf(LogLevel::Info, "service", "%s %s %s (%.1f ms)", J->Id.c_str(),
       J->Spec.Label.c_str(), verdictName(R.V), R.Stats.ElapsedMs);

  // A Timeout verdict or a mid-run cancellation ships its post-mortem: the
  // rings still hold the job's last moments at this point.
  if (!Config.FlightDir.empty() &&
      (R.V == Verdict::Timeout || J->Token.cancelRequested())) {
    std::string Path = Config.FlightDir + "/flight-" + J->Id + ".json";
    if (flightDumpToFile(Path))
      logf(LogLevel::Info, "service", "%s flight dump: %s", J->Id.c_str(),
           Path.c_str());
    else
      logf(LogLevel::Warn, "service", "%s flight dump failed: %s",
           J->Id.c_str(), Path.c_str());
  }

  Queue.complete(J, std::move(R));
  JobLatency.recordNs(static_cast<std::uint64_t>(
      msBetween(J->SubmitAt, std::chrono::steady_clock::now()) * 1e6));
}

void Server::run() {
  if (AcceptThread.joinable())
    AcceptThread.join();
  // Close the listen socket now, not at destruction: a bound-but-unaccepted
  // socket keeps letting clients connect into the backlog, where they would
  // wait on a daemon that will never serve them.
  closeFd(ListenFd);
  ListenFd = -1;
  if (MetricsThread.joinable())
    MetricsThread.join(); // exits on its next 200ms Stop poll
  closeFd(MetricsFd);
  MetricsFd = -1;
  for (std::thread &W : WorkerThreads)
    if (W.joinable())
      W.join();
  // Stop reading on every live connection (SHUT_RD unblocks readFrame with
  // EOF but leaves the write half open, so an in-progress response — the
  // drain reply in particular — still reaches its client). Each connection
  // thread closes its own fd on the way out; here we only join them.
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (int Fd : ConnFds)
      ::shutdown(Fd, SHUT_RD);
  }
  for (std::thread &T : ConnThreads)
    if (T.joinable())
      T.join();
  ConnFds.clear();
}
