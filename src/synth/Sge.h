//===- Sge.h - Systems of guarded functional equations ----------*- C++-*-===//
///
/// \file
/// Definition 4.2: a system of guarded functional equations (SGE) is a
/// finite set of constraints `p_i => l_i = r_i` where the p_i and r_i are
/// unknown-free scalar terms and the l_i may contain unknown applications.
/// SGEs are the recursion-free approximations E(T, P) that both loops of
/// SE²GIS operate on.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SYNTH_SGE_H
#define SE2GIS_SYNTH_SGE_H

#include "ast/Term.h"

#include <string>
#include <vector>

namespace se2gis {

/// One guarded equation `Guard => Lhs = Rhs`.
struct SgeEquation {
  TermPtr Guard; ///< boolean, unknown-free
  TermPtr Lhs;   ///< may contain Unknown applications
  TermPtr Rhs;   ///< unknown-free
  /// Index of the originating term t in the approximation's term set T
  /// (Definition 4.6 pairs each equation with its term).
  size_t TermIndex = 0;
};

/// A system of guarded functional equations.
struct Sge {
  std::vector<SgeEquation> Eqns;

  std::string str() const;
};

} // namespace se2gis

#endif // SE2GIS_SYNTH_SGE_H
