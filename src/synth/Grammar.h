//===- Grammar.h - Synthesis grammars for unknowns --------------*- C++-*-===//
///
/// \file
/// The grammar used when synthesizing unknown functions and invariant
/// predicates, following the paper's Appendix B.4: predicates are boolean
/// combinations of (in)equalities over an integer sort `Ix` built from input
/// variables, constants, negation and addition; `min`, `max`, `*c`, `div c`,
/// `abs`, `mod c` and `ite` enter the integer sort only when the respective
/// operator appears in the user-provided specification.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SYNTH_GRAMMAR_H
#define SE2GIS_SYNTH_GRAMMAR_H

#include "ast/Term.h"
#include "lang/Program.h"

#include <set>

namespace se2gis {

/// Grammar configuration shared by all unknowns of a problem.
struct GrammarConfig {
  /// Extra integer operators enabled because they occur in the input.
  bool AllowMinMax = false;
  bool AllowMul = false;
  bool AllowDiv = false;
  bool AllowAbs = false;
  bool AllowMod = false;
  /// Conditionals in integer terms (always available for unknown functions;
  /// the flag gates them for invariant predicates).
  bool AllowIte = true;
  /// The constant pool (`Ic`). Always contains 0 and 1.
  std::set<long long> Constants = {0, 1};

  /// Adds \p C to the constant pool.
  void addConstant(long long C) { Constants.insert(C); }
};

/// Scans \p Prog's function bodies (and \p P's components) for operators and
/// integer literals, enabling the corresponding grammar extensions — the
/// paper's rule that e.g. `(min Ix Ix)` is added "whenever their respective
/// operators appear in the user-provided specification".
GrammarConfig inferGrammar(const Problem &P);

} // namespace se2gis

#endif // SE2GIS_SYNTH_GRAMMAR_H
