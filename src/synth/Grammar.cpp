//===- Grammar.cpp --------------------------------------------------------===//

#include "synth/Grammar.h"

using namespace se2gis;

namespace {

void scanTerm(const TermPtr &T, GrammarConfig &G) {
  visitTerm(T, [&](const TermPtr &N) {
    if (N->getKind() == TermKind::IntLit) {
      G.addConstant(N->getIntValue());
      return true;
    }
    if (N->getKind() != TermKind::Op)
      return true;
    switch (N->getOp()) {
    case OpKind::Min:
    case OpKind::Max:
      G.AllowMinMax = true;
      break;
    case OpKind::Mul:
      G.AllowMul = true;
      break;
    case OpKind::Div:
      G.AllowDiv = true;
      break;
    case OpKind::Mod:
      G.AllowMod = true;
      break;
    case OpKind::Abs:
      G.AllowAbs = true;
      break;
    default:
      break;
    }
    return true;
  });
}

void scanFunction(const RecFunction &F, GrammarConfig &G) {
  if (!F.isScheme()) {
    scanTerm(F.getBody(), G);
    return;
  }
  for (unsigned I = 0; I < F.getMatched()->numConstructors(); ++I)
    if (const SchemeRule *R = F.findRule(I))
      scanTerm(R->Body, G);
}

} // namespace

GrammarConfig se2gis::inferGrammar(const Problem &P) {
  GrammarConfig G;
  for (const std::string &Name : P.Prog->functionNames())
    scanFunction(*P.Prog->findFunction(Name), G);
  return G;
}
