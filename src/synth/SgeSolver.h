//===- SgeSolver.h - CEGIS synthesis for SGEs -------------------*- C++-*-===//
///
/// \file
/// Solves the synthesis problem of a system of guarded functional equations
/// (the role CVC4's SyGuS engine plays for Synduce). The algorithm is
/// counterexample-guided:
///
///   1. Ground the equations on the accumulated example points and solve
///      them in EUF+LIA with the unknowns as uninterpreted functions. An
///      UNSAT answer means *no* functions at all satisfy the system at these
///      points — evidence of unrealizability that the caller turns into a
///      witness via Algorithm 1.
///   2. From the EUF model, read one input/output table per unknown and
///      generalize each table into a grammar term with the PBE enumerator
///      (blocking unhelpful models and escalating term size on failure).
///   3. Verify the joint candidate against the full (universally
///      quantified) system with Z3; a countermodel becomes a new point.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SYNTH_SGESOLVER_H
#define SE2GIS_SYNTH_SGESOLVER_H

#include "eval/Interp.h"
#include "smt/Solver.h"
#include "support/Stopwatch.h"
#include "synth/Enumerator.h"
#include "synth/Sge.h"

#include <optional>

namespace se2gis {

/// Outcome of an SGE synthesis attempt.
enum class SgeStatus : unsigned char {
  /// A verified solution was found.
  Solved,
  /// The grounded system is unsatisfiable in EUF: the SGE has no solution
  /// (the accumulated points witness unrealizability).
  Infeasible,
  /// Budget exhausted / enumeration failed; no verdict.
  Unknown
};

/// Result of \c SgeSolver::solve.
struct SgeResult {
  SgeStatus Status = SgeStatus::Unknown;
  /// The verified solution when Solved; on Unknown (budget exhausted), the
  /// last candidate tried — surfaced as partial progress in RunStats.
  UnknownBindings Solution;
  /// Counterexample rounds used (CEGIS iterations).
  int Rounds = 0;
};

/// Replaces every Unknown application in \p T by the bound definition with
/// its parameters substituted; unbound unknowns are left in place.
TermPtr applySolution(const TermPtr &T, const UnknownBindings &Defs);

/// Builds the literal term denoting \p V (ints, bools, tuples).
TermPtr valueToTerm(const ValuePtr &V);

/// A default ("simplest") term of scalar type \p Ty: 0 / false / tuples
/// thereof.
TermPtr mkDefaultTerm(const TypePtr &Ty);

/// CEGIS solver for systems of guarded functional equations.
class SgeSolver {
public:
  SgeSolver(std::vector<UnknownSig> Unknowns, GrammarConfig Config);

  /// Attempts to solve \p System within \p Budget.
  SgeResult solve(const Sge &System, const Deadline &Budget);

  /// Canonical parameter variables for unknown \p Name (used to report
  /// solutions and evaluate them).
  const std::vector<VarPtr> &paramsOf(const std::string &Name) const;

  /// Z3 timeout for each individual query (ms).
  int PerQueryTimeoutMs = 1000;
  /// PBE size ladder: start, step, limit.
  int PbeStartSize = 7;
  int PbeMaxSize = 13;
  /// EUF models blocked per size step before escalating.
  int MaxBlockedModels = 3;
  /// Anchor EUF models to the previous candidate's predictions (ablatable;
  /// see DESIGN.md "SGE solving").
  bool AnchorToCandidate = true;

private:
  struct UnknownInfo {
    UnknownSig Sig;
    std::vector<VarPtr> Params;
    std::vector<TermPtr> Leaves; // scalar leaves for the enumerator
  };

  /// Synthesizes candidates from the current points. \p Current anchors the
  /// EUF model (soft equalities to the previous candidate's predictions).
  /// Returns nullopt and sets \p Infeasible when the grounded system is
  /// EUF-unsat.
  std::optional<UnknownBindings>
  synthesizeFromPoints(const Sge &System, const std::vector<SmtModel> &Points,
                       const UnknownBindings &Current, const Deadline &Budget,
                       bool &Infeasible);

  const UnknownInfo *findInfo(const std::string &Name) const;

  std::vector<UnknownInfo> Infos;
  GrammarConfig Config;
};

} // namespace se2gis

#endif // SE2GIS_SYNTH_SGESOLVER_H
