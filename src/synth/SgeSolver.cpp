//===- SgeSolver.cpp ------------------------------------------------------===//

#include "synth/SgeSolver.h"

#include "ast/Simplify.h"
#include "cache/CacheConfig.h"
#include "cache/Canonical.h"
#include "cache/SgeSolutionCache.h"
#include "support/Diagnostics.h"
#include "support/Log.h"
#include "support/Trace.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

using namespace se2gis;

// The CEGIS loop narrates itself at debug verbosity (SE2GIS_LOG=debug, or
// the legacy SE2GIS_DEBUG=1 which SolverConfig::fromEnv maps onto it).

// --- Sge printing -------------------------------------------------------===//

std::string Sge::str() const {
  std::ostringstream OS;
  for (const SgeEquation &E : Eqns) {
    OS << E.Guard->str() << "  =>  " << E.Lhs->str() << " = " << E.Rhs->str()
       << '\n';
  }
  return OS.str();
}

// --- Helpers ------------------------------------------------------------===//

TermPtr se2gis::valueToTerm(const ValuePtr &V) {
  switch (V->getKind()) {
  case Value::Kind::Int:
    return mkIntLit(V->getInt());
  case Value::Kind::Bool:
    return mkBoolLit(V->getBool());
  case Value::Kind::Tuple: {
    std::vector<TermPtr> Elems;
    for (const ValuePtr &E : V->getElems())
      Elems.push_back(valueToTerm(E));
    return mkTuple(std::move(Elems));
  }
  case Value::Kind::Data:
    fatalError("cannot lift a datatype value into a scalar term");
  }
  fatalError("bad value kind");
}

TermPtr se2gis::mkDefaultTerm(const TypePtr &Ty) {
  if (Ty->isInt())
    return mkIntLit(0);
  if (Ty->isBool())
    return mkFalse();
  if (Ty->isTuple()) {
    std::vector<TermPtr> Elems;
    for (const TypePtr &E : Ty->tupleElems())
      Elems.push_back(mkDefaultTerm(E));
    return mkTuple(std::move(Elems));
  }
  fatalError("no default term for type " + Ty->str());
}

TermPtr se2gis::applySolution(const TermPtr &T, const UnknownBindings &Defs) {
  return rewriteBottomUp(T, [&](const TermPtr &N) -> TermPtr {
    if (N->getKind() != TermKind::Unknown)
      return N;
    auto It = Defs.find(N->getCallee());
    if (It == Defs.end())
      return N;
    const UnknownDef &Def = It->second;
    assert(Def.Params.size() == N->numArgs() && "unknown arity mismatch");
    Substitution Map;
    for (size_t I = 0; I < Def.Params.size(); ++I)
      Map.emplace_back(Def.Params[I]->Id, N->getArg(I));
    return substitute(Def.Body, Map);
  });
}

namespace {

/// Appends scalar leaf terms for parameter \p Root (projecting tuples).
void collectLeaves(const TermPtr &Root, std::vector<TermPtr> &Out) {
  const TypePtr &Ty = Root->getType();
  if (Ty->isTuple()) {
    for (unsigned I = 0; I < Ty->tupleElems().size(); ++I)
      collectLeaves(mkProj(Root, I), Out);
    return;
  }
  Out.push_back(Root);
}

/// Builds a substitution sending every assigned variable of \p M to its
/// literal term.
Substitution substOfModel(const SmtModel &M) {
  Substitution Map;
  for (const auto &[V, Val] : M.assignments())
    Map.emplace_back(V->Id, valueToTerm(Val));
  return Map;
}

bool modelCoversVars(const SmtModel &M, const TermPtr &T) {
  for (const VarPtr &V : freeVars(T))
    if (!M.lookup(V->Id))
      return false;
  return true;
}

} // namespace

// --- SgeSolver ----------------------------------------------------------===//

SgeSolver::SgeSolver(std::vector<UnknownSig> Unknowns, GrammarConfig Config)
    : Config(std::move(Config)) {
  for (UnknownSig &Sig : Unknowns) {
    UnknownInfo Info;
    Info.Sig = Sig;
    for (size_t I = 0; I < Sig.ArgTypes.size(); ++I) {
      VarPtr P =
          namedVar("p" + std::to_string(I) + "_" + Sig.Name, Sig.ArgTypes[I]);
      Info.Params.push_back(P);
      collectLeaves(mkVar(P), Info.Leaves);
    }
    Infos.push_back(std::move(Info));
  }
}

const SgeSolver::UnknownInfo *
SgeSolver::findInfo(const std::string &Name) const {
  for (const UnknownInfo &I : Infos)
    if (I.Sig.Name == Name)
      return &I;
  return nullptr;
}

const std::vector<VarPtr> &
SgeSolver::paramsOf(const std::string &Name) const {
  const UnknownInfo *I = findInfo(Name);
  if (!I)
    fatalError("unknown '" + Name + "' is not registered with the solver");
  return I->Params;
}

std::optional<UnknownBindings>
SgeSolver::synthesizeFromPoints(const Sge &System,
                                const std::vector<SmtModel> &Points,
                                const UnknownBindings &Current,
                                const Deadline &Budget, bool &Infeasible) {
  Infeasible = false;

  // Ground the system on the points.
  std::vector<TermPtr> Ground;
  for (const SmtModel &P : Points) {
    for (const SgeEquation &E : System.Eqns) {
      if (!modelCoversVars(P, E.Guard) || !modelCoversVars(P, E.Lhs) ||
          !modelCoversVars(P, E.Rhs))
        continue;
      Substitution Map = substOfModel(P);
      TermPtr Guard = simplify(substitute(E.Guard, Map));
      if (Guard->getKind() == TermKind::BoolLit && !Guard->getBoolValue())
        continue;
      TermPtr Lhs = simplify(substitute(E.Lhs, Map));
      TermPtr Rhs = simplify(substitute(E.Rhs, Map));
      TermPtr Constraint = mkEq(Lhs, Rhs);
      if (Guard->getKind() != TermKind::BoolLit)
        Constraint = mkOp(OpKind::Implies, {Guard, Constraint});
      Ground.push_back(std::move(Constraint));
    }
  }

  UnknownBindings Defs;
  if (Ground.empty()) {
    // Unconstrained: default everything.
    for (const UnknownInfo &I : Infos)
      Defs[I.Sig.Name] = UnknownDef{I.Params, mkDefaultTerm(I.Sig.RetTy)};
    return Defs;
  }

  // Collect the distinct unknown applications appearing in the constraints.
  std::vector<TermPtr> Occurrences;
  for (const TermPtr &G : Ground) {
    visitTerm(G, [&](const TermPtr &N) {
      if (N->getKind() != TermKind::Unknown)
        return true;
      for (const TermPtr &Known : Occurrences)
        if (termEquals(Known, N))
          return true;
      Occurrences.push_back(N);
      return true;
    });
  }

  // One session region for the whole CEGIS attempt loop below.
  SmtSessionScope SessionScope;

  // One live query per size tier: the ground constraints, candidate anchors,
  // and value requests are asserted once, and each rejected model's blocker
  // is added incrementally on top (CEGIS counterexample accumulation) —
  // the memoization-cache key is unchanged, since it is computed from the
  // accumulated term lists, not from how they were asserted.
  std::vector<TermPtr> Blockers;
  std::optional<SmtQuery> Q;
  auto BuildQuery = [&]() {
    Q.emplace();
    Q->setDeadline(Budget);
    for (const TermPtr &G : Ground)
      Q->add(G);
    for (const TermPtr &B : Blockers)
      Q->add(B);
    // Anchor underconstrained cells to the previous candidate's
    // predictions (soft): without this, Z3 fills them with arbitrary
    // values that no grammar term can generalize. Only meaningful on the
    // first model of a tier — once blockers exist, the anchors have
    // already been contradicted.
    if (AnchorToCandidate && !Current.empty() && Blockers.empty()) {
      for (const TermPtr &Occ : Occurrences) {
        TermPtr Applied = simplify(applySolution(Occ, Current));
        if (containsUnknown(Applied) || !freeVars(Applied).empty())
          continue;
        ValuePtr Predicted = evalScalarTerm(Applied, {});
        Q->addSoft(mkEq(Occ, valueToTerm(Predicted)));
      }
    }
    // Request the IO of every occurrence (arguments may contain nested
    // unknowns, so their values come from the model too).
    for (const TermPtr &Occ : Occurrences) {
      Q->requestValue(Occ);
      for (const TermPtr &A : Occ->getArgs())
        Q->requestValue(A);
    }
  };

  for (int Size = PbeStartSize; Size <= PbeMaxSize; Size += 2) {
    BuildQuery();
    for (int Attempt = 0; Attempt < MaxBlockedModels; ++Attempt) {
      if (Budget.expired())
        return std::nullopt;

      std::vector<ValuePtr> Vals;
      SmtResult R = Q->checkSat(PerQueryTimeoutMs, nullptr, &Vals);
      logf(LogLevel::Debug, "sge", "euf size=%d attempt=%d blockers=%zu -> %d",
           Size, Attempt, Blockers.size(), (int)R);
      if (R == SmtResult::Unknown)
        return std::nullopt;
      if (R == SmtResult::Unsat) {
        if (Blockers.empty()) {
          Infeasible = true;
          return std::nullopt;
        }
        // Every generalizable model was blocked; start over with a larger
        // size and no blockers.
        Blockers.clear();
        break;
      }

      // Build the IO tables.
      std::map<std::string, std::vector<PbeExample>> Tables;
      size_t Cursor = 0;
      std::vector<TermPtr> BlockerParts;
      for (const TermPtr &Occ : Occurrences) {
        ValuePtr Out = Vals[Cursor++];
        const UnknownInfo *Info = findInfo(Occ->getCallee());
        assert(Info && "unregistered unknown in SGE");
        PbeExample Ex;
        for (size_t I = 0; I < Occ->numArgs(); ++I)
          Ex.Inputs[Info->Params[I]->Id] = Vals[Cursor++];
        Ex.Output = Out;
        Tables[Occ->getCallee()].push_back(std::move(Ex));
        BlockerParts.push_back(mkNot(mkEq(Occ, valueToTerm(Out))));
      }

      // Generalize each table.
      UnknownBindings Candidate;
      bool AllOk = true;
      for (const UnknownInfo &I : Infos) {
        Enumerator En(Config, I.Leaves);
        std::vector<PbeExample> Examples;
        auto TableIt = Tables.find(I.Sig.Name);
        if (TableIt != Tables.end())
          Examples = TableIt->second;
        auto Body = En.synthesize(I.Sig.RetTy, Examples, Size, Budget);
        if (!Body) {
          logf(LogLevel::Debug, "sge", "pbe failed for %s (%zu examples)",
               I.Sig.Name.c_str(), Examples.size());
          AllOk = false;
          break;
        }
        Candidate[I.Sig.Name] = UnknownDef{I.Params, std::move(*Body)};
      }
      if (AllOk)
        return Candidate;

      // Block this model's IO table and try another: the blocker is both
      // carried for future tiers and asserted incrementally into the live
      // query. The first-model soft anchors no longer apply (a blocked
      // model means the candidate's predictions were unusable), so drop
      // them from checking and cache keying rather than rebuilding.
      TermPtr Blocker = mkOrList(std::move(BlockerParts));
      Blockers.push_back(Blocker);
      Q->add(Blocker);
      Q->disableSoft();
    }
  }
  return std::nullopt;
}

SgeResult SgeSolver::solve(const Sge &System, const Deadline &Budget) {
  SgeResult Result;
  std::vector<SmtModel> Points;

  // Warm start: a previously solved, structurally equal system (the
  // refinement/coarsening loops re-emit them, and portfolio members emit
  // them concurrently) seeds the initial candidate. The candidate still
  // goes through full round-0 verification below, so a wrong or stale
  // entry costs one verification round and nothing else.
  Hash128 SystemKey{};
  bool HaveKey = false;
  UnknownBindings Candidate;
  if (cacheEnabled()) {
    std::vector<TermPtr> EqTerms;
    for (const SgeEquation &E : System.Eqns)
      EqTerms.push_back(
          mkOp(OpKind::Implies, {E.Guard, mkEq(E.Lhs, E.Rhs)}));
    SystemKey = canonicalSystemHash(EqTerms);
    SystemKey = hashGrammarConfig(SystemKey, Config);
    for (const UnknownInfo &I : Infos)
      SystemKey = hashUnknownSig(SystemKey, I.Sig);
    HaveKey = true;
    if (auto Hit = sgeSolutionCache().lookup(SystemKey)) {
      // Re-express the cached bodies over this solver's parameters.
      for (const UnknownInfo &I : Infos) {
        auto It = Hit->Solution.find(I.Sig.Name);
        if (It == Hit->Solution.end() ||
            It->second.Params.size() != I.Params.size()) {
          Candidate.clear();
          break;
        }
        Substitution Map;
        for (size_t K = 0; K < I.Params.size(); ++K)
          Map.emplace_back(It->second.Params[K]->Id, mkVar(I.Params[K]));
        Candidate[I.Sig.Name] =
            UnknownDef{I.Params, substitute(It->second.Body, Map)};
      }
    }
  }

  // Initial candidate: defaults (round 0 behaves like classic CEGIS).
  if (Candidate.size() != Infos.size()) {
    Candidate.clear();
    for (const UnknownInfo &I : Infos)
      Candidate[I.Sig.Name] = UnknownDef{I.Params, mkDefaultTerm(I.Sig.RetTy)};
  }

  const int MaxRounds = 64;
  for (int Round = 0; Round < MaxRounds; ++Round) {
    TraceSpan Span("sge.round", "sge");
    if (Span.active()) {
      Span.arg("round", static_cast<std::int64_t>(Round));
      Span.arg("points", static_cast<std::uint64_t>(Points.size()));
    }
    if (Budget.expired()) {
      Result.Solution = std::move(Candidate); // partial: last candidate tried
      return Result;
    }
    Result.Rounds = Round + 1;

    // Verify the candidate on the full system.
    bool Failed = false;
    for (const SgeEquation &E : System.Eqns) {
      TermPtr Lhs = simplify(applySolution(E.Lhs, Candidate));
      TermPtr Formula =
          simplify(mkAndList({E.Guard, mkNot(mkEq(Lhs, E.Rhs))}));
      if (Formula->getKind() == TermKind::BoolLit &&
          !Formula->getBoolValue())
        continue;
      SmtModel Counter;
      SmtResult R = quickCheck({Formula}, PerQueryTimeoutMs, &Counter, &Budget);
      if (R == SmtResult::Unsat)
        continue;
      if (R == SmtResult::Unknown) {
        if (logEnabled(LogLevel::Debug))
          logf(LogLevel::Debug, "sge", "verify unknown on eqn %zu: %s",
               E.TermIndex, Formula->str().c_str());
        Result.Solution = std::move(Candidate);
        return Result; // give up with Unknown status
      }
      // The substituted candidate may have erased variables of the original
      // equation from the formula (e.g. a constant candidate); complete the
      // model with defaults so the point still grounds the equation.
      for (const TermPtr &Part : {E.Guard, E.Lhs, E.Rhs})
        for (const VarPtr &V : freeVars(Part))
          if (!Counter.lookup(V->Id))
            Counter.bind(V, evalScalarTerm(mkDefaultTerm(V->Ty), {}));
      Points.push_back(std::move(Counter));
      Failed = true;
      break;
    }
    if (!Failed) {
      Result.Status = SgeStatus::Solved;
      if (HaveKey)
        sgeSolutionCache().insert(SystemKey, SgeCacheEntry{Candidate});
      Result.Solution = std::move(Candidate);
      return Result;
    }
    if (logEnabled(LogLevel::Debug)) {
      logf(LogLevel::Debug, "sge", "round %d: candidate rejected; points=%zu",
           Round, Points.size());
      for (const auto &[Name, Def] : Candidate)
        logf(LogLevel::Debug, "sge", "  %s = %s", Name.c_str(),
             simplify(Def.Body)->str().c_str());
    }

    bool Infeasible = false;
    auto Next =
        synthesizeFromPoints(System, Points, Candidate, Budget, Infeasible);
    if (Infeasible) {
      Result.Status = SgeStatus::Infeasible;
      return Result;
    }
    if (!Next) {
      Result.Solution = std::move(Candidate);
      return Result; // Unknown
    }
    Candidate = std::move(*Next);
  }
  Result.Solution = std::move(Candidate);
  return Result;
}
