//===- Enumerator.cpp -----------------------------------------------------===//

#include "synth/Enumerator.h"

#include "ast/Simplify.h"
#include "cache/CacheConfig.h"
#include "cache/Canonical.h"
#include "cache/SgeSolutionCache.h"
#include "cache/TermIO.h"
#include "support/Counters.h"
#include "support/Diagnostics.h"
#include "support/PerfCounters.h"
#include "support/Stopwatch.h"
#include "support/Trace.h"

#include <cassert>
#include <cstdlib>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace se2gis;

ValuePtr se2gis::evalScalarTerm(const TermPtr &T, const Env &E) {
  switch (T->getKind()) {
  case TermKind::Var: {
    auto It = E.find(T->getVar()->Id);
    if (It == E.end())
      userError("unbound variable in scalar evaluation: " + T->getVar()->Name);
    return It->second;
  }
  case TermKind::IntLit:
    return Value::mkInt(T->getIntValue());
  case TermKind::BoolLit:
    return Value::mkBool(T->getBoolValue());
  case TermKind::Tuple: {
    std::vector<ValuePtr> Elems;
    for (const TermPtr &A : T->getArgs())
      Elems.push_back(evalScalarTerm(A, E));
    return Value::mkTuple(std::move(Elems));
  }
  case TermKind::Proj: {
    ValuePtr V = evalScalarTerm(T->getArg(0), E);
    return V->getElems()[T->getIndex()];
  }
  case TermKind::Op: {
    OpKind Op = T->getOp();
    if (Op == OpKind::Ite) {
      ValuePtr C = evalScalarTerm(T->getArg(0), E);
      return evalScalarTerm(C->getBool() ? T->getArg(1) : T->getArg(2), E);
    }
    if (Op == OpKind::And || Op == OpKind::Or) {
      bool IsAnd = Op == OpKind::And;
      for (const TermPtr &A : T->getArgs())
        if (evalScalarTerm(A, E)->getBool() != IsAnd)
          return Value::mkBool(!IsAnd);
      return Value::mkBool(IsAnd);
    }
    auto IntArg = [&](size_t K) {
      return evalScalarTerm(T->getArg(K), E)->getInt();
    };
    switch (Op) {
    case OpKind::Add:
      return Value::mkInt(IntArg(0) + IntArg(1));
    case OpKind::Sub:
      return Value::mkInt(IntArg(0) - IntArg(1));
    case OpKind::Neg:
      return Value::mkInt(-IntArg(0));
    case OpKind::Mul:
      return Value::mkInt(IntArg(0) * IntArg(1));
    case OpKind::Div:
      return Value::mkInt(euclidDiv(IntArg(0), IntArg(1)));
    case OpKind::Mod:
      return Value::mkInt(euclidMod(IntArg(0), IntArg(1)));
    case OpKind::Min:
      return Value::mkInt(std::min(IntArg(0), IntArg(1)));
    case OpKind::Max:
      return Value::mkInt(std::max(IntArg(0), IntArg(1)));
    case OpKind::Abs:
      return Value::mkInt(std::abs(IntArg(0)));
    case OpKind::Lt:
      return Value::mkBool(IntArg(0) < IntArg(1));
    case OpKind::Le:
      return Value::mkBool(IntArg(0) <= IntArg(1));
    case OpKind::Gt:
      return Value::mkBool(IntArg(0) > IntArg(1));
    case OpKind::Ge:
      return Value::mkBool(IntArg(0) >= IntArg(1));
    case OpKind::Eq:
      return Value::mkBool(valueEquals(evalScalarTerm(T->getArg(0), E),
                                       evalScalarTerm(T->getArg(1), E)));
    case OpKind::Ne:
      return Value::mkBool(!valueEquals(evalScalarTerm(T->getArg(0), E),
                                        evalScalarTerm(T->getArg(1), E)));
    case OpKind::Not:
      return Value::mkBool(!evalScalarTerm(T->getArg(0), E)->getBool());
    case OpKind::Implies:
      return Value::mkBool(!evalScalarTerm(T->getArg(0), E)->getBool() ||
                           evalScalarTerm(T->getArg(1), E)->getBool());
    default:
      fatalError("unhandled operator in scalar evaluation");
    }
  }
  default:
    fatalError("non-scalar node in grammar term evaluation: " + T->str());
  }
}

// --- Enumerator ---------------------------------------------------------===//

Enumerator::Enumerator(const GrammarConfig &Config, std::vector<TermPtr> Leaves)
    : Config(Config), Leaves(std::move(Leaves)) {}

namespace {

/// A pool entry: a deduplicated candidate term.
struct Candidate {
  TermPtr T;
};

/// 64-bit observational-equivalence signature: the combined hash of the
/// term's outputs on every example. Replaces the old string signature
/// ("v1|v2|...|"), which allocated on every candidate in the hottest loop;
/// candidate-vs-target matches are confirmed with \c valueEquals, so a
/// hash collision can only over-prune, never produce a wrong solution.
std::uint64_t signatureHashOf(const TermPtr &T,
                              const std::vector<PbeExample> &Examples) {
  std::uint64_t H = 1469598103934665603ULL;
  for (const PbeExample &Ex : Examples)
    H = hashCombine(H, valueHash(evalScalarTerm(T, Ex.Inputs)));
  return H;
}

/// The old allocation-heavy string signature, kept for the debug
/// cross-check below.
std::string signatureStringOf(const TermPtr &T,
                              const std::vector<PbeExample> &Examples) {
  std::ostringstream OS;
  for (const PbeExample &Ex : Examples)
    OS << evalScalarTerm(T, Ex.Inputs)->str() << '|';
  return OS.str();
}

/// SE2GIS_CHECK_SIGNATURES=1 cross-checks every hash signature against the
/// string form and aborts on a collision (distinct strings, equal hash).
bool checkSignaturesEnabled() {
  static const bool Enabled = [] {
    const char *E = std::getenv("SE2GIS_CHECK_SIGNATURES");
    return E && *E && *E != '0';
  }();
  return Enabled;
}

} // namespace

std::optional<TermPtr>
Enumerator::synthesize(const TypePtr &OutTy,
                       const std::vector<PbeExample> &Examples, int MaxSize,
                       const Deadline &Budget) {
  if (!OutTy->isTuple())
    return synthesizeScalar(OutTy, Examples, MaxSize, Budget);

  // Component-wise synthesis for tuple outputs.
  const std::vector<TypePtr> &Elems = OutTy->tupleElems();
  std::vector<TermPtr> Parts;
  for (size_t I = 0; I < Elems.size(); ++I) {
    std::vector<PbeExample> Proj;
    for (const PbeExample &Ex : Examples) {
      assert(Ex.Output->isTuple() && "tuple example expected");
      Proj.push_back(PbeExample{Ex.Inputs, Ex.Output->getElems()[I]});
    }
    auto Part = synthesize(Elems[I], Proj, MaxSize, Budget);
    if (!Part)
      return std::nullopt;
    Parts.push_back(std::move(*Part));
  }
  return mkTuple(std::move(Parts));
}

std::optional<TermPtr>
Enumerator::synthesizeScalar(const TypePtr &OutTy,
                             const std::vector<PbeExample> &Examples,
                             int MaxSize, const Deadline &Budget) {
  bool WantInt = OutTy->isInt();

  // With no examples any term works; return the simplest.
  if (Examples.empty())
    return WantInt ? mkIntLit(0) : mkFalse();

  // Memo key: grammar ⊎ size bound ⊎ output type ⊎ per-example leaf values
  // and outputs. Leaf values (not leaf identities) make entries transfer
  // between Enumerator instances over different variables — a term's
  // behavior on the examples, and hence whether any term of a given size
  // fits, is a function of exactly these inputs.
  Hash128 MemoKey{};
  bool HaveKey = false;
  if (cacheEnabled()) {
    Hash128 K = hash128Seed(0x50);
    K = hashGrammarConfig(K, Config);
    K = hash128Combine(K, static_cast<std::uint64_t>(MaxSize));
    K = hash128Combine(K, WantInt ? 2u : OutTy->isBool() ? 1u : 0u);
    try {
      for (const PbeExample &Ex : Examples) {
        for (const TermPtr &L : Leaves)
          if (L->getType()->isInt() || L->getType()->isBool())
            K = hash128Combine(K, valueHash(evalScalarTerm(L, Ex.Inputs)));
        K = hash128Combine(K, valueHash(Ex.Output));
      }
      MemoKey = K;
      HaveKey = true;
    } catch (const UserError &) {
      // A leaf is unbound under these examples; the key would be partial.
    }
  }
  if (HaveKey) {
    Stopwatch ProbeWatch;
    auto Hit = pbeMemo().lookup(MemoKey);
    perfRecordNs(PerfHistogram::CacheProbeNs, ProbeWatch.elapsedNs());
    if (Hit) {
      if (!Hit->Found)
        return std::nullopt; // definitive: that search space was exhausted
      if (TermPtr T = termFromText(Hit->TermText, Leaves))
        if (T->getType()->isInt() == WantInt) {
          // Re-validate on the examples before trusting the entry.
          bool Ok = true;
          try {
            for (const PbeExample &Ex : Examples)
              if (!valueEquals(evalScalarTerm(T, Ex.Inputs), Ex.Output)) {
                Ok = false;
                break;
              }
          } catch (const UserError &) {
            Ok = false;
          }
          if (Ok)
            return T;
        }
      // Malformed or mismatching entry: fall through to the search.
    }
  }

  TraceSpan Span("enum.search", "enum");
  PhaseScope EnumPhase(Phase::Enum);
  Stopwatch Watch;
  auto R = enumerateScalar(OutTy, Examples, MaxSize, Budget);
  perfRecordNs(PerfHistogram::EnumRoundNs, Watch.elapsedNs());
  if (Span.active()) {
    Span.arg("examples", static_cast<std::uint64_t>(Examples.size()));
    Span.arg("max_size", static_cast<std::int64_t>(MaxSize));
    Span.arg("found", R ? "yes" : "no");
  }
  if (HaveKey) {
    if (R) {
      std::string Text = termToText(*R, Leaves);
      if (!Text.empty())
        pbeMemo().insert(MemoKey, PbeMemoEntry{true, std::move(Text)});
    } else if (!Budget.expired()) {
      // The search ran dry (not out of time): a definitive negative.
      pbeMemo().insert(MemoKey, PbeMemoEntry{false, {}});
    }
  }
  return R;
}

std::optional<TermPtr>
Enumerator::enumerateScalar(const TypePtr &OutTy,
                            const std::vector<PbeExample> &Examples,
                            int MaxSize, const Deadline &Budget) {
  bool WantInt = OutTy->isInt();

  std::uint64_t Target = 1469598103934665603ULL;
  for (const PbeExample &Ex : Examples)
    Target = hashCombine(Target, valueHash(Ex.Output));

  // Size-indexed pools (index 0 unused).
  std::vector<std::vector<Candidate>> IntPool(MaxSize + 1);
  std::vector<std::vector<Candidate>> BoolPool(MaxSize + 1);
  std::unordered_set<std::uint64_t> SeenInt, SeenBool;
  SeenInt.reserve(1024);
  SeenBool.reserve(1024);
  // Debug collision oracle: hash -> string signature (per type pool).
  std::unordered_map<std::uint64_t, std::string> OracleInt, OracleBool;
  std::optional<TermPtr> Found;

  // A hash match against the target is confirmed value-by-value, so a
  // collision cannot yield an incorrect solution.
  auto MatchesTarget = [&](const TermPtr &T) {
    for (const PbeExample &Ex : Examples)
      if (!valueEquals(evalScalarTerm(T, Ex.Inputs), Ex.Output))
        return false;
    return true;
  };

  // Deadline polling is decimated: one clock read per PollGate stride of
  // candidates, so cancellation latency stays bounded without taxing the
  // hottest loop in the solver.
  PollGate Gate;
  bool Expired = false;

  auto Consider = [&](TermPtr T, int Size) -> bool {
    if (Found || Expired)
      return true;
    if (Gate.tick(Budget)) {
      Expired = true;
      return true;
    }
    countEvent(CounterKind::PbeCandidates);
    perfAdd(PerfCounter::EnumCandidates);
    bool IsInt = T->getType()->isInt();
    std::uint64_t Sig;
    try {
      Sig = signatureHashOf(T, Examples);
    } catch (const UserError &) {
      return false; // unbound leaf for these examples; skip
    }
    if (checkSignaturesEnabled()) {
      auto &Oracle = IsInt ? OracleInt : OracleBool;
      std::string Str = signatureStringOf(T, Examples);
      auto [It, Fresh] = Oracle.emplace(Sig, Str);
      if (!Fresh && It->second != Str)
        fatalError("observational-equivalence hash collision: \"" +
                   It->second + "\" vs \"" + Str + "\"");
    }
    auto &Seen = IsInt ? SeenInt : SeenBool;
    if (!Seen.insert(Sig).second) {
      perfAdd(PerfCounter::EnumPruned);
      return false;
    }
    if (IsInt == WantInt && Sig == Target && MatchesTarget(T)) {
      Found = std::move(T);
      return true;
    }
    auto &Pool = IsInt ? IntPool : BoolPool;
    Pool[Size].push_back(Candidate{std::move(T)});
    return false;
  };

  // Size 1: constants, boolean literals, and leaves.
  for (long long C : Config.Constants)
    if (Consider(mkIntLit(C), 1))
      return Found;
  for (bool B : {false, true})
    if (Consider(mkBoolLit(B), 1))
      return Found;
  for (const TermPtr &L : Leaves)
    if (L->getType()->isInt() || L->getType()->isBool())
      if (Consider(L, 1))
        return Found;

  auto ForPool = [&](std::vector<std::vector<Candidate>> &Pool, int Size,
                     auto Fn) {
    for (const Candidate &C : Pool[Size])
      if (Fn(C))
        return true;
    return false;
  };

  for (int Size = 2; Size <= MaxSize; ++Size) {
    if (Budget.expired())
      return std::nullopt;

    // Unary integer operators.
    [[maybe_unused]] bool Stop = ForPool(IntPool, Size - 1, [&](const Candidate &A) {
      if (Consider(mkOp(OpKind::Neg, {A.T}), Size))
        return true;
      if (Config.AllowAbs && Consider(mkOp(OpKind::Abs, {A.T}), Size))
        return true;
      return false;
    });
    if (Found || Expired)
      return Found;

    // Unary boolean.
    ForPool(BoolPool, Size - 1, [&](const Candidate &A) {
      return Consider(mkNot(A.T), Size);
    });
    if (Found || Expired)
      return Found;

    // Binary operators (left size + right size = Size - 1).
    for (int LS = 1; LS + 1 < Size; ++LS) {
      int RS = Size - 1 - LS;
      ForPool(IntPool, LS, [&](const Candidate &A) {
        return ForPool(IntPool, RS, [&](const Candidate &B) {
          if (Consider(mkAdd(A.T, B.T), Size))
            return true;
          if (Consider(mkSub(A.T, B.T), Size))
            return true;
          if (Config.AllowMinMax) {
            if (Consider(mkOp(OpKind::Min, {A.T, B.T}), Size))
              return true;
            if (Consider(mkOp(OpKind::Max, {A.T, B.T}), Size))
              return true;
          }
          // The Appendix-B.4 grammar only multiplies by constants, but
          // references like weighted sums need general products; allow them
          // whenever multiplication appears in the specification.
          if (Config.AllowMul)
            if (Consider(mkOp(OpKind::Mul, {A.T, B.T}), Size))
              return true;
          if (Config.AllowDiv && B.T->getKind() == TermKind::IntLit &&
              B.T->getIntValue() != 0)
            if (Consider(mkOp(OpKind::Div, {A.T, B.T}), Size))
              return true;
          if (Config.AllowMod && B.T->getKind() == TermKind::IntLit &&
              B.T->getIntValue() > 1)
            if (Consider(mkOp(OpKind::Mod, {A.T, B.T}), Size))
              return true;
          // Comparisons (feed the boolean pool).
          if (Consider(mkOp(OpKind::Gt, {A.T, B.T}), Size))
            return true;
          if (Consider(mkOp(OpKind::Le, {A.T, B.T}), Size))
            return true;
          if (Consider(mkEq(A.T, B.T), Size))
            return true;
          return false;
        });
      });
      if (Found || Expired)
        return Found;
      ForPool(BoolPool, LS, [&](const Candidate &A) {
        return ForPool(BoolPool, RS, [&](const Candidate &B) {
          if (Consider(mkAndList({A.T, B.T}), Size))
            return true;
          if (Consider(mkOrList({A.T, B.T}), Size))
            return true;
          return false;
        });
      });
      if (Found || Expired)
        return Found;
    }

    // Conditionals: cond + then + else = Size - 1.
    if (Config.AllowIte) {
      for (int CS = 1; CS + 2 < Size; ++CS) {
        for (int TS = 1; CS + TS + 1 < Size; ++TS) {
          int ES = Size - 1 - CS - TS;
          ForPool(BoolPool, CS, [&](const Candidate &C) {
            return ForPool(IntPool, TS, [&](const Candidate &A) {
              return ForPool(IntPool, ES, [&](const Candidate &B) {
                return Consider(mkIte(C.T, A.T, B.T), Size);
              });
            });
          });
          if (Found || Expired)
            return Found;
        }
      }
    }
  }
  return std::nullopt;
}
