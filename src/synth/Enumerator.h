//===- Enumerator.h - Bottom-up PBE term enumeration ------------*- C++-*-===//
///
/// \file
/// Syntax-guided synthesis by example: enumerate grammar terms bottom-up in
/// size order, pruning observationally equivalent candidates (terms that
/// agree on every example input), until one matches the required outputs.
/// This is the `Synthesize` component used both to generalize the
/// input/output tables produced by the SGE solver's EUF models and to learn
/// invariant predicates from positive/negative examples (Algorithm 2).
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SYNTH_ENUMERATOR_H
#define SE2GIS_SYNTH_ENUMERATOR_H

#include "eval/Interp.h"
#include "support/Stopwatch.h"
#include "synth/Grammar.h"

#include <optional>

namespace se2gis {

/// One synthesis example: values for the leaf variables and the expected
/// result.
struct PbeExample {
  Env Inputs;
  ValuePtr Output;
};

/// Evaluates a grammar term (operators + literals + variables only; no
/// calls) under \p E. Exposed for tests and the SGE verifier.
ValuePtr evalScalarTerm(const TermPtr &T, const Env &E);

/// Bottom-up enumerator over the Appendix-B.4 grammar.
class Enumerator {
public:
  /// \param Leaves scalar-typed leaf terms (parameter variables and
  ///        projections of tuple-typed parameters).
  Enumerator(const GrammarConfig &Config, std::vector<TermPtr> Leaves);

  /// Finds the smallest grammar term of type \p OutTy matching every
  /// example. Tuple outputs are synthesized component-wise. \returns nullopt
  /// if no term of size <= \p MaxSize fits (or the deadline expired).
  std::optional<TermPtr> synthesize(const TypePtr &OutTy,
                                    const std::vector<PbeExample> &Examples,
                                    int MaxSize, const Deadline &Budget);

private:
  /// Memo wrapper around \c enumerateScalar: consults the process-wide PBE
  /// memo (cache/SgeSolutionCache.h) when caching is enabled. Positive hits
  /// are re-validated against the examples; negative entries are recorded
  /// only for exhausted searches, never deadline exits.
  std::optional<TermPtr>
  synthesizeScalar(const TypePtr &OutTy,
                   const std::vector<PbeExample> &Examples, int MaxSize,
                   const Deadline &Budget);

  /// The bottom-up search itself.
  std::optional<TermPtr>
  enumerateScalar(const TypePtr &OutTy,
                  const std::vector<PbeExample> &Examples, int MaxSize,
                  const Deadline &Budget);

  GrammarConfig Config;
  std::vector<TermPtr> Leaves;
};

} // namespace se2gis

#endif // SE2GIS_SYNTH_ENUMERATOR_H
