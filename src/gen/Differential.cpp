//===- Differential.cpp - Differential fuzzing harness --------------------===//

#include "gen/Differential.h"

#include "core/SynthesisTask.h"
#include "frontend/Elaborate.h"
#include "frontend/Parser.h"
#include "frontend/Printer.h"
#include "support/Diagnostics.h"
#include "support/Trace.h"

#include <sstream>

using namespace se2gis;

std::vector<FuzzConfigSpec> se2gis::defaultMatrix(bool Full,
                                                  bool WithRemote) {
  std::vector<FuzzConfigSpec> M;
  M.push_back({"se2gis-witness", AlgorithmKind::SE2GIS, UnrealMode::Witness,
               /*SmtIncremental=*/true, CacheMode::Off, false});
  M.push_back({"se2gis-race-fresh", AlgorithmKind::SE2GIS, UnrealMode::Race,
               /*SmtIncremental=*/false, CacheMode::Off, false});
  M.push_back({"segis-uc", AlgorithmKind::SEGISUC, UnrealMode::Witness,
               /*SmtIncremental=*/true, CacheMode::Off, false});
  M.push_back({"portfolio-race", AlgorithmKind::Portfolio, UnrealMode::Race,
               /*SmtIncremental=*/true, CacheMode::Off, false});
  M.push_back({"se2gis-mem", AlgorithmKind::SE2GIS, UnrealMode::Witness,
               /*SmtIncremental=*/true, CacheMode::Mem, /*WarmRepeat=*/true});
  if (Full) {
    M.push_back({"se2gis-chc", AlgorithmKind::SE2GIS, UnrealMode::Chc,
                 /*SmtIncremental=*/true, CacheMode::Off, false});
    M.push_back({"se2gis-disk", AlgorithmKind::SE2GIS, UnrealMode::Witness,
                 /*SmtIncremental=*/true, CacheMode::Disk,
                 /*WarmRepeat=*/true});
  }
  if (WithRemote)
    M.push_back({"se2gis-remote", AlgorithmKind::SE2GIS, UnrealMode::Witness,
                 /*SmtIncremental=*/true, CacheMode::Remote,
                 /*WarmRepeat=*/true});
  return M;
}

const char *se2gis::failureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::None:
    return "ok";
  case FailureKind::Contradiction:
    return "contradiction";
  case FailureKind::EvidenceMismatch:
    return "evidence-mismatch";
  case FailureKind::Crash:
    return "crash";
  case FailureKind::RoundTripFail:
    return "round-trip-fail";
  case FailureKind::TimeoutOnly:
    return "timeout-only";
  }
  return "?";
}

bool se2gis::isFailure(FailureKind K) {
  return K != FailureKind::None && K != FailureKind::TimeoutOnly;
}

std::string CaseReport::str() const {
  std::ostringstream OS;
  OS << failureKindName(Kind);
  OS << " [";
  for (size_t I = 0; I < Results.size(); ++I) {
    if (I)
      OS << ' ';
    OS << Results[I].Label << ':' << verdictName(Results[I].V);
    if (!Results[I].SourceLabel.empty())
      OS << '/' << Results[I].SourceLabel;
  }
  OS << ']';
  if (!Note.empty())
    OS << " " << Note;
  return OS.str();
}

namespace {

bool conclusive(Verdict V) {
  return V == Verdict::Realizable || V == Verdict::Unrealizable;
}

/// Classifies the joint result; Results must be complete.
void classify(CaseReport &Rep,
              const std::vector<const FuzzConfigSpec *> &Specs) {
  const ConfigResult *Real = nullptr, *Unreal = nullptr;
  bool AnyConclusive = false;
  for (size_t I = 0; I < Rep.Results.size(); ++I) {
    const ConfigResult &R = Rep.Results[I];
    const FuzzConfigSpec &Spec = *Specs[I];
    if (R.V == Verdict::Failed) {
      // Only an escaped exception is a crash; a structured Failed outcome
      // (e.g. "invariant inference diverged") is a graceful give-up and
      // counts as inconclusive, like a timeout.
      if (R.Exception) {
        Rep.Kind = FailureKind::Crash;
        Rep.Note = R.Label + " crashed: " + R.Detail;
        return;
      }
      continue;
    }
    if (!conclusive(R.V))
      continue;
    AnyConclusive = true;
    if (R.V == Verdict::Realizable && !Real)
      Real = &R;
    if (R.V == Verdict::Unrealizable && !Unreal)
      Unreal = &R;

    // Provenance sanity: every conclusive verdict names its channel, and
    // the channel must be one the config's mode could have produced. A
    // cache-sourced verdict is legitimate under any mode (re-validated on
    // reuse).
    if (R.Source == VerdictSource::None) {
      Rep.Kind = FailureKind::EvidenceMismatch;
      Rep.Note = R.Label + " conclusive without evidence";
      return;
    }
    if (R.V == Verdict::Unrealizable && R.Source != VerdictSource::Cache) {
      if (Spec.Unreal == UnrealMode::Chc &&
          R.Source != VerdictSource::Chc) {
        Rep.Kind = FailureKind::EvidenceMismatch;
        Rep.Note = R.Label + " unrealizable via " +
                   verdictSourceName(R.Source) + " under chc-only mode";
        return;
      }
      if (Spec.Unreal == UnrealMode::Witness &&
          R.Source == VerdictSource::Chc) {
        Rep.Kind = FailureKind::EvidenceMismatch;
        Rep.Note = R.Label + " unrealizable via chc under witness-only mode";
        return;
      }
    }
  }
  if (Real && Unreal) {
    Rep.Kind = FailureKind::Contradiction;
    Rep.Note = Real->Label + " says realizable, " + Unreal->Label +
               " says unrealizable";
    return;
  }
  Rep.Kind = AnyConclusive ? FailureKind::None : FailureKind::TimeoutOnly;
}

} // namespace

CaseReport se2gis::runCaseDifferential(
    const GenCase &C, const std::vector<FuzzConfigSpec> &Matrix,
    const DiffOptions &Opts) {
  return runSourceDifferential(caseSource(C), C.CaseIndex, Matrix, Opts);
}

CaseReport se2gis::runSourceDifferential(
    const std::string &Src, unsigned CaseIndex,
    const std::vector<FuzzConfigSpec> &Matrix, const DiffOptions &Opts) {
  TraceSpan Span("fuzz.case", "gen");
  Span.arg("case", static_cast<std::int64_t>(CaseIndex));

  CaseReport Rep;

  // --- Round-trip property: printing must be a one-step fixpoint of
  // parse∘print (parse errors on our own output are frontend bugs too).
  try {
    std::string P1 = printUnit(parseUnit(Src));
    // Generated sources are already in printer normal form, so P1 == Src;
    // hand-written replay files only need the fixpoint to be stable.
    if (P1 != Src && printUnit(parseUnit(P1)) != P1) {
      Rep.Kind = FailureKind::RoundTripFail;
      Rep.Note = "print/parse fixpoint diverges";
      return Rep;
    }
  } catch (const UserError &E) {
    Rep.Kind = FailureKind::RoundTripFail;
    Rep.Note = std::string("printed case does not parse: ") + E.what();
    return Rep;
  }

  // --- The matrix. Expanded so WarmRepeat contributes two columns.
  std::vector<const FuzzConfigSpec *> Specs;
  auto ProblemPtr = std::make_shared<Problem>(loadProblem(Src));
  for (const FuzzConfigSpec &Spec : Matrix) {
    bool NeedsDir =
        Spec.Cache == CacheMode::Disk || Spec.Cache == CacheMode::Remote;
    if (NeedsDir && Opts.CacheDirBase.empty())
      continue;
    if (Spec.Cache == CacheMode::Remote && Opts.RemoteAddr.empty())
      continue;
    unsigned Repeats = Spec.WarmRepeat ? 2u : 1u;
    if (Spec.Cache != CacheMode::Off)
      shutdownCache(); // each case's cold run really starts cold
    for (unsigned Rep2 = 0; Rep2 < Repeats; ++Rep2) {
      SolverConfig Conf;
      Conf.Verbose = false;
      Conf.Algo.TimeoutMs = Opts.TimeoutMs;
      Conf.Algo.SmtIncremental = Spec.SmtIncremental;
      Conf.Algo.Unreal = Spec.Unreal;
      Conf.Cache.Mode = Spec.Cache;
      if (NeedsDir)
        Conf.Cache.Dir =
            Opts.CacheDirBase + "/case" + std::to_string(CaseIndex);
      if (Spec.Cache == CacheMode::Remote)
        Conf.Cache.Addr = Opts.RemoteAddr;
      ConfigResult R;
      R.Label = Spec.Label + (Rep2 ? "+warm" : "");
      try {
        SynthesisTask Task(ProblemPtr, Spec.Algo);
        Outcome O = Task.run(Conf);
        R.V = O.V;
        R.Source = O.Ev.Source;
        R.Detail = O.Detail;
      } catch (const std::exception &E) {
        R.V = Verdict::Failed;
        R.Exception = true;
        R.Detail = std::string("exception: ") + E.what();
      } catch (...) {
        R.V = Verdict::Failed;
        R.Exception = true;
        R.Detail = "unknown exception";
      }
      if (R.Source != VerdictSource::None)
        R.SourceLabel = Spec.Unreal == UnrealMode::Race &&
                                R.Source != VerdictSource::Cache
                            ? "race"
                            : verdictSourceName(R.Source);
      Rep.Results.push_back(std::move(R));
      Specs.push_back(&Spec);
    }
  }
  // Leave no cache state behind for whatever runs next.
  shutdownCache();

  if (Opts.InjectBug) {
    for (ConfigResult &R : Rep.Results) {
      if (conclusive(R.V)) {
        R.V = R.V == Verdict::Realizable ? Verdict::Unrealizable
                                         : Verdict::Realizable;
        R.Source = R.Source == VerdictSource::None ? VerdictSource::Witness
                                                   : R.Source;
        if (R.SourceLabel.empty())
          R.SourceLabel = verdictSourceName(R.Source);
        break;
      }
    }
  }

  classify(Rep, Specs);
  Span.arg("kind", failureKindName(Rep.Kind));
  return Rep;
}
