//===- Differential.h - Differential fuzzing harness ------------*- C++-*-===//
///
/// \file
/// Runs one generated case across a configuration matrix — algorithms ×
/// unrealizability channels × incremental-vs-fresh SMT × cache modes
/// (cold-then-warm) — and classifies the joint result. With two
/// independent unrealizability oracles and several redundant execution
/// paths in the system, any disagreement between configurations on the
/// same problem is a real bug:
///
///  - \c Contradiction   — one config says Realizable, another Unrealizable.
///  - \c EvidenceMismatch — a conclusive verdict without provenance, or
///    provenance a config's channel selection makes impossible.
///  - \c Crash           — an exception escaped the solver stack. A
///    structured \c Failed outcome ("invariant inference diverged", ...)
///    is the solver giving up gracefully and counts as inconclusive.
///  - \c RoundTripFail   — the printed case does not reach a print∘parse
///    fixpoint (frontend bug).
///  - \c TimeoutOnly     — every config hit its budget; inconclusive, not
///    a failure (reported separately so coverage loss is visible).
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_GEN_DIFFERENTIAL_H
#define SE2GIS_GEN_DIFFERENTIAL_H

#include "core/Algorithms.h"
#include "cache/CacheConfig.h"
#include "gen/Generator.h"

#include <string>
#include <vector>

namespace se2gis {

/// One column of the differential matrix.
struct FuzzConfigSpec {
  std::string Label;
  AlgorithmKind Algo = AlgorithmKind::SE2GIS;
  UnrealMode Unreal = UnrealMode::Witness;
  bool SmtIncremental = true;
  CacheMode Cache = CacheMode::Off;
  /// Run the config twice against a reset cache (cold, then warm) and
  /// also compare the two runs against each other.
  bool WarmRepeat = false;
};

/// The shipped matrices: the small one covers SE2GIS/SEGIS+UC/Portfolio,
/// witness vs race, incremental on/off, and a mem-cache cold/warm pair;
/// \p Full adds the chc-only channel and a disk-cache cold/warm pair.
/// \p WithRemote appends a remote-cache cold/warm pair (only run when
/// DiffOptions::RemoteAddr is set).
std::vector<FuzzConfigSpec> defaultMatrix(bool Full, bool WithRemote = false);

enum class FailureKind : unsigned char {
  None,
  Contradiction,
  EvidenceMismatch,
  Crash,
  RoundTripFail,
  TimeoutOnly
};

const char *failureKindName(FailureKind K);
/// True for the kinds that are bugs (everything but None / TimeoutOnly).
bool isFailure(FailureKind K);

/// What one config produced on one case.
struct ConfigResult {
  std::string Label;
  Verdict V = Verdict::Failed;
  VerdictSource Source = VerdictSource::None;
  std::string Detail;
  /// True when \c V is Failed because an exception escaped the solver,
  /// as opposed to a structured give-up returned as an Outcome.
  bool Exception = false;
  /// Provenance as printed: \c verdictSourceName(Source), except race-mode
  /// configs print "race" — which channel wins the wall-clock race is the
  /// one legitimately nondeterministic bit, and the driver's output must
  /// stay byte-for-byte reproducible.
  std::string SourceLabel;
};

/// The joint classification of one case across the matrix.
struct CaseReport {
  FailureKind Kind = FailureKind::None;
  std::string Note; ///< human-readable cause (which configs disagreed)
  std::vector<ConfigResult> Results;

  /// Canonical one-line rendering: `kind [label:verdict ...]` — stable,
  /// so the driver's output is byte-for-byte reproducible.
  std::string str() const;
};

/// Knobs of one differential evaluation.
struct DiffOptions {
  std::int64_t TimeoutMs = 2000; ///< per-config budget
  /// Base directory for disk/remote-cache configs (a per-case subdirectory
  /// is created under it). Disk and remote configs are skipped when empty.
  std::string CacheDirBase;
  /// se2gis_cached address for remote-cache configs (--cache-addr).
  /// Remote configs are skipped when empty.
  std::string RemoteAddr;
  /// Test-only: flip the first conclusive verdict before classifying, so
  /// the failure path (classification, shrinking, corpus write) can be
  /// exercised end-to-end on healthy code.
  bool InjectBug = false;
};

/// Runs \p C across \p Matrix under \p Opts. Opens a `fuzz.case` trace
/// span when tracing is enabled.
CaseReport runCaseDifferential(const GenCase &C,
                               const std::vector<FuzzConfigSpec> &Matrix,
                               const DiffOptions &Opts);

/// The same harness on raw DSL source (corpus replay): \p CaseIndex only
/// labels the trace span and the per-case disk-cache directory.
CaseReport runSourceDifferential(const std::string &Src, unsigned CaseIndex,
                                 const std::vector<FuzzConfigSpec> &Matrix,
                                 const DiffOptions &Opts);

} // namespace se2gis

#endif // SE2GIS_GEN_DIFFERENTIAL_H
