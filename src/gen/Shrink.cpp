//===- Shrink.cpp - Greedy failing-case minimization ----------------------===//

#include "gen/Shrink.h"

#include "support/PerfCounters.h"

#include <cassert>

using namespace se2gis;

namespace {

//===----------------------------------------------------------------------===//
// Typed expression surgery
//===----------------------------------------------------------------------===//

/// The (by-construction) type of a generated expression node.
bool isBoolExpr(const GenExpr &E, bool RetBool) {
  switch (E.K) {
  case GenExpr::Kind::Const:
  case GenExpr::Kind::Field:
  case GenExpr::Kind::ExtraParam:
    return false;
  case GenExpr::Kind::BoolConst:
  case GenExpr::Kind::Not:
    return true;
  case GenExpr::Kind::RecCall:
    return RetBool;
  case GenExpr::Kind::Bin:
    return E.Op == "=" || E.Op == "<" || E.Op == "<=" || E.Op == ">=" ||
           E.Op == "&&" || E.Op == "||";
  case GenExpr::Kind::Ite:
    return isBoolExpr(E.Kids[1], RetBool);
  }
  return false;
}

bool isTrivial(const GenExpr &E) {
  return (E.K == GenExpr::Kind::Const && E.IntVal == 0) ||
         (E.K == GenExpr::Kind::BoolConst && !E.BoolVal);
}

GenExpr trivialOf(bool Bool) {
  GenExpr E;
  if (Bool) {
    E.K = GenExpr::Kind::BoolConst;
    E.BoolVal = false;
  } else {
    E.K = GenExpr::Kind::Const;
    E.IntVal = 0;
  }
  return E;
}

size_t countNodes(const GenExpr &E) {
  size_t N = 1;
  for (const GenExpr &K : E.Kids)
    N += countNodes(K);
  return N;
}

/// DFS node access by preorder index.
GenExpr *nodeAt(GenExpr &E, size_t &Index) {
  if (Index == 0)
    return &E;
  --Index;
  for (GenExpr &K : E.Kids)
    if (GenExpr *R = nodeAt(K, Index))
      return R;
  return nullptr;
}

/// Single-node rewrites of one body, appended to \p Out as whole-body
/// replacements: a node collapses to a same-typed kid, or to the trivial
/// constant of its type.
void bodyShrinks(const GenExpr &Body, bool RetBool,
                 std::vector<GenExpr> &Out) {
  size_t N = countNodes(Body);
  for (size_t I = 0; I < N; ++I) {
    GenExpr Copy = Body;
    size_t Idx = I;
    GenExpr *Node = nodeAt(Copy, Idx);
    assert(Node);
    bool NodeBool = isBoolExpr(*Node, RetBool);
    // Collapse to a same-typed kid.
    for (const GenExpr &K : Node->Kids) {
      if (isBoolExpr(K, RetBool) != NodeBool)
        continue;
      GenExpr C2 = Copy;
      size_t Idx2 = I;
      GenExpr *Node2 = nodeAt(C2, Idx2);
      *Node2 = K;
      Out.push_back(std::move(C2));
    }
    // Collapse to the trivial constant.
    if (!isTrivial(*Node)) {
      *Node = trivialOf(NodeBool);
      Out.push_back(std::move(Copy));
    } else if (Node->K == GenExpr::Kind::Const && Node->IntVal != 0) {
      Node->IntVal = Node->IntVal / 2; // toward zero
      Out.push_back(std::move(Copy));
    }
  }
}

/// Rewrites Field/RecCall indices in \p E after a field drop: uses of the
/// dropped index become the trivial constant, higher indices shift down.
void remapIndex(GenExpr &E, GenExpr::Kind Kind, unsigned Dropped,
                bool RetBool) {
  if (E.K == Kind) {
    if (E.Index == Dropped) {
      bool Bool = Kind == GenExpr::Kind::RecCall && RetBool;
      E = trivialOf(Bool);
      return;
    }
    if (E.Index > Dropped)
      --E.Index;
  }
  for (GenExpr &K : E.Kids)
    remapIndex(K, Kind, Dropped, RetBool);
}

/// Drops/remaps unknown arguments after a field drop on ctor \p CtorIdx.
void remapArgs(std::vector<GenArg> &Args, GenArg::Kind Kind,
               unsigned Dropped) {
  std::vector<GenArg> Kept;
  for (GenArg A : Args) {
    if (A.K == Kind) {
      if (A.Index == Dropped)
        continue;
      if (A.Index > Dropped)
        --A.Index;
    }
    Kept.push_back(A);
  }
  Args = std::move(Kept);
}

/// Replaces every ExtraParam use with 0 (body side of dropping `x`).
void stripExtraParam(GenExpr &E) {
  if (E.K == GenExpr::Kind::ExtraParam) {
    E = trivialOf(false);
    return;
  }
  for (GenExpr &K : E.Kids)
    stripExtraParam(K);
}

} // namespace

std::vector<GenCase> se2gis::shrinkCandidates(const GenCase &C) {
  std::vector<GenCase> Out;

  // --- 1. Drop a whole (recursive) constructor. Ctors[0] is the base
  // case and must stay.
  for (size_t I = 1; I < C.Ctors.size(); ++I) {
    GenCase N = C;
    N.Ctors.erase(N.Ctors.begin() + I);
    N.RefBodies.erase(N.RefBodies.begin() + I);
    N.TargetArgs.erase(N.TargetArgs.begin() + I);
    Out.push_back(std::move(N));
  }

  // --- 2. Drop problem-level features.
  if (C.WithInvariant) {
    GenCase N = C;
    N.WithInvariant = false;
    Out.push_back(std::move(N));
  }
  if (C.WithExplicitRepr) {
    GenCase N = C;
    N.WithExplicitRepr = false;
    Out.push_back(std::move(N));
  }
  if (C.HasExtraParam) {
    GenCase N = C;
    N.HasExtraParam = false;
    for (GenExpr &B : N.RefBodies)
      stripExtraParam(B);
    for (auto &Args : N.TargetArgs) {
      std::vector<GenArg> Kept;
      for (GenArg A : Args)
        if (A.K != GenArg::Kind::ExtraParam)
          Kept.push_back(A);
      Args = std::move(Kept);
    }
    Out.push_back(std::move(N));
  }

  // --- 3. Drop one field (recursive or int) of one constructor.
  for (size_t CI = 0; CI < C.Ctors.size(); ++CI) {
    for (unsigned J = 0; J < C.Ctors[CI].RecFields; ++J) {
      GenCase N = C;
      --N.Ctors[CI].RecFields;
      remapIndex(N.RefBodies[CI], GenExpr::Kind::RecCall, J, C.RetBool);
      remapArgs(N.TargetArgs[CI], GenArg::Kind::RecCall, J);
      Out.push_back(std::move(N));
    }
    for (unsigned I = 0; I < C.Ctors[CI].IntFields; ++I) {
      GenCase N = C;
      --N.Ctors[CI].IntFields;
      remapIndex(N.RefBodies[CI], GenExpr::Kind::Field, I, C.RetBool);
      remapArgs(N.TargetArgs[CI], GenArg::Kind::Field, I);
      Out.push_back(std::move(N));
    }
  }

  // --- 4. Drop one unknown argument.
  for (size_t CI = 0; CI < C.TargetArgs.size(); ++CI)
    for (size_t AI = 0; AI < C.TargetArgs[CI].size(); ++AI) {
      GenCase N = C;
      N.TargetArgs[CI].erase(N.TargetArgs[CI].begin() + AI);
      Out.push_back(std::move(N));
    }

  // --- 5. Shrink one reference body (grammar productions, then
  // constants).
  for (size_t CI = 0; CI < C.RefBodies.size(); ++CI) {
    std::vector<GenExpr> Bodies;
    bodyShrinks(C.RefBodies[CI], C.RetBool, Bodies);
    for (GenExpr &B : Bodies) {
      GenCase N = C;
      N.RefBodies[CI] = std::move(B);
      Out.push_back(std::move(N));
    }
  }

  return Out;
}

GenCase se2gis::shrinkCase(
    const GenCase &C, const std::function<bool(const GenCase &)> &StillFails,
    unsigned MaxEvals, ShrinkStats *Stats) {
  GenCase Cur = C;
  ShrinkStats Local;
  ShrinkStats &S = Stats ? *Stats : Local;
  unsigned Evals = 0;
  bool Progress = true;
  while (Progress && Evals < MaxEvals) {
    Progress = false;
    for (GenCase &Cand : shrinkCandidates(Cur)) {
      if (Evals >= MaxEvals)
        break;
      if (!caseLoads(Cand))
        continue; // frontend-invalid shrinks don't count against budget
      ++Evals;
      ++S.Attempts;
      perfAdd(PerfCounter::GenShrinkAttempts);
      if (StillFails(Cand)) {
        ++S.Accepted;
        perfAdd(PerfCounter::GenShrinkAccepted);
        Cur = std::move(Cand);
        Progress = true;
        break; // restart from the new, smaller case
      }
    }
  }
  return Cur;
}
