//===- Rng.h - Deterministic generator RNG ----------------------*- C++-*-===//
///
/// \file
/// A SplitMix64 stream used by the benchmark generator. Determinism is the
/// whole point: the fuzz driver must be byte-for-byte reproducible from
/// `--gen-seed`, so the generator never touches std::random_device or any
/// global RNG, and each case gets its own stream derived from
/// (gen seed, case index, attempt) — case N's shape can never depend on
/// how long case N-1 took to solve or how many attempts it rejected.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_GEN_RNG_H
#define SE2GIS_GEN_RNG_H

#include <cstdint>

namespace se2gis {

/// SplitMix64 (Steele et al.), the canonical tiny seedable generator.
class GenRng {
public:
  explicit GenRng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform-ish in [0, N). Modulo bias is irrelevant at fuzzing N's.
  uint64_t below(uint64_t N) { return N ? next() % N : 0; }

  /// Uniform-ish in [Lo, Hi] inclusive.
  long long intIn(long long Lo, long long Hi) {
    return Lo + static_cast<long long>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// True with probability Pct/100.
  bool chance(unsigned Pct) { return below(100) < Pct; }

private:
  uint64_t State;
};

/// Mixes stream coordinates into an independent per-case seed.
inline uint64_t mixSeed(uint64_t Seed, uint64_t A, uint64_t B = 0) {
  GenRng R(Seed ^ (A * 0x9e3779b97f4a7c15ULL) ^
           (B * 0xd1b54a32d192ed03ULL));
  R.next();
  return R.next();
}

} // namespace se2gis

#endif // SE2GIS_GEN_RNG_H
