//===- Generator.h - Typed benchmark generator ------------------*- C++-*-===//
///
/// \file
/// Samples typed synthesis problems: a random ADT with a recursion scheme,
/// a grammar-sampled reference function over it, and a target skeleton
/// whose per-rule unknowns receive a random subset of the available data
/// (dropping a recursive result or a field is how unrealizable cases arise
/// naturally). A case is a structured \c GenCase value; it is lowered to
/// the surface AST (Syntax.h), printed (frontend/Printer.h), and loaded
/// back through the *real* Lexer/Parser/Elaborate pipeline — there is no
/// privileged in-memory path, so every generated problem also exercises
/// the frontend.
///
/// Sampling is rejection-based: a case the frontend rejects (UserError at
/// any stage) is discarded (`gen_rejected`) and resampled from the next
/// attempt stream. Each (gen seed, case index, attempt) triple derives an
/// independent RNG stream, so accepted case N is a pure function of the
/// seed and N — never of solver timing or earlier rejections.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_GEN_GENERATOR_H
#define SE2GIS_GEN_GENERATOR_H

#include "frontend/Syntax.h"
#include "lang/Program.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace se2gis {

/// One constructor of the generated ADT: \c IntFields int fields followed
/// by \c RecFields recursive (same-type) fields. RecFields == 0 is a base
/// constructor.
struct GenCtor {
  std::string Name;
  unsigned IntFields = 0;
  unsigned RecFields = 0;
};

/// A value-semantic expression tree for generated rule bodies. Typing is
/// by construction: the sampler only builds well-typed shapes, and the
/// shrinker only replaces nodes with same-typed subtrees.
struct GenExpr {
  enum class Kind : unsigned char {
    Const,      ///< integer literal (IntVal)
    BoolConst,  ///< boolean literal (BoolVal)
    Field,      ///< the Index-th int field of the rule's constructor
    RecCall,    ///< recursive call on the Index-th recursive field
    ExtraParam, ///< the extra int parameter `x`
    Bin,        ///< Op in {+, -, min, max, =, <, <=, &&, ||}
    Not,        ///< boolean negation
    Ite         ///< if Kids[0] then Kids[1] else Kids[2]
  };
  Kind K = Kind::Const;
  long long IntVal = 0;
  bool BoolVal = false;
  unsigned Index = 0;
  std::string Op;
  std::vector<GenExpr> Kids;
};

/// One argument handed to a target rule's unknown.
struct GenArg {
  enum class Kind : unsigned char { Field, RecCall, ExtraParam };
  Kind K = Kind::Field;
  unsigned Index = 0;
};

/// A structured generated problem; lowered/printed on demand.
struct GenCase {
  uint64_t GenSeed = 0;
  unsigned CaseIndex = 0;
  unsigned Attempt = 0;

  std::vector<GenCtor> Ctors; ///< Ctors[0] is always a base constructor
  bool RetBool = false;       ///< reference/target return bool (else int)
  bool HasExtraParam = false; ///< both take an extra `(x : int)`
  bool WithInvariant = false; ///< `requires inv` (fields constrained >= 0)
  bool WithExplicitRepr = false; ///< explicit deep-copy `via rep`

  std::vector<GenExpr> RefBodies;            ///< per-ctor reference bodies
  std::vector<std::vector<GenArg>> TargetArgs; ///< per-ctor unknown args
};

/// Samples a raw (possibly frontend-rejected) case from the stream
/// (GenSeed, CaseIndex, Attempt).
GenCase sampleCase(uint64_t GenSeed, unsigned CaseIndex, unsigned Attempt);

/// Lowers a case to the untyped surface AST.
SynUnit lowerCase(const GenCase &C);

/// The case's DSL source text: printUnit(lowerCase(C)).
std::string caseSource(const GenCase &C);

/// True iff the case's source loads through parse/elaborate/validate.
bool caseLoads(const GenCase &C);

/// Loads the case through the real frontend (throws UserError on reject).
Problem loadCase(const GenCase &C);

/// Rejection-sampling wrapper: tries attempts 0..MaxAttempts-1 of the
/// case stream and returns the first case the frontend accepts, counting
/// `gen_cases` / `gen_rejected`. nullopt if every attempt was rejected
/// (practically unreachable at the default attempt budget).
std::optional<GenCase> generateCase(uint64_t GenSeed, unsigned CaseIndex,
                                    unsigned MaxAttempts = 50);

} // namespace se2gis

#endif // SE2GIS_GEN_GENERATOR_H
