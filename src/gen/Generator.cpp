//===- Generator.cpp - Typed benchmark generator --------------------------===//

#include "gen/Generator.h"

#include "frontend/Elaborate.h"
#include "frontend/Printer.h"
#include "gen/Rng.h"
#include "support/Diagnostics.h"
#include "support/PerfCounters.h"

#include <cassert>

using namespace se2gis;

namespace {

// Field naming inside scheme rules: int fields a, b, c; recursive fields
// l, r (mirroring the hand-written benchmarks' `| Cons (a, l) -> ...`).
const char *intFieldName(unsigned I) {
  static const char *Names[] = {"a", "b", "c"};
  assert(I < 3);
  return Names[I];
}

const char *recFieldName(unsigned J) {
  static const char *Names[] = {"l", "r"};
  assert(J < 2);
  return Names[J];
}

//===----------------------------------------------------------------------===//
// Expression sampling (well-typed by construction)
//===----------------------------------------------------------------------===//

/// What a rule body may mention: the rule's constructor shape plus the
/// problem-level knobs.
struct ExprCtx {
  unsigned IntFields = 0;
  unsigned RecFields = 0;
  bool HasExtraParam = false;
  bool RetBool = false; ///< type of a RecCall result
};

GenExpr mkConst(long long V) {
  GenExpr E;
  E.K = GenExpr::Kind::Const;
  E.IntVal = V;
  return E;
}

GenExpr mkBin(std::string Op, GenExpr L, GenExpr R) {
  GenExpr E;
  E.K = GenExpr::Kind::Bin;
  E.Op = std::move(Op);
  E.Kids.push_back(std::move(L));
  E.Kids.push_back(std::move(R));
  return E;
}

GenExpr sampleIntExpr(GenRng &R, const ExprCtx &Cx, unsigned Depth);
GenExpr sampleBoolExpr(GenRng &R, const ExprCtx &Cx, unsigned Depth);

GenExpr sampleIntLeaf(GenRng &R, const ExprCtx &Cx) {
  // Weighted pick among whatever the context offers; constants always
  // available as the fallback.
  for (unsigned Spin = 0; Spin < 4; ++Spin) {
    switch (R.below(4)) {
    case 0:
      if (Cx.IntFields) {
        GenExpr E;
        E.K = GenExpr::Kind::Field;
        E.Index = static_cast<unsigned>(R.below(Cx.IntFields));
        return E;
      }
      break;
    case 1:
      if (Cx.RecFields && !Cx.RetBool) {
        GenExpr E;
        E.K = GenExpr::Kind::RecCall;
        E.Index = static_cast<unsigned>(R.below(Cx.RecFields));
        return E;
      }
      break;
    case 2:
      if (Cx.HasExtraParam) {
        GenExpr E;
        E.K = GenExpr::Kind::ExtraParam;
        return E;
      }
      break;
    default:
      break;
    }
  }
  static const long long Consts[] = {0, 1, 2, 3, -1, -2};
  return mkConst(Consts[R.below(6)]);
}

GenExpr sampleIntExpr(GenRng &R, const ExprCtx &Cx, unsigned Depth) {
  if (Depth == 0 || R.chance(35))
    return sampleIntLeaf(R, Cx);
  if (R.chance(12)) {
    GenExpr E;
    E.K = GenExpr::Kind::Ite;
    E.Kids.push_back(sampleBoolExpr(R, Cx, Depth - 1));
    E.Kids.push_back(sampleIntExpr(R, Cx, Depth - 1));
    E.Kids.push_back(sampleIntExpr(R, Cx, Depth - 1));
    return E;
  }
  static const char *Ops[] = {"+", "+", "-", "min", "max"};
  return mkBin(Ops[R.below(5)], sampleIntExpr(R, Cx, Depth - 1),
               sampleIntExpr(R, Cx, Depth - 1));
}

GenExpr sampleBoolExpr(GenRng &R, const ExprCtx &Cx, unsigned Depth) {
  if (Depth == 0 || R.chance(25)) {
    if (Cx.RecFields && Cx.RetBool && R.chance(55)) {
      GenExpr E;
      E.K = GenExpr::Kind::RecCall;
      E.Index = static_cast<unsigned>(R.below(Cx.RecFields));
      return E;
    }
    // Comparisons are richer leaves than bare true/false; prefer them
    // whenever an int leaf exists to compare.
    if (R.chance(70)) {
      static const char *Cmp[] = {"=", "<", "<="};
      ExprCtx IntCx = Cx;
      IntCx.RetBool = Cx.RetBool; // RecCall stays bool-typed: exclude below
      GenExpr L = sampleIntLeaf(R, IntCx);
      GenExpr Rhs = sampleIntLeaf(R, IntCx);
      return mkBin(Cmp[R.below(3)], std::move(L), std::move(Rhs));
    }
    GenExpr E;
    E.K = GenExpr::Kind::BoolConst;
    E.BoolVal = R.chance(50);
    return E;
  }
  switch (R.below(3)) {
  case 0: {
    GenExpr E;
    E.K = GenExpr::Kind::Not;
    E.Kids.push_back(sampleBoolExpr(R, Cx, Depth - 1));
    return E;
  }
  case 1:
    return mkBin("&&", sampleBoolExpr(R, Cx, Depth - 1),
                 sampleBoolExpr(R, Cx, Depth - 1));
  default:
    return mkBin("||", sampleBoolExpr(R, Cx, Depth - 1),
                 sampleBoolExpr(R, Cx, Depth - 1));
  }
}

//===----------------------------------------------------------------------===//
// Lowering to the surface AST
//===----------------------------------------------------------------------===//

SynExprPtr mkSyn(SynExpr::Kind K) {
  auto E = std::make_unique<SynExpr>();
  E->K = K;
  return E;
}

SynExprPtr mkSynId(const std::string &Name) {
  auto E = mkSyn(SynExpr::Kind::Id);
  E->Name = Name;
  return E;
}

/// How a RecCall / ExtraParam lowers inside one binding's rules.
struct LowerCtx {
  std::string Callee;          ///< recursive calls target this binding
  bool CalleeTakesExtra = false; ///< ... and thread the extra param `x`
};

SynExprPtr lowerExpr(const GenExpr &E, const LowerCtx &Cx) {
  switch (E.K) {
  case GenExpr::Kind::Const: {
    auto S = mkSyn(SynExpr::Kind::IntLit);
    S->IntValue = E.IntVal;
    return S;
  }
  case GenExpr::Kind::BoolConst: {
    auto S = mkSyn(SynExpr::Kind::BoolLit);
    S->BoolValue = E.BoolVal;
    return S;
  }
  case GenExpr::Kind::Field:
    return mkSynId(intFieldName(E.Index));
  case GenExpr::Kind::ExtraParam:
    return mkSynId("x");
  case GenExpr::Kind::RecCall: {
    auto S = mkSyn(SynExpr::Kind::App);
    S->Name = Cx.Callee;
    if (Cx.CalleeTakesExtra)
      S->Args.push_back(mkSynId("x"));
    S->Args.push_back(mkSynId(recFieldName(E.Index)));
    return S;
  }
  case GenExpr::Kind::Bin: {
    if (E.Op == "min" || E.Op == "max") {
      auto S = mkSyn(SynExpr::Kind::App);
      S->Name = E.Op;
      S->Args.push_back(lowerExpr(E.Kids[0], Cx));
      S->Args.push_back(lowerExpr(E.Kids[1], Cx));
      return S;
    }
    auto S = mkSyn(SynExpr::Kind::Binary);
    S->Name = E.Op;
    S->Args.push_back(lowerExpr(E.Kids[0], Cx));
    S->Args.push_back(lowerExpr(E.Kids[1], Cx));
    return S;
  }
  case GenExpr::Kind::Not: {
    auto S = mkSyn(SynExpr::Kind::Unary);
    S->Name = "not";
    S->Args.push_back(lowerExpr(E.Kids[0], Cx));
    return S;
  }
  case GenExpr::Kind::Ite: {
    auto S = mkSyn(SynExpr::Kind::If);
    S->Args.push_back(lowerExpr(E.Kids[0], Cx));
    S->Args.push_back(lowerExpr(E.Kids[1], Cx));
    S->Args.push_back(lowerExpr(E.Kids[2], Cx));
    return S;
  }
  }
  return nullptr;
}

SynType namedType(const std::string &Name) {
  SynType T;
  T.K = SynType::Kind::Named;
  T.Name = Name;
  return T;
}

SynType baseType(bool Bool) {
  SynType T;
  T.K = Bool ? SynType::Kind::Bool : SynType::Kind::Int;
  return T;
}

/// `| C0`, `| C1 a`, `| C2 (a, l)` — field names in declaration order.
void setRulePattern(SynRule &R, const GenCtor &Ct) {
  R.CtorName = Ct.Name;
  for (unsigned I = 0; I < Ct.IntFields; ++I)
    R.FieldNames.push_back(intFieldName(I));
  for (unsigned J = 0; J < Ct.RecFields; ++J)
    R.FieldNames.push_back(recFieldName(J));
}

} // namespace

GenCase se2gis::sampleCase(uint64_t GenSeed, unsigned CaseIndex,
                           unsigned Attempt) {
  GenRng R(mixSeed(GenSeed, CaseIndex, Attempt));
  GenCase C;
  C.GenSeed = GenSeed;
  C.CaseIndex = CaseIndex;
  C.Attempt = Attempt;

  // --- The ADT: one base constructor, then 1-2 recursive ones.
  unsigned NumRec = R.chance(30) ? 2 : 1;
  for (unsigned I = 0; I <= NumRec; ++I) {
    GenCtor Ct;
    Ct.Name = "C" + std::to_string(I);
    if (I == 0) {
      Ct.IntFields = R.chance(40) ? 1 : 0;
      Ct.RecFields = 0;
    } else {
      Ct.IntFields = R.chance(75) ? 1 : (R.chance(40) ? 2 : 0);
      Ct.RecFields = R.chance(25) ? 2 : 1; // tree-shaped 25% of the time
    }
    C.Ctors.push_back(std::move(Ct));
  }

  C.RetBool = R.chance(20);
  C.HasExtraParam = R.chance(25);
  C.WithInvariant = R.chance(25);
  C.WithExplicitRepr = R.chance(20);

  // --- Reference bodies, one per constructor.
  for (const GenCtor &Ct : C.Ctors) {
    ExprCtx Cx;
    Cx.IntFields = Ct.IntFields;
    Cx.RecFields = Ct.RecFields;
    Cx.HasExtraParam = C.HasExtraParam;
    Cx.RetBool = C.RetBool;
    unsigned Depth = 1 + static_cast<unsigned>(R.below(2));
    C.RefBodies.push_back(C.RetBool ? sampleBoolExpr(R, Cx, Depth)
                                    : sampleIntExpr(R, Cx, Depth));
  }

  // --- Target skeleton: each rule's unknown gets a random subset of the
  // available data. Dropping something the reference needs is exactly how
  // natural unrealizable cases arise.
  for (const GenCtor &Ct : C.Ctors) {
    std::vector<GenArg> Args;
    for (unsigned I = 0; I < Ct.IntFields; ++I)
      if (R.chance(85))
        Args.push_back(GenArg{GenArg::Kind::Field, I});
    if (C.HasExtraParam && R.chance(85))
      Args.push_back(GenArg{GenArg::Kind::ExtraParam, 0});
    for (unsigned J = 0; J < Ct.RecFields; ++J)
      if (R.chance(85))
        Args.push_back(GenArg{GenArg::Kind::RecCall, J});
    C.TargetArgs.push_back(std::move(Args));
  }
  return C;
}

SynUnit se2gis::lowerCase(const GenCase &C) {
  SynUnit U;

  // type t = C0 [of int] | C1 of int * t | ...
  SynTypeDecl Decl;
  Decl.Name = "t";
  for (const GenCtor &Ct : C.Ctors) {
    SynCtor SC;
    SC.Name = Ct.Name;
    for (unsigned I = 0; I < Ct.IntFields; ++I)
      SC.Fields.push_back(baseType(false));
    for (unsigned J = 0; J < Ct.RecFields; ++J)
      SC.Fields.push_back(namedType("t"));
    Decl.Ctors.push_back(std::move(SC));
  }
  U.Types.push_back(std::move(Decl));

  auto addScheme = [&U](SynBinding B) {
    SynLetGroup G;
    G.Recursive = true;
    G.Bindings.push_back(std::move(B));
    U.LetGroups.push_back(std::move(G));
  };

  // let rec spec [(x : int)] : D = function | ...
  {
    SynBinding B;
    B.Name = "spec";
    B.IsScheme = true;
    if (C.HasExtraParam)
      B.Params.emplace_back("x", baseType(false));
    B.RetAnnot = std::make_unique<SynType>(baseType(C.RetBool));
    LowerCtx Cx{"spec", C.HasExtraParam};
    for (size_t I = 0; I < C.Ctors.size(); ++I) {
      SynRule Rl;
      setRulePattern(Rl, C.Ctors[I]);
      Rl.Body = lowerExpr(C.RefBodies[I], Cx);
      B.Rules.push_back(std::move(Rl));
    }
    addScheme(std::move(B));
  }

  // let rec inv : bool = function | C0 -> true | C1 (a, l) -> a >= 0 && inv l
  if (C.WithInvariant) {
    SynBinding B;
    B.Name = "inv";
    B.IsScheme = true;
    B.RetAnnot = std::make_unique<SynType>(baseType(true));
    for (const GenCtor &Ct : C.Ctors) {
      SynRule Rl;
      setRulePattern(Rl, Ct);
      SynExprPtr Body;
      auto conjoin = [&Body](SynExprPtr Next) {
        if (!Body) {
          Body = std::move(Next);
          return;
        }
        auto And = mkSyn(SynExpr::Kind::Binary);
        And->Name = "&&";
        And->Args.push_back(std::move(Body));
        And->Args.push_back(std::move(Next));
        Body = std::move(And);
      };
      for (unsigned I = 0; I < Ct.IntFields; ++I) {
        auto Ge = mkSyn(SynExpr::Kind::Binary);
        Ge->Name = ">=";
        Ge->Args.push_back(mkSynId(intFieldName(I)));
        Ge->Args.push_back(mkSyn(SynExpr::Kind::IntLit));
        conjoin(std::move(Ge));
      }
      for (unsigned J = 0; J < Ct.RecFields; ++J) {
        auto Call = mkSyn(SynExpr::Kind::App);
        Call->Name = "inv";
        Call->Args.push_back(mkSynId(recFieldName(J)));
        conjoin(std::move(Call));
      }
      if (!Body) {
        Body = mkSyn(SynExpr::Kind::BoolLit);
        Body->BoolValue = true;
      }
      Rl.Body = std::move(Body);
      B.Rules.push_back(std::move(Rl));
    }
    addScheme(std::move(B));
  }

  // let rec rep : t = function | C0 -> C0 | C1 (a, l) -> C1 (a, rep l)
  if (C.WithExplicitRepr) {
    SynBinding B;
    B.Name = "rep";
    B.IsScheme = true;
    B.RetAnnot = std::make_unique<SynType>(namedType("t"));
    for (const GenCtor &Ct : C.Ctors) {
      SynRule Rl;
      setRulePattern(Rl, Ct);
      auto App = mkSyn(SynExpr::Kind::App);
      App->Name = Ct.Name;
      App->BoolValue = true; // constructor application
      for (unsigned I = 0; I < Ct.IntFields; ++I)
        App->Args.push_back(mkSynId(intFieldName(I)));
      for (unsigned J = 0; J < Ct.RecFields; ++J) {
        auto Call = mkSyn(SynExpr::Kind::App);
        Call->Name = "rep";
        Call->Args.push_back(mkSynId(recFieldName(J)));
        App->Args.push_back(std::move(Call));
      }
      Rl.Body = std::move(App);
      B.Rules.push_back(std::move(Rl));
    }
    addScheme(std::move(B));
  }

  // let rec tgt [(x : int)] : D = function | C0 -> $f0 ... (annotated:
  // every rule mentions an unknown, so the return type is not inferable).
  {
    SynBinding B;
    B.Name = "tgt";
    B.IsScheme = true;
    if (C.HasExtraParam)
      B.Params.emplace_back("x", baseType(false));
    B.RetAnnot = std::make_unique<SynType>(baseType(C.RetBool));
    for (size_t I = 0; I < C.Ctors.size(); ++I) {
      SynRule Rl;
      setRulePattern(Rl, C.Ctors[I]);
      auto Unk = mkSyn(SynExpr::Kind::Unknown);
      Unk->Name = "f" + std::to_string(I);
      for (const GenArg &A : C.TargetArgs[I]) {
        switch (A.K) {
        case GenArg::Kind::Field:
          Unk->Args.push_back(mkSynId(intFieldName(A.Index)));
          break;
        case GenArg::Kind::ExtraParam:
          Unk->Args.push_back(mkSynId("x"));
          break;
        case GenArg::Kind::RecCall: {
          auto Call = mkSyn(SynExpr::Kind::App);
          Call->Name = "tgt";
          if (C.HasExtraParam)
            Call->Args.push_back(mkSynId("x"));
          Call->Args.push_back(mkSynId(recFieldName(A.Index)));
          Unk->Args.push_back(std::move(Call));
          break;
        }
        }
      }
      Rl.Body = std::move(Unk);
      B.Rules.push_back(std::move(Rl));
    }
    addScheme(std::move(B));
  }

  SynDirective D;
  D.Target = "tgt";
  D.Reference = "spec";
  if (C.WithExplicitRepr)
    D.Repr = "rep";
  if (C.WithInvariant)
    D.Invariant = "inv";
  U.Directives.push_back(std::move(D));
  return U;
}

std::string se2gis::caseSource(const GenCase &C) {
  return printUnit(lowerCase(C));
}

Problem se2gis::loadCase(const GenCase &C) {
  return loadProblem(caseSource(C));
}

bool se2gis::caseLoads(const GenCase &C) {
  try {
    loadCase(C);
    return true;
  } catch (const UserError &) {
    return false;
  }
}

std::optional<GenCase> se2gis::generateCase(uint64_t GenSeed,
                                            unsigned CaseIndex,
                                            unsigned MaxAttempts) {
  for (unsigned Attempt = 0; Attempt < MaxAttempts; ++Attempt) {
    GenCase C = sampleCase(GenSeed, CaseIndex, Attempt);
    if (caseLoads(C)) {
      perfAdd(PerfCounter::GenCases);
      return C;
    }
    perfAdd(PerfCounter::GenRejected);
  }
  return std::nullopt;
}
