//===- Shrink.h - Greedy failing-case minimization --------------*- C++-*-===//
///
/// \file
/// Greedy structural shrinking of a failing generated case: repeatedly
/// tries the most aggressive simplifications first — dropping whole
/// constructors, then problem-level features (invariant, explicit repr,
/// extra parameter), then fields, unknown arguments, and grammar
/// productions inside rule bodies, down to constant shrinking — and keeps
/// any candidate that still (a) loads through the frontend and (b)
/// reproduces the failure per the caller's predicate. Iterates to a
/// fixpoint under an evaluation budget, so a reproducer in the corpus is
/// locally minimal: removing any single piece makes the bug disappear.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_GEN_SHRINK_H
#define SE2GIS_GEN_SHRINK_H

#include "gen/Generator.h"

#include <functional>
#include <vector>

namespace se2gis {

/// All single-step shrink candidates of \p C, most aggressive first.
/// Candidates are structurally smaller but not yet validated against the
/// frontend — \c shrinkCase filters through \c caseLoads.
std::vector<GenCase> shrinkCandidates(const GenCase &C);

struct ShrinkStats {
  unsigned Attempts = 0; ///< candidates evaluated (= gen_shrink_attempts)
  unsigned Accepted = 0; ///< candidates kept (= gen_shrink_accepted)
};

/// Greedily shrinks \p C while \p StillFails holds, spending at most
/// \p MaxEvals predicate evaluations. The returned case always satisfies
/// StillFails (it is \p C itself if nothing smaller reproduces).
GenCase shrinkCase(const GenCase &C,
                   const std::function<bool(const GenCase &)> &StillFails,
                   unsigned MaxEvals = 200, ShrinkStats *Stats = nullptr);

} // namespace se2gis

#endif // SE2GIS_GEN_SHRINK_H
