//===- Session.cpp - Thread-session pool and incremental toggle ----------===//

#include "smt/Session.h"

#include "smt/Solver.h"

#include <atomic>
#include <memory>

using namespace se2gis;

namespace {

/// Process-wide toggle for the incremental session layer; see
/// setSmtIncremental. Off restores the fresh-context-per-query model.
std::atomic<bool> GSmtIncremental{true};

/// Process-wide Z3 random seed (0 = Z3 default); see setSmtRandomSeed.
std::atomic<unsigned> GSmtRandomSeed{0};

/// A session is retired after serving this many queries (when no
/// SmtSessionScope is open): it bounds the memory a long-running worker
/// thread can pin in one Z3 context without measurably hurting reuse.
constexpr std::uint64_t MaxQueriesPerSession = 512;

/// The per-thread session slot. Generation counts sessions created on this
/// thread — tests and callers observe recycling through it.
struct SessionSlot {
  std::unique_ptr<SmtSession> S;
  std::uint64_t Generation = 0;
};

SessionSlot &threadSlot() {
  thread_local SessionSlot Slot;
  return Slot;
}

/// Open SmtSessionScope nesting depth on this thread. While a scope is
/// open, the served-query retirement is deferred to scope exit so a tight
/// CEGIS/witness region keeps its warm solver mid-region; poisoning and
/// seed changes are never deferred.
thread_local unsigned GScopeDepth = 0;

bool overServedBudget(const SmtSession &S) {
  return S.QueriesServed >= MaxQueriesPerSession;
}

} // namespace

void se2gis::setSmtIncremental(bool Enabled) {
  GSmtIncremental.store(Enabled, std::memory_order_relaxed);
}

bool se2gis::smtIncrementalEnabled() {
  return GSmtIncremental.load(std::memory_order_relaxed);
}

void se2gis::setSmtRandomSeed(unsigned Seed) {
  GSmtRandomSeed.store(Seed, std::memory_order_relaxed);
}

unsigned se2gis::currentSmtRandomSeed() {
  return GSmtRandomSeed.load(std::memory_order_relaxed);
}

SmtSession *se2gis::acquireThreadSmtSession() {
  if (!smtIncrementalEnabled())
    return nullptr;
  SessionSlot &Slot = threadSlot();
  // One live query per session: a nested query would otherwise solve under
  // the outer query's assertions. The caller falls back to a private
  // fresh-context session.
  if (Slot.S && Slot.S->Busy)
    return nullptr;
  unsigned Seed = currentSmtRandomSeed();
  if (Slot.S &&
      (Slot.S->RecyclePending || Slot.S->SeedApplied != Seed ||
       (GScopeDepth == 0 && overServedBudget(*Slot.S))))
    Slot.S.reset();
  if (!Slot.S) {
    Slot.S = std::make_unique<SmtSession>(Seed);
    ++Slot.Generation;
  }
  return Slot.S.get();
}

void se2gis::resetThreadSmtSession() {
  SessionSlot &Slot = threadSlot();
  if (!Slot.S)
    return;
  // A busy session is owned by a live query whose Impl holds a raw pointer
  // into it; defer the drop to the next acquisition instead.
  if (Slot.S->Busy) {
    Slot.S->RecyclePending = true;
    return;
  }
  Slot.S.reset();
}

SmtSessionInfo se2gis::threadSmtSessionInfo() {
  SessionSlot &Slot = threadSlot();
  SmtSessionInfo Info;
  Info.Generation = Slot.Generation;
  if (Slot.S) {
    Info.Live = true;
    Info.Busy = Slot.S->Busy;
    Info.QueriesServed = Slot.S->QueriesServed;
    Info.Depth = Slot.S->Depth;
  }
  return Info;
}

SmtSessionScope::SmtSessionScope() { ++GScopeDepth; }

SmtSessionScope::~SmtSessionScope() {
  if (--GScopeDepth)
    return;
  SessionSlot &Slot = threadSlot();
  if (Slot.S && !Slot.S->Busy &&
      (Slot.S->RecyclePending || overServedBudget(*Slot.S)))
    Slot.S.reset();
}
