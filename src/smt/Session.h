//===- Session.h - Long-lived per-thread Z3 sessions ------------*- C++-*-===//
///
/// \file
/// Internal header of the incremental SMT layer (DESIGN.md "Incremental SMT
/// model"); only Solver.cpp and Session.cpp may include it — it exposes
/// z3++.h, which the rest of the code base must never see.
///
/// A \c SmtSession owns one z3::context + z3::solver pair that stays alive
/// across many \c SmtQuery objects on the same thread. Queries assert into
/// push/pop frames above an always-empty base level, so destroying a query
/// returns the solver to a clean state while Z3's interned AST tables, sort
/// caches, and allocator arenas stay warm — that reuse is where the
/// context-per-query model spent most of its time.
///
/// Sessions are deliberately dumb: all frame bookkeeping, term interning,
/// and cache keying live in SmtQuery::Impl. The session only carries the
/// state that must outlive a query (context, solver, serial counters) and
/// the flags the acquisition policy reads (busy, poisoned, seed).
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SMT_SESSION_H
#define SE2GIS_SMT_SESSION_H

#include <z3++.h>

#include <cstdint>

namespace se2gis {

/// One long-lived Z3 context/solver pair. Not thread-safe (z3::context is
/// not); each instance is confined to the thread that created it, either as
/// the thread's shared session or as a query-private fallback.
class SmtSession {
public:
  explicit SmtSession(unsigned Seed) : Solver(Ctx), SeedApplied(Seed) {}
  SmtSession(const SmtSession &) = delete;
  SmtSession &operator=(const SmtSession &) = delete;

  z3::context Ctx;
  z3::solver Solver;

  /// The Z3 random seed this session was acquired under; a later
  /// setSmtRandomSeed call makes the next acquisition replace the session
  /// (solver-internal random state is not reset by re-applying params).
  unsigned SeedApplied;
  /// Queries that have attached to this session (reuse = served > 1).
  std::uint64_t QueriesServed = 0;
  /// Makes soft-assumption indicator names unique across all queries served
  /// by this session's context: indicator constants are interned by name,
  /// so two queries must never mint the same one.
  std::uint64_t SoftSerial = 0;
  /// Live push scopes on the solver (base frames + user frames).
  unsigned Depth = 0;
  /// A live SmtQuery currently owns the solver. A session serves exactly
  /// one query at a time: a query constructed while the thread session is
  /// busy (nested query lifetimes) gets a private fresh-context session
  /// instead, so it can never observe the outer query's assertions.
  bool Busy = false;
  /// The session must be replaced before serving another query: set after
  /// a Z3 `unknown` (budget expiry or incompleteness can leave the
  /// incremental core in a half-explored state worth discarding) and by
  /// resetThreadSmtSession while busy.
  bool RecyclePending = false;
};

/// Acquires the calling thread's shared session for one query, creating or
/// recycling it per the fallback policy (busy -> nullptr, poisoned / seed
/// change / served-query budget -> replace). \returns nullptr when the
/// caller must use a private fresh-context session instead (incremental
/// mode off, or the thread session is busy). Does NOT mark the session
/// busy; the caller does once it commits to it.
SmtSession *acquireThreadSmtSession();

/// The process-wide Z3 random seed (0 = Z3 default); reads the value set by
/// setSmtRandomSeed.
unsigned currentSmtRandomSeed();

} // namespace se2gis

#endif // SE2GIS_SMT_SESSION_H
