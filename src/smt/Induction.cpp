//===- Induction.cpp ------------------------------------------------------===//

#include "smt/Induction.h"

#include "ast/Simplify.h"
#include "eval/SymbolicEval.h"
#include "smt/Solver.h"
#include "support/Diagnostics.h"
#include "support/PerfCounters.h"
#include "support/Trace.h"

#include <cassert>

using namespace se2gis;

TermPtr se2gis::abstractCalls(
    const TermPtr &T, std::vector<std::pair<TermPtr, VarPtr>> &CallMemo) {
  if (T->getKind() == TermKind::Call) {
    for (const auto &[Known, Var] : CallMemo)
      if (termEquals(Known, T))
        return mkVar(Var);
    VarPtr V = freshVar("c", T->getType());
    CallMemo.emplace_back(T, V);
    return mkVar(V);
  }
  // Rebuild children (a Call nested under another Call's argument is part of
  // the outer call's structural key, so we only recurse on non-call nodes).
  bool Changed = false;
  std::vector<TermPtr> NewArgs;
  NewArgs.reserve(T->numArgs());
  for (const TermPtr &A : T->getArgs()) {
    TermPtr NA = abstractCalls(A, CallMemo);
    Changed |= NA.get() != A.get();
    NewArgs.push_back(std::move(NA));
  }
  if (!Changed)
    return T;
  switch (T->getKind()) {
  case TermKind::Op:
    return mkOp(T->getOp(), std::move(NewArgs));
  case TermKind::Tuple:
    return mkTuple(std::move(NewArgs));
  case TermKind::Proj:
    return mkProj(std::move(NewArgs[0]), T->getIndex());
  case TermKind::Ctor:
    return mkCtor(T->getCtor(), std::move(NewArgs));
  case TermKind::Unknown:
    return mkUnknown(T->getCallee(), T->getType(), std::move(NewArgs));
  default:
    fatalError("leaf node with arguments");
  }
}

bool se2gis::matchTermPattern(const TermPtr &Pattern, const TermPtr &T,
                              Substitution &Binding) {
  if (Pattern->getKind() == TermKind::Var) {
    if (!sameType(Pattern->getVar()->Ty, T->getType()))
      return false;
    Binding.emplace_back(Pattern->getVar()->Id, T);
    return true;
  }
  if (Pattern->getKind() != T->getKind() ||
      Pattern->numArgs() != T->numArgs())
    return false;
  switch (Pattern->getKind()) {
  case TermKind::Ctor:
    if (Pattern->getCtor() != T->getCtor())
      return false;
    break;
  case TermKind::IntLit:
    return Pattern->getIntValue() == T->getIntValue();
  case TermKind::BoolLit:
    return Pattern->getBoolValue() == T->getBoolValue();
  case TermKind::Tuple:
    break;
  default:
    return false;
  }
  for (size_t I = 0; I < Pattern->numArgs(); ++I)
    if (!matchTermPattern(Pattern->getArg(I), T->getArg(I), Binding))
      return false;
  return true;
}

namespace {

/// Abstraction validity check: stuck calls become shared fresh variables.
bool caseValid(const TermPtr &CaseFormula, int TimeoutMs,
               const Deadline &Budget) {
  std::vector<std::pair<TermPtr, VarPtr>> Memo;
  TermPtr Scalar = abstractCalls(CaseFormula, Memo);
  // Any datatype variables left outside calls (e.g. in equalities between
  // data terms) cannot be handled; give up on this case.
  for (const VarPtr &V : freeVars(Scalar))
    if (!V->Ty->isScalar())
      return false;
  return checkValidity(Scalar, TimeoutMs, nullptr, &Budget) ==
         SmtResult::Unsat;
}

bool tryInductionOn(const Program &Prog, const TermPtr &Goal, const VarPtr &X,
                    const InductionOptions &Opts) {
  SymbolicEvaluator SE(Prog);
  SE.bindUnknowns(Opts.Bindings);
  const Datatype *D = X->Ty->getDatatype();

  for (unsigned CI = 0; CI < D->numConstructors(); ++CI) {
    if (Opts.Budget.expired())
      return false; // budget exhausted: "not proved", never a hang
    const ConstructorDecl &C = D->getConstructor(CI);

    std::vector<VarPtr> Fields;
    std::vector<TermPtr> FieldTerms;
    for (const TypePtr &FT : C.Fields) {
      VarPtr F = freshVar("h", FT);
      Fields.push_back(F);
      FieldTerms.push_back(mkVar(F));
    }

    Substitution InstMap;
    InstMap.emplace_back(X->Id, mkCtor(&C, FieldTerms));
    TermPtr Inst;
    try {
      Inst = SE.eval(substitute(Goal, InstMap));
    } catch (const UserError &) {
      return false;
    }

    std::vector<TermPtr> Hyps;
    for (size_t FI = 0; FI < Fields.size(); ++FI) {
      if (!C.Fields[FI]->isData() ||
          C.Fields[FI]->getDatatype() != D)
        continue;
      Substitution HypMap;
      HypMap.emplace_back(X->Id, FieldTerms[FI]);
      try {
        Hyps.push_back(SE.eval(substitute(Goal, HypMap)));
      } catch (const UserError &) {
        return false;
      }
    }

    // Instantiate the auxiliary lemmas whose pattern matches this case.
    // Lemmas with a bare-variable pattern (image invariants of f∘r) are
    // instantiated at every recursive field instead, where they constrain
    // the stuck calls shared with the hypotheses.
    TermPtr CaseTerm = mkCtor(&C, FieldTerms);
    std::vector<std::pair<TermPtr, Substitution>> LemmaInstances;
    for (const ShapeLemma &L : Opts.Lemmas) {
      if (L.Pattern->getKind() == TermKind::Var) {
        for (size_t FI = 0; FI < Fields.size(); ++FI) {
          if (!sameType(C.Fields[FI], L.Pattern->getVar()->Ty))
            continue;
          Substitution Binding;
          Binding.emplace_back(L.Pattern->getVar()->Id, FieldTerms[FI]);
          LemmaInstances.emplace_back(L.Formula, std::move(Binding));
        }
        continue;
      }
      Substitution Binding;
      if (matchTermPattern(L.Pattern, CaseTerm, Binding))
        LemmaInstances.emplace_back(L.Formula, std::move(Binding));
    }
    for (auto &[Formula, Binding] : LemmaInstances) {
      try {
        Hyps.push_back(SE.eval(substitute(Formula, Binding)));
      } catch (const UserError &) {
        return false;
      }
    }

    TermPtr CaseFormula =
        Hyps.empty() ? Inst : mkOp(OpKind::Implies, {mkAndList(Hyps), Inst});
    if (!caseValid(simplify(CaseFormula), Opts.PerQueryTimeoutMs,
                   Opts.Budget))
      return false;
  }
  return true;
}

} // namespace

bool se2gis::proveByInduction(const Program &Prog, const TermPtr &Goal,
                              const InductionOptions &Opts) {
  TraceSpan Span("induction.prove", "smt");
  PhaseScope InductionPhase(Phase::Induction);
  // Base cases and step cases run as a family of closely related validity
  // queries; keep them on one warm session.
  SmtSessionScope SessionScope;
  std::vector<VarPtr> DataVars;
  for (const VarPtr &V : freeVars(Goal))
    if (V->Ty->isData())
      DataVars.push_back(V);

  if (DataVars.empty()) {
    std::vector<std::pair<TermPtr, VarPtr>> Memo;
    TermPtr Scalar = abstractCalls(Goal, Memo);
    return checkValidity(Scalar, Opts.PerQueryTimeoutMs, nullptr,
                         &Opts.Budget) == SmtResult::Unsat;
  }

  int Tried = 0;
  for (const VarPtr &X : DataVars) {
    if (Tried++ >= Opts.MaxInductionVars)
      break;
    if (tryInductionOn(Prog, Goal, X, Opts))
      return true;
  }
  return false;
}
