//===- BoundedCheck.cpp ---------------------------------------------------===//

#include "smt/BoundedCheck.h"

#include "eval/Expand.h"
#include "eval/SymbolicEval.h"
#include "support/Counters.h"
#include "support/Diagnostics.h"

#include <cassert>

using namespace se2gis;

ValuePtr BoundedWitness::lookupData(unsigned Id) const {
  for (const auto &[V, Val] : DataAssignments)
    if (V->Id == Id)
      return Val;
  return nullptr;
}

ValuePtr se2gis::concretizeShape(const TermPtr &Shape,
                                 const SmtModel &Scalars) {
  switch (Shape->getKind()) {
  case TermKind::Var: {
    if (ValuePtr V = Scalars.lookup(Shape->getVar()->Id))
      return V;
    const TypePtr &Ty = Shape->getVar()->Ty;
    if (Ty->isInt())
      return Value::mkInt(0);
    if (Ty->isBool())
      return Value::mkBool(false);
    fatalError("cannot default a value of type " + Ty->str());
  }
  case TermKind::IntLit:
    return Value::mkInt(Shape->getIntValue());
  case TermKind::BoolLit:
    return Value::mkBool(Shape->getBoolValue());
  case TermKind::Tuple: {
    std::vector<ValuePtr> Elems;
    for (const TermPtr &A : Shape->getArgs())
      Elems.push_back(concretizeShape(A, Scalars));
    return Value::mkTuple(std::move(Elems));
  }
  case TermKind::Ctor: {
    std::vector<ValuePtr> Fields;
    for (const TermPtr &A : Shape->getArgs())
      Fields.push_back(concretizeShape(A, Scalars));
    return Value::mkData(Shape->getCtor(), std::move(Fields));
  }
  default:
    fatalError("shape term contains an unexpected node: " + Shape->str());
  }
}

namespace {

std::vector<VarPtr> dataVarsOf(const TermPtr &T) {
  std::vector<VarPtr> Out;
  for (const VarPtr &V : freeVars(T))
    if (V->Ty->isData())
      Out.push_back(V);
  return Out;
}

} // namespace

std::optional<BoundedWitness>
se2gis::boundedSat(const Program &Prog, const TermPtr &Formula,
                   const BoundedOptions &Opts) {
  // The unrolling enumeration issues one query per constructor combination;
  // keep them on one warm session.
  SmtSessionScope SessionScope;
  std::vector<VarPtr> DataVars = dataVarsOf(Formula);

  if (DataVars.empty()) {
    // No datatype variables does not mean scalar: the formula may still
    // apply recursive functions to ground constructor terms (e.g. the
    // invariant on a fully bounded shape, Iθ(C0)), which must be
    // evaluated away before the SMT translator sees them.
    SymbolicEvaluator SE0(Prog);
    SE0.bindUnknowns(Opts.Bindings);
    TermPtr Scalar;
    try {
      Scalar = SE0.eval(Formula);
    } catch (const UserError &) {
      return std::nullopt; // evaluation budget: treat as "none found"
    }
    if (Scalar->getKind() == TermKind::BoolLit && !Scalar->getBoolValue())
      return std::nullopt;
    SmtModel Model;
    if (quickCheck({Scalar}, Opts.PerQueryTimeoutMs, &Model,
                   &Opts.Budget) != SmtResult::Sat)
      return std::nullopt;
    BoundedWitness W;
    W.Scalars = std::move(Model);
    return W;
  }

  // Pre-generate candidate shapes per data variable. A non-recursive
  // datatype has fewer shapes than requested; use what exists.
  std::vector<std::vector<TermPtr>> Shapes(DataVars.size());
  for (size_t I = 0; I < DataVars.size(); ++I) {
    BoundedTermStream Stream(DataVars[I]->Ty->getDatatype());
    for (int K = 0; K < Opts.MaxShapesPerVar; ++K) {
      TermPtr S = Stream.next();
      if (!S)
        break;
      Shapes[I].push_back(std::move(S));
    }
  }

  SymbolicEvaluator SE(Prog);
  SE.bindUnknowns(Opts.Bindings);

  // Try assignments in order of total shape index (fair diagonal order).
  int MaxTotal = 0;
  for (const auto &S : Shapes)
    MaxTotal += static_cast<int>(S.size()) - 1;
  std::vector<int> Combo(DataVars.size(), 0);

  std::optional<BoundedWitness> Found;
  int Tried = 0;
  auto TryCombo = [&]() -> bool {
    if (Opts.Budget.expired() || ++Tried > Opts.MaxCombos)
      return true; // stop enumeration
    countEvent(CounterKind::BoundedInstantiations);
    Substitution Map;
    for (size_t I = 0; I < DataVars.size(); ++I)
      Map.emplace_back(DataVars[I]->Id, Shapes[I][Combo[I]]);
    TermPtr Bounded = substitute(Formula, Map);
    TermPtr Scalar;
    try {
      Scalar = SE.eval(Bounded);
    } catch (const UserError &) {
      return false; // evaluation budget; skip this instantiation
    }
    if (Scalar->getKind() == TermKind::BoolLit && !Scalar->getBoolValue())
      return false;
    SmtModel Model;
    if (quickCheck({Scalar}, Opts.PerQueryTimeoutMs, &Model,
                   &Opts.Budget) != SmtResult::Sat)
      return false;
    BoundedWitness W;
    for (size_t I = 0; I < DataVars.size(); ++I)
      W.DataAssignments.emplace_back(
          DataVars[I], concretizeShape(Shapes[I][Combo[I]], Model));
    W.Scalars = std::move(Model);
    Found = std::move(W);
    return true;
  };

  // Enumerate index vectors with a given sum.
  std::function<bool(size_t, int)> Walk = [&](size_t Pos,
                                              int Remaining) -> bool {
    if (Pos + 1 == Combo.size()) {
      if (Remaining >= static_cast<int>(Shapes[Pos].size()))
        return false;
      Combo[Pos] = Remaining;
      return TryCombo();
    }
    for (int K = 0;
         K <= Remaining && K < static_cast<int>(Shapes[Pos].size()); ++K) {
      Combo[Pos] = K;
      if (Walk(Pos + 1, Remaining - K))
        return true;
    }
    return false;
  };

  for (int Total = 0; Total <= MaxTotal; ++Total) {
    if (Walk(0, Total))
      break;
    if (Opts.Budget.expired())
      break;
  }
  return Found;
}
