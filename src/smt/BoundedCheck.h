//===- BoundedCheck.h - Bounded satisfiability over datatypes ---*- C++-*-===//
///
/// \file
/// Bounded model search for formulas with datatype-typed free variables:
/// instantiate each datatype variable with fully bounded terms (constructor
/// trees with symbolic scalar leaves) of growing size, symbolically evaluate
/// the recursive calls away, and discharge the resulting scalar formula to
/// Z3. This is the paper's second solver channel ("a bounded check of its
/// negation by unrolling bounded symbolic terms of type θ up to a fixed
/// depth", §8) and the producer of concrete certificates: verification
/// counterexamples, positive examples for invariant learning, and the
/// concrete inputs that make an unrealizability witness valid.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SMT_BOUNDEDCHECK_H
#define SE2GIS_SMT_BOUNDEDCHECK_H

#include "eval/Interp.h"
#include "eval/Value.h"
#include "lang/Program.h"
#include "smt/Solver.h"
#include "support/Stopwatch.h"

#include <optional>

namespace se2gis {

/// A satisfying instantiation found by bounded search.
struct BoundedWitness {
  /// Concrete values for the datatype-typed free variables.
  std::vector<std::pair<VarPtr, ValuePtr>> DataAssignments;
  /// Values for the scalar free variables (the original ones and the leaves
  /// introduced by bounding).
  SmtModel Scalars;

  /// \returns the concrete value assigned to data variable \p Id (nullptr if
  /// absent).
  ValuePtr lookupData(unsigned Id) const;
};

/// Tuning knobs for bounded search.
struct BoundedOptions {
  /// How many bounded shapes to try per datatype variable.
  int MaxShapesPerVar = 10;
  /// Hard cap on instantiation combinations tried (multi-variable
  /// formulas grow multiplicatively otherwise).
  int MaxCombos = 64;
  /// Z3 timeout per scalar query (ms).
  int PerQueryTimeoutMs = 300;
  /// Overall deadline; expiry returns nullopt (treated as "none found").
  Deadline Budget;
  /// Optional solution bindings inlined during evaluation.
  const UnknownBindings *Bindings = nullptr;
};

/// Searches for bounded values of \p Formula's datatype variables making it
/// satisfiable. \returns a witness, or nullopt if none was found within the
/// bounds (which does NOT prove unsatisfiability).
std::optional<BoundedWitness> boundedSat(const Program &Prog,
                                         const TermPtr &Formula,
                                         const BoundedOptions &Opts);

/// Evaluates a bounded shape term (constructors / tuples / scalar variables
/// only) to a concrete value using \p Scalars for the leaves; unassigned
/// leaves default to 0 / false.
ValuePtr concretizeShape(const TermPtr &Shape, const SmtModel &Scalars);

} // namespace se2gis

#endif // SE2GIS_SMT_BOUNDEDCHECK_H
