//===- Solver.cpp ---------------------------------------------------------===//

#include "smt/Solver.h"

#include "cache/CacheConfig.h"
#include "cache/Canonical.h"
#include "cache/SmtQueryCache.h"
#include "smt/Session.h"
#include "support/Counters.h"
#include "support/Diagnostics.h"
#include "support/PerfCounters.h"
#include "support/Stopwatch.h"
#include "support/Trace.h"

#include <z3++.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <sstream>
#include <unordered_map>

using namespace se2gis;

unsigned se2gis::smtRlimitForTimeoutMs(int TimeoutMs) {
  // ~50k resource units approximate one millisecond on commodity hardware;
  // the cap keeps the product inside Z3's unsigned parameter space.
  unsigned long long Rlimit =
      static_cast<unsigned long long>(TimeoutMs > 0 ? TimeoutMs : 1) *
      50000ULL;
  return static_cast<unsigned>(Rlimit > 4000000000ULL ? 4000000000ULL
                                                      : Rlimit);
}

// --- SmtModel -----------------------------------------------------------===//

void SmtModel::bind(const VarPtr &V, ValuePtr Val) {
  Assignments.emplace_back(V, std::move(Val));
}

ValuePtr SmtModel::lookup(unsigned Id) const {
  for (const auto &[V, Val] : Assignments)
    if (V->Id == Id)
      return Val;
  return nullptr;
}

std::string SmtModel::str() const {
  std::ostringstream OS;
  OS << '[';
  for (size_t I = 0; I < Assignments.size(); ++I) {
    if (I)
      OS << ", ";
    OS << Assignments[I].first->Name << " <- " << Assignments[I].second->str();
  }
  OS << ']';
  return OS.str();
}

// --- Translation --------------------------------------------------------===//

namespace {

/// Appends the scalar leaf types of \p Ty (tuples flattened) to \p Out.
void flattenType(const TypePtr &Ty, std::vector<TypePtr> &Out) {
  if (Ty->isTuple()) {
    for (const TypePtr &E : Ty->tupleElems())
      flattenType(E, Out);
    return;
  }
  if (!Ty->isInt() && !Ty->isBool())
    fatalError("non-scalar type reached the SMT solver: " + Ty->str());
  Out.push_back(Ty);
}

size_t flatWidth(const TypePtr &Ty) {
  std::vector<TypePtr> Leaves;
  flattenType(Ty, Leaves);
  return Leaves.size();
}

} // namespace

struct SmtQuery::Impl {
  // The session this query runs on: the thread's shared one (Borrowed,
  // reused across queries) or a private fresh-context fallback (Owned —
  // incremental mode off, or the shared session was busy/poisoned).
  SmtSession *Borrowed = nullptr;
  std::unique_ptr<SmtSession> Owned;

  Deadline Budget;
  bool HasDeadline = false;

  // Hit on every Var/Unknown node of every translated term; hash maps with
  // reserved capacity keep the hot path rehash- and rebalance-free. Model
  // readback sorts the entries by Id (below), so iteration order stays the
  // deterministic order the rest of the stack depends on. Both caches are
  // query-local and frame-scoped: the journals record insertion order, and
  // a pop erases exactly the entries interned while the popped frame was
  // open — so an unknown re-declared with a different signature in a later
  // frame, or a variable first seen in a retracted scope, can never alias
  // a stale z3 handle.
  std::unordered_map<unsigned, std::pair<VarPtr, std::vector<z3::expr>>>
      VarCache;
  std::unordered_map<std::string, std::vector<z3::func_decl>> UnknownCache;
  std::vector<unsigned> VarJournal;
  std::vector<std::string> UnknownJournal;

  std::vector<TermPtr> Requests;
  std::vector<z3::expr> SoftIndicators;
  // Cleared-for-checking by disableSoft(): the asserted soft implications
  // stay in the solver but their indicators are no longer assumed (or
  // cache-keyed), which makes them vacuous.
  bool SoftActive = true;
  // Source-level copies of the asserted terms, kept for cache keying: the
  // canonical hasher works on Term structure, which the eager translation
  // into Z3 ASTs discards.
  std::vector<TermPtr> HardTerms;
  std::vector<TermPtr> SoftTerms;

  /// Rollback marks of one push() scope; everything past a mark is
  /// retracted by the matching pop().
  struct FrameMarks {
    size_t Vars, Unknowns, Hard, Soft, Indicators, Reqs;
  };
  std::vector<FrameMarks> Frames;

  // Cumulative Term->Z3 translation wall time; checkSat reports the delta
  // since the previous check into the smt_translate histogram, so repeated
  // checks on a warm query show up as near-zero samples.
  std::uint64_t TranslateNs = 0;
  std::uint64_t TranslateReportedNs = 0;

  SmtSession &session() { return Borrowed ? *Borrowed : *Owned; }
  z3::context &ctx() { return session().Ctx; }
  z3::solver &solver() { return session().Solver; }

  Impl() {
    Borrowed = acquireThreadSmtSession();
    if (Borrowed) {
      perfAdd(Borrowed->QueriesServed ? PerfCounter::SmtSessionReuse
                                      : PerfCounter::SmtSessionFresh);
      Borrowed->Busy = true;
      ++Borrowed->QueriesServed;
      // The query's base frame: everything it asserts lives above this
      // mark, so the destructor can return the shared solver to its
      // always-empty base state.
      try {
        Borrowed->Solver.push();
      } catch (const z3::exception &E) {
        fatalError(std::string("Z3 error opening a session frame: ") +
                   E.msg());
      }
      ++Borrowed->Depth;
      perfAdd(PerfCounter::SmtPush);
    } else {
      Owned = std::make_unique<SmtSession>(currentSmtRandomSeed());
      ++Owned->QueriesServed;
      perfAdd(PerfCounter::SmtSessionFresh);
    }
    VarCache.reserve(64);
    UnknownCache.reserve(16);
  }

  ~Impl() {
    if (!Borrowed)
      return;
    // Unwind every scope this query still holds — unpopped user frames plus
    // the base frame — so the shared solver is assertion-free again. A Z3
    // failure here poisons the session instead of throwing from a dtor.
    unsigned ToPop = static_cast<unsigned>(Frames.size()) + 1;
    try {
      Borrowed->Solver.pop(ToPop);
      perfAdd(PerfCounter::SmtPop, ToPop);
    } catch (const z3::exception &) {
      Borrowed->RecyclePending = true;
    }
    Borrowed->Depth = Borrowed->Depth >= ToPop ? Borrowed->Depth - ToPop : 0;
    Borrowed->Busy = false;
  }

  z3::sort sortOf(const TypePtr &Ty) {
    return Ty->isInt() ? ctx().int_sort() : ctx().bool_sort();
  }

  const std::vector<z3::expr> &varExprs(const VarPtr &V) {
    auto It = VarCache.find(V->Id);
    if (It != VarCache.end())
      return It->second.second;
    std::vector<TypePtr> Leaves;
    flattenType(V->Ty, Leaves);
    std::vector<z3::expr> Exprs;
    for (size_t I = 0; I < Leaves.size(); ++I) {
      std::string Name = "v" + std::to_string(V->Id) +
                         (Leaves.size() > 1 ? "_" + std::to_string(I) : "");
      Exprs.push_back(ctx().constant(Name.c_str(), sortOf(Leaves[I])));
    }
    auto [Pos, Inserted] =
        VarCache.emplace(V->Id, std::make_pair(V, std::move(Exprs)));
    (void)Inserted;
    VarJournal.push_back(V->Id);
    return Pos->second.second;
  }

  const std::vector<z3::func_decl> &unknownDecls(const Term &U) {
    auto It = UnknownCache.find(U.getCallee());
    if (It != UnknownCache.end())
      return It->second;
    z3::sort_vector Domain(ctx());
    for (const TermPtr &A : U.getArgs()) {
      std::vector<TypePtr> Leaves;
      flattenType(A->getType(), Leaves);
      for (const TypePtr &L : Leaves)
        Domain.push_back(sortOf(L));
    }
    std::vector<TypePtr> RetLeaves;
    flattenType(U.getType(), RetLeaves);
    std::vector<z3::func_decl> Decls;
    for (size_t I = 0; I < RetLeaves.size(); ++I) {
      std::string Name = "u_" + U.getCallee() +
                         (RetLeaves.size() > 1 ? "_" + std::to_string(I) : "");
      Decls.push_back(
          ctx().function(Name.c_str(), Domain, sortOf(RetLeaves[I])));
    }
    auto [Pos, Inserted] =
        UnknownCache.emplace(U.getCallee(), std::move(Decls));
    (void)Inserted;
    UnknownJournal.push_back(U.getCallee());
    return Pos->second;
  }

  /// Translates \p T into its flattened scalar components.
  std::vector<z3::expr> translate(const TermPtr &T) {
    switch (T->getKind()) {
    case TermKind::Var:
      return varExprs(T->getVar());
    case TermKind::IntLit:
      return {ctx().int_val(static_cast<int64_t>(T->getIntValue()))};
    case TermKind::BoolLit:
      return {ctx().bool_val(T->getBoolValue())};
    case TermKind::Tuple: {
      std::vector<z3::expr> Out;
      for (const TermPtr &A : T->getArgs())
        for (z3::expr &E : translate(A))
          Out.push_back(std::move(E));
      return Out;
    }
    case TermKind::Proj: {
      std::vector<z3::expr> Tup = translate(T->getArg(0));
      const auto &Elems = T->getArg(0)->getType()->tupleElems();
      size_t Offset = 0;
      for (unsigned I = 0; I < T->getIndex(); ++I)
        Offset += flatWidth(Elems[I]);
      size_t Width = flatWidth(Elems[T->getIndex()]);
      return std::vector<z3::expr>(Tup.begin() + Offset,
                                   Tup.begin() + Offset + Width);
    }
    case TermKind::Unknown: {
      const std::vector<z3::func_decl> &Decls = unknownDecls(*T);
      z3::expr_vector Args(ctx());
      for (const TermPtr &A : T->getArgs())
        for (z3::expr &E : translate(A))
          Args.push_back(E);
      std::vector<z3::expr> Out;
      for (const z3::func_decl &D : Decls)
        Out.push_back(D(Args));
      return Out;
    }
    case TermKind::Op:
      return translateOp(T);
    case TermKind::Ctor:
    case TermKind::Call:
    case TermKind::Hole:
      fatalError("unreduced term reached the SMT solver: " + T->str());
    }
    fatalError("bad term kind");
  }

  std::vector<z3::expr> translateOp(const TermPtr &T) {
    OpKind Op = T->getOp();

    if (Op == OpKind::Ite) {
      z3::expr C = translate(T->getArg(0))[0];
      std::vector<z3::expr> Then = translate(T->getArg(1));
      std::vector<z3::expr> Else = translate(T->getArg(2));
      std::vector<z3::expr> Out;
      for (size_t I = 0; I < Then.size(); ++I)
        Out.push_back(z3::ite(C, Then[I], Else[I]));
      return Out;
    }
    if (Op == OpKind::Eq || Op == OpKind::Ne) {
      std::vector<z3::expr> A = translate(T->getArg(0));
      std::vector<z3::expr> B = translate(T->getArg(1));
      z3::expr_vector Eqs(ctx());
      for (size_t I = 0; I < A.size(); ++I)
        Eqs.push_back(A[I] == B[I]);
      z3::expr All = z3::mk_and(Eqs);
      return {Op == OpKind::Eq ? All : !All};
    }
    if (Op == OpKind::And || Op == OpKind::Or) {
      z3::expr_vector Parts(ctx());
      for (const TermPtr &A : T->getArgs())
        Parts.push_back(translate(A)[0]);
      return {Op == OpKind::And ? z3::mk_and(Parts) : z3::mk_or(Parts)};
    }

    std::vector<z3::expr> Args;
    for (const TermPtr &A : T->getArgs())
      Args.push_back(translate(A)[0]);
    switch (Op) {
    case OpKind::Add:
      return {Args[0] + Args[1]};
    case OpKind::Sub:
      return {Args[0] - Args[1]};
    case OpKind::Neg:
      return {-Args[0]};
    case OpKind::Mul:
      return {Args[0] * Args[1]};
    case OpKind::Div:
      return {Args[0] / Args[1]};
    case OpKind::Mod:
      return {z3::mod(Args[0], Args[1])};
    case OpKind::Min:
      return {z3::ite(Args[0] <= Args[1], Args[0], Args[1])};
    case OpKind::Max:
      return {z3::ite(Args[0] >= Args[1], Args[0], Args[1])};
    case OpKind::Abs:
      return {z3::ite(Args[0] >= 0, Args[0], -Args[0])};
    case OpKind::Lt:
      return {Args[0] < Args[1]};
    case OpKind::Le:
      return {Args[0] <= Args[1]};
    case OpKind::Gt:
      return {Args[0] > Args[1]};
    case OpKind::Ge:
      return {Args[0] >= Args[1]};
    case OpKind::Not:
      return {!Args[0]};
    case OpKind::Implies:
      return {z3::implies(Args[0], Args[1])};
    default:
      fatalError("unhandled operator in SMT translation");
    }
  }

  /// Reads one scalar leaf back from the model.
  ValuePtr leafValue(const z3::model &M, const z3::expr &E,
                     const TypePtr &Ty) {
    z3::expr V = M.eval(E, /*model_completion=*/true);
    if (Ty->isInt()) {
      int64_t N = 0;
      if (!V.is_numeral_i64(N))
        fatalError("non-numeral model value");
      return Value::mkInt(N);
    }
    return Value::mkBool(V.is_true());
  }

  /// Reassembles a (possibly tuple) value from flattened components.
  ValuePtr rebuild(const z3::model &M, const TypePtr &Ty,
                   const std::vector<z3::expr> &Comps, size_t &Cursor) {
    if (Ty->isTuple()) {
      std::vector<ValuePtr> Elems;
      for (const TypePtr &E : Ty->tupleElems())
        Elems.push_back(rebuild(M, E, Comps, Cursor));
      return Value::mkTuple(std::move(Elems));
    }
    return leafValue(M, Comps[Cursor++], Ty);
  }
};

// --- SmtQuery -----------------------------------------------------------===//

SmtQuery::SmtQuery() : I(std::make_unique<Impl>()) {}
SmtQuery::~SmtQuery() = default;

void SmtQuery::add(const TermPtr &Assertion) {
  assert(Assertion->getType()->isBool() && "assertions must be boolean");
  try {
    Stopwatch Watch;
    z3::expr E = I->translate(Assertion)[0];
    I->TranslateNs += Watch.elapsedNs();
    I->solver().add(E);
    I->HardTerms.push_back(Assertion);
  } catch (const z3::exception &E) {
    fatalError(std::string("Z3 error while asserting: ") + E.msg());
  }
}

void SmtQuery::addSoft(const TermPtr &Assertion) {
  assert(Assertion->getType()->isBool() && "assertions must be boolean");
  try {
    // The session serial keeps indicator names unique across every query a
    // shared context serves: bool_const interns by name, so a per-query
    // index would tie unrelated queries' soft implications together.
    std::string Name = "soft!" + std::to_string(I->session().SoftSerial++);
    z3::expr B = I->ctx().bool_const(Name.c_str());
    Stopwatch Watch;
    z3::expr E = I->translate(Assertion)[0];
    I->TranslateNs += Watch.elapsedNs();
    I->solver().add(z3::implies(B, E));
    I->SoftIndicators.push_back(B);
    I->SoftTerms.push_back(Assertion);
  } catch (const z3::exception &E) {
    fatalError(std::string("Z3 error while asserting: ") + E.msg());
  }
}

void SmtQuery::push() {
  try {
    I->solver().push();
  } catch (const z3::exception &E) {
    fatalError(std::string("Z3 error on push: ") + E.msg());
  }
  ++I->session().Depth;
  I->Frames.push_back({I->VarJournal.size(), I->UnknownJournal.size(),
                       I->HardTerms.size(), I->SoftTerms.size(),
                       I->SoftIndicators.size(), I->Requests.size()});
  perfAdd(PerfCounter::SmtPush);
}

void SmtQuery::pop() {
  assert(!I->Frames.empty() && "pop without matching push");
  Impl::FrameMarks F = I->Frames.back();
  I->Frames.pop_back();
  try {
    I->solver().pop();
  } catch (const z3::exception &E) {
    fatalError(std::string("Z3 error on pop: ") + E.msg());
  }
  --I->session().Depth;
  // Retract the frame's interned handles along with its assertions: a var
  // or unknown first seen inside the frame re-interns on a later
  // appearance, so model readback and unknown signatures can never go
  // through a handle whose declaration context was popped.
  for (size_t K = F.Vars; K < I->VarJournal.size(); ++K)
    I->VarCache.erase(I->VarJournal[K]);
  I->VarJournal.resize(F.Vars);
  for (size_t K = F.Unknowns; K < I->UnknownJournal.size(); ++K)
    I->UnknownCache.erase(I->UnknownJournal[K]);
  I->UnknownJournal.resize(F.Unknowns);
  I->HardTerms.resize(F.Hard);
  I->SoftTerms.resize(F.Soft);
  I->SoftIndicators.erase(I->SoftIndicators.begin() +
                              static_cast<std::ptrdiff_t>(F.Indicators),
                          I->SoftIndicators.end());
  I->Requests.resize(F.Reqs);
  perfAdd(PerfCounter::SmtPop);
}

void SmtQuery::disableSoft() { I->SoftActive = false; }

void SmtQuery::requestValue(const TermPtr &T) { I->Requests.push_back(T); }

void SmtQuery::setDeadline(const Deadline &Budget) {
  I->Budget = Budget;
  I->HasDeadline = true;
}

SmtResult SmtQuery::checkSat(int TimeoutMs, SmtModel *ModelOut,
                             std::vector<ValuePtr> *ValuesOut) {
  TraceSpan Span("smt.checkSat", "smt");
  PhaseScope SmtPhase(Phase::Smt);
  Stopwatch Watch;
  bool CacheHit = false;
  SmtResult R = checkSatImpl(TimeoutMs, ModelOut, ValuesOut, CacheHit);
  perfRecordNs(PerfHistogram::SmtCheckNs, Watch.elapsedNs());
  // Translation cost since the last check: repeated checks on a live query
  // (blocker deltas, push/pop partners) translate almost nothing, and the
  // histogram is where that shows.
  perfRecordNs(PerfHistogram::SmtTranslateNs,
               I->TranslateNs - I->TranslateReportedNs);
  I->TranslateReportedNs = I->TranslateNs;
  if (Span.active()) {
    Span.arg("verdict", R == SmtResult::Sat     ? "sat"
                        : R == SmtResult::Unsat ? "unsat"
                                                : "unknown");
    Span.arg("cache", CacheHit ? "hit" : "miss");
  }
  return R;
}

SmtResult SmtQuery::checkSatImpl(int TimeoutMs, SmtModel *ModelOut,
                                 std::vector<ValuePtr> *ValuesOut,
                                 bool &CacheHit) {
  countEvent(CounterKind::SmtChecks);
  perfAdd(PerfCounter::SmtQueries);
  // The Z3 budget mapping: clamp the per-query slice to the remaining run
  // budget. An already-expired deadline skips the solver entirely — the
  // caller's poll point translates the Unknown into a Timeout verdict.
  if (I->HasDeadline) {
    TimeoutMs = I->Budget.queryBudgetMs(TimeoutMs);
    if (TimeoutMs <= 0) {
      perfAdd(PerfCounter::SmtBudget);
      return SmtResult::Unknown;
    }
  }
  // Consult the memoization cache before touching Z3. This sits after the
  // deadline check on purpose: an expired budget must never be answered
  // from (or recorded into) the cache.
  static const std::vector<TermPtr> NoSoft;
  const bool UseCache = cacheEnabled();
  CanonicalQuery CQ;
  if (UseCache) {
    Stopwatch ProbeWatch;
    CQ = canonicalizeQuery(I->HardTerms,
                           I->SoftActive ? I->SoftTerms : NoSoft,
                           I->Requests);
    auto Hit = smtQueryCache().lookup(CQ, I->Requests.size());
    perfRecordNs(PerfHistogram::CacheProbeNs, ProbeWatch.elapsedNs());
    if (Hit) {
      CacheHit = true;
      if (Hit->Result == CachedSmtResult::Unsat) {
        perfAdd(PerfCounter::SmtUnsat);
        return SmtResult::Unsat;
      }
      perfAdd(PerfCounter::SmtSat);
      if (ModelOut) {
        // Rebind the cached slot values to this query's own variables, in
        // the ascending-Id order the rest of the stack depends on.
        std::vector<std::pair<VarPtr, ValuePtr>> Bindings;
        Bindings.reserve(CQ.VarOrder.size());
        for (size_t K = 0; K < CQ.VarOrder.size(); ++K)
          Bindings.emplace_back(CQ.VarOrder[K], Hit->ModelBySlot[K]);
        std::sort(Bindings.begin(), Bindings.end(),
                  [](const auto &A, const auto &B) {
                    return A.first->Id < B.first->Id;
                  });
        for (auto &[V, Val] : Bindings)
          ModelOut->bind(V, std::move(Val));
      }
      if (ValuesOut)
        for (size_t K = 0; K < I->Requests.size(); ++K)
          ValuesOut->push_back(Hit->RequestValues[K]);
      return SmtResult::Sat;
    }
  }
  try {
    // Budget via Z3's deterministic resource limit rather than the
    // wall-clock "timeout" parameter (see smtRlimitForTimeoutMs). The limit
    // is applied per check() call (Z3 scopes it to the call), so a
    // long-lived session solver gives every query its own slice rather than
    // a shared cumulative one.
    z3::params P(I->ctx());
    P.set("rlimit", smtRlimitForTimeoutMs(TimeoutMs));
    if (unsigned Seed = I->session().SeedApplied)
      P.set("random_seed", Seed);
    I->solver().set(P);

    // Translate the requests before checking so their symbols exist.
    std::vector<std::vector<z3::expr>> RequestExprs;
    {
      Stopwatch Watch;
      for (const TermPtr &R : I->Requests)
        RequestExprs.push_back(I->translate(R));
      I->TranslateNs += Watch.elapsedNs();
    }

    // MaxSAT-lite over the soft assumptions: drop unsat-core members until
    // the hard assertions plus remaining assumptions are satisfiable.
    std::vector<z3::expr> Active =
        I->SoftActive ? I->SoftIndicators : std::vector<z3::expr>();
    z3::check_result R;
    while (true) {
      z3::expr_vector Assumptions(I->ctx());
      for (const z3::expr &B : Active)
        Assumptions.push_back(B);
      {
        PerfTimerScope Z3Timer(PerfTimer::Z3SolveNs);
        R = Active.empty() ? I->solver().check()
                           : I->solver().check(Assumptions);
      }
      if (R != z3::unsat || Active.empty())
        break;
      z3::expr_vector Core = I->solver().unsat_core();
      if (Core.empty()) {
        // The hard assertions alone are unsat.
        Active.clear();
        continue;
      }
      size_t Before = Active.size();
      for (unsigned K = 0; K < Core.size(); ++K) {
        z3::expr C = Core[K];
        Active.erase(std::remove_if(Active.begin(), Active.end(),
                                    [&](const z3::expr &B) {
                                      return z3::eq(B, C);
                                    }),
                     Active.end());
      }
      if (Active.size() == Before)
        Active.clear(); // defensive: guarantee progress
    }
    if (R == z3::unsat) {
      perfAdd(PerfCounter::SmtUnsat);
      if (UseCache)
        smtQueryCache().insert(CQ, SmtCacheEntry{CachedSmtResult::Unsat,
                                                 {}, {}});
      return SmtResult::Unsat;
    }
    if (R == z3::unknown) {
      // Distinguish "the run budget expired mid-query" from genuine solver
      // incompleteness: the former is a budget-exceeded signal that the
      // algorithm loops turn into a Timeout verdict.
      if (I->HasDeadline && I->Budget.expired())
        perfAdd(PerfCounter::SmtBudget);
      else
        perfAdd(PerfCounter::SmtUnknown);
      // Either way the shared solver gave up mid-search; retire it after
      // this query so a half-explored incremental core can never color a
      // later verdict.
      if (I->Borrowed)
        I->Borrowed->RecyclePending = true;
      return SmtResult::Unknown;
    }
    perfAdd(PerfCounter::SmtSat);

    if (ModelOut || ValuesOut || UseCache) {
      z3::model M = I->solver().get_model();
      // The requested values are needed both by the caller and by the
      // cache entry; rebuild them once.
      std::vector<ValuePtr> RequestVals;
      if (ValuesOut || UseCache)
        for (size_t K = 0; K < RequestExprs.size(); ++K) {
          size_t Cursor = 0;
          RequestVals.push_back(I->rebuild(M, I->Requests[K]->getType(),
                                           RequestExprs[K], Cursor));
        }
      if (ModelOut) {
        // Bind in ascending-Id order: witness projection, certificate
        // conjunctions, and invariant-inference domains all iterate the
        // model's assignment order, so it must not depend on hash layout.
        // The VarCache holds exactly the live frames' variables (popped
        // frames erase theirs), so a session query binds the same set a
        // fresh-context query would.
        std::vector<const std::pair<VarPtr, std::vector<z3::expr>> *> Entries;
        Entries.reserve(I->VarCache.size());
        for (const auto &[Id, Entry] : I->VarCache) {
          (void)Id;
          Entries.push_back(&Entry);
        }
        std::sort(Entries.begin(), Entries.end(),
                  [](const auto *A, const auto *B) {
                    return A->first->Id < B->first->Id;
                  });
        for (const auto *Entry : Entries) {
          size_t Cursor = 0;
          ModelOut->bind(Entry->first,
                         I->rebuild(M, Entry->first->Ty, Entry->second,
                                    Cursor));
        }
      }
      if (ValuesOut)
        for (const ValuePtr &V : RequestVals)
          ValuesOut->push_back(V);
      if (UseCache) {
        // One model value per canonical slot; the slot order is part of the
        // key's meaning, so alpha-equivalent queries can rebind them.
        SmtCacheEntry Entry;
        Entry.Result = CachedSmtResult::Sat;
        bool Complete = true;
        for (const VarPtr &V : CQ.VarOrder) {
          auto It = I->VarCache.find(V->Id);
          if (It == I->VarCache.end()) {
            Complete = false;
            break;
          }
          size_t Cursor = 0;
          Entry.ModelBySlot.push_back(
              I->rebuild(M, V->Ty, It->second.second, Cursor));
        }
        if (Complete) {
          Entry.RequestValues = std::move(RequestVals);
          smtQueryCache().insert(CQ, std::move(Entry));
        }
      }
    }
    return SmtResult::Sat;
  } catch (const z3::exception &E) {
    // fatalError does not return, but make sure a diagnosable session is
    // not reused if that ever changes.
    if (I->Borrowed)
      I->Borrowed->RecyclePending = true;
    fatalError(std::string("Z3 error during check: ") + E.msg());
  }
}

// --- Convenience wrappers ------------------------------------------------===//

SmtResult se2gis::quickCheck(const std::vector<TermPtr> &Assertions,
                             int TimeoutMs, SmtModel *ModelOut,
                             const Deadline *Budget) {
  SmtQuery Q;
  if (Budget)
    Q.setDeadline(*Budget);
  for (const TermPtr &A : Assertions)
    Q.add(A);
  return Q.checkSat(TimeoutMs, ModelOut);
}

SmtResult se2gis::checkValidity(const TermPtr &Formula, int TimeoutMs,
                                SmtModel *CounterOut,
                                const Deadline *Budget) {
  SmtQuery Q;
  if (Budget)
    Q.setDeadline(*Budget);
  Q.add(mkNot(Formula));
  return Q.checkSat(TimeoutMs, CounterOut);
}
