//===- Induction.h - One-step structural induction prover -------*- C++-*-===//
///
/// \file
/// Proves goals of the form  ∀ z⃗, x:θ · P(x, z⃗)  by one-step structural
/// induction on a datatype variable, discharging each constructor case to Z3
/// as a quantifier-free query in which stuck recursive calls are abstracted
/// into fresh variables (congruence by structural term equality).
///
/// This replaces the paper's use of CVC4's induction support (§8): the SMT
/// calls for invariant inference "are implemented as parallel calls to two
/// solver instances — one attempts to prove by induction, the second does a
/// bounded check of its negation". Our induction channel is this prover; the
/// bounded channel is smt/BoundedCheck.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SMT_INDUCTION_H
#define SE2GIS_SMT_INDUCTION_H

#include "eval/Interp.h"
#include "lang/Program.h"
#include "support/Cancellation.h"

namespace se2gis {

/// An auxiliary lemma instantiated during induction: when a constructor
/// case `x := C(fields)` matches \c Pattern (variables in the pattern bind
/// the fields), \c Formula is substituted accordingly and added to the
/// case's hypotheses. SE²GIS feeds the invariants learned by the coarsening
/// loop back into the final solution proof this way.
struct ShapeLemma {
  TermPtr Pattern;
  TermPtr Formula;
};

/// Options for the induction prover.
struct InductionOptions {
  /// Z3 timeout per constructor-case query (ms).
  int PerQueryTimeoutMs = 300;
  /// Try induction on at most this many candidate datatype variables.
  int MaxInductionVars = 2;
  /// Overall deadline: polled between constructor cases and mapped onto
  /// each case query's Z3 budget; expiry makes the proof fail ("not
  /// proved"), never hang.
  Deadline Budget;
  /// Optional solution bindings inlined during evaluation.
  const UnknownBindings *Bindings = nullptr;
  /// Auxiliary lemmas (see ShapeLemma).
  std::vector<ShapeLemma> Lemmas;
};

/// Structural matching of \p Pattern (constructors/tuples/literals with
/// variable leaves) against \p T; variable leaves bind subterms of the same
/// type. \returns true and extends \p Binding on success.
bool matchTermPattern(const TermPtr &Pattern, const TermPtr &T,
                      Substitution &Binding);

/// Attempts to prove that \p Goal (a boolean term whose free variables are
/// implicitly universally quantified; datatype variables allowed) is valid.
/// \returns true only on a successful proof; false means "not proved", not
/// "refuted".
bool proveByInduction(const Program &Prog, const TermPtr &Goal,
                      const InductionOptions &Opts = {});

/// Replaces every maximal Call-rooted subterm of \p T by a fresh scalar
/// variable, consistently (structurally equal calls map to the same
/// variable). Exposed for testing; \p CallMemo accumulates the mapping.
TermPtr abstractCalls(const TermPtr &T,
                      std::vector<std::pair<TermPtr, VarPtr>> &CallMemo);

} // namespace se2gis

#endif // SE2GIS_SMT_INDUCTION_H
