//===- Solver.h - Z3-backed SMT queries over scalar terms -------*- C++-*-===//
///
/// \file
/// The only interface to Z3 in the code base. By design every query the
/// SE²GIS stack emits is *scalar*: terms over Int/Bool/tuple variables,
/// builtin operators, and (optionally) unknown-function applications that are
/// encoded as uninterpreted functions (this is how the SGE synthesis step
/// finds candidate input/output tables, and how Algorithm 1 solves for
/// witness model pairs). Datatype values and recursive calls never reach the
/// solver; the evaluators reduce them away first.
///
/// Tuples are scalarized during translation: a tuple-typed variable becomes
/// one Z3 constant per flattened component, equality becomes a conjunction,
/// and tuple-returning unknowns become one uninterpreted function per
/// component.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SMT_SOLVER_H
#define SE2GIS_SMT_SOLVER_H

#include "ast/Term.h"
#include "eval/Value.h"
#include "support/Cancellation.h"

#include <memory>
#include <optional>
#include <vector>

namespace se2gis {

/// Outcome of a satisfiability query.
enum class SmtResult : unsigned char { Sat, Unsat, Unknown };

/// A scalar model: values for the free variables of a query.
class SmtModel {
public:
  void bind(const VarPtr &V, ValuePtr Val);

  /// \returns the value of variable \p Id, or nullptr.
  ValuePtr lookup(unsigned Id) const;

  const std::vector<std::pair<VarPtr, ValuePtr>> &assignments() const {
    return Assignments;
  }

  std::string str() const;

private:
  std::vector<std::pair<VarPtr, ValuePtr>> Assignments;
};

/// A single satisfiability query; cheap to construct. A query runs on an
/// *SMT session* — a long-lived per-thread Z3 context/solver pair — when
/// the incremental layer is enabled (the default; see setSmtIncremental):
/// construction attaches the query to the thread's session and opens a
/// push/pop frame for its assertions, destruction pops the frame, so
/// consecutive queries reuse a warm solver instead of rebuilding a context.
/// Construction falls back to a private fresh context when the session is
/// busy (a query nested inside another query's lifetime), poisoned by a
/// prior `unknown`, or invalidated by a seed change — a degraded session
/// can therefore never change a verdict. With the layer disabled every
/// query owns a private fresh context (the historical behavior).
class SmtQuery {
public:
  SmtQuery();
  ~SmtQuery();
  SmtQuery(const SmtQuery &) = delete;
  SmtQuery &operator=(const SmtQuery &) = delete;

  /// Adds a boolean scalar assertion.
  void add(const TermPtr &Assertion);

  /// Opens a nested assertion scope: assertions, soft assertions, and value
  /// requests issued after \c push are retracted again by the matching
  /// \c pop. Callers with families of closely related checks (CEGIS
  /// blockers, witness partner deltas) assert the shared base once and
  /// stack the per-check delta in a scope.
  void push();

  /// Closes the innermost scope opened by \c push, retracting everything
  /// asserted or requested inside it (including each variable or unknown
  /// first interned there, so a later re-appearance re-interns it).
  void pop();

  /// Permanently deactivates this query's soft assertions: subsequent
  /// \c checkSat calls behave (and cache-key) as if \c addSoft had never
  /// been called. Used when a caller's anchoring heuristic only applies to
  /// its first check (see SgeSolver).
  void disableSoft();

  /// Adds a *soft* assertion: \c checkSat tries to satisfy as many soft
  /// assertions as possible, iteratively dropping unsat-core members
  /// (MaxSAT-lite). Used to anchor EUF models to the previous candidate's
  /// predictions so underconstrained cells don't get arbitrary values.
  void addSoft(const TermPtr &Assertion);

  /// Requests the value of scalar term \p T in a sat model; results are
  /// returned by \c checkSat in request order.
  void requestValue(const TermPtr &T);

  /// Attaches an overall run deadline: \c checkSat clamps its per-query
  /// budget to the remaining time (the Z3 budget mapping) and returns
  /// Unknown immediately — without entering Z3 — once the deadline has
  /// expired. A Z3 `unknown` that coincides with an expired deadline is
  /// accounted as budget-exceeded (PerfCounter::SmtBudget), not solver
  /// incompleteness.
  void setDeadline(const Deadline &Budget);

  /// Runs the check with a per-query timeout (further clamped to the
  /// deadline set via \c setDeadline, if any). Every call is observable: it
  /// records an "smt.checkSat" trace span (verdict + cache hit/miss args),
  /// feeds the PerfHistogram::SmtCheckNs latency histogram, and attributes
  /// its wall time to Phase::Smt.
  /// \param ModelOut if non-null and Sat, receives values for all free
  ///        variables seen in assertions.
  /// \param ValuesOut if non-null and Sat, receives the requested values.
  SmtResult checkSat(int TimeoutMs, SmtModel *ModelOut = nullptr,
                     std::vector<ValuePtr> *ValuesOut = nullptr);

private:
  SmtResult checkSatImpl(int TimeoutMs, SmtModel *ModelOut,
                         std::vector<ValuePtr> *ValuesOut, bool &CacheHit);

  struct Impl;
  std::unique_ptr<Impl> I;
};

/// Sets the Z3 random seed applied to every subsequent query in this
/// process (0 = Z3's default). Exposed through SolverConfig::Algo.Seed for
/// reproducible sweeps. Changing the seed invalidates live thread sessions:
/// the next query on each thread gets a freshly seeded solver.
void setSmtRandomSeed(unsigned Seed);

/// The deterministic budget mapping shared by every Z3 engine in the stack
/// (SmtQuery::checkSat and the CHC fixedpoint channel): milliseconds scaled
/// to a Z3 resource limit (~50k units/ms on commodity hardware), capped to
/// the engine's unsigned parameter space. Resource limits are preferred
/// over Z3's wall-clock "timeout" because the latter spawns a timer thread
/// per query and makes runs non-reproducible.
unsigned smtRlimitForTimeoutMs(int TimeoutMs);

// --- Incremental sessions (DESIGN.md "Incremental SMT model") ----------===//

/// Enables or disables the incremental session layer process-wide (default
/// on; the SE2GIS_SMT_INCREMENTAL env var and --smt-incremental CLI flag
/// feed AlgoOptions::SmtIncremental, which the algorithm drivers apply
/// here). Off restores the fresh-context-per-query model; queries already
/// attached to a session are unaffected.
void setSmtIncremental(bool Enabled);

/// \returns the current incremental-session toggle.
bool smtIncrementalEnabled();

/// Drops the calling thread's shared session (or, while it is serving a
/// live query, marks it for replacement at the next acquisition). Queries
/// never break: the next one simply starts a fresh session.
void resetThreadSmtSession();

/// Observable state of the calling thread's session slot, for tests and
/// diagnostics.
struct SmtSessionInfo {
  /// A session currently exists on this thread.
  bool Live = false;
  /// It is attached to a live SmtQuery right now.
  bool Busy = false;
  /// Sessions created on this thread so far (bumps on every recycle).
  std::uint64_t Generation = 0;
  /// Queries the current session has served (0 when not Live).
  std::uint64_t QueriesServed = 0;
  /// Live solver scopes (0 when idle: every query pops its frames).
  unsigned Depth = 0;
};
SmtSessionInfo threadSmtSessionInfo();

/// RAII marker for an algorithm region that issues many related queries
/// (a CEGIS loop, a witness sweep, a bounded-check enumeration). Inside a
/// scope the thread session is exempt from served-query retirement, so the
/// region keeps one warm solver end to end; on exit of the outermost scope
/// a session due for retirement or replacement is dropped eagerly, which
/// bounds the Z3 memory carried between regions. Purely an optimization
/// hint — correctness never depends on scopes being present.
class SmtSessionScope {
public:
  SmtSessionScope();
  ~SmtSessionScope();
  SmtSessionScope(const SmtSessionScope &) = delete;
  SmtSessionScope &operator=(const SmtSessionScope &) = delete;
};

/// Convenience: is the conjunction of \p Assertions satisfiable?
/// \p Budget, when non-null, bounds the query like \c SmtQuery::setDeadline.
SmtResult quickCheck(const std::vector<TermPtr> &Assertions, int TimeoutMs,
                     SmtModel *ModelOut = nullptr,
                     const Deadline *Budget = nullptr);

/// Convenience: is \p Formula valid (i.e. its negation unsatisfiable)?
/// Returns Sat if a countermodel exists (stored in \p CounterOut), Unsat if
/// valid, Unknown otherwise. \p Budget as in \c quickCheck.
SmtResult checkValidity(const TermPtr &Formula, int TimeoutMs,
                        SmtModel *CounterOut = nullptr,
                        const Deadline *Budget = nullptr);

} // namespace se2gis

#endif // SE2GIS_SMT_SOLVER_H
