//===- Solver.h - Z3-backed SMT queries over scalar terms -------*- C++-*-===//
///
/// \file
/// The only interface to Z3 in the code base. By design every query the
/// SE²GIS stack emits is *scalar*: terms over Int/Bool/tuple variables,
/// builtin operators, and (optionally) unknown-function applications that are
/// encoded as uninterpreted functions (this is how the SGE synthesis step
/// finds candidate input/output tables, and how Algorithm 1 solves for
/// witness model pairs). Datatype values and recursive calls never reach the
/// solver; the evaluators reduce them away first.
///
/// Tuples are scalarized during translation: a tuple-typed variable becomes
/// one Z3 constant per flattened component, equality becomes a conjunction,
/// and tuple-returning unknowns become one uninterpreted function per
/// component.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SMT_SOLVER_H
#define SE2GIS_SMT_SOLVER_H

#include "ast/Term.h"
#include "eval/Value.h"
#include "support/Cancellation.h"

#include <memory>
#include <optional>
#include <vector>

namespace se2gis {

/// Outcome of a satisfiability query.
enum class SmtResult : unsigned char { Sat, Unsat, Unknown };

/// A scalar model: values for the free variables of a query.
class SmtModel {
public:
  void bind(const VarPtr &V, ValuePtr Val);

  /// \returns the value of variable \p Id, or nullptr.
  ValuePtr lookup(unsigned Id) const;

  const std::vector<std::pair<VarPtr, ValuePtr>> &assignments() const {
    return Assignments;
  }

  std::string str() const;

private:
  std::vector<std::pair<VarPtr, ValuePtr>> Assignments;
};

/// A single satisfiability query. Build one per check; cheap to construct.
class SmtQuery {
public:
  SmtQuery();
  ~SmtQuery();
  SmtQuery(const SmtQuery &) = delete;
  SmtQuery &operator=(const SmtQuery &) = delete;

  /// Adds a boolean scalar assertion.
  void add(const TermPtr &Assertion);

  /// Adds a *soft* assertion: \c checkSat tries to satisfy as many soft
  /// assertions as possible, iteratively dropping unsat-core members
  /// (MaxSAT-lite). Used to anchor EUF models to the previous candidate's
  /// predictions so underconstrained cells don't get arbitrary values.
  void addSoft(const TermPtr &Assertion);

  /// Requests the value of scalar term \p T in a sat model; results are
  /// returned by \c checkSat in request order.
  void requestValue(const TermPtr &T);

  /// Attaches an overall run deadline: \c checkSat clamps its per-query
  /// budget to the remaining time (the Z3 budget mapping) and returns
  /// Unknown immediately — without entering Z3 — once the deadline has
  /// expired. A Z3 `unknown` that coincides with an expired deadline is
  /// accounted as budget-exceeded (PerfCounter::SmtBudget), not solver
  /// incompleteness.
  void setDeadline(const Deadline &Budget);

  /// Runs the check with a per-query timeout (further clamped to the
  /// deadline set via \c setDeadline, if any). Every call is observable: it
  /// records an "smt.checkSat" trace span (verdict + cache hit/miss args),
  /// feeds the PerfHistogram::SmtCheckNs latency histogram, and attributes
  /// its wall time to Phase::Smt.
  /// \param ModelOut if non-null and Sat, receives values for all free
  ///        variables seen in assertions.
  /// \param ValuesOut if non-null and Sat, receives the requested values.
  SmtResult checkSat(int TimeoutMs, SmtModel *ModelOut = nullptr,
                     std::vector<ValuePtr> *ValuesOut = nullptr);

private:
  SmtResult checkSatImpl(int TimeoutMs, SmtModel *ModelOut,
                         std::vector<ValuePtr> *ValuesOut, bool &CacheHit);

  struct Impl;
  std::unique_ptr<Impl> I;
};

/// Sets the Z3 random seed applied to every subsequent query in this
/// process (0 = Z3's default). Exposed through SolverConfig::Algo.Seed for
/// reproducible sweeps.
void setSmtRandomSeed(unsigned Seed);

/// Convenience: is the conjunction of \p Assertions satisfiable?
/// \p Budget, when non-null, bounds the query like \c SmtQuery::setDeadline.
SmtResult quickCheck(const std::vector<TermPtr> &Assertions, int TimeoutMs,
                     SmtModel *ModelOut = nullptr,
                     const Deadline *Budget = nullptr);

/// Convenience: is \p Formula valid (i.e. its negation unsatisfiable)?
/// Returns Sat if a countermodel exists (stored in \p CounterOut), Unsat if
/// valid, Unknown otherwise. \p Budget as in \c quickCheck.
SmtResult checkValidity(const TermPtr &Formula, int TimeoutMs,
                        SmtModel *CounterOut = nullptr,
                        const Deadline *Budget = nullptr);

} // namespace se2gis

#endif // SE2GIS_SMT_SOLVER_H
