//===- Elaborate.h - Typed lowering of surface syntax -----------*- C++-*-===//
///
/// \file
/// Turns parsed units into typed programs and problems. Function return
/// types are inferred iteratively: a scheme's base-case rules usually type
/// without knowing the recursive calls' types, which then fixes the return
/// type for the remaining rules. Skeletons whose every rule mentions an
/// unknown need an explicit return annotation (`let rec target : int = ...`),
/// matching how Synduce receives the unknowns' types from context.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_FRONTEND_ELABORATE_H
#define SE2GIS_FRONTEND_ELABORATE_H

#include "frontend/Syntax.h"
#include "lang/Program.h"

#include <memory>

namespace se2gis {

/// Elaborates \p Unit into a typed program; raises UserError on type errors.
std::shared_ptr<Program> elaborateUnit(const SynUnit &Unit);

/// Parses and elaborates \p Source, which must contain exactly one
/// `synthesize` directive, and returns the validated problem.
Problem loadProblem(const std::string &Source);

} // namespace se2gis

#endif // SE2GIS_FRONTEND_ELABORATE_H
