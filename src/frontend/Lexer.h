//===- Lexer.h - Tokenizer for the benchmark DSL ----------------*- C++-*-===//
///
/// \file
/// Tokenizer for the ML-like input language in which benchmarks are written
/// (mirroring Synduce's OCaml input syntax). Supports `(* ... *)` block
/// comments (nested) and `--` line comments.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_FRONTEND_LEXER_H
#define SE2GIS_FRONTEND_LEXER_H

#include <string>
#include <vector>

namespace se2gis {

/// Token kinds produced by the lexer.
enum class TokKind : unsigned char {
  Eof,
  IntLit,   // 123
  Ident,    // lowercase-initial identifier
  CtorId,   // Uppercase-initial identifier
  Dollar,   // $
  // Keywords.
  KwType,
  KwOf,
  KwLet,
  KwRec,
  KwAnd,
  KwFunction,
  KwIf,
  KwThen,
  KwElse,
  KwIn,
  KwNot,
  KwMod,
  KwTrue,
  KwFalse,
  KwInt,
  KwBool,
  KwSynthesize,
  KwEquiv,
  KwVia,
  KwRequires,
  KwEnsures,
  // Punctuation / operators.
  LParen,
  RParen,
  Comma,
  Colon,
  Bar,
  Arrow,  // ->
  Equal,  // =
  NotEq,  // <>
  Lt,
  Le,
  Gt,
  Ge,
  Plus,
  Minus,
  Star,
  Slash,
  AmpAmp,
  BarBar
};

/// A lexed token with its source location (1-based line/column).
struct Token {
  TokKind Kind;
  std::string Text;
  long long IntValue = 0;
  int Line = 0;
  int Col = 0;
};

/// Tokenizes \p Source; raises UserError with a located message on bad input.
/// The result always ends with an Eof token.
std::vector<Token> tokenize(const std::string &Source);

/// \returns a short printable description of \p Kind for diagnostics.
const char *tokKindName(TokKind Kind);

} // namespace se2gis

#endif // SE2GIS_FRONTEND_LEXER_H
