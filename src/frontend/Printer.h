//===- Printer.h - Surface-syntax pretty-printer ----------------*- C++-*-===//
///
/// \file
/// Prints untyped surface trees (Syntax.h) back to the benchmark DSL's
/// concrete syntax, with minimal parentheses mirroring the parser's
/// precedence chain. The printer is the bridge the generator (src/gen/)
/// uses to force every sampled problem through the real
/// Lexer/Parser/Elaborate pipeline, and the anchor of the parse → print →
/// parse round-trip property: for every unit \c U,
/// \c printUnit(parseUnit(printUnit(U))) == printUnit(U).
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_FRONTEND_PRINTER_H
#define SE2GIS_FRONTEND_PRINTER_H

#include "frontend/Syntax.h"

#include <string>

namespace se2gis {

/// Prints a full unit (type decls, let groups, directives) as parseable
/// DSL source. Declaration order inside each section is preserved; types
/// print before let groups before directives, which is the order the
/// elaborator consumes them in.
std::string printUnit(const SynUnit &U);

/// Prints one expression with minimal parentheses (top-level context).
std::string printExpr(const SynExpr &E);

/// Prints a surface type annotation (`int`, `bool`, `nat`, `int * bool`).
std::string printType(const SynType &T);

} // namespace se2gis

#endif // SE2GIS_FRONTEND_PRINTER_H
