//===- Parser.cpp ---------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"
#include "support/Diagnostics.h"

#include <cassert>

using namespace se2gis;

namespace {

class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  SynUnit parseUnit() {
    SynUnit Unit;
    while (!at(TokKind::Eof)) {
      if (at(TokKind::KwType))
        Unit.Types.push_back(parseTypeDecl());
      else if (at(TokKind::KwLet))
        Unit.LetGroups.push_back(parseLetGroup());
      else if (at(TokKind::KwSynthesize))
        Unit.Directives.push_back(parseDirective());
      else
        error("expected 'type', 'let', or 'synthesize'");
    }
    return Unit;
  }

private:
  // --- Token helpers ----------------------------------------------------//

  const Token &peek(size_t Off = 0) const {
    size_t I = Pos + Off;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(TokKind K) const { return peek().Kind == K; }
  Token advance() { return Tokens[Pos++]; }
  bool accept(TokKind K) {
    if (!at(K))
      return false;
    ++Pos;
    return true;
  }
  Token expect(TokKind K, const char *Context) {
    if (!at(K))
      error(std::string("expected ") + tokKindName(K) + " " + Context +
            ", found " + tokKindName(peek().Kind));
    return advance();
  }
  [[noreturn]] void error(const std::string &Msg) const {
    userError("parse error at " + std::to_string(peek().Line) + ":" +
              std::to_string(peek().Col) + ": " + Msg);
  }

  // --- Types ------------------------------------------------------------//

  SynType parseTypeAtom() {
    SynType T;
    if (accept(TokKind::KwInt)) {
      T.K = SynType::Kind::Int;
      return T;
    }
    if (accept(TokKind::KwBool)) {
      T.K = SynType::Kind::Bool;
      return T;
    }
    if (at(TokKind::Ident)) {
      T.K = SynType::Kind::Named;
      T.Name = advance().Text;
      return T;
    }
    if (accept(TokKind::LParen)) {
      SynType Inner = parseType();
      expect(TokKind::RParen, "after type");
      return Inner;
    }
    error("expected a type");
  }

  SynType parseType() {
    SynType First = parseTypeAtom();
    if (!at(TokKind::Star))
      return First;
    SynType Tup;
    Tup.K = SynType::Kind::Tuple;
    Tup.Elems.push_back(std::move(First));
    while (accept(TokKind::Star))
      Tup.Elems.push_back(parseTypeAtom());
    return Tup;
  }

  SynTypeDecl parseTypeDecl() {
    SynTypeDecl Decl;
    Decl.Line = peek().Line;
    expect(TokKind::KwType, "at type declaration");
    Decl.Name = expect(TokKind::Ident, "as type name").Text;
    expect(TokKind::Equal, "in type declaration");
    accept(TokKind::Bar); // optional leading bar
    do {
      SynCtor Ctor;
      Ctor.Name = expect(TokKind::CtorId, "as constructor name").Text;
      if (accept(TokKind::KwOf)) {
        Ctor.Fields.push_back(parseTypeAtom());
        while (accept(TokKind::Star))
          Ctor.Fields.push_back(parseTypeAtom());
      }
      Decl.Ctors.push_back(std::move(Ctor));
    } while (accept(TokKind::Bar));
    return Decl;
  }

  // --- Expressions --------------------------------------------------------//

  SynExprPtr makeExpr(SynExpr::Kind K) {
    auto E = std::make_unique<SynExpr>();
    E->K = K;
    E->Line = peek().Line;
    E->Col = peek().Col;
    return E;
  }

  bool atAtomStart() const {
    switch (peek().Kind) {
    case TokKind::IntLit:
    case TokKind::KwTrue:
    case TokKind::KwFalse:
    case TokKind::Ident:
    case TokKind::CtorId:
    case TokKind::Dollar:
    case TokKind::LParen:
      return true;
    default:
      return false;
    }
  }

  SynExprPtr parseExpr() {
    if (at(TokKind::KwIf)) {
      auto E = makeExpr(SynExpr::Kind::If);
      advance();
      E->Args.push_back(parseExpr());
      expect(TokKind::KwThen, "in conditional");
      E->Args.push_back(parseExpr());
      expect(TokKind::KwElse, "in conditional");
      E->Args.push_back(parseExpr());
      return E;
    }
    if (at(TokKind::KwLet)) {
      auto E = makeExpr(SynExpr::Kind::LetIn);
      advance();
      bool Paren = accept(TokKind::LParen);
      E->LetVars.push_back(expect(TokKind::Ident, "in let binding").Text);
      while (accept(TokKind::Comma))
        E->LetVars.push_back(expect(TokKind::Ident, "in let binding").Text);
      if (Paren)
        expect(TokKind::RParen, "after let pattern");
      expect(TokKind::Equal, "in let binding");
      E->Args.push_back(parseExpr());
      expect(TokKind::KwIn, "after let binding");
      E->Args.push_back(parseExpr());
      return E;
    }
    return parseOr();
  }

  SynExprPtr parseBinChain(SynExprPtr (Parser::*Sub)(),
                           std::initializer_list<TokKind> Ops) {
    SynExprPtr L = (this->*Sub)();
    while (true) {
      bool Matched = false;
      for (TokKind Op : Ops) {
        if (!at(Op))
          continue;
        Token T = advance();
        auto E = makeExpr(SynExpr::Kind::Binary);
        E->Name = T.Text;
        E->Args.push_back(std::move(L));
        E->Args.push_back((this->*Sub)());
        L = std::move(E);
        Matched = true;
        break;
      }
      if (!Matched)
        return L;
    }
  }

  SynExprPtr parseOr() { return parseBinChain(&Parser::parseAnd, {TokKind::BarBar}); }
  SynExprPtr parseAnd() {
    return parseBinChain(&Parser::parseCmp, {TokKind::AmpAmp});
  }

  SynExprPtr parseCmp() {
    SynExprPtr L = parseAdd();
    switch (peek().Kind) {
    case TokKind::Equal:
    case TokKind::NotEq:
    case TokKind::Lt:
    case TokKind::Le:
    case TokKind::Gt:
    case TokKind::Ge: {
      Token T = advance();
      auto E = makeExpr(SynExpr::Kind::Binary);
      E->Name = T.Text;
      E->Args.push_back(std::move(L));
      E->Args.push_back(parseAdd());
      return E;
    }
    default:
      return L;
    }
  }

  SynExprPtr parseAdd() {
    return parseBinChain(&Parser::parseMul, {TokKind::Plus, TokKind::Minus});
  }
  SynExprPtr parseMul() {
    return parseBinChain(&Parser::parseUnary,
                         {TokKind::Star, TokKind::Slash, TokKind::KwMod});
  }

  SynExprPtr parseUnary() {
    if (at(TokKind::Minus) || at(TokKind::KwNot)) {
      Token T = advance();
      auto E = makeExpr(SynExpr::Kind::Unary);
      E->Name = T.Kind == TokKind::Minus ? "-" : "not";
      E->Args.push_back(parseUnary());
      return E;
    }
    return parseApp();
  }

  SynExprPtr parseApp() {
    // Constructor application: `C`, `C atom` where a tuple atom supplies
    // multiple fields (OCaml style).
    if (at(TokKind::CtorId)) {
      Token T = advance();
      auto E = makeExpr(SynExpr::Kind::App);
      E->Name = T.Text;
      E->BoolValue = true; // marks a constructor application
      if (atAtomStart()) {
        SynExprPtr Arg = parseAtom();
        if (Arg->K == SynExpr::Kind::Tuple)
          E->Args = std::move(Arg->Args);
        else
          E->Args.push_back(std::move(Arg));
      }
      return E;
    }
    // Unknown application: `$u atom*`.
    if (at(TokKind::Dollar)) {
      advance();
      auto E = makeExpr(SynExpr::Kind::Unknown);
      E->Name = expect(TokKind::Ident, "after '$'").Text;
      while (atAtomStart())
        E->Args.push_back(parseAtom());
      return E;
    }
    // Function application by juxtaposition: `f atom+` or a bare atom.
    SynExprPtr Head = parseAtom();
    if (Head->K != SynExpr::Kind::Id || !atAtomStart())
      return Head;
    auto E = makeExpr(SynExpr::Kind::App);
    E->Name = Head->Name;
    while (atAtomStart())
      E->Args.push_back(parseAtom());
    return E;
  }

  SynExprPtr parseAtom() {
    switch (peek().Kind) {
    case TokKind::IntLit: {
      Token T = advance();
      auto E = makeExpr(SynExpr::Kind::IntLit);
      E->IntValue = T.IntValue;
      return E;
    }
    case TokKind::KwTrue:
    case TokKind::KwFalse: {
      Token T = advance();
      auto E = makeExpr(SynExpr::Kind::BoolLit);
      E->BoolValue = T.Kind == TokKind::KwTrue;
      return E;
    }
    case TokKind::Ident: {
      Token T = advance();
      auto E = makeExpr(SynExpr::Kind::Id);
      E->Name = T.Text;
      return E;
    }
    case TokKind::CtorId:
    case TokKind::Dollar:
      return parseApp();
    case TokKind::LParen: {
      advance();
      SynExprPtr First = parseExpr();
      if (!at(TokKind::Comma)) {
        expect(TokKind::RParen, "after expression");
        return First;
      }
      auto E = makeExpr(SynExpr::Kind::Tuple);
      E->Args.push_back(std::move(First));
      while (accept(TokKind::Comma))
        E->Args.push_back(parseExpr());
      expect(TokKind::RParen, "after tuple");
      return E;
    }
    default:
      error(std::string("expected an expression, found ") +
            tokKindName(peek().Kind));
    }
  }

  // --- Bindings -----------------------------------------------------------//

  SynBinding parseBinding() {
    SynBinding B;
    B.Line = peek().Line;
    B.Name = expect(TokKind::Ident, "as function name").Text;
    while (at(TokKind::LParen) || at(TokKind::Ident)) {
      if (at(TokKind::Ident))
        error("parameters must be annotated: (" + peek().Text + " : type)");
      advance(); // (
      std::string PName = expect(TokKind::Ident, "as parameter name").Text;
      expect(TokKind::Colon, "in parameter annotation");
      SynType PTy = parseType();
      expect(TokKind::RParen, "after parameter annotation");
      B.Params.emplace_back(std::move(PName), std::move(PTy));
    }
    if (accept(TokKind::Colon))
      B.RetAnnot = std::make_unique<SynType>(parseType());
    expect(TokKind::Equal, "in binding");
    if (accept(TokKind::KwFunction)) {
      B.IsScheme = true;
      accept(TokKind::Bar);
      do {
        SynRule R;
        R.Line = peek().Line;
        R.CtorName = expect(TokKind::CtorId, "as rule pattern").Text;
        if (accept(TokKind::LParen)) {
          R.FieldNames.push_back(
              expect(TokKind::Ident, "as pattern variable").Text);
          while (accept(TokKind::Comma))
            R.FieldNames.push_back(
                expect(TokKind::Ident, "as pattern variable").Text);
          expect(TokKind::RParen, "after pattern");
        } else if (at(TokKind::Ident)) {
          R.FieldNames.push_back(advance().Text);
        }
        expect(TokKind::Arrow, "in rule");
        R.Body = parseExpr();
        B.Rules.push_back(std::move(R));
      } while (accept(TokKind::Bar));
    } else {
      B.Body = parseExpr();
    }
    return B;
  }

  SynLetGroup parseLetGroup() {
    SynLetGroup G;
    expect(TokKind::KwLet, "at let group");
    G.Recursive = accept(TokKind::KwRec);
    G.Bindings.push_back(parseBinding());
    while (accept(TokKind::KwAnd))
      G.Bindings.push_back(parseBinding());
    return G;
  }

  SynDirective parseDirective() {
    SynDirective D;
    D.Line = peek().Line;
    expect(TokKind::KwSynthesize, "at directive");
    D.Target = expect(TokKind::Ident, "as target name").Text;
    expect(TokKind::KwEquiv, "in directive");
    D.Reference = expect(TokKind::Ident, "as reference name").Text;
    if (accept(TokKind::KwVia))
      D.Repr = expect(TokKind::Ident, "as representation name").Text;
    if (accept(TokKind::KwRequires))
      D.Invariant = expect(TokKind::Ident, "as invariant name").Text;
    if (accept(TokKind::KwEnsures))
      D.Ensures = expect(TokKind::Ident, "as ensures name").Text;
    return D;
  }

  std::vector<Token> Tokens;
  size_t Pos = 0;
};

} // namespace

SynUnit se2gis::parseUnit(const std::string &Source) {
  Parser P(tokenize(Source));
  return P.parseUnit();
}
