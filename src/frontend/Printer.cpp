//===- Printer.cpp - Surface-syntax pretty-printer ------------------------===//

#include "frontend/Printer.h"

#include <cassert>
#include <sstream>

using namespace se2gis;

namespace {

// Precedence levels mirror the parser's descent chain. An expression is
// parenthesized whenever its own level is below the minimum its context
// re-parses at.
//
//   0  expr        if / let-in / anything
//   1  or          ||              (left-assoc)
//   2  and         &&              (left-assoc)
//   3  cmp         = <> < <= > >=  (non-assoc; operands re-parse at add)
//   4  add         + -             (left-assoc)
//   5  mul         * / mod         (left-assoc)
//   6  unary       - e, not e
//   7  app         f a b, C a, $u a  (args re-parse at atom)
//   8  atom        literal, id, (e), (e1, e2)
enum : int {
  LvlExpr = 0,
  LvlOr = 1,
  LvlAnd = 2,
  LvlCmp = 3,
  LvlAdd = 4,
  LvlMul = 5,
  LvlUnary = 6,
  LvlApp = 7,
  LvlAtom = 8
};

int binaryLevel(const std::string &Op) {
  if (Op == "||")
    return LvlOr;
  if (Op == "&&")
    return LvlAnd;
  if (Op == "=" || Op == "<>" || Op == "<" || Op == "<=" || Op == ">" ||
      Op == ">=")
    return LvlCmp;
  if (Op == "+" || Op == "-")
    return LvlAdd;
  assert(Op == "*" || Op == "/" || Op == "mod");
  return LvlMul;
}

int exprLevel(const SynExpr &E) {
  switch (E.K) {
  case SynExpr::Kind::If:
  case SynExpr::Kind::LetIn:
    return LvlExpr;
  case SynExpr::Kind::Binary:
    return binaryLevel(E.Name);
  case SynExpr::Kind::Unary:
    return LvlUnary;
  case SynExpr::Kind::App:
  case SynExpr::Kind::Unknown:
    // Even a zero-argument constructor or unknown is kept at app level:
    // in atom position it would greedily absorb the atoms that follow it
    // (`f B x` parses as `f (B x)`), so the parens are load-bearing.
    return LvlApp;
  case SynExpr::Kind::IntLit:
    // A negative literal prints as a unary minus application.
    return E.IntValue < 0 ? LvlUnary : LvlAtom;
  case SynExpr::Kind::BoolLit:
  case SynExpr::Kind::Id:
  case SynExpr::Kind::Tuple:
    return LvlAtom;
  }
  return LvlAtom;
}

void print(std::ostream &OS, const SynExpr &E, int Min);

void printParenList(std::ostream &OS, const std::vector<SynExprPtr> &Args) {
  OS << '(';
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I)
      OS << ", ";
    print(OS, *Args[I], LvlExpr);
  }
  OS << ')';
}

void print(std::ostream &OS, const SynExpr &E, int Min) {
  if (exprLevel(E) < Min) {
    OS << '(';
    print(OS, E, LvlExpr);
    OS << ')';
    return;
  }
  switch (E.K) {
  case SynExpr::Kind::IntLit:
    OS << E.IntValue;
    return;
  case SynExpr::Kind::BoolLit:
    OS << (E.BoolValue ? "true" : "false");
    return;
  case SynExpr::Kind::Id:
    OS << E.Name;
    return;
  case SynExpr::Kind::App:
    OS << E.Name;
    if (E.BoolValue) {
      // Constructor application: one atom argument; a parenthesized tuple
      // supplies multiple fields OCaml-style. A single tuple-valued field
      // is not expressible in the surface syntax (the parser would splat
      // it), and the parser never produces that shape either.
      if (E.Args.size() == 1) {
        assert(E.Args[0]->K != SynExpr::Kind::Tuple &&
               "single tuple field is not printable");
        OS << ' ';
        print(OS, *E.Args[0], LvlAtom);
      } else if (E.Args.size() > 1) {
        OS << ' ';
        printParenList(OS, E.Args);
      }
      return;
    }
    for (const SynExprPtr &A : E.Args) {
      OS << ' ';
      print(OS, *A, LvlAtom);
    }
    return;
  case SynExpr::Kind::Unknown:
    OS << '$' << E.Name;
    for (const SynExprPtr &A : E.Args) {
      OS << ' ';
      print(OS, *A, LvlAtom);
    }
    return;
  case SynExpr::Kind::Binary: {
    int Lvl = binaryLevel(E.Name);
    // Left-assoc chains re-parse the left operand at the same level; the
    // comparison tier is non-associative, so both operands drop to add.
    print(OS, *E.Args[0], Lvl == LvlCmp ? LvlAdd : Lvl);
    OS << ' ' << E.Name << ' ';
    print(OS, *E.Args[1], Lvl == LvlCmp ? LvlAdd : Lvl + 1);
    return;
  }
  case SynExpr::Kind::Unary:
    if (E.Name == "not") {
      OS << "not ";
    } else {
      // No space: a negative IntLit prints `-1` directly, and it lexes
      // back as unary minus on a literal — printing the Unary node the
      // same way makes the round-trip a strict fixpoint either way.
      OS << '-';
    }
    print(OS, *E.Args[0], LvlUnary);
    return;
  case SynExpr::Kind::If:
    OS << "if ";
    print(OS, *E.Args[0], LvlExpr);
    OS << " then ";
    print(OS, *E.Args[1], LvlExpr);
    OS << " else ";
    print(OS, *E.Args[2], LvlExpr);
    return;
  case SynExpr::Kind::LetIn:
    OS << "let ";
    if (E.LetVars.size() > 1) {
      OS << '(';
      for (size_t I = 0; I < E.LetVars.size(); ++I)
        OS << (I ? ", " : "") << E.LetVars[I];
      OS << ')';
    } else {
      OS << E.LetVars[0];
    }
    OS << " = ";
    print(OS, *E.Args[0], LvlExpr);
    OS << " in ";
    print(OS, *E.Args[1], LvlExpr);
    return;
  case SynExpr::Kind::Tuple:
    printParenList(OS, E.Args);
    return;
  }
}

void printTypeInner(std::ostream &OS, const SynType &T, bool AtomPos) {
  switch (T.K) {
  case SynType::Kind::Int:
    OS << "int";
    return;
  case SynType::Kind::Bool:
    OS << "bool";
    return;
  case SynType::Kind::Named:
    OS << T.Name;
    return;
  case SynType::Kind::Tuple:
    if (AtomPos)
      OS << '(';
    for (size_t I = 0; I < T.Elems.size(); ++I) {
      if (I)
        OS << " * ";
      printTypeInner(OS, T.Elems[I], /*AtomPos=*/true);
    }
    if (AtomPos)
      OS << ')';
    return;
  }
}

void printBinding(std::ostream &OS, const SynBinding &B) {
  OS << B.Name;
  for (const auto &[PName, PTy] : B.Params) {
    OS << " (" << PName << " : ";
    printTypeInner(OS, PTy, /*AtomPos=*/false);
    OS << ')';
  }
  if (B.RetAnnot) {
    OS << " : ";
    printTypeInner(OS, *B.RetAnnot, /*AtomPos=*/false);
  }
  OS << " =";
  if (B.IsScheme) {
    OS << " function";
    for (const SynRule &R : B.Rules) {
      OS << "\n  | " << R.CtorName;
      if (R.FieldNames.size() == 1) {
        OS << ' ' << R.FieldNames[0];
      } else if (R.FieldNames.size() > 1) {
        OS << " (";
        for (size_t I = 0; I < R.FieldNames.size(); ++I)
          OS << (I ? ", " : "") << R.FieldNames[I];
        OS << ')';
      }
      OS << " -> ";
      print(OS, *R.Body, LvlExpr);
    }
  } else {
    OS << ' ';
    print(OS, *B.Body, LvlExpr);
  }
}

} // namespace

std::string se2gis::printExpr(const SynExpr &E) {
  std::ostringstream OS;
  print(OS, E, LvlExpr);
  return OS.str();
}

std::string se2gis::printType(const SynType &T) {
  std::ostringstream OS;
  printTypeInner(OS, T, /*AtomPos=*/false);
  return OS.str();
}

std::string se2gis::printUnit(const SynUnit &U) {
  std::ostringstream OS;
  for (const SynTypeDecl &D : U.Types) {
    OS << "type " << D.Name << " =";
    for (size_t I = 0; I < D.Ctors.size(); ++I) {
      const SynCtor &C = D.Ctors[I];
      OS << (I ? " | " : " ") << C.Name;
      for (size_t F = 0; F < C.Fields.size(); ++F) {
        OS << (F ? " * " : " of ");
        printTypeInner(OS, C.Fields[F], /*AtomPos=*/true);
      }
    }
    OS << "\n";
  }
  if (!U.Types.empty())
    OS << "\n";
  for (const SynLetGroup &G : U.LetGroups) {
    OS << "let " << (G.Recursive ? "rec " : "");
    for (size_t I = 0; I < G.Bindings.size(); ++I) {
      if (I)
        OS << "\nand ";
      printBinding(OS, G.Bindings[I]);
    }
    OS << "\n\n";
  }
  for (const SynDirective &D : U.Directives) {
    OS << "synthesize " << D.Target << " equiv " << D.Reference;
    if (!D.Repr.empty())
      OS << " via " << D.Repr;
    if (!D.Invariant.empty())
      OS << " requires " << D.Invariant;
    if (!D.Ensures.empty())
      OS << " ensures " << D.Ensures;
    OS << "\n";
  }
  return OS.str();
}
