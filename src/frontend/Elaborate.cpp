//===- Elaborate.cpp ------------------------------------------------------===//

#include "frontend/Elaborate.h"

#include "frontend/Parser.h"
#include "support/Diagnostics.h"

#include <cassert>
#include <map>
#include <optional>

using namespace se2gis;

namespace {

/// Internal control-flow signal: elaboration of an expression needs type
/// information (a callee's return type) that is not available yet. The
/// binding fixpoint retries such rules after other rules have fixed the
/// missing types.
struct NeedTypeInfo {
  std::string What;
};

/// In-progress signature of a function being elaborated.
struct FnSig {
  std::vector<VarPtr> Params;      // annotated extra parameters
  const Datatype *Matched = nullptr; // non-null for schemes
  TypePtr RetTy;                     // null while still unknown
  bool IsScheme = false;
};

class Elaborator {
public:
  Elaborator() : Prog(std::make_shared<Program>()) {}

  std::shared_ptr<Program> run(const SynUnit &Unit) {
    declareTypes(Unit);
    for (const SynLetGroup &G : Unit.LetGroups)
      elaborateGroup(G);
    return Prog;
  }

  std::shared_ptr<Program> Prog;

private:
  // --- Types --------------------------------------------------------------//

  TypePtr lowerType(const SynType &T) {
    switch (T.K) {
    case SynType::Kind::Int:
      return Type::intTy();
    case SynType::Kind::Bool:
      return Type::boolTy();
    case SynType::Kind::Named:
      return Prog->getDataType(T.Name);
    case SynType::Kind::Tuple: {
      std::vector<TypePtr> Elems;
      for (const SynType &E : T.Elems)
        Elems.push_back(lowerType(E));
      return Type::tupleTy(std::move(Elems));
    }
    }
    fatalError("bad surface type kind");
  }

  void declareTypes(const SynUnit &Unit) {
    // Two phases so constructors may reference any declared datatype.
    for (const SynTypeDecl &D : Unit.Types)
      Prog->addDatatype(D.Name);
    for (const SynTypeDecl &D : Unit.Types) {
      Datatype *DT = const_cast<Datatype *>(Prog->findDatatype(D.Name));
      for (const SynCtor &C : D.Ctors) {
        if (CtorOwner.count(C.Name))
          userError("constructor '" + C.Name + "' is declared twice");
        std::vector<TypePtr> Fields;
        for (const SynType &F : C.Fields)
          Fields.push_back(lowerType(F));
        DT->addConstructor(C.Name, std::move(Fields));
        CtorOwner[C.Name] = DT;
      }
    }
  }

  const ConstructorDecl *findCtor(const std::string &Name, int Line) {
    auto It = CtorOwner.find(Name);
    if (It == CtorOwner.end())
      userError("line " + std::to_string(Line) + ": unknown constructor '" +
                Name + "'");
    return It->second->findConstructor(Name);
  }

  // --- Expressions --------------------------------------------------------//

  using Scope = std::vector<std::pair<std::string, TermPtr>>;

  [[noreturn]] void typeError(const SynExpr &E, const std::string &Msg) {
    userError("line " + std::to_string(E.Line) + ":" + std::to_string(E.Col) +
              ": " + Msg);
  }

  TermPtr checkExpected(const SynExpr &E, TermPtr T, const TypePtr &Expected) {
    if (Expected && !sameType(T->getType(), Expected))
      typeError(E, "expected type " + Expected->str() + ", found " +
                       T->getType()->str());
    return T;
  }

  TermPtr elab(const SynExpr &E, const Scope &S, const TypePtr &Expected) {
    switch (E.K) {
    case SynExpr::Kind::IntLit:
      return checkExpected(E, mkIntLit(E.IntValue), Expected);
    case SynExpr::Kind::BoolLit:
      return checkExpected(E, mkBoolLit(E.BoolValue), Expected);

    case SynExpr::Kind::Id: {
      for (auto It = S.rbegin(); It != S.rend(); ++It)
        if (It->first == E.Name)
          return checkExpected(E, It->second, Expected);
      typeError(E, "unknown identifier '" + E.Name + "'");
    }

    case SynExpr::Kind::Tuple: {
      std::vector<TermPtr> Elems;
      const std::vector<TypePtr> *ExpElems = nullptr;
      if (Expected) {
        if (!Expected->isTuple() ||
            Expected->tupleElems().size() != E.Args.size())
          typeError(E, "tuple does not match expected type " +
                           Expected->str());
        ExpElems = &Expected->tupleElems();
      }
      for (size_t I = 0; I < E.Args.size(); ++I)
        Elems.push_back(
            elab(*E.Args[I], S, ExpElems ? (*ExpElems)[I] : nullptr));
      return mkTuple(std::move(Elems));
    }

    case SynExpr::Kind::If: {
      TermPtr C = elab(*E.Args[0], S, Type::boolTy());
      TermPtr Then = elab(*E.Args[1], S, Expected);
      TermPtr Else = elab(*E.Args[2], S, Then->getType());
      return mkIte(std::move(C), std::move(Then), std::move(Else));
    }

    case SynExpr::Kind::LetIn: {
      TermPtr Bound = elab(*E.Args[0], S, nullptr);
      Scope Inner = S;
      if (E.LetVars.size() == 1) {
        Inner.emplace_back(E.LetVars[0], Bound);
      } else {
        if (!Bound->getType()->isTuple() ||
            Bound->getType()->tupleElems().size() != E.LetVars.size())
          typeError(E, "let pattern does not match a " +
                           Bound->getType()->str());
        for (size_t I = 0; I < E.LetVars.size(); ++I)
          Inner.emplace_back(E.LetVars[I],
                             mkProj(Bound, static_cast<unsigned>(I)));
      }
      return elab(*E.Args[1], Inner, Expected);
    }

    case SynExpr::Kind::Unary: {
      if (E.Name == "not")
        return checkExpected(E, mkNot(elab(*E.Args[0], S, Type::boolTy())),
                             Expected);
      return checkExpected(
          E, mkOp(OpKind::Neg, {elab(*E.Args[0], S, Type::intTy())}),
          Expected);
    }

    case SynExpr::Kind::Binary:
      return elabBinary(E, S, Expected);

    case SynExpr::Kind::Unknown:
      return elabUnknown(E, S, Expected);

    case SynExpr::Kind::App:
      return elabApp(E, S, Expected);
    }
    fatalError("bad surface expression kind");
  }

  TermPtr elabBinary(const SynExpr &E, const Scope &S,
                     const TypePtr &Expected) {
    static const std::map<std::string, OpKind> Ops = {
        {"+", OpKind::Add},  {"-", OpKind::Sub},   {"*", OpKind::Mul},
        {"/", OpKind::Div},  {"mod", OpKind::Mod}, {"<", OpKind::Lt},
        {"<=", OpKind::Le},  {">", OpKind::Gt},    {">=", OpKind::Ge},
        {"=", OpKind::Eq},   {"<>", OpKind::Ne},   {"&&", OpKind::And},
        {"||", OpKind::Or}};
    auto It = Ops.find(E.Name);
    assert(It != Ops.end() && "parser produced an unexpected operator");
    OpKind Op = It->second;

    TypePtr ArgExpect;
    switch (Op) {
    case OpKind::Add:
    case OpKind::Sub:
    case OpKind::Mul:
    case OpKind::Div:
    case OpKind::Mod:
    case OpKind::Lt:
    case OpKind::Le:
    case OpKind::Gt:
    case OpKind::Ge:
      ArgExpect = Type::intTy();
      break;
    case OpKind::And:
    case OpKind::Or:
      ArgExpect = Type::boolTy();
      break;
    default:
      break; // Eq / Ne: polymorphic.
    }
    TermPtr A = elab(*E.Args[0], S, ArgExpect);
    TermPtr B = elab(*E.Args[1], S, ArgExpect ? ArgExpect : A->getType());
    return checkExpected(E, mkOp(Op, {std::move(A), std::move(B)}), Expected);
  }

  TermPtr elabUnknown(const SynExpr &E, const Scope &S,
                      const TypePtr &Expected) {
    std::vector<TermPtr> Args;
    std::vector<TypePtr> ArgTys;
    auto Known = UnknownSigs.find(E.Name);
    for (size_t I = 0; I < E.Args.size(); ++I) {
      TypePtr ArgExp;
      if (Known != UnknownSigs.end() && I < Known->second.first.size())
        ArgExp = Known->second.first[I];
      Args.push_back(elab(*E.Args[I], S, ArgExp));
      ArgTys.push_back(Args.back()->getType());
    }
    TypePtr RetTy = Expected;
    if (Known != UnknownSigs.end()) {
      RetTy = Known->second.second;
      if (Expected && !sameType(RetTy, Expected))
        typeError(E, "unknown '$" + E.Name +
                         "' used with inconsistent return types");
      if (Known->second.first.size() != ArgTys.size())
        typeError(E, "unknown '$" + E.Name +
                         "' used with inconsistent arities");
    }
    if (!RetTy)
      typeError(E, "cannot determine the return type of unknown '$" + E.Name +
                       "'; annotate the enclosing function");
    if (Known == UnknownSigs.end())
      UnknownSigs.emplace(E.Name, std::make_pair(ArgTys, RetTy));
    return mkUnknown(E.Name, RetTy, std::move(Args));
  }

  TermPtr elabApp(const SynExpr &E, const Scope &S, const TypePtr &Expected) {
    // Constructor application.
    if (E.BoolValue) {
      const ConstructorDecl *C = findCtor(E.Name, E.Line);
      if (C->Fields.size() != E.Args.size())
        typeError(E, "constructor '" + E.Name + "' expects " +
                         std::to_string(C->Fields.size()) + " field(s)");
      std::vector<TermPtr> Args;
      for (size_t I = 0; I < E.Args.size(); ++I)
        Args.push_back(elab(*E.Args[I], S, C->Fields[I]));
      return checkExpected(E, mkCtor(C, std::move(Args)), Expected);
    }

    // User-defined function (in-progress signatures take priority so that
    // recursive groups resolve to themselves).
    auto SigIt = Sigs.find(E.Name);
    if (SigIt != Sigs.end()) {
      const FnSig &Sig = SigIt->second;
      size_t Arity = Sig.Params.size() + (Sig.Matched ? 1 : 0);
      if (E.Args.size() != Arity)
        typeError(E, "function '" + E.Name + "' expects " +
                         std::to_string(Arity) + " argument(s)");
      if (!Sig.RetTy)
        throw NeedTypeInfo{"return type of '" + E.Name + "'"};
      std::vector<TermPtr> Args;
      for (size_t I = 0; I < E.Args.size(); ++I) {
        TypePtr ArgExp = I < Sig.Params.size()
                             ? Sig.Params[I]->Ty
                             : Type::dataTy(Sig.Matched);
        Args.push_back(elab(*E.Args[I], S, ArgExp));
      }
      return checkExpected(E, mkCall(E.Name, Sig.RetTy, std::move(Args)),
                           Expected);
    }

    // Builtin min / max / abs (shadowable by user definitions above).
    if (E.Name == "min" || E.Name == "max") {
      if (E.Args.size() != 2)
        typeError(E, "builtin '" + E.Name + "' expects 2 arguments");
      TermPtr A = elab(*E.Args[0], S, Type::intTy());
      TermPtr B = elab(*E.Args[1], S, Type::intTy());
      return checkExpected(
          E,
          mkOp(E.Name == "min" ? OpKind::Min : OpKind::Max,
               {std::move(A), std::move(B)}),
          Expected);
    }
    if (E.Name == "abs") {
      if (E.Args.size() != 1)
        typeError(E, "builtin 'abs' expects 1 argument");
      return checkExpected(
          E, mkOp(OpKind::Abs, {elab(*E.Args[0], S, Type::intTy())}),
          Expected);
    }

    typeError(E, "unknown function '" + E.Name + "'");
  }

  // --- Bindings -----------------------------------------------------------//

  const Datatype *matchedDatatypeOf(const SynBinding &B) {
    if (B.Rules.empty())
      userError("scheme '" + B.Name + "' has no rules");
    const ConstructorDecl *C = findCtor(B.Rules[0].CtorName, B.Rules[0].Line);
    return C->Parent;
  }

  void elaborateGroup(const SynLetGroup &G) {
    // Phase 1: register in-progress signatures.
    std::vector<std::string> Names;
    for (const SynBinding &B : G.Bindings) {
      if (Sigs.count(B.Name) || Prog->findFunction(B.Name))
        userError("function '" + B.Name + "' is already defined");
      FnSig Sig;
      for (const auto &[PName, PTy] : B.Params)
        Sig.Params.push_back(namedVar(PName, lowerType(PTy)));
      Sig.IsScheme = B.IsScheme;
      if (B.IsScheme)
        Sig.Matched = matchedDatatypeOf(B);
      if (B.RetAnnot)
        Sig.RetTy = lowerType(*B.RetAnnot);
      Sigs.emplace(B.Name, std::move(Sig));
      Names.push_back(B.Name);
    }

    // Phase 2: fixpoint elaboration of rule bodies.
    struct RuleSlot {
      const SynBinding *B;
      const SynRule *R; // null for plain bindings
      bool Done = false;
      unsigned CtorIndex = 0;
      std::vector<VarPtr> FieldVars;
      TermPtr Body;
    };
    std::vector<RuleSlot> Slots;
    for (const SynBinding &B : G.Bindings) {
      if (B.IsScheme)
        for (const SynRule &R : B.Rules)
          Slots.push_back(RuleSlot{&B, &R, false, 0, {}, nullptr});
      else
        Slots.push_back(RuleSlot{&B, nullptr, false, 0, {}, nullptr});
    }

    bool Progress = true;
    std::string LastNeed;
    while (Progress) {
      Progress = false;
      for (RuleSlot &Slot : Slots) {
        if (Slot.Done)
          continue;
        FnSig &Sig = Sigs.at(Slot.B->Name);
        Scope S;
        for (const VarPtr &P : Sig.Params)
          S.emplace_back(P->Name, mkVar(P));

        std::vector<VarPtr> FieldVars;
        if (Slot.R) {
          const ConstructorDecl *C = findCtor(Slot.R->CtorName, Slot.R->Line);
          if (C->Parent != Sig.Matched)
            userError("rule for '" + Slot.R->CtorName + "' in '" +
                      Slot.B->Name + "' matches a different datatype");
          if (C->Fields.size() != Slot.R->FieldNames.size())
            userError("pattern '" + Slot.R->CtorName + "' in '" +
                      Slot.B->Name + "' has wrong field count");
          for (size_t I = 0; I < C->Fields.size(); ++I) {
            VarPtr V = namedVar(Slot.R->FieldNames[I], C->Fields[I]);
            FieldVars.push_back(V);
            S.emplace_back(V->Name, mkVar(V));
          }
          Slot.CtorIndex = C->Index;
        }

        try {
          const SynExpr &BodyExpr = Slot.R ? *Slot.R->Body : *Slot.B->Body;
          TermPtr Body = elab(BodyExpr, S, Sig.RetTy);
          if (!Sig.RetTy)
            Sig.RetTy = Body->getType();
          Slot.FieldVars = std::move(FieldVars);
          Slot.Body = std::move(Body);
          Slot.Done = true;
          Progress = true;
        } catch (const NeedTypeInfo &N) {
          LastNeed = N.What;
        }
      }
    }
    for (const RuleSlot &Slot : Slots)
      if (!Slot.Done)
        userError("cannot infer types in '" + Slot.B->Name + "' (missing " +
                  LastNeed + "); add a return-type annotation");

    // Phase 3: build the functions.
    for (const SynBinding &B : G.Bindings) {
      FnSig &Sig = Sigs.at(B.Name);
      if (B.IsScheme) {
        RecFunction F = RecFunction::makeScheme(B.Name, Sig.Params,
                                                Sig.Matched, Sig.RetTy);
        for (const RuleSlot &Slot : Slots) {
          if (Slot.B != &B)
            continue;
          if (!sameType(Slot.Body->getType(), Sig.RetTy))
            userError("rules of '" + B.Name + "' have mismatched types");
          if (F.findRule(Slot.CtorIndex))
            userError("duplicate rule in '" + B.Name + "'");
          F.addRule(Slot.CtorIndex, Slot.FieldVars, Slot.Body);
        }
        if (!F.isComplete())
          userError("scheme '" + B.Name +
                    "' does not cover every constructor");
        Prog->addFunction(std::move(F));
      } else {
        for (const RuleSlot &Slot : Slots)
          if (Slot.B == &B)
            Prog->addFunction(
                RecFunction::makePlain(B.Name, Sig.Params, Slot.Body));
      }
    }
  }

  std::map<std::string, const Datatype *> CtorOwner;
  std::map<std::string, FnSig> Sigs;
  std::map<std::string, std::pair<std::vector<TypePtr>, TypePtr>> UnknownSigs;
};

} // namespace

std::shared_ptr<Program> se2gis::elaborateUnit(const SynUnit &Unit) {
  Elaborator E;
  return E.run(Unit);
}

Problem se2gis::loadProblem(const std::string &Source) {
  SynUnit Unit = parseUnit(Source);
  if (Unit.Directives.size() != 1)
    userError("expected exactly one 'synthesize' directive");
  const SynDirective &D = Unit.Directives[0];

  Problem P;
  P.Prog = elaborateUnit(Unit);
  P.Target = D.Target;
  P.Reference = D.Reference;
  P.Invariant = D.Invariant;
  P.Ensures = D.Ensures;

  const RecFunction *Ref = P.Prog->findFunction(D.Reference);
  const RecFunction *Tgt = P.Prog->findFunction(D.Target);
  if (!Ref || !Tgt)
    userError("directive names an undefined function");
  if (!Ref->isScheme() || !Tgt->isScheme())
    userError("reference and target must be recursion schemes");
  P.Tau = Ref->getMatched();
  P.Theta = Tgt->getMatched();

  if (!D.Repr.empty()) {
    P.Repr = D.Repr;
  } else {
    if (P.Theta != P.Tau)
      userError("a representation function is required when the source and "
                "destination types differ");
    P.Repr = "_id_" + P.Theta->getName();
    P.ReprIdentity = true;
    if (!P.Prog->findFunction(P.Repr))
      addIdentityRepr(*P.Prog, P.Theta, P.Repr);
  }

  validateProblem(P);
  return P;
}
