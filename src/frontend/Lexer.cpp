//===- Lexer.cpp ----------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/Diagnostics.h"

#include <cctype>
#include <map>

using namespace se2gis;

const char *se2gis::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::Ident:
    return "identifier";
  case TokKind::CtorId:
    return "constructor name";
  case TokKind::Dollar:
    return "'$'";
  case TokKind::KwType:
    return "'type'";
  case TokKind::KwOf:
    return "'of'";
  case TokKind::KwLet:
    return "'let'";
  case TokKind::KwRec:
    return "'rec'";
  case TokKind::KwAnd:
    return "'and'";
  case TokKind::KwFunction:
    return "'function'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwThen:
    return "'then'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwIn:
    return "'in'";
  case TokKind::KwNot:
    return "'not'";
  case TokKind::KwMod:
    return "'mod'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwBool:
    return "'bool'";
  case TokKind::KwSynthesize:
    return "'synthesize'";
  case TokKind::KwEquiv:
    return "'equiv'";
  case TokKind::KwVia:
    return "'via'";
  case TokKind::KwRequires:
    return "'requires'";
  case TokKind::KwEnsures:
    return "'ensures'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::Comma:
    return "','";
  case TokKind::Colon:
    return "':'";
  case TokKind::Bar:
    return "'|'";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::Equal:
    return "'='";
  case TokKind::NotEq:
    return "'<>'";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::BarBar:
    return "'||'";
  }
  return "token";
}

namespace {

const std::map<std::string, TokKind> &keywordTable() {
  static const std::map<std::string, TokKind> Table = {
      {"type", TokKind::KwType},
      {"of", TokKind::KwOf},
      {"let", TokKind::KwLet},
      {"rec", TokKind::KwRec},
      {"and", TokKind::KwAnd},
      {"function", TokKind::KwFunction},
      {"if", TokKind::KwIf},
      {"then", TokKind::KwThen},
      {"else", TokKind::KwElse},
      {"in", TokKind::KwIn},
      {"not", TokKind::KwNot},
      {"mod", TokKind::KwMod},
      {"true", TokKind::KwTrue},
      {"false", TokKind::KwFalse},
      {"int", TokKind::KwInt},
      {"bool", TokKind::KwBool},
      {"synthesize", TokKind::KwSynthesize},
      {"equiv", TokKind::KwEquiv},
      {"via", TokKind::KwVia},
      {"requires", TokKind::KwRequires},
      {"ensures", TokKind::KwEnsures},
  };
  return Table;
}

[[noreturn]] void lexError(int Line, int Col, const std::string &Msg) {
  userError("lex error at " + std::to_string(Line) + ":" +
            std::to_string(Col) + ": " + Msg);
}

} // namespace

std::vector<Token> se2gis::tokenize(const std::string &Source) {
  std::vector<Token> Tokens;
  size_t I = 0, N = Source.size();
  int Line = 1, Col = 1;

  auto Advance = [&]() {
    if (Source[I] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++I;
  };
  auto Peek = [&](size_t Off = 0) -> char {
    return I + Off < N ? Source[I + Off] : '\0';
  };
  auto Emit = [&](TokKind Kind, std::string Text, int L, int C) {
    Tokens.push_back(Token{Kind, std::move(Text), 0, L, C});
  };

  while (I < N) {
    char C0 = Peek();
    int L = Line, C = Col;

    if (std::isspace(static_cast<unsigned char>(C0))) {
      Advance();
      continue;
    }
    // Line comment: -- ... \n
    if (C0 == '-' && Peek(1) == '-') {
      while (I < N && Peek() != '\n')
        Advance();
      continue;
    }
    // Nested block comment: (* ... *)
    if (C0 == '(' && Peek(1) == '*') {
      int Depth = 1;
      Advance();
      Advance();
      while (I < N && Depth > 0) {
        if (Peek() == '(' && Peek(1) == '*') {
          ++Depth;
          Advance();
          Advance();
        } else if (Peek() == '*' && Peek(1) == ')') {
          --Depth;
          Advance();
          Advance();
        } else {
          Advance();
        }
      }
      if (Depth > 0)
        lexError(L, C, "unterminated comment");
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(C0))) {
      std::string Text;
      while (I < N && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Text += Peek();
        Advance();
      }
      Token T{TokKind::IntLit, Text, std::stoll(Text), L, C};
      Tokens.push_back(std::move(T));
      continue;
    }

    if (std::isalpha(static_cast<unsigned char>(C0)) || C0 == '_') {
      std::string Text;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                       Peek() == '_' || Peek() == '\'')) {
        Text += Peek();
        Advance();
      }
      auto KwIt = keywordTable().find(Text);
      if (KwIt != keywordTable().end()) {
        Emit(KwIt->second, Text, L, C);
      } else if (std::isupper(static_cast<unsigned char>(Text[0]))) {
        Emit(TokKind::CtorId, Text, L, C);
      } else {
        Emit(TokKind::Ident, Text, L, C);
      }
      continue;
    }

    auto Two = [&](char A, char B) { return C0 == A && Peek(1) == B; };
    if (Two('-', '>')) {
      Advance();
      Advance();
      Emit(TokKind::Arrow, "->", L, C);
      continue;
    }
    if (Two('<', '>')) {
      Advance();
      Advance();
      Emit(TokKind::NotEq, "<>", L, C);
      continue;
    }
    if (Two('<', '=')) {
      Advance();
      Advance();
      Emit(TokKind::Le, "<=", L, C);
      continue;
    }
    if (Two('>', '=')) {
      Advance();
      Advance();
      Emit(TokKind::Ge, ">=", L, C);
      continue;
    }
    if (Two('&', '&')) {
      Advance();
      Advance();
      Emit(TokKind::AmpAmp, "&&", L, C);
      continue;
    }
    if (Two('|', '|')) {
      Advance();
      Advance();
      Emit(TokKind::BarBar, "||", L, C);
      continue;
    }

    switch (C0) {
    case '(':
      Emit(TokKind::LParen, "(", L, C);
      break;
    case ')':
      Emit(TokKind::RParen, ")", L, C);
      break;
    case ',':
      Emit(TokKind::Comma, ",", L, C);
      break;
    case ':':
      Emit(TokKind::Colon, ":", L, C);
      break;
    case '|':
      Emit(TokKind::Bar, "|", L, C);
      break;
    case '=':
      Emit(TokKind::Equal, "=", L, C);
      break;
    case '<':
      Emit(TokKind::Lt, "<", L, C);
      break;
    case '>':
      Emit(TokKind::Gt, ">", L, C);
      break;
    case '+':
      Emit(TokKind::Plus, "+", L, C);
      break;
    case '-':
      Emit(TokKind::Minus, "-", L, C);
      break;
    case '*':
      Emit(TokKind::Star, "*", L, C);
      break;
    case '/':
      Emit(TokKind::Slash, "/", L, C);
      break;
    case '$':
      Emit(TokKind::Dollar, "$", L, C);
      break;
    default:
      lexError(L, C, std::string("unexpected character '") + C0 + "'");
    }
    Advance();
  }

  Tokens.push_back(Token{TokKind::Eof, "", 0, Line, Col});
  return Tokens;
}
