//===- Syntax.h - Untyped surface syntax trees ------------------*- C++-*-===//
///
/// \file
/// The parser's output: untyped declarations and expressions. The elaborator
/// (Elaborate.h) turns these into typed \c Program terms, inferring function
/// return types iteratively from base-case rules.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_FRONTEND_SYNTAX_H
#define SE2GIS_FRONTEND_SYNTAX_H

#include <memory>
#include <string>
#include <vector>

namespace se2gis {

struct SynExpr;
using SynExprPtr = std::unique_ptr<SynExpr>;

/// An untyped surface expression.
struct SynExpr {
  enum class Kind : unsigned char {
    IntLit,   // 42
    BoolLit,  // true / false
    Id,       // x (variable, zero-arg function, or builtin)
    App,      // f e1 .. en  (Name = function or constructor)
    Unknown,  // $u e1 .. en
    Binary,   // e1 op e2 (Name = operator spelling)
    Unary,    // not e / - e
    If,       // if c then a else b
    LetIn,    // let (x, y) = e in body
    Tuple     // (e1, .., en)
  };

  Kind K;
  int Line = 0, Col = 0;
  long long IntValue = 0;
  bool BoolValue = false;
  std::string Name;                // Id / App head / Unknown / operator
  std::vector<SynExprPtr> Args;    // App & Unknown args, Binary/Unary
                                   // operands, Tuple elements; for LetIn:
                                   // [bound expr, body]
  std::vector<std::string> LetVars; // LetIn bound names (1 = plain let)
};

/// A surface type annotation.
struct SynType {
  enum class Kind : unsigned char { Int, Bool, Named, Tuple };
  Kind K = Kind::Int;
  std::string Name;             // Named
  std::vector<SynType> Elems;   // Tuple
};

/// One constructor of a surface datatype declaration.
struct SynCtor {
  std::string Name;
  std::vector<SynType> Fields;
};

/// `type name = C1 of t * t | C2 | ...`
struct SynTypeDecl {
  std::string Name;
  std::vector<SynCtor> Ctors;
  int Line = 0;
};

/// One pattern-matching rule `| C (a, b) -> body`.
struct SynRule {
  std::string CtorName;
  std::vector<std::string> FieldNames;
  SynExprPtr Body;
  int Line = 0;
};

/// One binding of a `let [rec] ... and ...` group.
struct SynBinding {
  std::string Name;
  /// Annotated extra parameters `(x : int)`.
  std::vector<std::pair<std::string, SynType>> Params;
  /// Optional return type annotation `: int`.
  std::unique_ptr<SynType> RetAnnot;
  /// True for `= function | ...` scheme definitions.
  bool IsScheme = false;
  std::vector<SynRule> Rules; // scheme only
  SynExprPtr Body;            // plain only
  int Line = 0;
};

/// A `let [rec]` group (possibly mutually recursive via `and`).
struct SynLetGroup {
  bool Recursive = false;
  std::vector<SynBinding> Bindings;
};

/// `synthesize target equiv reference [via repr] [requires inv]
///  [ensures post]`
struct SynDirective {
  std::string Target;
  std::string Reference;
  std::string Repr;      // empty: identity
  std::string Invariant; // empty: true
  std::string Ensures;   // empty: none
  int Line = 0;
};

/// A parsed source file.
struct SynUnit {
  std::vector<SynTypeDecl> Types;
  std::vector<SynLetGroup> LetGroups;
  std::vector<SynDirective> Directives;
};

} // namespace se2gis

#endif // SE2GIS_FRONTEND_SYNTAX_H
