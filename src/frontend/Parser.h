//===- Parser.h - Recursive-descent parser for the DSL ----------*- C++-*-===//
///
/// \file
/// Parses benchmark sources into untyped syntax trees (Syntax.h). The
/// concrete grammar mirrors the OCaml subset Synduce accepts: `type`
/// declarations, (mutually) recursive `let` groups defined by
/// pattern-matching (`= function | C ... -> ...`), and a `synthesize`
/// directive naming the problem components.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_FRONTEND_PARSER_H
#define SE2GIS_FRONTEND_PARSER_H

#include "frontend/Syntax.h"

#include <string>

namespace se2gis {

/// Parses \p Source; raises UserError with a located message on syntax
/// errors.
SynUnit parseUnit(const std::string &Source);

} // namespace se2gis

#endif // SE2GIS_FRONTEND_PARSER_H
