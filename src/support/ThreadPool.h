//===- ThreadPool.h - Shared job-queue thread pool --------------*- C++-*-===//
///
/// \file
/// A small fixed-size thread pool with a FIFO job queue, used by the suite
/// runner to sweep (benchmark, algorithm) pairs concurrently, by the
/// portfolio mode, and by the bench harness drivers. Jobs are submitted
/// with \c enqueue and return a \c std::future, so exceptions thrown inside
/// a job propagate to whoever calls \c get() — workers never swallow
/// errors. The destructor drains the queue and joins every worker.
///
/// The pool is safe to share between threads; it is NOT safe to enqueue a
/// job that blocks on another job of the same pool (classic nested-wait
/// deadlock), which is why the portfolio mode builds its own two-worker
/// instance instead of borrowing the suite runner's.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SUPPORT_THREADPOOL_H
#define SE2GIS_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace se2gis {

class ThreadPool {
public:
  /// Creates a pool with \p Threads workers; 0 picks
  /// \c defaultConcurrency().
  explicit ThreadPool(unsigned Threads = 0);

  /// Drains outstanding jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Submits \p Job and returns a future for its result. An exception
  /// escaping the job is captured and rethrown by \c future::get().
  template <class Fn>
  auto enqueue(Fn &&Job) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto Task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(Job));
    std::future<R> Result = Task->get_future();
    {
      std::lock_guard<std::mutex> Lock(M);
      Queue.emplace_back([Task] { (*Task)(); });
    }
    Ready.notify_one();
    return Result;
  }

  /// The suite-wide parallelism default:
  /// \c std::thread::hardware_concurrency() (at least 1). The
  /// \c SE2GIS_JOBS environment variable is applied upstream by
  /// \c SolverConfig::fromEnv.
  static unsigned defaultConcurrency();

private:
  void workerLoop();

  std::mutex M;
  std::condition_variable Ready;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Workers;
  bool Stopping = false;
};

//===----------------------------------------------------------------------===//
// Oversubscription control (service worker pool × inner parallelism)
//===----------------------------------------------------------------------===//

/// Registers how many long-lived *outer* workers this process runs (the
/// synthesis service's pool; 1 when no service is embedded). Inner
/// parallel code consults it through \c clampInnerJobs so that
/// outer × inner never exceeds the hardware (DESIGN.md "Service model"
/// documents the formula).
void setOuterWorkerCount(unsigned N);

/// \returns the registered outer worker count (1 until registered).
unsigned outerWorkerCount();

/// Caps a requested inner worker count against the registered outer pool:
/// with O outer workers on H hardware threads, the effective inner
/// parallelism is min(Requested, max(1, H / O)). When no outer pool is
/// registered (O <= 1) the request passes through unchanged, so standalone
/// sweeps keep their historical behavior (including deliberate
/// oversubscription via SE2GIS_JOBS).
unsigned clampInnerJobs(unsigned Requested);

} // namespace se2gis

#endif // SE2GIS_SUPPORT_THREADPOOL_H
