//===- FlightRecorder.h - Always-on crash/timeout post-mortem ---*- C++-*-===//
///
/// \file
/// The always-on flight recorder: per-thread lock-free rings of the most
/// recent span / log / phase events, recorded even when trace export
/// (support/Trace.h) is off, so a crash, a `fatalError`, or a job that ends
/// in `Timeout` can ship a post-mortem of its last moments without anyone
/// having asked for a trace up front.
///
/// Cost discipline (same as Trace.cpp):
///  - disabled: one relaxed atomic load per instrumentation site.
///  - enabled (the default): a fixed-size struct copy into a per-thread
///    ring plus one relaxed index store — no locks, no allocation, no
///    branches on ring fullness (old events are overwritten, which is the
///    point: the ring always holds the *latest* N events).
///
/// Dump paths:
///  - \c flightWriteJson / \c flightDumpToFile — ordinary exporters
///    producing a Chrome trace_event JSON object (Perfetto-loadable), used
///    on job timeout/cancellation and from \c fatalError.
///  - \c flightDumpSignalSafe — an async-signal-safe exporter writing the
///    same JSON with nothing but write(2) and integer snprintf formatting,
///    used by the fatal-signal handler installed by
///    \c flightInstallCrashHandler (which also emits a backtrace to
///    stderr before re-raising).
///
/// Rings are intentionally leaked: a thread may exit while a dump (or the
/// signal handler) is reading its buffer, so buffers are registered in a
/// fixed lock-free table and never freed.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SUPPORT_FLIGHTRECORDER_H
#define SE2GIS_SUPPORT_FLIGHTRECORDER_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace se2gis {

/// What one recorded event describes.
enum class FlightKind : unsigned char {
  Span,  ///< a completed TraceSpan (name + category + duration)
  Log,   ///< an admitted log record (component + message prefix)
  Phase, ///< a completed PhaseScope slice over the per-event threshold
  Mark   ///< an explicit instant marker (job admission, verdicts, ...)
};

/// One ring slot. Fixed-size POD so the signal handler can read slots
/// while a writer races ahead: a torn slot renders as garbage text, never
/// as a crash or a heap walk.
struct FlightEvent {
  std::uint64_t StartNs = 0; ///< trace-epoch-relative (detail::traceNowNs)
  std::uint64_t DurNs = 0;   ///< 0 for instant events
  const char *Name = nullptr; ///< static string (span name, component, ...)
  std::uint64_t Rid = 0;     ///< request id active on the recording thread
  std::uint64_t A0 = 0;      ///< small numeric payload (round, level, ...)
  std::uint32_t Tid = 0;     ///< compact thread id (support/Log.h)
  FlightKind Kind = FlightKind::Mark;
  unsigned char Level = 0;   ///< LogLevel for Kind::Log
  char Detail[42] = {};      ///< truncated free text (category / message)
};

/// \returns true when the recorder is on — one relaxed atomic load; the
/// guard every instrumentation site sits behind. On by default.
bool flightEnabled();

/// Turns recording on/off and (before a thread's first event) sizes new
/// rings to \p RingCapacity events (rounded up to a power of two; rings
/// that already exist keep their size).
void flightConfigure(bool Enabled, std::size_t RingCapacity = 4096);

/// Remembers \p PathPrefix as the fatal-dump target: \c fatalError and the
/// crash handler write `<prefix>.<pid>.json`. Empty disables fatal dumps.
void flightSetDumpPrefix(const std::string &PathPrefix);

/// \returns the configured fatal-dump prefix ("" when none).
std::string flightDumpPrefix();

/// Records one event (no-op when disabled). \p Name must be a string
/// literal or otherwise outlive every dump; \p Detail is copied
/// (truncated to the slot's capacity).
void flightRecord(FlightKind Kind, const char *Name, std::uint64_t StartNs,
                  std::uint64_t DurNs, std::uint64_t A0 = 0,
                  const char *Detail = nullptr, unsigned char Level = 0);

/// Total events ever recorded / overwritten (monotonic, process-wide).
std::uint64_t flightRecordedEvents();
std::uint64_t flightOverwrittenEvents();

/// Clears every ring (test support; not signal-safe).
void flightReset();

/// Writes everything currently buffered as one Chrome trace_event JSON
/// object to \p OS (Perfetto-loadable). Safe against concurrent writers.
void flightWriteJson(std::ostream &OS);

/// Writes the JSON to \p Path. \returns false when the file cannot be
/// written.
bool flightDumpToFile(const std::string &Path);

/// Async-signal-safe dump of every ring to \p Fd (write(2) + integer
/// formatting only; no allocation, no locks, no sorting).
void flightDumpSignalSafe(int Fd);

/// Installs fatal-signal handlers (SEGV/ABRT/BUS/FPE/ILL) that dump the
/// rings to `<prefix>.<pid>.json`, write a backtrace to stderr, and
/// re-raise. Idempotent. Requires a dump prefix to produce a file.
void flightInstallCrashHandler();

/// Dumps to `<prefix>.<pid>.json` if a prefix is configured (the
/// fatalError hook; ordinary, not signal-context). \returns the path
/// written, or "" when disabled/failed.
std::string flightDumpOnFatal();

} // namespace se2gis

#endif // SE2GIS_SUPPORT_FLIGHTRECORDER_H
