//===- Metrics.h - Prometheus text exposition -------------------*- C++-*-===//
///
/// \file
/// Renders the process's telemetry — every PerfCounter, the log2 latency
/// histograms (as native Prometheus histograms with cumulative buckets),
/// and whatever gauges/counters the caller adds (service queue depth,
/// per-verdict job totals) — in Prometheus text exposition format v0.0.4,
/// so a stock Prometheus can scrape `se2gis_served` and the fleet becomes
/// operable (ROADMAP, scale-out item).
///
/// Naming scheme (see DESIGN.md "Operability model"):
///  - counters:   se2gis_<perf_json_key>_total        (e.g. se2gis_smt_queries_total)
///  - timers:     se2gis_<name>_seconds_total         (e.g. se2gis_z3_time_seconds_total)
///  - histograms: se2gis_<name>_seconds               (native histogram; le bounds
///                are the log2 bucket upper bounds converted ns → s)
///  - gauges:     se2gis_<name>                       (e.g. se2gis_queue_depth)
///
/// \c PrometheusWriter is a dumb serializer: it emits `# HELP`/`# TYPE`
/// once per family (callers may emit several labeled samples of one
/// family back to back) and escapes label values per the spec. All values
/// come from snapshots, so one scrape is internally consistent per family.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SUPPORT_METRICS_H
#define SE2GIS_SUPPORT_METRICS_H

#include "support/Histogram.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace se2gis {

struct PerfSnapshot;

/// A label set: pairs of (name, value); values get escaped on emission.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
std::string promEscapeLabel(const std::string &V);

/// Serializer for one scrape. Append families with the typed emitters,
/// then take \c str().
class PrometheusWriter {
public:
  /// Emits one counter sample. \p Name must already carry the `_total`
  /// suffix; HELP/TYPE headers are emitted on the family's first sample.
  void counter(const std::string &Name, const char *Help, double Value,
               const MetricLabels &Labels = {});

  /// Emits one gauge sample.
  void gauge(const std::string &Name, const char *Help, double Value,
             const MetricLabels &Labels = {});

  /// Emits \p H as a native Prometheus histogram family \p Name (unit:
  /// seconds): cumulative `_bucket{le="..."}` lines for every log2 bucket
  /// up to the highest non-empty one, the `+Inf` bucket, `_sum`, and
  /// `_count`. Empty histograms emit just `+Inf`/sum/count so the family
  /// is always present.
  void histogram(const std::string &Name, const char *Help,
                 const HistogramSnapshot &H, const MetricLabels &Labels = {});

  /// \returns the accumulated exposition text.
  const std::string &str() const { return Out; }

private:
  void header(const std::string &Name, const char *Help, const char *Type);
  void sample(const std::string &Name, const MetricLabels &Labels,
              double Value);

  std::string Out;
  std::vector<std::string> SeenFamilies;
};

/// Appends every process-wide telemetry family to \p W: all PerfCounters
/// as `se2gis_*_total`, both PerfTimers as `se2gis_*_seconds_total`, the
/// four latency histograms as `se2gis_*_seconds`, and the trace/flight
/// bookkeeping counters. \p Snap should be a fresh \c snapshotPerf().
void writeProcessMetrics(PrometheusWriter &W, const PerfSnapshot &Snap);

/// Formats \p V with enough precision for exposition (integers render
/// without a decimal point; everything else as shortest round-trip).
std::string promFormatValue(double V);

} // namespace se2gis

#endif // SE2GIS_SUPPORT_METRICS_H
