//===- Log.cpp ------------------------------------------------------------===//

#include "support/Log.h"

#include "support/FlightRecorder.h"
#include "support/Trace.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>

using namespace se2gis;

namespace {

std::atomic<unsigned char> GLevel{static_cast<unsigned char>(LogLevel::Info)};

/// Emission (stderr + JSONL sink) is serialized by one mutex so concurrent
/// suite workers never interleave characters within a line.
std::mutex &emitMutex() {
  static std::mutex M;
  return M;
}

struct JsonSink {
  std::string Path;
  std::ofstream Stream;
};

JsonSink &jsonSink() {
  static JsonSink S;
  return S;
}

std::atomic<unsigned> GNextThreadId{1};

/// Formats the current wall-clock time as ISO8601 UTC with milliseconds.
std::string timestampUtc() {
  using namespace std::chrono;
  auto Now = system_clock::now();
  std::time_t T = system_clock::to_time_t(Now);
  auto Ms = duration_cast<milliseconds>(Now.time_since_epoch()) % 1000;
  std::tm Tm{};
#if defined(_WIN32)
  gmtime_s(&Tm, &T);
#else
  gmtime_r(&T, &Tm);
#endif
  char Buf[80];
  std::snprintf(Buf, sizeof(Buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                Tm.tm_year + 1900, Tm.tm_mon + 1, Tm.tm_mday, Tm.tm_hour,
                Tm.tm_min, Tm.tm_sec, static_cast<int>(Ms.count()));
  return Buf;
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

const char *se2gis::logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Error:
    return "error";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Info:
    return "info";
  case LogLevel::Debug:
    return "debug";
  }
  return "?";
}

std::optional<LogLevel> se2gis::parseLogLevel(const std::string &Name) {
  std::string S;
  for (char C : Name)
    S += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  if (S == "error")
    return LogLevel::Error;
  if (S == "warn" || S == "warning")
    return LogLevel::Warn;
  if (S == "info")
    return LogLevel::Info;
  if (S == "debug")
    return LogLevel::Debug;
  return std::nullopt;
}

void se2gis::configureLogging(const LogSettings &Settings) {
  GLevel.store(static_cast<unsigned char>(Settings.Level),
               std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(emitMutex());
  JsonSink &Sink = jsonSink();
  if (Sink.Path == Settings.JsonPath)
    return; // idempotent reconfiguration (one call per SynthesisTask)
  if (Sink.Stream.is_open())
    Sink.Stream.close();
  Sink.Path = Settings.JsonPath;
  if (!Sink.Path.empty())
    Sink.Stream.open(Sink.Path, std::ios::app);
}

LogLevel se2gis::logLevel() {
  return static_cast<LogLevel>(GLevel.load(std::memory_order_relaxed));
}

bool se2gis::logEnabled(LogLevel L) {
  return static_cast<unsigned char>(L) <=
         GLevel.load(std::memory_order_relaxed);
}

unsigned se2gis::currentThreadId() {
  thread_local unsigned Id =
      GNextThreadId.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

namespace {
thread_local std::uint64_t TLRequestId = 0;
} // namespace

void se2gis::setThreadRequestId(std::uint64_t Rid) { TLRequestId = Rid; }

std::uint64_t se2gis::threadRequestId() { return TLRequestId; }

void se2gis::logMessage(LogLevel L, const char *Component,
                        const std::string &Message) {
  if (!logEnabled(L))
    return;
  unsigned Tid = currentThreadId();
  std::uint64_t Rid = threadRequestId();
  // Feed the flight recorder before taking the emit lock: post-mortems
  // should see the record even if another thread holds stderr. Component
  // tags are string literals at every call site, which is what the
  // recorder's static-Name contract needs.
  if (flightEnabled())
    flightRecord(FlightKind::Log, Component, detail::traceNowNs(), 0,
                 static_cast<std::uint64_t>(L), Message.c_str(),
                 static_cast<unsigned char>(L));
  std::string Ts = timestampUtc();
  std::lock_guard<std::mutex> Lock(emitMutex());
  // The [r=N] bracket appears only when a request id is bound (service
  // worker threads); suite/CLI lines keep the four-bracket prefix that
  // scripts/bench_smoke.sh greps for.
  if (Rid)
    std::fprintf(stderr, "[%s][%s][%s][t=%u][r=%llu] %s\n", Component,
                 logLevelName(L), Ts.c_str(), Tid,
                 static_cast<unsigned long long>(Rid), Message.c_str());
  else
    std::fprintf(stderr, "[%s][%s][%s][t=%u] %s\n", Component, logLevelName(L),
                 Ts.c_str(), Tid, Message.c_str());
  JsonSink &Sink = jsonSink();
  if (Sink.Stream.is_open()) {
    Sink.Stream << "{\"ts\":\"" << Ts << "\",\"level\":\"" << logLevelName(L)
                << "\",\"tid\":" << Tid;
    if (Rid)
      Sink.Stream << ",\"rid\":" << Rid;
    Sink.Stream << ",\"component\":\"" << jsonEscape(Component)
                << "\",\"msg\":\"" << jsonEscape(Message) << "\"}\n";
    Sink.Stream.flush();
  }
}

void se2gis::logf(LogLevel L, const char *Component, const char *Fmt, ...) {
  if (!logEnabled(L))
    return;
  char Buf[2048];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  logMessage(L, Component, Buf);
}
