//===- ThreadPool.cpp -----------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace se2gis;

unsigned ThreadPool::defaultConcurrency() {
  // SE2GIS_JOBS is applied by SolverConfig::fromEnv (the single reader of
  // the SE2GIS_* environment), not here: callers pass an explicit count.
  unsigned HW = std::thread::hardware_concurrency();
  return HW > 0 ? HW : 1;
}

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = defaultConcurrency();
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  Ready.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(M);
      Ready.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Job = std::move(Queue.front());
      Queue.pop_front();
    }
    // A packaged_task captures exceptions into its future; nothing escapes
    // into the worker loop.
    Job();
  }
}
