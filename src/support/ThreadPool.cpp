//===- ThreadPool.cpp -----------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>

using namespace se2gis;

namespace {
/// Outer (service) worker count; 1 = no outer pool registered.
std::atomic<unsigned> OuterWorkers{1};
} // namespace

void se2gis::setOuterWorkerCount(unsigned N) {
  OuterWorkers.store(N > 0 ? N : 1, std::memory_order_relaxed);
}

unsigned se2gis::outerWorkerCount() {
  return OuterWorkers.load(std::memory_order_relaxed);
}

unsigned se2gis::clampInnerJobs(unsigned Requested) {
  unsigned Outer = outerWorkerCount();
  if (Outer <= 1 || Requested <= 1)
    return Requested;
  unsigned HW = ThreadPool::defaultConcurrency();
  unsigned Cap = HW / Outer;
  if (Cap < 1)
    Cap = 1;
  return Requested < Cap ? Requested : Cap;
}

unsigned ThreadPool::defaultConcurrency() {
  // SE2GIS_JOBS is applied by SolverConfig::fromEnv (the single reader of
  // the SE2GIS_* environment), not here: callers pass an explicit count.
  unsigned HW = std::thread::hardware_concurrency();
  return HW > 0 ? HW : 1;
}

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = defaultConcurrency();
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  Ready.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(M);
      Ready.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Job = std::move(Queue.front());
      Queue.pop_front();
    }
    // A packaged_task captures exceptions into its future; nothing escapes
    // into the worker loop.
    Job();
  }
}
