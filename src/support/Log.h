//===- Log.h - Leveled structured logging -----------------------*- C++-*-===//
///
/// \file
/// The process-wide leveled logger behind every diagnostic line the solver
/// stack emits: suite progress, SGE/CEGIS debug traces, load errors, and the
/// fatal-error channel of support/Diagnostics. Each line carries a component
/// tag, the severity, a UTC timestamp with millisecond precision, and a
/// compact per-process thread id, so interleaved output from parallel suite
/// workers stays attributable:
///
///   [suite][info][2026-08-05T12:34:56.789Z][t=3] sortedlist/min ...
///
/// The level is a single relaxed atomic read (\c logEnabled), so disabled
/// levels cost one load and no formatting. Configuration flows through
/// \c SolverConfig (SE2GIS_LOG=error|warn|info|debug plus the optional
/// SE2GIS_LOG_JSON JSONL sink); \c configureLogging is idempotent and safe
/// to call once per SynthesisTask.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SUPPORT_LOG_H
#define SE2GIS_SUPPORT_LOG_H

#include <cstdarg>
#include <cstdint>
#include <optional>
#include <string>

namespace se2gis {

/// Severity levels, most severe first (the enum order is the filter order:
/// a configured level admits itself and everything more severe).
enum class LogLevel : unsigned char { Error = 0, Warn, Info, Debug };

/// \returns the lowercase level name ("error", "warn", ...).
const char *logLevelName(LogLevel L);

/// Parses "error" / "warn" / "info" / "debug" (case-insensitively; also
/// accepts "warning"). \returns nullopt on anything else.
std::optional<LogLevel> parseLogLevel(const std::string &Name);

/// Logger configuration, carried inside SolverConfig.
struct LogSettings {
  /// Most verbose admitted level. Info by default: progress lines show,
  /// debug traces don't.
  LogLevel Level = LogLevel::Info;
  /// When non-empty, every admitted record is also appended to this file as
  /// one JSON object per line: {"ts":"...","level":"...","tid":N,
  /// "component":"...","msg":"..."}.
  std::string JsonPath;
};

/// Applies \p Settings process-wide. Idempotent: reconfiguring with the
/// same values is a no-op; changing JsonPath reopens the sink (append).
void configureLogging(const LogSettings &Settings);

/// \returns the currently configured level.
LogLevel logLevel();

/// \returns true when records at \p L are admitted — one relaxed atomic
/// load, the only cost of a disabled log site.
bool logEnabled(LogLevel L);

/// \returns a compact 1-based id for the calling thread, assigned on first
/// use. Shared with the tracer so log lines and trace tracks correlate.
unsigned currentThreadId();

/// Binds \p Rid as the calling thread's active request id (0 clears it).
/// Set by the service at request admission and by workers for the duration
/// of a job; propagated manually into portfolio race threads. While set,
/// every log line gains an `[r=N]` bracket (and a `"rid"` JSONL field) and
/// every flight-recorder event carries the id, so one request's activity
/// can be grepped across logs, traces, and post-mortem dumps.
void setThreadRequestId(std::uint64_t Rid);

/// \returns the calling thread's active request id (0 when none).
std::uint64_t threadRequestId();

/// RAII binder for \c setThreadRequestId (restores the previous id).
class RequestIdScope {
public:
  explicit RequestIdScope(std::uint64_t Rid) : Prev(threadRequestId()) {
    setThreadRequestId(Rid);
  }
  ~RequestIdScope() { setThreadRequestId(Prev); }
  RequestIdScope(const RequestIdScope &) = delete;
  RequestIdScope &operator=(const RequestIdScope &) = delete;

private:
  std::uint64_t Prev;
};

/// Emits one record (already formatted). Serialized internally; a no-op
/// when \p L is not admitted.
void logMessage(LogLevel L, const char *Component, const std::string &Message);

/// printf-style convenience wrapper; formatting is skipped entirely when
/// \p L is not admitted.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 3, 4)))
#endif
void logf(LogLevel L, const char *Component, const char *Fmt, ...);

} // namespace se2gis

#endif // SE2GIS_SUPPORT_LOG_H
