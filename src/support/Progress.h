//===- Progress.h - Live per-job progress publication -----------*- C++-*-===//
///
/// \file
/// Lock-free publication of "where is this job right now": solver threads
/// write coarse per-round snapshots (algorithm, round, candidate size,
/// lemma count, witness-vs-CHC channel state) into a seqlock-guarded
/// double word buffer; the service's `status`/`stats` handlers read it
/// from other threads without ever blocking the solver.
///
/// Writer cost: one CAS + a struct mutation + one release store, and only
/// at round granularity (never inside eval/SMT hot loops). Reader cost:
/// retry-copy until a consistent sequence pair is observed. Writers from
/// different portfolio race members share one board and are serialized by
/// the seqlock's odd-sequence spin, each touching only its own fields.
///
/// The board a thread publishes to is carried in a thread-local pointer
/// (\c setThreadProgressBoard) installed by the service worker for the
/// duration of a job and propagated manually into portfolio race threads
/// (they run on a dedicated ThreadPool and inherit nothing). With no
/// board installed, \c progressPublish is one thread-local read.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SUPPORT_PROGRESS_H
#define SE2GIS_SUPPORT_PROGRESS_H

#include <atomic>
#include <cstdint>
#include <cstring>
#include <utility>

namespace se2gis {

/// Fixed-size POD snapshot of a running job. char fields are NUL-padded
/// copies so the reader never chases pointers into a racing writer.
struct ProgressSnapshot {
  char Algorithm[16] = {}; ///< "se2gis", "segis", "segis-uc", "portfolio"
  char Activity[16] = {};  ///< "refine","coarsen","enum","witness","verify"
  char WitnessState[16] = {}; ///< witness channel: "", "probing", "found"
  char ChcState[16] = {};     ///< CHC channel: "", "encoding", "solving", ...
  std::uint64_t Round = 0;       ///< outer CEGIS/refinement round
  std::uint64_t Refinements = 0; ///< SE²GIS refinement count so far
  std::uint64_t Coarsenings = 0; ///< SE²GIS coarsening count so far
  std::uint64_t Lemmas = 0;      ///< lemmas learned from witnesses
  std::uint64_t CandidateSize = 0; ///< size of the last candidate (chars)
  std::uint64_t Terms = 0;         ///< enumerated terms (SEGIS ladder)
  std::uint64_t ChcRung = 0;       ///< CHC term-ladder rung in flight
  std::uint64_t ChcClauses = 0;    ///< Horn clauses in the current encoding
  std::uint64_t UpdatedNs = 0;     ///< trace-epoch stamp of the last write
};

/// Copies \p Src into the fixed char field \p Dst, truncating + NUL-ing.
template <std::size_t N> inline void progressSetStr(char (&Dst)[N], const char *Src) {
  std::size_t L = Src ? strnlen(Src, N - 1) : 0;
  if (L)
    std::memcpy(Dst, Src, L);
  std::memset(Dst + L, 0, N - L);
}

/// Seqlock-guarded snapshot: writers serialize on the odd sequence value,
/// readers retry until they observe the same even sequence on both sides
/// of the copy.
class ProgressBoard {
public:
  /// Runs \p Fn(ProgressSnapshot&) inside the write section. Multiple
  /// writers (portfolio race members) are serialized here; keep \p Fn to
  /// plain field assignments.
  template <typename FnT> void update(FnT &&Fn) {
    std::uint32_t S;
    for (;;) {
      S = Seq.load(std::memory_order_relaxed);
      if ((S & 1u) == 0 &&
          Seq.compare_exchange_weak(S, S + 1, std::memory_order_acquire,
                                    std::memory_order_relaxed))
        break;
    }
    Fn(Data);
    Seq.store(S + 2, std::memory_order_release);
  }

  /// \returns a consistent copy of the current snapshot.
  ProgressSnapshot read() const {
    for (;;) {
      std::uint32_t S1 = Seq.load(std::memory_order_acquire);
      if (S1 & 1u)
        continue;
      ProgressSnapshot Copy = Data;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (Seq.load(std::memory_order_relaxed) == S1)
        return Copy;
    }
  }

private:
  std::atomic<std::uint32_t> Seq{0};
  ProgressSnapshot Data;
};

/// Installs \p Board as the calling thread's publication target (nullptr
/// clears). The service worker sets it around a job; runRace re-installs
/// it inside each race member thread.
void setThreadProgressBoard(ProgressBoard *Board);

/// \returns the calling thread's publication target (nullptr when none).
ProgressBoard *threadProgressBoard();

/// Publishes via the thread's board, or does nothing when no board is
/// installed (CLI/suite/test runs): one thread-local load on that path.
template <typename FnT> inline void progressPublish(FnT &&Fn) {
  if (ProgressBoard *B = threadProgressBoard())
    B->update(std::forward<FnT>(Fn));
}

/// RAII installer for \c setThreadProgressBoard (restores the previous
/// target, so nested scopes compose).
class ProgressBoardScope {
public:
  explicit ProgressBoardScope(ProgressBoard *Board)
      : Prev(threadProgressBoard()) {
    setThreadProgressBoard(Board);
  }
  ~ProgressBoardScope() { setThreadProgressBoard(Prev); }
  ProgressBoardScope(const ProgressBoardScope &) = delete;
  ProgressBoardScope &operator=(const ProgressBoardScope &) = delete;

private:
  ProgressBoard *Prev;
};

} // namespace se2gis

#endif // SE2GIS_SUPPORT_PROGRESS_H
