//===- Diagnostics.h - Fatal errors and internal checks ---------*- C++-*-===//
//
// Part of the SE2GIS reproduction of "Recursion Synthesis with
// Unrealizability Witnesses" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight diagnostic helpers used throughout the library: fatal internal
/// errors (invariant violations) and recoverable user-facing errors raised
/// while parsing or checking problem definitions.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SUPPORT_DIAGNOSTICS_H
#define SE2GIS_SUPPORT_DIAGNOSTICS_H

#include <stdexcept>
#include <string>

namespace se2gis {

/// Error raised for malformed user input (DSL sources, ill-typed problems).
///
/// This is the only exception type that crosses public API boundaries; all
/// other failures are programmatic and abort via \c fatalError.
class UserError : public std::runtime_error {
public:
  explicit UserError(const std::string &Message)
      : std::runtime_error(Message) {}
};

/// Aborts the process with \p Message; used for broken internal invariants.
[[noreturn]] void fatalError(const std::string &Message);

/// Raises a \c UserError carrying \p Message.
[[noreturn]] void userError(const std::string &Message);

} // namespace se2gis

#endif // SE2GIS_SUPPORT_DIAGNOSTICS_H
