//===- Trace.h - Structured span tracing (Chrome trace_event) ---*- C++-*-===//
///
/// \file
/// A thread-safe span/event tracer for the SE²GIS loop. Instrumented scopes
/// construct an RAII \c TraceSpan (name + category + optional key/value
/// args); completed spans land in per-thread ring buffers and are exported
/// on flush as Chrome `trace_event`-format JSON — load the file in Perfetto
/// (ui.perfetto.dev) or chrome://tracing to see suite workers, portfolio
/// members, refinement/coarsening rounds, and individual SMT queries on
/// separate thread tracks.
///
/// Cost model:
///  - disabled (the default): constructing a span is a single relaxed
///    atomic load; no allocation, no clock read, no locking.
///  - enabled: two steady_clock reads per span plus one short uncontended
///    per-thread mutex section on completion. Buffers are bounded; once a
///    thread's buffer is full further events are *dropped and counted*
///    (\c traceDroppedEvents), never reallocated or blocking.
///
/// Categories emitted by the instrumented stack (see DESIGN.md
/// "Observability model"): "suite" (per-benchmark runs), "round"
/// (SE²GIS/SEGIS refinement & coarsening rounds), "sge" (CEGIS rounds),
/// "enum" (PBE searches), "smt" (checkSat + induction), "portfolio"
/// (racing members).
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SUPPORT_TRACE_H
#define SE2GIS_SUPPORT_TRACE_H

#include "support/FlightRecorder.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace se2gis {

/// \returns true when tracing is on — one relaxed atomic load; the guard
/// every instrumentation site sits behind.
bool traceEnabled();

/// Enables tracing and remembers \p Path as the flush target (empty path:
/// tracing on, but only explicit \c traceWriteJson exports). Buffers
/// created after this call hold at most \p BufferCapacity events each.
/// Idempotent for identical arguments. The first call with a non-empty
/// path registers an atexit flush so a forgotten flush still yields a file.
void traceConfigure(const std::string &Path, std::size_t BufferCapacity = 16384);

/// Turns tracing off (recorded events are kept until \c traceReset).
void traceDisable();

/// \returns the configured flush path ("" when none).
std::string tracePath();

/// Writes everything recorded so far as one Chrome trace_event JSON object
/// ({"traceEvents":[...],...}) to \p OS. Safe to call while other threads
/// are still recording.
void traceWriteJson(std::ostream &OS);

/// Writes the JSON to the configured path. \returns false when no path is
/// configured or the file cannot be written.
bool traceFlush();

/// Total events dropped on full buffers since the last \c traceReset.
std::uint64_t traceDroppedEvents();

/// Total events currently buffered (test support).
std::uint64_t traceRecordedEvents();

/// Clears all buffered events and the drop counter (test support).
void traceReset();

namespace detail {
struct TraceArg {
  const char *Key;
  std::string Value;
  bool Quoted; ///< false: emit verbatim (numbers); true: JSON string
};
/// Records one completed span; called from ~TraceSpan only when active.
void traceRecordSpan(const char *Name, const char *Category,
                     std::uint64_t StartNs, std::uint64_t DurNs,
                     std::vector<TraceArg> Args);
/// Nanoseconds since the process-wide trace epoch.
std::uint64_t traceNowNs();
} // namespace detail

/// RAII span: measures the enclosing scope and records it on destruction —
/// into the trace buffers when tracing is on, and into the always-on
/// flight recorder when that is on (the default). With both disabled the
/// constructor is two relaxed atomic loads and every other member function
/// is an immediate return. \p Name and \p Category must be string literals
/// (or otherwise outlive the flush).
class TraceSpan {
public:
  TraceSpan(const char *Name, const char *Category)
      : Name(Name), Category(Category), Active(traceEnabled()),
        Flight(flightEnabled()),
        StartNs((Active || Flight) ? detail::traceNowNs() : 0) {}

  ~TraceSpan() {
    if (!Active && !Flight)
      return;
    std::uint64_t DurNs = detail::traceNowNs() - StartNs;
    if (Flight)
      flightRecord(FlightKind::Span, Name, StartNs, DurNs, 0, Category);
    if (Active)
      detail::traceRecordSpan(Name, Category, StartNs, DurNs,
                              std::move(Args));
  }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// \returns true when this span will be recorded (lets callers skip
  /// computing expensive argument values).
  bool active() const { return Active; }

  void arg(const char *Key, const char *Value) {
    if (Active)
      Args.push_back({Key, Value, /*Quoted=*/true});
  }
  void arg(const char *Key, const std::string &Value) {
    if (Active)
      Args.push_back({Key, Value, /*Quoted=*/true});
  }
  void arg(const char *Key, std::int64_t Value) {
    if (Active)
      Args.push_back({Key, std::to_string(Value), /*Quoted=*/false});
  }
  void arg(const char *Key, std::uint64_t Value) {
    if (Active)
      Args.push_back({Key, std::to_string(Value), /*Quoted=*/false});
  }

private:
  const char *Name;
  const char *Category;
  bool Active;
  bool Flight; ///< also land in the always-on flight recorder
  std::uint64_t StartNs;
  std::vector<detail::TraceArg> Args;
};

} // namespace se2gis

#endif // SE2GIS_SUPPORT_TRACE_H
