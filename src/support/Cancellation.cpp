//===- Cancellation.cpp ---------------------------------------------------===//

#include "support/Cancellation.h"

using namespace se2gis;

const char *se2gis::cancelReasonName(CancelReason R) {
  switch (R) {
  case CancelReason::None:
    return "none";
  case CancelReason::Cancelled:
    return "cancelled";
  case CancelReason::DeadlineExceeded:
    return "deadline-exceeded";
  }
  return "?";
}
