//===- Diagnostics.cpp ----------------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/FlightRecorder.h"
#include "support/Log.h"

#include <cstdlib>

using namespace se2gis;

void se2gis::fatalError(const std::string &Message) {
  logMessage(LogLevel::Error, "fatal", "internal error: " + Message);
  // Ship the flight recorder before dying — the dump is the post-mortem.
  // (If the crash handler is installed, std::abort's SIGABRT would dump
  // too, but an explicit ordinary-context dump is strictly more reliable.)
  std::string Dump = flightDumpOnFatal();
  if (!Dump.empty())
    logMessage(LogLevel::Error, "fatal", "flight dump: " + Dump);
  std::abort();
}

void se2gis::userError(const std::string &Message) {
  // UserError doubles as control flow on hot paths (e.g. the enumerator
  // catches unbound-variable failures per candidate), so only narrate it at
  // debug verbosity — the logEnabled guard is one relaxed atomic load.
  if (logEnabled(LogLevel::Debug))
    logMessage(LogLevel::Debug, "diag", Message);
  throw UserError(Message);
}
