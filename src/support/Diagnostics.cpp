//===- Diagnostics.cpp ----------------------------------------------------===//

#include "support/Diagnostics.h"

#include <cstdio>
#include <cstdlib>

using namespace se2gis;

void se2gis::fatalError(const std::string &Message) {
  std::fprintf(stderr, "se2gis internal error: %s\n", Message.c_str());
  std::abort();
}

void se2gis::userError(const std::string &Message) {
  throw UserError(Message);
}
