//===- PerfCounters.cpp ---------------------------------------------------===//

#include "support/PerfCounters.h"

#include <atomic>
#include <ostream>
#include <sstream>

using namespace se2gis;

namespace {

std::atomic<std::uint64_t> &counterSlot(PerfCounter C) {
  static std::atomic<std::uint64_t>
      Slots[static_cast<size_t>(PerfCounter::NumPerfCounters)];
  return Slots[static_cast<size_t>(C)];
}

std::atomic<std::uint64_t> &timerSlot(PerfTimer T) {
  static std::atomic<std::uint64_t>
      Slots[static_cast<size_t>(PerfTimer::NumPerfTimers)];
  return Slots[static_cast<size_t>(T)];
}

} // namespace

void se2gis::perfAdd(PerfCounter C, std::uint64_t Delta) {
  counterSlot(C).fetch_add(Delta, std::memory_order_relaxed);
}

void se2gis::perfAddTimeNs(PerfTimer T, std::uint64_t Ns) {
  timerSlot(T).fetch_add(Ns, std::memory_order_relaxed);
}

PerfSnapshot se2gis::snapshotPerf() {
  PerfSnapshot S;
  for (size_t I = 0; I < static_cast<size_t>(PerfCounter::NumPerfCounters);
       ++I)
    S.Counters[I] =
        counterSlot(static_cast<PerfCounter>(I)).load(std::memory_order_relaxed);
  for (size_t I = 0; I < static_cast<size_t>(PerfTimer::NumPerfTimers); ++I)
    S.TimersNs[I] =
        timerSlot(static_cast<PerfTimer>(I)).load(std::memory_order_relaxed);
  return S;
}

PerfSnapshot PerfSnapshot::since(const PerfSnapshot &Earlier) const {
  PerfSnapshot D;
  for (size_t I = 0; I < static_cast<size_t>(PerfCounter::NumPerfCounters);
       ++I)
    D.Counters[I] = Counters[I] - Earlier.Counters[I];
  for (size_t I = 0; I < static_cast<size_t>(PerfTimer::NumPerfTimers); ++I)
    D.TimersNs[I] = TimersNs[I] - Earlier.TimersNs[I];
  return D;
}

std::string PerfSnapshot::str() const {
  std::ostringstream OS;
  OS << "smt=" << get(PerfCounter::SmtQueries) << " (sat="
     << get(PerfCounter::SmtSat) << " unsat=" << get(PerfCounter::SmtUnsat)
     << " unknown=" << get(PerfCounter::SmtUnknown)
     << " budget=" << get(PerfCounter::SmtBudget) << ") z3_ms=";
  OS.precision(1);
  OS << std::fixed << getMs(PerfTimer::Z3SolveNs)
     << " enum=" << get(PerfCounter::EnumCandidates)
     << " pruned=" << get(PerfCounter::EnumPruned);
  if (std::uint64_t CacheTouches =
          get(PerfCounter::CacheSmtHits) + get(PerfCounter::CacheSmtMisses))
    OS << " cache_smt=" << get(PerfCounter::CacheSmtHits) << "/" << CacheTouches;
  return OS.str();
}

void se2gis::writePerfJson(std::ostream &OS, const PerfSnapshot &D) {
  OS << "{\"smt_queries\":" << D.get(PerfCounter::SmtQueries)
     << ",\"smt_sat\":" << D.get(PerfCounter::SmtSat)
     << ",\"smt_unsat\":" << D.get(PerfCounter::SmtUnsat)
     << ",\"smt_unknown\":" << D.get(PerfCounter::SmtUnknown)
     << ",\"smt_budget_expired\":" << D.get(PerfCounter::SmtBudget)
     << ",\"z3_time_ms\":" << D.getMs(PerfTimer::Z3SolveNs)
     << ",\"run_time_ms\":" << D.getMs(PerfTimer::SuiteRunNs)
     << ",\"enum_candidates\":" << D.get(PerfCounter::EnumCandidates)
     << ",\"enum_pruned\":" << D.get(PerfCounter::EnumPruned)
     << ",\"cache_smt_hits\":" << D.get(PerfCounter::CacheSmtHits)
     << ",\"cache_smt_misses\":" << D.get(PerfCounter::CacheSmtMisses)
     << ",\"cache_smt_inserts\":" << D.get(PerfCounter::CacheSmtInserts)
     << ",\"cache_smt_evictions\":" << D.get(PerfCounter::CacheSmtEvictions)
     << ",\"cache_pbe_hits\":" << D.get(PerfCounter::CachePbeHits)
     << ",\"cache_pbe_misses\":" << D.get(PerfCounter::CachePbeMisses)
     << ",\"cache_sge_hits\":" << D.get(PerfCounter::CacheSgeHits)
     << ",\"cache_sge_misses\":" << D.get(PerfCounter::CacheSgeMisses)
     << ",\"cache_suite_hits\":" << D.get(PerfCounter::CacheSuiteHits)
     << ",\"cache_suite_misses\":" << D.get(PerfCounter::CacheSuiteMisses)
     << ",\"cache_bytes_written\":" << D.get(PerfCounter::CacheBytesWritten)
     << ",\"cache_bytes_loaded\":" << D.get(PerfCounter::CacheBytesLoaded)
     << "}";
}
