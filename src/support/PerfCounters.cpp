//===- PerfCounters.cpp ---------------------------------------------------===//

#include "support/PerfCounters.h"

#include <atomic>
#include <ostream>
#include <sstream>

using namespace se2gis;

namespace {

std::atomic<std::uint64_t> &counterSlot(PerfCounter C) {
  static std::atomic<std::uint64_t>
      Slots[static_cast<size_t>(PerfCounter::NumPerfCounters)];
  return Slots[static_cast<size_t>(C)];
}

std::atomic<std::uint64_t> &timerSlot(PerfTimer T) {
  static std::atomic<std::uint64_t>
      Slots[static_cast<size_t>(PerfTimer::NumPerfTimers)];
  return Slots[static_cast<size_t>(T)];
}

LatencyHistogram &histogramSlot(PerfHistogram H) {
  static LatencyHistogram
      Slots[static_cast<size_t>(PerfHistogram::NumPerfHistograms)];
  return Slots[static_cast<size_t>(H)];
}

} // namespace

void se2gis::perfAdd(PerfCounter C, std::uint64_t Delta) {
  counterSlot(C).fetch_add(Delta, std::memory_order_relaxed);
}

void se2gis::perfAddTimeNs(PerfTimer T, std::uint64_t Ns) {
  timerSlot(T).fetch_add(Ns, std::memory_order_relaxed);
}

void se2gis::perfRecordNs(PerfHistogram H, std::uint64_t Ns) {
  histogramSlot(H).recordNs(Ns);
}

PerfSnapshot se2gis::snapshotPerf() {
  PerfSnapshot S;
  for (size_t I = 0; I < static_cast<size_t>(PerfCounter::NumPerfCounters);
       ++I)
    S.Counters[I] =
        counterSlot(static_cast<PerfCounter>(I)).load(std::memory_order_relaxed);
  for (size_t I = 0; I < static_cast<size_t>(PerfTimer::NumPerfTimers); ++I)
    S.TimersNs[I] =
        timerSlot(static_cast<PerfTimer>(I)).load(std::memory_order_relaxed);
  for (size_t I = 0;
       I < static_cast<size_t>(PerfHistogram::NumPerfHistograms); ++I)
    S.Hists[I] = histogramSlot(static_cast<PerfHistogram>(I)).snapshot();
  return S;
}

PerfSnapshot PerfSnapshot::since(const PerfSnapshot &Earlier) const {
  PerfSnapshot D;
  for (size_t I = 0; I < static_cast<size_t>(PerfCounter::NumPerfCounters);
       ++I)
    D.Counters[I] = Counters[I] - Earlier.Counters[I];
  for (size_t I = 0; I < static_cast<size_t>(PerfTimer::NumPerfTimers); ++I)
    D.TimersNs[I] = TimersNs[I] - Earlier.TimersNs[I];
  for (size_t I = 0;
       I < static_cast<size_t>(PerfHistogram::NumPerfHistograms); ++I)
    D.Hists[I] = Hists[I].since(Earlier.Hists[I]);
  return D;
}

std::string PerfSnapshot::str() const {
  std::ostringstream OS;
  OS << "smt=" << get(PerfCounter::SmtQueries) << " (sat="
     << get(PerfCounter::SmtSat) << " unsat=" << get(PerfCounter::SmtUnsat)
     << " unknown=" << get(PerfCounter::SmtUnknown)
     << " budget=" << get(PerfCounter::SmtBudget) << ") z3_ms=";
  OS.precision(1);
  OS << std::fixed << getMs(PerfTimer::Z3SolveNs)
     << " enum=" << get(PerfCounter::EnumCandidates)
     << " pruned=" << get(PerfCounter::EnumPruned);
  if (std::uint64_t CacheTouches =
          get(PerfCounter::CacheSmtHits) + get(PerfCounter::CacheSmtMisses))
    OS << " cache_smt=" << get(PerfCounter::CacheSmtHits) << "/" << CacheTouches;
  if (std::uint64_t Sessions = get(PerfCounter::SmtSessionReuse) +
                               get(PerfCounter::SmtSessionFresh))
    OS << " smt_sessions=" << get(PerfCounter::SmtSessionReuse) << "/"
       << Sessions;
  if (std::uint64_t ChcQ = get(PerfCounter::ChcQueries))
    OS << " chc=" << ChcQ << " (unsat=" << get(PerfCounter::ChcUnsat)
       << " wins=" << get(PerfCounter::ChcRaceWins) << ")";
  if (const HistogramSnapshot &H = hist(PerfHistogram::SmtCheckNs); H.Count)
    OS << " smt_p50_ms=" << H.quantileMs(0.5)
       << " smt_p99_ms=" << H.quantileMs(0.99);
  return OS.str();
}

namespace {

/// Appends the quantile keys for one histogram: <prefix>_count, _p50_ms,
/// _p90_ms, _p99_ms, _max_ms.
void writeHistJson(std::ostream &OS, const char *Prefix,
                   const HistogramSnapshot &H) {
  OS << ",\"" << Prefix << "_count\":" << H.Count << ",\"" << Prefix
     << "_p50_ms\":" << H.quantileMs(0.5) << ",\"" << Prefix
     << "_p90_ms\":" << H.quantileMs(0.9) << ",\"" << Prefix
     << "_p99_ms\":" << H.quantileMs(0.99) << ",\"" << Prefix
     << "_max_ms\":" << H.maxMs();
}

} // namespace

void se2gis::writePerfJson(std::ostream &OS, const PerfSnapshot &D) {
  OS << "{\"smt_queries\":" << D.get(PerfCounter::SmtQueries)
     << ",\"smt_sat\":" << D.get(PerfCounter::SmtSat)
     << ",\"smt_unsat\":" << D.get(PerfCounter::SmtUnsat)
     << ",\"smt_unknown\":" << D.get(PerfCounter::SmtUnknown)
     << ",\"smt_budget_expired\":" << D.get(PerfCounter::SmtBudget)
     << ",\"smt_session_reuse\":" << D.get(PerfCounter::SmtSessionReuse)
     << ",\"smt_session_fresh\":" << D.get(PerfCounter::SmtSessionFresh)
     << ",\"smt_push\":" << D.get(PerfCounter::SmtPush)
     << ",\"smt_pop\":" << D.get(PerfCounter::SmtPop)
     << ",\"z3_time_ms\":" << D.getMs(PerfTimer::Z3SolveNs)
     << ",\"run_time_ms\":" << D.getMs(PerfTimer::SuiteRunNs)
     << ",\"enum_candidates\":" << D.get(PerfCounter::EnumCandidates)
     << ",\"enum_pruned\":" << D.get(PerfCounter::EnumPruned)
     << ",\"cache_smt_hits\":" << D.get(PerfCounter::CacheSmtHits)
     << ",\"cache_smt_misses\":" << D.get(PerfCounter::CacheSmtMisses)
     << ",\"cache_smt_inserts\":" << D.get(PerfCounter::CacheSmtInserts)
     << ",\"cache_smt_evictions\":" << D.get(PerfCounter::CacheSmtEvictions)
     << ",\"cache_pbe_hits\":" << D.get(PerfCounter::CachePbeHits)
     << ",\"cache_pbe_misses\":" << D.get(PerfCounter::CachePbeMisses)
     << ",\"cache_sge_hits\":" << D.get(PerfCounter::CacheSgeHits)
     << ",\"cache_sge_misses\":" << D.get(PerfCounter::CacheSgeMisses)
     << ",\"cache_suite_hits\":" << D.get(PerfCounter::CacheSuiteHits)
     << ",\"cache_suite_misses\":" << D.get(PerfCounter::CacheSuiteMisses)
     << ",\"cache_bytes_written\":" << D.get(PerfCounter::CacheBytesWritten)
     << ",\"cache_bytes_loaded\":" << D.get(PerfCounter::CacheBytesLoaded)
     << ",\"chc_queries\":" << D.get(PerfCounter::ChcQueries)
     << ",\"chc_unsat\":" << D.get(PerfCounter::ChcUnsat)
     << ",\"chc_derivable\":" << D.get(PerfCounter::ChcDerivable)
     << ",\"chc_unknown\":" << D.get(PerfCounter::ChcUnknown)
     << ",\"chc_clauses\":" << D.get(PerfCounter::ChcClauses)
     << ",\"chc_race_wins\":" << D.get(PerfCounter::ChcRaceWins)
     << ",\"chc_skipped_nonscalar\":"
     << D.get(PerfCounter::ChcSkippedNonscalar)
     << ",\"chc_skipped_equations\":"
     << D.get(PerfCounter::ChcSkippedEquations)
     << ",\"gen_cases\":" << D.get(PerfCounter::GenCases)
     << ",\"gen_rejected\":" << D.get(PerfCounter::GenRejected)
     << ",\"gen_shrink_attempts\":" << D.get(PerfCounter::GenShrinkAttempts)
     << ",\"gen_shrink_accepted\":" << D.get(PerfCounter::GenShrinkAccepted);
  writeHistJson(OS, "smt_check", D.hist(PerfHistogram::SmtCheckNs));
  writeHistJson(OS, "smt_translate", D.hist(PerfHistogram::SmtTranslateNs));
  writeHistJson(OS, "enum_round", D.hist(PerfHistogram::EnumRoundNs));
  writeHistJson(OS, "cache_probe", D.hist(PerfHistogram::CacheProbeNs));
  OS << "}";
}

//===----------------------------------------------------------------------===//
// Phase attribution
//===----------------------------------------------------------------------===//

namespace {

constexpr size_t NumPhases = static_cast<size_t>(Phase::NumPhases);

/// Per-thread phase state: accumulated totals plus the stack of live scopes.
/// Exclusive attribution: pushing a scope first charges the elapsed slice to
/// the previous top, popping charges the closing scope and restamps the
/// parent — so one thread's phase times never double-count nested scopes.
struct PhaseState {
  std::uint64_t TotalsNs[NumPhases] = {};

  static constexpr unsigned MaxDepth = 32;
  Phase Stack[MaxDepth];
  std::chrono::steady_clock::time_point LastStamp;
  unsigned Depth = 0;

  void chargeTop(std::chrono::steady_clock::time_point Now) {
    if (!Depth)
      return;
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Now - LastStamp)
                  .count();
    if (Ns > 0)
      TotalsNs[static_cast<size_t>(Stack[Depth - 1])] +=
          static_cast<std::uint64_t>(Ns);
  }

  bool push(Phase P) {
    auto Now = std::chrono::steady_clock::now();
    chargeTop(Now);
    if (Depth >= MaxDepth)
      return false; // overflow: time keeps flowing to the innermost tracked
    Stack[Depth++] = P;
    LastStamp = Now;
    return true;
  }

  void pop() {
    auto Now = std::chrono::steady_clock::now();
    chargeTop(Now);
    --Depth;
    LastStamp = Now;
  }
};

PhaseState &phaseState() {
  thread_local PhaseState S;
  return S;
}

} // namespace

const char *se2gis::phaseName(Phase P) {
  switch (P) {
  case Phase::Eval:
    return "eval";
  case Phase::Smt:
    return "smt";
  case Phase::Enum:
    return "enum";
  case Phase::Induction:
    return "induction";
  case Phase::NumPhases:
    break;
  }
  return "?";
}

PhaseSnapshot PhaseSnapshot::since(const PhaseSnapshot &Earlier) const {
  PhaseSnapshot D;
  for (size_t I = 0; I < NumPhases; ++I)
    D.Ns[I] = Ns[I] - Earlier.Ns[I];
  return D;
}

PhaseSnapshot se2gis::phaseSnapshot() {
  PhaseState &S = phaseState();
  // Fold in the running slice of any live scope so a mid-scope snapshot
  // (e.g. a deadline-expired run) still sees up-to-date totals.
  S.chargeTop(std::chrono::steady_clock::now());
  S.LastStamp = std::chrono::steady_clock::now();
  PhaseSnapshot Out;
  for (size_t I = 0; I < NumPhases; ++I)
    Out.Ns[I] = S.TotalsNs[I];
  return Out;
}

PhaseScope::PhaseScope(Phase P) : Tracked(phaseState().push(P)) {}

PhaseScope::~PhaseScope() {
  if (Tracked)
    phaseState().pop();
}
