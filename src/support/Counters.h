//===- Counters.h - Global solver telemetry ---------------------*- C++-*-===//
///
/// \file
/// Lightweight global counters for the expensive primitives (SMT checks,
/// PBE candidates, witness queries, bounded instantiations). The algorithm
/// drivers snapshot them around a run and report the deltas, which the CLI
/// and the harness print — useful for understanding where a benchmark's
/// time goes without a profiler.
///
/// Counters are atomics, so concurrent portfolio runs simply aggregate.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SUPPORT_COUNTERS_H
#define SE2GIS_SUPPORT_COUNTERS_H

#include <cstdint>
#include <string>

namespace se2gis {

/// The counted events.
enum class CounterKind : unsigned char {
  SmtChecks,             ///< Z3 satisfiability checks issued
  PbeCandidates,         ///< grammar terms considered by the enumerator
  WitnessQueries,        ///< Algorithm-1 frame-pair queries
  BoundedInstantiations, ///< bounded-term instantiations evaluated
  SymbolicUnfoldings,    ///< recursion-scheme rule unfoldings
  NumCounters
};

/// Increments counter \p K by \p Delta (thread-safe).
void countEvent(CounterKind K, std::uint64_t Delta = 1);

/// A point-in-time copy of all counters.
struct CounterSnapshot {
  std::uint64_t Values[static_cast<size_t>(CounterKind::NumCounters)] = {};

  std::uint64_t get(CounterKind K) const {
    return Values[static_cast<size_t>(K)];
  }

  /// Componentwise difference (this - Earlier).
  CounterSnapshot since(const CounterSnapshot &Earlier) const;

  /// Compact rendering, e.g. "smt=120 pbe=4500 wit=8 bnd=300 unf=9000".
  std::string str() const;
};

/// Reads the current counter values.
CounterSnapshot snapshotCounters();

} // namespace se2gis

#endif // SE2GIS_SUPPORT_COUNTERS_H
