//===- Progress.cpp -------------------------------------------------------===//

#include "support/Progress.h"

namespace se2gis {

namespace {
thread_local ProgressBoard *TLBoard = nullptr;
} // namespace

void setThreadProgressBoard(ProgressBoard *Board) { TLBoard = Board; }

ProgressBoard *threadProgressBoard() { return TLBoard; }

} // namespace se2gis
