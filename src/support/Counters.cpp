//===- Counters.cpp -------------------------------------------------------===//

#include "support/Counters.h"

#include <atomic>
#include <sstream>

using namespace se2gis;

namespace {

std::atomic<std::uint64_t> &slot(CounterKind K) {
  static std::atomic<std::uint64_t>
      Counters[static_cast<size_t>(CounterKind::NumCounters)];
  return Counters[static_cast<size_t>(K)];
}

} // namespace

void se2gis::countEvent(CounterKind K, std::uint64_t Delta) {
  slot(K).fetch_add(Delta, std::memory_order_relaxed);
}

CounterSnapshot se2gis::snapshotCounters() {
  CounterSnapshot S;
  for (size_t I = 0; I < static_cast<size_t>(CounterKind::NumCounters); ++I)
    S.Values[I] =
        slot(static_cast<CounterKind>(I)).load(std::memory_order_relaxed);
  return S;
}

CounterSnapshot CounterSnapshot::since(const CounterSnapshot &Earlier) const {
  CounterSnapshot D;
  for (size_t I = 0; I < static_cast<size_t>(CounterKind::NumCounters); ++I)
    D.Values[I] = Values[I] - Earlier.Values[I];
  return D;
}

std::string CounterSnapshot::str() const {
  std::ostringstream OS;
  OS << "smt=" << get(CounterKind::SmtChecks)
     << " pbe=" << get(CounterKind::PbeCandidates)
     << " wit=" << get(CounterKind::WitnessQueries)
     << " bnd=" << get(CounterKind::BoundedInstantiations)
     << " unf=" << get(CounterKind::SymbolicUnfoldings);
  return OS.str();
}
