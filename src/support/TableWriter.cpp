//===- TableWriter.cpp ----------------------------------------------------===//

#include "support/TableWriter.h"

#include "support/Diagnostics.h"

#include <cstdio>
#include <sstream>

using namespace se2gis;

TableWriter::TableWriter(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TableWriter::addRow(std::vector<std::string> Cells) {
  if (Cells.size() != Header.size())
    fatalError("TableWriter row width does not match header");
  Rows.push_back(std::move(Cells));
}

std::string TableWriter::renderText() const {
  std::vector<size_t> Widths(Header.size(), 0);
  auto Measure = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  Measure(Header);
  for (const auto &Row : Rows)
    Measure(Row);

  std::ostringstream OS;
  auto Emit = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      OS << Row[I];
      if (I + 1 == Row.size())
        break;
      OS << std::string(Widths[I] - Row[I].size() + 2, ' ');
    }
    OS << '\n';
  };
  Emit(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  OS << std::string(Total > 2 ? Total - 2 : Total, '-') << '\n';
  for (const auto &Row : Rows)
    Emit(Row);
  return OS.str();
}

std::string TableWriter::renderCsv() const {
  std::ostringstream OS;
  auto Emit = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I)
        OS << ',';
      OS << Row[I];
    }
    OS << '\n';
  };
  Emit(Header);
  for (const auto &Row : Rows)
    Emit(Row);
  return OS.str();
}

std::string se2gis::formatSeconds(double Ms) {
  if (Ms < 0)
    return "-";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", Ms / 1000.0);
  return Buf;
}
