//===- Stopwatch.cpp ------------------------------------------------------===//
// All members are defined inline in the header; this TU anchors the library.

#include "support/Stopwatch.h"
