//===- Trace.cpp ----------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Log.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

using namespace se2gis;
using se2gis::detail::TraceArg;

namespace {

std::atomic<bool> GEnabled{false};
std::atomic<std::size_t> GCapacity{16384};
std::atomic<std::uint64_t> GDropped{0};

struct TraceEvent {
  const char *Name;
  const char *Category;
  std::uint64_t StartNs;
  std::uint64_t DurNs;
  unsigned Tid;
  std::vector<TraceArg> Args;
};

/// One per recording thread. Owned jointly by the thread (thread_local
/// shared_ptr) and the registry, so the exporter can still read buffers of
/// threads that have exited.
struct TraceBuffer {
  std::mutex M;
  std::vector<TraceEvent> Events;
  unsigned Tid = 0;
};

struct Registry {
  std::mutex M;
  std::vector<std::shared_ptr<TraceBuffer>> Buffers;
  std::string Path;
  bool AtExitRegistered = false;
};

Registry &registry() {
  static Registry R;
  return R;
}

std::shared_ptr<TraceBuffer> &threadBuffer() {
  thread_local std::shared_ptr<TraceBuffer> B = [] {
    auto Buf = std::make_shared<TraceBuffer>();
    Buf->Tid = currentThreadId();
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.M);
    R.Buffers.push_back(Buf);
    return Buf;
  }();
  return B;
}

std::chrono::steady_clock::time_point traceEpoch() {
  static const std::chrono::steady_clock::time_point E =
      std::chrono::steady_clock::now();
  return E;
}

void writeEscaped(std::ostream &OS, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
}

void atExitFlush() {
  if (traceEnabled())
    traceFlush();
}

} // namespace

bool se2gis::traceEnabled() {
  return GEnabled.load(std::memory_order_relaxed);
}

void se2gis::traceConfigure(const std::string &Path,
                            std::size_t BufferCapacity) {
  traceEpoch(); // pin the epoch no later than the first configure
  GCapacity.store(BufferCapacity ? BufferCapacity : 1,
                  std::memory_order_relaxed);
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.M);
    R.Path = Path;
    if (!Path.empty() && !R.AtExitRegistered) {
      R.AtExitRegistered = true;
      std::atexit(atExitFlush);
    }
  }
  GEnabled.store(true, std::memory_order_relaxed);
}

void se2gis::traceDisable() {
  GEnabled.store(false, std::memory_order_relaxed);
}

std::string se2gis::tracePath() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  return R.Path;
}

std::uint64_t se2gis::traceDroppedEvents() {
  return GDropped.load(std::memory_order_relaxed);
}

std::uint64_t se2gis::traceRecordedEvents() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  std::uint64_t N = 0;
  for (const auto &B : R.Buffers) {
    std::lock_guard<std::mutex> BL(B->M);
    N += B->Events.size();
  }
  return N;
}

void se2gis::traceReset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  for (const auto &B : R.Buffers) {
    std::lock_guard<std::mutex> BL(B->M);
    B->Events.clear();
  }
  GDropped.store(0, std::memory_order_relaxed);
}

std::uint64_t se2gis::detail::traceNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - traceEpoch())
          .count());
}

void se2gis::detail::traceRecordSpan(const char *Name, const char *Category,
                                     std::uint64_t StartNs,
                                     std::uint64_t DurNs,
                                     std::vector<TraceArg> Args) {
  std::shared_ptr<TraceBuffer> &B = threadBuffer();
  std::lock_guard<std::mutex> Lock(B->M);
  if (B->Events.size() >= GCapacity.load(std::memory_order_relaxed)) {
    GDropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  B->Events.push_back(
      TraceEvent{Name, Category, StartNs, DurNs, B->Tid, std::move(Args)});
}

void se2gis::traceWriteJson(std::ostream &OS) {
  // Copy out under the locks, then format without holding any.
  std::vector<TraceEvent> Events;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.M);
    for (const auto &B : R.Buffers) {
      std::lock_guard<std::mutex> BL(B->M);
      Events.insert(Events.end(), B->Events.begin(), B->Events.end());
    }
  }
  std::sort(Events.begin(), Events.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              return A.Tid != B.Tid ? A.Tid < B.Tid : A.StartNs < B.StartNs;
            });

  OS << "{\"traceEvents\":[";
  bool First = true;
  // Name the process and each thread track so Perfetto shows stable labels.
  OS << "\n{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\","
        "\"args\":{\"name\":\"se2gis\"}}";
  First = false;
  unsigned LastTid = 0;
  for (const TraceEvent &E : Events) {
    if (E.Tid != LastTid) {
      LastTid = E.Tid;
      OS << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << E.Tid
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"se2gis-t"
         << E.Tid << "\"}}";
    }
    OS << (First ? "\n" : ",\n");
    First = false;
    // Chrome trace ts/dur are microseconds (fractional allowed).
    char TsBuf[64];
    std::snprintf(TsBuf, sizeof(TsBuf), "%.3f", E.StartNs / 1e3);
    char DurBuf[64];
    std::snprintf(DurBuf, sizeof(DurBuf), "%.3f", E.DurNs / 1e3);
    OS << "{\"name\":\"" << E.Name << "\",\"cat\":\"" << E.Category
       << "\",\"ph\":\"X\",\"ts\":" << TsBuf << ",\"dur\":" << DurBuf
       << ",\"pid\":1,\"tid\":" << E.Tid;
    if (!E.Args.empty()) {
      OS << ",\"args\":{";
      for (std::size_t I = 0; I < E.Args.size(); ++I) {
        const TraceArg &A = E.Args[I];
        OS << (I ? "," : "") << "\"" << A.Key << "\":";
        if (A.Quoted) {
          OS << "\"";
          writeEscaped(OS, A.Value);
          OS << "\"";
        } else {
          OS << A.Value;
        }
      }
      OS << "}";
    }
    OS << "}";
  }
  OS << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
     << traceDroppedEvents() << "}}\n";
}

bool se2gis::traceFlush() {
  std::string Path = tracePath();
  if (Path.empty())
    return false;
  std::ofstream OS(Path);
  if (!OS) {
    logf(LogLevel::Error, "trace", "cannot write trace to %s", Path.c_str());
    return false;
  }
  traceWriteJson(OS);
  return OS.good();
}
