//===- Metrics.cpp - Prometheus text exposition ---------------------------===//

#include "support/Metrics.h"

#include "support/FlightRecorder.h"
#include "support/PerfCounters.h"
#include "support/Trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace se2gis;

std::string se2gis::promEscapeLabel(const std::string &V) {
  std::string Out;
  Out.reserve(V.size() + 4);
  for (char C : V) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string se2gis::promFormatValue(double V) {
  if (std::isfinite(V) && V == std::floor(V) && std::fabs(V) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", V);
    return Buf;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.10g", V);
  return Buf;
}

void PrometheusWriter::header(const std::string &Name, const char *Help,
                              const char *Type) {
  if (std::find(SeenFamilies.begin(), SeenFamilies.end(), Name) !=
      SeenFamilies.end())
    return;
  SeenFamilies.push_back(Name);
  if (Help && *Help) {
    Out += "# HELP ";
    Out += Name;
    Out += ' ';
    Out += Help;
    Out += '\n';
  }
  Out += "# TYPE ";
  Out += Name;
  Out += ' ';
  Out += Type;
  Out += '\n';
}

void PrometheusWriter::sample(const std::string &Name,
                              const MetricLabels &Labels, double Value) {
  Out += Name;
  if (!Labels.empty()) {
    Out += '{';
    bool First = true;
    for (const auto &[K, V] : Labels) {
      if (!First)
        Out += ',';
      First = false;
      Out += K;
      Out += "=\"";
      Out += promEscapeLabel(V);
      Out += '"';
    }
    Out += '}';
  }
  Out += ' ';
  Out += promFormatValue(Value);
  Out += '\n';
}

void PrometheusWriter::counter(const std::string &Name, const char *Help,
                               double Value, const MetricLabels &Labels) {
  header(Name, Help, "counter");
  sample(Name, Labels, Value);
}

void PrometheusWriter::gauge(const std::string &Name, const char *Help,
                             double Value, const MetricLabels &Labels) {
  header(Name, Help, "gauge");
  sample(Name, Labels, Value);
}

void PrometheusWriter::histogram(const std::string &Name, const char *Help,
                                 const HistogramSnapshot &H,
                                 const MetricLabels &Labels) {
  header(Name, Help, "histogram");
  // Emit cumulative buckets up to the highest non-empty log2 bucket; the
  // bound of ns-bucket B is its exclusive upper bound converted to
  // seconds. Bucket 63 has no finite bound and folds into +Inf.
  unsigned Highest = 0;
  for (unsigned B = 0; B < HistogramSnapshot::NumBuckets; ++B)
    if (H.Buckets[B])
      Highest = B;
  std::uint64_t Cum = 0;
  for (unsigned B = 0;
       B <= Highest && B < HistogramSnapshot::NumBuckets - 1; ++B) {
    Cum += H.Buckets[B];
    char LeBuf[48];
    std::snprintf(LeBuf, sizeof(LeBuf), "%.10g",
                  static_cast<double>(HistogramSnapshot::upperBoundNs(B)) /
                      1e9);
    MetricLabels L = Labels;
    L.emplace_back("le", LeBuf);
    sample(Name + "_bucket", L, static_cast<double>(Cum));
  }
  MetricLabels LInf = Labels;
  LInf.emplace_back("le", "+Inf");
  sample(Name + "_bucket", LInf, static_cast<double>(H.Count));
  sample(Name + "_sum", Labels, static_cast<double>(H.SumNs) / 1e9);
  sample(Name + "_count", Labels, static_cast<double>(H.Count));
}

void se2gis::writeProcessMetrics(PrometheusWriter &W,
                                 const PerfSnapshot &Snap) {
  for (size_t I = 0; I < static_cast<size_t>(PerfCounter::NumPerfCounters);
       ++I) {
    auto C = static_cast<PerfCounter>(I);
    W.counter(std::string("se2gis_") + perfCounterName(C) + "_total",
              perfCounterHelp(C), static_cast<double>(Snap.get(C)));
  }
  W.counter("se2gis_z3_time_seconds_total",
            "wall time inside z3::solver::check",
            static_cast<double>(Snap.getNs(PerfTimer::Z3SolveNs)) / 1e9);
  W.counter("se2gis_run_time_seconds_total",
            "wall time inside runAlgorithm, summed over runs",
            static_cast<double>(Snap.getNs(PerfTimer::SuiteRunNs)) / 1e9);
  static const char *HistHelp[] = {
      "latency of one SmtQuery::checkSat",
      "Term-to-Z3 translation time per checkSat",
      "latency of one PBE enumeration search",
      "latency of one memoization-cache lookup",
      "latency of one remote cache-tier round trip",
  };
  static_assert(sizeof(HistHelp) / sizeof(HistHelp[0]) ==
                    static_cast<size_t>(PerfHistogram::NumPerfHistograms),
                "HistHelp must cover every PerfHistogram");
  for (size_t I = 0;
       I < static_cast<size_t>(PerfHistogram::NumPerfHistograms); ++I) {
    auto H = static_cast<PerfHistogram>(I);
    W.histogram(std::string("se2gis_") + perfHistogramName(H) + "_seconds",
                HistHelp[I], Snap.hist(H));
  }
  W.counter("se2gis_trace_dropped_events_total",
            "trace events dropped on full buffers",
            static_cast<double>(traceDroppedEvents()));
  W.counter("se2gis_flight_events_total",
            "events recorded by the always-on flight recorder",
            static_cast<double>(flightRecordedEvents()));
  W.counter("se2gis_flight_overwritten_total",
            "flight-recorder events overwritten in the rings",
            static_cast<double>(flightOverwrittenEvents()));
  W.gauge("se2gis_flight_enabled", "1 when the flight recorder is on",
          flightEnabled() ? 1 : 0);
}
