//===- Histogram.h - Log-bucketed latency histograms ------------*- C++-*-===//
///
/// \file
/// Lock-free latency histograms for the hot primitives of the solver stack.
/// Values (nanoseconds) land in power-of-two buckets — bucket 0 holds {0},
/// bucket b holds [2^(b-1), 2^b) — so recording is a bit-scan plus one
/// relaxed atomic increment, cheap enough for per-SMT-query and
/// per-enumerator-round use. Quantiles (p50/p90/p99) are estimated from the
/// bucket counts with linear interpolation inside the target bucket; the
/// maximum is tracked exactly via an atomic CAS loop.
///
/// \c HistogramSnapshot is the value-type view used by the perf-snapshot
/// machinery (support/PerfCounters.h): bucket counts, count, and sum
/// subtract componentwise in \c since; the windowed maximum is approximated
/// by the upper bound of the highest non-empty delta bucket (capped by the
/// lifetime maximum), since an exact per-window max would need per-window
/// state on the hot path.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SUPPORT_HISTOGRAM_H
#define SE2GIS_SUPPORT_HISTOGRAM_H

#include <atomic>
#include <cstdint>

namespace se2gis {

/// A point-in-time copy of one histogram. Plain data: copyable, diffable.
struct HistogramSnapshot {
  static constexpr unsigned NumBuckets = 64;

  std::uint64_t Buckets[NumBuckets] = {};
  std::uint64_t Count = 0;
  std::uint64_t SumNs = 0;
  std::uint64_t MaxNs = 0;

  /// Componentwise difference (this - Earlier); see the file comment for
  /// the windowed-max approximation.
  HistogramSnapshot since(const HistogramSnapshot &Earlier) const {
    HistogramSnapshot D;
    for (unsigned I = 0; I < NumBuckets; ++I)
      D.Buckets[I] = Buckets[I] - Earlier.Buckets[I];
    D.Count = Count - Earlier.Count;
    D.SumNs = SumNs - Earlier.SumNs;
    std::uint64_t HighestUpper = 0;
    for (unsigned I = NumBuckets; I-- > 0;)
      if (D.Buckets[I]) {
        HighestUpper = upperBoundNs(I);
        break;
      }
    D.MaxNs = HighestUpper < MaxNs ? HighestUpper : MaxNs;
    return D;
  }

  /// Lower bound (inclusive) of bucket \p B in nanoseconds.
  static std::uint64_t lowerBoundNs(unsigned B) {
    return B == 0 ? 0 : std::uint64_t(1) << (B - 1);
  }

  /// Upper bound (exclusive) of bucket \p B in nanoseconds.
  static std::uint64_t upperBoundNs(unsigned B) {
    return B >= NumBuckets - 1 ? UINT64_MAX : std::uint64_t(1) << B;
  }

  /// Estimates the \p Q-quantile (Q in [0,1]) in nanoseconds by linear
  /// interpolation within the bucket containing the target rank. Returns 0
  /// for an empty histogram; the estimate never exceeds \c MaxNs.
  double quantileNs(double Q) const {
    if (Count == 0)
      return 0;
    if (Q < 0)
      Q = 0;
    if (Q > 1)
      Q = 1;
    double Target = Q * static_cast<double>(Count);
    if (Target < 1)
      Target = 1;
    double Cum = 0;
    for (unsigned B = 0; B < NumBuckets; ++B) {
      if (!Buckets[B])
        continue;
      double Next = Cum + static_cast<double>(Buckets[B]);
      if (Next >= Target) {
        double Lo = static_cast<double>(lowerBoundNs(B));
        double Hi = B >= NumBuckets - 1
                        ? static_cast<double>(MaxNs)
                        : static_cast<double>(upperBoundNs(B));
        double Frac = (Target - Cum) / static_cast<double>(Buckets[B]);
        double V = Lo + Frac * (Hi - Lo);
        double Max = static_cast<double>(MaxNs);
        return V > Max && Max > 0 ? Max : V;
      }
      Cum = Next;
    }
    return static_cast<double>(MaxNs);
  }

  double quantileMs(double Q) const { return quantileNs(Q) / 1e6; }
  double maxMs() const { return static_cast<double>(MaxNs) / 1e6; }
  double meanMs() const {
    return Count ? static_cast<double>(SumNs) / (1e6 * Count) : 0;
  }
};

/// The concurrent recording side: an array of relaxed atomic bucket
/// counters plus count/sum/max. Safe for any number of writer threads; a
/// snapshot taken concurrently is a consistent-enough view (counters are
/// monotone, so deltas never go negative).
class LatencyHistogram {
public:
  static constexpr unsigned NumBuckets = HistogramSnapshot::NumBuckets;

  /// Bucket index for \p Ns: 0 for 0, otherwise floor(log2(Ns)) + 1.
  static unsigned bucketIndexFor(std::uint64_t Ns) {
    unsigned B = 0;
    while (Ns) {
      ++B;
      Ns >>= 1;
    }
    return B < NumBuckets ? B : NumBuckets - 1;
  }

  void recordNs(std::uint64_t Ns) {
    Buckets[bucketIndexFor(Ns)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Ns, std::memory_order_relaxed);
    std::uint64_t Prev = Max.load(std::memory_order_relaxed);
    while (Prev < Ns &&
           !Max.compare_exchange_weak(Prev, Ns, std::memory_order_relaxed))
      ;
  }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot S;
    for (unsigned I = 0; I < NumBuckets; ++I)
      S.Buckets[I] = Buckets[I].load(std::memory_order_relaxed);
    S.Count = Count.load(std::memory_order_relaxed);
    S.SumNs = Sum.load(std::memory_order_relaxed);
    S.MaxNs = Max.load(std::memory_order_relaxed);
    return S;
  }

private:
  std::atomic<std::uint64_t> Buckets[NumBuckets] = {};
  std::atomic<std::uint64_t> Count{0};
  std::atomic<std::uint64_t> Sum{0};
  std::atomic<std::uint64_t> Max{0};
};

} // namespace se2gis

#endif // SE2GIS_SUPPORT_HISTOGRAM_H
