//===- FlightRecorder.cpp - Always-on crash/timeout post-mortem -----------===//

#include "support/FlightRecorder.h"

#include "support/Log.h"
#include "support/Trace.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#if defined(__GLIBC__)
#include <execinfo.h>
#define SE2GIS_HAVE_BACKTRACE 1
#endif

namespace se2gis {

namespace {

constexpr std::size_t kMaxRings = 256;

/// One single-writer ring. The owning thread is the only writer; dumpers
/// (including the signal handler) read racily — a torn slot renders as
/// odd text, never as a fault, because every field is POD and Name only
/// ever holds nullptr or a static string.
struct Ring {
  FlightEvent *Slots = nullptr;
  std::size_t Cap = 0; ///< power of two
  std::atomic<std::uint64_t> WriteIdx{0};
  std::uint32_t Tid = 0;
};

std::atomic<bool> GEnabled{true};
std::atomic<std::size_t> GRingCap{4096};

/// Fixed registration table the signal handler can walk without locks.
/// Rings are leaked on purpose (see header).
Ring *GRings[kMaxRings] = {};
std::atomic<unsigned> GRingCount{0};

std::mutex GPrefixMu;
std::string GDumpPrefix; // guarded by GPrefixMu

/// Snapshot of the dump path for the signal handler: computed eagerly on
/// every flightSetDumpPrefix so the handler only read()s/write()s.
char GSignalDumpPath[512] = {};
std::atomic<bool> GHandlerInstalled{false};

std::size_t roundUpPow2(std::size_t N) {
  std::size_t P = 1;
  while (P < N && P < (std::size_t(1) << 30))
    P <<= 1;
  return P;
}

Ring *threadRing() {
  thread_local Ring *TL = nullptr;
  if (TL)
    return TL;
  unsigned Slot = GRingCount.fetch_add(1, std::memory_order_relaxed);
  if (Slot >= kMaxRings) {
    // Table full: recording threads beyond the cap drop events. 256
    // threads is far above any configuration the service runs.
    GRingCount.store(kMaxRings, std::memory_order_relaxed);
    return nullptr;
  }
  auto *R = new Ring();
  R->Cap = roundUpPow2(GRingCap.load(std::memory_order_relaxed));
  R->Slots = new FlightEvent[R->Cap]();
  R->Tid = currentThreadId();
  GRings[Slot] = R; // publish after fields are ready
  std::atomic_thread_fence(std::memory_order_release);
  TL = R;
  return TL;
}

/// Appends \p C to Buf at Pos if it fits (writer for the signal-safe path).
inline void putc_buf(char *Buf, std::size_t Cap, std::size_t &Pos, char C) {
  if (Pos + 1 < Cap)
    Buf[Pos++] = C;
}

/// Copies \p S JSON-escaped into Buf (signal-safe: no allocation).
void putEscaped(char *Buf, std::size_t Cap, std::size_t &Pos, const char *S,
                std::size_t MaxLen) {
  for (std::size_t I = 0; S && S[I] && I < MaxLen; ++I) {
    unsigned char C = static_cast<unsigned char>(S[I]);
    if (C == '"' || C == '\\') {
      putc_buf(Buf, Cap, Pos, '\\');
      putc_buf(Buf, Cap, Pos, static_cast<char>(C));
    } else if (C < 0x20) {
      putc_buf(Buf, Cap, Pos, ' ');
    } else {
      putc_buf(Buf, Cap, Pos, static_cast<char>(C));
    }
  }
}

const char *kindName(FlightKind K) {
  switch (K) {
  case FlightKind::Span:
    return "span";
  case FlightKind::Log:
    return "log";
  case FlightKind::Phase:
    return "phase";
  case FlightKind::Mark:
    return "mark";
  }
  return "?";
}

/// Formats one event as a Chrome trace_event JSON object into \p Buf.
/// Integer arithmetic and snprintf with integer conversions only, so the
/// same formatter serves both the ostream and the signal-safe dumpers.
/// \returns the number of bytes written (no trailing comma/newline).
std::size_t formatEvent(const FlightEvent &E, char *Buf, std::size_t Cap) {
  std::size_t Pos = 0;
  unsigned long long TsUs = E.StartNs / 1000, TsFrac = E.StartNs % 1000;
  unsigned long long DurUs = E.DurNs / 1000, DurFrac = E.DurNs % 1000;
  const char *Name = E.Name ? E.Name : "?";
  int N = snprintf(Buf + Pos, Cap - Pos, "{\"name\":\"");
  Pos += (N > 0 && Pos + N < Cap) ? static_cast<std::size_t>(N) : 0;
  putEscaped(Buf, Cap, Pos, Name, 128);
  bool Durational = E.Kind == FlightKind::Span || E.Kind == FlightKind::Phase;
  if (Durational)
    N = snprintf(Buf + Pos, Cap - Pos,
                 "\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%llu.%03llu,"
                 "\"dur\":%llu.%03llu,\"pid\":1,\"tid\":%u,\"args\":{",
                 kindName(E.Kind), TsUs, TsFrac, DurUs, DurFrac, E.Tid);
  else
    N = snprintf(Buf + Pos, Cap - Pos,
                 "\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                 "\"ts\":%llu.%03llu,\"pid\":1,\"tid\":%u,\"args\":{",
                 kindName(E.Kind), TsUs, TsFrac, E.Tid);
  Pos += (N > 0 && Pos + static_cast<std::size_t>(N) < Cap)
             ? static_cast<std::size_t>(N)
             : 0;
  N = snprintf(Buf + Pos, Cap - Pos, "\"rid\":%llu,\"a0\":%llu,\"detail\":\"",
               static_cast<unsigned long long>(E.Rid),
               static_cast<unsigned long long>(E.A0));
  Pos += (N > 0 && Pos + static_cast<std::size_t>(N) < Cap)
             ? static_cast<std::size_t>(N)
             : 0;
  putEscaped(Buf, Cap, Pos, E.Detail, sizeof(E.Detail));
  N = snprintf(Buf + Pos, Cap - Pos, "\"}}");
  Pos += (N > 0 && Pos + static_cast<std::size_t>(N) < Cap)
             ? static_cast<std::size_t>(N)
             : 0;
  Buf[Pos < Cap ? Pos : Cap - 1] = '\0';
  return Pos;
}

/// Walks every registered ring, calling \p Emit(Event) oldest-first per
/// ring. Template so both dumpers share the iteration logic.
template <typename EmitFn> void forEachBufferedEvent(EmitFn &&Emit) {
  unsigned Count = GRingCount.load(std::memory_order_acquire);
  if (Count > kMaxRings)
    Count = kMaxRings;
  for (unsigned I = 0; I < Count; ++I) {
    Ring *R = GRings[I];
    if (!R || !R->Slots)
      continue;
    std::uint64_t End = R->WriteIdx.load(std::memory_order_acquire);
    std::uint64_t Begin = End > R->Cap ? End - R->Cap : 0;
    for (std::uint64_t Idx = Begin; Idx < End; ++Idx) {
      const FlightEvent &E = R->Slots[Idx & (R->Cap - 1)];
      if (E.Name || E.StartNs)
        Emit(E);
    }
  }
}

void writeFull(int Fd, const char *Buf, std::size_t Len) {
  std::size_t Off = 0;
  while (Off < Len) {
    ssize_t W = ::write(Fd, Buf + Off, Len - Off);
    if (W <= 0)
      return;
    Off += static_cast<std::size_t>(W);
  }
}

extern "C" void se2gisFlightSignalHandler(int Sig) {
  char Banner[128];
  int N = snprintf(Banner, sizeof(Banner),
                   "\n[se2gis] fatal signal %d — dumping flight recorder\n",
                   Sig);
  if (N > 0)
    writeFull(2, Banner, static_cast<std::size_t>(N));
#if SE2GIS_HAVE_BACKTRACE
  void *Frames[64];
  int Depth = backtrace(Frames, 64);
  backtrace_symbols_fd(Frames, Depth, 2);
#endif
  if (GSignalDumpPath[0]) {
    int Fd = ::open(GSignalDumpPath, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (Fd >= 0) {
      flightDumpSignalSafe(Fd);
      ::close(Fd);
      N = snprintf(Banner, sizeof(Banner), "[se2gis] flight dump: %s\n",
                   GSignalDumpPath);
      if (N > 0)
        writeFull(2, Banner, static_cast<std::size_t>(N));
    }
  }
  signal(Sig, SIG_DFL);
  raise(Sig);
}

} // namespace

bool flightEnabled() { return GEnabled.load(std::memory_order_relaxed); }

void flightConfigure(bool Enabled, std::size_t RingCapacity) {
  if (RingCapacity >= 2)
    GRingCap.store(roundUpPow2(RingCapacity), std::memory_order_relaxed);
  GEnabled.store(Enabled, std::memory_order_relaxed);
}

void flightSetDumpPrefix(const std::string &PathPrefix) {
  std::lock_guard<std::mutex> Lock(GPrefixMu);
  GDumpPrefix = PathPrefix;
  if (PathPrefix.empty()) {
    GSignalDumpPath[0] = '\0';
    return;
  }
  snprintf(GSignalDumpPath, sizeof(GSignalDumpPath), "%s.%d.json",
           PathPrefix.c_str(), static_cast<int>(getpid()));
}

std::string flightDumpPrefix() {
  std::lock_guard<std::mutex> Lock(GPrefixMu);
  return GDumpPrefix;
}

void flightRecord(FlightKind Kind, const char *Name, std::uint64_t StartNs,
                  std::uint64_t DurNs, std::uint64_t A0, const char *Detail,
                  unsigned char Level) {
  if (!flightEnabled())
    return;
  Ring *R = threadRing();
  if (!R)
    return;
  std::uint64_t Idx = R->WriteIdx.load(std::memory_order_relaxed);
  FlightEvent &E = R->Slots[Idx & (R->Cap - 1)];
  E.StartNs = StartNs;
  E.DurNs = DurNs;
  E.Name = Name;
  E.Rid = threadRequestId();
  E.A0 = A0;
  E.Tid = R->Tid;
  E.Kind = Kind;
  E.Level = Level;
  if (Detail) {
    std::size_t L = strnlen(Detail, sizeof(E.Detail) - 1);
    memcpy(E.Detail, Detail, L);
    E.Detail[L] = '\0';
  } else {
    E.Detail[0] = '\0';
  }
  R->WriteIdx.store(Idx + 1, std::memory_order_release);
}

std::uint64_t flightRecordedEvents() {
  std::uint64_t Total = 0;
  unsigned Count = GRingCount.load(std::memory_order_acquire);
  if (Count > kMaxRings)
    Count = kMaxRings;
  for (unsigned I = 0; I < Count; ++I)
    if (Ring *R = GRings[I])
      Total += R->WriteIdx.load(std::memory_order_relaxed);
  return Total;
}

std::uint64_t flightOverwrittenEvents() {
  std::uint64_t Total = 0;
  unsigned Count = GRingCount.load(std::memory_order_acquire);
  if (Count > kMaxRings)
    Count = kMaxRings;
  for (unsigned I = 0; I < Count; ++I)
    if (Ring *R = GRings[I]) {
      std::uint64_t W = R->WriteIdx.load(std::memory_order_relaxed);
      if (W > R->Cap)
        Total += W - R->Cap;
    }
  return Total;
}

void flightReset() {
  unsigned Count = GRingCount.load(std::memory_order_acquire);
  if (Count > kMaxRings)
    Count = kMaxRings;
  for (unsigned I = 0; I < Count; ++I)
    if (Ring *R = GRings[I]) {
      for (std::size_t S = 0; S < R->Cap; ++S)
        R->Slots[S] = FlightEvent();
      R->WriteIdx.store(0, std::memory_order_release);
    }
}

void flightWriteJson(std::ostream &OS) {
  OS << "{\"traceEvents\":[";
  OS << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"se2gis flight recorder\"}}";
  char Buf[1024];
  forEachBufferedEvent([&](const FlightEvent &E) {
    std::size_t Len = formatEvent(E, Buf, sizeof(Buf));
    OS << ",";
    OS.write(Buf, static_cast<std::streamsize>(Len));
  });
  OS << "],\"displayTimeUnit\":\"ms\"}\n";
}

bool flightDumpToFile(const std::string &Path) {
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  if (!OS)
    return false;
  flightWriteJson(OS);
  OS.flush();
  return static_cast<bool>(OS);
}

void flightDumpSignalSafe(int Fd) {
  static const char Head[] =
      "{\"traceEvents\":[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"tid\":0,\"args\":{\"name\":\"se2gis flight recorder\"}}";
  writeFull(Fd, Head, sizeof(Head) - 1);
  char Buf[1024];
  forEachBufferedEvent([&](const FlightEvent &E) {
    writeFull(Fd, ",", 1);
    std::size_t Len = formatEvent(E, Buf, sizeof(Buf));
    writeFull(Fd, Buf, Len);
  });
  static const char Tail[] = "],\"displayTimeUnit\":\"ms\"}\n";
  writeFull(Fd, Tail, sizeof(Tail) - 1);
}

void flightInstallCrashHandler() {
  bool Expected = false;
  if (!GHandlerInstalled.compare_exchange_strong(Expected, true))
    return;
#if SE2GIS_HAVE_BACKTRACE
  // Prime libgcc's unwinder state so the handler itself never mallocs.
  void *Frames[4];
  (void)backtrace(Frames, 4);
#endif
  struct sigaction SA;
  memset(&SA, 0, sizeof(SA));
  SA.sa_handler = se2gisFlightSignalHandler;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = SA_RESETHAND;
  for (int Sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL})
    sigaction(Sig, &SA, nullptr);
}

std::string flightDumpOnFatal() {
  std::string Prefix = flightDumpPrefix();
  if (Prefix.empty())
    return "";
  std::string Path =
      Prefix + "." + std::to_string(static_cast<int>(getpid())) + ".json";
  if (!flightDumpToFile(Path))
    return "";
  return Path;
}

} // namespace se2gis
