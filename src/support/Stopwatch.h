//===- Stopwatch.h - Wall-clock timing --------------------------*- C++-*-===//
///
/// \file
/// Wall-clock stopwatch. The deadline/cancellation machinery historically
/// defined here lives in support/Cancellation.h (re-exported below so that
/// existing includes keep working).
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SUPPORT_STOPWATCH_H
#define SE2GIS_SUPPORT_STOPWATCH_H

#include "support/Cancellation.h"

#include <chrono>
#include <cstdint>

namespace se2gis {

/// Measures elapsed wall-clock time since construction or the last reset.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restarts the measurement from now.
  void reset() { Start = Clock::now(); }

  /// \returns elapsed time in milliseconds (fractional).
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - Start)
        .count();
  }

  /// \returns elapsed time in whole nanoseconds (histogram resolution).
  std::uint64_t elapsedNs() const {
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - Start)
                  .count();
    return static_cast<std::uint64_t>(Ns > 0 ? Ns : 0);
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace se2gis

#endif // SE2GIS_SUPPORT_STOPWATCH_H
