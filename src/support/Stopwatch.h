//===- Stopwatch.h - Wall-clock timing and deadline budgets -----*- C++-*-===//
///
/// \file
/// Wall-clock stopwatch and a shareable deadline used to bound synthesis
/// runs. Every long-running loop in the library polls a \c Deadline so a
/// benchmark harness can impose a per-problem timeout (the paper uses a
/// 400-second timeout per benchmark; we default to a scaled-down budget).
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SUPPORT_STOPWATCH_H
#define SE2GIS_SUPPORT_STOPWATCH_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace se2gis {

/// Measures elapsed wall-clock time since construction or the last reset.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restarts the measurement from now.
  void reset() { Start = Clock::now(); }

  /// \returns elapsed time in milliseconds (fractional).
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - Start)
        .count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// A point in time after which work must stop.
///
/// A default-constructed deadline never expires. Deadlines are cheap values
/// and are passed by copy through the solver stack.
class Deadline {
public:
  /// Creates a never-expiring deadline.
  Deadline() : Unlimited(true) {}

  /// Creates a deadline \p BudgetMs milliseconds from now.
  static Deadline afterMs(std::int64_t BudgetMs) {
    Deadline D;
    D.Unlimited = false;
    D.End = Clock::now() + std::chrono::milliseconds(BudgetMs);
    return D;
  }

  /// Attaches a cooperative cancellation flag: the deadline also counts as
  /// expired once the flag becomes true (used by the portfolio mode).
  void setCancelFlag(const std::atomic<bool> *Flag) { Cancel = Flag; }

  /// \returns true once the deadline has passed or cancellation was
  /// requested.
  bool expired() const {
    if (Cancel && Cancel->load(std::memory_order_relaxed))
      return true;
    return !Unlimited && Clock::now() >= End;
  }

  /// \returns remaining budget in milliseconds, clamped at zero; a large
  /// sentinel when unlimited.
  std::int64_t remainingMs() const {
    if (Unlimited)
      return INT64_C(1) << 40;
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    End - Clock::now())
                    .count();
    return Left > 0 ? Left : 0;
  }

private:
  using Clock = std::chrono::steady_clock;
  bool Unlimited = true;
  Clock::time_point End{};
  const std::atomic<bool> *Cancel = nullptr;
};

} // namespace se2gis

#endif // SE2GIS_SUPPORT_STOPWATCH_H
