//===- TableWriter.h - Plain-text and CSV table rendering -------*- C++-*-===//
///
/// \file
/// Small table formatter used by the benchmark harnesses to print the rows of
/// the paper's tables and the series behind its figures. Supports aligned
/// plain-text output (for the terminal) and CSV (for replotting).
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SUPPORT_TABLEWRITER_H
#define SE2GIS_SUPPORT_TABLEWRITER_H

#include <string>
#include <vector>

namespace se2gis {

/// Accumulates rows of string cells and renders them aligned or as CSV.
class TableWriter {
public:
  explicit TableWriter(std::vector<std::string> Header);

  /// Appends one row; the cell count must match the header.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table with space-padded, left-aligned columns.
  std::string renderText() const;

  /// Renders the table as CSV (no quoting; cells must not contain commas).
  std::string renderCsv() const;

  /// Number of data rows added so far.
  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats \p Ms as a fixed-point seconds string like the paper's tables
/// (e.g. 0.896). Negative values render as "-" (timeout / not available).
std::string formatSeconds(double Ms);

} // namespace se2gis

#endif // SE2GIS_SUPPORT_TABLEWRITER_H
