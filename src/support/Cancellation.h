//===- Cancellation.h - Cooperative cancellation and deadlines --*- C++-*-===//
///
/// \file
/// The resource-budget subsystem: a shareable \c CancellationToken and a
/// \c Deadline that every long-running loop in the library polls. The paper's
/// entire evaluation is defined by per-benchmark timeouts (Synduce reports
/// "timeout" as a first-class verdict), so budgets must flow through verdicts,
/// never crashes or hung workers.
///
/// The model is strictly cooperative:
///
///  - a \c CancellationToken is a copyable handle to shared cancel state;
///    any copy can request cancellation, every copy observes it. The
///    portfolio mode hands one token to both members and cancels the loser;
///    a suite harness can cancel a whole sweep the same way.
///  - a \c Deadline combines a wall-clock budget with an optional token.
///    Poll points (\c expired) sit at every loop head of the algorithm
///    drivers, between SGE/CEGIS rounds, between bounded-check
///    instantiations and induction cases, and — decimated via \c PollGate —
///    inside the enumerator's candidate hot loop.
///  - the SMT layer maps the *remaining* budget onto per-query Z3 limits
///    (\c queryBudgetMs feeding a deterministic rlimit), so a single hard
///    query cannot overshoot the deadline by more than one per-query slice,
///    and a Z3 `unknown` at an expired deadline is accounted as
///    budget-exceeded rather than solver incompleteness.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_SUPPORT_CANCELLATION_H
#define SE2GIS_SUPPORT_CANCELLATION_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace se2gis {

/// Why a run was asked to stop early.
enum class CancelReason : unsigned char {
  /// Not cancelled (or no token attached).
  None,
  /// Explicit cancellation (portfolio loser, harness shutdown).
  Cancelled,
  /// The wall-clock budget ran out.
  DeadlineExceeded
};

/// \returns a short stable name ("cancelled", ...).
const char *cancelReasonName(CancelReason R);

/// A copyable handle to shared cancellation state.
///
/// A default-constructed token is *empty*: it can never be cancelled and
/// costs nothing to poll. Use \c create() to mint a token with live state,
/// then copy it to every party that should observe (or request) the
/// cancellation. All operations are thread-safe.
class CancellationToken {
public:
  /// Creates an empty (inert) token.
  CancellationToken() = default;

  /// Mints a token with fresh shared state.
  static CancellationToken create() {
    CancellationToken T;
    T.S = std::make_shared<State>();
    return T;
  }

  /// \returns true when this token carries live state.
  bool valid() const { return S != nullptr; }

  /// Requests cancellation; a no-op on an empty token. The first reason
  /// wins; later requests do not overwrite it.
  void requestCancel(CancelReason R = CancelReason::Cancelled) const {
    if (!S)
      return;
    bool Expected = false;
    if (S->Flag.compare_exchange_strong(Expected, true,
                                        std::memory_order_acq_rel))
      S->Reason.store(static_cast<unsigned char>(R),
                      std::memory_order_release);
  }

  /// \returns true once any copy of this token requested cancellation.
  bool cancelRequested() const {
    return S && S->Flag.load(std::memory_order_relaxed);
  }

  /// \returns the recorded reason (None while not cancelled).
  CancelReason reason() const {
    if (!cancelRequested())
      return CancelReason::None;
    return static_cast<CancelReason>(
        S->Reason.load(std::memory_order_acquire));
  }

private:
  struct State {
    std::atomic<bool> Flag{false};
    std::atomic<unsigned char> Reason{
        static_cast<unsigned char>(CancelReason::None)};
  };
  std::shared_ptr<State> S;
};

/// A point in time after which work must stop.
///
/// A default-constructed deadline never expires. Deadlines are cheap values
/// and are passed by copy through the solver stack; they may additionally
/// carry a \c CancellationToken (and, for low-level interop, a raw atomic
/// flag), either of which also counts as expiry.
class Deadline {
public:
  /// Creates a never-expiring deadline.
  Deadline() : Unlimited(true) {}

  /// Creates a deadline \p BudgetMs milliseconds from now; a non-positive
  /// budget yields an unlimited deadline.
  static Deadline afterMs(std::int64_t BudgetMs) {
    Deadline D;
    if (BudgetMs <= 0)
      return D;
    D.Unlimited = false;
    D.End = Clock::now() + std::chrono::milliseconds(BudgetMs);
    return D;
  }

  /// Attaches a cooperative cancellation token: the deadline also counts as
  /// expired once the token is cancelled.
  void setToken(CancellationToken T) { Token = std::move(T); }

  /// Attaches a raw cancellation flag (legacy interop; prefer \c setToken).
  void setCancelFlag(const std::atomic<bool> *Flag) { Cancel = Flag; }

  /// \returns true once the deadline has passed or cancellation was
  /// requested.
  bool expired() const {
    if (Token.cancelRequested())
      return true;
    if (Cancel && Cancel->load(std::memory_order_relaxed))
      return true;
    return !Unlimited && Clock::now() >= End;
  }

  /// \returns remaining budget in milliseconds, clamped at zero (also zero
  /// when cancelled); a large sentinel when unlimited.
  std::int64_t remainingMs() const {
    if (Token.cancelRequested() ||
        (Cancel && Cancel->load(std::memory_order_relaxed)))
      return 0;
    if (Unlimited)
      return INT64_C(1) << 40;
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    End - Clock::now())
                    .count();
    return Left > 0 ? Left : 0;
  }

  /// Clamps a per-query budget to the remaining time: the Z3 budget mapping.
  /// \returns min(\p PerQueryMs, remaining), or 0 when already expired — a
  /// zero budget means "do not even start the query".
  int queryBudgetMs(int PerQueryMs) const {
    std::int64_t Left = remainingMs();
    if (Left <= 0)
      return 0;
    if (PerQueryMs > 0 && PerQueryMs < Left)
      return PerQueryMs;
    return static_cast<int>(Left > INT32_MAX ? INT32_MAX : Left);
  }

private:
  using Clock = std::chrono::steady_clock;
  bool Unlimited = true;
  Clock::time_point End{};
  const std::atomic<bool> *Cancel = nullptr;
  CancellationToken Token;
};

/// Decimated deadline polling for hot loops: checking the clock per
/// enumerated candidate would dominate the enumerator, so \c expired is
/// consulted only every \p Stride ticks (a power of two).
class PollGate {
public:
  explicit PollGate(unsigned Stride = 1024) : Mask(Stride - 1) {}

  /// \returns true when this tick hit the stride AND the deadline expired.
  bool tick(const Deadline &D) {
    return (++Ticks & Mask) == 0 && D.expired();
  }

private:
  unsigned Ticks = 0;
  unsigned Mask;
};

} // namespace se2gis

#endif // SE2GIS_SUPPORT_CANCELLATION_H
