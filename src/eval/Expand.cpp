//===- Expand.cpp ---------------------------------------------------------===//

#include "eval/Expand.h"

#include "support/Diagnostics.h"

#include <algorithm>
#include <cassert>

using namespace se2gis;

namespace {

/// Short, stable base names for fresh variables by type.
std::string baseNameFor(const TypePtr &Ty) {
  if (Ty->isInt())
    return "a";
  if (Ty->isBool())
    return "b";
  if (Ty->isTuple())
    return "p";
  return "l";
}

} // namespace

std::vector<TermPtr> se2gis::expandVariable(const VarPtr &V) {
  assert(V->Ty->isData() && "can only expand datatype variables");
  const Datatype *D = V->Ty->getDatatype();
  std::vector<TermPtr> Result;
  for (unsigned CI = 0; CI < D->numConstructors(); ++CI) {
    const ConstructorDecl &C = D->getConstructor(CI);
    std::vector<TermPtr> Fields;
    for (const TypePtr &FT : C.Fields)
      Fields.push_back(mkVar(freshVar(baseNameFor(FT), FT)));
    Result.push_back(mkCtor(&C, std::move(Fields)));
  }
  return Result;
}

std::vector<TermPtr> se2gis::expandVarInTerm(const TermPtr &T,
                                             const VarPtr &V) {
  std::vector<TermPtr> Result;
  for (TermPtr &E : expandVariable(V)) {
    Substitution Map;
    Map.emplace_back(V->Id, std::move(E));
    Result.push_back(substitute(T, Map));
  }
  return Result;
}

VarPtr se2gis::firstDataVar(const TermPtr &T) {
  VarPtr Found;
  visitTerm(T, [&](const TermPtr &N) {
    if (Found)
      return false;
    if (N->getKind() == TermKind::Var && N->getVar()->Ty->isData()) {
      Found = N->getVar();
      return false;
    }
    return true;
  });
  return Found;
}

BoundedTermStream::BoundedTermStream(const Datatype *D) {
  push(mkVar(freshVar("x", Type::dataTy(D))));
}

void BoundedTermStream::push(TermPtr T) {
  size_t Weight = 0;
  visitTerm(T, [&](const TermPtr &N) {
    if (N->getKind() == TermKind::Ctor ||
        (N->getKind() == TermKind::Var && N->getVar()->Ty->isData()))
      ++Weight;
    return true;
  });
  Pending P{std::move(T), Weight};
  auto It = std::find_if(Queue.begin(), Queue.end(), [&](const Pending &Q) {
    return Q.Weight > P.Weight;
  });
  Queue.insert(It, std::move(P));
}

TermPtr BoundedTermStream::next() {
  while (true) {
    if (Queue.empty())
      return nullptr; // finite datatype fully enumerated
    Pending P = std::move(Queue.front());
    Queue.pop_front();
    VarPtr V = firstDataVar(P.T);
    if (!V)
      return P.T;
    for (TermPtr &E : expandVarInTerm(P.T, V))
      push(std::move(E));
  }
}

TermPtr se2gis::shapeOfValue(const ValuePtr &V) {
  switch (V->getKind()) {
  case Value::Kind::Int:
    return mkVar(freshVar("a", Type::intTy()));
  case Value::Kind::Bool:
    return mkVar(freshVar("b", Type::boolTy()));
  case Value::Kind::Tuple: {
    std::vector<TermPtr> Elems;
    for (const ValuePtr &E : V->getElems())
      Elems.push_back(shapeOfValue(E));
    return mkTuple(std::move(Elems));
  }
  case Value::Kind::Data: {
    std::vector<TermPtr> Fields;
    for (const ValuePtr &F : V->getElems())
      Fields.push_back(shapeOfValue(F));
    return mkCtor(V->getCtor(), std::move(Fields));
  }
  }
  fatalError("bad value kind");
}

bool se2gis::matchShape(const TermPtr &Pattern, const ValuePtr &V,
                        std::vector<std::pair<VarPtr, ValuePtr>> &Bindings) {
  switch (Pattern->getKind()) {
  case TermKind::Var:
    Bindings.emplace_back(Pattern->getVar(), V);
    return true;
  case TermKind::Ctor: {
    if (!V->isData() || V->getCtor() != Pattern->getCtor())
      return false;
    for (size_t I = 0; I < Pattern->numArgs(); ++I)
      if (!matchShape(Pattern->getArg(I), V->getElems()[I], Bindings))
        return false;
    return true;
  }
  case TermKind::Tuple: {
    if (!V->isTuple() || V->getElems().size() != Pattern->numArgs())
      return false;
    for (size_t I = 0; I < Pattern->numArgs(); ++I)
      if (!matchShape(Pattern->getArg(I), V->getElems()[I], Bindings))
        return false;
    return true;
  }
  case TermKind::IntLit:
    return V->isInt() && V->getInt() == Pattern->getIntValue();
  case TermKind::BoolLit:
    return V->isBool() && V->getBool() == Pattern->getBoolValue();
  default:
    // Patterns used for T-refinement only contain vars/ctors/tuples/lits.
    return false;
  }
}

std::optional<TermPtr> se2gis::expandToward(const TermPtr &Pattern,
                                            const ValuePtr &V) {
  std::vector<std::pair<VarPtr, ValuePtr>> Bindings;
  if (!matchShape(Pattern, V, Bindings))
    return std::nullopt;
  for (const auto &[Var, Sub] : Bindings) {
    if (!Var->Ty->isData() || !Sub->isData())
      continue;
    const ConstructorDecl *C = Sub->getCtor();
    std::vector<TermPtr> Fields;
    for (const TypePtr &FT : C->Fields)
      Fields.push_back(mkVar(freshVar(FT->isData() ? "l" : "a", FT)));
    Substitution Map;
    Map.emplace_back(Var->Id, mkCtor(C, std::move(Fields)));
    return substitute(Pattern, Map);
  }
  return std::nullopt;
}
