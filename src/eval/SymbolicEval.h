//===- SymbolicEval.h - Symbolic evaluation of recursive calls --*- C++-*-===//
///
/// \file
/// Normalizes terms by unfolding pattern-matching recursive functions on
/// constructor-headed arguments and inlining plain functions, interleaved
/// with algebraic simplification. Calls whose matched argument is a variable
/// (or otherwise stuck) are left in place; these are the partially bounded
/// residues that recursion elimination (core/RecursionElim) later replaces
/// with elimination variables.
///
/// Termination relies on the paper's assumptions (all recursion is
/// structural and terminating); a fuel counter guards against violations.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_EVAL_SYMBOLICEVAL_H
#define SE2GIS_EVAL_SYMBOLICEVAL_H

#include "ast/Term.h"
#include "eval/Interp.h"
#include "lang/Program.h"

namespace se2gis {

/// Symbolically evaluates terms against a program's function definitions.
class SymbolicEvaluator {
public:
  explicit SymbolicEvaluator(const Program &Prog, size_t MaxSteps = 200000)
      : Prog(Prog), MaxSteps(MaxSteps) {}

  /// Inlines Unknown applications using \p B while evaluating (used to
  /// verify synthesized solutions against the original specification).
  void bindUnknowns(const UnknownBindings *B) { Bindings = B; }

  /// Normalizes \p T: unfolds reducible calls, inlines plain functions,
  /// simplifies. Raises UserError if the fuel runs out.
  TermPtr eval(const TermPtr &T);

private:
  TermPtr norm(const TermPtr &T);
  TermPtr normCall(const TermPtr &Call);

  const Program &Prog;
  size_t MaxSteps;
  size_t Steps = 0;
  const UnknownBindings *Bindings = nullptr;
};

} // namespace se2gis

#endif // SE2GIS_EVAL_SYMBOLICEVAL_H
