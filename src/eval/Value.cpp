//===- Value.cpp ----------------------------------------------------------===//

#include "eval/Value.h"

#include "ast/Term.h"
#include "support/Diagnostics.h"

#include <cassert>
#include <sstream>

using namespace se2gis;

ValuePtr Value::mkInt(long long V) {
  auto *R = new Value(Kind::Int);
  R->I = V;
  return ValuePtr(R);
}

ValuePtr Value::mkBool(bool V) {
  auto *R = new Value(Kind::Bool);
  R->I = V ? 1 : 0;
  return ValuePtr(R);
}

ValuePtr Value::mkTuple(std::vector<ValuePtr> Elems) {
  assert(Elems.size() >= 2 && "tuples need at least two elements");
  auto *R = new Value(Kind::Tuple);
  R->Elems = std::move(Elems);
  return ValuePtr(R);
}

ValuePtr Value::mkData(const ConstructorDecl *Ctor,
                       std::vector<ValuePtr> Fields) {
  assert(Ctor && Fields.size() == Ctor->Fields.size() &&
         "constructor arity mismatch");
  auto *R = new Value(Kind::Data);
  R->Ctor = Ctor;
  R->Elems = std::move(Fields);
  return ValuePtr(R);
}

long long Value::getInt() const {
  assert(K == Kind::Int && "not an int value");
  return I;
}

bool Value::getBool() const {
  assert(K == Kind::Bool && "not a bool value");
  return I != 0;
}

const ConstructorDecl *Value::getCtor() const {
  assert(K == Kind::Data && "not a data value");
  return Ctor;
}

std::string Value::str() const {
  std::ostringstream OS;
  switch (K) {
  case Kind::Int:
    OS << I;
    break;
  case Kind::Bool:
    OS << (I ? "true" : "false");
    break;
  case Kind::Tuple: {
    OS << '(';
    for (size_t E = 0; E < Elems.size(); ++E) {
      if (E)
        OS << ", ";
      OS << Elems[E]->str();
    }
    OS << ')';
    break;
  }
  case Kind::Data: {
    OS << Ctor->Name;
    if (!Elems.empty()) {
      OS << '(';
      for (size_t E = 0; E < Elems.size(); ++E) {
        if (E)
          OS << ", ";
        OS << Elems[E]->str();
      }
      OS << ')';
    }
    break;
  }
  }
  return OS.str();
}

bool se2gis::valueEquals(const ValuePtr &A, const ValuePtr &B) {
  if (A.get() == B.get())
    return true;
  if (!A || !B || A->getKind() != B->getKind())
    return false;
  switch (A->getKind()) {
  case Value::Kind::Int:
    return A->getInt() == B->getInt();
  case Value::Kind::Bool:
    return A->getBool() == B->getBool();
  case Value::Kind::Data:
    if (A->getCtor() != B->getCtor())
      return false;
    [[fallthrough]];
  case Value::Kind::Tuple: {
    const auto &EA = A->getElems(), &EB = B->getElems();
    if (EA.size() != EB.size())
      return false;
    for (size_t I = 0; I < EA.size(); ++I)
      if (!valueEquals(EA[I], EB[I]))
        return false;
    return true;
  }
  }
  return false;
}

bool se2gis::valueLess(const ValuePtr &A, const ValuePtr &B) {
  if (A->getKind() != B->getKind())
    return A->getKind() < B->getKind();
  switch (A->getKind()) {
  case Value::Kind::Int:
    return A->getInt() < B->getInt();
  case Value::Kind::Bool:
    return A->getBool() < B->getBool();
  case Value::Kind::Data:
    if (A->getCtor() != B->getCtor())
      return A->getCtor()->Index < B->getCtor()->Index;
    [[fallthrough]];
  case Value::Kind::Tuple: {
    const auto &EA = A->getElems(), &EB = B->getElems();
    if (EA.size() != EB.size())
      return EA.size() < EB.size();
    for (size_t I = 0; I < EA.size(); ++I) {
      if (valueLess(EA[I], EB[I]))
        return true;
      if (valueLess(EB[I], EA[I]))
        return false;
    }
    return false;
  }
  }
  return false;
}

std::uint64_t se2gis::valueHash(const ValuePtr &V) {
  std::uint64_t H =
      static_cast<std::uint64_t>(V->getKind()) * 0x9e3779b9U + 0x51ed2701ULL;
  switch (V->getKind()) {
  case Value::Kind::Int:
    return hashCombine(H, static_cast<std::uint64_t>(V->getInt()));
  case Value::Kind::Bool:
    return hashCombine(H, V->getBool() ? 2 : 1);
  case Value::Kind::Data:
    H = hashCombine(H, V->getCtor()->Index);
    [[fallthrough]];
  case Value::Kind::Tuple:
    for (const ValuePtr &E : V->getElems())
      H = hashCombine(H, valueHash(E));
    return H;
  }
  return H;
}
