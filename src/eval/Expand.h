//===- Expand.h - Term expansion and bounded-term enumeration ---*- C++-*-===//
///
/// \file
/// Expansion utilities shared by the refinement loops:
///  - expanding a datatype-typed variable into all constructor applications
///    with fresh field variables (one step of unrolling),
///  - a fair enumerator of *fully bounded* terms (constructor trees with
///    symbolic scalar leaves) used by the SEGIS/SEGIS+UC baselines,
///  - matching a term's constructor skeleton against a concrete value and
///    turning values into shape terms, used to grow the term set T toward a
///    verification counterexample.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_EVAL_EXPAND_H
#define SE2GIS_EVAL_EXPAND_H

#include "ast/Term.h"
#include "eval/Value.h"

#include <deque>
#include <optional>

namespace se2gis {

/// \returns one term per constructor of \p V's datatype, each a constructor
/// application with fresh variables for the fields. \p V must be
/// datatype-typed.
std::vector<TermPtr> expandVariable(const VarPtr &V);

/// Substitutes each expansion of \p V into \p T, yielding one term per
/// constructor of \p V's datatype.
std::vector<TermPtr> expandVarInTerm(const TermPtr &T, const VarPtr &V);

/// \returns the first datatype-typed free variable of \p T (pre-order), or
/// nullptr if \p T is fully bounded.
VarPtr firstDataVar(const TermPtr &T);

/// Enumerates the fully bounded terms of a datatype in non-decreasing
/// constructor-count order: `Elt(a1)`, `Cons(a2, Elt(a3))`, ... Fresh scalar
/// variables appear at every scalar field.
class BoundedTermStream {
public:
  explicit BoundedTermStream(const Datatype *D);

  /// \returns the next bounded term, or null once the datatype's value
  /// space is exhausted. Recursive datatypes never exhaust, but a datatype
  /// whose constructors are all non-recursive has finitely many shapes
  /// (one per constructor), and callers must stop requesting more.
  TermPtr next();

private:
  struct Pending {
    TermPtr T;
    size_t Weight; // ctor count + pending data vars (lower = earlier)
  };
  void push(TermPtr T);

  std::deque<Pending> Queue;
};

/// Builds the shape term of \p V: the same constructor tree with fresh
/// scalar variables at every scalar field (and nested data values also
/// expanded into their full constructor trees).
TermPtr shapeOfValue(const ValuePtr &V);

/// Matches \p Pattern's constructor skeleton against \p V. Variables in the
/// pattern match any (sub)value of their type; constructor nodes must match
/// the value's constructor. On success, fills \p Bindings (variable id ->
/// matched sub-value) and returns true.
bool matchShape(const TermPtr &Pattern, const ValuePtr &V,
                std::vector<std::pair<VarPtr, ValuePtr>> &Bindings);

/// One step of growth toward a counterexample: finds the first
/// datatype-typed variable of \p Pattern whose matched sub-value (per
/// \c matchShape against \p V) is a constructor value, and replaces it by
/// that constructor applied to fresh variables. Returns nullopt if \p
/// Pattern does not match \p V or has no data variables left.
std::optional<TermPtr> expandToward(const TermPtr &Pattern, const ValuePtr &V);

} // namespace se2gis

#endif // SE2GIS_EVAL_EXPAND_H
