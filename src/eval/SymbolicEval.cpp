//===- SymbolicEval.cpp ---------------------------------------------------===//

#include "eval/SymbolicEval.h"

#include "ast/Simplify.h"
#include "support/Counters.h"
#include "support/Diagnostics.h"
#include "support/PerfCounters.h"

#include <cassert>

using namespace se2gis;

TermPtr SymbolicEvaluator::eval(const TermPtr &T) {
  // The entry point (norm recurses below it), so one scope covers the whole
  // evaluation without per-step overhead.
  PhaseScope EvalPhase(Phase::Eval);
  Steps = 0;
  return norm(T);
}

TermPtr SymbolicEvaluator::norm(const TermPtr &T) {
  if (++Steps > MaxSteps)
    userError("symbolic evaluation fuel exhausted");

  // Normalize children first, then retry local reductions.
  bool Changed = false;
  std::vector<TermPtr> NewArgs;
  NewArgs.reserve(T->numArgs());
  for (const TermPtr &A : T->getArgs()) {
    TermPtr NA = norm(A);
    Changed |= NA.get() != A.get();
    NewArgs.push_back(std::move(NA));
  }

  TermPtr Node = T;
  if (Changed) {
    switch (T->getKind()) {
    case TermKind::Op:
      Node = mkOp(T->getOp(), std::move(NewArgs));
      break;
    case TermKind::Tuple:
      Node = mkTuple(std::move(NewArgs));
      break;
    case TermKind::Proj:
      Node = mkProj(std::move(NewArgs[0]), T->getIndex());
      break;
    case TermKind::Ctor:
      Node = mkCtor(T->getCtor(), std::move(NewArgs));
      break;
    case TermKind::Call:
      Node = mkCall(T->getCallee(), T->getType(), std::move(NewArgs));
      break;
    case TermKind::Unknown:
      Node = mkUnknown(T->getCallee(), T->getType(), std::move(NewArgs));
      break;
    default:
      fatalError("leaf node with arguments");
    }
  }

  if (Node->getKind() == TermKind::Call)
    return normCall(Node);
  if (Node->getKind() == TermKind::Unknown && Bindings) {
    auto It = Bindings->find(Node->getCallee());
    if (It != Bindings->end()) {
      const UnknownDef &Def = It->second;
      if (Def.Params.size() != Node->numArgs())
        userError("arity mismatch for unknown '$" + Node->getCallee() + "'");
      Substitution Map;
      for (size_t I = 0; I < Def.Params.size(); ++I)
        Map.emplace_back(Def.Params[I]->Id, Node->getArg(I));
      return norm(substitute(Def.Body, Map));
    }
  }
  return simplifyNode(Node);
}

TermPtr SymbolicEvaluator::normCall(const TermPtr &CallNode) {
  const RecFunction *F = Prog.findFunction(CallNode->getCallee());
  if (!F)
    userError("call to undefined function '" + CallNode->getCallee() + "'");
  if (CallNode->numArgs() != F->numArgs())
    userError("arity mismatch calling '" + CallNode->getCallee() + "'");

  if (!F->isScheme()) {
    Substitution Map;
    for (size_t I = 0; I < F->getParams().size(); ++I)
      Map.emplace_back(F->getParams()[I]->Id, CallNode->getArg(I));
    return norm(substitute(F->getBody(), Map));
  }

  const TermPtr &Matched = CallNode->getArg(CallNode->numArgs() - 1);

  // Distribute the call over data-typed conditionals so that both branches
  // can reduce: f(..., ite(c, a, b)) -> ite(c, f(..., a), f(..., b)).
  if (Matched->getKind() == TermKind::Op && Matched->getOp() == OpKind::Ite) {
    auto MakeBranch = [&](const TermPtr &Br) {
      std::vector<TermPtr> Args(CallNode->getArgs().begin(),
                                CallNode->getArgs().end() - 1);
      Args.push_back(Br);
      return mkCall(CallNode->getCallee(), CallNode->getType(),
                    std::move(Args));
    };
    return norm(mkIte(Matched->getArg(0), MakeBranch(Matched->getArg(1)),
                      MakeBranch(Matched->getArg(2))));
  }

  if (Matched->getKind() != TermKind::Ctor)
    return CallNode; // Stuck: partially bounded residue.

  const SchemeRule *R = F->findRule(Matched->getCtor()->Index);
  if (!R)
    userError("no rule for constructor '" + Matched->getCtor()->Name +
              "' in '" + CallNode->getCallee() + "'");
  countEvent(CounterKind::SymbolicUnfoldings);

  Substitution Map;
  for (size_t I = 0; I < F->getParams().size(); ++I)
    Map.emplace_back(F->getParams()[I]->Id, CallNode->getArg(I));
  for (size_t I = 0; I < R->FieldVars.size(); ++I)
    Map.emplace_back(R->FieldVars[I]->Id, Matched->getArg(I));
  return norm(substitute(R->Body, Map));
}
