//===- Value.h - Concrete values for the interpreter ------------*- C++-*-===//
///
/// \file
/// Concrete values: integers, booleans, tuples, and datatype values (a
/// constructor applied to concrete fields). These are the "concrete terms"
/// of the paper, reified as a compact runtime representation used by the
/// interpreter, the PBE learner, and witness-validity certificates.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_EVAL_VALUE_H
#define SE2GIS_EVAL_VALUE_H

#include "ast/Type.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace se2gis {

class Value;
using ValuePtr = std::shared_ptr<const Value>;

/// A concrete value. Immutable; construct via the factories.
class Value {
public:
  enum class Kind : unsigned char { Int, Bool, Tuple, Data };

  Kind getKind() const { return K; }
  bool isInt() const { return K == Kind::Int; }
  bool isBool() const { return K == Kind::Bool; }
  bool isTuple() const { return K == Kind::Tuple; }
  bool isData() const { return K == Kind::Data; }

  static ValuePtr mkInt(long long V);
  static ValuePtr mkBool(bool V);
  static ValuePtr mkTuple(std::vector<ValuePtr> Elems);
  static ValuePtr mkData(const ConstructorDecl *Ctor,
                         std::vector<ValuePtr> Fields);

  long long getInt() const;
  bool getBool() const;
  const std::vector<ValuePtr> &getElems() const { return Elems; }
  const ConstructorDecl *getCtor() const;

  std::string str() const;

private:
  explicit Value(Kind K) : K(K) {}

  Kind K;
  long long I = 0;
  std::vector<ValuePtr> Elems;
  const ConstructorDecl *Ctor = nullptr;
};

/// Deep structural equality.
bool valueEquals(const ValuePtr &A, const ValuePtr &B);

/// Deep structural 64-bit hash, consistent with \c valueEquals (equal
/// values hash equally). Used by the enumerator's observational-equivalence
/// signatures.
std::uint64_t valueHash(const ValuePtr &V);

/// Orders values lexicographically; used for deterministic containers.
bool valueLess(const ValuePtr &A, const ValuePtr &B);

} // namespace se2gis

#endif // SE2GIS_EVAL_VALUE_H
