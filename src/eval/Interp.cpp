//===- Interp.cpp ---------------------------------------------------------===//

#include "eval/Interp.h"

#include "ast/Simplify.h"
#include "support/Diagnostics.h"

#include <cassert>

using namespace se2gis;

namespace {

ValuePtr evalOp(OpKind Op, const std::vector<ValuePtr> &Args) {
  auto I = [&](size_t K) { return Args[K]->getInt(); };
  auto B = [&](size_t K) { return Args[K]->getBool(); };
  switch (Op) {
  case OpKind::Add:
    return Value::mkInt(I(0) + I(1));
  case OpKind::Sub:
    return Value::mkInt(I(0) - I(1));
  case OpKind::Neg:
    return Value::mkInt(-I(0));
  case OpKind::Mul:
    return Value::mkInt(I(0) * I(1));
  case OpKind::Div:
    return Value::mkInt(euclidDiv(I(0), I(1)));
  case OpKind::Mod:
    return Value::mkInt(euclidMod(I(0), I(1)));
  case OpKind::Min:
    return Value::mkInt(I(0) < I(1) ? I(0) : I(1));
  case OpKind::Max:
    return Value::mkInt(I(0) > I(1) ? I(0) : I(1));
  case OpKind::Abs:
    return Value::mkInt(I(0) < 0 ? -I(0) : I(0));
  case OpKind::Lt:
    return Value::mkBool(I(0) < I(1));
  case OpKind::Le:
    return Value::mkBool(I(0) <= I(1));
  case OpKind::Gt:
    return Value::mkBool(I(0) > I(1));
  case OpKind::Ge:
    return Value::mkBool(I(0) >= I(1));
  case OpKind::Eq:
    return Value::mkBool(valueEquals(Args[0], Args[1]));
  case OpKind::Ne:
    return Value::mkBool(!valueEquals(Args[0], Args[1]));
  case OpKind::Not:
    return Value::mkBool(!B(0));
  case OpKind::Implies:
    return Value::mkBool(!B(0) || B(1));
  case OpKind::And: {
    for (const ValuePtr &A : Args)
      if (!A->getBool())
        return Value::mkBool(false);
    return Value::mkBool(true);
  }
  case OpKind::Or: {
    for (const ValuePtr &A : Args)
      if (A->getBool())
        return Value::mkBool(true);
    return Value::mkBool(false);
  }
  case OpKind::Ite:
    fatalError("ite handled before operand evaluation");
  }
  fatalError("bad op kind in interpreter");
}

} // namespace

ValuePtr Interpreter::eval(const TermPtr &T, const Env &E) {
  if (++Steps > MaxSteps)
    userError("interpreter fuel exhausted (non-terminating recursion?)");

  switch (T->getKind()) {
  case TermKind::Var: {
    auto It = E.find(T->getVar()->Id);
    if (It == E.end())
      userError("unbound variable '" + T->getVar()->Name + "'");
    return It->second;
  }
  case TermKind::IntLit:
    return Value::mkInt(T->getIntValue());
  case TermKind::BoolLit:
    return Value::mkBool(T->getBoolValue());
  case TermKind::Hole:
    userError("cannot evaluate a term with holes");
  case TermKind::Op: {
    if (T->getOp() == OpKind::Ite) {
      ValuePtr C = eval(T->getArg(0), E);
      return eval(C->getBool() ? T->getArg(1) : T->getArg(2), E);
    }
    // Short-circuit the boolean connectives.
    if (T->getOp() == OpKind::And || T->getOp() == OpKind::Or) {
      bool IsAnd = T->getOp() == OpKind::And;
      for (const TermPtr &A : T->getArgs())
        if (eval(A, E)->getBool() != IsAnd)
          return Value::mkBool(!IsAnd);
      return Value::mkBool(IsAnd);
    }
    std::vector<ValuePtr> Args;
    Args.reserve(T->numArgs());
    for (const TermPtr &A : T->getArgs())
      Args.push_back(eval(A, E));
    return evalOp(T->getOp(), Args);
  }
  case TermKind::Tuple: {
    std::vector<ValuePtr> Elems;
    Elems.reserve(T->numArgs());
    for (const TermPtr &A : T->getArgs())
      Elems.push_back(eval(A, E));
    return Value::mkTuple(std::move(Elems));
  }
  case TermKind::Proj: {
    ValuePtr Tup = eval(T->getArg(0), E);
    assert(Tup->isTuple() && T->getIndex() < Tup->getElems().size());
    return Tup->getElems()[T->getIndex()];
  }
  case TermKind::Ctor: {
    std::vector<ValuePtr> Fields;
    Fields.reserve(T->numArgs());
    for (const TermPtr &A : T->getArgs())
      Fields.push_back(eval(A, E));
    return Value::mkData(T->getCtor(), std::move(Fields));
  }
  case TermKind::Call: {
    std::vector<ValuePtr> Args;
    Args.reserve(T->numArgs());
    for (const TermPtr &A : T->getArgs())
      Args.push_back(eval(A, E));
    return call(T->getCallee(), Args);
  }
  case TermKind::Unknown: {
    if (!Bindings)
      userError("evaluating unknown '$" + T->getCallee() +
                "' without bindings");
    auto It = Bindings->find(T->getCallee());
    if (It == Bindings->end())
      userError("no binding for unknown '$" + T->getCallee() + "'");
    const UnknownDef &Def = It->second;
    if (Def.Params.size() != T->numArgs())
      userError("arity mismatch for unknown '$" + T->getCallee() + "'");
    Env Local;
    for (size_t I = 0; I < Def.Params.size(); ++I)
      Local[Def.Params[I]->Id] = eval(T->getArg(I), E);
    return eval(Def.Body, Local);
  }
  }
  fatalError("bad term kind in interpreter");
}

ValuePtr Interpreter::call(const std::string &Name,
                           const std::vector<ValuePtr> &Args) {
  const RecFunction *F = Prog.findFunction(Name);
  if (!F)
    userError("call to undefined function '" + Name + "'");
  if (Args.size() != F->numArgs())
    userError("arity mismatch calling '" + Name + "'");

  Env Local;
  for (size_t I = 0; I < F->getParams().size(); ++I)
    Local[F->getParams()[I]->Id] = Args[I];

  if (!F->isScheme())
    return eval(F->getBody(), Local);

  const ValuePtr &Matched = Args.back();
  if (!Matched->isData())
    userError("matched argument of '" + Name + "' is not a datatype value");
  const SchemeRule *R = F->findRule(Matched->getCtor()->Index);
  if (!R)
    userError("no rule for constructor '" + Matched->getCtor()->Name +
              "' in '" + Name + "'");
  for (size_t I = 0; I < R->FieldVars.size(); ++I)
    Local[R->FieldVars[I]->Id] = Matched->getElems()[I];
  return eval(R->Body, Local);
}
