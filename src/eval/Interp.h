//===- Interp.h - Concrete interpreter --------------------------*- C++-*-===//
///
/// \file
/// Evaluates closed terms (or terms closed under an environment) to concrete
/// values. Used by tests, the PBE learner (evaluating grammar candidates on
/// example points), witness-validity certificates, and bounded oracles.
///
/// Unknown applications are resolved through an optional unknown-binding
/// table (a synthesized solution); evaluating an unbound unknown is a usage
/// error.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_EVAL_INTERP_H
#define SE2GIS_EVAL_INTERP_H

#include "eval/Value.h"
#include "lang/Program.h"

#include <unordered_map>

namespace se2gis {

/// Variable-id to value bindings.
using Env = std::unordered_map<unsigned, ValuePtr>;

/// A synthesized implementation for one unknown: parameter variables plus a
/// defining term over them.
struct UnknownDef {
  std::vector<VarPtr> Params;
  TermPtr Body;
};

/// Maps unknown names to their synthesized definitions.
using UnknownBindings = std::unordered_map<std::string, UnknownDef>;

/// Concrete term evaluator with a recursion-fuel guard.
class Interpreter {
public:
  explicit Interpreter(const Program &Prog, size_t MaxSteps = 1000000)
      : Prog(Prog), MaxSteps(MaxSteps) {}

  /// Sets the unknown-function implementations used for Unknown nodes.
  void bindUnknowns(const UnknownBindings *Bindings) {
    this->Bindings = Bindings;
  }

  /// Evaluates \p T under \p E. Raises UserError on unbound variables,
  /// unbound unknowns, or fuel exhaustion.
  ValuePtr eval(const TermPtr &T, const Env &E);

  /// Calls function \p Name on \p Args.
  ValuePtr call(const std::string &Name, const std::vector<ValuePtr> &Args);

private:
  const Program &Prog;
  size_t MaxSteps;
  size_t Steps = 0;
  const UnknownBindings *Bindings = nullptr;
};

} // namespace se2gis

#endif // SE2GIS_EVAL_INTERP_H
