//===- Simplify.cpp -------------------------------------------------------===//

#include "ast/Simplify.h"

#include "support/Diagnostics.h"

#include <cassert>
#include <cstdlib>

using namespace se2gis;

long long se2gis::euclidDiv(long long A, long long B) {
  if (B == 0)
    return 0;
  long long Q = A / B;
  if (A % B != 0 && ((A % B < 0) != (B < 0)) && (A % B < 0))
    Q -= (B > 0) ? 1 : -1;
  // Recompute precisely: Euclidean quotient satisfies A = B*Q + R, 0 <= R.
  long long R = A - B * Q;
  if (R < 0)
    Q += (B > 0) ? -1 : 1;
  return Q;
}

long long se2gis::euclidMod(long long A, long long B) {
  if (B == 0)
    return 0;
  long long R = A % B;
  if (R < 0)
    R += std::llabs(B);
  return R;
}

namespace {

bool isIntLit(const TermPtr &T, long long Value) {
  return T->getKind() == TermKind::IntLit && T->getIntValue() == Value;
}

bool isBoolLit(const TermPtr &T, bool Value) {
  return T->getKind() == TermKind::BoolLit && T->getBoolValue() == Value;
}

bool allIntLits(const std::vector<TermPtr> &Args) {
  for (const TermPtr &A : Args)
    if (A->getKind() != TermKind::IntLit)
      return false;
  return true;
}

TermPtr foldIntOp(OpKind Op, const std::vector<TermPtr> &Args) {
  long long A = Args[0]->getIntValue();
  long long B = Args.size() > 1 ? Args[1]->getIntValue() : 0;
  switch (Op) {
  case OpKind::Add:
    return mkIntLit(A + B);
  case OpKind::Sub:
    return mkIntLit(A - B);
  case OpKind::Neg:
    return mkIntLit(-A);
  case OpKind::Mul:
    return mkIntLit(A * B);
  case OpKind::Div:
    return mkIntLit(euclidDiv(A, B));
  case OpKind::Mod:
    return mkIntLit(euclidMod(A, B));
  case OpKind::Min:
    return mkIntLit(A < B ? A : B);
  case OpKind::Max:
    return mkIntLit(A > B ? A : B);
  case OpKind::Abs:
    return mkIntLit(A < 0 ? -A : A);
  case OpKind::Lt:
    return mkBoolLit(A < B);
  case OpKind::Le:
    return mkBoolLit(A <= B);
  case OpKind::Gt:
    return mkBoolLit(A > B);
  case OpKind::Ge:
    return mkBoolLit(A >= B);
  case OpKind::Eq:
    return mkBoolLit(A == B);
  case OpKind::Ne:
    return mkBoolLit(A != B);
  default:
    fatalError("foldIntOp on non-integer operator");
  }
}

/// Flattens nested And/Or of the same kind and drops literal units.
TermPtr simplifyConnective(OpKind Op, const std::vector<TermPtr> &Args) {
  bool IsAnd = Op == OpKind::And;
  std::vector<TermPtr> Kept;
  for (const TermPtr &A : Args) {
    if (A->getKind() == TermKind::BoolLit) {
      if (A->getBoolValue() == IsAnd)
        continue; // identity element
      return mkBoolLit(!IsAnd);
    }
    if (A->getKind() == TermKind::Op && A->getOp() == Op) {
      for (const TermPtr &Sub : A->getArgs())
        Kept.push_back(Sub);
      continue;
    }
    Kept.push_back(A);
  }
  // Deduplicate syntactically identical conjuncts/disjuncts.
  std::vector<TermPtr> Unique;
  for (const TermPtr &K : Kept) {
    bool Dup = false;
    for (const TermPtr &U : Unique)
      if (termEquals(K, U)) {
        Dup = true;
        break;
      }
    if (!Dup)
      Unique.push_back(K);
  }
  if (Unique.empty())
    return mkBoolLit(IsAnd);
  if (Unique.size() == 1)
    return Unique[0];
  return mkOp(Op, std::move(Unique));
}

TermPtr simplifyOp(const TermPtr &T) {
  OpKind Op = T->getOp();
  const std::vector<TermPtr> &Args = T->getArgs();

  switch (Op) {
  case OpKind::And:
  case OpKind::Or:
    return simplifyConnective(Op, Args);

  case OpKind::Not: {
    const TermPtr &A = Args[0];
    if (A->getKind() == TermKind::BoolLit)
      return mkBoolLit(!A->getBoolValue());
    if (A->getKind() == TermKind::Op && A->getOp() == OpKind::Not)
      return A->getArg(0);
    return T;
  }

  case OpKind::Implies: {
    if (isBoolLit(Args[0], true))
      return Args[1];
    if (isBoolLit(Args[0], false) || isBoolLit(Args[1], true))
      return mkTrue();
    if (isBoolLit(Args[1], false))
      return simplify(mkNot(Args[0]));
    return T;
  }

  case OpKind::Ite: {
    if (isBoolLit(Args[0], true))
      return Args[1];
    if (isBoolLit(Args[0], false))
      return Args[2];
    if (termEquals(Args[1], Args[2]))
      return Args[1];
    if (Args[1]->getType()->isBool() && isBoolLit(Args[1], true) &&
        isBoolLit(Args[2], false))
      return Args[0];
    if (Args[1]->getType()->isBool() && isBoolLit(Args[1], false) &&
        isBoolLit(Args[2], true))
      return simplify(mkNot(Args[0]));
    return T;
  }

  case OpKind::Eq:
  case OpKind::Ne: {
    bool IsEq = Op == OpKind::Eq;
    if (termEquals(Args[0], Args[1]))
      return mkBoolLit(IsEq);
    if (Args[0]->getKind() == TermKind::IntLit &&
        Args[1]->getKind() == TermKind::IntLit)
      return foldIntOp(Op, Args);
    if (Args[0]->getType()->isBool()) {
      // eq(x, true) -> x, eq(x, false) -> not x (and symmetric / Ne duals).
      for (unsigned I = 0; I < 2; ++I) {
        const TermPtr &Lit = Args[I], &Other = Args[1 - I];
        if (Lit->getKind() != TermKind::BoolLit)
          continue;
        bool Pos = Lit->getBoolValue() == IsEq;
        return Pos ? Other : simplify(mkNot(Other));
      }
    }
    return T;
  }

  case OpKind::Add:
    if (allIntLits(Args))
      return foldIntOp(Op, Args);
    if (isIntLit(Args[0], 0))
      return Args[1];
    if (isIntLit(Args[1], 0))
      return Args[0];
    return T;

  case OpKind::Sub:
    if (allIntLits(Args))
      return foldIntOp(Op, Args);
    if (isIntLit(Args[1], 0))
      return Args[0];
    if (termEquals(Args[0], Args[1]))
      return mkIntLit(0);
    return T;

  case OpKind::Mul:
    if (allIntLits(Args))
      return foldIntOp(Op, Args);
    if (isIntLit(Args[0], 0) || isIntLit(Args[1], 0))
      return mkIntLit(0);
    if (isIntLit(Args[0], 1))
      return Args[1];
    if (isIntLit(Args[1], 1))
      return Args[0];
    return T;

  case OpKind::Neg:
    if (allIntLits(Args))
      return foldIntOp(Op, Args);
    if (Args[0]->getKind() == TermKind::Op && Args[0]->getOp() == OpKind::Neg)
      return Args[0]->getArg(0);
    return T;

  case OpKind::Min:
  case OpKind::Max:
    if (allIntLits(Args))
      return foldIntOp(Op, Args);
    if (termEquals(Args[0], Args[1]))
      return Args[0];
    return T;

  case OpKind::Div:
  case OpKind::Mod:
    if (allIntLits(Args) && Args[1]->getIntValue() != 0)
      return foldIntOp(Op, Args);
    return T;

  case OpKind::Abs:
    if (allIntLits(Args))
      return foldIntOp(Op, Args);
    return T;

  case OpKind::Lt:
  case OpKind::Gt:
    if (allIntLits(Args))
      return foldIntOp(Op, Args);
    if (termEquals(Args[0], Args[1]))
      return mkFalse();
    return T;

  case OpKind::Le:
  case OpKind::Ge:
    if (allIntLits(Args))
      return foldIntOp(Op, Args);
    if (termEquals(Args[0], Args[1]))
      return mkTrue();
    return T;
  }
  return T;
}

} // namespace

TermPtr se2gis::simplifyNode(const TermPtr &T) {
  switch (T->getKind()) {
  case TermKind::Op:
    return simplifyOp(T);
  case TermKind::Proj:
    if (T->getArg(0)->getKind() == TermKind::Tuple)
      return T->getArg(0)->getArg(T->getIndex());
    return T;
  default:
    return T;
  }
}

TermPtr se2gis::simplify(const TermPtr &T) {
  return rewriteBottomUp(T, [](const TermPtr &N) { return simplifyNode(N); });
}
