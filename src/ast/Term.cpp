//===- Term.cpp -----------------------------------------------------------===//

#include "ast/Term.h"

#include "support/Diagnostics.h"

#include <atomic>
#include <cassert>
#include <sstream>
#include <unordered_set>

using namespace se2gis;

// --- Variables ---------------------------------------------------------===//

static std::atomic<unsigned> NextVarId{1};

VarPtr se2gis::freshVar(const std::string &BaseName, TypePtr Ty) {
  unsigned Id = NextVarId.fetch_add(1);
  auto V = std::make_shared<Variable>();
  V->Id = Id;
  V->Name = BaseName + std::to_string(Id);
  V->Ty = std::move(Ty);
  return V;
}

VarPtr se2gis::namedVar(const std::string &Name, TypePtr Ty) {
  unsigned Id = NextVarId.fetch_add(1);
  auto V = std::make_shared<Variable>();
  V->Id = Id;
  V->Name = Name;
  V->Ty = std::move(Ty);
  return V;
}

// --- Operator metadata -------------------------------------------------===//

const char *se2gis::opSpelling(OpKind Op) {
  switch (Op) {
  case OpKind::Add:
    return "+";
  case OpKind::Sub:
    return "-";
  case OpKind::Neg:
    return "-";
  case OpKind::Mul:
    return "*";
  case OpKind::Div:
    return "/";
  case OpKind::Mod:
    return "mod";
  case OpKind::Min:
    return "min";
  case OpKind::Max:
    return "max";
  case OpKind::Abs:
    return "abs";
  case OpKind::Lt:
    return "<";
  case OpKind::Le:
    return "<=";
  case OpKind::Gt:
    return ">";
  case OpKind::Ge:
    return ">=";
  case OpKind::Eq:
    return "=";
  case OpKind::Ne:
    return "<>";
  case OpKind::Not:
    return "not";
  case OpKind::And:
    return "&&";
  case OpKind::Or:
    return "||";
  case OpKind::Implies:
    return "=>";
  case OpKind::Ite:
    return "ite";
  }
  fatalError("bad op kind");
}

/// Expected operand count, or 0 if variadic (And/Or).
static unsigned opArity(OpKind Op) {
  switch (Op) {
  case OpKind::Neg:
  case OpKind::Abs:
  case OpKind::Not:
    return 1;
  case OpKind::And:
  case OpKind::Or:
    return 0;
  case OpKind::Ite:
    return 3;
  default:
    return 2;
  }
}

static bool opIsIntToInt(OpKind Op) {
  switch (Op) {
  case OpKind::Add:
  case OpKind::Sub:
  case OpKind::Neg:
  case OpKind::Mul:
  case OpKind::Div:
  case OpKind::Mod:
  case OpKind::Min:
  case OpKind::Max:
  case OpKind::Abs:
    return true;
  default:
    return false;
  }
}

static bool opIsComparison(OpKind Op) {
  switch (Op) {
  case OpKind::Lt:
  case OpKind::Le:
  case OpKind::Gt:
  case OpKind::Ge:
    return true;
  default:
    return false;
  }
}

// --- Hashing -----------------------------------------------------------===//

static std::uint64_t hashString(const std::string &S) {
  std::uint64_t H = 1469598103934665603ULL;
  for (char C : S)
    H = (H ^ static_cast<unsigned char>(C)) * 1099511628211ULL;
  return H;
}

void Term::computeHash() {
  std::uint64_t H = static_cast<std::uint64_t>(Kind) * 0x9e3779b9U;
  switch (Kind) {
  case TermKind::Var:
    H = hashCombine(H, Var->Id);
    break;
  case TermKind::IntLit:
    H = hashCombine(H, static_cast<std::uint64_t>(IntVal));
    break;
  case TermKind::BoolLit:
    H = hashCombine(H, static_cast<std::uint64_t>(IntVal) + 7);
    break;
  case TermKind::Op:
    H = hashCombine(H, static_cast<std::uint64_t>(Op));
    break;
  case TermKind::Proj:
  case TermKind::Hole:
    H = hashCombine(H, Index);
    break;
  case TermKind::Ctor:
    H = hashCombine(H, hashString(Ctor->Name));
    H = hashCombine(H, reinterpret_cast<std::uintptr_t>(Ctor->Parent));
    break;
  case TermKind::Call:
  case TermKind::Unknown:
    H = hashCombine(H, hashString(Callee));
    break;
  case TermKind::Tuple:
    break;
  }
  for (const TermPtr &A : Args)
    H = hashCombine(H, A->hash());
  HashCache = H;
}

// --- Accessors ---------------------------------------------------------===//

const VarPtr &Term::getVar() const {
  assert(Kind == TermKind::Var && "not a variable");
  return Var;
}

long long Term::getIntValue() const {
  assert(Kind == TermKind::IntLit && "not an int literal");
  return IntVal;
}

bool Term::getBoolValue() const {
  assert(Kind == TermKind::BoolLit && "not a bool literal");
  return IntVal != 0;
}

OpKind Term::getOp() const {
  assert(Kind == TermKind::Op && "not an operator application");
  return Op;
}

const TermPtr &Term::getArg(size_t I) const {
  assert(I < Args.size() && "argument index out of range");
  return Args[I];
}

unsigned Term::getIndex() const {
  assert((Kind == TermKind::Proj || Kind == TermKind::Hole) &&
         "node has no index");
  return Index;
}

const ConstructorDecl *Term::getCtor() const {
  assert(Kind == TermKind::Ctor && "not a constructor application");
  return Ctor;
}

const std::string &Term::getCallee() const {
  assert((Kind == TermKind::Call || Kind == TermKind::Unknown) &&
         "node has no callee");
  return Callee;
}

// --- Factories ---------------------------------------------------------===//

TermPtr se2gis::mkVar(const VarPtr &V) {
  assert(V && "null variable");
  auto *T = new Term(TermKind::Var, V->Ty);
  T->Var = V;
  T->computeHash();
  return TermPtr(T);
}

TermPtr se2gis::mkIntLit(long long Value) {
  auto *T = new Term(TermKind::IntLit, Type::intTy());
  T->IntVal = Value;
  T->computeHash();
  return TermPtr(T);
}

TermPtr se2gis::mkBoolLit(bool Value) {
  auto *T = new Term(TermKind::BoolLit, Type::boolTy());
  T->IntVal = Value ? 1 : 0;
  T->computeHash();
  return TermPtr(T);
}

TermPtr se2gis::mkOp(OpKind Op, std::vector<TermPtr> Args) {
  unsigned Arity = opArity(Op);
  assert((Arity == 0 ? Args.size() >= 1 : Args.size() == Arity) &&
         "operator arity mismatch");
  (void)Arity;
  TypePtr Ty;
  if (opIsIntToInt(Op)) {
    for ([[maybe_unused]] const TermPtr &A : Args)
      assert(A->getType()->isInt() && "arith operand must be int");
    Ty = Type::intTy();
  } else if (opIsComparison(Op)) {
    assert(Args[0]->getType()->isInt() && Args[1]->getType()->isInt() &&
           "comparison operands must be int");
    Ty = Type::boolTy();
  } else if (Op == OpKind::Eq || Op == OpKind::Ne) {
    assert(sameType(Args[0]->getType(), Args[1]->getType()) &&
           "equality operands must have the same type");
    Ty = Type::boolTy();
  } else if (Op == OpKind::Ite) {
    assert(Args[0]->getType()->isBool() && "ite condition must be bool");
    assert(sameType(Args[1]->getType(), Args[2]->getType()) &&
           "ite branches must have the same type");
    Ty = Args[1]->getType();
  } else {
    // Boolean connectives.
    for ([[maybe_unused]] const TermPtr &A : Args)
      assert(A->getType()->isBool() && "boolean operand must be bool");
    Ty = Type::boolTy();
  }
  auto *T = new Term(TermKind::Op, Ty);
  T->Op = Op;
  T->Args = std::move(Args);
  T->computeHash();
  return TermPtr(T);
}

TermPtr se2gis::mkTuple(std::vector<TermPtr> Elems) {
  assert(Elems.size() >= 2 && "tuples need at least two elements");
  std::vector<TypePtr> Tys;
  Tys.reserve(Elems.size());
  for (const TermPtr &E : Elems)
    Tys.push_back(E->getType());
  auto *T = new Term(TermKind::Tuple, Type::tupleTy(std::move(Tys)));
  T->Args = std::move(Elems);
  T->computeHash();
  return TermPtr(T);
}

TermPtr se2gis::mkProj(TermPtr Tup, unsigned Index) {
  assert(Tup->getType()->isTuple() && "projection needs a tuple");
  assert(Index < Tup->getType()->tupleElems().size() &&
         "projection index out of range");
  auto *T = new Term(TermKind::Proj, Tup->getType()->tupleElems()[Index]);
  T->Index = Index;
  T->Args.push_back(std::move(Tup));
  T->computeHash();
  return TermPtr(T);
}

TermPtr se2gis::mkCtor(const ConstructorDecl *Ctor,
                       std::vector<TermPtr> Args) {
  assert(Ctor && "null constructor");
  assert(Args.size() == Ctor->Fields.size() && "constructor arity mismatch");
  for (size_t I = 0; I < Args.size(); ++I) {
    assert(sameType(Args[I]->getType(), Ctor->Fields[I]) &&
           "constructor field type mismatch");
    (void)I;
  }
  auto *T = new Term(TermKind::Ctor, Type::dataTy(Ctor->Parent));
  T->Ctor = Ctor;
  T->Index = Ctor->Index;
  T->Args = std::move(Args);
  T->computeHash();
  return TermPtr(T);
}

TermPtr se2gis::mkCall(const std::string &Callee, TypePtr RetTy,
                       std::vector<TermPtr> Args) {
  auto *T = new Term(TermKind::Call, std::move(RetTy));
  T->Callee = Callee;
  T->Args = std::move(Args);
  T->computeHash();
  return TermPtr(T);
}

TermPtr se2gis::mkUnknown(const std::string &Name, TypePtr RetTy,
                          std::vector<TermPtr> Args) {
  auto *T = new Term(TermKind::Unknown, std::move(RetTy));
  T->Callee = Name;
  T->Args = std::move(Args);
  T->computeHash();
  return TermPtr(T);
}

TermPtr se2gis::mkHole(unsigned Index, TypePtr Ty) {
  auto *T = new Term(TermKind::Hole, std::move(Ty));
  T->Index = Index;
  T->computeHash();
  return TermPtr(T);
}

TermPtr se2gis::mkTrue() { return mkBoolLit(true); }
TermPtr se2gis::mkFalse() { return mkBoolLit(false); }

TermPtr se2gis::mkAdd(TermPtr A, TermPtr B) {
  return mkOp(OpKind::Add, {std::move(A), std::move(B)});
}

TermPtr se2gis::mkSub(TermPtr A, TermPtr B) {
  return mkOp(OpKind::Sub, {std::move(A), std::move(B)});
}

TermPtr se2gis::mkEq(TermPtr A, TermPtr B) {
  return mkOp(OpKind::Eq, {std::move(A), std::move(B)});
}

TermPtr se2gis::mkNot(TermPtr A) { return mkOp(OpKind::Not, {std::move(A)}); }

TermPtr se2gis::mkIte(TermPtr C, TermPtr T, TermPtr E) {
  return mkOp(OpKind::Ite, {std::move(C), std::move(T), std::move(E)});
}

TermPtr se2gis::mkAndList(std::vector<TermPtr> Terms) {
  if (Terms.empty())
    return mkTrue();
  if (Terms.size() == 1)
    return Terms[0];
  return mkOp(OpKind::And, std::move(Terms));
}

TermPtr se2gis::mkOrList(std::vector<TermPtr> Terms) {
  if (Terms.empty())
    return mkFalse();
  if (Terms.size() == 1)
    return Terms[0];
  return mkOp(OpKind::Or, std::move(Terms));
}

// --- Structural equality ----------------------------------------------===//

bool se2gis::termEquals(const TermPtr &A, const TermPtr &B) {
  if (A.get() == B.get())
    return true;
  if (!A || !B || A->hash() != B->hash() || A->getKind() != B->getKind())
    return false;
  if (A->numArgs() != B->numArgs())
    return false;
  switch (A->getKind()) {
  case TermKind::Var:
    if (A->getVar()->Id != B->getVar()->Id)
      return false;
    break;
  case TermKind::IntLit:
    if (A->getIntValue() != B->getIntValue())
      return false;
    break;
  case TermKind::BoolLit:
    if (A->getBoolValue() != B->getBoolValue())
      return false;
    break;
  case TermKind::Op:
    if (A->getOp() != B->getOp())
      return false;
    break;
  case TermKind::Proj:
  case TermKind::Hole:
    if (A->getIndex() != B->getIndex())
      return false;
    break;
  case TermKind::Ctor:
    if (A->getCtor() != B->getCtor())
      return false;
    break;
  case TermKind::Call:
  case TermKind::Unknown:
    if (A->getCallee() != B->getCallee())
      return false;
    break;
  case TermKind::Tuple:
    break;
  }
  for (size_t I = 0; I < A->numArgs(); ++I)
    if (!termEquals(A->getArg(I), B->getArg(I)))
      return false;
  return true;
}

// --- Traversal helpers --------------------------------------------------===//

void se2gis::visitTerm(const TermPtr &T,
                       const std::function<bool(const TermPtr &)> &Fn) {
  if (!Fn(T))
    return;
  for (const TermPtr &A : T->getArgs())
    visitTerm(A, Fn);
}

std::vector<VarPtr> se2gis::freeVars(const TermPtr &T) {
  std::vector<VarPtr> Result;
  std::unordered_set<unsigned> Seen;
  visitTerm(T, [&](const TermPtr &N) {
    if (N->getKind() == TermKind::Var && Seen.insert(N->getVar()->Id).second)
      Result.push_back(N->getVar());
    return true;
  });
  return Result;
}

bool se2gis::occursFree(const TermPtr &T, unsigned Id) {
  bool Found = false;
  visitTerm(T, [&](const TermPtr &N) {
    if (Found)
      return false;
    if (N->getKind() == TermKind::Var && N->getVar()->Id == Id)
      Found = true;
    return !Found;
  });
  return Found;
}

TermPtr se2gis::rewriteBottomUp(
    const TermPtr &T, const std::function<TermPtr(const TermPtr &)> &Fn) {
  bool Changed = false;
  std::vector<TermPtr> NewArgs;
  NewArgs.reserve(T->numArgs());
  for (const TermPtr &A : T->getArgs()) {
    TermPtr NA = rewriteBottomUp(A, Fn);
    Changed |= NA.get() != A.get();
    NewArgs.push_back(std::move(NA));
  }
  TermPtr Rebuilt = T;
  if (Changed) {
    switch (T->getKind()) {
    case TermKind::Op:
      Rebuilt = mkOp(T->getOp(), std::move(NewArgs));
      break;
    case TermKind::Tuple:
      Rebuilt = mkTuple(std::move(NewArgs));
      break;
    case TermKind::Proj:
      Rebuilt = mkProj(std::move(NewArgs[0]), T->getIndex());
      break;
    case TermKind::Ctor:
      Rebuilt = mkCtor(T->getCtor(), std::move(NewArgs));
      break;
    case TermKind::Call:
      Rebuilt = mkCall(T->getCallee(), T->getType(), std::move(NewArgs));
      break;
    case TermKind::Unknown:
      Rebuilt = mkUnknown(T->getCallee(), T->getType(), std::move(NewArgs));
      break;
    default:
      fatalError("leaf node with arguments");
    }
  }
  return Fn(Rebuilt);
}

TermPtr se2gis::substitute(const TermPtr &T, const Substitution &Map) {
  if (Map.empty())
    return T;
  return rewriteBottomUp(T, [&](const TermPtr &N) -> TermPtr {
    if (N->getKind() != TermKind::Var)
      return N;
    for (const auto &[Id, Replacement] : Map)
      if (Id == N->getVar()->Id)
        return Replacement;
    return N;
  });
}

TermPtr se2gis::fillHoles(const TermPtr &T, const std::vector<TermPtr> &Fill) {
  return rewriteBottomUp(T, [&](const TermPtr &N) -> TermPtr {
    if (N->getKind() == TermKind::Hole && N->getIndex() < Fill.size() &&
        Fill[N->getIndex()])
      return Fill[N->getIndex()];
    return N;
  });
}

size_t se2gis::termSize(const TermPtr &T) {
  size_t Count = 0;
  visitTerm(T, [&](const TermPtr &) {
    ++Count;
    return true;
  });
  return Count;
}

bool se2gis::containsUnknown(const TermPtr &T) {
  bool Found = false;
  visitTerm(T, [&](const TermPtr &N) {
    if (N->getKind() == TermKind::Unknown)
      Found = true;
    return !Found;
  });
  return Found;
}

bool se2gis::containsCall(const TermPtr &T) {
  bool Found = false;
  visitTerm(T, [&](const TermPtr &N) {
    if (N->getKind() == TermKind::Call)
      Found = true;
    return !Found;
  });
  return Found;
}

// --- Printing -----------------------------------------------------------===//

namespace {

/// Precedence levels, higher binds tighter.
int opPrecedence(OpKind Op) {
  switch (Op) {
  case OpKind::Implies:
    return 1;
  case OpKind::Or:
    return 2;
  case OpKind::And:
    return 3;
  case OpKind::Eq:
  case OpKind::Ne:
  case OpKind::Lt:
  case OpKind::Le:
  case OpKind::Gt:
  case OpKind::Ge:
    return 4;
  case OpKind::Add:
  case OpKind::Sub:
    return 5;
  case OpKind::Mul:
  case OpKind::Div:
  case OpKind::Mod:
    return 6;
  default:
    return 7;
  }
}

void printTerm(const Term &T, std::ostringstream &OS, int ParentPrec);

void printInfix(const Term &T, std::ostringstream &OS, int ParentPrec) {
  int Prec = opPrecedence(T.getOp());
  if (Prec < ParentPrec)
    OS << '(';
  for (size_t I = 0; I < T.numArgs(); ++I) {
    if (I)
      OS << ' ' << opSpelling(T.getOp()) << ' ';
    printTerm(*T.getArg(I), OS, Prec + 1);
  }
  if (Prec < ParentPrec)
    OS << ')';
}

void printTerm(const Term &T, std::ostringstream &OS, int ParentPrec) {
  switch (T.getKind()) {
  case TermKind::Var:
    OS << T.getVar()->Name;
    return;
  case TermKind::IntLit:
    OS << T.getIntValue();
    return;
  case TermKind::BoolLit:
    OS << (T.getBoolValue() ? "true" : "false");
    return;
  case TermKind::Hole:
    OS << "◦" << T.getIndex();
    return;
  case TermKind::Proj:
    printTerm(*T.getArg(0), OS, 8);
    OS << '.' << T.getIndex();
    return;
  case TermKind::Tuple: {
    OS << '(';
    for (size_t I = 0; I < T.numArgs(); ++I) {
      if (I)
        OS << ", ";
      printTerm(*T.getArg(I), OS, 0);
    }
    OS << ')';
    return;
  }
  case TermKind::Ctor: {
    OS << T.getCtor()->Name;
    if (T.numArgs() == 0)
      return;
    OS << '(';
    for (size_t I = 0; I < T.numArgs(); ++I) {
      if (I)
        OS << ", ";
      printTerm(*T.getArg(I), OS, 0);
    }
    OS << ')';
    return;
  }
  case TermKind::Call:
  case TermKind::Unknown: {
    if (T.getKind() == TermKind::Unknown)
      OS << '$';
    OS << T.getCallee() << '(';
    for (size_t I = 0; I < T.numArgs(); ++I) {
      if (I)
        OS << ", ";
      printTerm(*T.getArg(I), OS, 0);
    }
    OS << ')';
    return;
  }
  case TermKind::Op: {
    OpKind Op = T.getOp();
    switch (Op) {
    case OpKind::Not:
      OS << "not ";
      printTerm(*T.getArg(0), OS, 8);
      return;
    case OpKind::Neg:
      OS << "-";
      printTerm(*T.getArg(0), OS, 8);
      return;
    case OpKind::Min:
    case OpKind::Max:
    case OpKind::Abs: {
      OS << opSpelling(Op) << '(';
      for (size_t I = 0; I < T.numArgs(); ++I) {
        if (I)
          OS << ", ";
        printTerm(*T.getArg(I), OS, 0);
      }
      OS << ')';
      return;
    }
    case OpKind::Ite: {
      if (ParentPrec > 0)
        OS << '(';
      OS << "if ";
      printTerm(*T.getArg(0), OS, 0);
      OS << " then ";
      printTerm(*T.getArg(1), OS, 0);
      OS << " else ";
      printTerm(*T.getArg(2), OS, 0);
      if (ParentPrec > 0)
        OS << ')';
      return;
    }
    default:
      printInfix(T, OS, ParentPrec);
      return;
    }
  }
  }
}

} // namespace

std::string Term::str() const {
  std::ostringstream OS;
  printTerm(*this, OS, 0);
  return OS.str();
}
