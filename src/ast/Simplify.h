//===- Simplify.h - Canonicalizing term simplifier --------------*- C++-*-===//
///
/// \file
/// Bottom-up simplification: constant folding plus a fixed set of algebraic
/// identities. The simplifier is deterministic, which matters beyond
/// readability: frame equality in the functional-unrealizability check
/// (Definition 6.3) is *syntactic*, so equal computations must reach equal
/// normal forms.
///
/// Integer division and modulo follow Z3's Euclidean semantics so that the
/// simplifier, the concrete evaluator, and the SMT backend agree.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_AST_SIMPLIFY_H
#define SE2GIS_AST_SIMPLIFY_H

#include "ast/Term.h"

namespace se2gis {

/// Simplifies \p T bottom-up; idempotent.
TermPtr simplify(const TermPtr &T);

/// Applies the local simplification rules to the root node of \p T only,
/// assuming all children are already in normal form. Used by evaluators that
/// normalize bottom-up themselves.
TermPtr simplifyNode(const TermPtr &T);

/// Euclidean division (the remainder is always non-negative), matching Z3's
/// integer `div`. Division by zero yields 0 by convention.
long long euclidDiv(long long A, long long B);

/// Euclidean modulo, matching Z3's integer `mod`. Modulo by zero yields 0.
long long euclidMod(long long A, long long B);

} // namespace se2gis

#endif // SE2GIS_AST_SIMPLIFY_H
