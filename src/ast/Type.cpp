//===- Type.cpp -----------------------------------------------------------===//

#include "ast/Type.h"

#include "support/Diagnostics.h"

#include <cassert>

using namespace se2gis;

TypePtr Type::intTy() {
  static TypePtr T(new Type(TypeKind::Int));
  return T;
}

TypePtr Type::boolTy() {
  static TypePtr T(new Type(TypeKind::Bool));
  return T;
}

TypePtr Type::tupleTy(std::vector<TypePtr> Elems) {
  assert(Elems.size() >= 2 && "tuples need at least two elements");
  auto *T = new Type(TypeKind::Tuple);
  T->Elems = std::move(Elems);
  return TypePtr(T);
}

TypePtr Type::dataTy(const Datatype *D) {
  assert(D && "null datatype");
  auto *T = new Type(TypeKind::Data);
  T->Data = D;
  return TypePtr(T);
}

bool Type::isScalar() const {
  switch (Kind) {
  case TypeKind::Int:
  case TypeKind::Bool:
    return true;
  case TypeKind::Tuple:
    for (const TypePtr &E : Elems)
      if (!E->isScalar())
        return false;
    return true;
  case TypeKind::Data:
    return false;
  }
  fatalError("bad type kind");
}

const std::vector<TypePtr> &Type::tupleElems() const {
  assert(isTuple() && "not a tuple type");
  return Elems;
}

const Datatype *Type::getDatatype() const {
  assert(isData() && "not a data type");
  return Data;
}

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Int:
    return "int";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Data:
    return Data->getName();
  case TypeKind::Tuple: {
    std::string S = "(";
    for (size_t I = 0; I < Elems.size(); ++I) {
      if (I)
        S += " * ";
      S += Elems[I]->str();
    }
    return S + ")";
  }
  }
  fatalError("bad type kind");
}

bool se2gis::sameType(const TypePtr &A, const TypePtr &B) {
  if (A.get() == B.get())
    return true;
  if (!A || !B || A->getKind() != B->getKind())
    return false;
  switch (A->getKind()) {
  case TypeKind::Int:
  case TypeKind::Bool:
    return true;
  case TypeKind::Data:
    return A->getDatatype() == B->getDatatype();
  case TypeKind::Tuple: {
    const auto &EA = A->tupleElems(), &EB = B->tupleElems();
    if (EA.size() != EB.size())
      return false;
    for (size_t I = 0; I < EA.size(); ++I)
      if (!sameType(EA[I], EB[I]))
        return false;
    return true;
  }
  }
  return false;
}

bool ConstructorDecl::isDataField(unsigned I) const {
  assert(I < Fields.size() && "field index out of range");
  return Fields[I]->isData();
}

unsigned Datatype::addConstructor(std::string CtorName,
                                  std::vector<TypePtr> Fields) {
  ConstructorDecl C;
  C.Name = std::move(CtorName);
  C.Fields = std::move(Fields);
  C.Parent = this;
  C.Index = static_cast<unsigned>(Ctors.size());
  Ctors.push_back(std::move(C));
  return Ctors.back().Index;
}

const ConstructorDecl &Datatype::getConstructor(unsigned I) const {
  assert(I < Ctors.size() && "constructor index out of range");
  return Ctors[I];
}

const ConstructorDecl *
Datatype::findConstructor(const std::string &CtorName) const {
  for (const ConstructorDecl &C : Ctors)
    if (C.Name == CtorName)
      return &C;
  return nullptr;
}

bool Datatype::isBaseConstructor(unsigned I) const {
  const ConstructorDecl &C = getConstructor(I);
  for (unsigned F = 0; F < C.Fields.size(); ++F)
    if (C.isDataField(F))
      return false;
  return true;
}
