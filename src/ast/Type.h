//===- Type.h - Base types, tuples and algebraic data types -----*- C++-*-===//
///
/// \file
/// The type language of the synthesis problems (paper §3): scalar base types
/// (Int, Bool), tuples of base types, and recursive algebraic data types.
/// Recursive types are the \c Datatype declarations; every other type is a
/// *base type* in the paper's sense and may appear as the domain/range of the
/// unknown functions.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_AST_TYPE_H
#define SE2GIS_AST_TYPE_H

#include <memory>
#include <string>
#include <vector>

namespace se2gis {

class Type;
class Datatype;
using TypePtr = std::shared_ptr<const Type>;

/// Discriminator for the type language.
enum class TypeKind : unsigned char { Int, Bool, Tuple, Data };

/// An immutable type. Construct via the static factories; Int and Bool are
/// shared singletons.
class Type {
public:
  TypeKind getKind() const { return Kind; }

  /// The Int base type singleton.
  static TypePtr intTy();
  /// The Bool base type singleton.
  static TypePtr boolTy();
  /// A tuple of the given element types (at least two elements).
  static TypePtr tupleTy(std::vector<TypePtr> Elems);
  /// The type of values of the algebraic datatype \p D.
  static TypePtr dataTy(const Datatype *D);

  bool isInt() const { return Kind == TypeKind::Int; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isTuple() const { return Kind == TypeKind::Tuple; }
  bool isData() const { return Kind == TypeKind::Data; }

  /// \returns true for base (paper: scalar) types: Int, Bool, or tuples
  /// thereof. These are the only legal unknown-function domains/ranges.
  bool isScalar() const;

  /// Tuple element types; asserts this is a tuple.
  const std::vector<TypePtr> &tupleElems() const;

  /// The datatype declaration; asserts this is a data type.
  const Datatype *getDatatype() const;

  /// Human-readable rendering, e.g. "int", "(int * bool)", "list".
  std::string str() const;

private:
  explicit Type(TypeKind Kind) : Kind(Kind) {}

  TypeKind Kind;
  std::vector<TypePtr> Elems;
  const Datatype *Data = nullptr;
};

/// Structural type equality (datatypes compare by declaration identity).
bool sameType(const TypePtr &A, const TypePtr &B);

/// One constructor of an algebraic datatype, e.g. `Cons of int * list`.
struct ConstructorDecl {
  std::string Name;
  std::vector<TypePtr> Fields;
  /// The declaring datatype.
  const Datatype *Parent = nullptr;
  /// Position within the datatype's constructor list.
  unsigned Index = 0;

  /// \returns true if field \p I is of some datatype (recursive position in
  /// the broad sense: it may be the parent type or another datatype).
  bool isDataField(unsigned I) const;
};

/// A (possibly recursive) algebraic datatype declaration.
///
/// Built in two phases so constructors may mention the datatype itself:
/// create the \c Datatype, obtain its type via \c Type::dataTy, then add
/// constructors.
class Datatype {
public:
  explicit Datatype(std::string Name) : Name(std::move(Name)) {}

  Datatype(const Datatype &) = delete;
  Datatype &operator=(const Datatype &) = delete;

  const std::string &getName() const { return Name; }

  /// Registers a constructor; returns its index.
  unsigned addConstructor(std::string CtorName, std::vector<TypePtr> Fields);

  unsigned numConstructors() const {
    return static_cast<unsigned>(Ctors.size());
  }
  const ConstructorDecl &getConstructor(unsigned I) const;

  /// Looks a constructor up by name; returns nullptr if absent.
  const ConstructorDecl *findConstructor(const std::string &CtorName) const;

  /// \returns true if constructor \p I has no datatype-typed fields (a base
  /// case of the recursion).
  bool isBaseConstructor(unsigned I) const;

private:
  std::string Name;
  std::vector<ConstructorDecl> Ctors;
};

} // namespace se2gis

#endif // SE2GIS_AST_TYPE_H
