//===- Term.h - Immutable symbolic terms ------------------------*- C++-*-===//
///
/// \file
/// The term language (paper §3): symbolic terms over terminal symbols and
/// typed variables, with a distinguished set of indexed holes used to build
/// frames (paper §6). Terms are immutable, shared, and carry a cached
/// structural hash so that syntactic frame equality (Definition 6.3) is
/// cheap.
///
/// Node kinds:
///   Var      - a typed variable occurrence
///   IntLit   - integer literal
///   BoolLit  - boolean literal
///   Op       - application of a builtin scalar operator (arith/bool/ite)
///   Tuple    - tuple construction; Proj - tuple projection
///   Ctor     - datatype constructor application
///   Call     - application of a named recursive/plain function
///   Unknown  - application of an unknown function from the skeleton's U
///   Hole     - indexed placeholder (frames only)
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_AST_TERM_H
#define SE2GIS_AST_TERM_H

#include "ast/Type.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace se2gis {

class Term;
using TermPtr = std::shared_ptr<const Term>;

/// A typed variable. Variables are identified by their unique Id; names are
/// for printing only.
struct Variable {
  unsigned Id;
  std::string Name;
  TypePtr Ty;
};
using VarPtr = std::shared_ptr<const Variable>;

/// Creates a fresh variable with a globally unique id, named
/// "<BaseName><id>".
VarPtr freshVar(const std::string &BaseName, TypePtr Ty);

/// Creates a variable with an explicit display name and a fresh id.
VarPtr namedVar(const std::string &Name, TypePtr Ty);

/// Term node discriminator.
enum class TermKind : unsigned char {
  Var,
  IntLit,
  BoolLit,
  Op,
  Tuple,
  Proj,
  Ctor,
  Call,
  Unknown,
  Hole
};

/// Builtin scalar operators.
enum class OpKind : unsigned char {
  // Integer arithmetic.
  Add,
  Sub,
  Neg,
  Mul,
  Div,
  Mod,
  Min,
  Max,
  Abs,
  // Integer comparisons.
  Lt,
  Le,
  Gt,
  Ge,
  // Polymorphic (scalar) equality.
  Eq,
  Ne,
  // Boolean connectives.
  Not,
  And,
  Or,
  Implies,
  // Conditional (scalar-typed branches).
  Ite
};

/// \returns the printed spelling of \p Op (e.g. "+", "&&", "min").
const char *opSpelling(OpKind Op);

/// A 64-bit variant of boost::hash_combine. Shared by the structural term
/// hash and the enumerator's observational-equivalence signatures.
inline std::uint64_t hashCombine(std::uint64_t Seed, std::uint64_t V) {
  return Seed ^ (V + 0x9e3779b97f4a7c15ULL + (Seed << 12) + (Seed >> 4));
}

/// An immutable term node. Use the mk* factories below.
class Term {
public:
  TermKind getKind() const { return Kind; }
  const TypePtr &getType() const { return Ty; }
  std::uint64_t hash() const { return HashCache; }

  // --- Var ---
  const VarPtr &getVar() const;

  // --- Literals ---
  long long getIntValue() const;
  bool getBoolValue() const;

  // --- Op ---
  OpKind getOp() const;

  // --- Compound nodes ---
  const std::vector<TermPtr> &getArgs() const { return Args; }
  size_t numArgs() const { return Args.size(); }
  const TermPtr &getArg(size_t I) const;

  // --- Proj / Hole ---
  unsigned getIndex() const;

  // --- Ctor ---
  const ConstructorDecl *getCtor() const;

  // --- Call / Unknown ---
  const std::string &getCallee() const;

  /// Pretty-prints with infix operators and minimal parentheses.
  std::string str() const;

  /// The memoized *shape* hash (canonical structure hash with variable ids
  /// abstracted away; see cache/Canonical.cpp). Unlike \c hash() it cannot
  /// be computed eagerly at construction without walking shared subtrees
  /// repeatedly, so the canonicalizer fills it lazily. 0 means "not yet
  /// computed" (the hasher never produces 0). Relaxed atomics: the value is
  /// a pure function of the immutable structure, so a racing recompute
  /// stores the same bits.
  std::uint64_t cachedShapeHash() const {
    return ShapeHashCache.load(std::memory_order_relaxed);
  }
  void cacheShapeHash(std::uint64_t H) const {
    ShapeHashCache.store(H, std::memory_order_relaxed);
  }

private:
  friend TermPtr mkVar(const VarPtr &V);
  friend TermPtr mkIntLit(long long Value);
  friend TermPtr mkBoolLit(bool Value);
  friend TermPtr mkOp(OpKind Op, std::vector<TermPtr> Args);
  friend TermPtr mkTuple(std::vector<TermPtr> Elems);
  friend TermPtr mkProj(TermPtr Tup, unsigned Index);
  friend TermPtr mkCtor(const ConstructorDecl *Ctor,
                        std::vector<TermPtr> Args);
  friend TermPtr mkCall(const std::string &Callee, TypePtr RetTy,
                        std::vector<TermPtr> Args);
  friend TermPtr mkUnknown(const std::string &Name, TypePtr RetTy,
                           std::vector<TermPtr> Args);
  friend TermPtr mkHole(unsigned Index, TypePtr Ty);

  Term(TermKind Kind, TypePtr Ty) : Kind(Kind), Ty(std::move(Ty)) {}
  void computeHash();

  TermKind Kind;
  OpKind Op = OpKind::Add;
  unsigned Index = 0;
  long long IntVal = 0;
  TypePtr Ty;
  VarPtr Var;
  const ConstructorDecl *Ctor = nullptr;
  std::string Callee;
  std::vector<TermPtr> Args;
  std::uint64_t HashCache = 0;
  mutable std::atomic<std::uint64_t> ShapeHashCache{0};
};

// --- Factories --------------------------------------------------------===//

TermPtr mkVar(const VarPtr &V);
TermPtr mkIntLit(long long Value);
TermPtr mkBoolLit(bool Value);
/// Builds an operator application; asserts arity and operand types.
TermPtr mkOp(OpKind Op, std::vector<TermPtr> Args);
TermPtr mkTuple(std::vector<TermPtr> Elems);
TermPtr mkProj(TermPtr Tup, unsigned Index);
TermPtr mkCtor(const ConstructorDecl *Ctor, std::vector<TermPtr> Args);
TermPtr mkCall(const std::string &Callee, TypePtr RetTy,
               std::vector<TermPtr> Args);
TermPtr mkUnknown(const std::string &Name, TypePtr RetTy,
                  std::vector<TermPtr> Args);
TermPtr mkHole(unsigned Index, TypePtr Ty);

// --- Convenience builders ---------------------------------------------===//

TermPtr mkTrue();
TermPtr mkFalse();
TermPtr mkAdd(TermPtr A, TermPtr B);
TermPtr mkSub(TermPtr A, TermPtr B);
TermPtr mkEq(TermPtr A, TermPtr B);
TermPtr mkNot(TermPtr A);
TermPtr mkIte(TermPtr C, TermPtr T, TermPtr E);
/// Conjunction of \p Terms; returns true for an empty list.
TermPtr mkAndList(std::vector<TermPtr> Terms);
/// Disjunction of \p Terms; returns false for an empty list.
TermPtr mkOrList(std::vector<TermPtr> Terms);

// --- Structural operations --------------------------------------------===//

/// Deep structural equality (variables compare by id, datatypes by identity).
bool termEquals(const TermPtr &A, const TermPtr &B);

/// Collects the distinct free variables of \p T in first-occurrence order.
std::vector<VarPtr> freeVars(const TermPtr &T);

/// \returns true if variable \p Id occurs free in \p T.
bool occursFree(const TermPtr &T, unsigned Id);

/// Capture-free substitution of variables by terms (terms are closed w.r.t.
/// binding, so this is a plain replacement).
using Substitution = std::vector<std::pair<unsigned, TermPtr>>;
TermPtr substitute(const TermPtr &T, const Substitution &Map);

/// Replaces holes by terms: hole i becomes Fill[i]. Holes with indices
/// outside \p Fill are left untouched.
TermPtr fillHoles(const TermPtr &T, const std::vector<TermPtr> &Fill);

/// Applies \p Fn to every node of \p T in pre-order (parents before
/// children). Return false from \p Fn to skip a node's children.
void visitTerm(const TermPtr &T, const std::function<bool(const TermPtr &)> &Fn);

/// Rebuilds \p T bottom-up, applying \p Fn to each node after its children
/// have been rebuilt. \p Fn may return its argument unchanged.
TermPtr rewriteBottomUp(const TermPtr &T,
                        const std::function<TermPtr(const TermPtr &)> &Fn);

/// Total number of nodes in \p T.
size_t termSize(const TermPtr &T);

/// \returns true if \p T contains any Unknown node.
bool containsUnknown(const TermPtr &T);

/// \returns true if \p T contains any Call node.
bool containsCall(const TermPtr &T);

} // namespace se2gis

#endif // SE2GIS_AST_TERM_H
