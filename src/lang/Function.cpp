//===- Function.cpp -------------------------------------------------------===//

#include "lang/Function.h"

#include "support/Diagnostics.h"

#include <cassert>
#include <sstream>

using namespace se2gis;

RecFunction RecFunction::makeScheme(std::string Name,
                                    std::vector<VarPtr> Extras,
                                    const Datatype *Matched, TypePtr RetTy) {
  assert(Matched && "scheme function needs a matched datatype");
  RecFunction F;
  F.Name = std::move(Name);
  F.Kind = FunctionKind::Scheme;
  F.Params = std::move(Extras);
  F.Matched = Matched;
  F.RetTy = std::move(RetTy);
  return F;
}

RecFunction RecFunction::makePlain(std::string Name, std::vector<VarPtr> Params,
                                   TermPtr Body) {
  assert(Body && "plain function needs a body");
  RecFunction F;
  F.Name = std::move(Name);
  F.Kind = FunctionKind::Plain;
  F.Params = std::move(Params);
  F.RetTy = Body->getType();
  F.Body = std::move(Body);
  return F;
}

void RecFunction::addRule(unsigned CtorIndex, std::vector<VarPtr> FieldVars,
                          TermPtr Body) {
  assert(Kind == FunctionKind::Scheme && "rules only on scheme functions");
  assert(CtorIndex < Matched->numConstructors() && "bad constructor index");
  assert(!findRule(CtorIndex) && "duplicate rule for constructor");
  assert(sameType(Body->getType(), RetTy) && "rule body type mismatch");
  const ConstructorDecl &C = Matched->getConstructor(CtorIndex);
  assert(FieldVars.size() == C.Fields.size() && "field variable count");
  (void)C;
  SchemeRule R;
  R.CtorIndex = CtorIndex;
  R.FieldVars = std::move(FieldVars);
  R.Body = std::move(Body);
  Rules.push_back(std::move(R));
}

const SchemeRule *RecFunction::findRule(unsigned CtorIndex) const {
  for (const SchemeRule &R : Rules)
    if (R.CtorIndex == CtorIndex)
      return &R;
  return nullptr;
}

const TermPtr &RecFunction::getBody() const {
  assert(Kind == FunctionKind::Plain && "only plain functions have a body");
  return Body;
}

bool RecFunction::isComplete() const {
  if (Kind == FunctionKind::Plain)
    return Body != nullptr;
  return Rules.size() == Matched->numConstructors();
}

std::string RecFunction::str() const {
  std::ostringstream OS;
  OS << "let " << (isScheme() ? "rec " : "") << Name;
  for (const VarPtr &P : Params)
    OS << ' ' << P->Name;
  if (Kind == FunctionKind::Plain) {
    OS << " = " << Body->str();
    return OS.str();
  }
  OS << " = function";
  for (unsigned I = 0; I < Matched->numConstructors(); ++I) {
    const SchemeRule *R = findRule(I);
    if (!R)
      continue;
    const ConstructorDecl &C = Matched->getConstructor(I);
    OS << "\n  | " << C.Name;
    if (!R->FieldVars.empty()) {
      OS << " (";
      for (size_t F = 0; F < R->FieldVars.size(); ++F) {
        if (F)
          OS << ", ";
        OS << R->FieldVars[F]->Name;
      }
      OS << ')';
    }
    OS << " -> " << R->Body->str();
  }
  return OS.str();
}
