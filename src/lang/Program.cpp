//===- Program.cpp --------------------------------------------------------===//

#include "lang/Program.h"

#include "support/Diagnostics.h"

#include <cassert>

using namespace se2gis;

Datatype *Program::addDatatype(const std::string &Name) {
  if (DatatypeIndex.count(Name))
    userError("datatype '" + Name + "' is already defined");
  Datatypes.push_back(std::make_unique<Datatype>(Name));
  Datatype *D = Datatypes.back().get();
  DatatypeIndex[Name] = D;
  DatatypeTypes[Name] = Type::dataTy(D);
  return D;
}

const Datatype *Program::findDatatype(const std::string &Name) const {
  auto It = DatatypeIndex.find(Name);
  return It == DatatypeIndex.end() ? nullptr : It->second;
}

TypePtr Program::getDataType(const std::string &Name) const {
  auto It = DatatypeTypes.find(Name);
  if (It == DatatypeTypes.end())
    userError("unknown datatype '" + Name + "'");
  return It->second;
}

void Program::addFunction(RecFunction F) {
  const std::string &Name = F.getName();
  if (Functions.count(Name))
    userError("function '" + Name + "' is already defined");
  FunctionOrder.push_back(Name);
  Functions.emplace(Name, std::move(F));
}

const RecFunction *Program::findFunction(const std::string &Name) const {
  auto It = Functions.find(Name);
  return It == Functions.end() ? nullptr : &It->second;
}

const UnknownSig *Problem::findUnknown(const std::string &Name) const {
  for (const UnknownSig &U : Unknowns)
    if (U.Name == Name)
      return &U;
  return nullptr;
}

void se2gis::addIdentityRepr(Program &Prog, const Datatype *D,
                             const std::string &Name) {
  TypePtr DTy = Type::dataTy(D);
  RecFunction R = RecFunction::makeScheme(Name, {}, D, DTy);
  for (unsigned CI = 0; CI < D->numConstructors(); ++CI) {
    const ConstructorDecl &C = D->getConstructor(CI);
    std::vector<VarPtr> Fields;
    std::vector<TermPtr> Args;
    for (const TypePtr &FT : C.Fields) {
      VarPtr V = freshVar("i", FT);
      Fields.push_back(V);
      // Recurse on fields of the same datatype; other fields (including
      // fields of *other* datatypes) pass through unchanged, which is still
      // the identity.
      if (FT->isData() && FT->getDatatype() == D)
        Args.push_back(mkCall(Name, DTy, {mkVar(V)}));
      else
        Args.push_back(mkVar(V));
    }
    R.addRule(CI, std::move(Fields), mkCtor(&C, std::move(Args)));
  }
  Prog.addFunction(std::move(R));
}

namespace {

/// Checks that every call to \p Self inside \p Body passes the extra
/// parameters \p Extras through unchanged (positionally, as plain variable
/// references). This is the pass-through property recursion elimination
/// relies on: `f(e⃗, r(y))` and `G(e⃗, y)` can then be keyed by `y` alone.
void checkPassThrough(const std::string &Self,
                      const std::vector<VarPtr> &Extras, const TermPtr &Body) {
  visitTerm(Body, [&](const TermPtr &N) {
    if (N->getKind() != TermKind::Call || N->getCallee() != Self)
      return true;
    if (N->numArgs() != Extras.size() + 1)
      userError("recursive call to '" + Self + "' has wrong arity");
    for (size_t I = 0; I < Extras.size(); ++I) {
      const TermPtr &A = N->getArg(I);
      if (A->getKind() != TermKind::Var || A->getVar()->Id != Extras[I]->Id)
        userError("recursive call to '" + Self +
                  "' must pass extra parameter '" + Extras[I]->Name +
                  "' through unchanged");
    }
    return true;
  });
}

void collectUnknownsFrom(const TermPtr &Body, std::vector<UnknownSig> &Out) {
  visitTerm(Body, [&](const TermPtr &N) {
    if (N->getKind() != TermKind::Unknown)
      return true;
    UnknownSig Sig;
    Sig.Name = N->getCallee();
    Sig.RetTy = N->getType();
    for (const TermPtr &A : N->getArgs()) {
      if (!A->getType()->isScalar())
        userError("unknown '$" + Sig.Name +
                  "' is applied to a non-scalar argument");
      Sig.ArgTypes.push_back(A->getType());
    }
    if (!Sig.RetTy->isScalar())
      userError("unknown '$" + Sig.Name + "' has a non-scalar return type");
    for (const UnknownSig &Existing : Out) {
      if (Existing.Name != Sig.Name)
        continue;
      bool Same = sameType(Existing.RetTy, Sig.RetTy) &&
                  Existing.ArgTypes.size() == Sig.ArgTypes.size();
      if (Same)
        for (size_t I = 0; I < Sig.ArgTypes.size(); ++I)
          Same &= sameType(Existing.ArgTypes[I], Sig.ArgTypes[I]);
      if (!Same)
        userError("unknown '$" + Sig.Name +
                  "' is used with inconsistent signatures");
      return true;
    }
    Out.push_back(std::move(Sig));
    return true;
  });
}

const RecFunction *requireFunction(const Program &Prog,
                                   const std::string &Name,
                                   const char *Role) {
  const RecFunction *F = Prog.findFunction(Name);
  if (!F)
    userError(std::string(Role) + " function '" + Name + "' is not defined");
  if (!F->isComplete())
    userError(std::string(Role) + " function '" + Name + "' is incomplete");
  return F;
}

void requireNoUnknowns(const RecFunction &F, const char *Role) {
  auto Check = [&](const TermPtr &Body) {
    if (containsUnknown(Body))
      userError(std::string(Role) + " function '" + F.getName() +
                "' must not contain unknowns");
  };
  if (!F.isScheme()) {
    Check(F.getBody());
    return;
  }
  for (unsigned I = 0; I < F.getMatched()->numConstructors(); ++I)
    if (const SchemeRule *R = F.findRule(I))
      Check(R->Body);
}

} // namespace

void se2gis::validateProblem(const Problem &P) {
  if (!P.Prog)
    userError("problem has no program");
  const Program &Prog = *P.Prog;

  const RecFunction *F = requireFunction(Prog, P.Reference, "reference");
  const RecFunction *G = requireFunction(Prog, P.Target, "target");
  const RecFunction *R = requireFunction(Prog, P.Repr, "representation");

  if (!F->isScheme() || !G->isScheme() || !R->isScheme())
    userError("reference, target and representation must be recursion "
              "schemes");
  if (F->getMatched() != P.Tau)
    userError("reference function does not match on the source type");
  if (G->getMatched() != P.Theta)
    userError("target skeleton does not match on the destination type");
  if (R->getMatched() != P.Theta || !R->getParams().empty())
    userError("representation function must be r : theta -> tau with no "
              "extra parameters");
  if (!R->getReturnType()->isData() ||
      R->getReturnType()->getDatatype() != P.Tau)
    userError("representation function must return the source type");

  if (!sameType(F->getReturnType(), G->getReturnType()))
    userError("reference and target must have the same return type");
  if (!F->getReturnType()->isScalar())
    userError("the output type D must be a base (scalar) type");

  if (F->getParams().size() != G->getParams().size())
    userError("reference and target must take the same extra parameters");
  for (size_t I = 0; I < F->getParams().size(); ++I) {
    if (!sameType(F->getParams()[I]->Ty, G->getParams()[I]->Ty))
      userError("extra parameter types of reference and target differ");
    if (!F->getParams()[I]->Ty->isScalar())
      userError("extra parameters must be scalar");
  }

  if (!P.Invariant.empty()) {
    const RecFunction *Inv = requireFunction(Prog, P.Invariant, "invariant");
    if (!Inv->isScheme() || Inv->getMatched() != P.Theta ||
        !Inv->getParams().empty() || !Inv->getReturnType()->isBool())
      userError("invariant must be a scheme Itheta : theta -> bool");
    requireNoUnknowns(*Inv, "invariant");
  }

  if (!P.Ensures.empty()) {
    const RecFunction *Ens = requireFunction(Prog, P.Ensures, "ensures");
    if (Ens->isScheme() || Ens->getParams().size() != 1 ||
        !sameType(Ens->getParams()[0]->Ty, F->getReturnType()) ||
        !Ens->getReturnType()->isBool())
      userError("ensures must be a plain predicate over the output type");
    requireNoUnknowns(*Ens, "ensures");
  }

  requireNoUnknowns(*F, "reference");
  requireNoUnknowns(*R, "representation");

  // Pass-through property and unknown collection.
  std::vector<UnknownSig> Unknowns;
  for (unsigned I = 0; I < P.Tau->numConstructors(); ++I)
    if (const SchemeRule *Rule = F->findRule(I))
      checkPassThrough(P.Reference, F->getParams(), Rule->Body);
  for (unsigned I = 0; I < P.Theta->numConstructors(); ++I) {
    if (const SchemeRule *Rule = G->findRule(I)) {
      checkPassThrough(P.Target, G->getParams(), Rule->Body);
      collectUnknownsFrom(Rule->Body, Unknowns);
    }
  }
  if (Unknowns.empty())
    userError("target skeleton contains no unknowns");
  if (!P.Unknowns.empty() && P.Unknowns.size() != Unknowns.size())
    userError("problem unknown list is inconsistent with the skeleton");

  // The caller may rely on validate to populate the unknown signatures.
  const_cast<Problem &>(P).Unknowns = std::move(Unknowns);
  const_cast<Problem &>(P).RetTy = F->getReturnType();
  const_cast<Problem &>(P).ExtraParamTypes.clear();
  for (const VarPtr &E : F->getParams())
    const_cast<Problem &>(P).ExtraParamTypes.push_back(E->Ty);
}
