//===- Function.h - Pattern-matching recursion schemes ----------*- C++-*-===//
///
/// \file
/// Function definitions. All recursion is representable as pattern-matching
/// recursive schemes (paper §3, citing Ong & Ramsay): a *scheme* function
/// takes zero or more extra (pass-along) parameters plus one matched
/// parameter of datatype type — by convention the **last** parameter — and
/// has exactly one rule per constructor of the matched datatype. A *plain*
/// function is a non-recursive definition that is always inlined.
///
/// Recursion skeletons (Definition 3.1) are scheme functions whose rule
/// bodies may contain Unknown applications.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_LANG_FUNCTION_H
#define SE2GIS_LANG_FUNCTION_H

#include "ast/Term.h"
#include "ast/Type.h"

#include <string>
#include <vector>

namespace se2gis {

/// One rule of a scheme function: `f e1..ek (C f1..fn) -> Body`.
struct SchemeRule {
  /// Constructor index within the matched datatype.
  unsigned CtorIndex = 0;
  /// Variables bound to the constructor fields.
  std::vector<VarPtr> FieldVars;
  /// Rule body; may reference the function's extra parameters and FieldVars.
  TermPtr Body;
};

/// How a function is defined.
enum class FunctionKind : unsigned char {
  /// Pattern-matching recursion scheme (one rule per constructor).
  Scheme,
  /// Non-recursive definition, inlined at call sites.
  Plain
};

/// A named function definition.
class RecFunction {
public:
  /// Creates a scheme function matching on \p Matched (last parameter).
  static RecFunction makeScheme(std::string Name, std::vector<VarPtr> Extras,
                                const Datatype *Matched, TypePtr RetTy);

  /// Creates a plain (inlined) function.
  static RecFunction makePlain(std::string Name, std::vector<VarPtr> Params,
                               TermPtr Body);

  const std::string &getName() const { return Name; }
  FunctionKind getKind() const { return Kind; }
  bool isScheme() const { return Kind == FunctionKind::Scheme; }

  /// Extra (pass-along) parameters; for plain functions, all parameters.
  const std::vector<VarPtr> &getParams() const { return Params; }

  /// Matched datatype; null for plain functions.
  const Datatype *getMatched() const { return Matched; }

  const TypePtr &getReturnType() const { return RetTy; }

  /// Number of arguments expected at call sites (params + matched arg).
  size_t numArgs() const { return Params.size() + (Matched ? 1 : 0); }

  /// Adds the rule for constructor \p CtorIndex (scheme only; each
  /// constructor may have at most one rule).
  void addRule(unsigned CtorIndex, std::vector<VarPtr> FieldVars,
               TermPtr Body);

  /// \returns the rule for constructor \p CtorIndex, or nullptr if missing.
  const SchemeRule *findRule(unsigned CtorIndex) const;

  /// Plain function body.
  const TermPtr &getBody() const;

  /// \returns true once every constructor of the matched datatype has a rule
  /// (scheme) or the body is set (plain).
  bool isComplete() const;

  /// Pretty-prints the definition.
  std::string str() const;

private:
  RecFunction() = default;

  std::string Name;
  FunctionKind Kind = FunctionKind::Plain;
  std::vector<VarPtr> Params;
  const Datatype *Matched = nullptr;
  TypePtr RetTy;
  std::vector<SchemeRule> Rules;
  TermPtr Body;
};

} // namespace se2gis

#endif // SE2GIS_LANG_FUNCTION_H
