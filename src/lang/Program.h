//===- Program.h - Datatype and function environments -----------*- C++-*-===//
///
/// \file
/// A \c Program owns datatype declarations and function definitions and is
/// the lookup environment for the evaluators. A \c Problem (the recursion
/// synthesis problem of Definition 4.1) names the reference function f, the
/// representation function r, the target skeleton G[U], and the type
/// invariant Iθ within a program.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_LANG_PROGRAM_H
#define SE2GIS_LANG_PROGRAM_H

#include "lang/Function.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace se2gis {

/// Owns datatypes (with stable addresses) and functions.
class Program {
public:
  Program() = default;
  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;

  /// Declares a new datatype; constructors are added to the returned object.
  Datatype *addDatatype(const std::string &Name);

  /// \returns the datatype named \p Name, or nullptr.
  const Datatype *findDatatype(const std::string &Name) const;

  /// \returns the Type for datatype \p Name; asserts it exists.
  TypePtr getDataType(const std::string &Name) const;

  /// Registers \p F; its name must be unused.
  void addFunction(RecFunction F);

  /// \returns the function named \p Name, or nullptr.
  const RecFunction *findFunction(const std::string &Name) const;

  /// All function names in insertion order.
  const std::vector<std::string> &functionNames() const {
    return FunctionOrder;
  }

private:
  std::vector<std::unique_ptr<Datatype>> Datatypes;
  std::map<std::string, Datatype *> DatatypeIndex;
  std::map<std::string, TypePtr> DatatypeTypes;
  std::map<std::string, RecFunction> Functions;
  std::vector<std::string> FunctionOrder;
};

/// Signature of an unknown function from the skeleton's set U.
struct UnknownSig {
  std::string Name;
  std::vector<TypePtr> ArgTypes;
  TypePtr RetTy;
};

/// A recursion synthesis problem (Definition 4.1):
///   ∃U ∀x:θ, e⃗ · Iθ(x) ⇒ G[U](e⃗, x) = f(e⃗, r(x))
/// where e⃗ are optional shared scalar parameters (e.g. the query value x in
/// the `frequency` example of §2).
struct Problem {
  std::shared_ptr<Program> Prog;

  /// Reference function f : extras × τ → D.
  std::string Reference;
  /// Target recursion skeleton G[U] : extras × θ → D.
  std::string Target;
  /// Representation function r : θ → τ (no extra parameters).
  std::string Repr;
  /// True when r is the (auto-generated) identity; elimination units and
  /// verification goals then use `f(e⃗, y)` directly instead of
  /// `f(e⃗, r(y))`, which keeps terms aligned with user-written invariants
  /// and helps the induction prover.
  bool ReprIdentity = false;
  /// Type invariant Iθ : θ → Bool; empty means `true`.
  std::string Invariant;
  /// Optional user hint: a plain predicate over D asserting an invariant of
  /// the image of f∘r (the paper's `[@@ensures]`).
  std::string Ensures;

  /// Unknowns collected from the target skeleton.
  std::vector<UnknownSig> Unknowns;

  const Datatype *Theta = nullptr;
  const Datatype *Tau = nullptr;
  /// Shared scalar output type D.
  TypePtr RetTy;
  /// Types of the shared extra scalar parameters.
  std::vector<TypePtr> ExtraParamTypes;

  const UnknownSig *findUnknown(const std::string &Name) const;
};

/// Validates \p P: signatures line up, all scheme functions are complete,
/// unknowns have scalar signatures, recursive self-calls of the reference and
/// the target pass their extra parameters through unchanged (required for
/// recursion elimination, Definition 4.3), and terms are well-typed.
/// Raises \c UserError with a description on failure.
void validateProblem(const Problem &P);

/// Builds the identity representation function for datatype \p D (a deep
/// copy as a recursion scheme) and registers it in \p Prog under \p Name.
void addIdentityRepr(Program &Prog, const Datatype *D, const std::string &Name);

} // namespace se2gis

#endif // SE2GIS_LANG_PROGRAM_H
