//===- SmtQueryCache.cpp --------------------------------------------------===//

#include "cache/SmtQueryCache.h"

#include "cache/CacheConfig.h"
#include "cache/TermIO.h"
#include "support/PerfCounters.h"

#include <cctype>
#include <sstream>

using namespace se2gis;

namespace {

constexpr const char *Segment = "smt";

/// Shape check at hit time: every slot value must match its live
/// variable's type. Memory entries were built from real models and always
/// pass; the check is the trust boundary for disk-loaded payloads (and the
/// astronomically unlikely key collision).
bool compatible(const SmtCacheEntry &E, const CanonicalQuery &Q,
                std::size_t NumRequests) {
  if (E.Result == CachedSmtResult::Unsat)
    return true;
  if (E.ModelBySlot.size() != Q.VarOrder.size())
    return false;
  for (std::size_t I = 0; I < E.ModelBySlot.size(); ++I)
    if (!valueMatchesType(E.ModelBySlot[I], Q.VarOrder[I]->Ty))
      return false;
  return E.RequestValues.size() >= NumRequests;
}

} // namespace

std::string se2gis::encodeSmtEntry(const SmtCacheEntry &E) {
  if (E.Result == CachedSmtResult::Unsat)
    return "u";
  std::ostringstream OS;
  OS << "s " << E.ModelBySlot.size() << ' ' << E.RequestValues.size();
  for (const ValuePtr &V : E.ModelBySlot)
    OS << ' ' << valueToText(V);
  for (const ValuePtr &V : E.RequestValues)
    OS << ' ' << valueToText(V);
  return OS.str();
}

std::optional<SmtCacheEntry> se2gis::decodeSmtEntry(const std::string &P) {
  SmtCacheEntry E;
  if (P == "u") {
    E.Result = CachedSmtResult::Unsat;
    return E;
  }
  if (P.size() < 2 || P[0] != 's')
    return std::nullopt;
  std::istringstream IS(P.substr(1));
  std::size_t NumSlots = 0, NumReqs = 0;
  if (!(IS >> NumSlots >> NumReqs))
    return std::nullopt;
  std::string Rest;
  std::getline(IS, Rest, '\0');
  std::size_t Pos = 0;
  E.Result = CachedSmtResult::Sat;
  for (std::size_t I = 0; I < NumSlots + NumReqs; ++I) {
    ValuePtr V = valueFromText(Rest, Pos);
    if (!V)
      return std::nullopt;
    (I < NumSlots ? E.ModelBySlot : E.RequestValues).push_back(std::move(V));
  }
  // Trailing garbage means a malformed record.
  while (Pos < Rest.size())
    if (!std::isspace(static_cast<unsigned char>(Rest[Pos++])))
      return std::nullopt;
  return E;
}

std::optional<SmtCacheEntry>
SmtQueryCache::lookup(const CanonicalQuery &Q, std::size_t NumRequests) {
  if (auto E = Mem.lookup(Q.Key)) {
    if (compatible(*E, Q, NumRequests)) {
      perfAdd(PerfCounter::CacheSmtHits);
      return E;
    }
    perfAdd(PerfCounter::CacheSmtMisses);
    return std::nullopt;
  }
  if (cachePersistent()) {
    if (auto Payload = persistentLookup(Segment, Q.Key)) {
      auto E = decodeSmtEntry(*Payload);
      if (E && compatible(*E, Q, NumRequests)) {
        Mem.insert(Q.Key, *E); // promote so later hits skip the decode
        perfAdd(PerfCounter::CacheSmtHits);
        return E;
      }
    }
  }
  perfAdd(PerfCounter::CacheSmtMisses);
  return std::nullopt;
}

void SmtQueryCache::insert(const CanonicalQuery &Q, SmtCacheEntry E) {
  if (cachePersistent()) {
    // Persist only fully serializable entries (model values are scalar by
    // construction, so this only filters pathological cases).
    bool Serializable = true;
    for (const auto *Vec : {&E.ModelBySlot, &E.RequestValues})
      for (const ValuePtr &V : *Vec)
        if (valueToText(V).empty())
          Serializable = false;
    if (Serializable)
      persistentInsert(Segment, Q.Key, encodeSmtEntry(E));
  }
  CacheInsertResult R = Mem.insert(Q.Key, std::move(E));
  if (R.Inserted)
    perfAdd(PerfCounter::CacheSmtInserts);
  if (R.Evicted)
    perfAdd(PerfCounter::CacheSmtEvictions, R.Evicted);
}

SmtQueryCache &se2gis::smtQueryCache() {
  static SmtQueryCache C;
  return C;
}
