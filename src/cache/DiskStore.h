//===- DiskStore.h - Persistent content-addressed store ---------*- C++-*-===//
///
/// \file
/// The cross-run layer of the memoization subsystem: named append-only
/// segments of (128-bit key, payload) records under one cache directory.
///
/// Format: `<dir>/store.meta` carries a version header (a store with an
/// unknown version is ignored wholesale, never half-read); each segment is
/// `<dir>/<name>.jsonl`, one record per line:
///
///     {"k":"<32 hex>","p":"<escaped payload>","c":<crc32>}
///
/// where the CRC covers the key hex and the raw payload. Loading is
/// crash-tolerant by construction: a torn tail (partial last line after a
/// crash), a flipped bit (CRC mismatch), or any malformed line is skipped
/// and counted, and later records win on duplicate keys, so an interrupted
/// append degrades to a smaller cache — never a wrong one. Segments whose
/// file outgrows the size bound are compacted on open (rewritten from the
/// deduplicated survivors).
///
/// Appends are serialized by an internal mutex and flushed per record, so
/// concurrent suite workers in one process interleave whole lines.
///
/// Durability: appends are written straight to the segment fd (no stdio
/// buffering), and \c sync() — called on clean close and by the service's
/// drain — fsyncs every open segment plus the directory entry, so a store
/// that was reported flushed survives a crash-after-exit without replaying
/// a torn tail. Compaction fsyncs the rewritten file and the directory
/// before the old segment name can be reused.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CACHE_DISKSTORE_H
#define SE2GIS_CACHE_DISKSTORE_H

#include "cache/Hash128.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace se2gis {

class DiskStore {
public:
  /// Entries a segment holds after a load (last-wins deduplicated).
  using SegmentMap = std::unordered_map<Hash128, std::string, Hash128Hasher>;

  /// Opens (creating if needed) the store under \p Dir. On failure returns
  /// nullptr with a human-readable reason in \p Error.
  static std::unique_ptr<DiskStore> open(const std::string &Dir,
                                         std::string &Error);

  /// Loads segment \p Name, skipping corrupt/torn lines; compacts the file
  /// when it exceeds \p CompactBytes (0 = never).
  SegmentMap loadSegment(const std::string &Name,
                         std::uint64_t CompactBytes = 64ull << 20);

  /// Appends one record to segment \p Name (thread-safe, flushed).
  void append(const std::string &Name, const Hash128 &K,
              const std::string &Payload);

  /// Durability barrier: fsyncs every open segment fd and the store
  /// directory. Called by the destructor (clean close) and by the service
  /// drain before it reports the store flushed.
  void sync();

  /// Syncs and closes every appender.
  ~DiskStore();

  /// Telemetry of this store instance.
  std::uint64_t bytesWritten() const { return BytesWritten; }
  std::uint64_t bytesLoaded() const { return BytesLoaded; }
  std::uint64_t corruptLinesSkipped() const { return CorruptSkipped; }

  const std::string &dir() const { return Dir; }

private:
  explicit DiskStore(std::string Dir) : Dir(std::move(Dir)) {}

  std::string segmentPath(const std::string &Name) const;
  /// Opens (or returns) the O_APPEND fd of segment \p Name; -1 on failure.
  int appenderFd(const std::string &Name);
  void syncLocked();

  std::string Dir;
  std::mutex M;
  /// Raw O_APPEND fds (not stdio): every append is one write(2) of a whole
  /// line, and fsync on close/drain is possible at all (ofstream exposes
  /// no fd to fsync).
  std::unordered_map<std::string, int> Appenders;
  std::uint64_t BytesWritten = 0;
  std::uint64_t BytesLoaded = 0;
  std::uint64_t CorruptSkipped = 0;
};

/// CRC-32 (IEEE 802.3) of \p Data; exposed for tests that hand-corrupt
/// store files.
std::uint32_t crc32Of(const std::string &Data);

/// Renders one store line (without trailing newline); exposed for tests.
std::string formatStoreLine(const Hash128 &K, const std::string &Payload);

/// Parses one store line; returns false on any malformation or CRC
/// mismatch.
bool parseStoreLine(const std::string &Line, Hash128 &KeyOut,
                    std::string &PayloadOut);

} // namespace se2gis

#endif // SE2GIS_CACHE_DISKSTORE_H
