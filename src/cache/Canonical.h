//===- Canonical.h - Canonical structural hashing of queries ----*- C++-*-===//
///
/// \file
/// The normalizer that makes the memoization subsystem content-addressed:
/// two queries that are equal modulo variable naming and commutative operand
/// order collide on the same 128-bit key. Three normalizations apply:
///
///  1. *Commutative-operand sorting*: the operand lists of And/Or/Add/Mul/
///     Min/Max/Eq/Ne are visited in a canonical order (by name-insensitive
///     shape hash), so `x + y` and `y + x` key identically.
///  2. *De-Bruijn variable renaming*: variables are numbered by first
///     occurrence in the canonical traversal, so the globally unique ids
///     minted by \c freshVar (which differ run to run and between
///     structurally identical queries) never reach the key.
///  3. *Assertion-set ordering*: the hard and soft assertion lists of a
///     query are each folded as multisets (sorted by shape hash), so the
///     order in which a caller happened to \c add assertions is irrelevant.
///
/// Everything fed into the hash is a pure function of term structure —
/// no pointers, no container iteration order, no random seeds — so keys are
/// stable across runs, SE2GIS_SEED values, and processes; that stability is
/// what makes the persistent cross-run store sound.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CACHE_CANONICAL_H
#define SE2GIS_CACHE_CANONICAL_H

#include "ast/Term.h"
#include "cache/Hash128.h"

#include <vector>

namespace se2gis {

struct GrammarConfig;
struct UnknownSig;

/// Result of canonicalizing a whole SMT query: the content key plus the
/// variable order the key implies. \c VarOrder[i] is the concrete variable
/// occupying canonical slot i; a cached model stores one value per slot, so
/// a hit on an alpha-equivalent query rebinds the values to *its* variables
/// through this table.
struct CanonicalQuery {
  Hash128 Key;
  std::vector<VarPtr> VarOrder;
};

/// Name-insensitive 64-bit shape hash of \p T: variables contribute only
/// their type, commutative operands are folded as multisets. Used to order
/// assertion lists and commutative operands before the renaming pass.
/// Hash-consed: the result memoizes inside each visited Term node
/// (Term::cachedShapeHash), so repeated probes over shared subtrees — the
/// common case for an incrementally grown query re-canonicalized per check —
/// hash only the nodes they have never seen. (Color-refined hashes are
/// query-relative and stay memoized per traversal.)
std::uint64_t shapeHash(const TermPtr &T);

/// Canonical 128-bit hash of a single term (renaming + operand sorting as
/// described above, with the term as its own one-element query).
Hash128 canonicalTermHash(const TermPtr &T);

/// Canonicalizes a full query: hard assertions and soft assertions fold as
/// two domain-separated multisets, value requests fold in order (results
/// are returned in request order, so their order is semantic). Variable
/// numbering is shared across all three sections.
CanonicalQuery canonicalizeQuery(const std::vector<TermPtr> &Hard,
                                 const std::vector<TermPtr> &Soft,
                                 const std::vector<TermPtr> &Requests);

/// Canonical hash of a term *system* (e.g. the equations of an SGE): the
/// terms fold as a multiset with variable numbering shared across members,
/// so systems equal modulo naming and equation order collide.
Hash128 canonicalSystemHash(const std::vector<TermPtr> &Terms);

/// Folds a grammar configuration (flags + constant pool) into \p H.
Hash128 hashGrammarConfig(Hash128 H, const GrammarConfig &Config);

/// Folds an unknown-function signature (name + arg/ret types) into \p H.
Hash128 hashUnknownSig(Hash128 H, const UnknownSig &Sig);

} // namespace se2gis

#endif // SE2GIS_CACHE_CANONICAL_H
