//===- SgeSolutionCache.cpp -----------------------------------------------===//

#include "cache/SgeSolutionCache.h"

#include "support/PerfCounters.h"

using namespace se2gis;

std::optional<SgeCacheEntry> SgeSolutionCache::lookup(const Hash128 &K) {
  auto E = Mem.lookup(K);
  perfAdd(E ? PerfCounter::CacheSgeHits : PerfCounter::CacheSgeMisses);
  return E;
}

void SgeSolutionCache::insert(const Hash128 &K, SgeCacheEntry E) {
  Mem.insert(K, std::move(E));
}

SgeSolutionCache &se2gis::sgeSolutionCache() {
  static SgeSolutionCache C;
  return C;
}

std::optional<PbeMemoEntry> PbeMemo::lookup(const Hash128 &K) {
  auto E = Mem.lookup(K);
  perfAdd(E ? PerfCounter::CachePbeHits : PerfCounter::CachePbeMisses);
  return E;
}

void PbeMemo::insert(const Hash128 &K, PbeMemoEntry E) {
  Mem.insert(K, std::move(E));
}

PbeMemo &se2gis::pbeMemo() {
  static PbeMemo C;
  return C;
}
