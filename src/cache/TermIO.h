//===- TermIO.h - Textual serialization for cache payloads ------*- C++-*-===//
///
/// \file
/// S-expression serialization for the payloads the persistent store keeps:
/// concrete scalar values (model readbacks) and scalar grammar terms
/// (synthesized unknown bodies). Both are closed under a small kind set by
/// construction — values reaching SMT models are Int/Bool/Tuple, solution
/// bodies are operator/literal/variable/tuple/projection terms over the
/// unknown's parameters — so the format needs no datatype or function
/// environment to round-trip.
///
/// Variables serialize as parameter *indices* (`(v i)`), never names or
/// ids: the reader supplies its own parameter variables, which is what lets
/// a solution recorded by one process be re-instantiated against the fresh
/// variables of another.
///
/// Readers are total: any malformed input yields nullptr/false rather than
/// throwing, so a corrupted store entry degrades to a cache miss.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CACHE_TERMIO_H
#define SE2GIS_CACHE_TERMIO_H

#include "ast/Term.h"
#include "eval/Value.h"

#include <string>
#include <vector>

namespace se2gis {

/// Renders \p V ("42", "#t", "(tup 1 #f)"). Datatype values are not
/// serializable; returns "" for them.
std::string valueToText(const ValuePtr &V);

/// Parses one value from \p S starting at \p Pos (advanced past it).
/// \returns nullptr on malformed input.
ValuePtr valueFromText(const std::string &S, std::size_t &Pos);

/// Whole-string convenience form of \c valueFromText (must consume all of
/// \p S up to trailing spaces).
ValuePtr valueFromText(const std::string &S);

/// \returns true when \p V structurally matches \p Ty (ints are ints,
/// tuples have matching arity element-wise). Hit-time sanity check for
/// deserialized model values.
bool valueMatchesType(const ValuePtr &V, const TypePtr &Ty);

/// Renders \p T with occurrences of \p Leaves[i] (matched structurally)
/// serialized as `(v i)`. \returns "" when \p T contains a node that is
/// neither a leaf nor an operator/literal/tuple/projection (not
/// serializable).
std::string termToText(const TermPtr &T, const std::vector<TermPtr> &Leaves);

/// Parses a term rendered by \c termToText, substituting \p Leaves[i] for
/// `(v i)`. \returns nullptr on malformed input or out-of-range indices.
TermPtr termFromText(const std::string &S, const std::vector<TermPtr> &Leaves);

/// Convenience overloads for plain parameter-variable leaf tables.
std::string termToText(const TermPtr &T, const std::vector<VarPtr> &Params);
TermPtr termFromText(const std::string &S, const std::vector<VarPtr> &Params);

} // namespace se2gis

#endif // SE2GIS_CACHE_TERMIO_H
