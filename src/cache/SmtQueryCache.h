//===- SmtQueryCache.h - Memoized SMT verdicts and models -------*- C++-*-===//
///
/// \file
/// The sharded cache \c SmtQuery::checkSat consults before entering Z3.
/// Keys are canonical query hashes (cache/Canonical.h: assertions ⊎ soft
/// assertions ⊎ value requests, alpha-renamed); payloads are the verdict
/// plus, for Sat, the model values in canonical slot order and the
/// requested values in request order. A hit on an alpha-equivalent query
/// rebinds the slot values to that query's own variables through its
/// \c CanonicalQuery::VarOrder.
///
/// What is never cached (see DESIGN.md "Memoization model"):
///  - \c Unknown results — they encode budget exhaustion or solver
///    incompleteness, both circumstances of the *run*, not the query;
///  - anything observed while the run's deadline was already expired — an
///    early-exit answer must not masquerade as the query's true verdict.
///
/// Returning a previously recorded model is sound: the entry was produced
/// by Z3 on a structurally equal (alpha-equivalent) query, so the values
/// satisfy this query too. Disk-loaded entries additionally pass a
/// per-slot type check against the live query before use, so a corrupted
/// or colliding record degrades to a miss, never a bogus binding.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CACHE_SMTQUERYCACHE_H
#define SE2GIS_CACHE_SMTQUERYCACHE_H

#include "cache/Canonical.h"
#include "cache/ShardedCache.h"
#include "eval/Value.h"

#include <optional>
#include <vector>

namespace se2gis {

/// Mirror of smt/Solver.h's SmtResult for the cacheable subset; kept
/// separate so the cache library sits below the smt library in the link
/// order (smt links cache, not vice versa).
enum class CachedSmtResult : unsigned char { Sat, Unsat };

/// One memoized checkSat outcome.
struct SmtCacheEntry {
  CachedSmtResult Result = CachedSmtResult::Unsat;
  /// For Sat: one value per canonical variable slot (CanonicalQuery
  /// VarOrder order). Empty for Unsat.
  std::vector<ValuePtr> ModelBySlot;
  /// For Sat: the requested values, in request order.
  std::vector<ValuePtr> RequestValues;
};

class SmtQueryCache {
public:
  /// \returns the entry for \p Q if present (memory first, then the
  /// persistent segment) and shape-compatible with \p Q: Sat entries must
  /// carry exactly one value per slot, each matching the slot variable's
  /// type, and at least as many request values as \p NumRequests.
  std::optional<SmtCacheEntry> lookup(const CanonicalQuery &Q,
                                      std::size_t NumRequests);

  /// Records \p E under \p Q's key (and appends it to the persistent
  /// segment in Disk mode). Counts inserts/evictions.
  void insert(const CanonicalQuery &Q, SmtCacheEntry E);

  void clear() { Mem.clear(); }
  std::size_t size() const { return Mem.size(); }

private:
  ShardedCache<SmtCacheEntry> Mem{1 << 20};
};

/// The process-wide instance.
SmtQueryCache &smtQueryCache();

/// Serialization of entries for the persistent "smt" segment; exposed for
/// tests. decode returns nullopt on malformed payloads.
std::string encodeSmtEntry(const SmtCacheEntry &E);
std::optional<SmtCacheEntry> decodeSmtEntry(const std::string &Payload);

} // namespace se2gis

#endif // SE2GIS_CACHE_SMTQUERYCACHE_H
