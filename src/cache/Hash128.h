//===- Hash128.h - 128-bit content hashes for memoization -------*- C++-*-===//
///
/// \file
/// The content-address type of the memoization subsystem: a 128-bit hash
/// wide enough that distinct queries colliding is not a practical concern
/// (the caches treat key equality as payload equality and never compare
/// payloads). Two independent 64-bit lanes are folded with different mixing
/// constants; both are pure functions of the fed bytes, so hashes are stable
/// across runs, processes, and machines.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CACHE_HASH128_H
#define SE2GIS_CACHE_HASH128_H

#include <cstdint>
#include <string>

namespace se2gis {

/// A 128-bit content hash (two independently mixed 64-bit lanes).
struct Hash128 {
  std::uint64_t Hi = 0;
  std::uint64_t Lo = 0;

  bool operator==(const Hash128 &O) const { return Hi == O.Hi && Lo == O.Lo; }
  bool operator!=(const Hash128 &O) const { return !(*this == O); }
  bool operator<(const Hash128 &O) const {
    return Hi != O.Hi ? Hi < O.Hi : Lo < O.Lo;
  }

  /// Fixed-width lowercase hex rendering (32 chars), the on-disk key form
  /// (and the wire form of the cache protocol, see src/cachenet/).
  std::string hex() const {
    static const char *Digits = "0123456789abcdef";
    std::string S(32, '0');
    for (int I = 0; I < 16; ++I) {
      std::uint64_t W = I < 8 ? Hi : Lo;
      int Shift = 56 - 8 * (I % 8);
      unsigned char B = static_cast<unsigned char>((W >> Shift) & 0xff);
      S[2 * I] = Digits[B >> 4];
      S[2 * I + 1] = Digits[B & 0xf];
    }
    return S;
  }

  /// Parses the \c hex form; returns false on malformed input.
  static bool fromHex(const std::string &S, Hash128 &Out) {
    if (S.size() != 32)
      return false;
    auto Nibble = [](char C, unsigned &V) {
      if (C >= '0' && C <= '9')
        V = static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        V = static_cast<unsigned>(C - 'a') + 10;
      else
        return false;
      return true;
    };
    Out = Hash128{};
    for (int I = 0; I < 32; ++I) {
      unsigned V = 0;
      if (!Nibble(S[I], V))
        return false;
      std::uint64_t &W = I < 16 ? Out.Hi : Out.Lo;
      W = (W << 4) | V;
    }
    return true;
  }
};

/// Feeds one 64-bit word into \p H (order-sensitive). The two lanes use
/// distinct odd multipliers so correlated single-lane collisions do not
/// propagate to the pair.
inline Hash128 hash128Combine(Hash128 H, std::uint64_t V) {
  H.Hi = (H.Hi ^ (V + 0x9e3779b97f4a7c15ULL + (H.Hi << 12) + (H.Hi >> 4))) *
         0x2545f4914f6cdd1dULL;
  H.Lo = (H.Lo ^ (V * 0xff51afd7ed558ccdULL + (H.Lo << 7) + (H.Lo >> 9))) *
         0xc4ceb9fe1a85ec53ULL;
  return H;
}

/// Feeds a second hash into \p H (order-sensitive).
inline Hash128 hash128Combine(Hash128 H, const Hash128 &V) {
  H = hash128Combine(H, V.Hi);
  return hash128Combine(H, V.Lo);
}

/// Feeds a string (length-prefixed, so "ab"+"c" != "a"+"bc").
Hash128 hash128String(Hash128 H, const std::string &S);

/// The seed every canonical hash starts from (domain-separated by \p Tag).
inline Hash128 hash128Seed(std::uint64_t Tag) {
  return hash128Combine(Hash128{0x6a09e667f3bcc908ULL, 0xbb67ae8584caa73bULL},
                        Tag);
}

/// std::unordered_map hasher: the key already is a high-quality hash, so
/// just fold the lanes.
struct Hash128Hasher {
  std::size_t operator()(const Hash128 &H) const {
    return static_cast<std::size_t>(H.Hi ^ (H.Lo * 0x9e3779b97f4a7c15ULL));
  }
};

} // namespace se2gis

#endif // SE2GIS_CACHE_HASH128_H
