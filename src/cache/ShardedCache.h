//===- ShardedCache.h - Thread-safe sharded hash cache ----------*- C++-*-===//
///
/// \file
/// The concurrency substrate shared by every in-memory cache of the
/// memoization subsystem: a fixed number of independently locked shards,
/// selected by the key's own bits (the keys are 128-bit content hashes, so
/// shard selection needs no further mixing). Suite workers and portfolio
/// members hit different shards with high probability, so contention stays
/// negligible without lock-free machinery.
///
/// Each shard is size-bounded with FIFO eviction: entries are immutable
/// once inserted (content-addressed — a key determines its payload), so
/// recency tracking buys little and FIFO keeps the hot path to one lock and
/// zero allocation on hit.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CACHE_SHARDEDCACHE_H
#define SE2GIS_CACHE_SHARDEDCACHE_H

#include "cache/Hash128.h"

#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace se2gis {

/// Outcome of a cache insertion (for the caller's telemetry).
struct CacheInsertResult {
  /// False when the key was already present (the existing entry wins:
  /// content-addressed entries are interchangeable, and keeping the old one
  /// avoids invalidating concurrent readers' copies).
  bool Inserted = false;
  /// Entries evicted to make room.
  std::size_t Evicted = 0;
};

template <typename ValueT> class ShardedCache {
public:
  static constexpr std::size_t NumShards = 16;

  /// \param MaxEntries total capacity across shards (0 = unbounded).
  explicit ShardedCache(std::size_t MaxEntries = 1 << 20)
      : PerShardCap(MaxEntries ? (MaxEntries + NumShards - 1) / NumShards
                               : 0) {}

  /// \returns a copy of the entry for \p K, or nullopt.
  std::optional<ValueT> lookup(const Hash128 &K) const {
    const Shard &S = shardOf(K);
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Map.find(K);
    if (It == S.Map.end())
      return std::nullopt;
    return It->second;
  }

  /// Inserts \p V under \p K unless present, evicting FIFO beyond the cap.
  CacheInsertResult insert(const Hash128 &K, ValueT V) {
    Shard &S = shardOf(K);
    std::lock_guard<std::mutex> Lock(S.M);
    CacheInsertResult R;
    auto [It, Fresh] = S.Map.emplace(K, std::move(V));
    (void)It;
    if (!Fresh)
      return R;
    R.Inserted = true;
    S.Fifo.push_back(K);
    while (PerShardCap && S.Map.size() > PerShardCap) {
      S.Map.erase(S.Fifo.front());
      S.Fifo.pop_front();
      ++R.Evicted;
    }
    return R;
  }

  void clear() {
    for (Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.M);
      S.Map.clear();
      S.Fifo.clear();
    }
  }

  std::size_t size() const {
    std::size_t N = 0;
    for (const Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.M);
      N += S.Map.size();
    }
    return N;
  }

  /// Visits every entry (shard by shard, under that shard's lock). \p Fn
  /// receives (key, value) and must not reenter the cache.
  template <typename Fn> void forEach(Fn F) const {
    for (const Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.M);
      for (const auto &[K, V] : S.Map)
        F(K, V);
    }
  }

private:
  struct Shard {
    mutable std::mutex M;
    std::unordered_map<Hash128, ValueT, Hash128Hasher> Map;
    std::deque<Hash128> Fifo;
  };

  Shard &shardOf(const Hash128 &K) { return Shards[K.Lo % NumShards]; }
  const Shard &shardOf(const Hash128 &K) const {
    return Shards[K.Lo % NumShards];
  }

  std::size_t PerShardCap;
  Shard Shards[NumShards];
};

} // namespace se2gis

#endif // SE2GIS_CACHE_SHARDEDCACHE_H
