//===- CacheConfig.h - Memoization subsystem configuration ------*- C++-*-===//
///
/// \file
/// Process-wide configuration of the content-addressed memoization
/// subsystem (see DESIGN.md "Memoization model"). Three modes:
///
///  - \c Off  — every consult is a miss, every insert a no-op (default).
///  - \c Mem  — sharded in-memory caches only; state dies with the process.
///  - \c Disk — in-memory caches backed by a persistent store in the cache
///    directory; verdict-relevant reuse is re-validated by the consumers
///    (see SmtQueryCache's type checks and the suite runner's solution
///    re-verification), so a stale or corrupted store can never change a
///    verdict — only waste a re-validation.
///
/// \c configureCache is idempotent for identical settings and thread-safe;
/// the solver entry points call it with the run's \c SolverConfig, so the
/// first run in a process pays the (lazy) store load and later runs — e.g.
/// every task of a suite sweep — share the warm state.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CACHE_CACHECONFIG_H
#define SE2GIS_CACHE_CACHECONFIG_H

#include "cache/Hash128.h"

#include <optional>
#include <string>

namespace se2gis {

/// How much memoization is in effect.
enum class CacheMode : unsigned char { Off, Mem, Disk };

/// \returns "off" / "mem" / "disk".
const char *cacheModeName(CacheMode M);

/// Parses "off" / "mem" / "disk" (case-insensitively).
std::optional<CacheMode> parseCacheMode(const std::string &Name);

/// The cache knobs of a solver run (part of SolverConfig).
struct CacheSettings {
  CacheMode Mode = CacheMode::Off;
  /// Store directory for Disk mode (default: ./.se2gis-cache, which is
  /// .gitignore'd).
  std::string Dir = ".se2gis-cache";
};

/// Checks that \p Dir is usable as a cache directory: it must be absent
/// (creatable) or an existing writable directory. \returns an empty string
/// when usable, otherwise a diagnostic suitable for a UserError.
std::string validateCacheDir(const std::string &Dir);

/// Applies \p S process-wide. Throws UserError (with the \c
/// validateCacheDir diagnostic) when Disk mode is requested on an unusable
/// directory. Re-configuring with identical settings is a cheap no-op;
/// changing settings flushes and resets the caches.
void configureCache(const CacheSettings &S);

/// Resets to Off and drops all in-memory state (persistent segments stay on
/// disk). Primarily for tests.
void shutdownCache();

/// Durability barrier for Disk mode: fsyncs the persistent store's segment
/// files and directory entry. No-op outside Disk mode. The service drain
/// calls this after the last job so a reported-flushed store survives an
/// immediate crash.
void flushCache();

CacheMode cacheMode();
inline bool cacheEnabled() { return cacheMode() != CacheMode::Off; }
inline bool cachePersistent() { return cacheMode() == CacheMode::Disk; }

/// Looks \p K up in persistent segment \p Segment ("smt", "suite", ...).
/// Returns nullopt unless Disk mode is active and the key was loaded.
std::optional<std::string> persistentLookup(const char *Segment,
                                            const Hash128 &K);

/// Appends (\p K, \p Payload) to persistent segment \p Segment; a no-op
/// outside Disk mode. Last record wins on reload.
void persistentInsert(const char *Segment, const Hash128 &K,
                      const std::string &Payload);

} // namespace se2gis

#endif // SE2GIS_CACHE_CACHECONFIG_H
