//===- CacheConfig.h - Memoization subsystem configuration ------*- C++-*-===//
///
/// \file
/// Process-wide configuration of the content-addressed memoization
/// subsystem (see DESIGN.md "Memoization model"). Three modes:
///
///  - \c Off  — every consult is a miss, every insert a no-op (default).
///  - \c Mem  — sharded in-memory caches only; state dies with the process.
///  - \c Disk — in-memory caches backed by a persistent store in the cache
///    directory; verdict-relevant reuse is re-validated by the consumers
///    (see SmtQueryCache's type checks and the suite runner's solution
///    re-verification), so a stale or corrupted store can never change a
///    verdict — only waste a re-validation.
///  - \c Remote — Disk plus a shared cache daemon (se2gis_cached, see
///    src/cachenet/): persistent lookups that miss locally probe the
///    daemon (read-through, populated downward on hit), persistent
///    inserts fan out to it write-behind, and a dead or slow daemon
///    degrades the node to local-only via a circuit breaker — never a
///    stalled or failed solve. Remote entries go through the exact same
///    consumer re-validation as Disk entries.
///
/// \c configureCache is idempotent for identical settings and thread-safe;
/// the solver entry points call it with the run's \c SolverConfig, so the
/// first run in a process pays the (lazy) store load and later runs — e.g.
/// every task of a suite sweep — share the warm state.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CACHE_CACHECONFIG_H
#define SE2GIS_CACHE_CACHECONFIG_H

#include "cache/Hash128.h"

#include <optional>
#include <string>

namespace se2gis {

/// How much memoization is in effect.
enum class CacheMode : unsigned char { Off, Mem, Disk, Remote };

/// \returns "off" / "mem" / "disk" / "remote".
const char *cacheModeName(CacheMode M);

/// Parses "off" / "mem" / "disk" / "remote" (case-insensitively).
std::optional<CacheMode> parseCacheMode(const std::string &Name);

/// The cache knobs of a solver run (part of SolverConfig).
struct CacheSettings {
  CacheMode Mode = CacheMode::Off;
  /// Store directory for Disk/Remote mode (default: ./.se2gis-cache,
  /// which is .gitignore'd).
  std::string Dir = ".se2gis-cache";
  /// se2gis_cached address for Remote mode (SE2GIS_CACHE_ADDR /
  /// --cache-addr): unix:/path or tcp:host:port.
  std::string Addr;
};

/// Checks that \p Dir is usable as a cache directory: it must be absent
/// (creatable) or an existing writable directory. \returns an empty string
/// when usable, otherwise a diagnostic suitable for a UserError.
std::string validateCacheDir(const std::string &Dir);

/// Applies \p S process-wide. Throws UserError (with the \c
/// validateCacheDir diagnostic) when Disk mode is requested on an unusable
/// directory. Re-configuring with identical settings is a cheap no-op;
/// changing settings flushes and resets the caches.
void configureCache(const CacheSettings &S);

/// Resets to Off and drops all in-memory state (persistent segments stay on
/// disk). Primarily for tests.
void shutdownCache();

/// Durability barrier for Disk/Remote mode: drains the remote write-behind
/// queue (bounded), then fsyncs the persistent store's segment files and
/// directory entry. No-op outside persistent modes. The service drain
/// calls this after the last job so a reported-flushed store survives an
/// immediate crash.
void flushCache();

CacheMode cacheMode();
inline bool cacheEnabled() { return cacheMode() != CacheMode::Off; }
inline bool cachePersistent() {
  CacheMode M = cacheMode();
  return M == CacheMode::Disk || M == CacheMode::Remote;
}

/// Looks \p K up in persistent segment \p Segment ("smt", "suite", ...):
/// the loaded local segment first, then — in Remote mode — one bounded
/// daemon probe, whose hit is populated downward into the local segment
/// map and DiskStore before being returned. Returns nullopt unless a
/// persistent mode is active and some tier held the key.
std::optional<std::string> persistentLookup(const char *Segment,
                                            const Hash128 &K);

/// Appends (\p K, \p Payload) to persistent segment \p Segment (and, in
/// Remote mode, enqueues a write-behind put to the daemon); a no-op
/// outside persistent modes. Last record wins on reload.
void persistentInsert(const char *Segment, const Hash128 &K,
                      const std::string &Payload);

} // namespace se2gis

#endif // SE2GIS_CACHE_CACHECONFIG_H
