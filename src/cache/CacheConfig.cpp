//===- CacheConfig.cpp ----------------------------------------------------===//

#include "cache/CacheConfig.h"

#include "cache/DiskStore.h"
#include "cache/SgeSolutionCache.h"
#include "cache/SmtQueryCache.h"
#include "cachenet/RemoteStore.h"
#include "support/Diagnostics.h"
#include "support/PerfCounters.h"

#include <atomic>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <unordered_map>

using namespace se2gis;

namespace fs = std::filesystem;

const char *se2gis::cacheModeName(CacheMode M) {
  switch (M) {
  case CacheMode::Off:
    return "off";
  case CacheMode::Mem:
    return "mem";
  case CacheMode::Disk:
    return "disk";
  case CacheMode::Remote:
    return "remote";
  }
  return "off";
}

std::optional<CacheMode> se2gis::parseCacheMode(const std::string &Name) {
  std::string L;
  for (char C : Name)
    L += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  if (L == "off" || L == "none" || L == "0")
    return CacheMode::Off;
  if (L == "mem" || L == "memory")
    return CacheMode::Mem;
  if (L == "disk" || L == "persist")
    return CacheMode::Disk;
  if (L == "remote" || L == "net")
    return CacheMode::Remote;
  return std::nullopt;
}

std::string se2gis::validateCacheDir(const std::string &Dir) {
  if (Dir.empty())
    return "cache dir is empty (set SE2GIS_CACHE_DIR or --cache-dir)";
  std::error_code EC;
  fs::path P(Dir);
  if (fs::exists(P, EC)) {
    if (!fs::is_directory(P, EC))
      return "cache dir '" + Dir +
             "' exists but is not a directory; delete it or point "
             "--cache-dir/SE2GIS_CACHE_DIR elsewhere";
    // Writability probe: actually create a file. Permission bits alone lie
    // for privileged users and exotic filesystems.
    fs::path Probe = P / ".se2gis-probe";
    std::ofstream Out(Probe);
    bool Ok = static_cast<bool>(Out) && static_cast<bool>(Out << 'x');
    Out.close();
    fs::remove(Probe, EC);
    if (!Ok)
      return "cache dir '" + Dir +
             "' exists but is not writable; fix its permissions or point "
             "--cache-dir/SE2GIS_CACHE_DIR elsewhere";
    return "";
  }
  fs::path Parent = P.parent_path();
  if (!Parent.empty() && !fs::exists(Parent, EC))
    return "cache dir '" + Dir + "' cannot be created (missing parent '" +
           Parent.string() + "')";
  return "";
}

namespace {

/// All mutable global state of the subsystem, behind one mutex. The hot
/// paths (lookup/insert on the sharded caches) do not take this lock; it
/// guards only (re)configuration and persistent-segment access.
struct CacheRuntime {
  std::mutex M;
  CacheSettings Settings;
  std::unique_ptr<DiskStore> Store;
  std::unordered_map<std::string, DiskStore::SegmentMap> Segments;
  /// Remote tier client (Remote mode only). shared_ptr so the slow network
  /// probe and the flush barrier can run *outside* the runtime lock while a
  /// concurrent reconfigure stays safe.
  std::shared_ptr<RemoteStore> Remote;
  /// Mode mirror for the lock-free cacheMode() fast path.
  std::atomic<CacheMode> Mode{CacheMode::Off};
};

CacheRuntime &runtime() {
  static CacheRuntime R;
  return R;
}

void resetLocked(CacheRuntime &R) {
  R.Store.reset();
  R.Segments.clear();
  R.Remote.reset();
  smtQueryCache().clear();
  sgeSolutionCache().clear();
  pbeMemo().clear();
}

} // namespace

void se2gis::configureCache(const CacheSettings &S) {
  CacheRuntime &R = runtime();
  std::lock_guard<std::mutex> Lock(R.M);
  bool Persistent = S.Mode == CacheMode::Disk || S.Mode == CacheMode::Remote;
  if (S.Mode == R.Settings.Mode && (!Persistent || S.Dir == R.Settings.Dir) &&
      (S.Mode != CacheMode::Remote || S.Addr == R.Settings.Addr))
    return; // idempotent re-configure (every SynthesisTask::run calls this)

  if (Persistent) {
    std::string Problem = validateCacheDir(S.Dir);
    if (!Problem.empty())
      userError(Problem);
  }
  if (S.Mode == CacheMode::Remote && S.Addr.empty())
    userError("remote cache mode needs a daemon address "
              "(SE2GIS_CACHE_ADDR or --cache-addr)");

  resetLocked(R);
  R.Settings = S;
  R.Mode.store(S.Mode, std::memory_order_release);
  if (!Persistent)
    return;

  std::string Error;
  R.Store = DiskStore::open(S.Dir, Error);
  if (!R.Store) {
    R.Settings.Mode = CacheMode::Off;
    R.Mode.store(CacheMode::Off, std::memory_order_release);
    userError(Error);
  }
  for (const char *Segment : {"smt", "suite"}) {
    R.Segments[Segment] = R.Store->loadSegment(Segment);
    for (const auto &[K, Payload] : R.Segments[Segment]) {
      (void)K;
      perfAdd(PerfCounter::CacheBytesLoaded, Payload.size());
    }
  }

  if (S.Mode == CacheMode::Remote) {
    RemoteStoreOptions Opts;
    Opts.Addr = S.Addr;
    R.Remote = RemoteStore::create(Opts, Error);
    if (!R.Remote) {
      // Only a malformed address fails construction; an unreachable daemon
      // is a degraded (local-only) store, never a failed configure.
      resetLocked(R);
      R.Settings = CacheSettings{};
      R.Mode.store(CacheMode::Off, std::memory_order_release);
      userError("cache addr: " + Error);
    }
  }
}

void se2gis::flushCache() {
  CacheRuntime &R = runtime();
  std::shared_ptr<RemoteStore> Remote;
  {
    std::lock_guard<std::mutex> Lock(R.M);
    Remote = R.Remote;
  }
  // Drain the write-behind queue before the fsync barrier, outside the
  // runtime lock (the drainer's puts are network-bounded).
  if (Remote)
    Remote->flush();
  std::lock_guard<std::mutex> Lock(R.M);
  if (R.Store)
    R.Store->sync();
}

void se2gis::shutdownCache() {
  CacheRuntime &R = runtime();
  std::lock_guard<std::mutex> Lock(R.M);
  resetLocked(R);
  R.Settings = CacheSettings{};
  R.Settings.Mode = CacheMode::Off;
  R.Mode.store(CacheMode::Off, std::memory_order_release);
}

CacheMode se2gis::cacheMode() {
  return runtime().Mode.load(std::memory_order_acquire);
}

std::optional<std::string> se2gis::persistentLookup(const char *Segment,
                                                    const Hash128 &K) {
  CacheRuntime &R = runtime();
  std::shared_ptr<RemoteStore> Remote;
  {
    std::lock_guard<std::mutex> Lock(R.M);
    auto SegIt = R.Segments.find(Segment);
    if (SegIt != R.Segments.end()) {
      auto It = SegIt->second.find(K);
      if (It != SegIt->second.end())
        return It->second;
    }
    Remote = R.Remote;
  }
  if (!Remote)
    return std::nullopt;
  // Remote probe outside the lock: it is bounded (timeouts + breaker) but
  // still orders of magnitude slower than the map lookups above, and must
  // not serialize other threads' local probes.
  std::optional<std::string> Payload = Remote->get(Segment, K);
  if (!Payload)
    return std::nullopt;
  // Populate downward (read-through): the local segment map and DiskStore
  // absorb the hit, so the next probe — and the next process on this node —
  // never pays the network again. Consumers still re-validate the payload;
  // a poisoned remote entry lands locally at worst as dead weight that
  // re-validation keeps rejecting.
  std::lock_guard<std::mutex> Lock(R.M);
  if (R.Remote != Remote)
    return Payload; // reconfigured mid-probe; don't touch the new store
  auto [It, Fresh] = R.Segments[Segment].emplace(K, *Payload);
  (void)It;
  if (Fresh && R.Store) {
    R.Store->append(Segment, K, *Payload);
    perfAdd(PerfCounter::CacheBytesWritten, Payload->size());
  }
  return Payload;
}

void se2gis::persistentInsert(const char *Segment, const Hash128 &K,
                              const std::string &Payload) {
  CacheRuntime &R = runtime();
  std::shared_ptr<RemoteStore> Remote;
  {
    std::lock_guard<std::mutex> Lock(R.M);
    if (!R.Store)
      return;
    auto [It, Fresh] = R.Segments[Segment].emplace(K, Payload);
    (void)It;
    if (!Fresh)
      return; // already persisted (content-addressed: same key, same payload)
    R.Store->append(Segment, K, Payload);
    perfAdd(PerfCounter::CacheBytesWritten, Payload.size());
    Remote = R.Remote;
  }
  // Write-behind fan-out: enqueue only (bounded queue, background drainer);
  // a slow daemon never backpressures the solver thread.
  if (Remote)
    Remote->putAsync(Segment, K, Payload);
}
