//===- TermIO.cpp ---------------------------------------------------------===//

#include "cache/TermIO.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

using namespace se2gis;

// --- Values -------------------------------------------------------------===//

std::string se2gis::valueToText(const ValuePtr &V) {
  switch (V->getKind()) {
  case Value::Kind::Int:
    return std::to_string(V->getInt());
  case Value::Kind::Bool:
    return V->getBool() ? "#t" : "#f";
  case Value::Kind::Tuple: {
    std::string S = "(tup";
    for (const ValuePtr &E : V->getElems()) {
      std::string Part = valueToText(E);
      if (Part.empty())
        return "";
      S += ' ';
      S += Part;
    }
    S += ')';
    return S;
  }
  case Value::Kind::Data:
    return ""; // datatype values never reach the cached payloads
  }
  return "";
}

namespace {

void skipSpaces(const std::string &S, std::size_t &Pos) {
  while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
    ++Pos;
}

/// Reads the next atom (run of non-space, non-paren characters).
std::string readAtom(const std::string &S, std::size_t &Pos) {
  skipSpaces(S, Pos);
  std::size_t Start = Pos;
  while (Pos < S.size() && !std::isspace(static_cast<unsigned char>(S[Pos])) &&
         S[Pos] != '(' && S[Pos] != ')')
    ++Pos;
  return S.substr(Start, Pos - Start);
}

bool parseInt(const std::string &A, long long &Out) {
  if (A.empty())
    return false;
  std::size_t I = A[0] == '-' ? 1 : 0;
  if (I == A.size())
    return false;
  for (; I < A.size(); ++I)
    if (!std::isdigit(static_cast<unsigned char>(A[I])))
      return false;
  Out = std::atoll(A.c_str());
  return true;
}

} // namespace

ValuePtr se2gis::valueFromText(const std::string &S, std::size_t &Pos) {
  skipSpaces(S, Pos);
  if (Pos >= S.size())
    return nullptr;
  if (S[Pos] == '(') {
    ++Pos;
    if (readAtom(S, Pos) != "tup")
      return nullptr;
    std::vector<ValuePtr> Elems;
    while (true) {
      skipSpaces(S, Pos);
      if (Pos < S.size() && S[Pos] == ')') {
        ++Pos;
        break;
      }
      ValuePtr E = valueFromText(S, Pos);
      if (!E)
        return nullptr;
      Elems.push_back(std::move(E));
    }
    if (Elems.size() < 2)
      return nullptr; // tuples have at least two elements
    return Value::mkTuple(std::move(Elems));
  }
  std::string A = readAtom(S, Pos);
  if (A == "#t")
    return Value::mkBool(true);
  if (A == "#f")
    return Value::mkBool(false);
  long long N = 0;
  if (parseInt(A, N))
    return Value::mkInt(N);
  return nullptr;
}

ValuePtr se2gis::valueFromText(const std::string &S) {
  std::size_t Pos = 0;
  ValuePtr V = valueFromText(S, Pos);
  if (!V)
    return nullptr;
  skipSpaces(S, Pos);
  return Pos == S.size() ? V : nullptr;
}

bool se2gis::valueMatchesType(const ValuePtr &V, const TypePtr &Ty) {
  if (!V)
    return false;
  switch (Ty->getKind()) {
  case TypeKind::Int:
    return V->isInt();
  case TypeKind::Bool:
    return V->isBool();
  case TypeKind::Tuple: {
    if (!V->isTuple())
      return false;
    const auto &Elems = Ty->tupleElems();
    if (V->getElems().size() != Elems.size())
      return false;
    for (std::size_t I = 0; I < Elems.size(); ++I)
      if (!valueMatchesType(V->getElems()[I], Elems[I]))
        return false;
    return true;
  }
  case TypeKind::Data:
    return false;
  }
  return false;
}

// --- Terms --------------------------------------------------------------===//

namespace {

/// Stable operator spellings for the wire format (independent of
/// \c opSpelling, which is tuned for pretty-printing and may change).
const char *opWireName(OpKind Op) {
  switch (Op) {
  case OpKind::Add:
    return "add";
  case OpKind::Sub:
    return "sub";
  case OpKind::Neg:
    return "neg";
  case OpKind::Mul:
    return "mul";
  case OpKind::Div:
    return "div";
  case OpKind::Mod:
    return "mod";
  case OpKind::Min:
    return "min";
  case OpKind::Max:
    return "max";
  case OpKind::Abs:
    return "abs";
  case OpKind::Lt:
    return "lt";
  case OpKind::Le:
    return "le";
  case OpKind::Gt:
    return "gt";
  case OpKind::Ge:
    return "ge";
  case OpKind::Eq:
    return "eq";
  case OpKind::Ne:
    return "ne";
  case OpKind::Not:
    return "not";
  case OpKind::And:
    return "and";
  case OpKind::Or:
    return "or";
  case OpKind::Implies:
    return "implies";
  case OpKind::Ite:
    return "ite";
  }
  return "";
}

bool opFromWireName(const std::string &Name, OpKind &Out) {
  static const std::pair<const char *, OpKind> Table[] = {
      {"add", OpKind::Add},     {"sub", OpKind::Sub},
      {"neg", OpKind::Neg},     {"mul", OpKind::Mul},
      {"div", OpKind::Div},     {"mod", OpKind::Mod},
      {"min", OpKind::Min},     {"max", OpKind::Max},
      {"abs", OpKind::Abs},     {"lt", OpKind::Lt},
      {"le", OpKind::Le},       {"gt", OpKind::Gt},
      {"ge", OpKind::Ge},       {"eq", OpKind::Eq},
      {"ne", OpKind::Ne},       {"not", OpKind::Not},
      {"and", OpKind::And},     {"or", OpKind::Or},
      {"implies", OpKind::Implies}, {"ite", OpKind::Ite}};
  for (const auto &[N, K] : Table)
    if (Name == N) {
      Out = K;
      return true;
    }
  return false;
}

bool writeTerm(const TermPtr &T, const std::vector<TermPtr> &Leaves,
               std::ostringstream &OS) {
  // Leaves match first: a leaf may itself be a projection or a literal, and
  // the index form is what survives re-instantiation elsewhere.
  for (std::size_t I = 0; I < Leaves.size(); ++I)
    if (termEquals(T, Leaves[I])) {
      OS << "(v " << I << ')';
      return true;
    }
  switch (T->getKind()) {
  case TermKind::IntLit:
    OS << T->getIntValue();
    return true;
  case TermKind::BoolLit:
    OS << (T->getBoolValue() ? "#t" : "#f");
    return true;
  case TermKind::Tuple: {
    OS << "(tup";
    for (const TermPtr &A : T->getArgs()) {
      OS << ' ';
      if (!writeTerm(A, Leaves, OS))
        return false;
    }
    OS << ')';
    return true;
  }
  case TermKind::Proj: {
    OS << "(proj " << T->getIndex() << ' ';
    if (!writeTerm(T->getArg(0), Leaves, OS))
      return false;
    OS << ')';
    return true;
  }
  case TermKind::Op: {
    OS << '(' << opWireName(T->getOp());
    for (const TermPtr &A : T->getArgs()) {
      OS << ' ';
      if (!writeTerm(A, Leaves, OS))
        return false;
    }
    OS << ')';
    return true;
  }
  default:
    // A variable that is not a leaf, or a Call/Ctor/Unknown/Hole node:
    // outside the serializable fragment.
    return false;
  }
}

TermPtr readTerm(const std::string &S, std::size_t &Pos,
                 const std::vector<TermPtr> &Leaves) {
  skipSpaces(S, Pos);
  if (Pos >= S.size())
    return nullptr;
  if (S[Pos] != '(') {
    std::string A = readAtom(S, Pos);
    if (A == "#t")
      return mkTrue();
    if (A == "#f")
      return mkFalse();
    long long N = 0;
    if (parseInt(A, N))
      return mkIntLit(N);
    return nullptr;
  }
  ++Pos; // '('
  std::string Head = readAtom(S, Pos);
  auto ReadArgsAndClose = [&](std::vector<TermPtr> &Args) {
    while (true) {
      skipSpaces(S, Pos);
      if (Pos >= S.size())
        return false;
      if (S[Pos] == ')') {
        ++Pos;
        return true;
      }
      TermPtr A = readTerm(S, Pos, Leaves);
      if (!A)
        return false;
      Args.push_back(std::move(A));
    }
  };
  if (Head == "v") {
    std::string A = readAtom(S, Pos);
    long long I = 0;
    if (!parseInt(A, I) || I < 0 ||
        static_cast<std::size_t>(I) >= Leaves.size())
      return nullptr;
    skipSpaces(S, Pos);
    if (Pos >= S.size() || S[Pos] != ')')
      return nullptr;
    ++Pos;
    return Leaves[static_cast<std::size_t>(I)];
  }
  if (Head == "tup") {
    std::vector<TermPtr> Args;
    if (!ReadArgsAndClose(Args) || Args.size() < 2)
      return nullptr;
    return mkTuple(std::move(Args));
  }
  if (Head == "proj") {
    std::string A = readAtom(S, Pos);
    long long I = 0;
    if (!parseInt(A, I) || I < 0)
      return nullptr;
    std::vector<TermPtr> Args;
    if (!ReadArgsAndClose(Args) || Args.size() != 1)
      return nullptr;
    if (!Args[0]->getType()->isTuple() ||
        static_cast<std::size_t>(I) >= Args[0]->getType()->tupleElems().size())
      return nullptr;
    return mkProj(Args[0], static_cast<unsigned>(I));
  }
  OpKind Op;
  if (!opFromWireName(Head, Op))
    return nullptr;
  std::vector<TermPtr> Args;
  if (!ReadArgsAndClose(Args))
    return nullptr;
  // mkOp asserts arity and operand types; validate first so corrupted input
  // degrades to nullptr instead of tripping an assertion.
  auto Arity = [&](std::size_t N) { return Args.size() == N; };
  auto AllInt = [&](std::size_t From, std::size_t To) {
    for (std::size_t I = From; I < To; ++I)
      if (!Args[I]->getType()->isInt())
        return false;
    return true;
  };
  auto AllBool = [&](std::size_t From, std::size_t To) {
    for (std::size_t I = From; I < To; ++I)
      if (!Args[I]->getType()->isBool())
        return false;
    return true;
  };
  switch (Op) {
  case OpKind::Neg:
  case OpKind::Abs:
    if (!Arity(1) || !AllInt(0, 1))
      return nullptr;
    break;
  case OpKind::Not:
    if (!Arity(1) || !AllBool(0, 1))
      return nullptr;
    break;
  case OpKind::Add:
  case OpKind::Sub:
  case OpKind::Mul:
  case OpKind::Div:
  case OpKind::Mod:
  case OpKind::Min:
  case OpKind::Max:
  case OpKind::Lt:
  case OpKind::Le:
  case OpKind::Gt:
  case OpKind::Ge:
    if (!Arity(2) || !AllInt(0, 2))
      return nullptr;
    break;
  case OpKind::Eq:
  case OpKind::Ne:
    if (!Arity(2) || !sameType(Args[0]->getType(), Args[1]->getType()))
      return nullptr;
    break;
  case OpKind::And:
  case OpKind::Or:
    if (Args.empty() || !AllBool(0, Args.size()))
      return nullptr;
    break;
  case OpKind::Implies:
    if (!Arity(2) || !AllBool(0, 2))
      return nullptr;
    break;
  case OpKind::Ite:
    if (!Arity(3) || !Args[0]->getType()->isBool() ||
        !sameType(Args[1]->getType(), Args[2]->getType()))
      return nullptr;
    break;
  }
  return mkOp(Op, std::move(Args));
}

std::vector<TermPtr> leavesOf(const std::vector<VarPtr> &Params) {
  std::vector<TermPtr> Leaves;
  Leaves.reserve(Params.size());
  for (const VarPtr &P : Params)
    Leaves.push_back(mkVar(P));
  return Leaves;
}

} // namespace

std::string se2gis::termToText(const TermPtr &T,
                               const std::vector<TermPtr> &Leaves) {
  std::ostringstream OS;
  if (!writeTerm(T, Leaves, OS))
    return "";
  return OS.str();
}

TermPtr se2gis::termFromText(const std::string &S,
                             const std::vector<TermPtr> &Leaves) {
  std::size_t Pos = 0;
  TermPtr T = readTerm(S, Pos, Leaves);
  if (!T)
    return nullptr;
  skipSpaces(S, Pos);
  return Pos == S.size() ? T : nullptr;
}

std::string se2gis::termToText(const TermPtr &T,
                               const std::vector<VarPtr> &Params) {
  return termToText(T, leavesOf(Params));
}

TermPtr se2gis::termFromText(const std::string &S,
                             const std::vector<VarPtr> &Params) {
  return termFromText(S, leavesOf(Params));
}
