//===- DiskStore.cpp ------------------------------------------------------===//

#include "cache/DiskStore.h"

#include <array>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace se2gis;

namespace fs = std::filesystem;

namespace {

constexpr const char *MetaName = "store.meta";
constexpr const char *MetaHeader = "se2gis-cache v1";

std::uint32_t crcTableAt(std::size_t I) {
  static const auto Table = [] {
    std::array<std::uint32_t, 256> T{};
    for (std::uint32_t N = 0; N < 256; ++N) {
      std::uint32_t C = N;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xedb88320u ^ (C >> 1) : C >> 1;
      T[N] = C;
    }
    return T;
  }();
  return Table[I];
}

std::string escapePayload(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

/// Unescapes the payload between quotes; \p Pos starts after the opening
/// quote and ends after the closing one. Returns false on a malformed or
/// unterminated escape/string.
bool unescapePayload(const std::string &S, std::size_t &Pos,
                     std::string &Out) {
  Out.clear();
  while (Pos < S.size()) {
    char C = S[Pos++];
    if (C == '"')
      return true;
    if (C != '\\') {
      Out += C;
      continue;
    }
    if (Pos >= S.size())
      return false;
    switch (S[Pos++]) {
    case '\\':
      Out += '\\';
      break;
    case '"':
      Out += '"';
      break;
    case 'n':
      Out += '\n';
      break;
    case 'r':
      Out += '\r';
      break;
    case 't':
      Out += '\t';
      break;
    default:
      return false;
    }
  }
  return false;
}

bool expect(const std::string &S, std::size_t &Pos, const char *Lit) {
  std::size_t N = std::char_traits<char>::length(Lit);
  if (S.compare(Pos, N, Lit) != 0)
    return false;
  Pos += N;
  return true;
}

/// write(2) until everything landed or a hard error; EINTR-safe.
bool writeAll(int Fd, const char *Data, std::size_t Len) {
  while (Len > 0) {
    ssize_t N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<std::size_t>(N);
  }
  return true;
}

/// fsync a file by path (used for files we do not keep open: the compacted
/// segment before its rename, the meta file after creation).
void fsyncFile(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return;
  ::fsync(Fd);
  ::close(Fd);
}

/// fsync the directory entry so a rename/creation is durable, not just the
/// file contents.
void fsyncDir(const std::string &Dir) {
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return;
  ::fsync(Fd);
  ::close(Fd);
}

} // namespace

std::uint32_t se2gis::crc32Of(const std::string &Data) {
  std::uint32_t C = 0xffffffffu;
  for (unsigned char B : Data)
    C = crcTableAt((C ^ B) & 0xff) ^ (C >> 8);
  return C ^ 0xffffffffu;
}

std::string se2gis::formatStoreLine(const Hash128 &K,
                                    const std::string &Payload) {
  std::string Hex = K.hex();
  std::uint32_t Crc = crc32Of(Hex + Payload);
  std::ostringstream OS;
  OS << "{\"k\":\"" << Hex << "\",\"p\":\"" << escapePayload(Payload)
     << "\",\"c\":" << Crc << '}';
  return OS.str();
}

bool se2gis::parseStoreLine(const std::string &Line, Hash128 &KeyOut,
                            std::string &PayloadOut) {
  std::size_t Pos = 0;
  if (!expect(Line, Pos, "{\"k\":\""))
    return false;
  if (Pos + 32 > Line.size())
    return false;
  std::string Hex = Line.substr(Pos, 32);
  if (!Hash128::fromHex(Hex, KeyOut))
    return false;
  Pos += 32;
  if (!expect(Line, Pos, "\",\"p\":\""))
    return false;
  if (!unescapePayload(Line, Pos, PayloadOut))
    return false;
  if (!expect(Line, Pos, ",\"c\":"))
    return false;
  std::uint64_t Crc = 0;
  std::size_t Digits = 0;
  while (Pos < Line.size() && Line[Pos] >= '0' && Line[Pos] <= '9') {
    Crc = Crc * 10 + static_cast<std::uint64_t>(Line[Pos] - '0');
    ++Pos;
    ++Digits;
  }
  if (!Digits || Crc > 0xffffffffu)
    return false;
  if (!expect(Line, Pos, "}") || Pos != Line.size())
    return false;
  return static_cast<std::uint32_t>(Crc) == crc32Of(Hex + PayloadOut);
}

// --- DiskStore ----------------------------------------------------------===//

std::unique_ptr<DiskStore> DiskStore::open(const std::string &Dir,
                                           std::string &Error) {
  std::error_code EC;
  fs::path P(Dir);
  if (fs::exists(P, EC) && !fs::is_directory(P, EC)) {
    Error = "cache dir '" + Dir + "' exists but is not a directory";
    return nullptr;
  }
  fs::create_directories(P, EC);
  if (EC) {
    Error = "cannot create cache dir '" + Dir + "': " + EC.message();
    return nullptr;
  }

  fs::path Meta = P / MetaName;
  if (fs::exists(Meta, EC)) {
    std::ifstream In(Meta);
    std::string Header;
    std::getline(In, Header);
    if (Header != MetaHeader) {
      // Unknown version: refuse rather than guess at the format. The
      // operator can delete the directory to start fresh.
      Error = "cache dir '" + Dir + "' holds an incompatible store (header '" +
              Header + "'); delete it or point --cache-dir elsewhere";
      return nullptr;
    }
  } else {
    std::ofstream Out(Meta);
    if (!Out) {
      Error = "cache dir '" + Dir + "' is not writable";
      return nullptr;
    }
    Out << MetaHeader << '\n';
    if (!Out.flush()) {
      Error = "cache dir '" + Dir + "' is not writable";
      return nullptr;
    }
    Out.close();
    // A store whose meta header vanishes in a crash would be re-created
    // empty on the next open, silently orphaning the segments.
    fsyncFile(Meta.string());
    fsyncDir(Dir);
  }
  return std::unique_ptr<DiskStore>(new DiskStore(Dir));
}

std::string DiskStore::segmentPath(const std::string &Name) const {
  return (fs::path(Dir) / (Name + ".jsonl")).string();
}

DiskStore::SegmentMap DiskStore::loadSegment(const std::string &Name,
                                             std::uint64_t CompactBytes) {
  std::lock_guard<std::mutex> Lock(M);
  SegmentMap Map;
  std::string Path = segmentPath(Name);
  std::uint64_t FileBytes = 0;
  {
    std::ifstream In(Path, std::ios::binary);
    if (!In)
      return Map;
    std::string Line;
    while (std::getline(In, Line)) {
      FileBytes += Line.size() + 1;
      if (Line.empty())
        continue;
      Hash128 K;
      std::string Payload;
      if (!parseStoreLine(Line, K, Payload)) {
        ++CorruptSkipped;
        continue;
      }
      BytesLoaded += Line.size() + 1;
      Map[K] = std::move(Payload); // last record wins
    }
    // A final line without a newline (torn tail) is still delivered by
    // getline and either parses or is counted corrupt above.
  }

  // Size-bounded compaction: rewrite the segment from the deduplicated
  // survivors once duplicates/corruption have inflated it past the bound.
  // The rewrite goes through a temp file + rename so a crash mid-compaction
  // leaves either the old or the new file, never a half-written one.
  if (CompactBytes && FileBytes > CompactBytes) {
    std::string Tmp = Path + ".compact";
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (Out) {
      for (const auto &[K, Payload] : Map)
        Out << formatStoreLine(K, Payload) << '\n';
      Out.flush();
      if (Out) {
        Out.close();
        // Durability order matters: the compacted contents must be on disk
        // before the rename publishes them, and the directory entry after,
        // or a crash could leave the segment name pointing at garbage that
        // was reported compacted.
        fsyncFile(Tmp);
        auto It = Appenders.find(Name);
        if (It != Appenders.end()) {
          ::close(It->second); // reopen after the swap
          Appenders.erase(It);
        }
        std::error_code EC;
        fs::rename(Tmp, Path, EC);
        if (EC)
          fs::remove(Tmp, EC);
        else
          fsyncDir(Dir);
      }
    }
  }
  return Map;
}

int DiskStore::appenderFd(const std::string &Name) {
  auto It = Appenders.find(Name);
  if (It == Appenders.end()) {
    int Fd = ::open(segmentPath(Name).c_str(),
                    O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    It = Appenders.emplace(Name, Fd).first;
  }
  return It->second;
}

void DiskStore::append(const std::string &Name, const Hash128 &K,
                       const std::string &Payload) {
  std::lock_guard<std::mutex> Lock(M);
  int Fd = appenderFd(Name);
  if (Fd < 0)
    return; // store became unwritable mid-run: degrade to in-memory only
  std::string Line = formatStoreLine(K, Payload);
  Line += '\n';
  if (writeAll(Fd, Line.data(), Line.size()))
    BytesWritten += Line.size();
}

void DiskStore::syncLocked() {
  for (const auto &[Name, Fd] : Appenders) {
    (void)Name;
    if (Fd >= 0)
      ::fsync(Fd);
  }
  // New segment files must also survive: sync their directory entries.
  fsyncDir(Dir);
}

void DiskStore::sync() {
  std::lock_guard<std::mutex> Lock(M);
  syncLocked();
}

DiskStore::~DiskStore() {
  std::lock_guard<std::mutex> Lock(M);
  syncLocked();
  for (const auto &[Name, Fd] : Appenders) {
    (void)Name;
    if (Fd >= 0)
      ::close(Fd);
  }
  Appenders.clear();
}
