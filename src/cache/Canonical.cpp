//===- Canonical.cpp ------------------------------------------------------===//

#include "cache/Canonical.h"

#include "lang/Program.h"
#include "synth/Grammar.h"

#include <algorithm>
#include <unordered_map>

using namespace se2gis;

Hash128 se2gis::hash128String(Hash128 H, const std::string &S) {
  H = hash128Combine(H, S.size());
  // Pack 8 bytes per word; the length prefix disambiguates the zero padding
  // of the final partial word.
  std::uint64_t W = 0;
  int N = 0;
  for (char C : S) {
    W = (W << 8) | static_cast<unsigned char>(C);
    if (++N == 8) {
      H = hash128Combine(H, W);
      W = 0;
      N = 0;
    }
  }
  if (N)
    H = hash128Combine(H, W);
  return H;
}

// --- Shape hashing (pass 1) ---------------------------------------------===//

namespace {

/// Domain-separation tags; distinct per node kind and query section so that
/// e.g. a hard assertion can never collide with the same formula soft.
enum : std::uint64_t {
  TagVar = 0x11,
  TagIntLit = 0x12,
  TagBoolLit = 0x13,
  TagOp = 0x14,
  TagTuple = 0x15,
  TagProj = 0x16,
  TagCtor = 0x17,
  TagCall = 0x18,
  TagUnknown = 0x19,
  TagHole = 0x1a,
  TagTyInt = 0x21,
  TagTyBool = 0x22,
  TagTyTuple = 0x23,
  TagTyData = 0x24,
  TagHardSection = 0x31,
  TagSoftSection = 0x32,
  TagRequestSection = 0x33,
  TagSystemSection = 0x34,
  TagGrammar = 0x35,
  TagUnknownSig = 0x36
};

std::uint64_t fold64(std::uint64_t Seed, std::uint64_t V) {
  return hashCombine(Seed, V);
}

std::uint64_t typeHash64(const TypePtr &Ty) {
  switch (Ty->getKind()) {
  case TypeKind::Int:
    return TagTyInt;
  case TypeKind::Bool:
    return TagTyBool;
  case TypeKind::Tuple: {
    std::uint64_t H = TagTyTuple;
    for (const TypePtr &E : Ty->tupleElems())
      H = fold64(H, typeHash64(E));
    return H;
  }
  case TypeKind::Data: {
    // Datatypes hash by name, not declaration pointer, so keys survive
    // re-parsing the same benchmark in another process.
    std::uint64_t H = TagTyData;
    const std::string &N = Ty->getDatatype()->getName();
    H = fold64(H, N.size());
    for (char C : N)
      H = fold64(H, static_cast<unsigned char>(C));
    return H;
  }
  }
  return 0;
}

std::uint64_t stringHash64(std::uint64_t Seed, const std::string &S) {
  Seed = fold64(Seed, S.size());
  for (char C : S)
    Seed = fold64(Seed, static_cast<unsigned char>(C));
  return Seed;
}

bool isCommutative(OpKind Op) {
  switch (Op) {
  case OpKind::Add:
  case OpKind::Mul:
  case OpKind::Min:
  case OpKind::Max:
  case OpKind::Eq:
  case OpKind::Ne:
  case OpKind::And:
  case OpKind::Or:
    return true;
  default:
    return false;
  }
}

/// Per-traversal memo of *colored* shape hashes; terms are shared subgraphs,
/// so this keeps the colored pass linear in the DAG size. Plain shape hashes
/// don't need it: they are a pure function of the immutable term, so they
/// memoize in the term itself (Term::cachedShapeHash) and persist across
/// traversals — an incremental re-probe of a grown query only hashes the
/// nodes it has never seen.
using ShapeMemo = std::unordered_map<const Term *, std::uint64_t>;

std::uint64_t shapeHashMemo(const TermPtr &T);

/// Order-independent refinement of variable identity (one Weisfeiler–Lehman
/// round): a variable's *color* is a hash of the multiset of its occurrence
/// paths, where a path folds the node kinds from the assertion's root down —
/// including the argument position only for non-commutative positions. Two
/// constructions of the same query yield the same colors, while variables
/// with different occurrence patterns (e.g. the `x` of `{x+y>3, x<10}`
/// versus its `y`) get different ones, so the canonical fold below can break
/// commutative-operand ties without reintroducing construction order.
class VarColoring {
public:
  /// Accumulates the occurrence paths of every variable under \p Root. The
  /// path is seeded with the root's (name-insensitive) shape hash plus the
  /// query section, so colors don't depend on the assertion list order.
  void addRoot(const TermPtr &Root, std::uint64_t SectionTag) {
    walk(Root, fold64(fold64(0x5eed, SectionTag), shapeHashMemo(Root)));
  }

  void finalize() {
    for (auto &[Id, Paths] : PathSets) {
      std::sort(Paths.begin(), Paths.end()); // multiset: order-independent
      std::uint64_t C = 0xC0105;
      for (std::uint64_t P : Paths)
        C = fold64(C, P);
      Colors[Id] = C;
    }
  }

  std::uint64_t colorOf(unsigned Id) const {
    auto It = Colors.find(Id);
    return It == Colors.end() ? 0 : It->second;
  }

private:
  void walk(const TermPtr &T, std::uint64_t Path) {
    switch (T->getKind()) {
    case TermKind::Var:
      PathSets[T->getVar()->Id].push_back(Path);
      return;
    case TermKind::IntLit:
    case TermKind::BoolLit:
    case TermKind::Hole:
      return;
    case TermKind::Op: {
      std::uint64_t P =
          fold64(fold64(Path, TagOp), static_cast<std::uint64_t>(T->getOp()));
      bool Comm = isCommutative(T->getOp());
      for (size_t I = 0; I < T->numArgs(); ++I)
        walk(T->getArg(I), Comm ? P : fold64(P, I));
      return;
    }
    case TermKind::Tuple: {
      std::uint64_t P = fold64(Path, TagTuple);
      for (size_t I = 0; I < T->numArgs(); ++I)
        walk(T->getArg(I), fold64(P, I));
      return;
    }
    case TermKind::Proj:
      walk(T->getArg(0), fold64(fold64(Path, TagProj), T->getIndex()));
      return;
    case TermKind::Ctor: {
      std::uint64_t P = stringHash64(fold64(Path, TagCtor), T->getCtor()->Name);
      for (size_t I = 0; I < T->numArgs(); ++I)
        walk(T->getArg(I), fold64(P, I));
      return;
    }
    case TermKind::Call:
    case TermKind::Unknown: {
      std::uint64_t P = stringHash64(
          fold64(Path, T->getKind() == TermKind::Call ? TagCall : TagUnknown),
          T->getCallee());
      for (size_t I = 0; I < T->numArgs(); ++I)
        walk(T->getArg(I), fold64(P, I));
      return;
    }
    }
  }

  std::unordered_map<unsigned, std::vector<std::uint64_t>> PathSets;
  std::unordered_map<unsigned, std::uint64_t> Colors;
};

/// Shape hash refined by variable colors: identical to \c shapeHashMemo
/// except that Var nodes fold in their color, so commutative ties between
/// structurally-equal-but-differently-occurring variables resolve the same
/// way regardless of construction order. Only used for *ordering* — the
/// final key is produced by the slot-assigning fold, so an unresolved tie
/// costs a potential cache miss, never a wrong hit.
std::uint64_t coloredShapeHashMemo(const TermPtr &T, const VarColoring &Colors,
                                   ShapeMemo &Memo) {
  auto It = Memo.find(T.get());
  if (It != Memo.end())
    return It->second;
  std::uint64_t H = 0;
  switch (T->getKind()) {
  case TermKind::Var:
    H = fold64(fold64(TagVar, typeHash64(T->getType())),
               Colors.colorOf(T->getVar()->Id));
    break;
  case TermKind::IntLit:
    H = fold64(TagIntLit, static_cast<std::uint64_t>(T->getIntValue()));
    break;
  case TermKind::BoolLit:
    H = fold64(TagBoolLit, T->getBoolValue());
    break;
  case TermKind::Op: {
    H = fold64(TagOp, static_cast<std::uint64_t>(T->getOp()));
    std::vector<std::uint64_t> Hs;
    Hs.reserve(T->numArgs());
    for (const TermPtr &A : T->getArgs())
      Hs.push_back(coloredShapeHashMemo(A, Colors, Memo));
    if (isCommutative(T->getOp()))
      std::sort(Hs.begin(), Hs.end());
    for (std::uint64_t A : Hs)
      H = fold64(H, A);
    break;
  }
  case TermKind::Tuple:
    H = TagTuple;
    for (const TermPtr &A : T->getArgs())
      H = fold64(H, coloredShapeHashMemo(A, Colors, Memo));
    break;
  case TermKind::Proj:
    H = fold64(TagProj, T->getIndex());
    H = fold64(H, coloredShapeHashMemo(T->getArg(0), Colors, Memo));
    break;
  case TermKind::Ctor:
    H = stringHash64(TagCtor, T->getCtor()->Name);
    for (const TermPtr &A : T->getArgs())
      H = fold64(H, coloredShapeHashMemo(A, Colors, Memo));
    break;
  case TermKind::Call:
    H = stringHash64(TagCall, T->getCallee());
    for (const TermPtr &A : T->getArgs())
      H = fold64(H, coloredShapeHashMemo(A, Colors, Memo));
    break;
  case TermKind::Unknown:
    H = stringHash64(TagUnknown, T->getCallee());
    for (const TermPtr &A : T->getArgs())
      H = fold64(H, coloredShapeHashMemo(A, Colors, Memo));
    break;
  case TermKind::Hole:
    H = fold64(TagHole, T->getIndex());
    H = fold64(H, typeHash64(T->getType()));
    break;
  }
  Memo.emplace(T.get(), H);
  return H;
}

std::uint64_t shapeHashMemo(const TermPtr &T) {
  if (std::uint64_t Cached = T->cachedShapeHash())
    return Cached;
  std::uint64_t H = 0;
  switch (T->getKind()) {
  case TermKind::Var:
    // Name- and id-insensitive: only the type shapes the hash here; the
    // renaming pass below distinguishes *which* variable occurs where.
    H = fold64(TagVar, typeHash64(T->getType()));
    break;
  case TermKind::IntLit:
    H = fold64(TagIntLit, static_cast<std::uint64_t>(T->getIntValue()));
    break;
  case TermKind::BoolLit:
    H = fold64(TagBoolLit, T->getBoolValue());
    break;
  case TermKind::Op: {
    H = fold64(TagOp, static_cast<std::uint64_t>(T->getOp()));
    std::vector<std::uint64_t> Hs;
    Hs.reserve(T->numArgs());
    for (const TermPtr &A : T->getArgs())
      Hs.push_back(shapeHashMemo(A));
    if (isCommutative(T->getOp()))
      std::sort(Hs.begin(), Hs.end());
    for (std::uint64_t A : Hs)
      H = fold64(H, A);
    break;
  }
  case TermKind::Tuple:
    H = TagTuple;
    for (const TermPtr &A : T->getArgs())
      H = fold64(H, shapeHashMemo(A));
    break;
  case TermKind::Proj:
    H = fold64(TagProj, T->getIndex());
    H = fold64(H, shapeHashMemo(T->getArg(0)));
    break;
  case TermKind::Ctor:
    H = stringHash64(TagCtor, T->getCtor()->Name);
    for (const TermPtr &A : T->getArgs())
      H = fold64(H, shapeHashMemo(A));
    break;
  case TermKind::Call:
    H = stringHash64(TagCall, T->getCallee());
    for (const TermPtr &A : T->getArgs())
      H = fold64(H, shapeHashMemo(A));
    break;
  case TermKind::Unknown:
    H = stringHash64(TagUnknown, T->getCallee());
    for (const TermPtr &A : T->getArgs())
      H = fold64(H, shapeHashMemo(A));
    break;
  case TermKind::Hole:
    H = fold64(TagHole, T->getIndex());
    H = fold64(H, typeHash64(T->getType()));
    break;
  }
  // 0 is the "uncomputed" sentinel of the term-resident cache; remap the
  // (astronomically unlikely) collision so cached values are always valid.
  if (H == 0)
    H = 0x5aa5e;
  T->cacheShapeHash(H);
  return H;
}

/// Pass 2: folds \p T into a 128-bit accumulator, assigning canonical
/// indices to variables on first visit and visiting commutative operands in
/// color-refined shape-hash order. The ordering is name- and id-insensitive,
/// so two alpha-equivalent queries walk their operands in the same order and
/// hand out the same indices.
class CanonicalFolder {
public:
  explicit CanonicalFolder(const VarColoring &Colors) : Colors(Colors) {}

  Hash128 fold(Hash128 H, const TermPtr &T) {
    switch (T->getKind()) {
    case TermKind::Var:
      H = hash128Combine(H, TagVar);
      H = hash128Combine(H, slotOf(T->getVar()));
      return hash128Combine(H, typeHash64(T->getType()));
    case TermKind::IntLit:
      H = hash128Combine(H, TagIntLit);
      return hash128Combine(H, static_cast<std::uint64_t>(T->getIntValue()));
    case TermKind::BoolLit:
      H = hash128Combine(H, TagBoolLit);
      return hash128Combine(H, T->getBoolValue());
    case TermKind::Op: {
      H = hash128Combine(H, TagOp);
      H = hash128Combine(H, static_cast<std::uint64_t>(T->getOp()));
      H = hash128Combine(H, T->numArgs());
      for (const TermPtr &A : ordered(T))
        H = fold(H, A);
      return H;
    }
    case TermKind::Tuple:
      H = hash128Combine(H, TagTuple);
      H = hash128Combine(H, T->numArgs());
      for (const TermPtr &A : T->getArgs())
        H = fold(H, A);
      return H;
    case TermKind::Proj:
      H = hash128Combine(H, TagProj);
      H = hash128Combine(H, T->getIndex());
      return fold(H, T->getArg(0));
    case TermKind::Ctor:
      H = hash128Combine(H, TagCtor);
      H = hash128String(H, T->getCtor()->Name);
      for (const TermPtr &A : T->getArgs())
        H = fold(H, A);
      return H;
    case TermKind::Call:
      H = hash128Combine(H, TagCall);
      H = hash128String(H, T->getCallee());
      for (const TermPtr &A : T->getArgs())
        H = fold(H, A);
      return H;
    case TermKind::Unknown:
      H = hash128Combine(H, TagUnknown);
      H = hash128String(H, T->getCallee());
      for (const TermPtr &A : T->getArgs())
        H = fold(H, A);
      return H;
    case TermKind::Hole:
      H = hash128Combine(H, TagHole);
      H = hash128Combine(H, T->getIndex());
      return hash128Combine(H, typeHash64(T->getType()));
    }
    return H;
  }

  /// Visits \p Terms as a multiset: sorted by colored shape hash (stable on
  /// ties, so equal-shaped members keep their relative order) under \p Tag.
  Hash128 foldMultiset(Hash128 H, std::uint64_t Tag,
                       const std::vector<TermPtr> &Terms) {
    std::vector<size_t> Order(Terms.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      return coloredShapeHashMemo(Terms[A], Colors, ColoredShapes) <
             coloredShapeHashMemo(Terms[B], Colors, ColoredShapes);
    });
    H = hash128Combine(H, Tag);
    H = hash128Combine(H, Terms.size());
    for (size_t I : Order)
      H = fold(H, Terms[I]);
    return H;
  }

  std::vector<VarPtr> takeVarOrder() { return std::move(VarOrder); }

private:
  std::uint64_t slotOf(const VarPtr &V) {
    auto [It, Fresh] = Slots.emplace(V->Id, VarOrder.size());
    if (Fresh)
      VarOrder.push_back(V);
    return It->second;
  }

  /// Commutative operands in colored shape-hash order (stable on ties).
  std::vector<TermPtr> ordered(const TermPtr &T) {
    std::vector<TermPtr> Args = T->getArgs();
    if (isCommutative(T->getOp()))
      std::stable_sort(Args.begin(), Args.end(),
                       [&](const TermPtr &A, const TermPtr &B) {
                         return coloredShapeHashMemo(A, Colors,
                                                     ColoredShapes) <
                                coloredShapeHashMemo(B, Colors, ColoredShapes);
                       });
    return Args;
  }

  const VarColoring &Colors;
  ShapeMemo ColoredShapes; // separate memo: colored hashes differ per query
  std::unordered_map<unsigned, std::uint64_t> Slots;
  std::vector<VarPtr> VarOrder;
};

} // namespace

// --- Public entry points ------------------------------------------------===//

std::uint64_t se2gis::shapeHash(const TermPtr &T) {
  return shapeHashMemo(T);
}

Hash128 se2gis::canonicalTermHash(const TermPtr &T) {
  VarColoring Colors;
  Colors.addRoot(T, TagSystemSection);
  Colors.finalize();
  CanonicalFolder F(Colors);
  return F.fold(hash128Seed(TagSystemSection), T);
}

CanonicalQuery se2gis::canonicalizeQuery(const std::vector<TermPtr> &Hard,
                                         const std::vector<TermPtr> &Soft,
                                         const std::vector<TermPtr> &Requests) {
  VarColoring Colors;
  for (const TermPtr &T : Hard)
    Colors.addRoot(T, TagHardSection);
  for (const TermPtr &T : Soft)
    Colors.addRoot(T, TagSoftSection);
  for (const TermPtr &T : Requests)
    Colors.addRoot(T, TagRequestSection);
  Colors.finalize();
  CanonicalFolder F(Colors);
  Hash128 H = hash128Seed(TagHardSection);
  H = F.foldMultiset(H, TagHardSection, Hard);
  H = F.foldMultiset(H, TagSoftSection, Soft);
  // Request order is semantic (values come back in request order), so the
  // requests fold as a sequence, not a multiset.
  H = hash128Combine(H, TagRequestSection);
  H = hash128Combine(H, Requests.size());
  for (const TermPtr &R : Requests)
    H = F.fold(H, R);
  CanonicalQuery Q;
  Q.Key = H;
  Q.VarOrder = F.takeVarOrder();
  return Q;
}

Hash128 se2gis::canonicalSystemHash(const std::vector<TermPtr> &Terms) {
  VarColoring Colors;
  for (const TermPtr &T : Terms)
    Colors.addRoot(T, TagSystemSection);
  Colors.finalize();
  CanonicalFolder F(Colors);
  return F.foldMultiset(hash128Seed(TagSystemSection), TagSystemSection,
                        Terms);
}

Hash128 se2gis::hashGrammarConfig(Hash128 H, const GrammarConfig &Config) {
  H = hash128Combine(H, TagGrammar);
  std::uint64_t Flags = 0;
  Flags |= Config.AllowMinMax ? 1u : 0u;
  Flags |= Config.AllowMul ? 2u : 0u;
  Flags |= Config.AllowDiv ? 4u : 0u;
  Flags |= Config.AllowAbs ? 8u : 0u;
  Flags |= Config.AllowMod ? 16u : 0u;
  Flags |= Config.AllowIte ? 32u : 0u;
  H = hash128Combine(H, Flags);
  H = hash128Combine(H, Config.Constants.size());
  for (long long C : Config.Constants) // std::set: deterministic order
    H = hash128Combine(H, static_cast<std::uint64_t>(C));
  return H;
}

Hash128 se2gis::hashUnknownSig(Hash128 H, const UnknownSig &Sig) {
  H = hash128Combine(H, TagUnknownSig);
  H = hash128String(H, Sig.Name);
  H = hash128Combine(H, Sig.ArgTypes.size());
  for (const TypePtr &Ty : Sig.ArgTypes)
    H = hash128Combine(H, typeHash64(Ty));
  return hash128Combine(H, typeHash64(Sig.RetTy));
}
