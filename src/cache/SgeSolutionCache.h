//===- SgeSolutionCache.h - Solved-candidate and PBE memo caches *- C++-*-===//
///
/// \file
/// The synthesis-side caches of the memoization subsystem (both in-memory:
/// their payloads are live terms, cheap to rebuild and verified on use).
///
/// \c SgeSolutionCache maps a guarded-equation-system key (canonical system
/// hash ⊎ grammar config ⊎ unknown signatures) to the solution that solved
/// it. \c SgeSolver::solve uses a hit to *warm-start* its CEGIS loop: the
/// cached candidate replaces the default initial candidate and goes through
/// the full round-0 verification, so a wrong or stale entry costs one
/// verification round and nothing else. The refinement/coarsening loops
/// re-emit structurally equal systems across rounds, and the Portfolio's
/// members emit them concurrently — both collide here.
///
/// \c PbeMemo memoizes enumerator runs: key = grammar ⊎ leaf values per
/// example ⊎ outputs ⊎ size bound; payload = the found term (leaf-indexed
/// text, so entries transfer between Enumerator instances with different
/// variables) or a definitive "no term of this size fits". Negative
/// entries are recorded only for exhausted searches, never deadline exits.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CACHE_SGESOLUTIONCACHE_H
#define SE2GIS_CACHE_SGESOLUTIONCACHE_H

#include "cache/Canonical.h"
#include "cache/ShardedCache.h"
#include "eval/Interp.h"

#include <optional>
#include <string>

namespace se2gis {

/// A cached SGE solution: the solved bindings, with the parameter
/// variables they are expressed over. Consumers re-express the bodies over
/// their own parameters (the binding's Params align positionally with the
/// unknown's signature).
struct SgeCacheEntry {
  UnknownBindings Solution;
};

class SgeSolutionCache {
public:
  /// \returns the solved candidate for system key \p K, if any.
  std::optional<SgeCacheEntry> lookup(const Hash128 &K);

  /// Records a solved system. Existing entries win (first solver there).
  void insert(const Hash128 &K, SgeCacheEntry E);

  void clear() { Mem.clear(); }
  std::size_t size() const { return Mem.size(); }

private:
  ShardedCache<SgeCacheEntry> Mem{1 << 16};
};

SgeSolutionCache &sgeSolutionCache();

/// One memoized PBE enumeration outcome.
struct PbeMemoEntry {
  /// False: the search space up to the size bound was exhausted with no
  /// match (a definitive negative for this key).
  bool Found = false;
  /// When Found: the term in leaf-indexed text form (cache/TermIO.h).
  std::string TermText;
};

class PbeMemo {
public:
  std::optional<PbeMemoEntry> lookup(const Hash128 &K);
  void insert(const Hash128 &K, PbeMemoEntry E);

  void clear() { Mem.clear(); }
  std::size_t size() const { return Mem.size(); }

private:
  ShardedCache<PbeMemoEntry> Mem{1 << 18};
};

PbeMemo &pbeMemo();

} // namespace se2gis

#endif // SE2GIS_CACHE_SGESOLUTIONCACHE_H
