//===- InvariantInfer.h - Algorithm 2: learning invariants ------*- C++-*-===//
///
/// \file
/// Algorithm 2 (InferInvariant): learn a predicate from a spurious
/// certificate by example-guided synthesis. The certificate's model is the
/// negative example; positive examples come from failed verifications:
///
///  - mistyped certificates learn a recursion-free strengthening of Iθ over
///    the equation's variables, verified against
///        ∀ z⃗ · Iθ(t) ⇒ pred(σ(domain))           (§7.2.1)
///  - unsatisfiable certificates learn an invariant of the image of f∘r
///    over a single output variable, verified against
///        ∀ e⃗, y · pred(f(e⃗, r(y)))               (§7.2.2)
///
/// Verification runs the induction prover first and falls back to bounded
/// checking (tracking which one succeeded — the paper reports 70% of
/// inferred invariants proved by induction).
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CORE_INVARIANTINFER_H
#define SE2GIS_CORE_INVARIANTINFER_H

#include "core/Certificates.h"
#include "smt/Induction.h"
#include "synth/Enumerator.h"

#include <optional>

namespace se2gis {

/// A predicate learned by Algorithm 2.
struct LearnedInvariant {
  CertKind Kind = CertKind::Mistyped;
  size_t EqnIndex = 0;
  /// The predicate over \c Domain.
  TermPtr Pred;
  /// Ordered domain variables. For mistyped invariants these are the
  /// equation's variables (pred strengthens that guard); for image
  /// invariants a single fresh variable over the output type.
  std::vector<VarPtr> Domain;
  /// True when the final Verify succeeded by induction, false when only the
  /// bounded check passed.
  bool ByInduction = false;
  /// Lemma form for re-use in later induction proofs (final solution
  /// verification): \c LemmaPattern is the certificate's term (or a bare
  /// variable for image invariants) and \c LemmaFormula the verified goal
  /// over the pattern's variables and \c LemmaExtras.
  TermPtr LemmaPattern;
  TermPtr LemmaFormula;
  std::vector<VarPtr> LemmaExtras;
};

/// Runs Algorithm 2 for one problem.
class InvariantLearner {
public:
  InvariantLearner(const Problem &P, Approximation &Approx,
                   GrammarConfig Config)
      : P(P), Approx(Approx), Config(std::move(Config)) {}

  /// Learns a predicate from \p Cert; nullopt when synthesis or
  /// verification diverges (the paper's "invariant inference diverges"
  /// failure mode).
  std::optional<LearnedInvariant> learn(const SCertificate &Cert,
                                        const Deadline &Budget);

  /// Applies \p Inv to the approximation (strengthens P).
  void apply(const LearnedInvariant &Inv);

  int MaxIterations = 12;
  int PbeMaxSize = 9;
  BoundedOptions Bounded;
  InductionOptions Induction;

private:
  std::optional<LearnedInvariant> learnMistyped(const SCertificate &Cert,
                                                const Deadline &Budget);
  std::optional<LearnedInvariant> learnImage(const SCertificate &Cert,
                                             const Deadline &Budget);

  /// Evaluates f(e⃗, r(y)) concretely.
  ValuePtr applyReference(const std::vector<ValuePtr> &Extras,
                          const ValuePtr &Y) const;

  const Problem &P;
  Approximation &Approx;
  GrammarConfig Config;
};

} // namespace se2gis

#endif // SE2GIS_CORE_INVARIANTINFER_H
