//===- InvariantInfer.cpp -------------------------------------------------===//

#include "core/InvariantInfer.h"

#include "ast/Simplify.h"
#include "eval/Interp.h"
#include "smt/Induction.h"
#include "smt/Solver.h"
#include "support/Diagnostics.h"
#include "synth/SgeSolver.h"

#include <cassert>

using namespace se2gis;

ValuePtr
InvariantLearner::applyReference(const std::vector<ValuePtr> &Extras,
                                 const ValuePtr &Y) const {
  Interpreter I(*P.Prog);
  ValuePtr R = I.call(P.Repr, {Y});
  std::vector<ValuePtr> Args = Extras;
  Args.push_back(std::move(R));
  return I.call(P.Reference, Args);
}

std::optional<LearnedInvariant>
InvariantLearner::learn(const SCertificate &Cert, const Deadline &Budget) {
  // Predicate search probes many candidate invariants against the same
  // witness data; keep the queries on one warm session.
  SmtSessionScope SessionScope;
  return Cert.Kind == CertKind::Mistyped ? learnMistyped(Cert, Budget)
                                         : learnImage(Cert, Budget);
}

void InvariantLearner::apply(const LearnedInvariant &Inv) {
  if (Inv.Kind == CertKind::Mistyped) {
    // The predicate ranges over the equation's own variables.
    Approx.addLocalGuard(Inv.EqnIndex, Inv.Pred);
    return;
  }
  Approx.addImageInvariant(Inv.Domain[0], Inv.Pred);
}

namespace {

/// Default scalar value by type (used for irrelevant coordinates of a
/// positive example).
ValuePtr defaultScalar(const TypePtr &Ty) {
  if (Ty->isInt())
    return Value::mkInt(0);
  if (Ty->isBool())
    return Value::mkBool(false);
  std::vector<ValuePtr> Elems;
  for (const TypePtr &E : Ty->tupleElems())
    Elems.push_back(defaultScalar(E));
  return Value::mkTuple(std::move(Elems));
}

/// Smallest concrete value of a datatype: the first base constructor with
/// default scalar fields (used when the refutation formula does not
/// constrain a data variable at all, e.g. on the first iteration where the
/// candidate predicate is still false).
ValuePtr defaultValueOf(const Datatype *D);

ValuePtr defaultFieldValue(const TypePtr &Ty) {
  if (Ty->isData())
    return defaultValueOf(Ty->getDatatype());
  return defaultScalar(Ty);
}

ValuePtr defaultValueOf(const Datatype *D) {
  for (unsigned CI = 0; CI < D->numConstructors(); ++CI) {
    if (!D->isBaseConstructor(CI))
      continue;
    const ConstructorDecl &C = D->getConstructor(CI);
    std::vector<ValuePtr> Fields;
    for (const TypePtr &FT : C.Fields)
      Fields.push_back(defaultFieldValue(FT));
    return Value::mkData(&C, std::move(Fields));
  }
  // No base constructor without datatype fields at the top level: recurse
  // through the first constructor (datatype well-formedness bounds this).
  const ConstructorDecl &C = D->getConstructor(0);
  std::vector<ValuePtr> Fields;
  for (const TypePtr &FT : C.Fields)
    Fields.push_back(defaultFieldValue(FT));
  return Value::mkData(&C, std::move(Fields));
}

std::vector<TermPtr> leavesFor(const std::vector<VarPtr> &Domain) {
  std::vector<TermPtr> Leaves;
  std::function<void(const TermPtr &)> Collect = [&](const TermPtr &Root) {
    if (Root->getType()->isTuple()) {
      for (unsigned I = 0; I < Root->getType()->tupleElems().size(); ++I)
        Collect(mkProj(Root, I));
      return;
    }
    Leaves.push_back(Root);
  };
  for (const VarPtr &D : Domain)
    Collect(mkVar(D));
  return Leaves;
}

} // namespace

std::optional<LearnedInvariant>
InvariantLearner::learnMistyped(const SCertificate &Cert,
                                const Deadline &Budget) {
  const ApproxTerm &AT = Approx.terms()[Cert.EqnIndex];

  // Domain: every variable assigned by the model. The substitution sigma
  // interprets elimination variables as f(e⃗, r(y)).
  std::vector<VarPtr> Domain;
  Substitution Sigma;
  for (const auto &[V, Val] : Cert.M.assignments()) {
    (void)Val;
    Domain.push_back(V);
    VarPtr Orig;
    for (const auto &[O, E] : AT.Parts.Alpha)
      if (E->Id == V->Id)
        Orig = O;
    if (Orig)
      Sigma.emplace_back(
          V->Id, Approx.eliminator().elimVarDefinition(Orig, AT.Parts.Extras));
    else
      Sigma.emplace_back(V->Id, mkVar(V));
  }

  // The negative example is the model itself.
  std::vector<PbeExample> Negatives, Positives;
  {
    PbeExample Neg;
    for (const VarPtr &D : Domain)
      Neg.Inputs[D->Id] = Cert.M.lookup(D->Id);
    Neg.Output = Value::mkBool(false);
    Negatives.push_back(std::move(Neg));
  }

  TermPtr Invariant = P.Invariant.empty()
                          ? mkTrue()
                          : mkCall(P.Invariant, Type::boolTy(), {AT.T});
  Enumerator En(Config, leavesFor(Domain));

  TermPtr Pred = mkFalse();
  LearnedInvariant Result;
  Result.Kind = CertKind::Mistyped;
  Result.EqnIndex = Cert.EqnIndex;
  Result.Domain = Domain;

  for (int Iter = 0; Iter < MaxIterations; ++Iter) {
    if (Budget.expired())
      return std::nullopt;

    TermPtr PredSigma = substitute(Pred, Sigma);
    TermPtr Goal = simplify(mkOp(OpKind::Implies, {Invariant, PredSigma}));

    InductionOptions IOpts = Induction;
    IOpts.Budget = Budget;
    auto Accept = [&](bool ByInduction) {
      Result.Pred = Pred;
      Result.ByInduction = ByInduction;
      Result.LemmaPattern = AT.T;
      Result.LemmaFormula = Goal;
      Result.LemmaExtras = AT.Parts.Extras;
      return Result;
    };
    if (proveByInduction(*P.Prog, Goal, IOpts))
      return Accept(true);

    BoundedOptions BOpts = Bounded;
    BOpts.Budget = Budget;
    TermPtr Refute = simplify(mkAndList({Invariant, mkNot(PredSigma)}));
    auto BW = boundedSat(*P.Prog, Refute, BOpts);
    if (!BW) {
      // No bounded counterexample: accept with bounded confidence.
      return Accept(false);
    }

    // Extract a positive example from the counterexample.
    std::vector<ValuePtr> ExtraVals;
    for (const VarPtr &E : AT.Parts.Extras) {
      ValuePtr V = BW->Scalars.lookup(E->Id);
      ExtraVals.push_back(V ? V : defaultScalar(E->Ty));
    }
    PbeExample Pos;
    for (const VarPtr &D : Domain) {
      VarPtr Orig;
      for (const auto &[O, Ev] : AT.Parts.Alpha)
        if (Ev->Id == D->Id)
          Orig = O;
      if (Orig) {
        ValuePtr Y = BW->lookupData(Orig->Id);
        if (!Y)
          Y = defaultValueOf(Orig->Ty->getDatatype());
        Pos.Inputs[D->Id] = applyReference(ExtraVals, Y);
      } else {
        ValuePtr V = BW->Scalars.lookup(D->Id);
        Pos.Inputs[D->Id] = V ? V : defaultScalar(D->Ty);
      }
    }
    Pos.Output = Value::mkBool(true);
    Positives.push_back(std::move(Pos));

    std::vector<PbeExample> Examples = Positives;
    Examples.insert(Examples.end(), Negatives.begin(), Negatives.end());
    auto Next = En.synthesize(Type::boolTy(), Examples, PbeMaxSize, Budget);
    if (!Next)
      return std::nullopt;
    Pred = std::move(*Next);
  }
  return std::nullopt;
}

std::optional<LearnedInvariant>
InvariantLearner::learnImage(const SCertificate &Cert,
                             const Deadline &Budget) {
  VarPtr X = freshVar("img", P.RetTy);
  std::vector<VarPtr> Domain = {X};

  // Fresh universally quantified input for the verification goal.
  VarPtr Y = freshVar("y", Type::dataTy(P.Theta));
  const RecFunction *Ref = P.Prog->findFunction(P.Reference);
  std::vector<VarPtr> Extras;
  for (const VarPtr &E : Ref->getParams())
    Extras.push_back(freshVar(E->Name, E->Ty));
  TermPtr Image = Approx.eliminator().elimVarDefinition(Y, Extras);

  std::vector<PbeExample> Negatives, Positives;
  {
    PbeExample Neg;
    Neg.Inputs[X->Id] = Cert.BadValue;
    Neg.Output = Value::mkBool(false);
    Negatives.push_back(std::move(Neg));
  }

  Enumerator En(Config, leavesFor(Domain));
  TermPtr Pred = mkFalse();
  LearnedInvariant Result;
  Result.Kind = CertKind::Unsatisfiable;
  Result.EqnIndex = Cert.EqnIndex;
  Result.Domain = Domain;

  for (int Iter = 0; Iter < MaxIterations; ++Iter) {
    if (Budget.expired())
      return std::nullopt;

    Substitution Sigma;
    Sigma.emplace_back(X->Id, Image);
    TermPtr Goal = simplify(substitute(Pred, Sigma));

    InductionOptions IOpts = Induction;
    IOpts.Budget = Budget;
    auto Accept = [&](bool ByInduction) {
      Result.Pred = Pred;
      Result.ByInduction = ByInduction;
      Result.LemmaPattern = mkVar(Y);
      Result.LemmaFormula = Goal;
      Result.LemmaExtras = Extras;
      return Result;
    };
    if (proveByInduction(*P.Prog, Goal, IOpts))
      return Accept(true);

    BoundedOptions BOpts = Bounded;
    BOpts.Budget = Budget;
    auto BW = boundedSat(*P.Prog, simplify(mkNot(Goal)), BOpts);
    if (!BW) {
      return Accept(false);
    }

    std::vector<ValuePtr> ExtraVals;
    for (const VarPtr &E : Extras) {
      ValuePtr V = BW->Scalars.lookup(E->Id);
      ExtraVals.push_back(V ? V : defaultScalar(E->Ty));
    }
    ValuePtr YV = BW->lookupData(Y->Id);
    if (!YV)
      YV = defaultValueOf(P.Theta);
    PbeExample Pos;
    Pos.Inputs[X->Id] = applyReference(ExtraVals, YV);
    Pos.Output = Value::mkBool(true);
    Positives.push_back(std::move(Pos));

    std::vector<PbeExample> Examples = Positives;
    Examples.insert(Examples.end(), Negatives.begin(), Negatives.end());
    auto Next = En.synthesize(Type::boolTy(), Examples, PbeMaxSize, Budget);
    if (!Next)
      return std::nullopt;
    Pred = std::move(*Next);
  }
  return std::nullopt;
}
