//===- Verify.cpp ---------------------------------------------------------===//

#include "core/Verify.h"

#include "ast/Simplify.h"
#include "smt/Induction.h"
#include "smt/Solver.h"
#include "support/Diagnostics.h"

#include <sstream>

using namespace se2gis;

VerifyResult se2gis::verifySolution(const Problem &P,
                                    const UnknownBindings &Solution,
                                    const VerifyOptions &Opts,
                                    const Deadline &Budget) {
  // One session region: the per-equation bounded checks and induction
  // queries below share the thread's warm solver.
  SmtSessionScope SessionScope;
  const RecFunction *Ref = P.Prog->findFunction(P.Reference);

  VarPtr X = freshVar("x", Type::dataTy(P.Theta));
  std::vector<TermPtr> RefArgs, TgtArgs;
  // Quantify over the reference function's own parameter variables so that
  // lemma formulas (which are normalized to those variables) line up.
  for (const VarPtr &E : Ref->getParams()) {
    RefArgs.push_back(mkVar(E));
    TgtArgs.push_back(mkVar(E));
  }
  if (P.ReprIdentity)
    RefArgs.push_back(mkVar(X));
  else
    RefArgs.push_back(mkCall(P.Repr, Type::dataTy(P.Tau), {mkVar(X)}));
  TgtArgs.push_back(mkVar(X));

  TermPtr RefCall = mkCall(P.Reference, P.RetTy, std::move(RefArgs));
  TermPtr TgtCall = mkCall(P.Target, P.RetTy, std::move(TgtArgs));
  TermPtr Inv = P.Invariant.empty()
                    ? mkTrue()
                    : mkCall(P.Invariant, Type::boolTy(), {mkVar(X)});

  VerifyResult Result;

  // Full proof first.
  InductionOptions IOpts = Opts.Induction;
  IOpts.Budget = Budget;
  IOpts.Bindings = &Solution;
  IOpts.Lemmas = Opts.Lemmas;
  TermPtr Goal = mkOp(OpKind::Implies, {Inv, mkEq(TgtCall, RefCall)});
  if (proveByInduction(*P.Prog, Goal, IOpts)) {
    Result.Status = VerifyStatus::ProvedInductive;
    return Result;
  }

  // Bounded counterexample search.
  BoundedOptions BOpts = Opts.Bounded;
  BOpts.Budget = Budget;
  BOpts.Bindings = &Solution;
  TermPtr Refute = mkAndList({Inv, mkNot(mkEq(TgtCall, RefCall))});
  if (auto BW = boundedSat(*P.Prog, Refute, BOpts)) {
    Result.Status = VerifyStatus::Counterexample;
    Result.CexTheta = BW->lookupData(X->Id);
    if (!Result.CexTheta)
      fatalError("bounded counterexample lost the input variable");
    return Result;
  }

  Result.Status = VerifyStatus::BoundedOk;
  return Result;
}

std::string se2gis::solutionToString(const Problem &P,
                                     const UnknownBindings &Solution) {
  std::ostringstream OS;
  for (const UnknownSig &Sig : P.Unknowns) {
    auto It = Solution.find(Sig.Name);
    if (It == Solution.end())
      continue;
    OS << "let " << Sig.Name;
    for (const VarPtr &Param : It->second.Params)
      OS << ' ' << Param->Name;
    OS << " = " << simplify(It->second.Body)->str() << '\n';
  }
  return OS.str();
}
