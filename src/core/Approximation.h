//===- Approximation.h - The approximation E(T, P) --------------*- C++-*-===//
///
/// \file
/// Manages the two parameters of the recursion-free approximation of Ψ
/// (Definition 4.6): the set T of (partially bounded) canonical terms, grown
/// by the refinement loop, and the guards P, strengthened by the coarsening
/// loop. Guards come in two flavours mirroring §7.2:
///   - per-term predicates over the equation's variables (recursion-free
///     strengthenings of Iθ, learned from mistyped certificates), and
///   - image invariants of f∘r (single-variable predicates, learned from
///     unsatisfiable certificates or seeded by an `ensures` hint), applied
///     to every elimination variable of every equation.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CORE_APPROXIMATION_H
#define SE2GIS_CORE_APPROXIMATION_H

#include "core/RecursionElim.h"
#include "synth/Sge.h"

#include <optional>

namespace se2gis {

/// One element of T with its cached eliminated equation and local guards.
struct ApproxTerm {
  TermPtr T;
  EquationParts Parts;
  /// Learned per-term guard conjuncts (over this equation's variables).
  std::vector<TermPtr> LocalGuards;
};

/// An image invariant of f∘r: \c Pred over the single variable \c Param.
struct ImageInvariant {
  VarPtr Param;
  TermPtr Pred;
};

/// The approximation E(T, P) for one problem.
class Approximation {
public:
  explicit Approximation(const Problem &P);

  /// Builds the initial term set T0: canonical expansions of every
  /// constructor of θ. \returns false if canonicalization diverges.
  bool initialize();

  const std::vector<ApproxTerm> &terms() const { return Terms; }

  /// Builds the current system of guarded functional equations.
  Sge buildSge() const;

  /// The guard p_i of equation \p TermIndex (local guards plus image
  /// invariants instantiated at its elimination variables).
  TermPtr guardOf(size_t TermIndex) const;

  /// Refinement step: grows T toward the concrete counterexample \p Cex (a
  /// value of type θ). \returns false if no term could be expanded.
  bool refine(const ValuePtr &Cex);

  /// Coarsening step (mistyped): conjoins \p Pred to term \p TermIndex's
  /// guard. \p Pred ranges over that equation's variables.
  void addLocalGuard(size_t TermIndex, TermPtr Pred);

  /// Coarsening step (image invariant): \p Pred over \p Param is conjoined,
  /// instantiated at every elimination variable, to every guard.
  void addImageInvariant(VarPtr Param, TermPtr Pred);

  /// Access to the shared eliminator (used by the certificate checker).
  RecursionEliminator &eliminator() { return Elim; }

  /// Path-split conditionals into guarded equations (ablatable).
  bool EnableSplitting = true;

private:
  bool addCanonicalTerm(TermPtr T);

  const Problem &P;
  RecursionEliminator Elim;
  std::vector<ApproxTerm> Terms;
  std::vector<ImageInvariant> ImageInvariants;
};

} // namespace se2gis

#endif // SE2GIS_CORE_APPROXIMATION_H
