//===- SplitIte.cpp -------------------------------------------------------===//

#include "core/SplitIte.h"

#include "ast/Simplify.h"

using namespace se2gis;

namespace {

/// Finds the first ite node in \p T (pre-order) whose condition contains no
/// unknowns but whose branches do.
TermPtr findSplittableIte(const TermPtr &T) {
  TermPtr Found;
  visitTerm(T, [&](const TermPtr &N) {
    if (Found)
      return false;
    if (N->getKind() == TermKind::Op && N->getOp() == OpKind::Ite &&
        !containsUnknown(N->getArg(0)) &&
        (containsUnknown(N->getArg(1)) || containsUnknown(N->getArg(2)))) {
      Found = N;
      return false;
    }
    return true;
  });
  return Found;
}

/// Replaces the (unique up to structural equality) node \p Target in \p T
/// by \p Replacement.
TermPtr replaceNode(const TermPtr &T, const TermPtr &Target,
                    const TermPtr &Replacement) {
  return rewriteBottomUp(T, [&](const TermPtr &N) {
    return termEquals(N, Target) ? Replacement : N;
  });
}

} // namespace

std::vector<SgeEquation> se2gis::splitEquation(const SgeEquation &E,
                                               size_t MaxSplits) {
  std::vector<SgeEquation> Done;
  std::vector<SgeEquation> Work = {E};
  while (!Work.empty()) {
    SgeEquation Cur = std::move(Work.back());
    Work.pop_back();
    if (Done.size() + Work.size() >= MaxSplits) {
      Done.push_back(std::move(Cur));
      continue;
    }
    TermPtr Ite = findSplittableIte(Cur.Lhs);
    if (!Ite) {
      Done.push_back(std::move(Cur));
      continue;
    }
    const TermPtr &Cond = Ite->getArg(0);
    for (bool Positive : {true, false}) {
      SgeEquation Branch = Cur;
      Branch.Guard = simplify(
          mkAndList({Cur.Guard, Positive ? Cond : mkNot(Cond)}));
      if (Branch.Guard->getKind() == TermKind::BoolLit &&
          !Branch.Guard->getBoolValue())
        continue;
      Branch.Lhs = simplify(
          replaceNode(Cur.Lhs, Ite, Ite->getArg(Positive ? 1 : 2)));
      // Specialize the right-hand side under the branch condition too:
      // identical conditions on the right simplify away, keeping the
      // equation readable and the SMT queries small.
      Branch.Rhs = simplify(rewriteBottomUp(
          Cur.Rhs, [&](const TermPtr &N) -> TermPtr {
            if (N->getKind() == TermKind::Op && N->getOp() == OpKind::Ite &&
                termEquals(N->getArg(0), Cond))
              return N->getArg(Positive ? 1 : 2);
            return N;
          }));
      Work.push_back(std::move(Branch));
    }
  }
  return Done;
}
