//===- Algorithms.h - SE²GIS, SEGIS, and SEGIS+UC drivers -------*- C++-*-===//
///
/// \file
/// The three top-level synthesis algorithms of the paper's evaluation (§8):
///
///  - **SE²GIS** (Fig. 1/3): partial bounding with the refinement loop over
///    the canonical term set T and the dual coarsening loop that processes
///    functional-unrealizability witnesses and strengthens the guards P.
///  - **SEGIS**: the symbolic CEGIS baseline that uses only fully bounded
///    terms (invariants are "effectively present" because Iθ(t) evaluates
///    to a scalar guard) and has no unrealizability outcome.
///  - **SEGIS+UC**: SEGIS extended with the functional-unrealizability
///    checker; witnesses over bounded terms are valid by construction.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CORE_ALGORITHMS_H
#define SE2GIS_CORE_ALGORITHMS_H

#include "core/Verify.h"
#include "lang/Program.h"
#include "support/Cancellation.h"
#include "support/Counters.h"
#include "support/PerfCounters.h"

#include <cstdint>
#include <optional>
#include <string>

namespace se2gis {

/// Which algorithm to run. CHC is the fixedpoint-based unrealizability
/// channel (src/chc/): it can prove Unrealizable but never Realizable.
/// Portfolio races SE²GIS against SEGIS+UC (plus the CHC channel, see
/// UnrealMode) and returns the first conclusive verdict (core/Portfolio).
enum class AlgorithmKind : unsigned char {
  SE2GIS,
  SEGIS,
  SEGISUC,
  CHC,
  Portfolio
};

/// Verdict of a synthesis run.
enum class Verdict : unsigned char {
  /// A solution was synthesized (and verified).
  Realizable,
  /// A valid unrealizability witness was produced.
  Unrealizable,
  /// The time budget expired.
  Timeout,
  /// The algorithm gave up (e.g. no functional witness exists, invariant
  /// inference diverged, or the synthesis step failed) — the paper's
  /// non-timeout failure modes (Appendix C.1).
  Failed
};

/// \returns a short name ("SE2GIS", "SEGIS+UC", ...).
const char *algorithmName(AlgorithmKind K);
const char *verdictName(Verdict V);

/// Parses "se2gis" / "segis" / "segis-uc" / "chc" / "portfolio" (also
/// accepts the display names, case-insensitively). \returns nullopt on
/// anything else.
std::optional<AlgorithmKind> parseAlgorithmName(const std::string &Name);

/// Which unrealizability channel(s) a run may use (--unreal /
/// SE2GIS_UNREAL). The functional-witness loop is part of the synthesis
/// algorithms themselves; the CHC channel (src/chc/) is an independent
/// fixedpoint-based prover that can be raced against them.
enum class UnrealMode : unsigned char {
  /// Resolve per algorithm: Race under Portfolio, Witness elsewhere.
  Auto,
  /// Functional witnesses only (the paper's configuration).
  Witness,
  /// CHC only: the witness channel is suppressed and the algorithm is
  /// raced against the CHC prover, so Unrealizable verdicts can come only
  /// from the fixedpoint engine.
  Chc,
  /// Both: the algorithm (witness channel intact) races the CHC prover;
  /// the first conclusive verdict wins.
  Race
};

/// \returns "auto" / "witness" / "chc" / "race".
const char *unrealModeName(UnrealMode M);

/// Parses "witness" / "chc" / "race" (and "auto"), case-insensitively.
/// \returns nullopt on anything else.
std::optional<UnrealMode> parseUnrealMode(const std::string &Name);

/// Resolves UnrealMode::Auto for algorithm \p K (Race under Portfolio,
/// Witness elsewhere); other modes pass through unchanged.
UnrealMode resolveUnrealMode(UnrealMode M, AlgorithmKind K);

/// Tuning knobs shared by the algorithms.
struct AlgoOptions {
  /// Overall budget per run (the paper uses 400 s; we default lower).
  std::int64_t TimeoutMs = 5000;
  /// Z3 timeout per query inside the SGE solver (ms).
  int SgePerQueryTimeoutMs = 600;
  /// Bounded-check and induction budgets.
  BoundedOptions Bounded;
  InductionOptions Induction;
  /// Optional cooperative cancellation: the run stops at the next budget
  /// poll once the token is cancelled (an invalid/default token is inert).
  /// The portfolio driver and the suite runner share one token per run.
  CancellationToken Token;
  /// Z3 random seed applied process-wide (0 = Z3's default). Exposed for
  /// reproducible sweeps; see setSmtRandomSeed.
  unsigned Seed = 0;
  /// Incremental SMT sessions (DESIGN.md "Incremental SMT model"): queries
  /// run on long-lived per-thread Z3 solvers with push/pop deltas. Off
  /// restores the fresh-context-per-query model. Applied process-wide at
  /// run start; see setSmtIncremental. Fed by SE2GIS_SMT_INCREMENTAL /
  /// --smt-incremental.
  bool SmtIncremental = true;

  /// Which unrealizability channel(s) to use; see UnrealMode. Fed by
  /// SE2GIS_UNREAL / --unreal; resolved per algorithm by runAlgorithm.
  UnrealMode Unreal = UnrealMode::Auto;
  /// Internal (driven by UnrealMode::Chc, not user-facing): suppress the
  /// functional-witness channel inside runSE2GIS/runSEGIS so the raced CHC
  /// prover is the only source of Unrealizable verdicts.
  bool DisableWitnessChannel = false;

  /// Ablation switches (bench/bench_ablation measures their impact).
  bool DisableEufAnchoring = false;
  bool DisableIteSplitting = false;
  bool DisableLemmaReplay = false;
};

/// Per-run statistics (the inputs to Tables 1–2 and the invariant table).
struct RunStats {
  /// The paper's step string: '•' per refinement round, '◦' per coarsening.
  std::string Steps;
  int Refinements = 0;
  int Coarsenings = 0;
  /// Invariants inferred, by kind (§7.2.2 reference / §7.2.1 datatype).
  int ImageInvariants = 0;
  int DatatypeInvariants = 0;
  /// True when every inferred invariant was proved by induction ("I?"
  /// column of Tables 1–2).
  bool AllInvariantsByInduction = true;
  /// True when the final solution was proved by induction (fully verified).
  bool SolutionProvedInductive = false;
  double ElapsedMs = 0;
  /// Telemetry deltas for this run (support/Counters.h).
  CounterSnapshot Counters;
  /// Performance deltas for this run (support/PerfCounters.h). Under a
  /// parallel sweep the process-wide counters aggregate across workers, so
  /// a run's delta includes events of concurrently running jobs; the
  /// per-run numbers are exact only at SE2GIS_JOBS=1.
  PerfSnapshot Perf;
  /// Where this run's wall time went (eval / SMT / enumeration / induction,
  /// exclusive attribution — see PhaseScope). Thread-local, so exact even
  /// under a parallel sweep: each run executes on one worker thread.
  PhaseSnapshot Phases;
  /// Graceful degradation: when the run times out, the last candidate the
  /// CEGIS loop tried (pretty-printed), so a sweep still shows how far the
  /// search got. Empty on conclusive verdicts.
  std::string LastCandidate;
};

/// Which channel produced a conclusive verdict (Evidence provenance).
enum class VerdictSource : unsigned char {
  /// No conclusive verdict (Timeout / Failed), so no provenance.
  None,
  /// The synthesis algorithm itself: a verified solution or a validated
  /// functional-unrealizability witness.
  Witness,
  /// The CHC fixedpoint channel proved `realizable` underivable.
  Chc,
  /// The suite runner replayed (and re-verified) a cached solution.
  Cache
};

/// \returns "none" / "witness" / "chc" / "cache".
const char *verdictSourceName(VerdictSource S);

/// Provenance of a conclusive verdict: which channel concluded and how much
/// supporting material it produced. Every Realizable/Unrealizable Outcome
/// carries one; races keep the winning member's Evidence.
struct Evidence {
  VerdictSource Source = VerdictSource::None;
  /// Display name of the concluding channel ("SE2GIS", "SEGIS+UC", "CHC",
  /// "suite-cache", ...). Empty iff Source is None.
  std::string Channel;
  /// Horn clauses in the CHC system that proved the verdict (CHC only).
  std::uint64_t ChcClauses = 0;
  /// Invariant lemmas learned by the witness loop (witness channel only).
  std::uint64_t Lemmas = 0;

  /// Compact rendering for the CLI verdict line, e.g. "witness/SE2GIS" or
  /// "chc (42 clauses)". Empty when Source is None.
  std::string str() const;
};

/// Result of one synthesis run: the verdict, the solution or witness
/// description, the verdict's provenance, and the run's statistics. A
/// timed-out Outcome still carries partial stats (rounds completed, last
/// candidate) — see RunStats.
struct Outcome {
  Verdict V = Verdict::Failed;
  UnknownBindings Solution;
  /// Human-readable witness description / failure reason.
  std::string Detail;
  /// Which channel concluded (set on conclusive verdicts only).
  Evidence Ev;
  RunStats Stats;
};

/// Runs SE²GIS on \p P.
Outcome runSE2GIS(const Problem &P, const AlgoOptions &Opts);

/// Runs the fully-bounded baseline; \p WithUnrealizabilityChecker selects
/// SEGIS+UC.
Outcome runSEGIS(const Problem &P, const AlgoOptions &Opts,
                 bool WithUnrealizabilityChecker);

/// Dispatches on \p K (including AlgorithmKind::CHC and ::Portfolio) and
/// applies the resolved UnrealMode: under Chc/Race the synthesis algorithm
/// is raced against the CHC channel (core/Portfolio).
Outcome runAlgorithm(AlgorithmKind K, const Problem &P,
                     const AlgoOptions &Opts);

} // namespace se2gis

#endif // SE2GIS_CORE_ALGORITHMS_H
