//===- Certificates.h - Spuriousness checking (§5, Def. 5.3–5.6) *- C++-*-===//
///
/// \file
/// Decides whether a functional-unrealizability witness for E(T, P) is valid
/// (it also witnesses unrealizability of the original specification Ψ) or
/// spurious, and classifies spurious certificates (Definition 7.1):
///
///  - a model m is *realizable* when a concrete term compatible with m
///    (t ⋉ m, Definition 5.2) satisfying Iθ exists — found by bounded
///    search, it is the concrete half of a validity certificate;
///  - an *unsatisfiable* certificate has an elimination-variable value
///    outside the image of f∘r (Lemma 7.3);
///  - a *mistyped* certificate is compatible with some instantiation but
///    never one satisfying the type invariant.
///
/// Soundness note: an `Unrealizable` verdict is only ever issued from
/// concrete realizable instantiations of every witness model, so it never
/// depends on the (incomplete) induction prover.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CORE_CERTIFICATES_H
#define SE2GIS_CORE_CERTIFICATES_H

#include "core/Approximation.h"
#include "core/Witness.h"
#include "smt/BoundedCheck.h"

namespace se2gis {

/// Which kind of missing invariant a spurious certificate points at.
enum class CertKind : unsigned char {
  /// The model's elimination values cannot be produced by f∘r at all:
  /// learn an invariant of the reference function's image (§7.2.2).
  Unsatisfiable,
  /// Compatible instantiations exist but all violate Iθ: learn a
  /// recursion-free strengthening of the type invariant (§7.2.1).
  Mistyped
};

/// An s-certificate (m, t) (Definition 5.6) with its classification.
struct SCertificate {
  size_t EqnIndex = 0;
  SmtModel M;
  CertKind Kind = CertKind::Mistyped;
  /// For unsatisfiable certificates: the out-of-image value and the
  /// elimination variable carrying it.
  VarPtr BadElimVar;
  ValuePtr BadValue;
};

/// A concrete instantiation certifying that one witness model is realizable.
struct ConcreteInput {
  size_t EqnIndex = 0;
  /// Concrete values for the datatype variables of the equation's term.
  std::vector<std::pair<VarPtr, ValuePtr>> DataVars;
  SmtModel Scalars;
};

/// Verdict of the spuriousness check.
enum class WitnessVerdict : unsigned char { Valid, Spurious, Unknown };

/// Result of checking one functional witness.
struct WitnessCheckResult {
  WitnessVerdict Verdict = WitnessVerdict::Unknown;
  /// Certificates for the spurious models (present when Spurious).
  std::vector<SCertificate> Certs;
  /// Concrete inputs for the realizable models (all of them when Valid).
  std::vector<ConcreteInput> ValidInputs;
};

/// Checks witnesses against an approximation.
class CertificateChecker {
public:
  CertificateChecker(const Problem &P, Approximation &Approx)
      : P(P), Approx(Approx) {}

  /// Decides validity/spuriousness of \p W (Proposition 5.4). \p System
  /// maps the witness's equation indices back to their terms.
  WitnessCheckResult check(const FunctionalWitness &W, const Sge &System,
                           const Deadline &Budget);

  /// Builds the compatibility constraint t ⋉ m for the equation's term
  /// (Definition 5.2): scalar assignments plus `f(e⃗, r(y)) = m(α(y))`.
  TermPtr compatibility(const ApproxTerm &AT, const SmtModel &M) const;

  /// Bounded-search budget per model.
  BoundedOptions Bounded;

private:
  /// Checks one model; appends to the result.
  void checkModel(const WitnessModel &WM, const Sge &System,
                  WitnessCheckResult &Result, const Deadline &Budget);

  const Problem &P;
  Approximation &Approx;
};

} // namespace se2gis

#endif // SE2GIS_CORE_CERTIFICATES_H
