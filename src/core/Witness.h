//===- Witness.h - Functional unrealizability witnesses (§6) ----*- C++-*-===//
///
/// \file
/// Frames (Proposition 6.2) and Algorithm 1: generating a witness to the
/// functional unrealizability of an SGE. The left-hand side of every
/// equation is framed as F(t₁, …, t_c) where the *maximal* frame F contains
/// all the unknowns and no variables, and the argument terms t_k contain no
/// unknowns. Two equations with syntactically equal frames yield a witness
/// if Z3 finds models making the guards true, the frame arguments pairwise
/// equal, and the right-hand sides different — i.e. the would-be function
/// must map equal inputs to different outputs.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CORE_WITNESS_H
#define SE2GIS_CORE_WITNESS_H

#include "smt/Solver.h"
#include "support/Stopwatch.h"
#include "synth/Sge.h"

#include <optional>

namespace se2gis {

/// A framed term: F with indexed holes and the captured arguments.
struct Frame {
  TermPtr F;
  std::vector<TermPtr> Args;
};

/// Computes the maximal frame of \p Lhs: every maximal unknown-free subterm
/// becomes a hole argument (holes indexed left to right).
Frame computeFrame(const TermPtr &Lhs);

/// One half of a witness: a model for the variables of one equation.
struct WitnessModel {
  SmtModel M;
  /// Index into the SGE's equation list.
  size_t EqnIndex = 0;
};

/// A witness to functional unrealizability (Definition 6.3): a pair of
/// models for two (possibly identical) equations with equal frames.
struct FunctionalWitness {
  WitnessModel First;
  WitnessModel Second;
};

/// Algorithm 1: searches all frame-compatible equation pairs of \p System
/// for a functional-unrealizability witness.
std::optional<FunctionalWitness>
findFunctionalWitness(const Sge &System, int PerQueryTimeoutMs,
                      const Deadline &Budget);

} // namespace se2gis

#endif // SE2GIS_CORE_WITNESS_H
