//===- Portfolio.h - SE2GIS ∥ SEGIS+UC portfolio ----------------*- C++-*-===//
///
/// \file
/// The portfolio mode the paper suggests in §8.2: "SE²GIS and SEGIS+UC can
/// easily complement each other in a portfolio version of Synduce, which
/// runs both algorithms in parallel, and waits for the first result."
/// Each algorithm runs in its own thread (every SMT query owns its Z3
/// context, so the solver stack is thread-compatible); the first conclusive
/// verdict (realizable/unrealizable) wins.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CORE_PORTFOLIO_H
#define SE2GIS_CORE_PORTFOLIO_H

#include "core/Algorithms.h"

#include <vector>

namespace se2gis {

/// Races \p Members concurrently on \p P: every member shares one
/// cancellation token (chained to the caller's), the first conclusive
/// verdict (realizable/unrealizable) wins and cancels the losers
/// cooperatively. On a tie or when nobody concludes, earlier members are
/// preferred. Members are dispatched to the bare per-algorithm runners, so
/// no nested race is spawned. The winning member's Evidence is kept; a race
/// won by the CHC channel bumps the chc_race_wins perf counter.
Outcome runRace(const std::vector<AlgorithmKind> &Members, const Problem &P,
                const AlgoOptions &Opts);

/// Runs SE²GIS and SEGIS+UC concurrently on \p P — plus the CHC channel
/// unless the resolved UnrealMode is Witness; returns the first conclusive
/// result (or the "better" inconclusive one when everyone fails). The
/// returned stats carry the winning algorithm's name in \c Detail when it
/// would otherwise be empty.
Outcome runPortfolio(const Problem &P, const AlgoOptions &Opts);

} // namespace se2gis

#endif // SE2GIS_CORE_PORTFOLIO_H
