//===- Portfolio.h - SE2GIS ∥ SEGIS+UC portfolio ----------------*- C++-*-===//
///
/// \file
/// The portfolio mode the paper suggests in §8.2: "SE²GIS and SEGIS+UC can
/// easily complement each other in a portfolio version of Synduce, which
/// runs both algorithms in parallel, and waits for the first result."
/// Each algorithm runs in its own thread (every SMT query owns its Z3
/// context, so the solver stack is thread-compatible); the first conclusive
/// verdict (realizable/unrealizable) wins.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CORE_PORTFOLIO_H
#define SE2GIS_CORE_PORTFOLIO_H

#include "core/Algorithms.h"

namespace se2gis {

/// Runs SE²GIS and SEGIS+UC concurrently on \p P; returns the first
/// conclusive result (or the "better" inconclusive one when both fail).
/// The returned stats carry the winning algorithm's name in \c Detail when
/// it would otherwise be empty.
Outcome runPortfolio(const Problem &P, const AlgoOptions &Opts);

} // namespace se2gis

#endif // SE2GIS_CORE_PORTFOLIO_H
