//===- RecursionElim.cpp --------------------------------------------------===//

#include "core/RecursionElim.h"

#include "ast/Simplify.h"
#include "eval/Expand.h"
#include "support/Diagnostics.h"

#include <cassert>
#include <deque>

using namespace se2gis;

RecursionEliminator::RecursionEliminator(const Problem &P)
    : P(P), Ref(P.Prog->findFunction(P.Reference)),
      Tgt(P.Prog->findFunction(P.Target)),
      Repr(P.Prog->findFunction(P.Repr)) {
  assert(Ref && Tgt && Repr && "problem not validated");
}

namespace {

/// \returns the datatype variable y if \p N is an elimination unit
/// `Ref(e⃗, Repr(y))` or `Tgt(e⃗, y)` with the expected extras, else nullptr.
VarPtr unitVariable(const TermPtr &N, const std::string &RefName,
                    const std::string &TgtName, const std::string &ReprName,
                    bool ReprIdentity, const std::vector<VarPtr> &Extras) {
  if (N->getKind() != TermKind::Call)
    return nullptr;
  if (N->numArgs() != Extras.size() + 1)
    return nullptr;
  for (size_t I = 0; I < Extras.size(); ++I) {
    const TermPtr &A = N->getArg(I);
    if (A->getKind() != TermKind::Var || A->getVar()->Id != Extras[I]->Id)
      return nullptr;
  }
  const TermPtr &Last = N->getArg(N->numArgs() - 1);
  if (N->getCallee() == TgtName) {
    if (Last->getKind() == TermKind::Var)
      return Last->getVar();
    return nullptr;
  }
  if (N->getCallee() == RefName) {
    if (ReprIdentity) {
      if (Last->getKind() == TermKind::Var)
        return Last->getVar();
      return nullptr;
    }
    if (Last->getKind() == TermKind::Call && Last->getCallee() == ReprName &&
        Last->numArgs() == 1 &&
        Last->getArg(0)->getKind() == TermKind::Var)
      return Last->getArg(0)->getVar();
    return nullptr;
  }
  return nullptr;
}

} // namespace

TermPtr RecursionEliminator::elimTerm(const TermPtr &T,
                                      const std::vector<VarPtr> &Extras,
                                      AlphaMap &Alpha) const {
  if (VarPtr Y = unitVariable(T, P.Reference, P.Target, P.Repr,
                              P.ReprIdentity, Extras)) {
    for (const auto &[Orig, ElimVar] : Alpha)
      if (Orig->Id == Y->Id)
        return mkVar(ElimVar);
    VarPtr ElimVar = freshVar("v_" + Y->Name, P.RetTy);
    Alpha.emplace_back(Y, ElimVar);
    return mkVar(ElimVar);
  }
  if (T->numArgs() == 0)
    return T;
  bool Changed = false;
  std::vector<TermPtr> NewArgs;
  NewArgs.reserve(T->numArgs());
  for (const TermPtr &A : T->getArgs()) {
    TermPtr NA = elimTerm(A, Extras, Alpha);
    Changed |= NA.get() != A.get();
    NewArgs.push_back(std::move(NA));
  }
  if (!Changed)
    return T;
  switch (T->getKind()) {
  case TermKind::Op:
    return mkOp(T->getOp(), std::move(NewArgs));
  case TermKind::Tuple:
    return mkTuple(std::move(NewArgs));
  case TermKind::Proj:
    return mkProj(std::move(NewArgs[0]), T->getIndex());
  case TermKind::Ctor:
    return mkCtor(T->getCtor(), std::move(NewArgs));
  case TermKind::Call:
    return mkCall(T->getCallee(), T->getType(), std::move(NewArgs));
  case TermKind::Unknown:
    return mkUnknown(T->getCallee(), T->getType(), std::move(NewArgs));
  default:
    fatalError("leaf node with arguments");
  }
}

TermPtr
RecursionEliminator::elimVarDefinition(const VarPtr &OrigVar,
                                       const std::vector<VarPtr> &Extras) const {
  std::vector<TermPtr> Args;
  for (const VarPtr &E : Extras)
    Args.push_back(mkVar(E));
  if (P.ReprIdentity)
    Args.push_back(mkVar(OrigVar));
  else
    Args.push_back(mkCall(P.Repr, Type::dataTy(P.Tau), {mkVar(OrigVar)}));
  return mkCall(P.Reference, P.RetTy, std::move(Args));
}

EquationParts RecursionEliminator::eliminate(const TermPtr &T) {
  EquationParts Parts;
  for (const VarPtr &E : Ref->getParams())
    Parts.Extras.push_back(freshVar(E->Name, E->Ty));

  std::vector<TermPtr> ExtraArgs;
  for (const VarPtr &E : Parts.Extras)
    ExtraArgs.push_back(mkVar(E));

  SymbolicEvaluator SE(*P.Prog);

  std::vector<TermPtr> RhsArgs = ExtraArgs;
  if (P.ReprIdentity)
    RhsArgs.push_back(T);
  else
    RhsArgs.push_back(mkCall(P.Repr, Type::dataTy(P.Tau), {T}));
  TermPtr RhsEval = SE.eval(mkCall(P.Reference, P.RetTy, std::move(RhsArgs)));

  std::vector<TermPtr> LhsArgs = ExtraArgs;
  LhsArgs.push_back(T);
  TermPtr LhsEval = SE.eval(mkCall(P.Target, P.RetTy, std::move(LhsArgs)));

  Parts.Rhs = simplify(elimTerm(RhsEval, Parts.Extras, Parts.Alpha));
  Parts.Lhs = simplify(elimTerm(LhsEval, Parts.Extras, Parts.Alpha));

  // Classify surviving datatype variables. "Hard" blockers have a bare
  // occurrence; "soft" blockers only occur wrapped as `r(y)` inside a stuck
  // call (they may become elimination units once the hard blockers around
  // them are expanded), so hard blockers are expanded first.
  std::vector<VarPtr> Hard, Soft;
  auto Classify = [&](const TermPtr &Side) {
    std::function<void(const TermPtr &)> Walk = [&](const TermPtr &N) {
      if (N->getKind() == TermKind::Call && N->getCallee() == P.Repr &&
          N->numArgs() == 1 && N->getArg(0)->getKind() == TermKind::Var) {
        const VarPtr &V = N->getArg(0)->getVar();
        bool Known = false;
        for (const VarPtr &B : Soft)
          Known |= B->Id == V->Id;
        if (!Known)
          Soft.push_back(V);
        return;
      }
      if (N->getKind() == TermKind::Var && N->getVar()->Ty->isData()) {
        bool Known = false;
        for (const VarPtr &B : Hard)
          Known |= B->Id == N->getVar()->Id;
        if (!Known)
          Hard.push_back(N->getVar());
        return;
      }
      for (const TermPtr &A : N->getArgs())
        Walk(A);
    };
    Walk(Side);
  };
  Classify(Parts.Lhs);
  Classify(Parts.Rhs);
  for (const VarPtr &V : Hard)
    Parts.BlockingVars.push_back(V);
  for (const VarPtr &V : Soft) {
    bool IsHard = false;
    for (const VarPtr &H : Hard)
      IsHard |= H->Id == V->Id;
    if (!IsHard)
      Parts.BlockingVars.push_back(V);
  }
  Parts.Canonical = Parts.BlockingVars.empty();
  return Parts;
}

std::vector<VarPtr> RecursionEliminator::blockingVars(const TermPtr &T) {
  return eliminate(T).BlockingVars;
}

std::vector<TermPtr> se2gis::canonicalExpansions(const Problem &P,
                                                 RecursionEliminator &Elim,
                                                 const TermPtr &Seed,
                                                 size_t MaxTerms,
                                                 size_t MaxGrowth) {
  (void)P;
  // Branches that keep growing (e.g. the left spine of a concat-list under a
  // fold-style representation function) are pruned rather than failing the
  // whole expansion: the refinement loop re-discovers them on demand, guided
  // by concrete counterexamples.
  const size_t MaxTermSize = termSize(Seed) + MaxGrowth;
  std::vector<TermPtr> Canonical;
  std::deque<TermPtr> Work;
  Work.push_back(Seed);
  size_t Processed = 0;
  while (!Work.empty()) {
    if (++Processed > MaxTerms)
      break;
    TermPtr T = std::move(Work.front());
    Work.pop_front();
    if (termSize(T) > MaxTermSize)
      continue; // prune divergent branch
    std::vector<VarPtr> Blocking;
    try {
      Blocking = Elim.blockingVars(T);
    } catch (const UserError &) {
      continue;
    }
    if (Blocking.empty()) {
      Canonical.push_back(std::move(T));
      continue;
    }
    for (TermPtr &E : expandVarInTerm(T, Blocking.front()))
      Work.push_back(std::move(E));
  }
  return Canonical;
}
