//===- SynthesisTask.cpp --------------------------------------------------===//

#include "core/SynthesisTask.h"

#include "support/Diagnostics.h"
#include "support/FlightRecorder.h"
#include "support/Trace.h"

#include <cstdlib>

using namespace se2gis;

SolverConfig SolverConfig::fromEnv(std::int64_t DefaultTimeoutMs) {
  SolverConfig C;
  C.Algo.TimeoutMs = DefaultTimeoutMs;
  if (const char *T = std::getenv("SE2GIS_TIMEOUT_MS")) {
    long long V = std::atoll(T);
    if (V > 0)
      C.Algo.TimeoutMs = V;
  } else if (const char *T = std::getenv("SE2GIS_TIMEOUT")) {
    long long V = std::atoll(T);
    if (V > 0)
      C.Algo.TimeoutMs = V * 1000;
  }
  if (const char *S = std::getenv("SE2GIS_SEED")) {
    long long V = std::atoll(S);
    if (V > 0)
      C.Algo.Seed = static_cast<unsigned>(V);
  }
  if (const char *S = std::getenv("SE2GIS_GEN_SEED")) {
    long long V = std::atoll(S);
    if (V > 0)
      C.GenSeed = static_cast<std::uint64_t>(V);
  }
  if (const char *I = std::getenv("SE2GIS_SMT_INCREMENTAL")) {
    std::string V = I;
    if (V == "on")
      C.Algo.SmtIncremental = true;
    else if (V == "off")
      C.Algo.SmtIncremental = false;
    else
      userError("SE2GIS_SMT_INCREMENTAL: expected on or off, got '" + V +
                "'");
  }
  if (const char *U = std::getenv("SE2GIS_UNREAL")) {
    auto Mode = parseUnrealMode(U);
    if (!Mode)
      userError(std::string("SE2GIS_UNREAL: unknown unrealizability mode '") +
                U + "' (expected witness, chc, or race)");
    C.Algo.Unreal = *Mode;
  }
  if (const char *F = std::getenv("SE2GIS_FILTER"))
    C.Filter = F;
  if (const char *J = std::getenv("SE2GIS_JOBS")) {
    long V = std::atol(J);
    if (V > 0)
      C.Jobs = static_cast<unsigned>(V);
  }
  if (const char *P = std::getenv("SE2GIS_PERF_JSON"))
    C.PerfJsonPath = P;
  if (const char *M = std::getenv("SE2GIS_CACHE")) {
    auto Mode = parseCacheMode(M);
    if (!Mode)
      userError(std::string("SE2GIS_CACHE: unknown cache mode '") + M +
                "' (expected off, mem, disk, or remote)");
    C.Cache.Mode = *Mode;
  }
  if (const char *D = std::getenv("SE2GIS_CACHE_DIR"))
    C.Cache.Dir = D;
  if (const char *A = std::getenv("SE2GIS_CACHE_ADDR"))
    C.Cache.Addr = A;
  if (C.Cache.Mode == CacheMode::Disk ||
      C.Cache.Mode == CacheMode::Remote) {
    std::string Err = validateCacheDir(C.Cache.Dir);
    if (!Err.empty())
      userError("SE2GIS_CACHE_DIR: " + Err);
  }
  if (C.Cache.Mode == CacheMode::Remote && C.Cache.Addr.empty())
    userError("SE2GIS_CACHE=remote needs a daemon address "
              "(SE2GIS_CACHE_ADDR or --cache-addr)");
  if (const char *L = std::getenv("SE2GIS_LOG")) {
    auto Level = parseLogLevel(L);
    if (!Level)
      userError(std::string("SE2GIS_LOG: unknown log level '") + L +
                "' (expected error, warn, info, or debug)");
    C.Log.Level = *Level;
  } else if (std::getenv("SE2GIS_DEBUG")) {
    C.Log.Level = LogLevel::Debug;
  }
  if (const char *J = std::getenv("SE2GIS_LOG_JSON"))
    C.Log.JsonPath = J;
  if (const char *T = std::getenv("SE2GIS_TRACE"))
    C.TracePath = T;
  if (const char *F = std::getenv("SE2GIS_FLIGHT")) {
    std::string V = F;
    if (V == "on")
      C.Flight = true;
    else if (V == "off")
      C.Flight = false;
    else
      userError("SE2GIS_FLIGHT: expected on or off, got '" + V + "'");
  }
  return C;
}

Outcome SynthesisTask::run(const SolverConfig &Config) const {
  Outcome R;
  if (!Prob) {
    R.Detail = "task has no problem attached";
    return R;
  }
  try {
    configureCache(Config.Cache);
    configureLogging(Config.Log);
    if (Config.Flight != flightEnabled())
      flightConfigure(Config.Flight);
    if (!Config.TracePath.empty())
      traceConfigure(Config.TracePath);
    R = runAlgorithm(Algorithm, *Prob, Config.Algo);
  } catch (const UserError &E) {
    R.V = Verdict::Failed;
    R.Detail = E.what();
  }
  return R;
}
