//===- Certificates.cpp ---------------------------------------------------===//

#include "core/Certificates.h"

#include "ast/Simplify.h"
#include "synth/SgeSolver.h"
#include "support/Diagnostics.h"

#include <cassert>

using namespace se2gis;

TermPtr CertificateChecker::compatibility(const ApproxTerm &AT,
                                          const SmtModel &M) const {
  std::vector<TermPtr> Parts;
  for (const auto &[V, Val] : M.assignments()) {
    // Is V an elimination variable of this equation?
    VarPtr Orig;
    for (const auto &[O, E] : AT.Parts.Alpha)
      if (E->Id == V->Id)
        Orig = O;
    if (Orig) {
      TermPtr Def =
          Approx.eliminator().elimVarDefinition(Orig, AT.Parts.Extras);
      Parts.push_back(mkEq(Def, valueToTerm(Val)));
    } else {
      Parts.push_back(mkEq(mkVar(V), valueToTerm(Val)));
    }
  }
  return mkAndList(std::move(Parts));
}

void CertificateChecker::checkModel(const WitnessModel &WM,
                                    const Sge &System,
                                    WitnessCheckResult &Result,
                                    const Deadline &Budget) {
  size_t TermIndex = System.Eqns[WM.EqnIndex].TermIndex;
  const ApproxTerm &AT = Approx.terms()[TermIndex];

  // Compatibility plus the type invariant: t ⋉ m ∧ Iθ(t).
  std::vector<TermPtr> Conj = {compatibility(AT, WM.M)};
  if (!P.Invariant.empty())
    Conj.push_back(mkCall(P.Invariant, Type::boolTy(), {AT.T}));
  TermPtr Q = mkAndList(std::move(Conj));

  BoundedOptions Opts = Bounded;
  Opts.Budget = Budget;
  if (auto W = boundedSat(*P.Prog, Q, Opts)) {
    ConcreteInput In;
    In.EqnIndex = TermIndex;
    In.DataVars = W->DataAssignments;
    In.Scalars = W->Scalars;
    Result.ValidInputs.push_back(std::move(In));
    return;
  }

  // Spurious for this model. Classify: is some elimination value outside
  // the image of f∘r?
  SCertificate Cert;
  Cert.EqnIndex = TermIndex;
  Cert.M = WM.M;
  Cert.Kind = CertKind::Mistyped;

  for (const auto &[Orig, ElimVar] : AT.Parts.Alpha) {
    ValuePtr Val = WM.M.lookup(ElimVar->Id);
    if (!Val)
      continue;
    // ∃ y' : f(e⃗, r(y')) = val, with the extras fixed to the model's
    // values when available.
    VarPtr Y = freshVar("y", Type::dataTy(P.Theta));
    TermPtr Def = Approx.eliminator().elimVarDefinition(Y, AT.Parts.Extras);
    Substitution ExtraVals;
    for (const VarPtr &E : AT.Parts.Extras)
      if (ValuePtr EV = WM.M.lookup(E->Id))
        ExtraVals.emplace_back(E->Id, valueToTerm(EV));
    TermPtr ImageQuery = mkEq(substitute(Def, ExtraVals), valueToTerm(Val));
    BoundedOptions ImgOpts = Bounded;
    ImgOpts.Budget = Budget;
    if (!boundedSat(*P.Prog, ImageQuery, ImgOpts)) {
      Cert.Kind = CertKind::Unsatisfiable;
      Cert.BadElimVar = ElimVar;
      Cert.BadValue = Val;
      break;
    }
  }
  Result.Certs.push_back(std::move(Cert));
}

WitnessCheckResult CertificateChecker::check(const FunctionalWitness &W,
                                             const Sge &System,
                                             const Deadline &Budget) {
  WitnessCheckResult Result;
  checkModel(W.First, System, Result, Budget);
  checkModel(W.Second, System, Result, Budget);
  if (Budget.expired() && Result.Certs.empty() &&
      Result.ValidInputs.size() < 2) {
    Result.Verdict = WitnessVerdict::Unknown;
    return Result;
  }
  Result.Verdict = Result.Certs.empty() ? WitnessVerdict::Valid
                                        : WitnessVerdict::Spurious;
  return Result;
}
