//===- Verify.h - Verifying candidate solutions against Ψ -------*- C++-*-===//
///
/// \file
/// Checks a synthesized implementation of the unknowns against the original
/// recursive specification Ψ (Definition 4.1):
///
///     ∀ e⃗, x:θ · Iθ(x) ⇒ G[U](e⃗, x) = f(e⃗, r(x))
///
/// Tries a full structural-induction proof first (Synduce: "once a solution
/// is synthesized, the solution is fully verified" when no bounding was
/// needed); otherwise falls back to bounded counterexample search. A
/// counterexample feeds the refinement loop.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CORE_VERIFY_H
#define SE2GIS_CORE_VERIFY_H

#include "eval/Interp.h"
#include "lang/Program.h"
#include "smt/BoundedCheck.h"
#include "smt/Induction.h"

#include <optional>

namespace se2gis {

/// Confidence of a verification verdict.
enum class VerifyStatus : unsigned char {
  /// Proved for all inputs by structural induction.
  ProvedInductive,
  /// No counterexample within the bounded search (accepted with bounded
  /// confidence, like the paper's bounded verification).
  BoundedOk,
  /// A concrete counterexample was found.
  Counterexample
};

/// Result of verifying one candidate solution.
struct VerifyResult {
  VerifyStatus Status = VerifyStatus::BoundedOk;
  /// When Counterexample: a concrete θ value on which the candidate
  /// disagrees with the reference (satisfying Iθ).
  ValuePtr CexTheta;
};

/// Verification knobs.
struct VerifyOptions {
  BoundedOptions Bounded;
  InductionOptions Induction;
  /// Invariants learned by the coarsening loop, fed to the induction prover
  /// as auxiliary lemmas (their extras must already be the reference
  /// function's parameter variables).
  std::vector<ShapeLemma> Lemmas;
};

/// Verifies \p Solution against \p P's specification.
VerifyResult verifySolution(const Problem &P, const UnknownBindings &Solution,
                            const VerifyOptions &Opts, const Deadline &Budget);

/// Renders a solution as OCaml-style let bindings (for reports and logs).
std::string solutionToString(const Problem &P,
                             const UnknownBindings &Solution);

} // namespace se2gis

#endif // SE2GIS_CORE_VERIFY_H
