//===- SplitIte.h - Path-splitting of guarded equations ---------*- C++-*-===//
///
/// \file
/// Normalizes equations by splitting conditionals with unknown-free
/// conditions into separate guarded equations: `p ⇒ ite(c, l1, l2) = r`
/// becomes `p ∧ c ⇒ l1 = r` and `p ∧ ¬c ⇒ l2 = r`. This mirrors how
/// Synduce's symbolic evaluation produces one equation per path and is
/// essential for the frame-based witness generator: without it the
/// branch-local unknowns of an `ite` share one frame whose argument
/// equalities are too strong to expose functional conflicts.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CORE_SPLITITE_H
#define SE2GIS_CORE_SPLITITE_H

#include "synth/Sge.h"

namespace se2gis {

/// Splits \p E on every ite whose condition is unknown-free, up to
/// \p MaxSplits resulting equations (the remainder is left unsplit).
/// Vacuous branches (guard simplifying to false) are dropped.
std::vector<SgeEquation> splitEquation(const SgeEquation &E,
                                       size_t MaxSplits = 16);

} // namespace se2gis

#endif // SE2GIS_CORE_SPLITITE_H
