//===- Witness.cpp --------------------------------------------------------===//

#include "core/Witness.h"

#include "ast/Simplify.h"
#include "support/Counters.h"
#include "support/Diagnostics.h"

#include <cassert>

using namespace se2gis;

namespace {

TermPtr frameTerm(const TermPtr &T, std::vector<TermPtr> &Args) {
  // A maximal unknown-free subterm is captured as a hole, regardless of
  // whether it contains variables (see the paper's h'(0, z) example, where
  // the constant 0 is captured too).
  if (!containsUnknown(T)) {
    unsigned Index = static_cast<unsigned>(Args.size());
    Args.push_back(T);
    return mkHole(Index, T->getType());
  }
  bool Changed = false;
  std::vector<TermPtr> NewArgs;
  NewArgs.reserve(T->numArgs());
  for (const TermPtr &A : T->getArgs()) {
    TermPtr NA = frameTerm(A, Args);
    Changed |= NA.get() != A.get();
    NewArgs.push_back(std::move(NA));
  }
  if (!Changed)
    return T;
  switch (T->getKind()) {
  case TermKind::Op:
    return mkOp(T->getOp(), std::move(NewArgs));
  case TermKind::Tuple:
    return mkTuple(std::move(NewArgs));
  case TermKind::Proj:
    return mkProj(std::move(NewArgs[0]), T->getIndex());
  case TermKind::Ctor:
    return mkCtor(T->getCtor(), std::move(NewArgs));
  case TermKind::Call:
    return mkCall(T->getCallee(), T->getType(), std::move(NewArgs));
  case TermKind::Unknown:
    return mkUnknown(T->getCallee(), T->getType(), std::move(NewArgs));
  default:
    fatalError("leaf node with arguments");
  }
}

/// Renames every free variable of the given terms consistently.
Substitution renameFresh(const std::vector<TermPtr> &Terms,
                         std::vector<std::pair<VarPtr, VarPtr>> &Renaming) {
  Substitution Map;
  for (const TermPtr &T : Terms) {
    for (const VarPtr &V : freeVars(T)) {
      bool Known = false;
      for (const auto &[Old, New] : Renaming)
        Known |= Old->Id == V->Id;
      if (Known)
        continue;
      VarPtr Fresh = freshVar(V->Name + "_r", V->Ty);
      Renaming.emplace_back(V, Fresh);
      Map.emplace_back(V->Id, mkVar(Fresh));
    }
  }
  return Map;
}

} // namespace

Frame se2gis::computeFrame(const TermPtr &Lhs) {
  Frame Result;
  Result.F = frameTerm(Lhs, Result.Args);
  return Result;
}

std::optional<FunctionalWitness>
se2gis::findFunctionalWitness(const Sge &System, int PerQueryTimeoutMs,
                              const Deadline &Budget) {
  std::vector<Frame> Frames;
  Frames.reserve(System.Eqns.size());
  for (const SgeEquation &E : System.Eqns)
    Frames.push_back(computeFrame(E.Lhs));

  // The whole sweep is one session region: every pair query below shares
  // the thread's warm solver.
  SmtSessionScope SessionScope;

  for (size_t I = 0; I < System.Eqns.size(); ++I) {
    // All partners of equation I share its guard; build that base lazily on
    // the first matching partner and stack each partner's delta (renamed
    // guard, disequality, argument equalities) in a push/pop frame on top.
    std::optional<SmtQuery> Q;
    for (size_t J = 0; J <= I; ++J) {
      if (Budget.expired())
        return std::nullopt;
      if (!termEquals(Frames[I].F, Frames[J].F))
        continue;
      // A frame that is a bare hole carries no unknown at all; no functional
      // constraint can be derived from it.
      if (Frames[I].F->getKind() == TermKind::Hole)
        continue;
      assert(Frames[I].Args.size() == Frames[J].Args.size() &&
             "equal frames must have equal arity");

      const SgeEquation &EI = System.Eqns[I];
      const SgeEquation &EJ = System.Eqns[J];

      // Rename equation J apart (required even when I == J).
      std::vector<std::pair<VarPtr, VarPtr>> Renaming;
      std::vector<TermPtr> JTerms = {EJ.Guard, EJ.Rhs};
      for (const TermPtr &A : Frames[J].Args)
        JTerms.push_back(A);
      Substitution Rename = renameFresh(JTerms, Renaming);

      if (!Q) {
        Q.emplace();
        Q->setDeadline(Budget);
        Q->add(EI.Guard);
      }
      Q->push();
      Q->add(substitute(EJ.Guard, Rename));
      Q->add(mkNot(mkEq(EI.Rhs, substitute(EJ.Rhs, Rename))));
      for (size_t K = 0; K < Frames[I].Args.size(); ++K)
        Q->add(mkEq(Frames[I].Args[K],
                    substitute(Frames[J].Args[K], Rename)));

      countEvent(CounterKind::WitnessQueries);
      SmtModel Model;
      bool IsSat = Q->checkSat(PerQueryTimeoutMs, &Model) == SmtResult::Sat;
      // Model readback is frame-scoped, so popping here (before the
      // projection) is safe: Model already holds exactly the base guard's
      // and this partner's variables.
      Q->pop();
      if (!IsSat)
        continue;

      // Project the joint model onto each equation's original variables.
      FunctionalWitness W;
      W.First.EqnIndex = I;
      for (const auto &[V, Val] : Model.assignments()) {
        bool IsRenamed = false;
        for (const auto &[Old, New] : Renaming)
          IsRenamed |= New->Id == V->Id;
        if (!IsRenamed)
          W.First.M.bind(V, Val);
      }
      W.Second.EqnIndex = J;
      for (const auto &[Old, New] : Renaming) {
        if (ValuePtr Val = Model.lookup(New->Id))
          W.Second.M.bind(Old, Val);
      }
      return W;
    }
  }
  return std::nullopt;
}
