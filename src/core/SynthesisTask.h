//===- SynthesisTask.h - Unified solver entry point -------------*- C++-*-===//
///
/// \file
/// The one front door to the solver stack. Every driver — the CLI, the
/// bench tables, the portfolio, the suite runner — expresses a run as a
/// \c SynthesisTask (which problem, which algorithm) executed under a
/// \c SolverConfig (budgets, parallelism, seed, telemetry), producing an
/// \c Outcome (verdict, solution or witness description, stats).
///
/// SolverConfig is the only place that reads the SE2GIS_* environment
/// variables, and only as a fallback in \c fromEnv: a driver that fills the
/// fields programmatically ignores the environment entirely, so sweeps are
/// reproducible from code alone.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CORE_SYNTHESISTASK_H
#define SE2GIS_CORE_SYNTHESISTASK_H

#include "cache/CacheConfig.h"
#include "core/Algorithms.h"
#include "support/Log.h"

#include <memory>

namespace se2gis {

/// Every knob of a solver invocation in one value.
struct SolverConfig {
  /// Algorithm knobs: the overall deadline (TimeoutMs), per-query Z3
  /// budgets, cancellation token, random seed, and ablation switches.
  AlgoOptions Algo;
  /// Concurrent (benchmark, algorithm) workers for suite sweeps. 0 = auto
  /// (hardware concurrency); 1 forces the strictly sequential path.
  unsigned Jobs = 0;
  /// Restrict suite sweeps to benchmarks whose name contains this
  /// substring ("" = all).
  std::string Filter;
  /// When non-empty, sweeps write their perf-counter JSON summary here
  /// (schema in DESIGN.md).
  std::string PerfJsonPath;
  /// Progress lines on stderr.
  bool Verbose = true;
  /// Memoization subsystem: mode (off/mem/disk) and, for disk, the store
  /// directory (DESIGN.md "Memoization model").
  CacheSettings Cache;
  /// Leveled logging: admitted level and optional JSONL sink
  /// (DESIGN.md "Observability model").
  LogSettings Log;
  /// When non-empty, tracing is on and a Chrome trace_event JSON file is
  /// flushed here at the end of the run / sweep (load it in Perfetto).
  std::string TracePath;
  /// Always-on flight recorder (DESIGN.md "Operability model"): per-thread
  /// rings of recent spans/logs/phases kept even with trace export off,
  /// dumped on fatal errors and job timeouts. Off only for overhead-
  /// sensitive measurements.
  bool Flight = true;
  /// Benchmark-generator stream seed (src/gen/): the fuzz driver and any
  /// generator-backed sweep derive every sampled case from this value, so
  /// a run is reproducible from the config alone. Unlike Algo.Seed (the
  /// Z3 seed) 0 is a valid stream.
  std::uint64_t GenSeed = 0;

  /// Builds a config from the environment (the only SE2GIS_* reader):
  ///  - SE2GIS_TIMEOUT_MS — overall budget in milliseconds, or
  ///    SE2GIS_TIMEOUT — the same in seconds (TIMEOUT_MS wins when both
  ///    are set). Values <= 0 leave the default \p DefaultTimeoutMs.
  ///  - SE2GIS_SEED — Z3 random seed (0 = Z3's default).
  ///  - SE2GIS_GEN_SEED — benchmark-generator stream seed (see GenSeed).
  ///  - SE2GIS_SMT_INCREMENTAL — "on" (default) or "off"; off restores
  ///    fresh-context-per-query SMT solving (throws UserError on anything
  ///    else). See DESIGN.md "Incremental SMT model".
  ///  - SE2GIS_UNREAL — unrealizability channels: "witness" (functional
  ///    witnesses only), "chc" (fixedpoint channel only), "race" (both), or
  ///    "auto" (the default: race under Portfolio, witness elsewhere).
  ///    Throws UserError on anything else. See DESIGN.md "Unrealizability
  ///    channels".
  ///  - SE2GIS_FILTER, SE2GIS_JOBS, SE2GIS_PERF_JSON — as the fields above.
  ///  - SE2GIS_CACHE — "off" (default), "mem", or "disk"; SE2GIS_CACHE_DIR
  ///    — the disk-mode store directory (default ./.se2gis-cache). Throws
  ///    UserError on an unparsable mode or an unusable cache directory.
  ///  - SE2GIS_LOG — log level (error|warn|info|debug; throws UserError on
  ///    anything else); SE2GIS_LOG_JSON — JSONL log sink path. The legacy
  ///    SE2GIS_DEBUG=1 implies debug level unless SE2GIS_LOG is set.
  ///  - SE2GIS_TRACE — trace output path (enables tracing).
  ///  - SE2GIS_FLIGHT — "on" (default) or "off"; off disables the flight
  ///    recorder entirely (throws UserError on anything else).
  static SolverConfig fromEnv(std::int64_t DefaultTimeoutMs = 5000);
};

/// One unit of synthesis work: a problem and the algorithm to run on it.
/// The problem is shared so a suite can fan one parse out to several
/// algorithms (and worker threads) without copying.
struct SynthesisTask {
  std::shared_ptr<const Problem> Prob;
  AlgorithmKind Algorithm = AlgorithmKind::SE2GIS;

  SynthesisTask() = default;
  SynthesisTask(std::shared_ptr<const Problem> P,
                AlgorithmKind K = AlgorithmKind::SE2GIS)
      : Prob(std::move(P)), Algorithm(K) {}

  /// Runs the task to completion (or deadline) under \p Config. Never
  /// throws on solver-level failure: a UserError from the stack becomes a
  /// Failed outcome with the message in \c Detail, so pooled workers
  /// cannot be poisoned by one bad benchmark.
  Outcome run(const SolverConfig &Config) const;
};

} // namespace se2gis

#endif // SE2GIS_CORE_SYNTHESISTASK_H
