//===- Approximation.cpp --------------------------------------------------===//

#include "core/Approximation.h"

#include "ast/Simplify.h"
#include "core/SplitIte.h"
#include "eval/Expand.h"
#include "support/Diagnostics.h"

#include <cassert>

using namespace se2gis;

Approximation::Approximation(const Problem &P) : P(P), Elim(P) {}

bool Approximation::addCanonicalTerm(TermPtr T) {
  // Reject duplicates by shape (same constructor skeleton).
  for (const ApproxTerm &Existing : Terms) {
    // Shape equality: compare with variables treated as wildcards. We
    // approximate by comparing the printed constructor skeletons.
    if (termSize(Existing.T) != termSize(T))
      continue;
    // Compare structurally, ignoring variable identities.
    std::function<bool(const TermPtr &, const TermPtr &)> SameShape =
        [&](const TermPtr &A, const TermPtr &B) {
          if (A->getKind() != B->getKind() || A->numArgs() != B->numArgs())
            return false;
          if (A->getKind() == TermKind::Ctor && A->getCtor() != B->getCtor())
            return false;
          if (A->getKind() == TermKind::Var)
            return sameType(A->getVar()->Ty, B->getVar()->Ty);
          for (size_t I = 0; I < A->numArgs(); ++I)
            if (!SameShape(A->getArg(I), B->getArg(I)))
              return false;
          return true;
        };
    if (SameShape(Existing.T, T))
      return false;
  }
  ApproxTerm AT;
  AT.Parts = Elim.eliminate(T);
  assert(AT.Parts.Canonical && "only canonical terms enter T");
  AT.T = std::move(T);
  Terms.push_back(std::move(AT));
  return true;
}

bool Approximation::initialize() {
  bool AddedAny = false;
  for (unsigned CI = 0; CI < P.Theta->numConstructors(); ++CI) {
    const ConstructorDecl &C = P.Theta->getConstructor(CI);
    std::vector<TermPtr> Fields;
    for (const TypePtr &FT : C.Fields)
      Fields.push_back(mkVar(freshVar(FT->isData() ? "l" : "a", FT)));
    TermPtr Seed = mkCtor(&C, std::move(Fields));
    // Keep the initial approximation minimal (the paper's T0): shallow
    // canonical terms only; refinement deepens on demand.
    std::vector<TermPtr> Canon =
        canonicalExpansions(P, Elim, Seed, 64, /*MaxGrowth=*/6);
    if (Canon.empty())
      return false;
    for (TermPtr &T : Canon)
      AddedAny |= addCanonicalTerm(std::move(T));
  }
  return AddedAny;
}

TermPtr Approximation::guardOf(size_t TermIndex) const {
  const ApproxTerm &AT = Terms[TermIndex];
  std::vector<TermPtr> Parts = AT.LocalGuards;
  for (const ImageInvariant &Inv : ImageInvariants) {
    for (const auto &[Orig, ElimVar] : AT.Parts.Alpha) {
      (void)Orig;
      Substitution Map;
      Map.emplace_back(Inv.Param->Id, mkVar(ElimVar));
      Parts.push_back(substitute(Inv.Pred, Map));
    }
  }
  return simplify(mkAndList(std::move(Parts)));
}

Sge Approximation::buildSge() const {
  Sge System;
  for (size_t I = 0; I < Terms.size(); ++I) {
    SgeEquation E;
    E.Guard = guardOf(I);
    E.Lhs = Terms[I].Parts.Lhs;
    E.Rhs = Terms[I].Parts.Rhs;
    E.TermIndex = I;
    if (!EnableSplitting) {
      System.Eqns.push_back(std::move(E));
      continue;
    }
    for (SgeEquation &Branch : splitEquation(E))
      System.Eqns.push_back(std::move(Branch));
  }
  return System;
}

bool Approximation::refine(const ValuePtr &Cex) {
  // Pick the most specific (largest) term whose shape covers the
  // counterexample and unroll it one level toward it.
  int Best = -1;
  size_t BestSize = 0;
  for (size_t I = 0; I < Terms.size(); ++I) {
    std::vector<std::pair<VarPtr, ValuePtr>> Bindings;
    if (!matchShape(Terms[I].T, Cex, Bindings))
      continue;
    size_t Size = termSize(Terms[I].T);
    if (Best < 0 || Size > BestSize) {
      Best = static_cast<int>(I);
      BestSize = Size;
    }
  }
  if (Best < 0)
    return false;

  // One-level expansions may canonicalize to shapes already in T (added by
  // another branch); keep unrolling toward the counterexample until a new
  // term appears.
  TermPtr Cur = Terms[Best].T;
  for (int Step = 0; Step < 16; ++Step) {
    std::optional<TermPtr> Expanded = expandToward(Cur, Cex);
    if (!Expanded)
      return false;
    std::vector<TermPtr> Canon = canonicalExpansions(P, Elim, *Expanded);
    if (Canon.empty())
      return false;
    bool AddedAny = false;
    for (TermPtr &T : Canon)
      AddedAny |= addCanonicalTerm(std::move(T));
    if (AddedAny)
      return true;
    Cur = *Expanded;
  }
  return false;
}

void Approximation::addLocalGuard(size_t TermIndex, TermPtr Pred) {
  assert(TermIndex < Terms.size() && "bad term index");
  Terms[TermIndex].LocalGuards.push_back(std::move(Pred));
}

void Approximation::addImageInvariant(VarPtr Param, TermPtr Pred) {
  ImageInvariants.push_back(ImageInvariant{std::move(Param), std::move(Pred)});
}
