//===- Portfolio.cpp ------------------------------------------------------===//

#include "core/Portfolio.h"

#include "chc/ChcChannel.h"
#include "support/Diagnostics.h"
#include "support/Log.h"
#include "support/Progress.h"
#include "support/Stopwatch.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <optional>
#include <vector>

using namespace se2gis;

namespace {

/// Dispatches one race member to its bare runner. Members must not go
/// through runAlgorithm: it applies the UnrealMode race wrapper itself, so
/// routing a member back into it would spawn nested races.
Outcome runMember(AlgorithmKind K, const Problem &P, const AlgoOptions &Opts) {
  switch (K) {
  case AlgorithmKind::SE2GIS:
    return runSE2GIS(P, Opts);
  case AlgorithmKind::SEGIS:
    return runSEGIS(P, Opts, /*WithUnrealizabilityChecker=*/false);
  case AlgorithmKind::SEGISUC:
    return runSEGIS(P, Opts, /*WithUnrealizabilityChecker=*/true);
  case AlgorithmKind::CHC:
    return runChcChannel(P, Opts);
  case AlgorithmKind::Portfolio:
    break; // a race inside a race is a bug
  }
  fatalError("bad race member");
}

} // namespace

Outcome se2gis::runRace(const std::vector<AlgorithmKind> &Members,
                        const Problem &P, const AlgoOptions &Opts) {
  if (Members.empty())
    fatalError("race with no members");
  Stopwatch Timer;
  const size_t N = Members.size();

  std::mutex M;
  std::condition_variable Cv;
  std::vector<std::optional<Outcome>> Results(N);
  // All members share one token, itself chained to the caller's: a
  // cancelled caller stops the whole race, a conclusive member stops its
  // siblings.
  CancellationToken Token = CancellationToken::create();
  size_t Done = 0;

  auto IsConclusive = [](const Outcome &R) {
    return R.V == Verdict::Realizable || R.V == Verdict::Unrealizable;
  };

  // Race members run on a dedicated pool's threads, which carry neither the
  // caller's progress board nor its request id; re-install both so member
  // rounds stay visible to `status` and member logs stay correlated.
  ProgressBoard *CallerBoard = threadProgressBoard();
  const std::uint64_t CallerRid = threadRequestId();

  auto Worker = [&](size_t Slot) {
    ProgressBoardScope BoardScope(CallerBoard);
    RequestIdScope RidScope(CallerRid);
    AlgorithmKind K = Members[Slot];
    TraceSpan Span("portfolio.member", "portfolio");
    AlgoOptions Local = Opts;
    Local.Token = Token;
    Outcome R = runMember(K, P, Local);
    if (Span.active()) {
      Span.arg("algorithm", algorithmName(K));
      Span.arg("verdict", verdictName(R.V));
    }
    if (R.Detail.empty())
      R.Detail = std::string("portfolio: ") + algorithmName(K);
    std::lock_guard<std::mutex> Lock(M);
    Results[Slot] = std::move(R);
    ++Done;
    Cv.notify_all();
  };

  // A dedicated pool rather than the suite runner's: race members must
  // start immediately even when every shared worker is busy, and blocking
  // a shared worker on a job of the same pool could deadlock. The members
  // also share work through the process-wide memoization caches (cache/):
  // the synthesis algorithms walk overlapping refinement states, so an SMT
  // verdict or solved SGE produced by one member is a cache hit for the
  // other — no explicit cross-member channel is needed.
  ThreadPool Pool(static_cast<unsigned>(N));
  std::vector<std::future<void>> Futures;
  Futures.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Futures.push_back(Pool.enqueue([&Worker, I] { Worker(I); }));

  {
    std::unique_lock<std::mutex> Lock(M);
    auto DoneOrConclusive = [&] {
      if (Done == N)
        return true;
      for (const auto &R : Results)
        if (R && IsConclusive(*R))
          return true;
      return false;
    };
    while (!DoneOrConclusive()) {
      Cv.wait_for(Lock, std::chrono::milliseconds(50));
      // Forward the caller's cancellation to the members (the timed wait
      // doubles as the poll for it).
      if (Opts.Token.cancelRequested())
        Token.requestCancel(Opts.Token.reason());
    }
  }
  // First conclusive verdict wins; tell the other workers to stop.
  Token.requestCancel();
  for (auto &F : Futures)
    F.get();

  Outcome Final;
  // Prefer a conclusive result (earlier members first on ties), else the
  // first member's outcome.
  for (const auto &R : Results)
    if (R && IsConclusive(*R)) {
      Final = *R;
      break;
    }
  if (!IsConclusive(Final) && Results[0])
    Final = *Results[0];
  if (N > 1 && IsConclusive(Final) && Final.Ev.Source == VerdictSource::Chc)
    perfAdd(PerfCounter::ChcRaceWins);
  Final.Stats.ElapsedMs = Timer.elapsedMs();
  return Final;
}

Outcome se2gis::runPortfolio(const Problem &P, const AlgoOptions &Opts) {
  UnrealMode Mode = resolveUnrealMode(Opts.Unreal, AlgorithmKind::Portfolio);
  std::vector<AlgorithmKind> Members{AlgorithmKind::SE2GIS,
                                     AlgorithmKind::SEGISUC};
  if (Mode != UnrealMode::Witness)
    Members.push_back(AlgorithmKind::CHC);
  AlgoOptions Local = Opts;
  // Under `chc` the fixedpoint channel is the only unrealizability prover.
  Local.DisableWitnessChannel = Mode == UnrealMode::Chc;
  return runRace(Members, P, Local);
}
