//===- Portfolio.cpp ------------------------------------------------------===//

#include "core/Portfolio.h"

#include "support/Stopwatch.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>

using namespace se2gis;

RunResult se2gis::runPortfolio(const Problem &P, const AlgoOptions &Opts) {
  Stopwatch Timer;

  std::mutex M;
  std::condition_variable Cv;
  std::optional<RunResult> Results[2];
  std::atomic<bool> Cancel{false};
  int Done = 0;

  auto IsConclusive = [](const RunResult &R) {
    return R.O == Outcome::Realizable || R.O == Outcome::Unrealizable;
  };

  auto Worker = [&](int Slot, AlgorithmKind K) {
    AlgoOptions Local = Opts;
    Local.Cancel = &Cancel;
    RunResult R = runAlgorithm(K, P, Local);
    if (R.Detail.empty())
      R.Detail = std::string("portfolio: ") + algorithmName(K);
    std::lock_guard<std::mutex> Lock(M);
    Results[Slot] = std::move(R);
    ++Done;
    Cv.notify_all();
  };

  // A dedicated two-worker pool rather than the suite runner's: portfolio
  // members must start immediately even when every shared worker is busy,
  // and blocking a shared worker on a job of the same pool could deadlock.
  ThreadPool Pool(2);
  auto F1 = Pool.enqueue([&] { Worker(0, AlgorithmKind::SE2GIS); });
  auto F2 = Pool.enqueue([&] { Worker(1, AlgorithmKind::SEGISUC); });

  {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] {
      if (Done == 2)
        return true;
      for (const auto &R : Results)
        if (R && IsConclusive(*R))
          return true;
      return false;
    });
  }
  // First conclusive verdict wins; tell the other worker to stop.
  Cancel.store(true);
  F1.get();
  F2.get();

  RunResult Final;
  // Prefer a conclusive result (SE2GIS first on ties), else the SE2GIS one.
  for (const auto &R : Results)
    if (R && IsConclusive(*R)) {
      Final = *R;
      break;
    }
  if (Final.O != Outcome::Realizable && Final.O != Outcome::Unrealizable &&
      Results[0])
    Final = *Results[0];
  Final.Stats.ElapsedMs = Timer.elapsedMs();
  return Final;
}
