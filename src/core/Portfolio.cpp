//===- Portfolio.cpp ------------------------------------------------------===//

#include "core/Portfolio.h"

#include "support/Stopwatch.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>

using namespace se2gis;

RunResult se2gis::runPortfolio(const Problem &P, const AlgoOptions &Opts) {
  Stopwatch Timer;

  std::mutex M;
  std::condition_variable Cv;
  std::optional<RunResult> Results[2];
  std::atomic<bool> Cancel{false};
  int Done = 0;

  auto IsConclusive = [](const RunResult &R) {
    return R.O == Outcome::Realizable || R.O == Outcome::Unrealizable;
  };

  auto Worker = [&](int Slot, AlgorithmKind K) {
    AlgoOptions Local = Opts;
    Local.Cancel = &Cancel;
    RunResult R = runAlgorithm(K, P, Local);
    if (R.Detail.empty())
      R.Detail = std::string("portfolio: ") + algorithmName(K);
    std::lock_guard<std::mutex> Lock(M);
    Results[Slot] = std::move(R);
    ++Done;
    Cv.notify_all();
  };

  std::thread T1(Worker, 0, AlgorithmKind::SE2GIS);
  std::thread T2(Worker, 1, AlgorithmKind::SEGISUC);

  {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] {
      if (Done == 2)
        return true;
      for (const auto &R : Results)
        if (R && IsConclusive(*R))
          return true;
      return false;
    });
  }
  // First conclusive verdict wins; tell the other worker to stop.
  Cancel.store(true);
  T1.join();
  T2.join();

  RunResult Final;
  // Prefer a conclusive result (SE2GIS first on ties), else the SE2GIS one.
  for (const auto &R : Results)
    if (R && IsConclusive(*R)) {
      Final = *R;
      break;
    }
  if (Final.O != Outcome::Realizable && Final.O != Outcome::Unrealizable &&
      Results[0])
    Final = *Results[0];
  Final.Stats.ElapsedMs = Timer.elapsedMs();
  return Final;
}
