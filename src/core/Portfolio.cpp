//===- Portfolio.cpp ------------------------------------------------------===//

#include "core/Portfolio.h"

#include "support/Stopwatch.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>

using namespace se2gis;

Outcome se2gis::runPortfolio(const Problem &P, const AlgoOptions &Opts) {
  Stopwatch Timer;

  std::mutex M;
  std::condition_variable Cv;
  std::optional<Outcome> Results[2];
  // Both members share one token, itself chained to the caller's: a
  // cancelled caller stops the whole portfolio, a conclusive member stops
  // its sibling.
  CancellationToken Token = CancellationToken::create();
  int Done = 0;

  auto IsConclusive = [](const Outcome &R) {
    return R.V == Verdict::Realizable || R.V == Verdict::Unrealizable;
  };

  auto Worker = [&](int Slot, AlgorithmKind K) {
    TraceSpan Span("portfolio.member", "portfolio");
    AlgoOptions Local = Opts;
    Local.Token = Token;
    Outcome R = runAlgorithm(K, P, Local);
    if (Span.active()) {
      Span.arg("algorithm", algorithmName(K));
      Span.arg("verdict", verdictName(R.V));
    }
    if (R.Detail.empty())
      R.Detail = std::string("portfolio: ") + algorithmName(K);
    std::lock_guard<std::mutex> Lock(M);
    Results[Slot] = std::move(R);
    ++Done;
    Cv.notify_all();
  };

  // A dedicated two-worker pool rather than the suite runner's: portfolio
  // members must start immediately even when every shared worker is busy,
  // and blocking a shared worker on a job of the same pool could deadlock.
  // The members also share work through the process-wide memoization caches
  // (cache/): both algorithms walk overlapping refinement states, so an SMT
  // verdict or solved SGE produced by one member is a cache hit for the
  // other — no explicit cross-member channel is needed.
  ThreadPool Pool(2);
  auto F1 = Pool.enqueue([&] { Worker(0, AlgorithmKind::SE2GIS); });
  auto F2 = Pool.enqueue([&] { Worker(1, AlgorithmKind::SEGISUC); });

  {
    std::unique_lock<std::mutex> Lock(M);
    auto DoneOrConclusive = [&] {
      if (Done == 2)
        return true;
      for (const auto &R : Results)
        if (R && IsConclusive(*R))
          return true;
      return false;
    };
    while (!DoneOrConclusive()) {
      Cv.wait_for(Lock, std::chrono::milliseconds(50));
      // Forward the caller's cancellation to the members (the timed wait
      // doubles as the poll for it).
      if (Opts.Token.cancelRequested())
        Token.requestCancel(Opts.Token.reason());
    }
  }
  // First conclusive verdict wins; tell the other worker to stop.
  Token.requestCancel();
  F1.get();
  F2.get();

  Outcome Final;
  // Prefer a conclusive result (SE2GIS first on ties), else the SE2GIS one.
  for (const auto &R : Results)
    if (R && IsConclusive(*R)) {
      Final = *R;
      break;
    }
  if (Final.V != Verdict::Realizable && Final.V != Verdict::Unrealizable &&
      Results[0])
    Final = *Results[0];
  Final.Stats.ElapsedMs = Timer.elapsedMs();
  return Final;
}
