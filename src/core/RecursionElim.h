//===- RecursionElim.h - Recursion elimination (Definition 4.3) -*- C++-*-===//
///
/// \file
/// Recursion elimination ⟦·⟧elim and canonical-term machinery (paper §4.1).
/// For a term t of type θ, we symbolically evaluate the two sides of the
/// specification, `G[U](e⃗, t)` and `f(e⃗, r(t))`, and replace each residual
/// *elimination unit* — a stuck call `f(e⃗, r(y))` or `G[U](e⃗, y)` on a
/// datatype variable y — by the elimination variable α(y) of scalar type D.
///
/// A term is canonical (the paper's "maximally reducible") when no datatype
/// variable survives outside an elimination unit on either side; partial
/// bounding keeps canonical terms as shallow as possible instead of fully
/// unrolling them.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CORE_RECURSIONELIM_H
#define SE2GIS_CORE_RECURSIONELIM_H

#include "eval/SymbolicEval.h"
#include "lang/Program.h"

#include <optional>

namespace se2gis {

/// The elimination bijection α restricted to one equation: pairs of
/// (original datatype variable y, elimination variable α(y) : D).
using AlphaMap = std::vector<std::pair<VarPtr, VarPtr>>;

/// The eliminated two sides of one equation plus bookkeeping.
struct EquationParts {
  /// ⟦G[U](e⃗, t)⟧elim — contains the unknowns.
  TermPtr Lhs;
  /// ⟦f(e⃗, r(t))⟧elim — unknown-free.
  TermPtr Rhs;
  /// Elimination variables introduced (shared between both sides).
  AlphaMap Alpha;
  /// The fresh extra-parameter variables e⃗ of this equation.
  std::vector<VarPtr> Extras;
  /// True when no datatype variable survives outside an elimination unit.
  bool Canonical = true;
  /// Datatype variables blocking canonicity (empty when Canonical).
  std::vector<VarPtr> BlockingVars;
};

/// Performs recursion elimination for one problem.
class RecursionEliminator {
public:
  explicit RecursionEliminator(const Problem &P);

  /// Builds the eliminated equation parts for term \p T (fresh extras each
  /// call). Raises UserError if symbolic evaluation exhausts its fuel.
  EquationParts eliminate(const TermPtr &T);

  /// \returns the datatype variables of \p T that block canonicity.
  std::vector<VarPtr> blockingVars(const TermPtr &T);

  /// Builds the inverse image m⁻¹(v) of elimination variable α(y): the term
  /// `f(e⃗, r(y))` over \p Extras (Definition 5.2 uses it to state
  /// compatibility constraints).
  TermPtr elimVarDefinition(const VarPtr &OrigVar,
                            const std::vector<VarPtr> &Extras) const;

  /// Applies ⟦·⟧elim to an arbitrary evaluated term given fixed extras,
  /// extending \p Alpha as needed.
  TermPtr elimTerm(const TermPtr &T, const std::vector<VarPtr> &Extras,
                   AlphaMap &Alpha) const;

private:
  const Problem &P;
  const RecFunction *Ref;
  const RecFunction *Tgt;
  const RecFunction *Repr;
};

/// Expands \p Seed until every result is canonical (breadth-first, bounded).
/// \returns the canonical expansions, or an empty vector if the bound was hit
/// before all branches became canonical.
std::vector<TermPtr> canonicalExpansions(const Problem &P,
                                         RecursionEliminator &Elim,
                                         const TermPtr &Seed,
                                         size_t MaxTerms = 64,
                                         size_t MaxGrowth = 12);

} // namespace se2gis

#endif // SE2GIS_CORE_RECURSIONELIM_H
