//===- Algorithms.cpp -----------------------------------------------------===//

#include "core/Algorithms.h"

#include "ast/Simplify.h"
#include "chc/ChcChannel.h"
#include "core/Approximation.h"
#include "core/Certificates.h"
#include "core/InvariantInfer.h"
#include "core/SplitIte.h"
#include "core/Portfolio.h"
#include "core/Witness.h"
#include "eval/Expand.h"
#include "eval/SymbolicEval.h"
#include "support/Diagnostics.h"
#include "support/Progress.h"
#include "support/Stopwatch.h"
#include "support/Trace.h"
#include "synth/Grammar.h"
#include "synth/SgeSolver.h"

#include <cctype>
#include <sstream>

using namespace se2gis;

const char *se2gis::algorithmName(AlgorithmKind K) {
  switch (K) {
  case AlgorithmKind::SE2GIS:
    return "SE2GIS";
  case AlgorithmKind::SEGIS:
    return "SEGIS";
  case AlgorithmKind::SEGISUC:
    return "SEGIS+UC";
  case AlgorithmKind::CHC:
    return "CHC";
  case AlgorithmKind::Portfolio:
    return "portfolio";
  }
  return "?";
}

std::optional<AlgorithmKind>
se2gis::parseAlgorithmName(const std::string &Name) {
  std::string S;
  for (char C : Name)
    S += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  if (S == "se2gis")
    return AlgorithmKind::SE2GIS;
  if (S == "segis")
    return AlgorithmKind::SEGIS;
  if (S == "segis-uc" || S == "segisuc" || S == "segis+uc")
    return AlgorithmKind::SEGISUC;
  if (S == "chc")
    return AlgorithmKind::CHC;
  if (S == "portfolio")
    return AlgorithmKind::Portfolio;
  return std::nullopt;
}

const char *se2gis::unrealModeName(UnrealMode M) {
  switch (M) {
  case UnrealMode::Auto:
    return "auto";
  case UnrealMode::Witness:
    return "witness";
  case UnrealMode::Chc:
    return "chc";
  case UnrealMode::Race:
    return "race";
  }
  return "?";
}

std::optional<UnrealMode> se2gis::parseUnrealMode(const std::string &Name) {
  std::string S;
  for (char C : Name)
    S += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  if (S == "auto")
    return UnrealMode::Auto;
  if (S == "witness")
    return UnrealMode::Witness;
  if (S == "chc")
    return UnrealMode::Chc;
  if (S == "race")
    return UnrealMode::Race;
  return std::nullopt;
}

UnrealMode se2gis::resolveUnrealMode(UnrealMode M, AlgorithmKind K) {
  if (M != UnrealMode::Auto)
    return M;
  return K == AlgorithmKind::Portfolio ? UnrealMode::Race
                                       : UnrealMode::Witness;
}

const char *se2gis::verdictSourceName(VerdictSource S) {
  switch (S) {
  case VerdictSource::None:
    return "none";
  case VerdictSource::Witness:
    return "witness";
  case VerdictSource::Chc:
    return "chc";
  case VerdictSource::Cache:
    return "cache";
  }
  return "?";
}

std::string Evidence::str() const {
  if (Source == VerdictSource::None)
    return "";
  auto Lower = [](const std::string &S) {
    std::string Out;
    for (char C : S)
      Out += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    return Out;
  };
  std::ostringstream OS;
  OS << verdictSourceName(Source);
  if (!Channel.empty() && Lower(Channel) != verdictSourceName(Source))
    OS << "/" << Channel;
  if (ChcClauses)
    OS << " (" << ChcClauses << " clauses)";
  else if (Lemmas)
    OS << " (" << Lemmas << " lemmas)";
  return OS.str();
}

const char *se2gis::verdictName(Verdict O) {
  switch (O) {
  case Verdict::Realizable:
    return "realizable";
  case Verdict::Unrealizable:
    return "unrealizable";
  case Verdict::Timeout:
    return "timeout";
  case Verdict::Failed:
    return "failed";
  }
  return "?";
}

namespace {

std::string describeWitness(const FunctionalWitness &W) {
  std::ostringstream OS;
  OS << "witness models: " << W.First.M.str() << " (eqn "
     << W.First.EqnIndex << "), " << W.Second.M.str() << " (eqn "
     << W.Second.EqnIndex << ")";
  return OS.str();
}

std::string describeValidInputs(const std::vector<ConcreteInput> &Ins) {
  std::ostringstream OS;
  OS << "; concrete inputs:";
  for (const ConcreteInput &In : Ins)
    for (const auto &[V, Val] : In.DataVars)
      OS << ' ' << V->Name << " = " << Val->str();
  return OS.str();
}

} // namespace

// --- SE2GIS -------------------------------------------------------------===//

Outcome se2gis::runSE2GIS(const Problem &P, const AlgoOptions &Opts) {
  Stopwatch Timer;
  Deadline Budget = Deadline::afterMs(Opts.TimeoutMs);
  Budget.setToken(Opts.Token);
  if (Opts.Seed)
    setSmtRandomSeed(Opts.Seed);
  setSmtIncremental(Opts.SmtIncremental);
  // Start every run on a virgin session: solver heuristic state carried
  // across runs would make a benchmark's trajectory depend on sweep order
  // (and diverge from a standalone CLI run of the same problem).
  resetThreadSmtSession();
  CounterSnapshot Before = snapshotCounters();
  PerfSnapshot PerfBefore = snapshotPerf();
  PhaseSnapshot PhaseBefore = phaseSnapshot();
  Outcome Result;

  GrammarConfig Grammar = inferGrammar(P);
  SgeSolver Solver(P.Unknowns, Grammar);
  Solver.PerQueryTimeoutMs = Opts.SgePerQueryTimeoutMs;
  Solver.AnchorToCandidate = !Opts.DisableEufAnchoring;

  Approximation Approx(P);
  Approx.EnableSplitting = !Opts.DisableIteSplitting;
  if (!Approx.initialize()) {
    Result.Detail = "canonical term construction diverged";
    Result.Stats.ElapsedMs = Timer.elapsedMs();
    return Result;
  }

  // Seed the guards with the user's `ensures` hint, if any (an invariant of
  // the image of the reference function).
  if (!P.Ensures.empty()) {
    const RecFunction *Ens = P.Prog->findFunction(P.Ensures);
    Approx.addImageInvariant(Ens->getParams()[0], Ens->getBody());
  }

  CertificateChecker Checker(P, Approx);
  Checker.Bounded = Opts.Bounded;
  InvariantLearner Learner(P, Approx, Grammar);
  Learner.Bounded = Opts.Bounded;
  Learner.Induction = Opts.Induction;

  // Invariants learned so far, normalized to the reference's parameter
  // variables and reused as induction lemmas during final verification.
  const RecFunction *Ref = P.Prog->findFunction(P.Reference);
  std::vector<ShapeLemma> Lemmas;
  auto AddLemma = [&](const LearnedInvariant &Inv) {
    if (!Inv.LemmaFormula)
      return;
    Substitution Map;
    for (size_t I = 0; I < Inv.LemmaExtras.size(); ++I)
      Map.emplace_back(Inv.LemmaExtras[I]->Id,
                       mkVar(Ref->getParams()[I]));
    Lemmas.push_back(
        ShapeLemma{Inv.LemmaPattern, substitute(Inv.LemmaFormula, Map)});
  };

  while (true) {
    TraceSpan Round("se2gis.round", "round");
    if (Round.active()) {
      Round.arg("refinements",
                static_cast<std::int64_t>(Result.Stats.Refinements));
      Round.arg("coarsenings",
                static_cast<std::int64_t>(Result.Stats.Coarsenings));
    }
    // Round-granularity live introspection (no-op outside the service).
    progressPublish([&](ProgressSnapshot &Pr) {
      progressSetStr(Pr.Algorithm, "se2gis");
      progressSetStr(Pr.Activity, "round");
      progressSetStr(Pr.WitnessState, "probing");
      Pr.Round = Result.Stats.Refinements + Result.Stats.Coarsenings;
      Pr.Refinements = Result.Stats.Refinements;
      Pr.Coarsenings = Result.Stats.Coarsenings;
      Pr.Lemmas = Lemmas.size();
      Pr.CandidateSize = Result.Stats.LastCandidate.size();
      Pr.UpdatedNs = detail::traceNowNs();
    });
    if (Budget.expired()) {
      Result.V = Verdict::Timeout;
      break;
    }

    Sge System = Approx.buildSge();

    // Fig. 1's "Is φ realizable?" gate: search for a functional
    // unrealizability witness first. A hit activates the coarsening loop
    // without waiting for the synthesis step to corner the conflict.
    std::optional<FunctionalWitness> W;
    if (!Opts.DisableWitnessChannel)
      W = findFunctionalWitness(System, Opts.SgePerQueryTimeoutMs, Budget);
    if (W) {
      Result.Stats.Steps += "\u25e6"; // ◦
      ++Result.Stats.Coarsenings;
      Round.arg("kind", "coarsen");
      progressPublish([&](ProgressSnapshot &Pr) {
        progressSetStr(Pr.Activity, "coarsen");
        progressSetStr(Pr.WitnessState, "found");
        Pr.Coarsenings = Result.Stats.Coarsenings;
        Pr.UpdatedNs = detail::traceNowNs();
      });

      WitnessCheckResult Chk = Checker.check(*W, System, Budget);
      if (Chk.Verdict == WitnessVerdict::Valid) {
        Result.V = Verdict::Unrealizable;
        Result.Detail =
            describeWitness(*W) + describeValidInputs(Chk.ValidInputs);
        break;
      }
      if (Chk.Verdict == WitnessVerdict::Unknown) {
        Result.Detail = "spuriousness check inconclusive";
        break;
      }

      bool LearnedAny = false;
      for (const SCertificate &Cert : Chk.Certs) {
        auto Inv = Learner.learn(Cert, Budget);
        if (!Inv)
          continue;
        Learner.apply(*Inv);
        AddLemma(*Inv);
        LearnedAny = true;
        if (Inv->Kind == CertKind::Mistyped)
          ++Result.Stats.DatatypeInvariants;
        else
          ++Result.Stats.ImageInvariants;
        Result.Stats.AllInvariantsByInduction &= Inv->ByInduction;
      }
      Round.arg("lemmas", static_cast<std::uint64_t>(Lemmas.size()));
      if (!LearnedAny) {
        Result.V = Budget.expired() ? Verdict::Timeout : Verdict::Failed;
        if (Result.V == Verdict::Failed)
          Result.Detail = "invariant inference diverged";
        break;
      }
      continue;
    }

    progressPublish([&](ProgressSnapshot &Pr) {
      progressSetStr(Pr.Activity, "synthesize");
      progressSetStr(Pr.WitnessState, "none");
      Pr.UpdatedNs = detail::traceNowNs();
    });
    SgeResult SR = Solver.solve(System, Budget);
    if (!SR.Solution.empty())
      Result.Stats.LastCandidate = solutionToString(P, SR.Solution);

    if (SR.Status == SgeStatus::Solved) {
      Result.Stats.Steps += "•"; // •
      ++Result.Stats.Refinements;
      Round.arg("kind", "refine");
      Round.arg("sge_rounds", static_cast<std::int64_t>(SR.Rounds));
      progressPublish([&](ProgressSnapshot &Pr) {
        progressSetStr(Pr.Activity, "verify");
        Pr.Refinements = Result.Stats.Refinements;
        Pr.CandidateSize = Result.Stats.LastCandidate.size();
        Pr.UpdatedNs = detail::traceNowNs();
      });

      VerifyOptions VOpts;
      VOpts.Bounded = Opts.Bounded;
      VOpts.Induction = Opts.Induction;
      if (!Opts.DisableLemmaReplay)
        VOpts.Lemmas = Lemmas;
      VerifyResult V = verifySolution(P, SR.Solution, VOpts, Budget);
      if (V.Status != VerifyStatus::Counterexample) {
        Result.V = Verdict::Realizable;
        Result.Solution = std::move(SR.Solution);
        Result.Stats.SolutionProvedInductive =
            V.Status == VerifyStatus::ProvedInductive;
        break;
      }
      if (!Approx.refine(V.CexTheta)) {
        Result.Detail = "refinement failed to cover the counterexample";
        break;
      }
      continue;
    }

    if (SR.Status == SgeStatus::Infeasible) {
      // The grounded system is unsatisfiable in EUF although no frame-based
      // witness exists: the paper's theoretical gap (Appendix C.1.3).
      Result.Detail = "no functional unrealizability witness exists for "
                      "the approximation";
      break;
    }

    // SGE solver gave up.
    Result.V = Budget.expired() ? Verdict::Timeout : Verdict::Failed;
    if (Result.V == Verdict::Failed)
      Result.Detail = "the synthesis step for the approximation failed";
    break;
  }

  if (Result.V == Verdict::Failed && Budget.expired())
    Result.V = Verdict::Timeout;
  if (Result.V != Verdict::Timeout)
    Result.Stats.LastCandidate.clear();
  if (Result.V == Verdict::Realizable || Result.V == Verdict::Unrealizable) {
    Result.Ev.Source = VerdictSource::Witness;
    Result.Ev.Channel = "SE2GIS";
    Result.Ev.Lemmas = static_cast<std::uint64_t>(
        Result.Stats.ImageInvariants + Result.Stats.DatatypeInvariants);
  }
  Result.Stats.ElapsedMs = Timer.elapsedMs();
  Result.Stats.Counters = snapshotCounters().since(Before);
  Result.Stats.Perf = snapshotPerf().since(PerfBefore);
  Result.Stats.Phases = phaseSnapshot().since(PhaseBefore);
  return Result;
}

// --- SEGIS / SEGIS+UC ----------------------------------------------------===//

Outcome se2gis::runSEGIS(const Problem &P, const AlgoOptions &Opts,
                           bool WithUnrealizabilityChecker) {
  Stopwatch Timer;
  Deadline Budget = Deadline::afterMs(Opts.TimeoutMs);
  Budget.setToken(Opts.Token);
  if (Opts.Seed)
    setSmtRandomSeed(Opts.Seed);
  setSmtIncremental(Opts.SmtIncremental);
  // Start every run on a virgin session: solver heuristic state carried
  // across runs would make a benchmark's trajectory depend on sweep order
  // (and diverge from a standalone CLI run of the same problem).
  resetThreadSmtSession();
  CounterSnapshot Before = snapshotCounters();
  PerfSnapshot PerfBefore = snapshotPerf();
  PhaseSnapshot PhaseBefore = phaseSnapshot();
  Outcome Result;

  GrammarConfig Grammar = inferGrammar(P);
  SgeSolver Solver(P.Unknowns, Grammar);
  Solver.PerQueryTimeoutMs = Opts.SgePerQueryTimeoutMs;

  Solver.AnchorToCandidate = !Opts.DisableEufAnchoring;
  RecursionEliminator Elim(P);
  SymbolicEvaluator SE(*P.Prog);
  BoundedTermStream Stream(P.Theta);

  struct BoundedEqn {
    TermPtr T;
    std::vector<SgeEquation> Eqns;
  };
  std::vector<BoundedEqn> Terms;

  auto AddShape = [&](TermPtr Shape) -> bool {
    if (!Shape)
      return false; // finite datatype fully enumerated
    EquationParts Parts;
    TermPtr Guard;
    try {
      Parts = Elim.eliminate(Shape);
      Guard = P.Invariant.empty()
                  ? mkTrue()
                  : SE.eval(mkCall(P.Invariant, Type::boolTy(), {Shape}));
    } catch (const UserError &) {
      return false;
    }
    if (!Parts.Canonical)
      fatalError("bounded term is not canonical");
    if (Guard->getKind() == TermKind::BoolLit && !Guard->getBoolValue())
      return true; // impossible shape; equation would be vacuous
    BoundedEqn BE;
    BE.T = Shape;
    SgeEquation E{Guard, Parts.Lhs, Parts.Rhs, Terms.size()};
    BE.Eqns = Opts.DisableIteSplitting ? std::vector<SgeEquation>{E}
                                       : splitEquation(E);
    Terms.push_back(std::move(BE));
    return true;
  };

  // Initial shapes: one per constructor-ish level (the first few bounded
  // terms in size order).
  for (unsigned I = 0; I < std::max(2u, P.Theta->numConstructors()); ++I)
    AddShape(Stream.next());

  while (true) {
    TraceSpan Round("segis.round", "round");
    if (Round.active()) {
      Round.arg("refinements",
                static_cast<std::int64_t>(Result.Stats.Refinements));
      Round.arg("terms", static_cast<std::uint64_t>(Terms.size()));
    }
    progressPublish([&](ProgressSnapshot &Pr) {
      progressSetStr(Pr.Algorithm,
                     WithUnrealizabilityChecker ? "segis-uc" : "segis");
      progressSetStr(Pr.Activity, "round");
      if (WithUnrealizabilityChecker && !Opts.DisableWitnessChannel)
        progressSetStr(Pr.WitnessState, "probing");
      Pr.Round = Result.Stats.Refinements;
      Pr.Refinements = Result.Stats.Refinements;
      Pr.Terms = Terms.size();
      Pr.CandidateSize = Result.Stats.LastCandidate.size();
      Pr.UpdatedNs = detail::traceNowNs();
    });
    if (Budget.expired()) {
      Result.V = Verdict::Timeout;
      break;
    }

    Sge System;
    for (const BoundedEqn &BE : Terms)
      for (const SgeEquation &E : BE.Eqns)
        System.Eqns.push_back(E);

    if (WithUnrealizabilityChecker && !Opts.DisableWitnessChannel) {
      auto W = findFunctionalWitness(System, Opts.SgePerQueryTimeoutMs,
                                     Budget);
      if (W) {
        // Over fully bounded terms the guards are exactly Iθ evaluated,
        // so the witness is valid; concretize the shapes for the report.
        Result.V = Verdict::Unrealizable;
        std::ostringstream OS;
        size_t T1 = System.Eqns[W->First.EqnIndex].TermIndex;
        size_t T2 = System.Eqns[W->Second.EqnIndex].TermIndex;
        OS << describeWitness(*W) << "; concrete inputs: "
           << concretizeShape(Terms[T1].T, W->First.M)->str() << ", "
           << concretizeShape(Terms[T2].T, W->Second.M)->str();
        Result.Detail = OS.str();
        break;
      }
    }

    SgeResult SR = Solver.solve(System, Budget);
    if (!SR.Solution.empty())
      Result.Stats.LastCandidate = solutionToString(P, SR.Solution);

    if (SR.Status == SgeStatus::Solved) {
      Result.Stats.Steps += "•";
      ++Result.Stats.Refinements;
      Round.arg("kind", "refine");
      Round.arg("sge_rounds", static_cast<std::int64_t>(SR.Rounds));

      VerifyOptions VOpts;
      VOpts.Bounded = Opts.Bounded;
      VOpts.Induction = Opts.Induction;
      VerifyResult V = verifySolution(P, SR.Solution, VOpts, Budget);
      if (V.Status != VerifyStatus::Counterexample) {
        Result.V = Verdict::Realizable;
        Result.Solution = std::move(SR.Solution);
        Result.Stats.SolutionProvedInductive =
            V.Status == VerifyStatus::ProvedInductive;
        break;
      }
      AddShape(shapeOfValue(V.CexTheta));
      continue;
    }

    if (SR.Status == SgeStatus::Infeasible) {
      if (WithUnrealizabilityChecker) {
        // Unrealizable beyond the frame-based witness class (C.1.3).
        Result.Detail = "no functional unrealizability witness exists";
        break;
      }
      // Plain SEGIS has no unrealizability outcome: keep unrolling until
      // the budget runs out (the paper's SEGIS solves no unrealizable
      // benchmark). The one exception is a finite datatype whose inputs
      // are all already in the system — infeasibility over every input is
      // a sound unrealizability proof with no witness machinery needed.
      TermPtr S = Stream.next();
      if (!S) {
        Result.V = Verdict::Unrealizable;
        Result.Detail = "equation system over every input of the finite "
                        "datatype is infeasible";
        break;
      }
      AddShape(std::move(S));
      ++Result.Stats.Refinements;
      continue;
    }

    // Solver gave up: add one more bounded term and retry.
    if (Budget.expired()) {
      Result.V = Verdict::Timeout;
      break;
    }
    AddShape(Stream.next());
    ++Result.Stats.Refinements;
  }

  if (Result.V != Verdict::Timeout)
    Result.Stats.LastCandidate.clear();
  if (Result.V == Verdict::Realizable || Result.V == Verdict::Unrealizable) {
    Result.Ev.Source = VerdictSource::Witness;
    Result.Ev.Channel = WithUnrealizabilityChecker ? "SEGIS+UC" : "SEGIS";
  }
  Result.Stats.ElapsedMs = Timer.elapsedMs();
  Result.Stats.Counters = snapshotCounters().since(Before);
  Result.Stats.Perf = snapshotPerf().since(PerfBefore);
  Result.Stats.Phases = phaseSnapshot().since(PhaseBefore);
  return Result;
}

Outcome se2gis::runAlgorithm(AlgorithmKind K, const Problem &P,
                               const AlgoOptions &Opts) {
  PerfTimerScope RunTimer(PerfTimer::SuiteRunNs);
  UnrealMode Mode = resolveUnrealMode(Opts.Unreal, K);
  switch (K) {
  case AlgorithmKind::SE2GIS:
  case AlgorithmKind::SEGIS:
  case AlgorithmKind::SEGISUC: {
    if (Mode == UnrealMode::Witness)
      return K == AlgorithmKind::SE2GIS
                 ? runSE2GIS(P, Opts)
                 : runSEGIS(P, Opts,
                            /*WithUnrealizabilityChecker=*/K ==
                                AlgorithmKind::SEGISUC);
    // Chc/Race: race the algorithm against the CHC channel; under Chc the
    // algorithm's own witness channel is suppressed so every Unrealizable
    // verdict is CHC-proved.
    AlgoOptions Local = Opts;
    Local.DisableWitnessChannel = Mode == UnrealMode::Chc;
    return runRace({K, AlgorithmKind::CHC}, P, Local);
  }
  case AlgorithmKind::CHC:
    return runChcChannel(P, Opts);
  case AlgorithmKind::Portfolio:
    return runPortfolio(P, Opts);
  }
  fatalError("bad algorithm kind");
}
