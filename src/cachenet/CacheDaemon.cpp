//===- CacheDaemon.cpp ----------------------------------------------------===//

#include "cachenet/CacheDaemon.h"

#include "support/Metrics.h"

#include <csignal>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace se2gis;

bool se2gis::validCacheSegmentName(const std::string &Name) {
  if (Name.empty() || Name.size() > 64)
    return false;
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= '0' && C <= '9') || C == '_' ||
              C == '-';
    if (!Ok)
      return false;
  }
  return true;
}

CacheDaemon::CacheDaemon(CacheDaemonConfig C) : Config(std::move(C)) {}

CacheDaemon::~CacheDaemon() {
  closeFd(ListenFd);
  closeFd(MetricsFd);
  closeFd(WakePipe[0]);
  closeFd(WakePipe[1]);
  if (BoundAddr.IsUnix && !BoundAddr.Path.empty())
    ::unlink(BoundAddr.Path.c_str());
  if (MetricsBoundAddr.IsUnix && !MetricsBoundAddr.Path.empty())
    ::unlink(MetricsBoundAddr.Path.c_str());
}

bool CacheDaemon::start(std::string &Error) {
  if (!parseServiceAddr(Config.Listen, BoundAddr, Error))
    return false;
  if (::pipe(WakePipe) != 0) {
    Error = "cannot create wake pipe";
    return false;
  }
  configureLogging(Config.Log);

  Store = DiskStore::open(Config.Dir, Error);
  if (!Store)
    return false;
  {
    // Preload the hot segments so a restart is warm immediately and the
    // (possibly compacting) load happens before the first client.
    std::lock_guard<std::mutex> Lock(StoreM);
    for (const char *Name : {"smt", "suite"})
      segmentLocked(Name);
  }

  ListenFd = listenOn(BoundAddr, Error);
  if (ListenFd < 0)
    return false;
  ::signal(SIGPIPE, SIG_IGN);

  if (!Config.MetricsAddr.empty()) {
    if (!parseServiceAddr(Config.MetricsAddr, MetricsBoundAddr, Error))
      return false;
    MetricsFd = listenOn(MetricsBoundAddr, Error);
    if (MetricsFd < 0)
      return false;
    logf(LogLevel::Info, "cached", "metrics listener on %s",
         MetricsBoundAddr.str().c_str());
  }

  StartAt = std::chrono::steady_clock::now();
  std::uint64_t Entries = 0;
  {
    std::lock_guard<std::mutex> Lock(StoreM);
    for (const auto &[Name, Seg] : Segments)
      Entries += Seg.Map.size();
  }
  logf(LogLevel::Info, "cached",
       "listening on %s (store %s, %llu entries warm)",
       BoundAddr.str().c_str(), Config.Dir.c_str(),
       static_cast<unsigned long long>(Entries));

  AcceptThread = std::thread([this] { acceptLoop(); });
  if (MetricsFd >= 0)
    MetricsThread = std::thread([this] { metricsLoop(); });
  return true;
}

CacheDaemon::SegmentState &CacheDaemon::segmentLocked(const std::string &Name) {
  auto It = Segments.find(Name);
  if (It != Segments.end())
    return It->second;
  SegmentState S;
  S.Map = Store->loadSegment(Name, Config.CompactBytes);
  for (const auto &[K, Payload] : S.Map) {
    (void)K;
    S.Bytes += Payload.size();
  }
  return Segments.emplace(Name, std::move(S)).first->second;
}

//===----------------------------------------------------------------------===//
// Request handling
//===----------------------------------------------------------------------===//

JsonValue CacheDaemon::handleRequest(const JsonValue &Req) {
  std::string Method = Req.getString("method");
  if (Method == "cache.get")
    return handleGet(Req);
  if (Method == "cache.put")
    return handlePut(Req);
  if (Method == "cache.stats")
    return handleStats();
  if (Method == "cache.drain")
    return handleDrain();
  if (Method == "ping") {
    JsonValue Resp = makeOkResponse();
    Resp.set("pong", JsonValue::boolean(true));
    Resp.set("proto", JsonValue::number(std::int64_t(1)));
    Resp.set("role", JsonValue::str("cached"));
    return Resp;
  }
  if (Method.empty())
    return makeErrorResponse(ErrorCode::BadRequest,
                             "request carries no method field");
  return makeErrorResponse(ErrorCode::UnknownMethod,
                           "unknown method '" + Method + "'");
}

namespace {

/// Validates the segment/key fields shared by get and put. \returns false
/// with the typed error response filled in.
bool parseEntryRef(const JsonValue &Req, std::string &Segment, Hash128 &Key,
                   JsonValue &ErrorResp) {
  Segment = Req.getString("segment");
  if (!validCacheSegmentName(Segment)) {
    ErrorResp = makeErrorResponse(
        ErrorCode::BadRequest,
        "bad segment name (want 1-64 chars of [a-z0-9_-])");
    return false;
  }
  std::string KeyHex = Req.getString("key");
  if (!Hash128::fromHex(KeyHex, Key)) {
    ErrorResp = makeErrorResponse(ErrorCode::BadRequest,
                                  "bad key (want 32 lowercase hex chars)");
    return false;
  }
  return true;
}

} // namespace

JsonValue CacheDaemon::handleGet(const JsonValue &Req) {
  std::string Segment;
  Hash128 Key;
  JsonValue ErrorResp;
  if (!parseEntryRef(Req, Segment, Key, ErrorResp)) {
    Rejected.fetch_add(1, std::memory_order_relaxed);
    return ErrorResp;
  }
  if (DrainStarted.load(std::memory_order_acquire))
    return makeErrorResponse(ErrorCode::Draining, "daemon is draining");
  Gets.fetch_add(1, std::memory_order_relaxed);
  JsonValue Resp = makeOkResponse();
  std::lock_guard<std::mutex> Lock(StoreM);
  SegmentState &Seg = segmentLocked(Segment);
  auto It = Seg.Map.find(Key);
  if (It == Seg.Map.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    Resp.set("found", JsonValue::boolean(false));
    return Resp;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  Resp.set("found", JsonValue::boolean(true));
  Resp.set("payload", JsonValue::str(It->second));
  return Resp;
}

JsonValue CacheDaemon::handlePut(const JsonValue &Req) {
  std::string Segment;
  Hash128 Key;
  JsonValue ErrorResp;
  if (!parseEntryRef(Req, Segment, Key, ErrorResp)) {
    Rejected.fetch_add(1, std::memory_order_relaxed);
    return ErrorResp;
  }
  const JsonValue *Payload = Req.get("payload");
  if (!Payload || !Payload->isString()) {
    Rejected.fetch_add(1, std::memory_order_relaxed);
    return makeErrorResponse(ErrorCode::BadRequest,
                             "put needs a string 'payload'");
  }
  if (Payload->asString().size() > Config.MaxPayloadBytes) {
    Rejected.fetch_add(1, std::memory_order_relaxed);
    return makeErrorResponse(ErrorCode::BadRequest,
                             "payload exceeds the admission bound (" +
                                 std::to_string(Config.MaxPayloadBytes) +
                                 " bytes)");
  }
  if (DrainStarted.load(std::memory_order_acquire))
    return makeErrorResponse(ErrorCode::Draining, "daemon is draining");
  Puts.fetch_add(1, std::memory_order_relaxed);
  JsonValue Resp = makeOkResponse();
  std::lock_guard<std::mutex> Lock(StoreM);
  SegmentState &Seg = segmentLocked(Segment);
  auto [It, Fresh] = Seg.Map.emplace(Key, Payload->asString());
  (void)It;
  if (Fresh) {
    // Content-addressed: a duplicate key is the same payload, so only
    // first insertion reaches the store (same rule as persistentInsert).
    Store->append(Segment, Key, Payload->asString());
    Seg.Bytes += Payload->asString().size();
    PutsStored.fetch_add(1, std::memory_order_relaxed);
  }
  Resp.set("stored", JsonValue::boolean(Fresh));
  return Resp;
}

JsonValue CacheDaemon::handleStats() {
  JsonValue Resp = makeOkResponse();
  Resp.set("role", JsonValue::str("cached"));
  Resp.set("listen", JsonValue::str(BoundAddr.str()));
  Resp.set("dir", JsonValue::str(Config.Dir));
  Resp.set("pid", JsonValue::number(std::int64_t(::getpid())));
  Resp.set("uptime_s",
           JsonValue::number(
               std::chrono::duration_cast<std::chrono::duration<double>>(
                   std::chrono::steady_clock::now() - StartAt)
                   .count()));
  Resp.set("gets", JsonValue::number(std::int64_t(Gets.load())));
  Resp.set("hits", JsonValue::number(std::int64_t(Hits.load())));
  Resp.set("misses", JsonValue::number(std::int64_t(Misses.load())));
  Resp.set("puts", JsonValue::number(std::int64_t(Puts.load())));
  Resp.set("puts_stored", JsonValue::number(std::int64_t(PutsStored.load())));
  Resp.set("rejected", JsonValue::number(std::int64_t(Rejected.load())));
  Resp.set("draining", JsonValue::boolean(DrainStarted.load()));
  JsonValue Segs = JsonValue::object();
  std::uint64_t Entries = 0;
  {
    std::lock_guard<std::mutex> Lock(StoreM);
    for (const auto &[Name, Seg] : Segments) {
      JsonValue S = JsonValue::object();
      S.set("entries", JsonValue::number(std::int64_t(Seg.Map.size())));
      S.set("bytes", JsonValue::number(std::int64_t(Seg.Bytes)));
      Segs.set(Name, std::move(S));
      Entries += Seg.Map.size();
    }
    Resp.set("bytes_written", JsonValue::number(
                                  std::int64_t(Store->bytesWritten())));
    Resp.set("bytes_loaded",
             JsonValue::number(std::int64_t(Store->bytesLoaded())));
    Resp.set("corrupt_lines_skipped",
             JsonValue::number(std::int64_t(Store->corruptLinesSkipped())));
  }
  Resp.set("entries", JsonValue::number(std::int64_t(Entries)));
  Resp.set("segments", std::move(Segs));
  return Resp;
}

JsonValue CacheDaemon::handleDrain() {
  std::uint64_t Entries = drain();
  JsonValue Resp = makeOkResponse();
  Resp.set("drained", JsonValue::boolean(true));
  Resp.set("entries", JsonValue::number(std::int64_t(Entries)));
  return Resp;
}

std::uint64_t CacheDaemon::drain() {
  if (DrainStarted.exchange(true))
    return DrainEntries.load(std::memory_order_acquire);
  std::uint64_t Entries = 0;
  {
    std::lock_guard<std::mutex> Lock(StoreM);
    for (const auto &[Name, Seg] : Segments)
      Entries += Seg.Map.size();
    // fsync before reporting drained: a drain-then-restart must replay
    // every acknowledged put (same discipline as the service drain).
    Store->sync();
  }
  DrainEntries.store(Entries, std::memory_order_release);
  logf(LogLevel::Info, "cached", "drain: store synced (%llu entries)",
       static_cast<unsigned long long>(Entries));
  Stop.store(true, std::memory_order_release);
  if (WakePipe[1] >= 0) {
    char B = 'w';
    [[maybe_unused]] ssize_t W = ::write(WakePipe[1], &B, 1);
  }
  return Entries;
}

//===----------------------------------------------------------------------===//
// Accept/connection/metrics loops (the Server.cpp shape, minus the queue)
//===----------------------------------------------------------------------===//

void CacheDaemon::requestDrainAsync() {
  if (WakePipe[1] >= 0) {
    char B = 'd';
    [[maybe_unused]] ssize_t W = ::write(WakePipe[1], &B, 1);
  }
}

void CacheDaemon::acceptLoop() {
  while (!Stop.load(std::memory_order_acquire)) {
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {WakePipe[0], POLLIN, 0}};
    int N = ::poll(Fds, 2, -1);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Fds[1].revents & POLLIN) {
      char B = 0;
      [[maybe_unused]] ssize_t R = ::read(WakePipe[0], &B, 1);
      if (B == 'd') {
        drain();
        break;
      }
      continue;
    }
    if (!(Fds[0].revents & POLLIN))
      continue;
    int ClientFd = ::accept(ListenFd, nullptr, nullptr);
    if (ClientFd < 0)
      continue;
    std::lock_guard<std::mutex> Lock(ConnMutex);
    if (Stop.load(std::memory_order_acquire)) {
      closeFd(ClientFd);
      break;
    }
    ConnFds.push_back(ClientFd);
    ConnThreads.emplace_back([this, ClientFd] { connectionLoop(ClientFd); });
  }
}

void CacheDaemon::connectionLoop(int Fd) {
  std::string Payload;
  while (true) {
    FrameStatus St = readFrame(Fd, Payload);
    if (St == FrameStatus::Eof || St == FrameStatus::Truncated ||
        St == FrameStatus::IoError)
      break;
    if (St == FrameStatus::Oversized) {
      writeFrame(Fd, makeErrorResponse(ErrorCode::OversizedFrame,
                                       "frame exceeds the protocol bound")
                         .dump());
      break;
    }
    std::uint64_t Rid = NextRid.fetch_add(1, std::memory_order_relaxed);
    RequestIdScope RidScope(Rid);
    JsonValue Req;
    std::string ParseError;
    JsonValue Resp;
    if (!JsonValue::parse(Payload, Req, ParseError))
      Resp = makeErrorResponse(ErrorCode::ParseError, ParseError);
    else if (!Req.isObject())
      Resp = makeErrorResponse(ErrorCode::BadRequest,
                               "request must be a JSON object");
    else
      Resp = handleRequest(Req);
    Resp.set("rid", JsonValue::number(static_cast<std::int64_t>(Rid)));
    if (!writeFrame(Fd, Resp.dump()))
      break;
  }
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (auto It = ConnFds.begin(); It != ConnFds.end(); ++It)
      if (*It == Fd) {
        ConnFds.erase(It);
        break;
      }
  }
  closeFd(Fd);
}

std::string CacheDaemon::renderMetrics() {
  PrometheusWriter W;
  W.gauge("se2gis_cached_uptime_seconds", "daemon uptime",
          std::chrono::duration_cast<std::chrono::duration<double>>(
              std::chrono::steady_clock::now() - StartAt)
              .count());
  W.gauge("se2gis_cached_draining", "1 while the daemon is draining",
          DrainStarted.load() ? 1 : 0);
  W.counter("se2gis_cached_gets_total", "cache.get requests admitted",
            static_cast<double>(Gets.load()));
  W.counter("se2gis_cached_hits_total", "cache.get requests that found a key",
            static_cast<double>(Hits.load()));
  W.counter("se2gis_cached_misses_total", "cache.get requests with no entry",
            static_cast<double>(Misses.load()));
  W.counter("se2gis_cached_puts_total", "cache.put requests admitted",
            static_cast<double>(Puts.load()));
  W.counter("se2gis_cached_puts_stored_total",
            "cache.put requests that appended a fresh entry",
            static_cast<double>(PutsStored.load()));
  W.counter("se2gis_cached_rejected_total",
            "requests refused by admission control",
            static_cast<double>(Rejected.load()));
  std::lock_guard<std::mutex> Lock(StoreM);
  for (const auto &[Name, Seg] : Segments) {
    W.gauge("se2gis_cached_entries", "entries held per segment",
            static_cast<double>(Seg.Map.size()), {{"segment", Name}});
    W.gauge("se2gis_cached_segment_bytes", "payload bytes held per segment",
            static_cast<double>(Seg.Bytes), {{"segment", Name}});
  }
  W.counter("se2gis_cached_store_bytes_written_total",
            "bytes appended to the backing store",
            static_cast<double>(Store->bytesWritten()));
  W.counter("se2gis_cached_store_bytes_loaded_total",
            "bytes loaded from the backing store",
            static_cast<double>(Store->bytesLoaded()));
  return W.str();
}

void CacheDaemon::metricsLoop() {
  while (!Stop.load(std::memory_order_acquire)) {
    pollfd P = {MetricsFd, POLLIN, 0};
    int N = ::poll(&P, 1, 200);
    if (N < 0 && errno != EINTR)
      break;
    if (N <= 0 || !(P.revents & POLLIN))
      continue;
    int Fd = ::accept(MetricsFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    std::string Req;
    char Buf[1024];
    while (Req.size() < 16384 && Req.find("\r\n\r\n") == std::string::npos) {
      pollfd RP = {Fd, POLLIN, 0};
      if (::poll(&RP, 1, 2000) <= 0 || !(RP.revents & POLLIN))
        break;
      ssize_t R = ::recv(Fd, Buf, sizeof(Buf), 0);
      if (R <= 0)
        break;
      Req.append(Buf, static_cast<std::size_t>(R));
    }
    if (Req.find("\r\n\r\n") != std::string::npos ||
        Req.find('\n') != std::string::npos) {
      std::string Body = renderMetrics();
      std::string Resp = "HTTP/1.0 200 OK\r\n"
                         "Content-Type: text/plain; version=0.0.4; "
                         "charset=utf-8\r\n"
                         "Content-Length: " +
                         std::to_string(Body.size()) +
                         "\r\n"
                         "Connection: close\r\n\r\n" +
                         Body;
      std::size_t Off = 0;
      while (Off < Resp.size()) {
        ssize_t W = ::send(Fd, Resp.data() + Off, Resp.size() - Off, 0);
        if (W <= 0)
          break;
        Off += static_cast<std::size_t>(W);
      }
    }
    closeFd(Fd);
  }
}

void CacheDaemon::run() {
  if (AcceptThread.joinable())
    AcceptThread.join();
  closeFd(ListenFd);
  ListenFd = -1;
  if (MetricsThread.joinable())
    MetricsThread.join();
  closeFd(MetricsFd);
  MetricsFd = -1;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (int Fd : ConnFds)
      ::shutdown(Fd, SHUT_RD);
  }
  for (std::thread &T : ConnThreads)
    if (T.joinable())
      T.join();
  ConnFds.clear();
}
