//===- RemoteStore.h - Shared cache tier client -----------------*- C++-*-===//
///
/// \file
/// The client half of the shared cache tier (DESIGN.md "Shared cache
/// tier"): talks to a `se2gis_cached` daemon over the service frame
/// protocol (`cache.get` / `cache.put` / `cache.stats` / `cache.drain`)
/// and is layered under cache/CacheConfig as the last probe of the
/// read-through path (local shard → local DiskStore → remote) and the
/// write-behind fan-out of every persistent insert.
///
/// The cardinal rule is that a slow or dead daemon must never stall or
/// fail a solve:
///
///  - every connect and every request read/write is bounded by a timeout
///    (connectTo's timed mode + SO_RCVTIMEO/SO_SNDTIMEO);
///  - transport failures retry once on a fresh connection with backoff,
///    then count a `cache_remote_errors`;
///  - a circuit breaker (closed → open on consecutive failures → half-open
///    after a cooldown → closed on a successful probe) turns a dead daemon
///    into near-zero-cost fast fails (`cache_remote_degraded`) instead of
///    per-probe timeouts — the node degrades to local-only;
///  - puts are write-behind through a bounded queue drained by one
///    background thread; overflow drops the put (counted), never blocks.
///
/// Soundness needs nothing from this class: remote payloads re-enter the
/// exact consumer re-validation of PR 3 (SMT entries re-typed per slot,
/// suite solutions re-verified), so the tier can serve stale, corrupt, or
/// hostile bytes and at worst waste a re-validation.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CACHENET_REMOTESTORE_H
#define SE2GIS_CACHENET_REMOTESTORE_H

#include "cache/Hash128.h"
#include "service/Protocol.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace se2gis {

/// Tuning knobs of one RemoteStore. The defaults target a daemon on the
/// same host or rack; tests shrink the breaker numbers to exercise the
/// transitions quickly.
struct RemoteStoreOptions {
  std::string Addr;           ///< daemon address (unix:/path or tcp:host:port)
  int ConnectTimeoutMs = 250; ///< bound on one connect(2)
  int RequestTimeoutMs = 500; ///< bound on each read/write of one request
  unsigned MaxAttempts = 2;   ///< tries per request (first + bounded retries)
  unsigned BackoffBaseMs = 20; ///< retry N sleeps N * BackoffBaseMs
  unsigned PoolSize = 4;       ///< idle connections kept for reuse
  unsigned BreakerThreshold = 3; ///< consecutive failures that open the breaker
  int BreakerCooldownMs = 2000;  ///< open → half-open probe interval
  std::size_t PutQueueBound = 1024; ///< write-behind entries before dropping
};

class RemoteStore {
public:
  /// Circuit-breaker states (exposed for stats and the transition tests).
  enum class Breaker : unsigned char { Closed, Open, HalfOpen };

  /// Validates the address and starts the write-behind thread. \returns
  /// nullptr with \p Error only on a malformed address — an unreachable
  /// daemon is a *degraded* store, not a failed construction.
  static std::unique_ptr<RemoteStore> create(const RemoteStoreOptions &Opts,
                                             std::string &Error);

  /// Stops the write-behind thread (best-effort final drain bounded by one
  /// request timeout) and closes pooled connections.
  ~RemoteStore();

  /// Read-through probe: one `cache.get` round trip. Counts
  /// cache_remote_{hits,misses,errors,degraded} and records the
  /// cache_remote_probe latency. \returns the payload on a daemon hit.
  std::optional<std::string> get(const char *Segment, const Hash128 &K);

  /// Write-behind insert: enqueues a `cache.put` for the background
  /// drainer; drops (and counts an error) when the queue is full.
  void putAsync(const char *Segment, const Hash128 &K, std::string Payload);

  /// Synchronous `cache.put` (the write-behind drainer and tests).
  /// \returns true when the daemon acknowledged the put.
  bool putSync(const std::string &Segment, const Hash128 &K,
               const std::string &Payload);

  /// Waits until the write-behind queue is drained (bounded). \returns
  /// false on timeout. Called by flushCache so a clean drain of a node
  /// does not strand warm entries in the queue.
  bool flush(int TimeoutMs = 2000);

  Breaker breakerState() const;

  const RemoteStoreOptions &options() const { return Opts; }
  const ServiceAddr &addr() const { return Remote; }

  RemoteStore(const RemoteStore &) = delete;
  RemoteStore &operator=(const RemoteStore &) = delete;

private:
  explicit RemoteStore(RemoteStoreOptions O, ServiceAddr A);

  /// One breaker-gated request/response round trip (with retry). \returns
  /// the parsed response object; nullopt counts errors/degraded itself.
  std::optional<JsonValue> call(const JsonValue &Request);

  bool admit(bool &IsProbe);
  void settle(bool Ok, bool WasProbe);

  int acquireFd(bool AllowPooled);
  void releaseFd(int Fd);

  void writerLoop();

  RemoteStoreOptions Opts;
  ServiceAddr Remote;

  std::mutex PoolM;
  std::vector<int> IdleFds;

  mutable std::mutex BreakerM;
  Breaker State = Breaker::Closed;
  unsigned Failures = 0;
  bool ProbeInFlight = false;
  std::chrono::steady_clock::time_point OpenedAt;

  struct PutOp {
    std::string Segment;
    Hash128 Key;
    std::string Payload;
  };
  std::mutex QueueM;
  std::condition_variable QueueCv;     ///< wakes the writer
  std::condition_variable DrainedCv;   ///< wakes flush()
  std::deque<PutOp> Queue;
  bool WriterBusy = false;
  bool StopWriter = false;
  std::thread Writer;
};

} // namespace se2gis

#endif // SE2GIS_CACHENET_REMOTESTORE_H
