//===- CacheDaemon.h - Shared cache tier daemon -----------------*- C++-*-===//
///
/// \file
/// The server half of the shared cache tier: a standalone daemon
/// (tools/se2gis_cached.cpp) that owns one DiskStore directory and serves
/// it to a fleet of solver nodes over the service frame protocol. One
/// solve on any node warms every node (ROADMAP "Distributed/shared cache
/// tier").
///
/// Methods (all share the length-prefixed JSON framing, typed ErrorCode
/// failures, and per-frame request ids of src/service/Protocol.h):
///
///   cache.get   {"segment","key"}            → {"ok","found","payload"?}
///   cache.put   {"segment","key","payload"}  → {"ok","stored"}
///   cache.stats {}                           → {"ok",segments,counters,...}
///   cache.drain {}                           → {"ok","drained","entries"}
///   ping        {}                           → {"ok","pong","role":"cached"}
///
/// Admission control: segment names are validated against a strict
/// charset (they become file names — path traversal through a hostile
/// segment is refused as bad_request), keys must be 32-hex, payloads are
/// bounded by MaxPayloadBytes, and oversized frames get the typed
/// oversized_frame hangup.
///
/// Storage is the exact DiskStore of the local tiers (same JSONL+CRC
/// lines, last-wins dedup, fsync discipline), so a daemon directory and a
/// node cache directory are interchangeable on disk. All segment state —
/// including lazy segment loading, whose `loadSegment` may *compact* the
/// file — is serialized behind one store mutex: DiskStore compaction
/// assumes a single writer and no concurrent reader mid-rename (DESIGN.md
/// "Memoization model"), and the daemon upholds that by construction.
///
/// The daemon's own stats are exposed as Prometheus families
/// (se2gis_cached_*) via --metrics-addr, same plain-HTTP listener as
/// se2gis_served.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_CACHENET_CACHEDAEMON_H
#define SE2GIS_CACHENET_CACHEDAEMON_H

#include "cache/DiskStore.h"
#include "service/Protocol.h"
#include "support/Log.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace se2gis {

struct CacheDaemonConfig {
  std::string Listen = "unix:.se2gis-cached.sock";
  /// Store directory (same format as a node's --cache-dir).
  std::string Dir = ".se2gis-cached";
  /// Prometheus exposition address; empty disables the listener.
  std::string MetricsAddr;
  /// Admission bound on one entry's payload. Well under the frame bound,
  /// so a hostile put is refused as bad_request, not an oversized hangup.
  std::size_t MaxPayloadBytes = 4u << 20;
  /// Segment compaction threshold, forwarded to DiskStore::loadSegment.
  std::uint64_t CompactBytes = 64ull << 20;
  LogSettings Log;
};

class CacheDaemon {
public:
  explicit CacheDaemon(CacheDaemonConfig C);
  ~CacheDaemon();

  /// Binds the listener(s), opens the store, and preloads the hot
  /// segments. \returns false with a diagnostic on any failure.
  bool start(std::string &Error);

  /// Blocks until drained (runs the accept loop to completion and joins
  /// every thread).
  void run();

  /// Async-signal-safe drain trigger (SIGINT/SIGTERM handlers).
  void requestDrainAsync();

  /// Syncs the store and stops the daemon; idempotent. \returns the total
  /// entry count at drain time.
  std::uint64_t drain();

  const ServiceAddr &addr() const { return BoundAddr; }
  const ServiceAddr &metricsAddr() const { return MetricsBoundAddr; }

  /// Prometheus text exposition of the daemon's own families (exposed for
  /// tests; the HTTP listener serves exactly this).
  std::string renderMetrics();

  CacheDaemon(const CacheDaemon &) = delete;
  CacheDaemon &operator=(const CacheDaemon &) = delete;

private:
  struct SegmentState {
    DiskStore::SegmentMap Map;
    std::uint64_t Bytes = 0; ///< sum of payload sizes (gauge fodder)
  };

  void acceptLoop();
  void connectionLoop(int Fd);
  void metricsLoop();

  JsonValue handleRequest(const JsonValue &Req);
  JsonValue handleGet(const JsonValue &Req);
  JsonValue handlePut(const JsonValue &Req);
  JsonValue handleStats();
  JsonValue handleDrain();

  /// Loads \p Name on first touch. Caller must hold StoreM — loadSegment
  /// may compact, and compaction requires exclusive store access.
  SegmentState &segmentLocked(const std::string &Name);

  CacheDaemonConfig Config;
  ServiceAddr BoundAddr;
  ServiceAddr MetricsBoundAddr;
  int ListenFd = -1;
  int MetricsFd = -1;
  int WakePipe[2] = {-1, -1};

  std::mutex StoreM; ///< serializes gets, puts, loads, and compaction
  std::unique_ptr<DiskStore> Store;
  std::map<std::string, SegmentState> Segments;

  std::atomic<std::uint64_t> Gets{0}, Hits{0}, Misses{0};
  std::atomic<std::uint64_t> Puts{0}, PutsStored{0}, Rejected{0};
  std::atomic<std::uint64_t> NextRid{1};
  std::chrono::steady_clock::time_point StartAt;

  std::atomic<bool> Stop{false};
  std::atomic<bool> DrainStarted{false};
  std::atomic<std::uint64_t> DrainEntries{0};

  std::thread AcceptThread;
  std::thread MetricsThread;
  std::mutex ConnMutex;
  std::vector<int> ConnFds;
  std::vector<std::thread> ConnThreads;
};

/// \returns true when \p Name is an acceptable segment name: 1–64 chars of
/// [a-z0-9_-]. Segment names become file names under the store directory,
/// so anything else — separators, dots, uppercase — is refused.
bool validCacheSegmentName(const std::string &Name);

} // namespace se2gis

#endif // SE2GIS_CACHENET_CACHEDAEMON_H
