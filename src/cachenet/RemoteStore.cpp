//===- RemoteStore.cpp ----------------------------------------------------===//

#include "cachenet/RemoteStore.h"

#include "support/Log.h"
#include "support/PerfCounters.h"
#include "support/Trace.h"

#include <unistd.h>

using namespace se2gis;

std::unique_ptr<RemoteStore> RemoteStore::create(const RemoteStoreOptions &O,
                                                 std::string &Error) {
  ServiceAddr A;
  if (!parseServiceAddr(O.Addr, A, Error))
    return nullptr;
  return std::unique_ptr<RemoteStore>(new RemoteStore(O, std::move(A)));
}

RemoteStore::RemoteStore(RemoteStoreOptions O, ServiceAddr A)
    : Opts(std::move(O)), Remote(std::move(A)) {
  Writer = std::thread([this] { writerLoop(); });
}

RemoteStore::~RemoteStore() {
  // Give queued puts one bounded chance to land; a dead daemon makes the
  // writer burn through them fast (breaker-gated fast fails).
  flush(Opts.RequestTimeoutMs);
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    StopWriter = true;
  }
  QueueCv.notify_all();
  if (Writer.joinable())
    Writer.join();
  std::lock_guard<std::mutex> Lock(PoolM);
  for (int Fd : IdleFds)
    closeFd(Fd);
  IdleFds.clear();
}

//===----------------------------------------------------------------------===//
// Circuit breaker
//===----------------------------------------------------------------------===//

bool RemoteStore::admit(bool &IsProbe) {
  std::lock_guard<std::mutex> Lock(BreakerM);
  switch (State) {
  case Breaker::Closed:
    return true;
  case Breaker::Open: {
    auto Now = std::chrono::steady_clock::now();
    if (Now - OpenedAt <  std::chrono::milliseconds(Opts.BreakerCooldownMs))
      return false;
    // Cooldown elapsed: this caller becomes the single half-open probe.
    State = Breaker::HalfOpen;
    ProbeInFlight = true;
    IsProbe = true;
    return true;
  }
  case Breaker::HalfOpen:
    if (ProbeInFlight)
      return false; // someone's probe is in flight; keep failing fast
    ProbeInFlight = true;
    IsProbe = true;
    return true;
  }
  return false;
}

void RemoteStore::settle(bool Ok, bool WasProbe) {
  std::lock_guard<std::mutex> Lock(BreakerM);
  if (WasProbe)
    ProbeInFlight = false;
  if (Ok) {
    if (State != Breaker::Closed)
      logf(LogLevel::Info, "cachenet", "circuit closed: %s is healthy again",
           Remote.str().c_str());
    Failures = 0;
    State = Breaker::Closed;
    return;
  }
  if (State == Breaker::HalfOpen) {
    // The probe failed: back to open, restart the cooldown.
    State = Breaker::Open;
    OpenedAt = std::chrono::steady_clock::now();
    return;
  }
  if (State == Breaker::Closed && ++Failures >= Opts.BreakerThreshold) {
    logf(LogLevel::Warn, "cachenet",
         "circuit open after %u consecutive failures: degrading to "
         "local-only cache (%s)",
         Failures, Remote.str().c_str());
    State = Breaker::Open;
    OpenedAt = std::chrono::steady_clock::now();
    Failures = 0;
  }
}

RemoteStore::Breaker RemoteStore::breakerState() const {
  std::lock_guard<std::mutex> Lock(BreakerM);
  return State;
}

//===----------------------------------------------------------------------===//
// Connection pool
//===----------------------------------------------------------------------===//

int RemoteStore::acquireFd(bool AllowPooled) {
  if (AllowPooled) {
    std::lock_guard<std::mutex> Lock(PoolM);
    if (!IdleFds.empty()) {
      int Fd = IdleFds.back();
      IdleFds.pop_back();
      return Fd;
    }
  }
  std::string Error;
  int Fd = connectTo(Remote, Error, Opts.ConnectTimeoutMs);
  if (Fd < 0) {
    logf(LogLevel::Debug, "cachenet", "%s", Error.c_str());
    return -1;
  }
  setFdIoTimeout(Fd, Opts.RequestTimeoutMs);
  return Fd;
}

void RemoteStore::releaseFd(int Fd) {
  std::lock_guard<std::mutex> Lock(PoolM);
  if (IdleFds.size() < Opts.PoolSize) {
    IdleFds.push_back(Fd);
    return;
  }
  closeFd(Fd);
}

//===----------------------------------------------------------------------===//
// Requests
//===----------------------------------------------------------------------===//

std::optional<JsonValue> RemoteStore::call(const JsonValue &Request) {
  bool IsProbe = false;
  if (!admit(IsProbe)) {
    perfAdd(PerfCounter::CacheRemoteDegraded);
    return std::nullopt;
  }
  const std::string Wire = Request.dump();
  for (unsigned Attempt = 0; Attempt < Opts.MaxAttempts; ++Attempt) {
    if (Attempt)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(Attempt * Opts.BackoffBaseMs));
    // A pooled fd may be stale (daemon restarted since it was parked), so
    // only the first attempt trusts the pool; retries always reconnect.
    int Fd = acquireFd(/*AllowPooled=*/Attempt == 0);
    if (Fd < 0)
      continue;
    std::string Payload;
    bool Ok = writeFrame(Fd, Wire) && readFrame(Fd, Payload) == FrameStatus::Ok;
    JsonValue Resp;
    std::string ParseError;
    if (Ok)
      Ok = JsonValue::parse(Payload, Resp, ParseError) && Resp.isObject();
    if (Ok) {
      releaseFd(Fd);
      settle(true, IsProbe);
      return Resp;
    }
    closeFd(Fd); // never pool a connection in an unknown protocol state
  }
  settle(false, IsProbe);
  perfAdd(PerfCounter::CacheRemoteErrors);
  return std::nullopt;
}

std::optional<std::string> RemoteStore::get(const char *Segment,
                                            const Hash128 &K) {
  auto Start = std::chrono::steady_clock::now();
  TraceSpan Span("cache.remote", "cache");
  JsonValue Req = JsonValue::object();
  Req.set("method", JsonValue::str("cache.get"));
  Req.set("segment", JsonValue::str(Segment));
  Req.set("key", JsonValue::str(K.hex()));
  std::optional<JsonValue> Resp = call(Req);
  auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - Start)
                .count();
  perfRecordNs(PerfHistogram::CacheRemoteProbeNs,
               static_cast<std::uint64_t>(Ns > 0 ? Ns : 0));
  if (Span.active())
    Span.arg("segment", Segment);
  if (!Resp)
    return std::nullopt; // degraded / errored, already counted
  if (!Resp->getBool("ok", false)) {
    // The daemon is alive but refused (draining, bad request): a protocol-
    // level error, not a miss.
    perfAdd(PerfCounter::CacheRemoteErrors);
    return std::nullopt;
  }
  if (!Resp->getBool("found", false)) {
    perfAdd(PerfCounter::CacheRemoteMisses);
    return std::nullopt;
  }
  const JsonValue *P = Resp->get("payload");
  if (!P || !P->isString()) {
    perfAdd(PerfCounter::CacheRemoteErrors);
    return std::nullopt;
  }
  perfAdd(PerfCounter::CacheRemoteHits);
  if (Span.active())
    Span.arg("hit", "true");
  logf(LogLevel::Debug, "cachenet", "remote hit %s/%s (%zu bytes)", Segment,
       K.hex().c_str(), P->asString().size());
  return P->asString();
}

bool RemoteStore::putSync(const std::string &Segment, const Hash128 &K,
                          const std::string &Payload) {
  JsonValue Req = JsonValue::object();
  Req.set("method", JsonValue::str("cache.put"));
  Req.set("segment", JsonValue::str(Segment));
  Req.set("key", JsonValue::str(K.hex()));
  Req.set("payload", JsonValue::str(Payload));
  std::optional<JsonValue> Resp = call(Req);
  if (!Resp)
    return false;
  if (!Resp->getBool("ok", false)) {
    perfAdd(PerfCounter::CacheRemoteErrors);
    return false;
  }
  return true;
}

void RemoteStore::putAsync(const char *Segment, const Hash128 &K,
                           std::string Payload) {
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    if (StopWriter)
      return;
    if (Queue.size() >= Opts.PutQueueBound) {
      // Dropping is the design: the local tiers already hold the entry,
      // and a backlogged daemon must not become backpressure on solving.
      perfAdd(PerfCounter::CacheRemoteErrors);
      logf(LogLevel::Debug, "cachenet",
           "write-behind queue full (%zu); dropping put %s/%s",
           Queue.size(), Segment, K.hex().c_str());
      return;
    }
    Queue.push_back(PutOp{Segment, K, std::move(Payload)});
  }
  QueueCv.notify_one();
}

bool RemoteStore::flush(int TimeoutMs) {
  std::unique_lock<std::mutex> Lock(QueueM);
  return DrainedCv.wait_for(Lock, std::chrono::milliseconds(TimeoutMs),
                            [&] { return Queue.empty() && !WriterBusy; });
}

void RemoteStore::writerLoop() {
  std::unique_lock<std::mutex> Lock(QueueM);
  while (true) {
    QueueCv.wait(Lock, [&] { return StopWriter || !Queue.empty(); });
    if (Queue.empty()) {
      if (StopWriter)
        return;
      continue;
    }
    PutOp Op = std::move(Queue.front());
    Queue.pop_front();
    WriterBusy = true;
    Lock.unlock();
    putSync(Op.Segment, Op.Key, Op.Payload);
    Lock.lock();
    WriterBusy = false;
    if (Queue.empty())
      DrainedCv.notify_all();
  }
}
