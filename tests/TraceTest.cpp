//===- TraceTest.cpp - Span tracer and structured logger tests ------------===//
///
/// \file
/// Covers the observability layer: TraceSpan recording and nesting,
/// ring-buffer overflow semantics (dropped and counted, never crashing or
/// reallocating), the Chrome trace_event JSON export — including its shape
/// under a concurrent suite run — and the logger's level parsing and
/// thread-id assignment.
///
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Log.h"
#include "suite/Runner.h"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <thread>
#include <vector>

using namespace se2gis;

namespace {

/// Each test starts from a clean tracer: empty buffers, zero drops, a large
/// default capacity, tracing on with no flush path; and ends with it off.
class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    traceConfigure("", /*BufferCapacity=*/16384);
    traceReset();
  }
  void TearDown() override {
    traceDisable();
    traceReset();
  }
};

/// A minimal structural JSON scanner: verifies balanced braces/brackets and
/// properly terminated strings — enough to reject truncated or unescaped
/// output without a JSON library.
bool looksLikeValidJson(const std::string &S) {
  int Depth = 0;
  bool InString = false, Escaped = false;
  for (char C : S) {
    if (InString) {
      if (Escaped)
        Escaped = false;
      else if (C == '\\')
        Escaped = true;
      else if (C == '"')
        InString = false;
      continue;
    }
    switch (C) {
    case '"':
      InString = true;
      break;
    case '{':
    case '[':
      ++Depth;
      break;
    case '}':
    case ']':
      if (--Depth < 0)
        return false;
      break;
    default:
      break;
    }
  }
  return Depth == 0 && !InString;
}

size_t countOccurrences(const std::string &Haystack,
                        const std::string &Needle) {
  size_t N = 0;
  for (size_t At = Haystack.find(Needle); At != std::string::npos;
       At = Haystack.find(Needle, At + Needle.size()))
    ++N;
  return N;
}

TEST_F(TraceTest, DisabledSpanRecordsNothing) {
  traceDisable();
  {
    TraceSpan Span("noop", "test");
    EXPECT_FALSE(Span.active());
    Span.arg("k", "v"); // must be inert, not crash
  }
  EXPECT_EQ(traceRecordedEvents(), 0u);
}

TEST_F(TraceTest, RecordsSpanWithArgs) {
  {
    TraceSpan Span("unit.work", "test");
    ASSERT_TRUE(Span.active());
    Span.arg("name", "bench/a");
    Span.arg("round", static_cast<std::int64_t>(3));
  }
  EXPECT_EQ(traceRecordedEvents(), 1u);
  std::ostringstream OS;
  traceWriteJson(OS);
  std::string J = OS.str();
  EXPECT_TRUE(looksLikeValidJson(J)) << J;
  EXPECT_NE(J.find("\"unit.work\""), std::string::npos);
  EXPECT_NE(J.find("\"name\":\"bench/a\""), std::string::npos);
  EXPECT_NE(J.find("\"round\":3"), std::string::npos);
}

TEST_F(TraceTest, ArgValuesAreEscaped) {
  {
    TraceSpan Span("escape", "test");
    Span.arg("payload", std::string("a\"b\\c\nd"));
  }
  std::ostringstream OS;
  traceWriteJson(OS);
  EXPECT_TRUE(looksLikeValidJson(OS.str())) << OS.str();
}

TEST_F(TraceTest, NestedSpansAreContained) {
  {
    TraceSpan Outer("outer", "test");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    { TraceSpan Inner("inner", "test"); }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(traceRecordedEvents(), 2u);
  std::ostringstream OS;
  traceWriteJson(OS);
  std::string J = OS.str();
  // Events are sorted by start time per thread: outer starts first, and its
  // duration must cover the inner span entirely.
  size_t OuterAt = J.find("\"outer\"");
  size_t InnerAt = J.find("\"inner\"");
  ASSERT_NE(OuterAt, std::string::npos);
  ASSERT_NE(InnerAt, std::string::npos);
  EXPECT_LT(OuterAt, InnerAt);
  auto NumberAfter = [&](size_t At, const char *Key) {
    size_t K = J.find(Key, At);
    EXPECT_NE(K, std::string::npos);
    return std::atof(J.c_str() + K + std::string(Key).size());
  };
  double OuterTs = NumberAfter(OuterAt, "\"ts\":");
  double OuterDur = NumberAfter(OuterAt, "\"dur\":");
  double InnerTs = NumberAfter(InnerAt, "\"ts\":");
  double InnerDur = NumberAfter(InnerAt, "\"dur\":");
  EXPECT_LE(OuterTs, InnerTs);
  EXPECT_GE(OuterTs + OuterDur, InnerTs + InnerDur);
}

TEST_F(TraceTest, OverflowDropsAndCounts) {
  // A fresh thread gets a fresh buffer created under the small capacity.
  traceConfigure("", /*BufferCapacity=*/8);
  std::uint64_t DroppedBefore = traceDroppedEvents();
  std::thread T([] {
    for (int I = 0; I < 50; ++I)
      TraceSpan Span("flood", "test");
  });
  T.join();
  EXPECT_GE(traceDroppedEvents() - DroppedBefore, 42u);
  std::ostringstream OS;
  traceWriteJson(OS);
  EXPECT_TRUE(looksLikeValidJson(OS.str()));
  EXPECT_NE(OS.str().find("\"dropped_events\":"), std::string::npos);
}

TEST_F(TraceTest, ConcurrentThreadsGetSeparateTracks) {
  std::vector<std::thread> Ts;
  for (int T = 0; T < 4; ++T)
    Ts.emplace_back([] {
      for (int I = 0; I < 10; ++I)
        TraceSpan Span("worker.op", "test");
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(traceRecordedEvents(), 40u);
  std::ostringstream OS;
  traceWriteJson(OS);
  std::string J = OS.str();
  EXPECT_TRUE(looksLikeValidJson(J)) << J;
  // One thread_name metadata record per distinct recording thread.
  EXPECT_GE(countOccurrences(J, "\"thread_name\""), 4u);
}

TEST_F(TraceTest, SuiteRunProducesSpansPerCategory) {
  SuiteOptions Opts;
  Opts.Config.Algo.TimeoutMs = 20000;
  Opts.Algorithms = {AlgorithmKind::SE2GIS};
  Opts.Config.Filter = "sortedlist/m"; // min, max, min_max: fast sub-suite
  Opts.Config.Verbose = false;
  Opts.Config.Jobs = 4;
  std::vector<SuiteRecord> Records = runSuite(Opts);
  ASSERT_GE(Records.size(), 2u);

  std::ostringstream OS;
  traceWriteJson(OS);
  std::string J = OS.str();
  EXPECT_TRUE(looksLikeValidJson(J));
  // The instrumented stack must have produced at least one span in each of
  // the core categories, across multiple benchmarks and SMT queries.
  EXPECT_GE(countOccurrences(J, "\"suite.run\""), Records.size());
  EXPECT_GE(countOccurrences(J, "\"se2gis.round\""), 1u);
  EXPECT_GE(countOccurrences(J, "\"smt.checkSat\""), 1u);
  EXPECT_NE(J.find("\"cat\":\"round\""), std::string::npos);
  EXPECT_NE(J.find("\"cat\":\"smt\""), std::string::npos);
  EXPECT_NE(J.find("\"verdict\""), std::string::npos);
}

} // namespace

//===- Logger -------------------------------------------------------------===//

namespace {

TEST(LogTest, ParsesLevels) {
  EXPECT_EQ(parseLogLevel("debug"), LogLevel::Debug);
  EXPECT_EQ(parseLogLevel("INFO"), LogLevel::Info);
  EXPECT_EQ(parseLogLevel("Warn"), LogLevel::Warn);
  EXPECT_EQ(parseLogLevel("warning"), LogLevel::Warn);
  EXPECT_EQ(parseLogLevel("error"), LogLevel::Error);
  EXPECT_FALSE(parseLogLevel("verbose").has_value());
  EXPECT_FALSE(parseLogLevel("").has_value());
}

TEST(LogTest, LevelGatesEnablement) {
  LogSettings S;
  S.Level = LogLevel::Warn;
  configureLogging(S);
  EXPECT_TRUE(logEnabled(LogLevel::Error));
  EXPECT_TRUE(logEnabled(LogLevel::Warn));
  EXPECT_FALSE(logEnabled(LogLevel::Info));
  EXPECT_FALSE(logEnabled(LogLevel::Debug));
  S.Level = LogLevel::Info; // restore the default for other tests
  configureLogging(S);
  EXPECT_TRUE(logEnabled(LogLevel::Info));
}

TEST(LogTest, ThreadIdsAreCompactAndStable) {
  unsigned Mine = currentThreadId();
  EXPECT_GE(Mine, 1u);
  EXPECT_EQ(currentThreadId(), Mine);
  unsigned Other = 0;
  std::thread T([&Other] { Other = currentThreadId(); });
  T.join();
  EXPECT_NE(Other, 0u);
  EXPECT_NE(Other, Mine);
}

} // namespace
