//===- TestPrograms.h - Shared fixtures for tests ---------------*- C++-*-===//
///
/// \file
/// Canned benchmark sources used across the test suite. `kMinSortedSrc` is
/// the paper's §1.1 running example: synthesize a constant-time `mins` on
/// sorted lists from the linear-time `min` on arbitrary lists.
///
//===----------------------------------------------------------------------===//

#ifndef SE2GIS_TESTS_TESTPROGRAMS_H
#define SE2GIS_TESTS_TESTPROGRAMS_H

namespace se2gis_tests {

/// Paper §1.1: mins on sorted lists (realizable; needs the a <= min(l)
/// invariant).
inline const char *kMinSortedSrc = R"(
type list = Elt of int | Cons of int * list

let rec lmin = function
  | Elt a -> a
  | Cons (a, l) -> min a (lmin l)

let rec sorted = function
  | Elt a -> true
  | Cons (a, l) -> a <= head l && sorted l
and head = function
  | Elt a -> a
  | Cons (a, l) -> a

let rec mins : int = function
  | Elt a -> $b1 a
  | Cons (a, l) -> $b2 a

synthesize mins equiv lmin requires sorted
)";

/// Same skeleton without the sortedness invariant (unrealizable: b2 cannot
/// depend on the tail's minimum).
inline const char *kMinUnsortedSrc = R"(
type list = Elt of int | Cons of int * list

let rec lmin = function
  | Elt a -> a
  | Cons (a, l) -> min a (lmin l)

let rec mins : int = function
  | Elt a -> $b1 a
  | Cons (a, l) -> $b2 a

synthesize mins equiv lmin
)";

/// A realizable problem with no invariant: constant-time head via skeleton.
inline const char *kSumSrc = R"(
type list = Nil | Cons of int * list

let rec lsum = function
  | Nil -> 0
  | Cons (a, l) -> a + lsum l

let rec tsum : int = function
  | Nil -> $f0
  | Cons (a, l) -> $f1 a (tsum l)

synthesize tsum equiv lsum
)";

} // namespace se2gis_tests

#endif // SE2GIS_TESTS_TESTPROGRAMS_H
