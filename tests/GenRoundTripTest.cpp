//===- GenRoundTripTest.cpp - Printer round-trip property tests -----------===//
//
// The printer (frontend/Printer.h) must be a right inverse of the parser
// up to normal form: for any unit U, print(parse(print(U))) == print(U).
// Checked three ways: targeted precedence/parenthesization goldens, the
// fixpoint property over all registry benchmarks, and the strict identity
// print(parse(S)) == S over generated cases (whose S is printer output).
//
//===----------------------------------------------------------------------===//

#include "frontend/Printer.h"

#include "frontend/Elaborate.h"
#include "frontend/Parser.h"
#include "gen/Generator.h"
#include "suite/Benchmarks.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

std::string normalize(const std::string &Src) {
  return printUnit(parseUnit(Src));
}

// --- Precedence and parenthesization goldens ----------------------------===//

TEST(PrinterTest, DropsRedundantParensKeepsLoadBearingOnes) {
  // Left-assoc + and *: no parens needed on the left spine.
  EXPECT_EQ(normalize("let f (a : int) (b : int) : int = a + b * 2\n"),
            "let f (a : int) (b : int) : int = a + b * 2\n\n");
  // Parens against precedence and against left-assoc re-grouping stay.
  EXPECT_EQ(normalize("let f (a : int) (b : int) : int = (a + b) * 2\n"),
            "let f (a : int) (b : int) : int = (a + b) * 2\n\n");
  EXPECT_EQ(normalize("let f (a : int) (b : int) : int = a - (b - 1)\n"),
            "let f (a : int) (b : int) : int = a - (b - 1)\n\n");
  // Comparison is non-associative: nested comparisons keep parens.
  EXPECT_EQ(normalize("let f (a : int) (b : int) : bool = (a = b) = (1 = 2)\n"),
            "let f (a : int) (b : int) : bool = (a = b) = (1 = 2)\n\n");
  // If/let-in parenthesized in operand position; unary minus prints
  // tight so `-1` literals and `- x` applications share a normal form.
  EXPECT_EQ(normalize(
                "let f (a : int) : int = 1 + (if a < 0 then - a else a)\n"),
            "let f (a : int) : int = 1 + (if a < 0 then -a else a)\n\n");
  EXPECT_EQ(normalize("let f (a : int) : int = 1 - -1 + max (-2) a\n"),
            "let f (a : int) : int = 1 - -1 + max (-2) a\n\n");
  EXPECT_EQ(normalize("let f (a : int) : bool = not (a < 0) && a < 9 || "
                      "false\n"),
            "let f (a : int) : bool = not (a < 0) && a < 9 || false\n\n");
}

TEST(PrinterTest, ApplicationArgumentsAreAtoms) {
  std::string Src = "type t = B | C of int * t\n"
                    "\n"
                    "let rec f : int = function\n"
                    "  | B -> 0\n"
                    "  | C (a, l) -> max a (f l)\n"
                    "\n"
                    "let rec g : int = function\n"
                    "  | B -> $u0\n"
                    "  | C (a, l) -> $u1 a (g l)\n"
                    "\n"
                    "synthesize g equiv f\n";
  EXPECT_EQ(normalize(Src), Src);
}

TEST(PrinterTest, ConstructorApplications) {
  std::string Src = "type t = B | C of int * t\n"
                    "\n"
                    "let rec cp : t = function\n"
                    "  | B -> B\n"
                    "  | C (a, l) -> C (a, cp l)\n"
                    "\n";
  EXPECT_EQ(normalize(Src), Src);
}

// --- Fixpoint over the whole registry -----------------------------------===//

TEST(GenRoundTripTest, AllRegistryBenchmarksReachPrintFixpoint) {
  for (const BenchmarkDef &Def : allBenchmarks()) {
    SCOPED_TRACE(Def.Name);
    std::string P1;
    ASSERT_NO_THROW(P1 = normalize(Def.Source)) << Def.Name;
    std::string P2;
    ASSERT_NO_THROW(P2 = normalize(P1)) << Def.Name;
    EXPECT_EQ(P1, P2) << Def.Name;
  }
}

TEST(GenRoundTripTest, PrintedRegistryBenchmarksStillElaborate) {
  // Printing must preserve meaning through the elaborator, not just the
  // parser: the printed form of every benchmark still loads as a problem
  // with the same directive.
  for (const BenchmarkDef &Def : allBenchmarks()) {
    SCOPED_TRACE(Def.Name);
    Problem Orig = loadBenchmark(Def);
    Problem Reprinted;
    ASSERT_NO_THROW(Reprinted = loadProblem(normalize(Def.Source)))
        << Def.Name;
    EXPECT_EQ(Orig.Target, Reprinted.Target);
    EXPECT_EQ(Orig.Reference, Reprinted.Reference);
    EXPECT_EQ(Orig.Invariant, Reprinted.Invariant);
    EXPECT_EQ(Orig.Unknowns.size(), Reprinted.Unknowns.size());
  }
}

// --- Strict identity on generated cases ---------------------------------===//

TEST(GenRoundTripTest, GeneratedCasesPrintInNormalForm) {
  for (unsigned Case = 0; Case < 50; ++Case) {
    auto C = generateCase(/*GenSeed=*/1234, Case);
    ASSERT_TRUE(C.has_value()) << Case;
    std::string Src = caseSource(*C);
    SCOPED_TRACE(Src);
    EXPECT_EQ(normalize(Src), Src);
    EXPECT_NO_THROW(loadProblem(Src));
  }
}

} // namespace
