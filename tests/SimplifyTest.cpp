//===- SimplifyTest.cpp - Unit tests for the simplifier -------------------===//

#include "ast/Simplify.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

TermPtr iv(long long V) { return mkIntLit(V); }

TEST(SimplifyTest, ConstantFolding) {
  EXPECT_EQ(simplify(mkAdd(iv(2), iv(3)))->str(), "5");
  EXPECT_EQ(simplify(mkOp(OpKind::Mul, {iv(4), iv(5)}))->str(), "20");
  EXPECT_EQ(simplify(mkOp(OpKind::Min, {iv(4), iv(5)}))->str(), "4");
  EXPECT_EQ(simplify(mkOp(OpKind::Max, {iv(4), iv(5)}))->str(), "5");
  EXPECT_EQ(simplify(mkOp(OpKind::Abs, {iv(-4)}))->str(), "4");
  EXPECT_EQ(simplify(mkOp(OpKind::Lt, {iv(1), iv(2)}))->str(), "true");
  EXPECT_EQ(simplify(mkOp(OpKind::Ge, {iv(1), iv(2)}))->str(), "false");
}

TEST(SimplifyTest, EuclideanDivMod) {
  // Matches Z3's div/mod: the remainder is always non-negative.
  EXPECT_EQ(euclidDiv(7, 2), 3);
  EXPECT_EQ(euclidMod(7, 2), 1);
  EXPECT_EQ(euclidDiv(-7, 2), -4);
  EXPECT_EQ(euclidMod(-7, 2), 1);
  EXPECT_EQ(euclidDiv(7, -2), -3);
  EXPECT_EQ(euclidMod(7, -2), 1);
  EXPECT_EQ(euclidDiv(-7, -2), 4);
  EXPECT_EQ(euclidMod(-7, -2), 1);
  // Sanity: A = B*Q + R with 0 <= R < |B| over a grid.
  for (long long A = -9; A <= 9; ++A)
    for (long long B = -3; B <= 3; ++B) {
      if (B == 0)
        continue;
      long long Q = euclidDiv(A, B), R = euclidMod(A, B);
      EXPECT_EQ(A, B * Q + R) << A << " " << B;
      EXPECT_GE(R, 0);
      EXPECT_LT(R, std::abs(B));
    }
}

TEST(SimplifyTest, ArithmeticIdentities) {
  VarPtr X = freshVar("x", Type::intTy());
  TermPtr V = mkVar(X);
  EXPECT_TRUE(termEquals(simplify(mkAdd(V, iv(0))), V));
  EXPECT_TRUE(termEquals(simplify(mkAdd(iv(0), V)), V));
  EXPECT_TRUE(termEquals(simplify(mkSub(V, iv(0))), V));
  EXPECT_EQ(simplify(mkSub(V, V))->str(), "0");
  EXPECT_EQ(simplify(mkOp(OpKind::Mul, {V, iv(0)}))->str(), "0");
  EXPECT_TRUE(termEquals(simplify(mkOp(OpKind::Mul, {V, iv(1)})), V));
  EXPECT_TRUE(
      termEquals(simplify(mkOp(OpKind::Neg, {mkOp(OpKind::Neg, {V})})), V));
  EXPECT_TRUE(termEquals(simplify(mkOp(OpKind::Min, {V, V})), V));
}

TEST(SimplifyTest, BooleanIdentities) {
  VarPtr B = freshVar("b", Type::boolTy());
  TermPtr V = mkVar(B);
  EXPECT_TRUE(termEquals(simplify(mkAndList({V, mkTrue()})), V));
  EXPECT_EQ(simplify(mkAndList({V, mkFalse()}))->str(), "false");
  EXPECT_TRUE(termEquals(simplify(mkOrList({V, mkFalse()})), V));
  EXPECT_EQ(simplify(mkOrList({V, mkTrue()}))->str(), "true");
  EXPECT_TRUE(termEquals(simplify(mkNot(mkNot(V))), V));
  EXPECT_TRUE(
      termEquals(simplify(mkOp(OpKind::Implies, {mkTrue(), V})), V));
  EXPECT_EQ(simplify(mkOp(OpKind::Implies, {mkFalse(), V}))->str(), "true");
}

TEST(SimplifyTest, ConnectiveFlatteningAndDedup) {
  VarPtr A = freshVar("a", Type::boolTy());
  VarPtr B = freshVar("b", Type::boolTy());
  TermPtr T = mkAndList({mkVar(A), mkAndList({mkVar(B), mkVar(A)})});
  TermPtr S = simplify(T);
  // Flattened to and(a, b) with the duplicate `a` removed.
  ASSERT_EQ(S->getKind(), TermKind::Op);
  EXPECT_EQ(S->getOp(), OpKind::And);
  EXPECT_EQ(S->numArgs(), 2u);
}

TEST(SimplifyTest, IteRules) {
  VarPtr C = freshVar("c", Type::boolTy());
  VarPtr X = freshVar("x", Type::intTy());
  TermPtr V = mkVar(X);
  EXPECT_TRUE(termEquals(simplify(mkIte(mkTrue(), V, mkIntLit(0))), V));
  EXPECT_EQ(simplify(mkIte(mkFalse(), V, mkIntLit(0)))->str(), "0");
  EXPECT_TRUE(termEquals(simplify(mkIte(mkVar(C), V, V)), V));
  EXPECT_TRUE(
      termEquals(simplify(mkIte(mkVar(C), mkTrue(), mkFalse())), mkVar(C)));
}

TEST(SimplifyTest, EqualityRules) {
  VarPtr X = freshVar("x", Type::intTy());
  VarPtr B = freshVar("b", Type::boolTy());
  EXPECT_EQ(simplify(mkEq(mkVar(X), mkVar(X)))->str(), "true");
  EXPECT_TRUE(termEquals(simplify(mkEq(mkVar(B), mkTrue())), mkVar(B)));
  TermPtr NotB = simplify(mkEq(mkVar(B), mkFalse()));
  EXPECT_EQ(NotB->getOp(), OpKind::Not);
  EXPECT_EQ(simplify(mkOp(OpKind::Ne, {iv(1), iv(2)}))->str(), "true");
}

TEST(SimplifyTest, ProjOfTuple) {
  TermPtr Tup = mkTuple({iv(1), iv(2)});
  EXPECT_EQ(simplify(mkProj(Tup, 1))->str(), "2");
}

TEST(SimplifyTest, Idempotent) {
  VarPtr X = freshVar("x", Type::intTy());
  TermPtr T = mkIte(mkEq(mkVar(X), iv(0)), mkAdd(mkVar(X), iv(0)), iv(7));
  TermPtr S1 = simplify(T);
  TermPtr S2 = simplify(S1);
  EXPECT_TRUE(termEquals(S1, S2));
}

} // namespace
