//===- EvalTest.cpp - Interpreter and symbolic evaluator tests ------------===//

#include "eval/Interp.h"
#include "eval/SymbolicEval.h"
#include "frontend/Elaborate.h"
#include "frontend/Parser.h"
#include "support/Diagnostics.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

struct EvalFixture : public ::testing::Test {
  void SetUp() override {
    Prob = loadProblem(se2gis_tests::kMinSortedSrc);
    List = Prob.Theta;
    Elt = List->findConstructor("Elt");
    Cons = List->findConstructor("Cons");
  }

  ValuePtr list(std::initializer_list<long long> Xs) {
    std::vector<long long> V(Xs);
    ValuePtr R = Value::mkData(Elt, {Value::mkInt(V.back())});
    for (size_t I = V.size() - 1; I-- > 0;)
      R = Value::mkData(Cons, {Value::mkInt(V[I]), R});
    return R;
  }

  Problem Prob;
  const Datatype *List = nullptr;
  const ConstructorDecl *Elt = nullptr;
  const ConstructorDecl *Cons = nullptr;
};

TEST_F(EvalFixture, InterpreterComputesMin) {
  Interpreter I(*Prob.Prog);
  EXPECT_EQ(I.call("lmin", {list({5})})->getInt(), 5);
  EXPECT_EQ(I.call("lmin", {list({3, 1, 4})})->getInt(), 1);
  EXPECT_EQ(I.call("lmin", {list({-2, 7})})->getInt(), -2);
}

TEST_F(EvalFixture, InterpreterComputesInvariant) {
  Interpreter I(*Prob.Prog);
  EXPECT_TRUE(I.call("sorted", {list({1, 2, 3})})->getBool());
  EXPECT_FALSE(I.call("sorted", {list({2, 1})})->getBool());
  EXPECT_TRUE(I.call("sorted", {list({7})})->getBool());
}

TEST_F(EvalFixture, InterpreterEvaluatesUnknownBindings) {
  // mins with b1(a) = a, b2(a) = a computes head; on sorted lists = min.
  UnknownBindings B;
  VarPtr P1 = freshVar("p", Type::intTy());
  B["b1"] = UnknownDef{{P1}, mkVar(P1)};
  VarPtr P2 = freshVar("p", Type::intTy());
  B["b2"] = UnknownDef{{P2}, mkVar(P2)};
  Interpreter I(*Prob.Prog);
  I.bindUnknowns(&B);
  EXPECT_EQ(I.call("mins", {list({1, 2, 3})})->getInt(), 1);
}

TEST_F(EvalFixture, SymbolicEvalUnfoldsConcreteCalls) {
  SymbolicEvaluator SE(*Prob.Prog);
  VarPtr A = freshVar("a", Type::intTy());
  // lmin(Cons(a, Elt(7))) -> min(a, 7)
  TermPtr T = mkCall(
      "lmin", Type::intTy(),
      {mkCtor(Cons, {mkVar(A), mkCtor(Elt, {mkIntLit(7)})})});
  TermPtr R = SE.eval(T);
  EXPECT_EQ(R->str(), "min(" + A->Name + ", 7)");
}

TEST_F(EvalFixture, SymbolicEvalLeavesStuckCallsInPlace) {
  SymbolicEvaluator SE(*Prob.Prog);
  VarPtr A = freshVar("a", Type::intTy());
  VarPtr L = freshVar("l", Type::dataTy(List));
  // lmin(Cons(a, l)) -> min(a, lmin(l)): the tail call is stuck.
  TermPtr T = mkCall("lmin", Type::intTy(),
                     {mkCtor(Cons, {mkVar(A), mkVar(L)})});
  TermPtr R = SE.eval(T);
  ASSERT_EQ(R->getKind(), TermKind::Op);
  EXPECT_EQ(R->getOp(), OpKind::Min);
  EXPECT_EQ(R->getArg(1)->getKind(), TermKind::Call);
  EXPECT_EQ(R->getArg(1)->getCallee(), "lmin");
}

TEST_F(EvalFixture, SymbolicEvalDistributesOverIte) {
  SymbolicEvaluator SE(*Prob.Prog);
  VarPtr C = freshVar("c", Type::boolTy());
  TermPtr T = mkCall(
      "lmin", Type::intTy(),
      {mkIte(mkVar(C), mkCtor(Elt, {mkIntLit(1)}), mkCtor(Elt, {mkIntLit(2)}))});
  TermPtr R = SE.eval(T);
  // -> if c then 1 else 2
  ASSERT_EQ(R->getKind(), TermKind::Op);
  EXPECT_EQ(R->getOp(), OpKind::Ite);
  EXPECT_EQ(R->getArg(1)->str(), "1");
  EXPECT_EQ(R->getArg(2)->str(), "2");
}

TEST_F(EvalFixture, SymbolicEvalSimplifiesWhileUnfolding) {
  SymbolicEvaluator SE(*Prob.Prog);
  // sorted(Elt(5)) -> true
  TermPtr T = mkCall("sorted", Type::boolTy(),
                     {mkCtor(Elt, {mkIntLit(5)})});
  EXPECT_EQ(SE.eval(T)->str(), "true");
}

TEST(ValueTest, EqualityAndOrdering) {
  ValuePtr A = Value::mkInt(1), B = Value::mkInt(1), C = Value::mkInt(2);
  EXPECT_TRUE(valueEquals(A, B));
  EXPECT_FALSE(valueEquals(A, C));
  EXPECT_TRUE(valueLess(A, C));
  EXPECT_FALSE(valueLess(C, A));
  ValuePtr T1 = Value::mkTuple({A, C});
  ValuePtr T2 = Value::mkTuple({A, C});
  EXPECT_TRUE(valueEquals(T1, T2));
  EXPECT_EQ(T1->str(), "(1, 2)");
}

TEST(ValueTest, FuelGuardsNonTermination) {
  // A bogus scheme that recurses on the same value would spin; the fuel
  // guard must trip. We simulate with a plain function calling itself.
  auto Prog = std::make_shared<Program>();
  VarPtr X = namedVar("x", Type::intTy());
  Prog->addFunction(RecFunction::makePlain(
      "loop", {X}, mkCall("loop", Type::intTy(), {mkVar(X)})));
  Interpreter I(*Prog, /*MaxSteps=*/1000);
  EXPECT_THROW(I.call("loop", {Value::mkInt(0)}), UserError);
}

} // namespace
