//===- SmtSessionTest.cpp - Incremental SMT session layer tests -----------===//
///
/// \file
/// Covers the session layer of DESIGN.md "Incremental SMT model": verdict
/// parity between incremental sessions and fresh contexts, push/pop scope
/// semantics (including frame-scoped model readback), per-thread reuse,
/// the busy/nested fallback, budget-expiry behavior, and seed-change
/// invalidation. Everything here uses only the public SmtQuery surface —
/// the session is observed through threadSmtSessionInfo and perf counters.
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include "cache/CacheConfig.h"
#include "support/PerfCounters.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

using namespace se2gis;

namespace {

/// Pins the incremental toggle for one test and restores a clean slate
/// around it: sessions dropped, memo cache off (so parity checks exercise
/// Z3, not the cache), seed back to default on exit.
struct IncrementalGuard {
  explicit IncrementalGuard(bool Enabled) {
    configureCache(CacheSettings{}); // Off: no memo-cache masking
    setSmtIncremental(Enabled);
    resetThreadSmtSession();
  }
  ~IncrementalGuard() {
    setSmtRandomSeed(0);
    setSmtIncremental(true);
    resetThreadSmtSession();
  }
};

/// One verdict + model observation, comparable across solver modes.
struct Observation {
  SmtResult R = SmtResult::Unknown;
  std::vector<unsigned> VarIds;   // in assignment order
  std::vector<long long> IntVals; // ints only, in assignment order
};

Observation observe(const std::vector<TermPtr> &Hard,
                    const std::vector<TermPtr> &Soft) {
  SmtQuery Q;
  for (const TermPtr &A : Hard)
    Q.add(A);
  for (const TermPtr &S : Soft)
    Q.addSoft(S);
  SmtModel M;
  Observation Obs;
  Obs.R = Q.checkSat(2000, &M);
  for (const auto &[V, Val] : M.assignments()) {
    Obs.VarIds.push_back(V->Id);
    if (Val->isInt())
      Obs.IntVals.push_back(Val->getInt());
  }
  return Obs;
}

TEST(SmtSessionTest, VerdictParityWithFreshContexts) {
  VarPtr X = freshVar("x", Type::intTy());
  VarPtr Y = freshVar("y", Type::intTy());

  struct Case {
    std::vector<TermPtr> Hard;
    std::vector<TermPtr> Soft;
  };
  std::vector<Case> Cases;
  // Sat with two variables (exercises model readback order).
  Cases.push_back({{mkOp(OpKind::Gt, {mkVar(X), mkIntLit(3)}),
                    mkOp(OpKind::Lt, {mkVar(Y), mkVar(X)})},
                   {}});
  // Unsat.
  Cases.push_back({{mkOp(OpKind::Gt, {mkVar(X), mkIntLit(3)}),
                    mkOp(OpKind::Lt, {mkVar(X), mkIntLit(2)})},
                   {}});
  // Sat with a soft anchor (exercises the MaxSAT-lite path): x must be 5.
  Cases.push_back({{mkOp(OpKind::Gt, {mkVar(X), mkIntLit(0)})},
                   {mkEq(mkVar(X), mkIntLit(5))}});

  std::vector<Observation> Fresh, Incremental;
  {
    IncrementalGuard G(false);
    for (const Case &C : Cases)
      Fresh.push_back(observe(C.Hard, C.Soft));
  }
  {
    IncrementalGuard G(true);
    for (const Case &C : Cases)
      Incremental.push_back(observe(C.Hard, C.Soft));
  }

  ASSERT_EQ(Fresh.size(), Incremental.size());
  for (size_t I = 0; I < Fresh.size(); ++I) {
    EXPECT_EQ(Fresh[I].R, Incremental[I].R) << "case " << I;
    // Same variables bound, in the same (ascending-Id) order.
    EXPECT_EQ(Fresh[I].VarIds, Incremental[I].VarIds) << "case " << I;
    EXPECT_TRUE(std::is_sorted(Incremental[I].VarIds.begin(),
                               Incremental[I].VarIds.end()))
        << "case " << I;
  }
  // Semantic checks on the incremental models (values may legitimately
  // differ between modes; the constraints may not).
  ASSERT_EQ(Incremental[0].IntVals.size(), 2u);
  EXPECT_GT(Incremental[0].IntVals[0], 3);                        // x > 3
  EXPECT_LT(Incremental[0].IntVals[1], Incremental[0].IntVals[0]); // y < x
  ASSERT_EQ(Incremental[2].IntVals.size(), 1u);
  EXPECT_EQ(Incremental[2].IntVals[0], 5); // soft anchor honored
}

TEST(SmtSessionTest, PushPopScopes) {
  IncrementalGuard G(true);
  VarPtr X = freshVar("x", Type::intTy());
  VarPtr Y = freshVar("y", Type::intTy());

  SmtQuery Q;
  Q.add(mkOp(OpKind::Gt, {mkVar(X), mkIntLit(3)}));
  EXPECT_EQ(Q.checkSat(2000), SmtResult::Sat);

  // A contradicting frame flips the verdict; popping it restores Sat.
  Q.push();
  Q.add(mkOp(OpKind::Lt, {mkVar(X), mkIntLit(2)}));
  EXPECT_EQ(Q.checkSat(2000), SmtResult::Unsat);
  Q.pop();
  SmtModel M1;
  EXPECT_EQ(Q.checkSat(2000, &M1), SmtResult::Sat);
  ASSERT_NE(M1.lookup(X->Id), nullptr);
  EXPECT_GT(M1.lookup(X->Id)->getInt(), 3);

  // A variable first interned inside a frame vanishes from readback after
  // the pop — its stale z3 handle must not leak into later models.
  Q.push();
  Q.add(mkOp(OpKind::Lt, {mkVar(Y), mkVar(X)}));
  SmtModel M2;
  EXPECT_EQ(Q.checkSat(2000, &M2), SmtResult::Sat);
  EXPECT_NE(M2.lookup(Y->Id), nullptr);
  Q.pop();
  SmtModel M3;
  EXPECT_EQ(Q.checkSat(2000, &M3), SmtResult::Sat);
  EXPECT_EQ(M3.lookup(Y->Id), nullptr);
  EXPECT_NE(M3.lookup(X->Id), nullptr);
}

TEST(SmtSessionTest, PerThreadReuseAcrossConsecutiveQueries) {
  IncrementalGuard G(true);
  VarPtr X = freshVar("x", Type::intTy());
  TermPtr A = mkOp(OpKind::Gt, {mkVar(X), mkIntLit(3)});

  PerfSnapshot Before = snapshotPerf();
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(quickCheck({A}, 2000), SmtResult::Sat);
  PerfSnapshot Delta = snapshotPerf().since(Before);

  // The first query may create the session (fresh); the other two reuse it.
  EXPECT_GE(Delta.get(PerfCounter::SmtSessionReuse), 2u);
  // Every query pushed a base frame and popped it on destruction.
  EXPECT_GE(Delta.get(PerfCounter::SmtPush), 3u);
  EXPECT_EQ(Delta.get(PerfCounter::SmtPush), Delta.get(PerfCounter::SmtPop));

  SmtSessionInfo Info = threadSmtSessionInfo();
  EXPECT_TRUE(Info.Live);
  EXPECT_FALSE(Info.Busy);
  EXPECT_GE(Info.QueriesServed, 3u);
  EXPECT_EQ(Info.Depth, 0u);
}

TEST(SmtSessionTest, NestedQueryFallsBackToFreshContext) {
  IncrementalGuard G(true);
  VarPtr X = freshVar("x", Type::intTy());

  SmtQuery Outer;
  Outer.add(mkOp(OpKind::Gt, {mkVar(X), mkIntLit(3)}));
  EXPECT_EQ(Outer.checkSat(2000), SmtResult::Sat);
  EXPECT_TRUE(threadSmtSessionInfo().Busy);

  // The inner query contradicts the outer's assertion. On a private
  // fallback context it is Sat; leaking the outer scope would make it
  // Unsat.
  PerfSnapshot Before = snapshotPerf();
  EXPECT_EQ(quickCheck({mkOp(OpKind::Lt, {mkVar(X), mkIntLit(2)})}, 2000),
            SmtResult::Sat);
  PerfSnapshot Delta = snapshotPerf().since(Before);
  EXPECT_GE(Delta.get(PerfCounter::SmtSessionFresh), 1u);

  // The outer query is unaffected by the nested one.
  EXPECT_EQ(Outer.checkSat(2000), SmtResult::Sat);
}

TEST(SmtSessionTest, BudgetExpiryFallsBackWithoutPoisoningVerdicts) {
  IncrementalGuard G(true);
  VarPtr X = freshVar("x", Type::intTy());
  TermPtr A = mkOp(OpKind::Gt, {mkVar(X), mkIntLit(3)});

  // Warm the session first so the expiry happens on a live one.
  EXPECT_EQ(quickCheck({A}, 2000), SmtResult::Sat);

  Deadline Tight = Deadline::afterMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(Tight.expired());
  PerfSnapshot Before = snapshotPerf();
  EXPECT_EQ(quickCheck({A}, 2000, nullptr, &Tight), SmtResult::Unknown);
  PerfSnapshot Delta = snapshotPerf().since(Before);
  EXPECT_GE(Delta.get(PerfCounter::SmtBudget), 1u);

  // A fresh-budget query right after gives the correct verdict.
  EXPECT_EQ(quickCheck({A}, 2000), SmtResult::Sat);
  EXPECT_EQ(quickCheck({A, mkOp(OpKind::Lt, {mkVar(X), mkIntLit(2)})}, 2000),
            SmtResult::Unsat);
}

TEST(SmtSessionTest, ResetWhileBusyRecyclesAtNextAcquisition) {
  IncrementalGuard G(true);
  VarPtr X = freshVar("x", Type::intTy());
  TermPtr A = mkOp(OpKind::Gt, {mkVar(X), mkIntLit(3)});

  {
    SmtQuery Q;
    Q.add(A);
    EXPECT_EQ(Q.checkSat(2000), SmtResult::Sat);
    // The session is busy: the reset must defer, not pull the solver out
    // from under the live query.
    resetThreadSmtSession();
    EXPECT_TRUE(threadSmtSessionInfo().Live);
    EXPECT_EQ(Q.checkSat(2000), SmtResult::Sat);
  }

  std::uint64_t GenBefore = threadSmtSessionInfo().Generation;
  EXPECT_EQ(quickCheck({A}, 2000), SmtResult::Sat);
  SmtSessionInfo Info = threadSmtSessionInfo();
  EXPECT_GT(Info.Generation, GenBefore); // replaced, not reused
  EXPECT_EQ(Info.QueriesServed, 1u);
}

TEST(SmtSessionTest, SeedChangeInvalidatesSession) {
  IncrementalGuard G(true);
  VarPtr X = freshVar("x", Type::intTy());
  TermPtr A = mkOp(OpKind::Gt, {mkVar(X), mkIntLit(3)});

  EXPECT_EQ(quickCheck({A}, 2000), SmtResult::Sat);
  std::uint64_t GenBefore = threadSmtSessionInfo().Generation;

  setSmtRandomSeed(12345);
  EXPECT_EQ(quickCheck({A}, 2000), SmtResult::Sat);
  SmtSessionInfo Info = threadSmtSessionInfo();
  EXPECT_GT(Info.Generation, GenBefore);
  EXPECT_EQ(Info.QueriesServed, 1u); // freshly seeded session
}

TEST(SmtSessionTest, UnknownSignatureChangeAcrossFramesAndQueries) {
  IncrementalGuard G(true);

  // Same unknown name with different arities in consecutive queries on the
  // shared session: the per-query interning must not leak between them.
  EXPECT_EQ(quickCheck({mkEq(mkUnknown("u", Type::intTy(), {mkIntLit(1)}),
                             mkIntLit(2))},
                       2000),
            SmtResult::Sat);
  EXPECT_EQ(
      quickCheck({mkEq(mkUnknown("u", Type::intTy(), {mkIntLit(1), mkIntLit(2)}),
                       mkIntLit(3))},
                 2000),
      SmtResult::Sat);

  // And across frames of one query: a 1-ary decl interned in a popped frame
  // must not be applied to the 2-ary occurrence asserted afterwards (a
  // stale decl would make Z3 throw, which is process-fatal).
  SmtQuery Q;
  Q.push();
  Q.add(mkEq(mkUnknown("v", Type::intTy(), {mkIntLit(1)}), mkIntLit(2)));
  EXPECT_EQ(Q.checkSat(2000), SmtResult::Sat);
  Q.pop();
  Q.add(mkEq(mkUnknown("v", Type::intTy(), {mkIntLit(1), mkIntLit(2)}),
             mkIntLit(3)));
  EXPECT_EQ(Q.checkSat(2000), SmtResult::Sat);
}

TEST(SmtSessionTest, SessionScopeKeepsSessionAndDisablingRestoresFresh) {
  IncrementalGuard G(true);
  VarPtr X = freshVar("x", Type::intTy());
  TermPtr A = mkOp(OpKind::Gt, {mkVar(X), mkIntLit(3)});

  {
    SmtSessionScope Scope;
    EXPECT_EQ(quickCheck({A}, 2000), SmtResult::Sat);
    EXPECT_TRUE(threadSmtSessionInfo().Live);
  }

  // With the layer off, queries take the private-context path and never
  // touch the thread slot.
  setSmtIncremental(false);
  resetThreadSmtSession();
  PerfSnapshot Before = snapshotPerf();
  EXPECT_EQ(quickCheck({A}, 2000), SmtResult::Sat);
  PerfSnapshot Delta = snapshotPerf().since(Before);
  EXPECT_GE(Delta.get(PerfCounter::SmtSessionFresh), 1u);
  EXPECT_EQ(Delta.get(PerfCounter::SmtSessionReuse), 0u);
  EXPECT_FALSE(threadSmtSessionInfo().Live);
}

} // namespace
