//===- MetricsTest.cpp - Exposition, flight recorder, progress ------------===//
///
/// \file
/// Tests for the operability layer: the Prometheus text renderer (header
/// uniqueness, label escaping, cumulative histogram buckets, counter
/// monotonicity across scrapes), the always-on flight recorder (ring
/// overwrite accounting, JSON validity, reset), the seqlock progress
/// board, and the service-level wiring — the `metrics` protocol method,
/// request-id echo on every response, gauge consistency with `stats`, and
/// the flight dump a Timeout job leaves behind.
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Json.h"
#include "service/Server.h"
#include "support/FlightRecorder.h"
#include "support/Histogram.h"
#include "support/Metrics.h"
#include "support/PerfCounters.h"
#include "support/Progress.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/stat.h>

using namespace se2gis;

namespace {

/// Finds the sample line for \p Name (exact family, optionally labeled)
/// and returns its value, or -1 when absent.
double metricValue(const std::string &Body, const std::string &Name) {
  std::istringstream In(Body);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    if (Line.rfind(Name, 0) != 0)
      continue;
    char Next = Line.size() > Name.size() ? Line[Name.size()] : '\0';
    if (Next != ' ' && Next != '{')
      continue;
    std::size_t Sp = Line.rfind(' ');
    if (Sp == std::string::npos)
      continue;
    return std::stod(Line.substr(Sp + 1));
  }
  return -1;
}

/// Sums every sample of a labeled family (e.g. the four
/// se2gis_jobs_done_total{verdict=...} lines).
double metricFamilySum(const std::string &Body, const std::string &Family) {
  std::istringstream In(Body);
  std::string Line;
  double Sum = 0;
  bool Seen = false;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    if (Line.rfind(Family + "{", 0) != 0 && Line.rfind(Family + " ", 0) != 0)
      continue;
    std::size_t Sp = Line.rfind(' ');
    if (Sp == std::string::npos)
      continue;
    Sum += std::stod(Line.substr(Sp + 1));
    Seen = true;
  }
  return Seen ? Sum : -1;
}

/// Collects the `_bucket{le="..."}` values of \p Family in emission order.
std::vector<double> bucketValues(const std::string &Body,
                                 const std::string &Family) {
  std::vector<double> Out;
  std::istringstream In(Body);
  std::string Line;
  const std::string Prefix = Family + "_bucket{";
  while (std::getline(In, Line)) {
    if (Line.rfind(Prefix, 0) != 0)
      continue;
    std::size_t Sp = Line.rfind(' ');
    EXPECT_NE(Sp, std::string::npos) << Line;
    if (Sp != std::string::npos)
      Out.push_back(std::stod(Line.substr(Sp + 1)));
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// The renderer
//===----------------------------------------------------------------------===//

TEST(PrometheusWriter, ValueFormatting) {
  EXPECT_EQ(promFormatValue(0), "0");
  EXPECT_EQ(promFormatValue(42), "42");
  EXPECT_EQ(promFormatValue(1e12), "1000000000000");
  // Fractions keep enough digits to round-trip a latency in seconds.
  EXPECT_EQ(promFormatValue(0.5), "0.5");
  EXPECT_NE(promFormatValue(1.048576e-3).find("0.001048576"),
            std::string::npos);
}

TEST(PrometheusWriter, LabelEscaping) {
  EXPECT_EQ(promEscapeLabel("plain"), "plain");
  EXPECT_EQ(promEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(promEscapeLabel("a\"b"), "a\\\"b");
  EXPECT_EQ(promEscapeLabel("a\nb"), "a\\nb");

  PrometheusWriter W;
  W.counter("x_total", "help", 1, {{"path", "a\"b\\c\nd"}});
  EXPECT_NE(W.str().find("x_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos)
      << W.str();
}

TEST(PrometheusWriter, HeaderOncePerFamily) {
  PrometheusWriter W;
  W.counter("jobs_total", "Jobs.", 3, {{"verdict", "realizable"}});
  W.counter("jobs_total", "Jobs.", 1, {{"verdict", "timeout"}});
  std::string Out = W.str();
  // One HELP, one TYPE, two samples.
  std::size_t First = Out.find("# HELP jobs_total");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Out.find("# HELP jobs_total", First + 1), std::string::npos);
  std::size_t Type = Out.find("# TYPE jobs_total counter");
  ASSERT_NE(Type, std::string::npos);
  EXPECT_EQ(Out.find("# TYPE jobs_total", Type + 1), std::string::npos);
  EXPECT_NE(Out.find("{verdict=\"realizable\"} 3"), std::string::npos);
  EXPECT_NE(Out.find("{verdict=\"timeout\"} 1"), std::string::npos);
}

TEST(PrometheusWriter, HistogramBucketsAreCumulative) {
  LatencyHistogram H;
  // Three samples across three buckets (100ns, ~1µs, ~1ms).
  H.recordNs(100);
  H.recordNs(1000);
  H.recordNs(1000000);
  PrometheusWriter W;
  W.histogram("lat_seconds", "Latency.", H.snapshot());
  std::string Out = W.str();

  std::vector<double> B = bucketValues(Out, "lat_seconds");
  ASSERT_FALSE(B.empty());
  for (std::size_t I = 1; I < B.size(); ++I)
    EXPECT_GE(B[I], B[I - 1]) << "bucket " << I << " not cumulative\n" << Out;

  // +Inf carries the total count; _count and _sum close the family.
  std::size_t Inf = Out.find("lat_seconds_bucket{le=\"+Inf\"} 3");
  EXPECT_NE(Inf, std::string::npos) << Out;
  EXPECT_NE(Out.find("lat_seconds_count 3"), std::string::npos);
  // Sum = 1001100 ns = 0.0010011 s.
  EXPECT_NEAR(metricValue(Out, "lat_seconds_sum"), 0.0010011, 1e-9);
  EXPECT_NE(Out.find("# TYPE lat_seconds histogram"), std::string::npos);
}

TEST(PrometheusWriter, EmptyHistogramStillPresent) {
  LatencyHistogram H;
  PrometheusWriter W;
  W.histogram("idle_seconds", "Never recorded.", H.snapshot());
  std::string Out = W.str();
  EXPECT_NE(Out.find("idle_seconds_bucket{le=\"+Inf\"} 0"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("idle_seconds_count 0"), std::string::npos);
  EXPECT_NE(Out.find("idle_seconds_sum 0"), std::string::npos);
}

TEST(ProcessMetrics, CountersAreMonotonicAcrossScrapes) {
  PrometheusWriter W1;
  writeProcessMetrics(W1, snapshotPerf());
  double Before = metricValue(W1.str(), "se2gis_smt_queries_total");
  ASSERT_GE(Before, 0);

  perfAdd(PerfCounter::SmtQueries, 3);
  perfRecordNs(PerfHistogram::SmtCheckNs, 5000);

  PrometheusWriter W2;
  writeProcessMetrics(W2, snapshotPerf());
  double After = metricValue(W2.str(), "se2gis_smt_queries_total");
  EXPECT_EQ(After, Before + 3);
  // Every counter family renders; spot-check the corners of the table.
  EXPECT_GE(metricValue(W2.str(), "se2gis_chc_race_wins_total"), 0);
  EXPECT_GE(metricValue(W2.str(), "se2gis_gen_shrink_accepted_total"), 0);
  EXPECT_GE(metricValue(W2.str(), "se2gis_cache_smt_hits_total"), 0);
  EXPECT_GE(metricValue(W2.str(), "se2gis_smt_check_seconds_count"), 1);
  EXPECT_GE(metricValue(W2.str(), "se2gis_flight_enabled"), 0);
}

//===----------------------------------------------------------------------===//
// The flight recorder
//===----------------------------------------------------------------------===//

TEST(FlightRecorder, RecordsAndDumpsValidJson) {
  flightConfigure(true);
  std::uint64_t Before = flightRecordedEvents();
  flightRecord(FlightKind::Mark, "test.mark", 1000, 0, 7, "hello \"quoted\"");
  flightRecord(FlightKind::Span, "test.span", 2000, 500, 0, "cat");
  EXPECT_GE(flightRecordedEvents(), Before + 2);

  std::ostringstream OS;
  flightWriteJson(OS);
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(OS.str(), V, Error)) << Error;
  const JsonValue *Events = V.get("traceEvents");
  ASSERT_NE(Events, nullptr);
  bool SawMark = false, SawSpan = false;
  for (const JsonValue &E : Events->items()) {
    if (E.getString("name") == "test.mark")
      SawMark = true;
    if (E.getString("name") == "test.span") {
      SawSpan = true;
      EXPECT_EQ(E.getString("ph"), "X");
    }
  }
  EXPECT_TRUE(SawMark);
  EXPECT_TRUE(SawSpan);
}

TEST(FlightRecorder, RingOverwritesOldestAndCounts) {
  flightConfigure(true, /*RingCapacity=*/64);
  // A fresh thread gets a fresh (small) ring; overflow it.
  std::uint64_t OverBefore = flightOverwrittenEvents();
  std::thread T([&] {
    for (int I = 0; I < 200; ++I)
      flightRecord(FlightKind::Mark, "overflow.mark",
                   static_cast<std::uint64_t>(I), 0,
                   static_cast<std::uint64_t>(I));
  });
  T.join();
  EXPECT_GE(flightOverwrittenEvents(), OverBefore + (200 - 64));

  // The dump still parses and holds at most the ring's worth of
  // overflow.marks.
  std::ostringstream OS;
  flightWriteJson(OS);
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(OS.str(), V, Error)) << Error;
  // Restore the default ring size for other tests' fresh threads.
  flightConfigure(true, 4096);
}

TEST(FlightRecorder, DisabledPathRecordsNothing) {
  flightConfigure(false);
  std::uint64_t Before = flightRecordedEvents();
  flightRecord(FlightKind::Mark, "while.disabled", 1, 0);
  EXPECT_EQ(flightRecordedEvents(), Before);
  flightConfigure(true);
}

TEST(FlightRecorder, ResetClearsBufferedEvents) {
  flightConfigure(true);
  flightRecord(FlightKind::Mark, "pre.reset", 1, 0);
  flightReset();
  std::ostringstream OS;
  flightWriteJson(OS);
  EXPECT_EQ(OS.str().find("pre.reset"), std::string::npos);
  JsonValue V;
  std::string Error;
  EXPECT_TRUE(JsonValue::parse(OS.str(), V, Error)) << Error;
}

//===----------------------------------------------------------------------===//
// The progress board
//===----------------------------------------------------------------------===//

TEST(ProgressBoard, PublishThroughThreadLocalTarget) {
  ProgressBoard B;
  EXPECT_EQ(threadProgressBoard(), nullptr);
  progressPublish([](ProgressSnapshot &) { FAIL() << "no board installed"; });
  {
    ProgressBoardScope Scope(&B);
    progressPublish([](ProgressSnapshot &P) {
      progressSetStr(P.Algorithm, "se2gis");
      progressSetStr(P.Activity, "round");
      P.Round = 7;
      P.Lemmas = 3;
    });
  }
  EXPECT_EQ(threadProgressBoard(), nullptr);
  ProgressSnapshot S = B.read();
  EXPECT_STREQ(S.Algorithm, "se2gis");
  EXPECT_STREQ(S.Activity, "round");
  EXPECT_EQ(S.Round, 7u);
  EXPECT_EQ(S.Lemmas, 3u);
}

TEST(ProgressBoard, SeqlockReadsAreConsistentUnderContention) {
  ProgressBoard B;
  std::atomic<bool> Stop{false};
  // Writer keeps Round and Lemmas in lockstep; a torn read would observe
  // them out of step.
  std::thread Writer([&] {
    std::uint64_t I = 0;
    while (!Stop.load(std::memory_order_relaxed)) {
      ++I;
      B.update([&](ProgressSnapshot &P) {
        P.Round = I;
        P.Lemmas = I * 2;
        progressSetStr(P.Activity, (I & 1) ? "refine" : "coarsen");
      });
    }
  });
  for (int I = 0; I < 20000; ++I) {
    ProgressSnapshot S = B.read();
    ASSERT_EQ(S.Lemmas, S.Round * 2) << "torn read at round " << S.Round;
  }
  Stop = true;
  Writer.join();
}

TEST(ProgressBoard, TruncatingStringCopyNulTerminates) {
  ProgressSnapshot P;
  progressSetStr(P.Activity, "a-very-long-activity-name-indeed");
  EXPECT_EQ(P.Activity[sizeof(P.Activity) - 1], '\0');
  EXPECT_EQ(std::string(P.Activity), "a-very-long-act");
  progressSetStr(P.Activity, nullptr);
  EXPECT_EQ(std::string(P.Activity), "");
}

//===----------------------------------------------------------------------===//
// Service wiring: metrics method, rid echo, progress, timeout dumps
//===----------------------------------------------------------------------===//

namespace {

/// Same shape as ServiceTest's fixture: an in-process daemon on an
/// ephemeral loopback port.
struct MetricsDaemon {
  std::unique_ptr<Server> S;
  std::thread Runner;
  std::string Addr;

  explicit MetricsDaemon(ServiceConfig Config) {
    Config.Listen = "tcp:127.0.0.1:0";
    S = std::make_unique<Server>(std::move(Config));
    std::string Error;
    if (!S->start(Error)) {
      ADD_FAILURE() << "daemon start failed: " << Error;
      return;
    }
    Addr = S->addr().str();
    Runner = std::thread([this] { S->run(); });
  }

  ~MetricsDaemon() {
    if (Runner.joinable()) {
      S->requestDrainAsync();
      Runner.join();
    }
  }

  std::unique_ptr<ServiceClient> client() {
    std::string Error;
    auto C = ServiceClient::connect(Addr, Error);
    EXPECT_NE(C, nullptr) << Error;
    return C;
  }
};

JsonValue mkSubmit(const char *Source, std::int64_t TimeoutMs,
                   const char *Label) {
  JsonValue Req = JsonValue::object();
  Req.set("method", JsonValue::str("submit"));
  Req.set("source", JsonValue::str(Source));
  Req.set("timeout_ms", JsonValue::number(TimeoutMs));
  Req.set("label", JsonValue::str(Label));
  return Req;
}

std::string awaitDone(ServiceClient &C, const std::string &JobId) {
  for (int Tries = 0; Tries < 3000; ++Tries) {
    JsonValue Req = JsonValue::object();
    Req.set("method", JsonValue::str("status"));
    Req.set("job", JsonValue::str(JobId));
    JsonValue Resp;
    std::string Error;
    if (!C.call(Req, Resp, Error)) {
      ADD_FAILURE() << "status call failed: " << Error;
      return "";
    }
    std::string State = Resp.getString("state");
    if (State == "done" || State == "cancelled")
      return State;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "job " << JobId << " never terminalized";
  return "";
}

} // namespace

TEST(ServiceMetrics, MetricsMethodMatchesStats) {
  ServiceConfig Config;
  Config.Workers = 2;
  MetricsDaemon D(Config);
  auto C = D.client();
  ASSERT_NE(C, nullptr);

  JsonValue Resp;
  std::string Error;
  ASSERT_TRUE(C->call(mkSubmit(se2gis_tests::kMinSortedSrc, 20000, "m1"),
                      Resp, Error))
      << Error;
  ASSERT_TRUE(Resp.getBool("ok")) << Resp.dump();
  std::string Id = Resp.getString("job");
  EXPECT_EQ(awaitDone(*C, Id), "done");

  ASSERT_TRUE(C->call("metrics", Resp, Error)) << Error;
  ASSERT_TRUE(Resp.getBool("ok")) << Resp.dump();
  EXPECT_NE(Resp.getString("content_type").find("version=0.0.4"),
            std::string::npos);
  std::string Body = Resp.getString("body");
  ASSERT_FALSE(Body.empty());

  // Service families present and consistent with `stats`.
  JsonValue Stats;
  ASSERT_TRUE(C->call("stats", Stats, Error)) << Error;
  double Submitted = metricValue(Body, "se2gis_jobs_submitted_total");
  double DoneSum = metricFamilySum(Body, "se2gis_jobs_done_total");
  EXPECT_GE(Submitted, 1);
  EXPECT_EQ(DoneSum, static_cast<double>(Stats.getInt("completed")));
  EXPECT_GE(metricValue(Body, "se2gis_queue_depth"), 0);
  EXPECT_EQ(metricValue(Body, "se2gis_workers"), 2);
  EXPECT_GE(metricValue(Body, "se2gis_job_latency_seconds_count"), 1);
  // Process families ride along in the same scrape.
  EXPECT_GE(metricValue(Body, "se2gis_smt_queries_total"), 0);
}

TEST(ServiceMetrics, EveryResponseCarriesARequestId) {
  ServiceConfig Config;
  MetricsDaemon D(Config);
  auto C = D.client();
  ASSERT_NE(C, nullptr);

  JsonValue Resp;
  std::string Error;
  ASSERT_TRUE(C->call("ping", Resp, Error)) << Error;
  std::int64_t R1 = Resp.getInt("rid", 0);
  EXPECT_GT(R1, 0);
  ASSERT_TRUE(C->call("stats", Resp, Error)) << Error;
  std::int64_t R2 = Resp.getInt("rid", 0);
  EXPECT_GT(R2, R1) << "rids must be minted per request";
  // Typed errors carry one too.
  ASSERT_TRUE(C->call("frobnicate", Resp, Error)) << Error;
  EXPECT_GT(Resp.getInt("rid", 0), R2);
}

TEST(ServiceMetrics, TimeoutJobLeavesAFlightDump) {
  std::string Dir = ::testing::TempDir() + "se2gis-flight-test";
  std::remove((Dir + "/flight-j1.json").c_str());
  ::mkdir(Dir.c_str(), 0755);

  ServiceConfig Config;
  Config.FlightDir = Dir;
  MetricsDaemon D(Config);
  auto C = D.client();
  ASSERT_NE(C, nullptr);

  JsonValue Resp;
  std::string Error;
  // A 1 ms budget forces a Timeout verdict — the worker must dump the
  // rings before completing the job.
  ASSERT_TRUE(C->call(mkSubmit(se2gis_tests::kMinSortedSrc, 1, "dump"), Resp,
                      Error))
      << Error;
  ASSERT_TRUE(Resp.getBool("ok")) << Resp.dump();
  std::string Id = Resp.getString("job");
  EXPECT_EQ(awaitDone(*C, Id), "done");

  JsonValue Req = JsonValue::object();
  Req.set("method", JsonValue::str("result"));
  Req.set("job", JsonValue::str(Id));
  ASSERT_TRUE(C->call(Req, Resp, Error)) << Error;
  ASSERT_EQ(Resp.getString("verdict"), "timeout") << Resp.dump();

  std::ifstream In(Dir + "/flight-" + Id + ".json");
  ASSERT_TRUE(In.good()) << "missing flight dump for " << Id;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  JsonValue Dump;
  ASSERT_TRUE(JsonValue::parse(Buf.str(), Dump, Error)) << Error;
  const JsonValue *Events = Dump.get("traceEvents");
  ASSERT_NE(Events, nullptr);
  EXPECT_FALSE(Events->items().empty())
      << "a timed-out run must have buffered flight events";
  // The job's admission mark is in the dump, rid-tagged.
  bool SawJobMark = false;
  for (const JsonValue &E : Events->items())
    if (E.getString("name") == "job.start")
      SawJobMark = true;
  EXPECT_TRUE(SawJobMark);
}

TEST(ServiceMetrics, StatusOfRunningJobReportsProgress) {
  ServiceConfig Config;
  Config.Workers = 1;
  MetricsDaemon D(Config);
  auto C = D.client();
  ASSERT_NE(C, nullptr);

  JsonValue Resp;
  std::string Error;
  // A generous budget keeps the job observable in the Running state for a
  // few polls on most machines; the assertion is conditional on actually
  // catching it mid-run so the test cannot flake on fast boxes.
  ASSERT_TRUE(C->call(mkSubmit(se2gis_tests::kMinUnsortedSrc, 20000, "live"),
                      Resp, Error))
      << Error;
  ASSERT_TRUE(Resp.getBool("ok")) << Resp.dump();
  std::string Id = Resp.getString("job");

  bool SawProgress = false;
  for (int Tries = 0; Tries < 3000; ++Tries) {
    JsonValue Req = JsonValue::object();
    Req.set("method", JsonValue::str("status"));
    Req.set("job", JsonValue::str(Id));
    ASSERT_TRUE(C->call(Req, Resp, Error)) << Error;
    std::string State = Resp.getString("state");
    if (State == "running") {
      if (const JsonValue *P = Resp.get("progress")) {
        // Once the first round publishes, the snapshot names the
        // algorithm.
        if (!P->getString("algorithm", "").empty()) {
          SawProgress = true;
          EXPECT_GE(P->getInt("round", -1), 0) << Resp.dump();
        }
      }
    }
    if (State == "done" || State == "cancelled")
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // The unrealizable witness search runs long enough that missing every
  // running-state poll would itself be a scheduling anomaly; still, only
  // assert the shape when the state was actually observed.
  if (SawProgress)
    SUCCEED();
}

TEST(ServiceMetrics, RenderMetricsIsParseableWithoutASocket) {
  ServiceConfig Config;
  MetricsDaemon D(Config);
  std::string Body = D.S->renderMetrics();
  // Never empty, every line is a comment or `name{labels} value`.
  ASSERT_FALSE(Body.empty());
  std::istringstream In(Body);
  std::string Line;
  int Samples = 0;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    if (Line[0] == '#') {
      EXPECT_TRUE(Line.rfind("# HELP ", 0) == 0 ||
                  Line.rfind("# TYPE ", 0) == 0)
          << Line;
      continue;
    }
    std::size_t Sp = Line.rfind(' ');
    ASSERT_NE(Sp, std::string::npos) << Line;
    EXPECT_NO_THROW((void)std::stod(Line.substr(Sp + 1))) << Line;
    ++Samples;
  }
  EXPECT_GT(Samples, 40) << "expected every counter family to render";
}
