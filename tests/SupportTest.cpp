//===- SupportTest.cpp - Support-library tests -----------------------------===//

#include "support/Stopwatch.h"
#include "support/TableWriter.h"

#include <gtest/gtest.h>
#include <thread>

using namespace se2gis;

namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch W;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(W.elapsedMs(), 15.0);
  W.reset();
  EXPECT_LT(W.elapsedMs(), 15.0);
}

TEST(DeadlineTest, ExpiresAfterBudget) {
  Deadline D = Deadline::afterMs(10);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(D.expired());
  EXPECT_EQ(D.remainingMs(), 0);
}

TEST(TableWriterTest, AlignsColumns) {
  TableWriter T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer-name", "22"});
  std::string Out = T.renderText();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 4);
  EXPECT_NE(Out.find("longer-name"), std::string::npos);
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(TableWriterTest, CsvRendering) {
  TableWriter T({"a", "b"});
  T.addRow({"1", "2"});
  EXPECT_EQ(T.renderCsv(), "a,b\n1,2\n");
}

TEST(TableWriterTest, FormatSeconds) {
  EXPECT_EQ(formatSeconds(1234.5), "1.234");
  EXPECT_EQ(formatSeconds(-1), "-");
  EXPECT_EQ(formatSeconds(0), "0.000");
}

} // namespace

//===- Counter telemetry -------------------------------------------------===//

#include "support/Counters.h"

namespace {

TEST(CountersTest, SnapshotDeltas) {
  CounterSnapshot Before = snapshotCounters();
  countEvent(CounterKind::SmtChecks);
  countEvent(CounterKind::PbeCandidates, 5);
  CounterSnapshot After = snapshotCounters();
  CounterSnapshot Delta = After.since(Before);
  EXPECT_EQ(Delta.get(CounterKind::SmtChecks), 1u);
  EXPECT_EQ(Delta.get(CounterKind::PbeCandidates), 5u);
  EXPECT_EQ(Delta.get(CounterKind::WitnessQueries), 0u);
}

TEST(CountersTest, Rendering) {
  CounterSnapshot S;
  S.Values[static_cast<size_t>(CounterKind::SmtChecks)] = 12;
  std::string Out = S.str();
  EXPECT_NE(Out.find("smt=12"), std::string::npos);
  EXPECT_NE(Out.find("pbe=0"), std::string::npos);
}

} // namespace
