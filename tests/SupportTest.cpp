//===- SupportTest.cpp - Support-library tests -----------------------------===//

#include "support/Stopwatch.h"
#include "support/TableWriter.h"

#include <gtest/gtest.h>
#include <thread>

using namespace se2gis;

namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch W;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(W.elapsedMs(), 15.0);
  W.reset();
  EXPECT_LT(W.elapsedMs(), 15.0);
}

TEST(DeadlineTest, ExpiresAfterBudget) {
  Deadline D = Deadline::afterMs(10);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(D.expired());
  EXPECT_EQ(D.remainingMs(), 0);
}

TEST(TableWriterTest, AlignsColumns) {
  TableWriter T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer-name", "22"});
  std::string Out = T.renderText();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 4);
  EXPECT_NE(Out.find("longer-name"), std::string::npos);
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(TableWriterTest, CsvRendering) {
  TableWriter T({"a", "b"});
  T.addRow({"1", "2"});
  EXPECT_EQ(T.renderCsv(), "a,b\n1,2\n");
}

TEST(TableWriterTest, FormatSeconds) {
  EXPECT_EQ(formatSeconds(1234.5), "1.234");
  EXPECT_EQ(formatSeconds(-1), "-");
  EXPECT_EQ(formatSeconds(0), "0.000");
}

} // namespace

//===- Counter telemetry -------------------------------------------------===//

#include "support/Counters.h"

namespace {

TEST(CountersTest, SnapshotDeltas) {
  CounterSnapshot Before = snapshotCounters();
  countEvent(CounterKind::SmtChecks);
  countEvent(CounterKind::PbeCandidates, 5);
  CounterSnapshot After = snapshotCounters();
  CounterSnapshot Delta = After.since(Before);
  EXPECT_EQ(Delta.get(CounterKind::SmtChecks), 1u);
  EXPECT_EQ(Delta.get(CounterKind::PbeCandidates), 5u);
  EXPECT_EQ(Delta.get(CounterKind::WitnessQueries), 0u);
}

TEST(CountersTest, Rendering) {
  CounterSnapshot S;
  S.Values[static_cast<size_t>(CounterKind::SmtChecks)] = 12;
  std::string Out = S.str();
  EXPECT_NE(Out.find("smt=12"), std::string::npos);
  EXPECT_NE(Out.find("pbe=0"), std::string::npos);
}

} // namespace

//===- Perf counters, histograms, and phase attribution -------------------===//

#include "support/PerfCounters.h"

#include <sstream>
#include <vector>

namespace {

TEST(PerfCountersTest, SnapshotSinceDeltas) {
  PerfSnapshot Before = snapshotPerf();
  perfAdd(PerfCounter::SmtQueries, 3);
  perfAdd(PerfCounter::EnumCandidates, 7);
  perfAddTimeNs(PerfTimer::Z3SolveNs, 2'000'000); // 2 ms
  perfRecordNs(PerfHistogram::SmtCheckNs, 1'000'000);
  PerfSnapshot Delta = snapshotPerf().since(Before);
  EXPECT_GE(Delta.get(PerfCounter::SmtQueries), 3u);
  EXPECT_GE(Delta.get(PerfCounter::EnumCandidates), 7u);
  EXPECT_GE(Delta.getMs(PerfTimer::Z3SolveNs), 2.0);
  EXPECT_GE(Delta.hist(PerfHistogram::SmtCheckNs).Count, 1u);
}

TEST(PerfCountersTest, StrMentionsKeyFields) {
  PerfSnapshot S;
  S.Counters[static_cast<size_t>(PerfCounter::SmtQueries)] = 4;
  S.Counters[static_cast<size_t>(PerfCounter::SmtSat)] = 3;
  S.TimersNs[static_cast<size_t>(PerfTimer::Z3SolveNs)] = 1'500'000;
  std::string Out = S.str();
  EXPECT_NE(Out.find("smt=4"), std::string::npos);
  EXPECT_NE(Out.find("sat=3"), std::string::npos);
  EXPECT_NE(Out.find("z3_ms=1.5"), std::string::npos);
  // No histogram samples: the quantile suffix stays off.
  EXPECT_EQ(Out.find("smt_p50_ms"), std::string::npos);
  S.Hists[static_cast<size_t>(PerfHistogram::SmtCheckNs)].Count = 1;
  S.Hists[static_cast<size_t>(PerfHistogram::SmtCheckNs)].Buckets[10] = 1;
  EXPECT_NE(S.str().find("smt_p50_ms"), std::string::npos);
}

TEST(PerfCountersTest, JsonHasQuantileKeys) {
  std::ostringstream OS;
  writePerfJson(OS, PerfSnapshot{});
  std::string J = OS.str();
  for (const char *Key :
       {"\"smt_check_p50_ms\"", "\"smt_check_p90_ms\"", "\"smt_check_p99_ms\"",
        "\"smt_check_max_ms\"", "\"enum_round_p50_ms\"",
        "\"enum_round_p99_ms\"", "\"cache_probe_p50_ms\"",
        "\"smt_check_count\""})
    EXPECT_NE(J.find(Key), std::string::npos) << Key;
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 = {0}; bucket b = [2^(b-1), 2^b).
  EXPECT_EQ(LatencyHistogram::bucketIndexFor(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucketIndexFor(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucketIndexFor(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucketIndexFor(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucketIndexFor(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucketIndexFor(1023), 10u);
  EXPECT_EQ(LatencyHistogram::bucketIndexFor(1024), 11u);
  EXPECT_EQ(LatencyHistogram::bucketIndexFor(UINT64_MAX), 63u);
  for (unsigned B = 1; B < 63; ++B) {
    EXPECT_EQ(LatencyHistogram::bucketIndexFor(
                  HistogramSnapshot::lowerBoundNs(B)),
              B);
    EXPECT_EQ(LatencyHistogram::bucketIndexFor(
                  HistogramSnapshot::upperBoundNs(B) - 1),
              B);
  }
}

TEST(HistogramTest, QuantilesAreOrderedAndBounded) {
  LatencyHistogram H;
  for (std::uint64_t V = 1; V <= 1000; ++V)
    H.recordNs(V * 1000); // 1us .. 1ms
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 1000u);
  EXPECT_EQ(S.MaxNs, 1'000'000u);
  double P50 = S.quantileNs(0.5), P90 = S.quantileNs(0.9),
         P99 = S.quantileNs(0.99);
  EXPECT_LE(P50, P90);
  EXPECT_LE(P90, P99);
  EXPECT_LE(P99, static_cast<double>(S.MaxNs));
  EXPECT_GT(P50, 0.0);
  // The p50 of a uniform 1us..1ms series must land well inside the range.
  EXPECT_GE(P50, 1000.0);
  EXPECT_EQ(HistogramSnapshot{}.quantileNs(0.5), 0.0);
}

TEST(HistogramTest, SinceSubtractsWindows) {
  LatencyHistogram H;
  H.recordNs(100);
  HistogramSnapshot Before = H.snapshot();
  H.recordNs(200);
  H.recordNs(300);
  HistogramSnapshot D = H.snapshot().since(Before);
  EXPECT_EQ(D.Count, 2u);
  EXPECT_EQ(D.SumNs, 500u);
  // Windowed max is an upper-bound approximation, never below the largest
  // sample of the window and never above the lifetime max.
  EXPECT_GE(D.MaxNs, 300u);
  EXPECT_LE(D.MaxNs, H.snapshot().MaxNs);
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  LatencyHistogram H;
  constexpr int Threads = 8, PerThread = 10000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&H] {
      for (int I = 1; I <= PerThread; ++I)
        H.recordNs(static_cast<std::uint64_t>(I));
    });
  for (std::thread &T : Ts)
    T.join();
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, static_cast<std::uint64_t>(Threads) * PerThread);
  std::uint64_t BucketSum = 0;
  for (unsigned B = 0; B < HistogramSnapshot::NumBuckets; ++B)
    BucketSum += S.Buckets[B];
  EXPECT_EQ(BucketSum, S.Count);
  EXPECT_EQ(S.MaxNs, static_cast<std::uint64_t>(PerThread));
}

TEST(PhaseScopeTest, ExclusiveAttribution) {
  PhaseSnapshot Before = phaseSnapshot();
  {
    PhaseScope Outer(Phase::Induction);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    {
      // The nested scope pauses the parent: its time must not double-count.
      PhaseScope Inner(Phase::Smt);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  PhaseSnapshot D = phaseSnapshot().since(Before);
  EXPECT_GE(D.getMs(Phase::Induction), 10.0);
  EXPECT_GE(D.getMs(Phase::Smt), 10.0);
  // Generous sanity bound: exclusive attribution keeps each phase near its
  // own sleep, far from the 40 ms total.
  EXPECT_LT(D.getMs(Phase::Induction), 35.0);
  EXPECT_LT(D.getMs(Phase::Smt), 35.0);
  EXPECT_EQ(D.getNs(Phase::Eval), 0u);
}

TEST(PhaseScopeTest, PerThreadIsolation) {
  PhaseSnapshot MainBefore = phaseSnapshot();
  std::thread T([] {
    PhaseScope S(Phase::Enum);
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  });
  T.join();
  // The worker's phase time stays on the worker's thread.
  PhaseSnapshot D = phaseSnapshot().since(MainBefore);
  EXPECT_EQ(D.getNs(Phase::Enum), 0u);
}

} // namespace
